"""``Program.analyze()`` agrees across every statement-construction path.

Programs are recorded three equivalent ways — explicit ``define()``,
``repro.einsum`` results handed to ``define()``, and assignments captured
inside ``with session.program() as p:`` — and the analyzer must not care
which one built the statements: the hazard/dependence findings, the CSE
reuse map, and (with ``cost=True``) the static communication planner's
predicted signatures must be identical for the same logical program.
The earlier analysis tests exercised ``define()`` only; this module pins
the other two paths against it.
"""
import numpy as np
import pytest
import scipy.sparse as sp

import repro
from repro.core import clear_caches
from repro.errors import WriteHazard

N = 30


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


def _operands(seed=11):
    rng = np.random.default_rng(seed)
    M = sp.random(N, N, density=0.2, random_state=rng, format="csr")
    v = rng.random(N)
    return M, v


def _spmv_stmt(B, c, out):
    i, j = repro.index_vars("i j")
    out[i] = B[i, j] * c[j]
    return out


def _program_by_define(s, M, v):
    B, c = s.tensor("B", M, repro.CSR), s.tensor("c", v)
    out = s.zeros("a", (N,))
    p = s.program()
    p.define(_spmv_stmt(B, c, out))
    p.define(_spmv_stmt(B, c, out))  # repeated statement: the CSE target
    return p


def _program_by_einsum(s, M, v):
    # pre-packed tensors pass through einsum unchanged, so both
    # statements share operand (and output) identity exactly like the
    # define() path
    B, c = s.tensor("B", M, repro.CSR), s.tensor("c", v)
    out = s.zeros("a", (N,))
    p = s.program()
    p.define(repro.einsum("ij,j->i", B, c, session=s, out=out))
    p.define(repro.einsum("ij,j->i", B, c, session=s, out=out))
    return p


def _program_by_capture(s, M, v):
    B, c = s.tensor("B", M, repro.CSR), s.tensor("c", v)
    out = s.zeros("a", (N,))
    with s.program() as p:
        _spmv_stmt(B, c, out)
        _spmv_stmt(B, c, out)
    return p


PATHS = {
    "define": _program_by_define,
    "einsum": _program_by_einsum,
    "capture": _program_by_capture,
}


def _reports():
    """(path name → cost-annotated AnalysisReport) for the same program."""
    M, v = _operands()
    out = {}
    for name, build in PATHS.items():
        with repro.session(nodes=4) as s:
            out[name] = build(s, M, v).analyze(cost=True)
        clear_caches()
    return out


def test_all_three_paths_record_two_statements():
    M, v = _operands()
    for name, build in PATHS.items():
        with repro.session(nodes=4) as s:
            assert len(build(s, M, v)) == 2, name
        clear_caches()


def test_hazards_and_dependences_agree_across_paths():
    reports = _reports()
    base = reports["define"]
    base_edges = [(e.src, e.dst, e.kind) for e in base.graph.edges]
    base_diags = [(d.severity, d.error_type.__name__)
                  for d in base.diagnostics]
    for name, rep in reports.items():
        assert [(e.src, e.dst, e.kind) for e in rep.graph.edges] \
            == base_edges, name
        assert [(d.severity, d.error_type.__name__)
                for d in rep.diagnostics] == base_diags, name
        assert rep.ok, name


def test_cse_reuse_map_agrees_across_paths():
    reports = _reports()
    for name, rep in reports.items():
        # statement 1 is the same computation over the same operands:
        # CSE collapses it into statement 0 regardless of how it was built
        assert rep.reuse_map == [None, 0], name


def test_commplan_predictions_agree_across_paths():
    reports = _reports()
    base = reports["define"].predictions
    assert base[0] is not None and base[1] is None  # collapsed stmt: no plan
    for name, rep in reports.items():
        assert rep.predictions[1] is None, name
        # launch counts, comm events and footprint are identical — the
        # signature carries no tensor names, so exact equality holds even
        # though einsum names its operands internally
        assert rep.predictions[0] == base[0], name


def test_write_hazard_detected_on_every_path():
    """Reading the written tensor under different indices
    (``c(i) = B(i,j) * c(j)``) is a WriteHazard however the program was
    recorded."""
    M, v = _operands()

    def hazardous(B, c):
        i, j = repro.index_vars("i j")
        c[i] = B[i, j] * c[j]
        return c

    def by_define(s):
        B, c = s.tensor("B", M, repro.CSR), s.tensor("c", v)
        p = s.program()
        p.define(hazardous(B, c))
        return p

    def by_einsum(s):
        B, c = s.tensor("B", M, repro.CSR), s.tensor("c", v)
        p = s.program()
        p.define(repro.einsum("ij,j->i", B, c, session=s, out=c))
        return p

    def by_capture(s):
        B, c = s.tensor("B", M, repro.CSR), s.tensor("c", v)
        with s.program() as p:
            hazardous(B, c)
        return p

    found = {}
    for name, build in (("define", by_define), ("einsum", by_einsum),
                        ("capture", by_capture)):
        with repro.session(nodes=4) as s:
            rep = build(s).analyze()
        clear_caches()
        diags = rep.diagnostics_of(WriteHazard)
        assert diags, f"{name}: WriteHazard not detected"
        found[name] = [(d.severity, d.provenance.statement) for d in diags]
    assert found["define"] == found["einsum"] == found["capture"]
