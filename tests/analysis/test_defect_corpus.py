"""Seeded defect corpus: every class of statically rejectable bug.

Each test plants one defect the ISSUE's hazard model documents and
asserts the *exact* diagnostic type and provenance — the contract that a
rejected program points at where the bug lives:

* an aliased accumulate (``a(i) += B(i,j) * a(j)``) → ``WriteHazard``
  anchored to the statement, tensor and loop variables;
* a repeated statement with an interleaved write of a shared operand →
  ``IllegalCSE`` warning naming the clobbering statement (and the
  executed program really does run both occurrences);
* a double-divide of one index variable → the scheduling language's
  eager ``ScheduleError`` (caught at build time, before any analysis);
* a byte-tampered AOT module in a stored artifact → ``SanitizerError``
  on warm start instead of exec-ing;
* an import-smuggling AOT module whose attacker *also* fixed the
  manifest sha256 → the AST allowlist still rejects it, with the exact
  smuggled line.
"""
import hashlib
import json

import numpy as np
import pytest
import scipy.sparse as sp

import repro
from repro.analysis import analyze_program
from repro.codegen import reset_codegen_stats
from repro.core import clear_caches, compile_kernel
from repro.core.store import MANIFEST_NAME, file_sha256
from repro.core.store_index import ArtifactStore
from repro.errors import (
    IllegalCSE, SanitizerError, ScheduleError, WriteHazard,
)
from repro.legion import Machine, Runtime
from repro.taco import CSR, Tensor, index_vars


@pytest.fixture(autouse=True)
def isolated():
    clear_caches()
    reset_codegen_stats()
    yield
    clear_caches()
    reset_codegen_stats()


class TestAliasedAccumulate:
    def test_write_hazard_with_provenance(self):
        B = Tensor.from_dense("B", np.eye(6), CSR)
        a = Tensor.from_dense("a", np.ones(6))
        i, j = index_vars("i j")
        a[i] = a[i] + B[i, j] * a[j]  # += sugar; RHS still reads a(j)
        assert a.assignment.accumulate

        report = analyze_program([a.schedule()])
        assert not report.ok
        (diag,) = report.errors
        assert diag.error_type is WriteHazard
        assert diag.provenance.statement == 0
        assert diag.provenance.tensor == "a"
        assert set(diag.provenance.loop_vars) == {"i", "j"}
        with pytest.raises(WriteHazard) as exc:
            report.raise_errors()
        assert exc.value.provenance is diag.provenance
        assert "statement 0" in str(exc.value)

    def test_plain_accumulate_is_not_a_hazard(self):
        B = Tensor.from_dense("B", np.eye(6), CSR)
        c = Tensor.from_dense("c", np.ones(6))
        a = Tensor.from_dense("a", np.zeros(6))
        i, j = index_vars("i j")
        a[i] = a[i] + B[i, j] * c[j]  # += over a *different* RHS: fine
        report = analyze_program([a.schedule()])
        assert report.ok

    def test_aliased_spadd_is_exempt(self):
        # A = B + A is executed with pre-install operand snapshots
        # (tests/core/test_spadd_aliased.py pins that), so the assembled
        # shape must NOT be reported as a hazard.
        dense = np.diag(np.arange(1.0, 5.0))
        A = Tensor.from_dense("A", dense, CSR)
        B = Tensor.from_dense("B", np.eye(4), CSR)
        i, j = index_vars("i j")
        A[i, j] = B[i, j] + A[i, j]
        report = analyze_program([A.schedule()])
        assert report.privileges[0].write_kind == "assemble"
        assert not report.diagnostics_of(WriteHazard)


class TestInterleavedWriteCSE:
    def _program(self):
        rng = np.random.default_rng(11)
        mat = sp.random(20, 20, density=0.2, random_state=rng, format="csr")
        B = Tensor.from_scipy("B", mat, CSR)
        c = Tensor.from_dense("c", rng.random(20))
        y = Tensor.from_dense("y", rng.random(20))
        x = Tensor.zeros("x", (20,))
        i, j, k = index_vars("i j k")
        x[i] = B[i, j] * c[j]     # statement 0: the root occurrence
        s0 = x.schedule()
        c[k] = c[k] + y[k]        # statement 1: writes a shared operand
        s1 = c.schedule()
        x[i] = B[i, j] * c[j]     # statement 2: identical to 0, now stale
        s2 = x.schedule()
        return [s0, s1, s2]

    def test_illegal_cse_warning_with_provenance(self):
        scheds = self._program()
        report = analyze_program(scheds, Machine.cpu(1))
        assert report.ok  # a blocked collapse is a warning, not an error
        (diag,) = report.diagnostics_of(IllegalCSE)
        assert diag.severity == "warning"
        assert diag.provenance.statement == 2
        assert diag.provenance.related_statement == 1
        assert diag.provenance.tensor == "c"
        assert "statement 0" in diag.message  # names the root occurrence
        assert report.reuse_map == [None, None, None]

    def test_compiled_program_executes_both_occurrences(self):
        scheds = self._program()
        B = scheds[0].assignment.rhs.operands[0].tensor
        c = scheds[1].assignment.lhs.tensor
        y = scheds[1].assignment.rhs.accesses()[0].tensor
        c0 = np.array(c.to_dense(), copy=True)
        y0 = np.array(y.to_dense(), copy=True)
        Bd = np.asarray(B.to_dense())
        prog = repro.compile_program(scheds, Machine.cpu(1), cse=True)
        assert prog.reused_from == [None, None, None]
        result = prog.execute()
        assert result.reused == 0
        # statement 2 re-executed against the updated c — had the blocked
        # collapse happened, x would still hold B @ c0 from statement 0.
        final_x = np.asarray(result[2].output.to_dense())
        np.testing.assert_allclose(final_x, Bd @ (c0 + y0))
        assert not np.allclose(final_x, Bd @ c0)

    def test_unclobbered_repeat_still_collapses(self):
        rng = np.random.default_rng(3)
        mat = sp.random(16, 16, density=0.25, random_state=rng, format="csr")
        B = Tensor.from_scipy("B", mat, CSR)
        c = Tensor.from_dense("c", rng.random(16))
        x = Tensor.zeros("x", (16,))
        i, j = index_vars("i j")
        x[i] = B[i, j] * c[j]
        s0 = x.schedule()
        x[i] = B[i, j] * c[j]
        s1 = x.schedule()
        report = analyze_program([s0, s1], Machine.cpu(1))
        assert report.reuse_map == [None, 0]
        assert not report.diagnostics_of(IllegalCSE)


class TestDoubleDivide:
    def test_schedule_error_is_eager(self):
        B = Tensor.from_dense("B", np.eye(8), CSR)
        c = Tensor.from_dense("c", np.ones(8))
        a = Tensor.zeros("a", (8,))
        i, j, io, ii, io2, ii2 = index_vars("i j io ii io2 ii2")
        a[i] = B[i, j] * c[j]
        s = a.schedule().divide(i, io, ii, 4)
        # Re-dividing a variable derived from an already-divided one is
        # rejected at schedule *build* time — before compile, before
        # analysis — with the variables' provenance in the message.
        with pytest.raises(ScheduleError, match="divide"):
            s.divide(ii, io2, ii2, 2)


def _packed_spmv_store(tmp_path):
    """A store holding one artifact with a generated AOT module."""
    machine = Machine.cpu(4)
    rng = np.random.default_rng(7)
    mat = sp.random(60, 48, density=0.1, random_state=rng, format="csr")
    B = Tensor.from_scipy("B", mat, CSR)
    c = Tensor.from_dense("c", rng.random(48))
    a = Tensor.zeros("a", (60,))
    i, j, io, ii = index_vars("i j io ii")
    a[i] = B[i, j] * c[j]
    sched = (a.schedule().divide(i, io, ii, 4).distribute(io)
             .communicate([a, B, c], io))
    ck = compile_kernel(sched, machine, backend="codegen")
    ck.execute(Runtime(machine))
    store = ArtifactStore(tmp_path / "store")
    store.put(B)

    def fresh_schedule():
        B2 = Tensor.from_scipy("B", mat, CSR)
        c2 = Tensor.from_dense("c", rng.random(48))
        a2 = Tensor.zeros("a", (60,))
        a2[i2] = B2[i2, j2] * c2[j2]
        return (a2.schedule().divide(i2, io2, ii2, 4).distribute(io2)
                .communicate([a2, B2, c2], io2))

    i2, j2, io2, ii2 = index_vars("i j io ii")
    return store, machine, fresh_schedule


def _aot_files(store):
    art_dir = store.root / store.entries()[-1]["dir"]
    files = sorted((art_dir / "aot").glob("*.py"))
    assert files, "artifact carries no AOT module"
    return art_dir, files


class TestTamperedAotArtifact:
    def test_byte_tamper_raises_sanitizer_error_on_warm_start(
        self, tmp_path
    ):
        store, machine, fresh_schedule = _packed_spmv_store(tmp_path)
        art_dir, files = _aot_files(store)
        mod = files[0]
        mod.write_text(
            mod.read_text() + "\nimport os\nos.system('true')\n"
        )
        clear_caches()
        reset_codegen_stats()
        with pytest.raises(SanitizerError) as exc:
            store.load_latest(fresh_schedule(), machine)
        # the sha256 gate fires before any parse/exec of the tampered file
        assert "sha256" in str(exc.value)
        assert exc.value.path.endswith(".py")
        # and verify() reports the same corruption
        assert any("sha256" in p for p in store.verify())

    def test_import_smuggling_with_fixed_manifest_sha(self, tmp_path):
        # A stronger attacker rewrites the manifest sha256 to match the
        # tampered source; the AST allowlist is the layer that holds.
        store, machine, fresh_schedule = _packed_spmv_store(tmp_path)
        art_dir, files = _aot_files(store)
        mod = files[0]
        tampered = mod.read_text() + "\nimport subprocess\n"
        mod.write_text(tampered)
        smuggled_line = len(tampered.splitlines())  # the import's line
        manifest = json.loads((art_dir / MANIFEST_NAME).read_text())
        for meta in manifest["aot_modules"]:
            if meta["file"].endswith(mod.name):
                meta["sha256"] = file_sha256(mod)
                meta["bytes"] = mod.stat().st_size
        (art_dir / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2))

        clear_caches()
        reset_codegen_stats()
        with pytest.raises(SanitizerError) as exc:
            store.load_latest(fresh_schedule(), machine)
        assert "allowlist" in str(exc.value)
        assert exc.value.line == smuggled_line
        from repro.codegen import codegen_stats
        assert codegen_stats()["store_seeded"] == 0  # never registered

    def test_trust_env_skips_the_gate(self, tmp_path, monkeypatch):
        store, machine, fresh_schedule = _packed_spmv_store(tmp_path)
        art_dir, files = _aot_files(store)
        # harmless byte-level tamper: append a comment (sha changes, the
        # source stays inside the allowlist)
        files[0].write_text(files[0].read_text() + "\n# trailing note\n")
        clear_caches()
        reset_codegen_stats()
        monkeypatch.setenv("REPRO_AOT_TRUST", "1")
        store.load_latest(fresh_schedule(), machine)  # no raise
        from repro.codegen import codegen_stats
        assert codegen_stats()["store_seeded"] == 1

    def test_untampered_warm_start_still_clean(self, tmp_path):
        store, machine, fresh_schedule = _packed_spmv_store(tmp_path)
        clear_caches()
        reset_codegen_stats()
        store.load_latest(fresh_schedule(), machine)
        from repro.codegen import codegen_stats
        assert codegen_stats()["store_seeded"] == 1
        assert store.verify() == []
