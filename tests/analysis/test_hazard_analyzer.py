"""Hazard analyzer semantics: privileges, the dependence graph, and the
acceptance contracts tying analysis to execution.

The two load-bearing agreements asserted here:

* the dependence graph **admits the observed execution order** of real
  integration programs (the in-order ``CompiledProgram.execute`` pass,
  including the sparse-ML SDDMM→SpMM program of ``examples/sparse_ml.py``),
  and rejects orders that would violate a dependence;
* ``Program.analyze()``'s reuse map is **exactly** what
  ``compile_program(cse=True)`` executes — the analyzer is the decision
  procedure, not a parallel reimplementation.

``UnsupportedEinsum`` predictions are pinned against the compiler: every
schedule the analyzer flags must raise ``CompileError`` when compiled,
and flagged-clean schedules must compile.
"""
import numpy as np
import pytest
import scipy.sparse as sp

import repro
from repro.analysis import (
    AnalysisReport, analyze_program, build_graph, program_privileges,
)
from repro.core import clear_caches, compile_kernel
from repro.errors import CompileError, UnsupportedEinsum
from repro.legion import Machine
from repro.taco import CSR, Tensor, index_vars


@pytest.fixture(autouse=True)
def isolated():
    clear_caches()
    yield
    clear_caches()


def chain_program():
    """x = B c ; z = B x ; c = c + y — RAW and WAR carried on x and c."""
    rng = np.random.default_rng(5)
    mat = sp.random(24, 24, density=0.2, random_state=rng, format="csr")
    B = Tensor.from_scipy("B", mat, CSR)
    c = Tensor.from_dense("c", rng.random(24))
    y = Tensor.from_dense("y", rng.random(24))
    x = Tensor.zeros("x", (24,))
    z = Tensor.zeros("z", (24,))
    i, j, k, l, m = index_vars("i j k l m")
    x[i] = B[i, j] * c[j]
    s0 = x.schedule()
    z[k] = B[k, l] * x[l]
    s1 = z.schedule()
    c[m] = c[m] + y[m]
    s2 = c.schedule()
    return [s0, s1, s2]


class TestPrivileges:
    def test_modes_pair_tensor_dims_with_loop_vars(self):
        B = Tensor.from_dense("B", np.eye(4), CSR)
        c = Tensor.from_dense("c", np.ones(4))
        a = Tensor.zeros("a", (4,))
        i, j = index_vars("i j")
        a[i] = B[i, j] * c[j]
        (priv,) = program_privileges([a.schedule()])
        by_name = {u.name: u.modes for u in priv.reads}
        assert by_name["B"] == ((0, "i"), (1, "j"))
        assert by_name["c"] == ((0, "j"),)
        assert priv.writes[0].name == "a"
        assert priv.write_kind == "write"

    def test_accumulate_reads_its_output(self):
        B = Tensor.from_dense("B", np.eye(4), CSR)
        c = Tensor.from_dense("c", np.ones(4))
        a = Tensor.zeros("a", (4,))
        i, j = index_vars("i j")
        a[i] = a[i] + B[i, j] * c[j]
        (priv,) = program_privileges([a.schedule()])
        assert priv.write_kind == "accumulate"
        assert "a" in {u.name for u in priv.reads}
        assert priv.aliased_tensors() == [a]


class TestDependenceGraph:
    def test_kinds_and_directions(self):
        scheds = chain_program()
        graph = analyze_program(scheds, Machine.cpu(1)).graph
        kinds = {(e.src, e.dst, e.kind, e.tensor) for e in graph.edges}
        assert (0, 1, "RAW", "x") in kinds   # statement 1 reads x
        assert (0, 2, "WAR", "c") in kinds   # statement 2 overwrites c
        assert all(e.src < e.dst for e in graph.edges)

    def test_admits_observed_execution_order_and_rejects_violations(self):
        scheds = chain_program()
        graph = analyze_program(scheds, Machine.cpu(1)).graph
        # the runtime executes in program order — always admitted
        assert graph.admits_order(graph.topological_order())
        # hoisting the c-overwrite above the x-producer breaks the WAR
        assert not graph.admits_order([2, 0, 1])
        # swapping producer and consumer of x breaks the RAW
        assert not graph.admits_order([1, 0, 2])

    def test_independent_statements_commute(self):
        privs = program_privileges(chain_program()[:1])
        g = build_graph(privs)
        assert g.edges == []


class TestSparseMLProgram:
    def test_graph_agrees_with_observed_execution(self):
        # The examples/sparse_ml.py program: SDDMM then SpMM over one
        # shared graph — read-shared B, no cross-statement write conflict.
        rng = np.random.default_rng(5)
        n, rank = 32, 8
        G = sp.random(n, n, density=0.15, random_state=rng, format="csr")
        with repro.session(nodes=4) as s:
            B = s.tensor("G", G, repro.CSR)
            Ut = s.tensor("U", rng.random((n, rank)))
            Vt = s.tensor("V", rng.random((rank, n)))
            F = s.tensor("F", rng.random((n, rank)))
            E = s.zeros("E", G.shape, repro.CSR)
            H = s.zeros("H", (n, rank))
            i, j, k, i2, k2, j2 = repro.index_vars("i j k i2 k2 j2")
            with s.program() as step:
                E[i, j] = B[i, j] * Ut[i, k] * Vt[k, j]
                H[i2, j2] = B[i2, k2] * F[k2, j2]
            report = step.analyze()
            assert isinstance(report, AnalysisReport)
            assert report.ok, [str(d) for d in report.diagnostics]
            # both statements only *read* the shared graph: no dependence,
            # so the observed in-order execution and its reverse both hold
            assert report.graph.admits_order([0, 1])
            assert report.graph.admits_order([1, 0])
            r = step.run()
            assert len(r) == 2 and r.reused == 0
        assert np.allclose(
            E.to_dense(),
            G.multiply(Ut.dense_array() @ Vt.dense_array()).toarray(),
        )

    def test_consumer_chain_orders_statements(self):
        rng = np.random.default_rng(9)
        n, rank = 24, 6
        G = sp.random(n, n, density=0.2, random_state=rng, format="csr")
        with repro.session(nodes=2) as s:
            B = s.tensor("G", G, repro.CSR)
            F = s.tensor("F", rng.random((n, rank)))
            H = s.zeros("H", (n, rank))
            H2 = s.zeros("H2", (n, rank))
            i, k, j, i2, k2, j2 = repro.index_vars("i k j i2 k2 j2")
            with s.program() as step:
                H[i, j] = B[i, k] * F[k, j]       # produce H
                H2[i2, j2] = B[i2, k2] * H[k2, j2]  # consume H
            report = step.analyze()
            edges = {(e.src, e.dst, e.kind) for e in report.graph.edges}
            assert (0, 1, "RAW") in edges
            assert not report.graph.admits_order([1, 0])
            r = step.run()
        np.testing.assert_allclose(
            np.asarray(H2.dense_array()), G @ (G @ F.dense_array())
        )


class TestAnalyzerDrivesCSE:
    def test_reuse_map_matches_compiled_program(self):
        rng = np.random.default_rng(2)
        mat = sp.random(20, 20, density=0.2, random_state=rng, format="csr")
        B = Tensor.from_scipy("B", mat, CSR)
        c = Tensor.from_dense("c", rng.random(20))
        x = Tensor.zeros("x", (20,))
        i, j = index_vars("i j")
        scheds = []
        for _ in range(3):  # x = B c, three times: 1 executes, 2 reuse
            x[i] = B[i, j] * c[j]
            scheds.append(x.schedule())
        machine = Machine.cpu(1)
        report = analyze_program(scheds, machine)
        prog = repro.compile_program(scheds, machine, cse=True)
        assert report.reuse_map == prog.reused_from == [None, 0, 0]
        result = prog.execute()
        assert result.reused == 2


class TestUnsupportedEinsumPredictions:
    def _spmv(self, n=16):
        rng = np.random.default_rng(4)
        mat = sp.random(n, n, density=0.3, random_state=rng, format="csr")
        B = Tensor.from_scipy("B", mat, CSR)
        c = Tensor.from_dense("c", rng.random(n))
        a = Tensor.zeros("a", (n,))
        return B, c, a

    def test_two_nonzero_distributed_vars_flagged_and_raise(self):
        B, c, a = self._spmv()
        i, j, f, ft, fo, fi = index_vars("i j f ft fo fi")
        a[i] = B[i, j] * c[j]
        s = (a.schedule().fuse(i, j, f).pos(f, ft, B[i, j])
             .divide(ft, fo, fi, 4).distribute(fo))
        # both halves of the position split distributed: two non-zero vars
        s.distribute(fi)
        report = analyze_program([s], Machine.cpu(4))
        diags = report.diagnostics_of(UnsupportedEinsum)
        assert diags, [str(d) for d in report.diagnostics]
        assert "at most one non-zero" in diags[0].message
        # provenance names both offending vars with their underlying chain
        assert {"fo<-i,j", "fi<-i,j"} <= set(diags[0].provenance.loop_vars)
        with pytest.raises(CompileError, match="at most one non-zero"):
            compile_kernel(s, Machine.cpu(4), use_cache=False)

    def test_universe_distribution_of_fused_var_flagged_and_raises(self):
        B, c, a = self._spmv()
        i, j, f, fo, fi = index_vars("i j f fo fi")
        a[i] = B[i, j] * c[j]
        s = (a.schedule().fuse(i, j, f).divide(f, fo, fi, 4)
             .distribute(fo))  # fo underlies {i, j}: not universe-splittable
        report = analyze_program([s], Machine.cpu(4))
        diags = report.diagnostics_of(UnsupportedEinsum)
        assert diags and "fused" in diags[0].message
        # provenance renders the derived -> underlying chain
        assert any("<-" in v for v in diags[0].provenance.loop_vars)
        with pytest.raises(CompileError):
            compile_kernel(s, Machine.cpu(4), use_cache=False)

    def test_supported_schedules_stay_clean(self):
        B, c, a = self._spmv()
        i, j, io, ii = index_vars("i j io ii")
        a[i] = B[i, j] * c[j]
        s = (a.schedule().divide(i, io, ii, 4).distribute(io)
             .communicate([a, B, c], io))
        report = analyze_program([s], Machine.cpu(4))
        assert not report.diagnostics_of(UnsupportedEinsum)
        compile_kernel(s, Machine.cpu(4), use_cache=False)  # no raise
