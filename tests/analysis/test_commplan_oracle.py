"""Differential oracle for the static communication planner.

The planner's whole claim (``docs/analysis.md``) is that a schedule's
communication and cost are *statically derivable*: the predicted metrics
signature — launch counts, every communication event with src/dst/bytes/
channel, the per-node resident footprint — must **exactly equal** what
the simulator reports after really executing the same compiled kernel on
a fresh runtime.  The simulator is deterministic, so anything short of
exact equality is a bug in the model, never noise.  This module sweeps
the auto-scheduler's space (kernel × format × strategy × cpu/gpu) over
the same seeded workload builders the execution differential oracle
(``tests/integration/test_differential.py``) uses, and additionally pins
the cost model: for the specialized kernels the predicted simulated
seconds equal the measured isolated trial's to the last bit.

Failures dump a minimal standalone repro script into ``repro_failures/``
(same idiom as the execution oracle), so a broken combination replays
outside pytest with one command.

A fixed-seed slice runs unmarked in tier-1; the full sweep carries the
``differential`` marker (``pytest -m differential``).
"""
import os
import sys
from pathlib import Path

import numpy as np
import pytest

REPO = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO / "tests" / "integration"))

from test_differential import _FORMATS, _build, _combos  # noqa: E402

from repro.analysis.commplan import measured_signature  # noqa: E402
from repro.analysis.costmodel import predict_cost  # noqa: E402
from repro.api.autoschedule import auto_schedule  # noqa: E402
from repro.core import clear_caches, compile_kernel  # noqa: E402
from repro.legion import Machine  # noqa: E402
from repro.legion.runtime import Runtime  # noqa: E402

PIECES = 4  # 2x2: every strategy including the square grid is buildable


def run_case(
    kind: str,
    fmt: str,
    strategy: str,
    machine_kind: str,
    seed: int,
    n: int = 24,
    density: float = 0.2,
):
    """Predict one combination statically, execute it, compare exactly.

    Importable by the generated repro scripts — keep the signature stable.
    Raises ``AssertionError`` naming the first divergence on a mismatch;
    returns the matching ``(predicted, measured)`` signatures otherwise.
    """
    rng = np.random.default_rng(seed)
    out = _build(kind, fmt, rng, n, density)
    machine = (
        Machine.gpu(PIECES) if machine_kind == "gpu" else Machine.cpu(PIECES)
    )
    sched = auto_schedule(out, machine, strategy=strategy)
    ck = compile_kernel(sched, machine)

    est = predict_cost(ck)  # static: mirrors the runtime, executes nothing
    label = f"{kind}/{fmt}/{strategy}/{machine_kind} seed={seed} n={n}"
    assert est.exact, f"{label}: specialized kernel priced approximately"
    assert not est.oom, f"{label}: predicted OOM on a feasible plan"

    rt = Runtime(machine)
    res = ck.execute(rt)  # cold: the execution the prediction models
    measured = measured_signature(res.metrics, rt)

    predicted = est.signature
    if predicted.steps != measured.steps:
        for p, m in zip(predicted.steps, measured.steps):
            if p != m:
                raise AssertionError(
                    f"{label}: step {p.name!r} diverges\n"
                    f"  predicted: launches={p.tasks_launched} "
                    f"events={p.comm_events}\n"
                    f"  measured:  launches={m.tasks_launched} "
                    f"events={m.comm_events}"
                )
        raise AssertionError(
            f"{label}: step lists differ in length — predicted "
            f"{[s.name for s in predicted.steps]}, measured "
            f"{[s.name for s in measured.steps]}"
        )
    assert predicted.node_footprint == measured.node_footprint, (
        f"{label}: footprint predicted {predicted.node_footprint} != "
        f"measured {measured.node_footprint}"
    )
    assert predicted.comm_bytes_by_channel() == measured.comm_bytes_by_channel()
    assert est.seconds == res.simulated_seconds, (
        f"{label}: predicted {est.seconds!r}s != measured "
        f"{res.simulated_seconds!r}s"
    )
    return predicted, measured


def _repro_script(kind, fmt, strategy, machine_kind, seed, n, density) -> str:
    src = str(REPO / "src")
    here = str(Path(__file__).resolve().parent)
    integration = str(REPO / "tests" / "integration")
    return (
        "#!/usr/bin/env python\n"
        '"""Auto-generated minimal repro of a commplan-oracle failure."""\n'
        "import sys\n"
        f"sys.path.insert(0, {src!r})\n"
        f"sys.path.insert(0, {integration!r})\n"
        f"sys.path.insert(0, {here!r})\n"
        "from test_commplan_oracle import run_case\n"
        f"run_case(kind={kind!r}, fmt={fmt!r}, strategy={strategy!r},\n"
        f"         machine_kind={machine_kind!r}, seed={seed}, n={n},\n"
        f"         density={density})\n"
        "print('reproduced OK: the prediction now matches the simulator')\n"
    )


def _check(kind, fmt, strategy, machine_kind, seed, n=24, density=0.2):
    try:
        run_case(kind, fmt, strategy, machine_kind, seed, n=n, density=density)
    except AssertionError as e:
        dump_dir = Path(os.environ.get("REPRO_FAILURE_DIR", "repro_failures"))
        dump_dir.mkdir(parents=True, exist_ok=True)
        script = _repro_script(
            kind, fmt, strategy, machine_kind, seed, n, density
        )
        path = dump_dir / (
            f"repro_commplan_{kind}_{fmt}_{strategy}_{machine_kind}"
            f"_s{seed}.py"
        )
        path.write_text(script)
        pytest.fail(
            f"{e}\nminimal repro written to {path}:\n{script}", pytrace=False
        )


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


def _case_id(c):
    return "-".join(str(x) for x in c)


# --------------------------------------------------------------------------- #
# tier-1 slice: one fixed seed, both machine kinds, every combination
# --------------------------------------------------------------------------- #
SMOKE_CASES = [
    (k, f, s, mk, 1234) for k, f, s in _combos() for mk in ("cpu", "gpu")
]


@pytest.mark.parametrize("case", SMOKE_CASES, ids=_case_id)
def test_prediction_matches_simulator(case):
    _check(*case)


# --------------------------------------------------------------------------- #
# full sweep: seeds x sizes x densities (pytest -m differential)
# --------------------------------------------------------------------------- #
SWEEP_CASES = [
    (k, f, s, mk, seed, n, d)
    for k, f, s in _combos()
    for mk in ("cpu", "gpu")
    for seed in (7, 101)
    for n, d in ((17, 0.35), (24, 0.05))
]


@pytest.mark.differential
@pytest.mark.parametrize("case", SWEEP_CASES, ids=_case_id)
def test_prediction_matches_simulator_swept(case):
    kind, fmt, strategy, machine_kind, seed, n, density = case
    _check(kind, fmt, strategy, machine_kind, seed, n=n, density=density)
