"""Functional tests for the multi-tenant serving layer (`repro.serve`).

Covers the request path (catalog -> submit -> future -> ServeResult), the
single-flight build dedup, per-tenant accounting and admission control,
tuned requests, the sparse-output (SDDMM) path, and lifecycle edges
(close, unknown operands, malformed specs).  The concurrency *stress*
herds live in ``test_stress.py``; these tests pin the API contract.
"""
import numpy as np
import pytest

import repro
from repro.api.serving import ServeResult, Server
from repro.core import clear_caches
from repro.errors import ServingError, TenantBudgetError


@pytest.fixture(autouse=True)
def isolated_caches():
    clear_caches()
    yield
    clear_caches()


N, K = 80, 6


def make_data(seed=7):
    rng = np.random.default_rng(seed)
    B = rng.random((N, N)) * (rng.random((N, N)) < 0.1)
    return {
        "B": B,
        "x": rng.random(N),
        "C": rng.random((N, K)),
        "D": rng.random((K, N)),
    }


def make_server(**kw):
    srv = repro.serve(nodes=2, workers=2, **kw)
    data = make_data()
    srv.put_tensor("B", data["B"], repro.CSR)
    srv.put_tensor("x", data["x"])
    srv.put_tensor("C", data["C"])
    srv.put_tensor("D", data["D"])
    return srv, data


class TestRequestPath:
    def test_spmv_round_trip(self):
        srv, data = make_server()
        with srv:
            res = srv.submit("ij,j->i", "B", "x", tenant="alice").result(60)
        assert isinstance(res, ServeResult)
        assert res.tenant == "alice"
        assert res.compiled  # first request of the signature leads the build
        assert np.allclose(res.value, data["B"] @ data["x"])

    def test_value_is_a_private_copy(self):
        srv, data = make_server()
        with srv:
            r1 = srv.submit("ij,j->i", "B", "x").result(60)
            r1.value[:] = -1.0
            r2 = srv.submit("ij,j->i", "B", "x").result(60)
        assert np.allclose(r2.value, data["B"] @ data["x"])

    def test_sddmm_sparse_output(self):
        srv, data = make_server()
        with srv:
            res = srv.submit("ij,ik,kj->ij", "B", "C", "D",
                             out_format=repro.CSR).result(60)
        ref = data["B"] * (data["C"] @ data["D"])
        assert np.allclose(res.value, ref)

    def test_mixed_kernels_share_no_entries(self):
        srv, data = make_server()
        with srv:
            a = srv.submit("ij,j->i", "B", "x").result(60)
            b = srv.submit("ij,jk->ik", "B", "C").result(60)
        assert a.key != b.key
        assert srv.compiles == 2
        assert np.allclose(b.value, data["B"] @ data["C"])

    def test_repeat_requests_compile_once(self):
        srv, _ = make_server()
        with srv:
            results = [srv.submit("ij,j->i", "B", "x").result(60)
                       for _ in range(5)]
        assert srv.compiles == 1
        assert sum(r.compiled for r in results) == 1
        first = results[0].value
        for r in results[1:]:
            assert np.array_equal(r.value, first)  # bit-identical replays

    def test_tuned_request_records_strategy(self):
        srv, data = make_server()
        with srv:
            res = srv.submit("ij,jk->ik", "B", "C", tune=True).result(120)
        assert res.strategy in ("rows", "nonzeros", "grid")
        assert np.allclose(res.value, data["B"] @ data["C"])

    def test_tensor_operand_auto_registers(self):
        srv, data = make_server()
        rng = np.random.default_rng(5)
        with srv:
            y = srv._sessions[0].tensor("y", rng.random(N))
            res = srv.submit("ij,j->i", "B", y).result(60)
            assert "y" in srv.catalog()
        assert np.allclose(res.value, data["B"] @ np.asarray(y.to_dense()))

    def test_submit_program_batches(self):
        srv, data = make_server()
        with srv:
            futs = srv.submit_program(
                [("ij,j->i", "B", "x"), ("ij,jk->ik", "B", "C")],
                tenant="batch",
            )
            vals = [f.result(60) for f in futs]
        assert np.allclose(vals[0].value, data["B"] @ data["x"])
        assert np.allclose(vals[1].value, data["B"] @ data["C"])

    def test_warm_prebuilds_entries(self):
        srv, _ = make_server()
        with srv:
            srv.warm([("ij,j->i", "B", "x"), ("ij,jk->ik", "B", "C")])
            assert srv.compiles == 2
            res = srv.submit("ij,j->i", "B", "x").result(60)
        assert not res.compiled  # warm() already built the entry


class TestTenantsAndAdmission:
    def test_tenant_accounting(self):
        srv, _ = make_server()
        with srv:
            for _ in range(3):
                srv.submit("ij,j->i", "B", "x", tenant="a").result(60)
            srv.submit("ij,jk->ik", "B", "C", tenant="b").result(60)
            stats = srv.tenant_stats()
        assert stats["a"].admitted == 3 and stats["a"].completed == 3
        assert stats["b"].admitted == 1
        # only the build leader's tenant is charged
        assert stats["a"].charged_bytes > 0
        assert stats["b"].charged_bytes > 0

    def test_over_budget_tenant_is_refused(self):
        srv, _ = make_server()
        with srv:
            srv.submit("ij,j->i", "B", "x", tenant="spender").result(60)
            charged = srv.tenant("spender").charged_bytes
            assert charged > 0
            srv.set_tenant_budget("spender", charged)  # at budget => refused
            with pytest.raises(TenantBudgetError) as exc:
                srv.submit("ij,jk->ik", "B", "C", tenant="spender")
            assert exc.value.tenant == "spender"
            assert srv.tenant("spender").rejected == 1
            # other tenants keep flowing
            srv.submit("ij,jk->ik", "B", "C", tenant="other").result(60)
            # raising the budget re-admits
            srv.set_tenant_budget("spender", None)
            srv.submit("ij,jk->ik", "B", "C", tenant="spender").result(60)

    def test_default_budget_applies_to_new_tenants(self):
        srv, _ = make_server(default_budget_bytes=1)
        with srv:
            srv.submit("ij,j->i", "B", "x", tenant="t0").result(60)
            assert srv.tenant("t0").over_budget  # first build blew 1 byte
            with pytest.raises(TenantBudgetError):
                srv.submit("ij,jk->ik", "B", "C", tenant="t0")

    def test_cache_hits_cost_nothing(self):
        srv, _ = make_server()
        with srv:
            srv.submit("ij,j->i", "B", "x", tenant="leader").result(60)
            before = srv.tenant("follower").charged_bytes
            srv.submit("ij,j->i", "B", "x", tenant="follower").result(60)
            assert srv.tenant("follower").charged_bytes == before == 0


class TestLifecycleAndErrors:
    def test_unknown_catalog_tensor(self):
        srv, _ = make_server()
        with srv:
            with pytest.raises(ServingError, match="unknown catalog tensor"):
                srv.submit("ij,j->i", "B", "nope")

    def test_malformed_spec_fails_at_submit(self):
        srv, _ = make_server()
        with srv:
            with pytest.raises(ValueError):
                srv.submit("ij,j,k->i", "B", "x")

    def test_duplicate_catalog_name_rejected(self):
        srv, _ = make_server()
        with srv:
            with pytest.raises(ServingError, match="already registered"):
                srv.put_tensor("B", np.eye(4))

    def test_submit_after_close(self):
        srv, _ = make_server()
        srv.close()
        with pytest.raises(ServingError, match="closed server"):
            srv.submit("ij,j->i", "B", "x")

    def test_close_is_idempotent(self):
        srv, _ = make_server()
        srv.close()
        srv.close()

    def test_build_error_delivered_to_future_and_retried(self):
        srv, _ = make_server()
        with srv:
            # operand order mismatch surfaces in the build, on the future
            fut = srv.submit("ijk,j->i", "B", "x")
            with pytest.raises(ServingError, match="order"):
                fut.result(60)
            # the failed flight must not wedge the key: a later identical
            # request re-elects a leader and fails the same way (not hang)
            with pytest.raises(ServingError, match="order"):
                srv.submit("ijk,j->i", "B", "x").result(60)
            # and the server still serves good requests
            assert srv.submit("ij,j->i", "B", "x").result(60) is not None

    def test_stats_snapshot(self):
        srv, _ = make_server()
        with srv:
            srv.submit("ij,j->i", "B", "x", tenant="s").result(60)
            stats = srv.stats()
        assert stats["entries"] == 1 and stats["compiles"] == 1
        assert stats["workers"] == 2
        assert stats["tenants"]["s"]["completed"] == 1
        assert "kernel_entries" in stats["cache"] or stats["cache"]
