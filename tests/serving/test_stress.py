"""Concurrency stress for the shared compile substrate and the Server.

Barrier-released thread herds hammer the three layers tenants contend on:

* the AOT registry's single-flight lowering (``aot_entry_for``) — no
  double-lowering under a simultaneous miss herd, every thread gets the
  same :class:`AotEntry` object;
* the byte-budgeted LRU tiers (``_SizedLRU``) — no lost entries and exact
  byte/counter accounting after an interleaved put/get herd;
* the full ``repro.serve`` request path — compile/execute/autotune from
  many tenants at once, deduplicated to one build per signature with
  responses bit-identical to serial execution.

Each herd lines up on a :class:`threading.Barrier` so every thread
releases into the critical section together — the schedule most likely to
expose a lost update or a duplicated build.  Single-iteration smoke herds
run unmarked in the fast tier-1 loop; the 50-iteration no-flake sweeps
(the acceptance criterion) are marked ``serving`` + ``slow``.
"""
import threading

import numpy as np
import pytest

import repro
from repro.codegen import codegen_stats, registry, reset_codegen_stats
from repro.core import clear_caches
from repro.core.cache import _SizedLRU

pytestmark = []  # smoke herds below stay unmarked (tier-1)

SWEEP = 50  # consecutive no-flake iterations for the full sweeps


@pytest.fixture(autouse=True)
def isolated_caches():
    clear_caches()
    reset_codegen_stats()
    yield
    clear_caches()
    reset_codegen_stats()


def run_herd(n_threads, worker):
    """Release ``n_threads`` copies of ``worker(tid)`` through one barrier;
    re-raise the first failure."""
    barrier = threading.Barrier(n_threads)
    errors = []

    def wrap(tid):
        try:
            barrier.wait(timeout=30)
            worker(tid)
        except BaseException as e:  # noqa: BLE001 - surfaced after join
            errors.append(e)

    threads = [threading.Thread(target=wrap, args=(t,), name=f"herd-{t}")
               for t in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not any(t.is_alive() for t in threads), "herd thread hung"
    if errors:
        raise errors[0]


# --------------------------------------------------------------------- #
# layer 1: single-flight lowering in the AOT registry
# --------------------------------------------------------------------- #
def _registry_herd(iteration: int) -> None:
    clear_caches()
    reset_codegen_stats()
    key = f"stress_key_{iteration}"
    got = [None] * 16

    def worker(tid):
        got[tid] = registry.aot_entry_for(key, "spmv", "csr", "rows")

    run_herd(16, worker)
    entries = {id(e) for e in got}
    assert None not in got
    assert len(entries) == 1, "herd observed distinct AotEntry objects"
    assert codegen_stats()["lowered"] == 1, (
        f"double-lowering: {codegen_stats()['lowered']} for one key"
    )


def test_registry_single_flight_smoke():
    _registry_herd(0)


@pytest.mark.serving
@pytest.mark.slow
def test_registry_single_flight_sweep():
    for i in range(SWEEP):
        _registry_herd(i)


def _registry_many_keys_herd(iteration: int) -> None:
    # 16 threads x 8 distinct keys, all colliding: lowered == distinct keys.
    clear_caches()
    reset_codegen_stats()
    keys = [f"stress_mk_{iteration}_{k}" for k in range(8)]

    def worker(tid):
        for k in (keys if tid % 2 else reversed(keys)):
            registry.aot_entry_for(k, "spmv", "csr", "nonzeros")

    run_herd(16, worker)
    assert codegen_stats()["lowered"] == len(keys)


def test_registry_many_keys_smoke():
    _registry_many_keys_herd(0)


@pytest.mark.serving
@pytest.mark.slow
def test_registry_many_keys_sweep():
    for i in range(SWEEP):
        _registry_many_keys_herd(i)


# --------------------------------------------------------------------- #
# layer 2: the byte-budgeted LRU under an interleaved herd
# --------------------------------------------------------------------- #
def _lru_herd(iteration: int) -> None:
    lru = _SizedLRU(budget_bytes=1 << 30, max_entries=10_000)
    n_threads, per_thread = 8, 50

    def worker(tid):
        for i in range(per_thread):
            lru.put((tid, i), f"v{tid}.{i}", nbytes=100)
            assert lru.get((tid, i)) == f"v{tid}.{i}"

    run_herd(n_threads, worker)
    # no lost entries: everything fits the budget, so every put survives
    assert len(lru) == n_threads * per_thread
    for tid in range(n_threads):
        for i in range(per_thread):
            assert lru.get((tid, i)) == f"v{tid}.{i}", "lost cache entry"
    assert lru.total_bytes == n_threads * per_thread * 100
    assert lru.hits == 2 * n_threads * per_thread  # worker + verify reads
    assert lru.misses == 0
    assert lru.evictions == 0


def test_lru_no_lost_entries_smoke():
    _lru_herd(0)


@pytest.mark.serving
@pytest.mark.slow
def test_lru_no_lost_entries_sweep():
    for i in range(SWEEP):
        _lru_herd(i)


def _lru_eviction_herd(iteration: int) -> None:
    # Budget forces constant eviction; accounting must stay exact anyway.
    lru = _SizedLRU(budget_bytes=1_000, max_entries=10_000)

    def worker(tid):
        for i in range(100):
            lru.put((tid, i), i, nbytes=100)
            lru.get((tid, i - 1))

    run_herd(8, worker)
    live = [k for k in list(lru.items())]
    assert lru.total_bytes <= 1_000
    assert lru.total_bytes == 100 * len(live)
    assert lru.evictions == 8 * 100 - len(live)


def test_lru_eviction_accounting_smoke():
    _lru_eviction_herd(0)


@pytest.mark.serving
@pytest.mark.slow
def test_lru_eviction_accounting_sweep():
    for i in range(SWEEP):
        _lru_eviction_herd(i)


# --------------------------------------------------------------------- #
# layer 3: the full serving path — compile/execute/autotune herds
# --------------------------------------------------------------------- #
N, K = 64, 4


def _make_data(iteration: int):
    rng = np.random.default_rng(1000 + iteration)
    B = rng.random((N, N)) * (rng.random((N, N)) < 0.15)
    return B, rng.random(N), rng.random((N, K))


def _serial_reference(B, x, C):
    clear_caches()
    with repro.session(nodes=2) as s:
        Bt = s.tensor("B", B, repro.CSR)
        ref_spmv = np.array(repro.einsum(
            "ij,j->i", Bt, s.tensor("x", x), session=s).to_dense(), copy=True)
        ref_spmm = np.array(repro.einsum(
            "ij,jk->ik", Bt, s.tensor("C", C), session=s).to_dense(), copy=True)
    return {"ij,j->i": ref_spmv, "ij,jk->ik": ref_spmm}


def _serving_herd(iteration: int, tune: bool) -> None:
    B, x, C = _make_data(iteration)
    ref = _serial_reference(B, x, C)
    clear_caches()
    reset_codegen_stats()
    requests = (("ij,j->i", ("B", "x")), ("ij,jk->ik", ("B", "C")))
    results = [[] for _ in range(12)]
    with repro.serve(nodes=2, workers=4, tune=tune) as srv:
        srv.put_tensor("B", B, repro.CSR)
        srv.put_tensor("x", x)
        srv.put_tensor("C", C)

        def worker(tid):
            futs = [srv.submit(spec, *names, tenant=f"t{tid}")
                    for spec, names in requests for _ in range(3)]
            results[tid] = [(f.result(timeout=120)) for f in futs]

        run_herd(12, worker)
        # dedup: one build per distinct signature across the whole herd
        assert srv.compiles == len(requests), (
            f"{srv.compiles} builds for {len(requests)} signatures"
        )
        per_sig_leaders = {}
        for row in results:
            for r in row:
                per_sig_leaders.setdefault(r.key, 0)
                per_sig_leaders[r.key] += bool(r.compiled)
        assert all(v == 1 for v in per_sig_leaders.values()), per_sig_leaders
    # no double-lowering under the herd: at most one per (kernel, strategy)
    stats = codegen_stats()
    assert stats["lowered"] <= 2 * (3 if tune else 1)
    # bit-identical to serial — same spec, same answer, every response
    for row in results:
        for r in row:
            assert np.array_equal(r.value, ref[r.key[0]]), (
                f"response diverged from serial for {r.key[0]}"
            )


def test_serving_compile_execute_herd_smoke():
    _serving_herd(0, tune=False)


def test_serving_autotune_herd_smoke():
    _serving_herd(1, tune=True)


@pytest.mark.serving
@pytest.mark.slow
def test_serving_compile_execute_herd_sweep():
    for i in range(SWEEP):
        _serving_herd(i, tune=False)


@pytest.mark.serving
@pytest.mark.slow
def test_serving_autotune_herd_sweep():
    for i in range(SWEEP):
        _serving_herd(i, tune=True)
