"""Optional numba JIT tier: env gating, warn-once probe, exactness."""
import importlib.util
import warnings

import numpy as np
import pytest
import scipy.sparse as sp

from repro.codegen import codegen_stats, registry, reset_codegen_stats
from repro.core import clear_caches, compile_kernel
from repro.legion import Machine, Runtime
from repro.taco import CSR, Tensor, index_vars

N, M, PIECES = 48, 40, 4

_NUMBA_PRESENT = importlib.util.find_spec("numba") is not None


@pytest.fixture(autouse=True)
def isolated(monkeypatch):
    monkeypatch.delenv("REPRO_CODEGEN_JIT", raising=False)
    registry.reset_jit_state()
    clear_caches()
    reset_codegen_stats()
    yield
    registry.reset_jit_state()
    clear_caches()
    reset_codegen_stats()


def spmv_workload(seed=33):
    rng = np.random.default_rng(seed)
    A = sp.random(N, M, density=0.15, random_state=rng, format="csr")
    B = Tensor.from_scipy("B", A, CSR)
    c = Tensor.from_dense("c", rng.random(M))
    a = Tensor.zeros("a", (N,))
    i, j, io, ii = index_vars("i j io ii")
    a[i] = B[i, j] * c[j]
    sched = (a.schedule().divide(i, io, ii, PIECES).distribute(io)
             .communicate([a, B, c], io))
    return a, sched


def test_jit_off_by_default():
    assert registry.jit_decorator() is None


@pytest.mark.skipif(_NUMBA_PRESENT, reason="numba installed: absence path n/a")
def test_missing_numba_warns_exactly_once(monkeypatch):
    monkeypatch.setenv("REPRO_CODEGEN_JIT", "1")
    with pytest.warns(RuntimeWarning, match="numba is not importable"):
        assert registry.jit_decorator() is None
    # Second probe: still None, but silent.
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert registry.jit_decorator() is None
    assert caught == []


@pytest.mark.skipif(_NUMBA_PRESENT, reason="numba installed: absence path n/a")
def test_missing_numba_keeps_vectorized_kernels(monkeypatch):
    monkeypatch.setenv("REPRO_CODEGEN_JIT", "1")
    machine = Machine.cpu(PIECES)
    a1, s1 = spmv_workload()
    with pytest.warns(RuntimeWarning, match="numba is not importable"):
        ck = compile_kernel(s1, machine, backend="codegen")
        ck.execute(Runtime(machine))
    assert codegen_stats()["binds"] >= 1
    clear_caches()
    a2, s2 = spmv_workload()
    ck2 = compile_kernel(s2, machine, backend="interp")
    ck2.execute(Runtime(machine))
    np.testing.assert_array_equal(a1.to_dense(), a2.to_dense())


def test_jit_tier_matches_interpreter_exactly(monkeypatch):
    pytest.importorskip("numba")
    monkeypatch.setenv("REPRO_CODEGEN_JIT", "1")
    machine = Machine.cpu(PIECES)
    a1, s1 = spmv_workload()
    ck = compile_kernel(s1, machine, backend="codegen")
    ck.execute(Runtime(machine))
    assert codegen_stats()["binds"] >= 1
    clear_caches()
    a2, s2 = spmv_workload()
    ck2 = compile_kernel(s2, machine, backend="interp")
    ck2.execute(Runtime(machine))
    # Sequential per-row accumulation matches np.bincount's add order, so
    # the JIT tier is bit-identical, not merely close.
    np.testing.assert_array_equal(a1.to_dense(), a2.to_dense())
