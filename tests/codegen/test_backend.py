"""Codegen backend knobs, fallbacks, and generated-module plumbing."""
import numpy as np
import pytest
import scipy.sparse as sp

import repro
from repro import codegen
from repro.api.autoschedule import auto_schedule
from repro.codegen import (
    BACKENDS,
    codegen_backend,
    codegen_stats,
    reset_codegen_stats,
    set_codegen_backend,
)
from repro.core import cache as _cache
from repro.core import clear_caches, compile_kernel
from repro.legion import Machine, Runtime
from repro.taco import CSR, Tensor, index_vars

N, M, PIECES = 48, 40, 4


@pytest.fixture(autouse=True)
def isolated():
    clear_caches()
    reset_codegen_stats()
    prev = codegen_backend()
    yield
    set_codegen_backend(prev)
    clear_caches()
    reset_codegen_stats()


def spmv_workload(seed=11):
    rng = np.random.default_rng(seed)
    A = sp.random(N, M, density=0.15, random_state=rng, format="csr")
    B = Tensor.from_scipy("B", A, CSR)
    c = Tensor.from_dense("c", rng.random(M))
    a = Tensor.zeros("a", (N,))
    i, j, io, ii = index_vars("i j io ii")
    a[i] = B[i, j] * c[j]
    sched = (a.schedule().divide(i, io, ii, PIECES).distribute(io)
             .communicate([a, B, c], io))
    return a, sched


class TestKnobs:
    def test_set_backend_returns_previous(self):
        prev = set_codegen_backend("interp")
        assert prev in BACKENDS
        assert codegen_backend() == "interp"
        assert set_codegen_backend("codegen") == "interp"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            set_codegen_backend("llvm")
        with pytest.raises(ValueError, match="unknown backend"):
            codegen.resolve_backend("llvm")

    def test_resolve_none_uses_default(self):
        set_codegen_backend("interp")
        assert codegen.resolve_backend(None) == "interp"
        assert codegen.resolve_backend("codegen") == "codegen"

    def test_session_validates_backend_eagerly(self):
        with pytest.raises(ValueError, match="unknown backend"):
            repro.Session(machine=Machine.cpu(PIECES), backend="bogus")

    def test_compile_statement_rejects_unknown_backend(self):
        a, sched = spmv_workload()
        with pytest.raises(ValueError, match="unknown backend"):
            compile_kernel(sched, Machine.cpu(PIECES), backend="bogus")


class TestFallbacks:
    def test_unsupported_format_falls_back_to_interpreter(self):
        # CSC stores levels column-major (mode_ordering (1, 0)); no lowering
        # template indexes permuted layouts, so codegen must route the
        # kernel back to the interpreter leaf and match it exactly.
        def build(seed=5):
            rng = np.random.default_rng(seed)
            A = sp.random(24, 24, density=0.2, random_state=rng,
                          format="csr")
            B = Tensor.from_scipy("B", A, repro.CSC)
            c = Tensor.from_dense("c", rng.random(24))
            a = Tensor.zeros("a", (24,))
            i, j = index_vars("i j")
            a[i] = B[i, j] * c[j]
            return a

        machine = Machine.cpu(PIECES)
        a1 = build()
        ck1 = compile_kernel(auto_schedule(a1, machine, strategy="rows"),
                             machine, backend="interp")
        ck1.execute(Runtime(machine))
        clear_caches()
        a2 = build()
        ck2 = compile_kernel(auto_schedule(a2, machine, strategy="rows"),
                             machine, backend="codegen")
        ck2.execute(Runtime(machine))
        stats = codegen_stats()
        assert stats["fallbacks"] >= 1
        assert stats["binds"] == 0
        np.testing.assert_array_equal(a1.to_dense(), a2.to_dense())

    def test_caches_disabled_falls_back(self):
        a, sched = spmv_workload()
        machine = Machine.cpu(PIECES)
        with _cache.caches_disabled():
            ck = compile_kernel(sched, machine, backend="codegen")
            ck.execute(Runtime(machine))
        stats = codegen_stats()
        assert stats["fallbacks"] >= 1
        assert stats["lowered"] == 0


class TestGeneratedModules:
    def test_backends_agree_exactly(self):
        machine = Machine.cpu(PIECES)
        a1, s1 = spmv_workload(seed=21)
        ck1 = compile_kernel(s1, machine, backend="interp")
        ck1.execute(Runtime(machine))
        clear_caches()
        a2, s2 = spmv_workload(seed=21)
        ck2 = compile_kernel(s2, machine, backend="codegen")
        ck2.execute(Runtime(machine))
        assert codegen_stats()["binds"] >= 1
        np.testing.assert_array_equal(a1.to_dense(), a2.to_dense())

    def test_dump_env_writes_generated_source(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CODEGEN_DUMP", str(tmp_path / "dump"))
        a, sched = spmv_workload()
        machine = Machine.cpu(PIECES)
        ck = compile_kernel(sched, machine, backend="codegen")
        ck.execute(Runtime(machine))
        dumped = list((tmp_path / "dump").glob("spmv_csr_*.py"))
        assert len(dumped) == 1
        text = dumped[0].read_text()
        assert "Generated by repro.codegen" in text
        assert "def bind(" in text

    def test_generated_module_carries_meta(self):
        a, sched = spmv_workload()
        machine = Machine.cpu(PIECES)
        ck = compile_kernel(sched, machine, backend="codegen")
        ck.execute(Runtime(machine))
        from repro.core.store import stable_fingerprint

        entry = _cache.lookup_aot(stable_fingerprint(sched, machine))
        assert entry is not None and entry.module is not None
        meta = entry.module.META
        assert meta["generator"] == "repro.codegen"
        assert (meta["kind"], meta["format"]) == ("spmv", "csr")
        assert entry.module.__aot_key__ == entry.key
