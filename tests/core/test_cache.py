"""Cache correctness: kernel cache, partition memo, invalidation rules,
size-aware eviction."""
import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import (
    PartitioningPlan,
    cache_budgets,
    cache_stats,
    caches_disabled,
    clear_caches,
    compile_kernel,
    invalidate_tensor,
    kernel_fingerprint,
    partition_tensor,
    set_cache_budget,
)
from repro.legion import Machine, Runtime
from repro.taco import CSR, Tensor, index_vars

rng = np.random.default_rng(11)
N, M = 60, 48


@pytest.fixture(autouse=True)
def isolated_caches():
    clear_caches()
    yield
    clear_caches()


def make_tensors(seed=3):
    r = np.random.default_rng(seed)
    A = sp.random(N, M, density=0.2, random_state=r, format="csr")
    B = Tensor.from_scipy("B", A, CSR)
    c = Tensor.from_dense("c", r.random(M))
    a = Tensor.zeros("a", (N,))
    return A, B, c, a


def spmv_schedule(B, c, a, pieces=4):
    i, j, io, ii = index_vars("i j io ii")
    a[i] = B[i, j] * c[j]
    return a.schedule().divide(i, io, ii, pieces).distribute(io)


class TestKernelCache:
    def test_same_schedule_same_tensors_hits(self):
        _, B, c, a = make_tensors()
        machine = Machine.cpu(4)
        ck1 = compile_kernel(spmv_schedule(B, c, a), machine)
        ck2 = compile_kernel(spmv_schedule(B, c, a), machine)
        assert ck1 is ck2  # compile-once / run-many

    def test_fingerprint_canonicalizes_fresh_vars(self):
        _, B, c, a = make_tensors()
        machine = Machine.cpu(4)
        f1 = kernel_fingerprint(spmv_schedule(B, c, a), machine)
        f2 = kernel_fingerprint(spmv_schedule(B, c, a), machine)
        assert f1 == f2  # new IndexVar objects, same canonical key

    def test_equivalent_machine_hits_different_size_misses(self):
        _, B, c, a = make_tensors()
        ck1 = compile_kernel(spmv_schedule(B, c, a), Machine.cpu(4))
        ck2 = compile_kernel(spmv_schedule(B, c, a), Machine.cpu(4))
        ck3 = compile_kernel(spmv_schedule(B, c, a), Machine.cpu(2))
        assert ck1 is ck2
        assert ck3 is not ck1

    def test_different_piece_count_misses(self):
        _, B, c, a = make_tensors()
        machine = Machine.cpu(4)
        ck1 = compile_kernel(spmv_schedule(B, c, a, pieces=4), machine)
        ck2 = compile_kernel(spmv_schedule(B, c, a, pieces=2), machine)
        assert ck1 is not ck2

    def test_cached_execution_bit_identical(self):
        A, B, c, a = make_tensors()
        machine = Machine.cpu(4)
        x = c.vals.data.copy()
        ck = compile_kernel(spmv_schedule(B, c, a), machine)
        r1 = ck.execute(Runtime(machine))
        out1 = a.vals.data.copy()
        m1 = [(s.name, s.tasks_launched, s.comm_bytes()) for s in r1.metrics.steps]

        clear_caches()
        with caches_disabled():
            ck_u = compile_kernel(spmv_schedule(B, c, a), machine, use_cache=False)
            r2 = ck_u.execute(Runtime(machine, trace_replay=False))
        out2 = a.vals.data.copy()
        m2 = [(s.name, s.tasks_launched, s.comm_bytes()) for s in r2.metrics.steps]

        assert np.array_equal(out1, out2)
        assert np.allclose(out1, A @ x)
        assert m1 == m2
        assert r1.simulated_seconds == pytest.approx(r2.simulated_seconds)

    def test_mutated_pattern_misses(self):
        A, B, c, a = make_tensors()
        machine = Machine.cpu(4)
        ck1 = compile_kernel(spmv_schedule(B, c, a), machine)
        # Re-pack B with a different sparsity pattern (structural change).
        A2 = sp.random(N, M, density=0.3, random_state=np.random.default_rng(9),
                       format="csr").tocoo()
        B._pack([A2.row.astype(np.int64), A2.col.astype(np.int64)], A2.data)
        ck2 = compile_kernel(spmv_schedule(B, c, a), machine)
        assert ck2 is not ck1
        ck2.execute()
        assert np.allclose(a.vals.data, A2.tocsr() @ c.vals.data)

    def test_mutated_values_only_hits(self):
        A, B, c, a = make_tensors()
        machine = Machine.cpu(4)
        ck1 = compile_kernel(spmv_schedule(B, c, a), machine)
        ck1.execute()
        B.vals.data *= 2.0  # value write: pattern unchanged
        c.vals.data[...] = rng.random(M)
        ck2 = compile_kernel(spmv_schedule(B, c, a), machine)
        assert ck2 is ck1  # partition + kernel caches still hot
        ck2.execute()
        assert np.allclose(a.vals.data, (2.0 * A) @ c.vals.data)

    def test_use_cache_false_bypasses(self):
        _, B, c, a = make_tensors()
        machine = Machine.cpu(4)
        ck1 = compile_kernel(spmv_schedule(B, c, a), machine)
        ck2 = compile_kernel(spmv_schedule(B, c, a), machine, use_cache=False)
        assert ck2 is not ck1

    def test_invalidate_tensor_drops_entries(self):
        _, B, c, a = make_tensors()
        machine = Machine.cpu(4)
        ck1 = compile_kernel(spmv_schedule(B, c, a), machine)
        assert invalidate_tensor(B) > 0
        ck2 = compile_kernel(spmv_schedule(B, c, a), machine)
        assert ck2 is not ck1


class TestPartitionMemo:
    def bounds(self, pieces=4):
        chunk = -(-N // pieces)
        return {p: (p * chunk, min((p + 1) * chunk, N) - 1) for p in range(pieces)}

    def test_repeat_partition_returns_cached_object(self):
        _, B, _, _ = make_tensors()
        p1 = partition_tensor(B, 1, "universe", self.bounds())
        p2 = partition_tensor(B, 1, "universe", self.bounds())
        assert p1 is p2

    def test_plan_statements_replayed_on_hit(self):
        _, B, _, _ = make_tensors()
        plan1 = PartitioningPlan("first")
        partition_tensor(B, 1, "universe", self.bounds(), plan1)
        plan2 = PartitioningPlan("second")
        partition_tensor(B, 1, "universe", self.bounds(), plan2)
        assert plan1.ops() == plan2.ops()
        assert plan1.describe() == plan2.describe()

    def test_different_bounds_miss(self):
        _, B, _, _ = make_tensors()
        p1 = partition_tensor(B, 1, "universe", self.bounds(4))
        p2 = partition_tensor(B, 1, "universe", self.bounds(2))
        assert p1 is not p2

    def test_pattern_bump_misses_value_write_hits(self):
        _, B, _, _ = make_tensors()
        p1 = partition_tensor(B, 1, "universe", self.bounds())
        B.vals.data += 1.0
        assert partition_tensor(B, 1, "universe", self.bounds()) is p1
        B._bump_pattern_version()
        assert partition_tensor(B, 1, "universe", self.bounds()) is not p1

    def test_stats_count_hits(self):
        _, B, _, _ = make_tensors()
        before = cache_stats()["partition_hits"]
        partition_tensor(B, 1, "universe", self.bounds())
        partition_tensor(B, 1, "universe", self.bounds())
        assert cache_stats()["partition_hits"] == before + 1


class TestPostCompileMutation:
    def test_streamed_kernel_not_served_from_cache(self):
        """stream_tensor() after compile must not leak into later callers
        of the identical schedule (caching must not change metrics)."""
        _, B, c, a = make_tensors()
        machine = Machine.cpu(4)
        ck1 = compile_kernel(spmv_schedule(B, c, a), machine)
        ck1.stream_tensor(c)
        ck2 = compile_kernel(spmv_schedule(B, c, a), machine)
        assert ck2 is not ck1
        assert not ck2._streamed
        # the fresh (unstreamed) kernel replaced the entry
        ck3 = compile_kernel(spmv_schedule(B, c, a), machine)
        assert ck3 is ck2


class TestSizeAwareEviction:
    @pytest.fixture(autouse=True)
    def restore_budgets(self):
        before = cache_budgets()
        yield
        set_cache_budget(kernel_bytes=before["kernel_bytes"],
                         partition_bytes=before["partition_bytes"])

    def bounds(self, pieces=4):
        chunk = -(-N // pieces)
        return {p: (p * chunk, min((p + 1) * chunk, N) - 1) for p in range(pieces)}

    def test_entries_are_byte_accounted(self):
        _, B, _, _ = make_tensors()
        partition_tensor(B, 1, "universe", self.bounds())
        stats = cache_stats()
        assert stats["partition_entries"] == 1
        assert stats["partition_bytes"] > 0

    def test_lru_evicted_when_budget_exceeded(self):
        _, B, _, _ = make_tensors()
        p4 = partition_tensor(B, 1, "universe", self.bounds(4))
        one_entry = cache_stats()["partition_bytes"]
        # Room for roughly one entry: adding a second evicts the older.
        set_cache_budget(partition_bytes=int(one_entry * 1.5))
        p2 = partition_tensor(B, 1, "universe", self.bounds(2))
        stats = cache_stats()
        assert stats["partition_evictions"] >= 1
        assert stats["partition_bytes"] <= int(one_entry * 1.5)
        # The newer entry survived, the older was dropped.
        assert partition_tensor(B, 1, "universe", self.bounds(2)) is p2
        assert partition_tensor(B, 1, "universe", self.bounds(4)) is not p4

    def test_oversized_entry_still_caches(self):
        """A single entry above the whole budget is kept (run-many over one
        huge tensor must not lose its only entry)."""
        _, B, _, _ = make_tensors()
        set_cache_budget(partition_bytes=1)
        p = partition_tensor(B, 1, "universe", self.bounds())
        assert partition_tensor(B, 1, "universe", self.bounds()) is p
        assert cache_stats()["partition_entries"] == 1

    def test_shrinking_budget_evicts_immediately(self):
        _, B, _, _ = make_tensors()
        partition_tensor(B, 1, "universe", self.bounds(4))
        partition_tensor(B, 1, "universe", self.bounds(2))
        assert cache_stats()["partition_entries"] == 2
        set_cache_budget(partition_bytes=1)
        assert cache_stats()["partition_entries"] == 1  # newest kept

    def test_kernel_entries_accounted_and_evicted(self):
        _, B, c, a = make_tensors()
        machine = Machine.cpu(4)
        ck4 = compile_kernel(spmv_schedule(B, c, a, pieces=4), machine)
        assert cache_stats()["kernel_bytes"] > 0
        set_cache_budget(kernel_bytes=1)
        ck2 = compile_kernel(spmv_schedule(B, c, a, pieces=2), machine)
        stats = cache_stats()
        assert stats["kernel_evictions"] >= 1
        assert stats["kernel_entries"] == 1
        assert compile_kernel(spmv_schedule(B, c, a, pieces=2), machine) is ck2
        assert compile_kernel(spmv_schedule(B, c, a, pieces=4), machine) is not ck4

    def test_invalidate_tensor_releases_bytes(self):
        _, B, _, _ = make_tensors()
        partition_tensor(B, 1, "universe", self.bounds())
        assert cache_stats()["partition_bytes"] > 0
        invalidate_tensor(B)
        assert cache_stats()["partition_bytes"] == 0


class TestSeedPathBypass:
    def test_use_cache_false_bypasses_partition_memo(self):
        _, B, c, a = make_tensors()
        machine = Machine.cpu(4)
        compile_kernel(spmv_schedule(B, c, a), machine)  # warm the memo
        misses = cache_stats()["partition_misses"]
        hits = cache_stats()["partition_hits"]
        compile_kernel(spmv_schedule(B, c, a), machine, use_cache=False)
        # a true seed-path compile consults neither cache
        assert cache_stats()["partition_hits"] == hits
        assert cache_stats()["partition_misses"] == misses
