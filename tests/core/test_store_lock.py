"""Concurrent-writer safety of the artifact store index.

``index.json`` updates are read-modify-replace; without the advisory file
lock two processes putting at the same time interleave and one writer's
artifacts silently vanish from the replaced index.  These tests drive two
(and more) real processes against one store root and assert nothing is
lost and the index stays internally consistent.
"""
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.store_index import ArtifactStore

SRC = str(Path(__file__).resolve().parents[2] / "src")

CHILD = r"""
import sys
import numpy as np
from repro.core.store_index import ArtifactStore
from repro.taco.formats import CSR
from repro.taco.tensor import Tensor

root, worker, puts = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
store = ArtifactStore(root)
rng = np.random.default_rng(1000 + worker)
for k in range(puts):
    n = 12
    dense = rng.random((n, n)) * (rng.random((n, n)) < 0.4)
    t = Tensor.from_dense(f"w{worker}_{k}", dense, CSR)
    store.put(t, keys=[f"job:w{worker}:{k}"], include_caches=False)
print("done", worker)
"""


def _spawn(root, worker, puts):
    env = dict(os.environ, PYTHONPATH=SRC)
    return subprocess.Popen(
        [sys.executable, "-c", CHILD, str(root), str(worker), str(puts)],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


class TestConcurrentWriters:
    def test_two_processes_lose_no_artifacts(self, tmp_path):
        """Two writers racing on one store: every put survives, the index
        verifies clean, and every key resolves."""
        root = tmp_path / "store"
        puts = 6
        procs = [_spawn(root, w, puts) for w in range(2)]
        for p in procs:
            out, err = p.communicate(timeout=120)
            assert p.returncode == 0, f"writer failed:\n{out}\n{err}"

        store = ArtifactStore(root)
        idx = store.read_index()
        assert len(idx["artifacts"]) == 2 * puts
        assert store.verify() == []
        for w in range(2):
            for k in range(puts):
                assert store.resolve(f"job:w{w}:{k}") is not None

    @pytest.mark.slow
    def test_many_processes_with_gc_stay_consistent(self, tmp_path):
        """Four writers plus a parent-side GC pass: retention keeps each
        key's newest artifact and integrity holds afterwards."""
        root = tmp_path / "store"
        puts = 4
        procs = [_spawn(root, w, puts) for w in range(4)]
        for p in procs:
            out, err = p.communicate(timeout=240)
            assert p.returncode == 0, f"writer failed:\n{out}\n{err}"
        store = ArtifactStore(root)
        assert len(store.read_index()["artifacts"]) == 4 * puts
        store.gc(keep_latest=1)
        assert store.verify() == []
        for w in range(4):
            for k in range(puts):
                assert store.resolve(f"job:w{w}:{k}") is not None

    def test_lock_file_is_not_treated_as_an_orphan(self, tmp_path):
        """The sidecar lock file lives at the store root and must survive
        gc's orphan sweep and verify()."""
        import numpy as np

        from repro.taco.formats import CSR
        from repro.taco.tensor import Tensor

        root = tmp_path / "store"
        store = ArtifactStore(root)
        dense = np.eye(8)
        store.put(Tensor.from_dense("T", dense, CSR), include_caches=False)
        assert store.lock_path.exists()
        store.gc(keep_latest=1)
        assert store.lock_path.exists()
        assert store.verify() == []
