"""AOT module cache keying: fingerprint stability and invalidation.

Generated modules are keyed by the stable schedule fingerprint (schedule
signature + tensor pattern versions + machine signature).  Editing any
fingerprint input must force a re-lowering; an unchanged fingerprint must
resolve to the *same* exec-loaded module object with zero lowering work.
The warm-start contract (artifact store round trip re-seeds the cache
without lowering) is asserted here too.
"""
import numpy as np
import pytest
import scipy.sparse as sp

from repro.codegen import codegen_stats, reset_codegen_stats
from repro.core import cache as _cache
from repro.core import clear_caches, compile_kernel
from repro.core.store import stable_fingerprint
from repro.core.store_index import ArtifactStore
from repro.legion import Machine, Runtime
from repro.taco import CSR, Tensor, index_vars

N, M, PIECES = 60, 48, 4


@pytest.fixture(autouse=True)
def isolated():
    clear_caches()
    reset_codegen_stats()
    yield
    clear_caches()
    reset_codegen_stats()


def make_workload(seed=7):
    rng = np.random.default_rng(seed)
    A = sp.random(N, M, density=0.1, random_state=rng, format="csr")
    B = Tensor.from_scipy("B", A, CSR)
    c = Tensor.from_dense("c", np.random.default_rng(3).random(M))
    a = Tensor.zeros("a", (N,))
    return B, c, a


def spmv_schedule(B, c, a, pieces=PIECES):
    i, j, io, ii = index_vars("i j io ii")
    a[i] = B[i, j] * c[j]
    return (a.schedule().divide(i, io, ii, pieces).distribute(io)
            .communicate([a, B, c], io))


def compile_and_run(sched, machine):
    ck = compile_kernel(sched, machine, backend="codegen")
    ck.execute(Runtime(machine))
    return ck


class TestFingerprintKeying:
    def test_unchanged_fingerprint_reuses_module_object(self):
        machine = Machine.cpu(PIECES)
        B, c, a = make_workload()
        s1 = spmv_schedule(B, c, a)
        compile_and_run(s1, machine)
        assert codegen_stats()["lowered"] == 1
        key = stable_fingerprint(s1, machine)
        entry1 = _cache.lookup_aot(key)
        assert entry1 is not None and entry1.module is not None

        B2, c2, a2 = make_workload()  # identical content, fresh tensors
        s2 = spmv_schedule(B2, c2, a2)
        assert stable_fingerprint(s2, machine) == key
        compile_and_run(s2, machine)
        entry2 = _cache.lookup_aot(key)
        assert entry2.module is entry1.module  # identity, not equality
        assert codegen_stats()["lowered"] == 1  # no re-lowering

    def test_pattern_version_bump_forces_relowering(self):
        machine = Machine.cpu(PIECES)
        B, c, a = make_workload()
        compile_and_run(spmv_schedule(B, c, a), machine)
        assert codegen_stats()["lowered"] == 1
        B._bump_pattern_version()
        B2, c2, a2 = make_workload()
        B2.pattern_version = B.pattern_version  # same bumped state
        compile_and_run(spmv_schedule(B2, c2, a2), machine)
        assert codegen_stats()["lowered"] == 2

    def test_machine_signature_change_forces_relowering(self):
        B, c, a = make_workload()
        compile_and_run(spmv_schedule(B, c, a), Machine.cpu(PIECES))
        assert codegen_stats()["lowered"] == 1
        B2, c2, a2 = make_workload()
        compile_and_run(spmv_schedule(B2, c2, a2), Machine.gpu(PIECES))
        assert codegen_stats()["lowered"] == 2

    def test_schedule_edit_forces_relowering(self):
        machine = Machine.cpu(PIECES)
        B, c, a = make_workload()
        compile_and_run(spmv_schedule(B, c, a), machine)
        assert codegen_stats()["lowered"] == 1
        B2, c2, a2 = make_workload()
        compile_and_run(spmv_schedule(B2, c2, a2, pieces=2), machine)
        assert codegen_stats()["lowered"] == 2


class TestStoreWarmStart:
    def test_round_trip_loads_with_zero_lowering(self, tmp_path):
        machine = Machine.cpu(PIECES)
        B, c, a = make_workload()
        sched = spmv_schedule(B, c, a)
        ck = compile_and_run(sched, machine)
        expected = np.array(a.to_dense(), copy=True)
        store = ArtifactStore(tmp_path / "store")
        store.put(B)  # persists the generated module under aot/

        clear_caches()
        reset_codegen_stats()
        B2, c2, a2 = make_workload()
        s2 = spmv_schedule(B2, c2, a2)
        store.load_latest(s2, machine)
        assert codegen_stats()["store_seeded"] == 1
        key = stable_fingerprint(s2, machine)
        entry = _cache.lookup_aot(key)
        assert entry is not None and entry.from_store
        ck2 = compile_kernel(s2, machine, backend="codegen")
        ck2.execute(Runtime(machine))
        stats = codegen_stats()
        assert stats["lowered"] == 0  # warm start: zero lowering work
        assert stats["binds"] >= 1  # ...but the generated leaf did run
        out = ck2.out.to_dense() if hasattr(ck2, "out") else a2.to_dense()
        np.testing.assert_array_equal(np.asarray(out).reshape(-1),
                                      expected.reshape(-1))
