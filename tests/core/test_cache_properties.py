"""Property tests for the byte-budgeted LRU behind every cache tier.

``repro.core.cache._SizedLRU`` carries the process-wide kernel cache,
partition memo, decision table and AOT registry — the state the
multi-tenant serving layer shares across tenants — so its documented
semantics are pinned here against a straight-line reference model under
randomized operation interleavings:

* **exact accounting** — ``total_bytes`` equals the sum of the live
  entries' charged sizes after *any* sequence of operations;
* **budget respected** — ``total_bytes <= budget_bytes`` and
  ``len <= max_entries`` after every operation, except the documented
  single-oversized-entry case (``len == 1``);
* **recency honored** — evictions remove exactly the least-recently-used
  entries (``get``/re-``put`` refresh recency), verified by comparing
  the full surviving key order against the model;
* **counters monotone** — ``hits``/``misses``/``evictions`` never
  decrease, under serial interleavings and under a thread herd.

Runs under `hypothesis` when importable (randomized + shrinking); always
also runs a seeded-random sweep so the properties hold even where
hypothesis is absent.
"""
import random
import threading
from collections import OrderedDict

import pytest

from repro.core.cache import _SizedLRU

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - environment-dependent
    HAVE_HYPOTHESIS = False


# --------------------------------------------------------------------- #
# the reference model: the documented semantics, minus the lock
# --------------------------------------------------------------------- #
class ModelLRU:
    def __init__(self, budget_bytes, max_entries):
        self.budget_bytes = budget_bytes
        self.max_entries = max_entries
        self.map = OrderedDict()  # key -> (value, nbytes)
        self.total = 0
        self.hits = self.misses = self.evictions = 0

    def get(self, key):
        if key not in self.map:
            self.misses += 1
            return None
        self.map.move_to_end(key)
        self.hits += 1
        return self.map[key][0]

    def put(self, key, value, nbytes):
        nbytes = max(int(nbytes), 1)
        if key in self.map:
            self.total -= self.map.pop(key)[1]
        self.map[key] = (value, nbytes)
        self.total += nbytes
        while len(self.map) > 1 and (self.total > self.budget_bytes
                                     or len(self.map) > self.max_entries):
            _, (_, dropped) = self.map.popitem(last=False)
            self.total -= dropped
            self.evictions += 1

    def resize(self, budget_bytes):
        self.budget_bytes = int(budget_bytes)
        while len(self.map) > 1 and self.total > self.budget_bytes:
            _, (_, dropped) = self.map.popitem(last=False)
            self.total -= dropped
            self.evictions += 1

    def clear(self):
        self.map.clear()
        self.total = 0


def apply_op(lru, model, op):
    """One operation against both implementations; returns paired results."""
    kind = op[0]
    if kind == "put":
        _, key, nbytes = op
        lru.put(key, f"v{key}", nbytes)
        model.put(key, f"v{key}", nbytes)
        return None, None
    if kind == "get":
        return lru.get(op[1]), model.get(op[1])
    if kind == "resize":
        lru.resize(op[1])
        model.resize(op[1])
        return None, None
    if kind == "clear":
        lru.clear()
        model.clear()
        return None, None
    raise AssertionError(op)


def check_invariants(lru, model, counters_before):
    # exact accounting: total_bytes == sum of live entries' charges
    charged = sum(nb for _, (_, nb) in lru._map.items())
    assert lru.total_bytes == charged
    # budget respected (single-oversized-entry exception)
    assert lru.total_bytes <= lru.budget_bytes or len(lru) == 1
    assert len(lru) <= lru.max_entries or len(lru) == 1
    # recency honored: the survivors and their LRU order match the model
    assert list(lru._map.keys()) == list(model.map.keys())
    assert lru.total_bytes == model.total
    # counters exact vs the model, and monotone vs the previous step
    assert (lru.hits, lru.misses, lru.evictions) == (
        model.hits, model.misses, model.evictions)
    h0, m0, e0 = counters_before
    assert lru.hits >= h0 and lru.misses >= m0 and lru.evictions >= e0


def run_interleaving(ops, budget, max_entries):
    lru = _SizedLRU(budget_bytes=budget, max_entries=max_entries)
    model = ModelLRU(budget, max_entries)
    for op in ops:
        before = (lru.hits, lru.misses, lru.evictions)
        got, want = apply_op(lru, model, op)
        assert got == want, f"{op}: {got!r} != model {want!r}"
        check_invariants(lru, model, before)


# --------------------------------------------------------------------- #
# operation generators: one for hypothesis, one seeded fallback
# --------------------------------------------------------------------- #
def random_ops(rng, n_ops, key_space=12, max_nbytes=400):
    ops = []
    for _ in range(n_ops):
        r = rng.random()
        key = rng.randrange(key_space)
        if r < 0.55:
            ops.append(("put", key, rng.randrange(0, max_nbytes)))
        elif r < 0.90:
            ops.append(("get", key))
        elif r < 0.97:
            ops.append(("resize", rng.randrange(1, 1200)))
        else:
            ops.append(("clear",))
    return ops


if HAVE_HYPOTHESIS:
    _op = st.one_of(
        st.tuples(st.just("put"), st.integers(0, 11), st.integers(0, 400)),
        st.tuples(st.just("get"), st.integers(0, 11)),
        st.tuples(st.just("resize"), st.integers(1, 1200)),
        st.tuples(st.just("clear")),
    )

    @settings(max_examples=200, deadline=None)
    @given(ops=st.lists(_op, max_size=60),
           budget=st.integers(1, 1000),
           max_entries=st.integers(1, 8))
    def test_lru_matches_model_hypothesis(ops, budget, max_entries):
        run_interleaving(ops, budget, max_entries)
else:  # pragma: no cover - environment-dependent
    def test_lru_matches_model_hypothesis():
        pytest.skip("hypothesis not importable; seeded sweep still runs")


def test_lru_matches_model_seeded_sweep():
    # The hypothesis-free floor: 300 random interleavings from fixed seeds.
    for seed in range(300):
        rng = random.Random(seed)
        budget = rng.randrange(1, 1000)
        max_entries = rng.randrange(1, 8)
        run_interleaving(random_ops(rng, 60), budget, max_entries)


# --------------------------------------------------------------------- #
# targeted edge properties
# --------------------------------------------------------------------- #
def test_single_oversized_entry_still_caches():
    lru = _SizedLRU(budget_bytes=10, max_entries=4)
    lru.put("huge", "v", nbytes=10_000)
    assert lru.get("huge") == "v"
    assert len(lru) == 1 and lru.total_bytes == 10_000
    # the next put displaces it and restores the budget
    lru.put("small", "w", nbytes=5)
    assert lru.get("huge") is None
    assert lru.total_bytes <= 10


def test_eviction_order_is_exactly_lru():
    lru = _SizedLRU(budget_bytes=300, max_entries=100)
    for k in "abc":
        lru.put(k, k, nbytes=100)
    lru.get("a")  # refresh: b is now least recent
    lru.put("d", "d", nbytes=100)  # evicts b
    assert lru.get("b") is None
    assert [k for k, _ in lru.items()] == ["c", "a", "d"]
    # re-putting c charges nothing new (same size): recency refreshes,
    # nothing is evicted
    lru.put("c", "c2", nbytes=100)
    assert [k for k, _ in lru.items()] == ["a", "d", "c"]


def test_zero_and_negative_nbytes_charge_at_least_one_byte():
    lru = _SizedLRU(budget_bytes=100, max_entries=100)
    lru.put("z", "v", nbytes=0)
    lru.put("n", "v", nbytes=-5)
    assert lru.total_bytes == 2


def test_counters_monotone_under_thread_herd():
    lru = _SizedLRU(budget_bytes=2_000, max_entries=64)
    snaps = []
    stop = threading.Event()

    def reader():
        while not stop.is_set():
            snaps.append((lru.hits, lru.misses, lru.evictions))

    def writer(tid):
        rng = random.Random(tid)
        for i in range(400):
            lru.put((tid, i % 16), i, nbytes=rng.randrange(1, 200))
            lru.get((tid, rng.randrange(16)))

    rt = threading.Thread(target=reader)
    rt.start()
    writers = [threading.Thread(target=writer, args=(t,)) for t in range(4)]
    for t in writers:
        t.start()
    for t in writers:
        t.join()
    stop.set()
    rt.join()
    # the reader's interleaved snapshots never observe a counter decrease
    for a, b in zip(snaps, snaps[1:]):
        assert b[0] >= a[0] and b[1] >= a[1] and b[2] >= a[2]
    # final accounting is exact even after the concurrent churn
    assert lru.total_bytes == sum(nb for _, (_, nb) in lru._map.items())
    assert lru.total_bytes <= 2_000 or len(lru) == 1
