"""Sparse output assembly tests (paper §V-B)."""
import numpy as np
import pytest

from repro.core import adopt_pattern, install_assembled_output, scan_counts
from repro.core.assembly import pattern_source
from repro.errors import CompileError
from repro.taco import CSF3, CSR, Tensor, index_vars

rng = np.random.default_rng(3)


def rand_csr(n=10, m=8, name="B"):
    dense = rng.random((n, m)) * (rng.random((n, m)) < 0.4)
    return Tensor.from_dense(name, dense, CSR)


class TestAdoptPattern:
    def test_shares_metadata_and_zeroes_vals(self):
        B = rand_csr()
        A = Tensor.zeros("A", (10, 8), CSR)
        adopt_pattern(A, B, keep_levels=2)
        assert A.levels[1] is B.levels[1]
        assert A.vals.ispace.volume == B.nnz
        assert np.all(A.vals.data == 0)

    def test_spttv_keeps_two_of_three_levels(self):
        idx = [rng.integers(0, 5, 30), rng.integers(0, 5, 30), rng.integers(0, 5, 30)]
        T = Tensor.from_coo("T", idx, np.ones(30), (5, 5, 5), CSF3)
        A = Tensor.zeros("A", (5, 5), CSR)
        adopt_pattern(A, T, keep_levels=2)
        assert len(A.levels) == 2
        assert A.vals.ispace.volume == T.levels[1].num_positions

    def test_too_many_levels_rejected(self):
        B = rand_csr()
        A = Tensor.zeros("A", (10, 8), CSR)
        with pytest.raises(CompileError):
            adopt_pattern(A, B, keep_levels=3)


class TestScanAndInstall:
    def test_scan_counts(self):
        pos = scan_counts(np.array([2, 0, 3]))
        assert pos.data.tolist() == [[0, 1], [2, 1], [2, 4]]

    def test_install_assembled_output(self):
        A = Tensor.zeros("A", (3, 5), CSR)
        counts = np.array([1, 2, 0])
        pos, crd, vals = install_assembled_output(A, counts, 5)
        assert pos.shape == (3, 2)
        assert crd.shape == (3,)
        assert vals.shape == (3,)
        # writable views into the tensor's regions
        crd[0] = 4
        vals[0] = 9.0
        assert A.levels[1].crd.data[0] == 4
        assert A.vals.data[0] == 9.0

    def test_install_rebuilds_structure(self):
        A = Tensor.zeros("A", (2, 3), CSR)
        install_assembled_output(A, np.array([3, 0]), 3)
        assert A.nnz == 3
        assert A.levels[1].pos.data.tolist() == [[0, 2], [3, 2]]
