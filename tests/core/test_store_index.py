"""Content-addressed artifact index: dedup, retention, GC, integrity."""
import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import clear_caches, compile_kernel, load_packed
from repro.core.store_index import ArtifactStore, fingerprint_key, gc_artifacts
from repro.errors import StoreError
from repro.legion import Machine, Runtime
from repro.taco import CSR, Tensor, index_vars

N, M, PIECES = 60, 48, 4


@pytest.fixture(autouse=True)
def isolated_caches():
    clear_caches()
    yield
    clear_caches()


def make_tensor(name="B", seed=7):
    rng = np.random.default_rng(seed)
    A = sp.random(N, M, density=0.1, random_state=rng, format="csr")
    return Tensor.from_scipy(name, A, CSR)


def spmv_schedule(B, c, a):
    i, j, io, ii = index_vars("i j io ii")
    a[i] = B[i, j] * c[j]
    return (a.schedule().divide(i, io, ii, PIECES).distribute(io)
            .communicate([a, B, c], io))


class TestPutResolve:
    def test_put_indexes_and_resolves_latest(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        B = make_tensor()
        path = store.put(B, include_caches=False, keys=["custom:one"])
        assert path.is_dir()
        assert store.resolve("tensor:B") == path
        assert store.resolve("custom:one") == path
        assert store.resolve("missing") is None
        art = store.load("tensor:B")
        assert np.array_equal(art.tensor.to_dense(), B.to_dense())

    def test_latest_wins_per_key(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put(make_tensor(seed=1), include_caches=False, keys=["k"])
        p2 = store.put(make_tensor(seed=2), include_caches=False, keys=["k"])
        assert store.resolve("k") == p2
        assert len(store.entries("k")) == 2

    def test_resolve_by_schedule_fingerprint(self, tmp_path):
        """load_packed resolves 'latest artifact for this schedule' via one
        index lookup — no directory scanning."""
        store = ArtifactStore(tmp_path / "store")
        B = make_tensor()
        rng = np.random.default_rng(3)
        c = Tensor.from_dense("c", rng.random(M))
        a = Tensor.zeros("a", (N,))
        machine = Machine.cpu(PIECES)
        rt = Runtime(machine)
        ck = compile_kernel(spmv_schedule(B, c, a), machine)
        ck.execute(rt)
        store.put(B)  # auto-keyed on the kernel's stable fingerprint
        key = fingerprint_key(spmv_schedule(B, c, a), machine)
        assert store.resolve(key) is not None
        clear_caches()
        art = store.load_latest(spmv_schedule(B, c, a), machine)
        assert "B" in {t.name for t in art.all_tensors()}
        assert art.kernels  # cache re-seeded from the resolved artifact

    def test_load_unknown_key_raises(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        with pytest.raises(StoreError, match="no artifact indexed"):
            store.load("nope")


class TestDedup:
    def test_identical_content_reuses_artifact(self, tmp_path):
        """A put whose content hash already exists creates no new artifact:
        the existing one gains the new keys (the dedup hit)."""
        store = ArtifactStore(tmp_path / "store")
        B = make_tensor()
        p1 = store.put(B, include_caches=False, keys=["k1"])
        p2 = store.put(B, include_caches=False, keys=["k2"])
        assert p1 == p2
        assert store.resolve("k1") == p1 and store.resolve("k2") == p1
        assert len(store.entries()) == 1

    def test_dedup_without_hard_links_keeps_artifact_files(self, tmp_path,
                                                           monkeypatch):
        """On filesystems without hard links the blob is copied and the
        artifact keeps (or gets back) its own file — dedup degradation must
        never lose a payload or sidecar."""
        import os as _os

        def no_link(*_a, **_k):
            raise OSError("links not supported")

        monkeypatch.setattr(_os, "link", no_link)
        store = ArtifactStore(tmp_path / "store")
        rng = np.random.default_rng(5)
        A = sp.random(N, M, density=0.1, random_state=rng, format="csr")
        store.put(Tensor.from_scipy("B", A, CSR), include_caches=False,
                  sidecar_threshold=0)
        store.put(Tensor.from_scipy("B", A, CSR), include_caches=False,
                  sidecar_threshold=0)  # same region content: blobs collide
        assert store.verify() == []
        for entry in store.entries():
            art = load_packed(tmp_path / "store" / entry["dir"])
            assert np.array_equal(art.tensor.to_dense(), A.toarray())

    def test_shared_sidecars_stored_once(self, tmp_path):
        """Two artifacts with distinct payloads but identical region data
        share the sidecar blobs by content hash."""
        store = ArtifactStore(tmp_path / "store")
        rng = np.random.default_rng(5)
        A = sp.random(N, M, density=0.1, random_state=rng, format="csr")
        B1 = Tensor.from_scipy("B", A, CSR)
        B2 = Tensor.from_scipy("B", A, CSR)  # equal data, new uids/pickle
        store.put(B1, include_caches=False, sidecar_threshold=0)
        store.put(B2, include_caches=False, sidecar_threshold=0)
        idx = store.read_index()
        assert len(idx["artifacts"]) == 2
        shared = [o for o in idx["objects"].values() if o["refs"] == 2]
        assert shared  # pos/crd/vals blobs are shared
        assert store.verify() == []


class TestGC:
    def test_keep_latest_retention(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        paths = [store.put(make_tensor(seed=s), include_caches=False, keys=["k"])
                 for s in range(3)]
        stats = store.gc(keep_latest=2)
        assert stats.removed_artifacts == 1
        assert not paths[0].exists()
        assert paths[1].exists() and paths[2].exists()
        assert store.resolve("k") == paths[2]
        assert store.verify() == []

    def test_artifact_survives_while_any_key_retains_it(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        shared = store.put(make_tensor(seed=1), include_caches=False,
                           keys=["a", "b"])
        store.put(make_tensor(seed=2), include_caches=False, keys=["a"])
        store.gc(keep_latest=1)  # newest under "a" is #2; under "b" is #1
        assert shared.exists()
        assert store.resolve("b") == shared

    def test_max_bytes_bounds_store(self, tmp_path):
        """gc(max_bytes=...) bounds a directory that previously grew without
        limit, evicting LRU artifacts but never the newest."""
        store = ArtifactStore(tmp_path / "store")
        newest = None
        for s in range(4):
            newest = store.put(make_tensor(name=f"B{s}", seed=s),
                               include_caches=False)
        before = store.total_bytes()
        budget = before // 3
        stats = store.gc(max_bytes=budget)
        assert stats.removed_artifacts >= 1
        assert stats.bytes_after < stats.bytes_before
        # Bounded by the budget — unless only the never-evicted newest
        # artifact remains and it alone exceeds it (the LRU rule).
        assert stats.bytes_after <= budget or len(store.entries()) == 1
        assert newest.exists()  # the newest artifact is never evicted
        assert store.verify() == []

    def test_gc_removes_orphaned_payloads_and_blobs(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put(make_tensor(seed=1), include_caches=False, keys=["k"])
        store.put(make_tensor(seed=2), include_caches=False, keys=["k"])
        # A crash between save and index write leaves an orphan dir.
        orphan = store.artifacts_dir / "a999999"
        orphan.mkdir()
        (orphan / "junk.pkl").write_bytes(b"x")
        stats = store.gc(keep_latest=1)
        assert not orphan.exists()
        assert stats.swept_orphans >= 1
        # No object blob survives without a referencing artifact.
        idx = store.read_index()
        on_disk = {p.name for p in store.objects_dir.iterdir()}
        assert on_disk == set(idx["objects"])
        assert store.verify() == []

    def test_module_level_gc_artifacts(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        for s in range(3):
            store.put(make_tensor(seed=s), include_caches=False, keys=["k"])
        stats = gc_artifacts(tmp_path / "store", keep_latest=1)
        assert stats.removed_artifacts == 2
        assert len(store.entries()) == 1

    def test_keep_latest_zero_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        with pytest.raises(StoreError, match="keep_latest"):
            store.gc(keep_latest=0)

    def test_max_bytes_pins_aot_holder(self, tmp_path):
        """Regression: max_bytes eviction must not evict the artifact that
        resolves a live ``fp:`` key when it carries AOT generated modules —
        only the single globally-newest artifact used to be protected."""
        store = ArtifactStore(tmp_path / "store")
        B = make_tensor()
        rng = np.random.default_rng(3)
        c = Tensor.from_dense("c", rng.random(M))
        a = Tensor.zeros("a", (N,))
        machine = Machine.cpu(PIECES)
        ck = compile_kernel(spmv_schedule(B, c, a), machine,
                            backend="codegen")
        ck.execute(Runtime(machine))
        holder = store.put(B)  # carries fp: key + aot/<fp>.py module
        fpkey = fingerprint_key(spmv_schedule(B, c, a), machine)
        assert store.resolve(fpkey) == holder
        idx = store.read_index()
        aid = holder.name
        assert idx["artifacts"][aid].get("aot", 0) >= 1
        # Newer cache-free churn makes the aot holder the LRU victim.
        for s in range(5):
            big = sp.random(200, 200, density=0.2,
                            random_state=np.random.default_rng(100 + s),
                            format="csr")
            store.put(Tensor.from_scipy("X", big, CSR),
                      include_caches=False, keys=["churn"])
        store.gc(max_bytes=1)
        assert store.resolve(fpkey) is not None
        assert holder.exists()
        assert store.verify() == []


class TestVerify:
    def test_verify_detects_missing_blob(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put(make_tensor(), include_caches=False, sidecar_threshold=0)
        blob = next(store.objects_dir.iterdir())
        blob.unlink()
        problems = store.verify()
        assert any("blob missing" in p or "missing sidecar" in p
                   or "missing payload" in p for p in problems)

    def test_verify_detects_orphan_blob(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put(make_tensor(), include_caches=False)
        (store.objects_dir / ("0" * 64)).write_bytes(b"junk")
        assert any("orphaned object" in p for p in store.verify())

    def test_verify_clean_store(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put(make_tensor(), include_caches=False)
        assert store.verify() == []
