"""End-to-end compiler tests: classification, compilation, execution."""
import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import classify, compile_kernel, pattern_source
from repro.errors import CompileError
from repro.legion import Machine, Privilege
from repro.taco import CSF3, CSR, DDC, Tensor, index_vars

rng = np.random.default_rng(7)


def rand_csr(n=40, m=32, density=0.15, name="B"):
    M = sp.random(n, m, density=density, random_state=rng, format="csr")
    return Tensor.from_scipy(name, M, CSR), M


def rand_csf(shape=(14, 12, 10), nnz=200, name="T", fmt=CSF3):
    idx = [rng.integers(0, s, nnz) for s in shape]
    vals = rng.random(nnz) + 0.5
    return Tensor.from_coo(name, idx, vals, shape, fmt)


class TestClassify:
    def test_spmv(self):
        B, _ = rand_csr()
        c = Tensor.from_dense("c", rng.random(32))
        a = Tensor.zeros("a", (40,))
        i, j = index_vars("i j")
        a[i] = B[i, j] * c[j]
        assert classify(a.assignment).kind == "spmv"

    def test_spmm(self):
        B, _ = rand_csr()
        C = Tensor.from_dense("C", rng.random((32, 8)))
        A = Tensor.zeros("A", (40, 8))
        i, k, j = index_vars("i k j")
        A[i, j] = B[i, k] * C[k, j]
        assert classify(A.assignment).kind == "spmm"

    def test_sddmm(self):
        B, _ = rand_csr()
        C = Tensor.from_dense("C", rng.random((40, 6)))
        D = Tensor.from_dense("D", rng.random((6, 32)))
        A = Tensor.zeros("A", (40, 32), CSR)
        i, j, k = index_vars("i j k")
        A[i, j] = B[i, j] * C[i, k] * D[k, j]
        kc = classify(A.assignment)
        assert kc.kind == "sddmm"
        assert kc.roles["C"].tensor.name == "C"

    def test_spadd(self):
        B, _ = rand_csr(name="B")
        C, _ = rand_csr(name="C")
        D, _ = rand_csr(name="D")
        A = Tensor.zeros("A", (40, 32), CSR)
        i, j = index_vars("i j")
        A[i, j] = B[i, j] + C[i, j] + D[i, j]
        kc = classify(A.assignment)
        assert kc.kind == "spadd"
        assert len(kc.operands) == 3

    def test_spttv(self):
        T = rand_csf()
        c = Tensor.from_dense("c", rng.random(10))
        A = Tensor.zeros("A", (14, 12), CSR)
        i, j, k = index_vars("i j k")
        A[i, j] = T[i, j, k] * c[k]
        assert classify(A.assignment).kind == "spttv"

    def test_spmttkrp(self):
        T = rand_csf()
        C = Tensor.from_dense("C", rng.random((12, 5)))
        D = Tensor.from_dense("D", rng.random((10, 5)))
        A = Tensor.zeros("A", (14, 5))
        i, j, k, l = index_vars("i j k l")
        A[i, l] = T[i, j, k] * C[j, l] * D[k, l]
        assert classify(A.assignment).kind == "spmttkrp"

    def test_generic_two_sparse(self):
        B, _ = rand_csr(name="B")
        C, _ = rand_csr(name="C")
        A = Tensor.zeros("A", (40, 40))
        i, j, k = index_vars("i j k")
        A[i, j] = B[i, k] * C[j, k]
        assert classify(A.assignment).kind == "generic"


class TestPatternSource:
    def test_sddmm_preserves_b(self):
        B, _ = rand_csr()
        C = Tensor.from_dense("C", rng.random((40, 6)))
        D = Tensor.from_dense("D", rng.random((6, 32)))
        A = Tensor.zeros("A", (40, 32), CSR)
        i, j, k = index_vars("i j k")
        A[i, j] = B[i, j] * C[i, k] * D[k, j]
        assert pattern_source(A.assignment).tensor is B

    def test_dense_output_no_source(self):
        B, _ = rand_csr()
        c = Tensor.from_dense("c", rng.random(32))
        a = Tensor.zeros("a", (40,))
        i, j = index_vars("i j")
        a[i] = B[i, j] * c[j]
        assert pattern_source(a.assignment) is None


class TestCompileExecute:
    @pytest.mark.parametrize("pieces", [1, 3, 4])
    def test_spmv_rows(self, pieces):
        B, M = rand_csr()
        x = rng.random(32)
        c = Tensor.from_dense("c", x)
        a = Tensor.zeros("a", (40,))
        i, j, io, ii = index_vars("i j io ii")
        a[i] = B[i, j] * c[j]
        s = a.schedule().divide(i, io, ii, pieces).distribute(io)
        ck = compile_kernel(s, Machine.cpu(max(pieces, 1)))
        ck.execute()
        assert np.allclose(a.vals.data, M @ x)

    @pytest.mark.parametrize("pieces", [2, 5])
    def test_spmv_nonzeros_reduces(self, pieces):
        B, M = rand_csr()
        x = rng.random(32)
        c = Tensor.from_dense("c", x)
        a = Tensor.zeros("a", (40,))
        i, j, f, fp, fo, fi = index_vars("i j f fp fo fi")
        a[i] = B[i, j] * c[j]
        s = (a.schedule().fuse(i, j, f).pos(f, fp, B[i, j])
             .divide(fp, fo, fi, pieces).distribute(fo))
        ck = compile_kernel(s, Machine.cpu(pieces))
        assert ck.privileges[id(a)] in (Privilege.REDUCE, Privilege.WRITE_DISCARD)
        ck.execute()
        assert np.allclose(a.vals.data, M @ x)

    def test_repeated_execution_stable(self):
        B, M = rand_csr()
        x = rng.random(32)
        c = Tensor.from_dense("c", x)
        a = Tensor.zeros("a", (40,))
        i, j, io, ii = index_vars("i j io ii")
        a[i] = B[i, j] * c[j]
        s = a.schedule().divide(i, io, ii, 2).distribute(io)
        ck = compile_kernel(s, Machine.cpu(2))
        ck.execute()
        first = a.vals.data.copy()
        ck.execute()
        assert np.allclose(a.vals.data, first)

    def test_no_distribution_single_piece(self):
        B, M = rand_csr()
        x = rng.random(32)
        c = Tensor.from_dense("c", x)
        a = Tensor.zeros("a", (40,))
        i, j = index_vars("i j")
        a[i] = B[i, j] * c[j]
        ck = compile_kernel(a.schedule(), Machine.cpu(1))
        assert len(ck.pieces) == 1
        ck.execute()
        assert np.allclose(a.vals.data, M @ x)

    def test_spmm_rows(self):
        B, M = rand_csr()
        C = Tensor.from_dense("C", rng.random((32, 8)))
        A = Tensor.zeros("A", (40, 8))
        i, k, j, io, ii = index_vars("i k j io ii")
        A[i, j] = B[i, k] * C[k, j]
        s = A.schedule().divide(i, io, ii, 4).distribute(io)
        ck = compile_kernel(s, Machine.cpu(4))
        ck.execute()
        assert np.allclose(A.dense_array(), M @ C.dense_array())

    def test_sddmm_nonzeros_pattern_preserved(self):
        B, M = rand_csr()
        Cd, Dd = rng.random((40, 6)), rng.random((6, 32))
        C, D = Tensor.from_dense("C", Cd), Tensor.from_dense("D", Dd)
        A = Tensor.zeros("A", (40, 32), CSR)
        i, j, k, f, fp, fo, fi = index_vars("i j k f fp fo fi")
        A[i, j] = B[i, j] * C[i, k] * D[k, j]
        s = (A.schedule().fuse(i, j, f).pos(f, fp, B[i, j])
             .divide(fp, fo, fi, 4).distribute(fo))
        ck = compile_kernel(s, Machine.cpu(4))
        ck.execute()
        assert A.levels[1] is B.levels[1]  # metadata shared (copied structure)
        assert np.allclose(A.to_dense(), M.toarray() * (Cd @ Dd))

    def test_spadd_two_phase(self):
        B, MB = rand_csr(name="B")
        C, MC = rand_csr(name="C", density=0.1)
        D, MD = rand_csr(name="D", density=0.1)
        A = Tensor.zeros("A", (40, 32), CSR)
        i, j, io, ii = index_vars("i j io ii")
        A[i, j] = B[i, j] + C[i, j] + D[i, j]
        s = A.schedule().divide(i, io, ii, 4).distribute(io)
        ck = compile_kernel(s, Machine.cpu(4))
        res = ck.execute()
        assert np.allclose(A.to_dense(), (MB + MC + MD).toarray())
        names = [st.name for st in res.metrics.steps]
        assert "spadd:symbolic" in names and "spadd:fill" in names

    def test_spttv_csf_rows(self):
        T = rand_csf()
        x = rng.random(10)
        c = Tensor.from_dense("c", x)
        A = Tensor.zeros("A", (14, 12), CSR)
        i, j, k, io, ii = index_vars("i j k io ii")
        A[i, j] = T[i, j, k] * c[k]
        s = A.schedule().divide(i, io, ii, 3).distribute(io)
        ck = compile_kernel(s, Machine.cpu(3))
        ck.execute()
        assert np.allclose(A.to_dense(), np.einsum("ijk,k->ij", T.to_dense(), x))

    def test_spttv_ddc_dense_output(self):
        T = rand_csf(shape=(4, 12, 10), fmt=DDC)
        x = rng.random(10)
        c = Tensor.from_dense("c", x)
        A = Tensor.zeros("A", (4, 12))
        i, j, k, io, ii = index_vars("i j k io ii")
        A[i, j] = T[i, j, k] * c[k]
        s = A.schedule().divide(i, io, ii, 2).distribute(io)
        ck = compile_kernel(s, Machine.cpu(2))
        ck.execute()
        assert np.allclose(A.dense_array(), np.einsum("ijk,k->ij", T.to_dense(), x))

    def test_spmttkrp_rows_and_nonzeros(self):
        T = rand_csf()
        Cd, Dd = rng.random((12, 5)), rng.random((10, 5))
        expected = np.einsum("ijk,jl,kl->il", T.to_dense(), Cd, Dd)
        for strategy in ("rows", "nonzeros"):
            C, D = Tensor.from_dense("C", Cd), Tensor.from_dense("D", Dd)
            A = Tensor.zeros("A", (14, 5))
            i, j, k, l = index_vars("i j k l")
            A[i, l] = T[i, j, k] * C[j, l] * D[k, l]
            if strategy == "rows":
                io, ii = index_vars("io ii")
                s = A.schedule().divide(i, io, ii, 3).distribute(io)
            else:
                g1, g2, gp, go, gi = index_vars("g1 g2 gp go gi")
                s = (A.schedule().reorder(j, l).fuse(i, j, g1).reorder(k, l)
                     .fuse(g1, k, g2).pos(g2, gp, T[i, j, k])
                     .divide(gp, go, gi, 3).distribute(go))
            ck = compile_kernel(s, Machine.cpu(3))
            ck.execute()
            assert np.allclose(A.dense_array(), expected), strategy

    def test_generic_fallback_distributed(self):
        B, MB = rand_csr(name="B")
        C, MC = rand_csr(n=40, m=32, name="C")
        A = Tensor.zeros("A", (40, 40))
        i, j, k, io, ii = index_vars("i j k io ii")
        A[i, j] = B[i, k] * C[j, k]
        s = A.schedule().divide(i, io, ii, 4).distribute(io)
        ck = compile_kernel(s, Machine.cpu(4))
        assert ck.kind == "generic"
        ck.execute()
        assert np.allclose(A.dense_array(), MB.toarray() @ MC.toarray().T)

    def test_batched_two_level_distribution(self):
        B, M = rand_csr()
        C = Tensor.from_dense("C", rng.random((32, 8)))
        A = Tensor.zeros("A", (40, 8))
        i, k, j, io, ii, jo, ji = index_vars("i k j io ii jo ji")
        A[i, j] = B[i, k] * C[k, j]
        s = (A.schedule().divide(i, io, ii, 2).reorder(ii, j)
             .divide(j, jo, ji, 2).distribute([io, jo]))
        ck = compile_kernel(s, Machine.cpu(4))
        assert len(ck.pieces) == 4
        ck.execute()
        assert np.allclose(A.dense_array(), M @ C.dense_array())


class TestCompileErrors:
    def test_two_nonzero_vars_rejected(self):
        B, _ = rand_csr(name="B")
        C, _ = rand_csr(n=40, m=32, name="C")
        A = Tensor.zeros("A", (40, 40))
        i, j, k = index_vars("i j k")
        A[i, j] = B[i, k] * C[j, k]
        f1, p1, o1, i1 = index_vars("f1 p1 o1 i1")
        s = A.schedule().reorder(k, j).fuse(i, k, f1).pos(f1, p1, B[i, k]) \
            .divide(p1, o1, i1, 2).distribute(o1)
        # one nonzero var is fine; two are rejected at distribute time
        from repro.taco.schedule import Schedule

        ck = compile_kernel(s, Machine.cpu(2))
        assert ck.strategy == "nonzeros"

    def test_fused_universe_distribution_rejected(self):
        B, _ = rand_csr()
        c = Tensor.from_dense("c", rng.random(32))
        a = Tensor.zeros("a", (40,))
        i, j, f, fo, fi = index_vars("i j f fo fi")
        a[i] = B[i, j] * c[j]
        s = a.schedule().fuse(i, j, f).divide(f, fo, fi, 2).distribute(fo)
        with pytest.raises(CompileError):
            compile_kernel(s, Machine.cpu(2))

    def test_plan_contains_distributed_loop(self):
        B, M = rand_csr()
        c = Tensor.from_dense("c", rng.random(32))
        a = Tensor.zeros("a", (40,))
        i, j, io, ii = index_vars("i j io ii")
        a[i] = B[i, j] * c[j]
        s = a.schedule().divide(i, io, ii, 2).distribute(io)
        ck = compile_kernel(s, Machine.cpu(2))
        assert "distributed for" in ck.plan.describe()
