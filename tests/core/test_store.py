"""Persistent artifact store: manifest, round trip, cache re-seeding."""
import json
import pickle

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import (
    cache_stats,
    clear_caches,
    compile_kernel,
    load_packed,
    read_manifest,
    save_packed,
)
from repro.core.store import MANIFEST_NAME, STORE_FORMAT_VERSION
from repro.errors import StoreError
from repro.legion import IndexSpace, Machine, Region, Runtime
from repro.taco import CSR, Tensor, index_vars

N, M, PIECES = 80, 64, 4


@pytest.fixture(autouse=True)
def isolated_caches():
    clear_caches()
    yield
    clear_caches()


def make_workload(seed=7):
    rng = np.random.default_rng(seed)
    A = sp.random(N, M, density=0.1, random_state=rng, format="csr")
    B = Tensor.from_scipy("B", A, CSR)
    c = Tensor.from_dense("c", rng.random(M))
    a = Tensor.zeros("a", (N,))
    return A, B, c, a


def spmv_schedule(B, c, a):
    i, j, io, ii = index_vars("i j io ii")
    a[i] = B[i, j] * c[j]
    return (a.schedule().divide(i, io, ii, PIECES).distribute(io)
            .communicate([a, B, c], io))


def warm(B, c, a, machine, rt, iterations=2):
    sims = []
    for _ in range(iterations):
        ck = compile_kernel(spmv_schedule(B, c, a), machine)
        res = ck.execute(rt)
        sims.append(res.metrics.simulated_seconds(rt.network))
    return sims


class TestManifest:
    def test_manifest_describes_artifact(self, tmp_path):
        _, B, c, a = make_workload()
        machine = Machine.cpu(PIECES)
        rt = Runtime(machine)
        warm(B, c, a, machine, rt)
        path = save_packed(tmp_path / "art", B)
        m = read_manifest(path)
        assert m["format_version"] == STORE_FORMAT_VERSION
        assert m["tensor"]["name"] == "B"
        assert m["tensor"]["format"] == "CSR"
        assert m["tensor"]["pattern_version"] == B.pattern_version
        assert {t["name"] for t in m["companions"]} == {"a", "c"}
        assert len(m["kernels"]) == 1
        k = m["kernels"][0]
        assert k["kind"] == "spmv" and k["pieces"] == PIECES
        assert isinstance(k["fingerprint"], str) and len(k["fingerprint"]) == 64
        assert m["partition_entries"] > 0
        assert m["runtimes"] == 1 and m["trace_count"] >= 1

    def test_stable_fingerprint_is_process_independent_shape(self, tmp_path):
        """Two equal-state workloads agree on the manifest fingerprint even
        though their tensors are distinct objects (ids differ)."""
        from repro.core import stable_fingerprint

        _, B1, c1, a1 = make_workload()
        _, B2, c2, a2 = make_workload()
        machine = Machine.cpu(PIECES)
        assert stable_fingerprint(spmv_schedule(B1, c1, a1), machine) == \
               stable_fingerprint(spmv_schedule(B2, c2, a2), machine)

    def test_include_caches_false_stores_tensor_only(self, tmp_path):
        _, B, c, a = make_workload()
        machine = Machine.cpu(PIECES)
        warm(B, c, a, machine, Runtime(machine))
        path = save_packed(tmp_path / "bare", B, include_caches=False)
        m = read_manifest(path)
        assert m["kernels"] == [] and m["partition_entries"] == 0
        clear_caches()
        art = load_packed(path)
        assert art.tensor.name == "B" and art.kernels == []

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(StoreError, match="no manifest"):
            read_manifest(tmp_path / "nowhere")

    def test_unsupported_version_raises(self, tmp_path):
        _, B, _, _ = make_workload()
        path = save_packed(tmp_path / "art", B, include_caches=False)
        m = json.loads((path / MANIFEST_NAME).read_text())
        m["format_version"] = 99
        (path / MANIFEST_NAME).write_text(json.dumps(m))
        with pytest.raises(StoreError, match="version"):
            load_packed(path)

    def test_stale_manifest_vs_payload_raises(self, tmp_path):
        _, B, _, _ = make_workload()
        path = save_packed(tmp_path / "art", B, include_caches=False)
        m = json.loads((path / MANIFEST_NAME).read_text())
        m["tensor"]["pattern_version"] += 1
        (path / MANIFEST_NAME).write_text(json.dumps(m))
        with pytest.raises(StoreError, match="pattern_version"):
            load_packed(path)

    def test_corrupt_payload_raises_store_error(self, tmp_path):
        from repro.core.store import PAYLOAD_NAME

        _, B, _, _ = make_workload()
        path = save_packed(tmp_path / "art", B, include_caches=False)
        payload = path / PAYLOAD_NAME
        payload.write_bytes(payload.read_bytes()[: payload.stat().st_size // 2])
        with pytest.raises(StoreError, match="corrupt payload"):
            load_packed(path)


class TestRoundTrip:
    def test_loaded_tensor_matches(self, tmp_path):
        A, B, _, _ = make_workload()
        path = save_packed(tmp_path / "art", B, include_caches=False)
        t = Tensor.load(path)
        assert t is not B
        assert t.shape == B.shape and t.nnz == B.nnz
        assert np.array_equal(t.to_dense(), A.toarray())

    def test_warm_start_hits_all_layers(self, tmp_path):
        """After load (fresh caches, fresh objects) the first compile hits
        the kernel cache, partitions never re-derive, and the first execute
        replays the stored mapping trace with bit-identical metrics."""
        _, B, c, a = make_workload()
        machine = Machine.cpu(PIECES)
        rt = Runtime(machine)
        sims = warm(B, c, a, machine, rt, iterations=2)
        path = save_packed(tmp_path / "art", B)

        clear_caches()  # a fresh process's cache state
        art = load_packed(path)
        B2, c2, a2 = art.tensor, art.companions["c"], art.companions["a"]
        rt2 = art.runtime()
        assert rt2 is not None and rt2 is not rt
        assert rt2.trace_hits == 0 and rt2.trace_records == 0
        before = cache_stats()
        ck = compile_kernel(spmv_schedule(B2, c2, a2), machine)
        after = cache_stats()
        assert after["kernel_hits"] - before["kernel_hits"] == 1
        assert after["partition_misses"] == before["partition_misses"]
        res = ck.execute(rt2)
        assert rt2.trace_hits == 1 and rt2.trace_records == 0
        assert res.metrics.simulated_seconds(rt2.network) == sims[-1]
        assert np.array_equal(a2.vals.data, a.vals.data)

    def test_loaded_regions_do_not_collide_with_fresh_ones(self, tmp_path):
        _, B, c, a = make_workload()
        machine = Machine.cpu(PIECES)
        warm(B, c, a, machine, Runtime(machine))
        path = save_packed(tmp_path / "art", B)
        clear_caches()
        art = load_packed(path)
        loaded_uids = {
            r.uid
            for t in art.all_tensors()
            for r in ([lvl.pos for lvl in t.levels if not lvl.is_dense]
                      + [lvl.crd for lvl in t.levels if not lvl.is_dense]
                      + ([t.vals] if t.vals is not None else []))
        }
        fresh = Region(IndexSpace(4))
        assert fresh.uid not in loaded_uids
        assert fresh.uid > max(loaded_uids)

    def test_runtime_pickle_roundtrip_replays(self):
        """A pickled runtime re-anchors its trace keys on the unpickled
        partitions and replays without re-recording."""
        from repro.legion import (
            Partition, Privilege, Rect, RectSubset, RegionReq, Work,
            equal_partition,
        )

        rt = Runtime(Machine.cpu(2))
        r = Region(IndexSpace(8))
        home = Partition(r.ispace, {0: RectSubset(Rect(0, 5)),
                                    1: RectSubset(Rect(6, 7))})
        rt.place(r, home)
        req = equal_partition(r.ispace, 2)
        reqs = [RegionReq(r, req, Privilege.READ_ONLY)]
        s1 = rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        assert rt.trace_records == 1

        # Pickle runtime and requirements together so the partition objects
        # in the trace keys and in the reqs stay one object graph.
        rt2, reqs2 = pickle.loads(pickle.dumps((rt, reqs)))
        rt2.reset_residency()
        s2 = rt2.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs2)
        assert rt2.trace_hits == 1 and rt2.trace_records == 0
        assert s2.comm_bytes() == s1.comm_bytes() > 0

    def test_copy_trace_only_regions_counted_in_uid_watermark(self, tmp_path):
        """A region staged only via copy_subset (never placed as a tensor
        home) still advances the uid counter on load — a fresh region must
        not collide with a stale copy-trace key."""
        from repro.legion import Rect, RectSubset

        _, B, c, a = make_workload()
        machine = Machine.cpu(PIECES)
        rt = Runtime(machine)
        warm(B, c, a, machine, rt)
        scratch = Region(IndexSpace(16), name="scratch")  # never place()-d
        step = rt.metrics.new_step("copy")
        rt.copy_subset(step, scratch, RectSubset(Rect(0, 7)), 1)
        rt.reset_residency()  # scratch leaves _residency; only the trace
        assert rt._copy_traces  # ...still references it
        assert scratch.uid not in rt._home and scratch.uid not in rt._residency
        path = save_packed(tmp_path / "art", B, runtime=rt)
        # The saved watermark must cover the trace-only region: a fresh
        # process advances its uid counter past it on load, so no new
        # region can collide with the stale copy-trace key.
        from repro.core.store import PAYLOAD_NAME

        payload = pickle.loads((path / PAYLOAD_NAME).read_bytes())
        assert payload["max_region_uid"] >= scratch.uid
        clear_caches()
        load_packed(path)
        fresh = Region(IndexSpace(4))
        assert fresh.uid > scratch.uid

    def test_save_over_file_path_raises(self, tmp_path):
        _, B, _, _ = make_workload()
        blocker = tmp_path / "art"
        blocker.write_text("not a directory")
        with pytest.raises(StoreError, match="not a directory"):
            save_packed(blocker, B)
