"""Aliased SpAdd (``A = B + A``, and the ``accumulate`` sugar).

The seed bug: ``_execute_spadd`` re-read operand arrays *after*
``install_assembled_output`` had replaced the output's structure, so an
aliased operand read the freshly-sized empty output instead of its own
values — iteration 2 crashed or dropped the operand.  The fix snapshots
operand arrays before the install; with that, assembled-statement
fingerprints exclude the LHS pattern version for aliased forms too, so the
chain compiles once and replays its mapping traces.
"""
import contextlib

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import cache_stats, clear_caches, compile_kernel, load_packed, save_packed
from repro.core.cache import caches_disabled
from repro.legion import Machine, Runtime
from repro.taco import CSR, Tensor, index_vars
from repro.taco.expr import Add

SHAPE = (50, 40)
PIECES = 2
ITERATIONS = 10


@pytest.fixture(autouse=True)
def isolated_caches():
    clear_caches()
    yield
    clear_caches()


def make_inputs(seed=3, k=2):
    r = np.random.default_rng(seed)
    return [sp.random(*SHAPE, density=0.08, random_state=r, format="csr")
            for _ in range(k)]


def aliased_schedule(A, B, pieces=PIECES):
    """``A = B + A`` with the alias explicit in the RHS."""
    i, j, io, ii = index_vars("i j io ii")
    A.assignment = None
    A[i, j] = Add([B[i, j], A[i, j]])
    return A.schedule().divide(i, io, ii, pieces).distribute(io)


def accumulate_schedule(A, B, C, pieces=PIECES):
    """``A += B + C`` via the sugar (strips A from the operand list)."""
    i, j, io, ii = index_vars("i j io ii")
    A.assignment = None
    A[i, j] = A[i, j] + B[i, j] + C[i, j]
    assert A.assignment.accumulate
    return A.schedule().divide(i, io, ii, pieces).distribute(io)


class TestAliasedSpAdd:
    def iterate_aliased(self, cached, iterations=ITERATIONS):
        (Bm,) = make_inputs(k=1)
        B = Tensor.from_scipy("B", Bm, CSR)
        A = Tensor.zeros("A", SHAPE, CSR)
        machine = Machine.cpu(PIECES)
        rt = Runtime(machine)
        ref = np.zeros(SHAPE)
        kernels = []
        ctx = contextlib.nullcontext() if cached else caches_disabled()
        with ctx:
            for it in range(iterations):
                s = aliased_schedule(A, B)
                ck = compile_kernel(s, machine, use_cache=cached)
                kernels.append(ck)
                ck.execute(rt)
                ref = Bm.toarray() + ref
                assert np.allclose(A.to_dense(), ref), f"iteration {it}"
        return A, ref, kernels, rt

    def test_uncached_matches_numpy_reference(self):
        A, ref, kernels, _ = self.iterate_aliased(cached=False)
        assert np.allclose(A.to_dense(), ref)
        assert len(set(map(id, kernels))) == ITERATIONS  # seed path recompiles

    def test_cached_matches_numpy_reference_and_replays(self):
        A, ref, kernels, rt = self.iterate_aliased(cached=True)
        assert np.allclose(A.to_dense(), ref)
        # One compile reused every iteration: the aliased fingerprint now
        # excludes the LHS pattern version too.
        assert all(k is kernels[0] for k in kernels)
        # The chain records once (symbolic + fill) and replays after.
        assert rt.trace_records == 2
        assert rt.trace_hits == 2 * (ITERATIONS - 1)

    def test_cached_equals_uncached_bitwise(self):
        A_u, _, _, _ = self.iterate_aliased(cached=False)
        clear_caches()
        A_c, _, _, _ = self.iterate_aliased(cached=True)
        u_coords, u_vals = A_u.to_coo()
        c_coords, c_vals = A_c.to_coo()
        assert all(np.array_equal(u, c) for u, c in zip(u_coords, c_coords))
        assert np.array_equal(u_vals, c_vals)


class TestAccumulateSugar:
    def iterate_accumulate(self, cached, iterations=ITERATIONS):
        Bm, Cm = make_inputs(seed=5, k=2)
        B = Tensor.from_scipy("B", Bm, CSR)
        C = Tensor.from_scipy("C", Cm, CSR)
        A = Tensor.zeros("A", SHAPE, CSR)
        machine = Machine.cpu(PIECES)
        rt = Runtime(machine)
        ref = np.zeros(SHAPE)
        kernels = []
        ctx = contextlib.nullcontext() if cached else caches_disabled()
        with ctx:
            for it in range(iterations):
                s = accumulate_schedule(A, B, C)
                ck = compile_kernel(s, machine, use_cache=cached)
                kernels.append(ck)
                ck.execute(rt)
                ref = ref + Bm.toarray() + Cm.toarray()
                assert np.allclose(A.to_dense(), ref), f"iteration {it}"
        return A, ref, kernels, rt

    def test_uncached_accumulate_matches_reference(self):
        A, ref, _, _ = self.iterate_accumulate(cached=False)
        assert np.allclose(A.to_dense(), ref)

    def test_cached_accumulate_matches_reference_and_replays(self):
        A, ref, kernels, rt = self.iterate_accumulate(cached=True)
        assert np.allclose(A.to_dense(), ref)
        assert all(k is kernels[0] for k in kernels)
        assert rt.trace_records == 2
        assert rt.trace_hits == 2 * (ITERATIONS - 1)


class TestWarmStartedAliased:
    def test_warm_started_aliased_spadd_matches_reference(self, tmp_path):
        """Save mid-loop, reload into fresh caches, continue: the warm
        process's first execute hits the kernel cache and replays, and the
        completed 10-iteration result matches the NumPy reference."""
        (Bm,) = make_inputs(seed=9, k=1)
        B = Tensor.from_scipy("B", Bm, CSR)
        A = Tensor.zeros("A", SHAPE, CSR)
        machine = Machine.cpu(PIECES)
        rt = Runtime(machine)
        warm_iters = 3
        for _ in range(warm_iters):
            ck = compile_kernel(aliased_schedule(A, B), machine)
            ck.execute(rt)
        path = save_packed(tmp_path / "art", A, runtime=rt)

        clear_caches()  # a fresh process's cache state
        art = load_packed(path)
        A2, B2 = art.tensor, art.companions["B"]
        rt2 = art.runtime()
        assert rt2 is not None and rt2.trace_records == 0
        before = cache_stats()
        for it in range(ITERATIONS - warm_iters):
            ck = compile_kernel(aliased_schedule(A2, B2), machine)
            res = ck.execute(rt2)
            if it == 0:
                after = cache_stats()
                assert after["kernel_hits"] - before["kernel_hits"] == 1
                assert rt2.trace_hits >= 2 and rt2.trace_records == 0
        assert np.allclose(A2.to_dense(), ITERATIONS * Bm.toarray())

    def test_warm_started_accumulate_matches_reference(self, tmp_path):
        Bm, Cm = make_inputs(seed=11, k=2)
        B = Tensor.from_scipy("B", Bm, CSR)
        C = Tensor.from_scipy("C", Cm, CSR)
        A = Tensor.zeros("A", SHAPE, CSR)
        machine = Machine.cpu(PIECES)
        rt = Runtime(machine)
        warm_iters = 4
        for _ in range(warm_iters):
            ck = compile_kernel(accumulate_schedule(A, B, C), machine)
            ck.execute(rt)
        path = save_packed(tmp_path / "art", A, runtime=rt)

        clear_caches()
        art = load_packed(path)
        A2, B2, C2 = art.tensor, art.companions["B"], art.companions["C"]
        rt2 = art.runtime()
        for _ in range(ITERATIONS - warm_iters):
            compile_kernel(accumulate_schedule(A2, B2, C2), machine).execute(rt2)
        assert rt2.trace_records == 0  # every post-load execute replayed
        expect = ITERATIONS * (Bm.toarray() + Cm.toarray())
        assert np.allclose(A2.to_dense(), expect)
