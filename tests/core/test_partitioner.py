"""Coordinate-tree partitioning tests against Fig. 9c/9d."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    partition_dense_tensor,
    partition_tensor,
    replicated_partition,
)
from repro.errors import CompileError
from repro.legion import Privilege
from repro.taco import CSF3, CSR, DDC, Tensor


def fig7_tensor():
    rows = np.array([0, 0, 0, 1, 1, 2, 3, 3])
    cols = np.array([0, 1, 3, 1, 3, 0, 0, 3])
    return Tensor.from_coo("B", [rows, cols], np.arange(1.0, 9.0), (4, 4), CSR)


class TestFig9Universe:
    def test_row_partition_fig9c(self):
        """Initial universe partition of rows, derived pos/crd/vals (Fig. 9c)."""
        B = fig7_tensor()
        part = partition_tensor(B, 0, "universe", {0: (0, 1), 1: (2, 3)})
        # dense row partition
        assert part.level_positions[0][0].indices().tolist() == [0, 1]
        # pos copied from parent
        assert part.level_pos_parts[1][0].indices().tolist() == [0, 1]
        # crd via image: rows 0-1 own positions 0..4
        assert part.level_positions[1][0].indices().tolist() == [0, 1, 2, 3, 4]
        assert part.level_positions[1][1].indices().tolist() == [5, 6, 7]
        # vals copied from crd partition
        assert part.vals_part[0].volume == 5
        assert not part.is_output_aliased()

    def test_universe_on_empty_rows(self):
        B = Tensor.zeros("B", (4, 4), CSR)
        part = partition_tensor(B, 0, "universe", {0: (0, 1), 1: (2, 3)})
        assert part.vals_part[0].empty and part.vals_part[1].empty

    def test_top_level_bounds_dense_root(self):
        B = fig7_tensor()
        part = partition_tensor(B, 0, "universe", {0: (0, 1), 1: (2, 3)})
        assert part.top_level_bounds() == {0: (0, 1), 1: (2, 3)}


class TestFig9NonZero:
    def test_nonzero_partition_fig9d(self):
        """Initial non-zero partition of crd, derived pos by preimage (Fig. 9d)."""
        B = fig7_tensor()
        part = partition_tensor(B, 1, "nonzero", {0: (0, 3), 1: (4, 7)})
        assert part.level_positions[1][0].indices().tolist() == [0, 1, 2, 3]
        # preimage: row 1 appears in both colors (aliased)
        assert part.level_positions[0][0].indices().tolist() == [0, 1]
        assert part.level_positions[0][1].indices().tolist() == [1, 2, 3]
        assert part.is_output_aliased() is False  # vals split is disjoint
        assert not part.level_positions[0].is_disjoint()

    def test_top_level_bounds_from_aliased_rows(self):
        B = fig7_tensor()
        part = partition_tensor(B, 1, "nonzero", {0: (0, 3), 1: (4, 7)})
        assert part.top_level_bounds() == {0: (0, 1), 1: (1, 3)}

    def test_csf3_nonzero_leaf_split(self):
        idx = [np.array([0, 0, 1, 2]), np.array([0, 1, 0, 1]), np.array([1, 2, 0, 3])]
        T = Tensor.from_coo("T", idx, np.ones(4), (3, 2, 4), CSF3)
        part = partition_tensor(T, 2, "nonzero", {0: (0, 1), 1: (2, 3)})
        assert part.vals_part[0].volume == 2
        # fibers and slices derived upward
        assert part.level_positions[1][0].volume == 2
        assert part.level_positions[0][0].volume == 1

    def test_ddc_nonzero_upward_through_dense(self):
        idx = [np.array([0, 0, 1, 1]), np.array([0, 1, 0, 1]), np.array([1, 2, 0, 3])]
        T = Tensor.from_coo("T", idx, np.ones(4), (2, 2, 4), DDC)
        part = partition_tensor(T, 2, "nonzero", {0: (0, 1), 1: (2, 3)})
        # leaf positions 0,1 belong to dense fibers 0,1 -> slice 0
        assert part.level_positions[0][0].indices().tolist() == [0]
        assert part.level_positions[0][1].indices().tolist() == [1]


class TestHelpers:
    def test_region_reqs_metadata_read_only(self):
        B = fig7_tensor()
        part = partition_tensor(B, 0, "universe", {0: (0, 1), 1: (2, 3)})
        reqs = part.region_reqs(Privilege.WRITE_DISCARD)
        names = [r.region.name for r in reqs]
        assert names == ["B.pos1", "B.crd1", "B.vals"]
        assert reqs[0].privilege == Privilege.READ_ONLY
        assert reqs[2].privilege == Privilege.WRITE_DISCARD

    def test_replicated_partition(self):
        B = fig7_tensor()
        part = replicated_partition(B, [0, 1, 2])
        assert part.replicated
        assert part.vals_subset(1).volume == B.nnz
        reqs = part.region_reqs(Privilege.READ_ONLY)
        assert all(r.partition is None for r in reqs)

    def test_nbytes_for(self):
        B = fig7_tensor()
        part = partition_tensor(B, 0, "universe", {0: (0, 1), 1: (2, 3)})
        total = part.nbytes_for(0) + part.nbytes_for(1)
        # pos rects 4*16 + crd 8*8 + vals 8*8 = 192 total
        assert total == 192

    def test_dense_tensor_partition(self):
        D = Tensor.from_dense("D", np.arange(24.0).reshape(4, 6))
        part = partition_dense_tensor(
            D, {0: {0: (0, 1)}, 1: {0: (2, 3)}}
        )
        assert part.vals_part[0].volume == 12
        assert part.vals_part.is_disjoint()

    def test_dense_tensor_requires_dense(self):
        B = fig7_tensor()
        with pytest.raises(CompileError):
            partition_dense_tensor(B, {0: {0: (0, 1)}})

    def test_sparse_requires_partition_tensor(self):
        D = Tensor.from_dense("D", np.arange(4.0))
        with pytest.raises(CompileError):
            partition_tensor(D, 0, "universe", {0: (0, 3)})


@st.composite
def random_csr(draw):
    n = draw(st.integers(2, 12))
    m = draw(st.integers(2, 12))
    nnz = draw(st.integers(0, 30))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    rows = rng.integers(0, n, nnz)
    cols = rng.integers(0, m, nnz)
    return Tensor.from_coo("B", [rows, cols], rng.random(nnz) + 0.5, (n, m), CSR)


class TestPartitionInvariants:
    @given(random_csr(), st.integers(1, 5))
    @settings(max_examples=50, deadline=None)
    def test_universe_vals_complete_and_disjoint(self, B, pieces):
        from repro.kernels import piece_range

        bounds = {c: piece_range(B.shape[0], pieces, c) for c in range(pieces)}
        part = partition_tensor(B, 0, "universe", bounds)
        total = sum(part.vals_part[c].volume for c in range(pieces))
        assert total == B.nnz
        assert part.vals_part.is_disjoint()

    @given(random_csr(), st.integers(1, 5))
    @settings(max_examples=50, deadline=None)
    def test_nonzero_vals_complete_and_disjoint(self, B, pieces):
        from repro.kernels import piece_range

        bounds = {c: piece_range(B.nnz, pieces, c) for c in range(pieces)}
        part = partition_tensor(B, 1, "nonzero", bounds)
        total = sum(part.vals_part[c].volume for c in range(pieces))
        assert total == B.nnz
        assert part.vals_part.is_disjoint()

    @given(random_csr(), st.integers(2, 5))
    @settings(max_examples=50, deadline=None)
    def test_nonzero_rows_cover_all_nonempty_rows(self, B, pieces):
        from repro.kernels import piece_range

        bounds = {c: piece_range(B.nnz, pieces, c) for c in range(pieces)}
        part = partition_tensor(B, 1, "nonzero", bounds)
        pos = B.levels[1].pos.data
        covered = set()
        for c in range(pieces):
            covered.update(part.level_positions[0][c].indices().tolist())
        nonempty = {r for r in range(B.shape[0]) if pos[r, 1] >= pos[r, 0]}
        assert nonempty <= covered
