"""Table I level function tests: the format abstractions for partitioning."""
import numpy as np
import pytest

from repro.core import PartitioningPlan, level_functions_for, partition_tensor
from repro.errors import CompileError
from repro.legion import Partition, Rect, RectSubset
from repro.taco import CSR, CSF3, DDC, Tensor


def fig7_tensor():
    rows = np.array([0, 0, 0, 1, 1, 2, 3, 3])
    cols = np.array([0, 1, 3, 1, 3, 0, 0, 3])
    return Tensor.from_coo("B", [rows, cols], np.arange(1.0, 9.0), (4, 4), CSR)


class TestDenseLevelFunctions:
    def test_universe_partition_by_coordinate_bounds(self):
        B = fig7_tensor()
        plan = PartitioningPlan()
        f = level_functions_for(B, 0, plan)
        col = f.init_universe_partition()
        f.create_universe_partition_entry(col, 0, (0, 1))
        f.create_universe_partition_entry(col, 1, (2, 3))
        up, down = f.finalize_universe_partition(col)
        assert up is down  # Table I: same partition both ways for Dense
        assert down[0].indices().tolist() == [0, 1]
        assert "partitionByBounds" in plan.ops()

    def test_nonzero_same_as_universe_for_dense(self):
        B = fig7_tensor()
        plan = PartitioningPlan()
        f = level_functions_for(B, 0, plan)
        col = f.init_nonzero_partition()
        f.create_nonzero_partition_entry(col, 0, (0, 3))
        up, down = f.finalize_nonzero_partition(col)
        assert down[0].volume == 4

    def test_from_parent_scales_by_level_size(self):
        idx = [np.array([0, 1]), np.array([1, 0]), np.array([0, 0])]
        T = Tensor.from_coo("T", idx, np.ones(2), (2, 3, 4), DDC)
        plan = PartitioningPlan()
        f1 = level_functions_for(T, 1, plan)  # dense level of size 3
        parent = Partition(T.levels[0].pos_ispace, {0: RectSubset(Rect(0, 0))})
        got = f1.partition_from_parent(parent)
        assert got[0].indices().tolist() == [0, 1, 2]

    def test_from_child_shrinks(self):
        idx = [np.array([0, 1]), np.array([1, 0]), np.array([0, 0])]
        T = Tensor.from_coo("T", idx, np.ones(2), (2, 3, 4), DDC)
        plan = PartitioningPlan()
        f1 = level_functions_for(T, 1, plan)
        child = Partition(T.levels[1].pos_ispace, {0: RectSubset(Rect(3, 5))})
        parent = f1.partition_from_child(child)
        assert parent[0].indices().tolist() == [1]


class TestCompressedLevelFunctions:
    def test_universe_buckets_by_coordinate_values(self):
        B = fig7_tensor()
        plan = PartitioningPlan()
        f = level_functions_for(B, 1, plan)
        col = f.init_universe_partition()
        f.create_universe_partition_entry(col, 0, (0, 1))  # columns 0-1
        f.create_universe_partition_entry(col, 1, (2, 3))  # columns 2-3
        pos_part, crd_part = f.finalize_universe_partition(col)
        # crd = [0,1,3,1,3,0,0,3]: cols 0-1 at positions 0,1,3,5,6
        assert crd_part[0].indices().tolist() == [0, 1, 3, 5, 6]
        assert crd_part[1].indices().tolist() == [2, 4, 7]
        assert "partitionByValueRanges" in plan.ops()
        assert "preimage" in plan.ops()
        # every row touches both column halves except rows 2 (col 0 only)
        assert pos_part[0].indices().tolist() == [0, 1, 2, 3]
        assert pos_part[1].indices().tolist() == [0, 1, 3]

    def test_nonzero_partitions_positions_directly(self):
        B = fig7_tensor()
        plan = PartitioningPlan()
        f = level_functions_for(B, 1, plan)
        col = f.init_nonzero_partition()
        f.create_nonzero_partition_entry(col, 0, (0, 3))
        f.create_nonzero_partition_entry(col, 1, (4, 7))
        pos_part, crd_part = f.finalize_nonzero_partition(col)
        assert crd_part[0].volume == 4 and crd_part[1].volume == 4
        # row 1 (positions 3,4) straddles -> aliased in pos partition
        assert pos_part[0].indices().tolist() == [0, 1]
        assert pos_part[1].indices().tolist() == [1, 2, 3]
        assert "partitionByBounds" in plan.ops()

    def test_from_parent_emits_copy_then_image(self):
        B = fig7_tensor()
        plan = PartitioningPlan()
        f = level_functions_for(B, 1, plan)
        parent = Partition(
            B.levels[0].pos_ispace,
            {0: RectSubset(Rect(0, 1)), 1: RectSubset(Rect(2, 3))},
        )
        crd_part = f.partition_from_parent(parent)
        assert plan.ops() == ["copy", "image"]
        assert crd_part[0].indices().tolist() == [0, 1, 2, 3, 4]
        assert crd_part[1].indices().tolist() == [5, 6, 7]

    def test_from_child_emits_copy_then_preimage(self):
        B = fig7_tensor()
        plan = PartitioningPlan()
        f = level_functions_for(B, 1, plan)
        child = Partition(
            B.levels[1].pos_ispace,
            {0: RectSubset(Rect(0, 3)), 1: RectSubset(Rect(4, 7))},
        )
        pos_part = f.partition_from_child(child)
        assert plan.ops() == ["copy", "preimage"]
        assert pos_part[0].indices().tolist() == [0, 1]
        assert pos_part[1].indices().tolist() == [1, 2, 3]


class TestPlanIR:
    def test_plan_text_resembles_table1(self):
        B = fig7_tensor()
        bounds = {0: (0, 1), 1: (2, 3)}
        part = partition_tensor(B, 0, "universe", bounds)
        # exercised through partition_tensor: check a full pipeline's ops
        plan = PartitioningPlan()
        part = partition_tensor(B, 0, "universe", bounds, plan)
        text = plan.describe()
        assert "C_B1" in text
        assert "partitionByBounds" in text
        assert "image" in text
        assert plan.ops_for("B")[0] == "init"

    def test_bad_kind_rejected(self):
        B = fig7_tensor()
        with pytest.raises(CompileError):
            partition_tensor(B, 0, "diagonal", {0: (0, 3)})

    def test_bad_level_rejected(self):
        B = fig7_tensor()
        with pytest.raises(CompileError):
            partition_tensor(B, 5, "universe", {0: (0, 3)})
