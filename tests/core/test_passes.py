"""The program pass pipeline: fold → dse → fuse → cse.

Acceptance properties:

* **Differential** — for every pass, the transformed program computes
  exactly what the untransformed one computes: fused SDDMM→SpMM chains
  are bit-identical (float64 ``array_equal``) to the unfused chain across
  strategies × machines × backends, copy folding and dead-store
  elimination never change a surviving output's values.
* **Soundness** — DSE never drops an output that is kept or read
  downstream; fusion refuses aliased, multiply-consumed or accumulated
  intermediates; copy folding preserves ``pattern_version`` semantics
  (the copy still executes — only reads are forwarded).
* **Provenance** — fired passes are reported with the source statements
  they rewrote, and fused statements carry their origin labels.
"""
import numpy as np
import pytest
import scipy.sparse as sp

from repro.api.autoschedule import auto_schedule
from repro.core import clear_caches
from repro.core.passes import FUSED_SDDMM_SPMM, pipeline_plan
from repro.core.program import compile_program
from repro.legion import Machine, Runtime
from repro.taco import CSR, Tensor, index_vars


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


def _csr(n, seed, density=0.12):
    rng = np.random.default_rng(seed)
    m = sp.random(n, n, density=density, format="csr", random_state=rng)
    m.data[:] = rng.integers(1, 5, m.nnz).astype(float)
    return m


def _chain(machine, consumer_strategy=None, n=40, rank=6, fcols=5, seed=0):
    """A fresh SDDMM→SpMM chain; returns (schedules, H, reference)."""
    rng = np.random.default_rng(seed)
    G = _csr(n, seed + 1)
    U = rng.random((n, rank))
    V = rng.random((rank, n))
    Fm = rng.random((n, fcols))
    B = Tensor.from_scipy("G", G, CSR)
    Ut = Tensor.from_dense("U", U)
    Vt = Tensor.from_dense("V", V)
    F = Tensor.from_dense("F", Fm)
    E = Tensor.zeros("E", G.shape, CSR)
    H = Tensor.zeros("H", (n, fcols))
    i, j, k, i2, j2, k2 = index_vars("i j k i2 j2 k2")
    E[i, j] = B[i, j] * Ut[i, k] * Vt[k, j]
    H[i2, k2] = E[i2, j2] * F[j2, k2]
    scheds = [
        auto_schedule(E.assignment, machine),
        auto_schedule(H.assignment, machine, strategy=consumer_strategy),
    ]
    ref = G.multiply(U @ V) @ Fm
    return scheds, H, ref


def _run(scheds, machine, **kw):
    cp = compile_program(scheds, machine, **kw)
    cp.execute(Runtime(machine))
    return cp


class TestFusionDifferential:
    @pytest.mark.parametrize("kind", ["cpu", "gpu"])
    @pytest.mark.parametrize("strategy", ["rows", "nonzeros"])
    @pytest.mark.parametrize("backend", ["interp", "codegen"])
    def test_fused_bit_identical_to_unfused(self, kind, strategy, backend):
        machine = Machine.gpu(4) if kind == "gpu" else Machine.cpu(4)
        scheds, H, ref = _chain(machine, consumer_strategy=strategy)
        cp = _run(scheds, machine, backend=backend)
        assert [ck.kind for ck in cp.kernels] == [FUSED_SDDMM_SPMM]
        fused_vals = H.dense_array().copy()

        clear_caches()
        scheds, H, _ = _chain(machine, consumer_strategy=strategy)
        cp = _run(scheds, machine, fuse=False, backend=backend)
        assert len(cp) == 2
        assert np.array_equal(fused_vals, H.dense_array())
        assert np.allclose(fused_vals, ref)

    def test_backends_agree_bitwise_on_the_fused_statement(self):
        machine = Machine.cpu(4)
        outs = []
        for backend in ("interp", "codegen"):
            clear_caches()
            scheds, H, _ = _chain(machine, consumer_strategy="nonzeros")
            _run(scheds, machine, backend=backend)
            outs.append(H.dense_array().copy())
        assert np.array_equal(outs[0], outs[1])

    def test_fused_statement_inherits_consumer_strategy(self):
        machine = Machine.cpu(4)
        for strategy in ("rows", "nonzeros"):
            clear_caches()
            scheds, _, _ = _chain(machine, consumer_strategy=strategy)
            cp = compile_program(scheds, machine)
            assert cp.kernels[0].strategy == strategy

    def test_fusion_reports_provenance(self):
        machine = Machine.cpu(2)
        scheds, _, _ = _chain(machine)
        cp = compile_program(scheds, machine)
        fuse = next(r for r in cp.passes if r.name == "fuse")
        assert fuse.fired and fuse.statements == (0, 1)
        assert "E never materializes" in fuse.detail
        assert "from source statements 0+1" in cp.describe()

    def test_fuse_disabled_and_keep_pin_block_fusion(self):
        machine = Machine.cpu(2)
        scheds, _, _ = _chain(machine)
        assert len(compile_program(scheds, machine, fuse=False)) == 2
        clear_caches()
        scheds, _, _ = _chain(machine)
        assert len(compile_program(scheds, machine, keep=["E"])) == 2

    def test_fused_program_never_materializes_intermediate(self):
        machine = Machine.cpu(4)
        scheds, _, _ = _chain(machine)
        inter = scheds[0].assignment.lhs.tensor
        cp = compile_program(scheds, machine)
        rt = Runtime(machine)
        cp.execute(rt)
        cp.execute(rt)
        assert inter.vals.data.size == 0  # E was never assembled

        clear_caches()
        scheds, _, _ = _chain(machine)
        inter = scheds[0].assignment.lhs.tensor
        compile_program(scheds, machine, fuse=False).execute(Runtime(machine))
        assert inter.vals.data.size > 0  # the unfused chain assembles it


class TestFusionLegality:
    def _base(self, machine, n=24, rank=4, fcols=3, seed=7):
        rng = np.random.default_rng(seed)
        G = _csr(n, seed + 1)
        B = Tensor.from_scipy("G", G, CSR)
        Ut = Tensor.from_dense("U", rng.random((n, rank)))
        Vt = Tensor.from_dense("V", rng.random((rank, n)))
        F = Tensor.from_dense("F", rng.random((n, fcols)))
        E = Tensor.zeros("E", G.shape, CSR)
        return B, Ut, Vt, F, E, n, fcols

    def test_two_consumers_block_fusion(self, machine=Machine.cpu(2)):
        B, Ut, Vt, F, E, n, fcols = self._base(machine)
        H1 = Tensor.zeros("H1", (n, fcols))
        H2 = Tensor.zeros("H2", (n, fcols))
        i, j, k, a, b, c, d, e, f = index_vars("i j k a b c d e f")
        E[i, j] = B[i, j] * Ut[i, k] * Vt[k, j]
        H1[a, b] = E[a, c] * F[c, b]
        H2[d, e] = E[d, f] * F[f, e]
        scheds = [auto_schedule(t.assignment, machine) for t in (E, H1, H2)]
        plan = pipeline_plan(scheds, machine)
        assert not next(r for r in plan.records if r.name == "fuse").fired
        assert len(plan.schedules) == 3

    def test_accumulating_consumer_blocks_fusion(self, machine=Machine.cpu(2)):
        B, Ut, Vt, F, E, n, fcols = self._base(machine)
        H = Tensor.zeros("H", (n, fcols))
        i, j, k, a, b, c = index_vars("i j k a b c")
        E[i, j] = B[i, j] * Ut[i, k] * Vt[k, j]
        H[a, b] += E[a, c] * F[c, b]
        scheds = [auto_schedule(t.assignment, machine) for t in (E, H)]
        plan = pipeline_plan(scheds, machine)
        assert not next(r for r in plan.records if r.name == "fuse").fired

    def test_intervening_write_to_fused_input_blocks_fusion(self):
        machine = Machine.cpu(2)
        B, Ut, Vt, F, E, n, fcols = self._base(machine)
        H = Tensor.zeros("H", (n, fcols))
        rng = np.random.default_rng(3)
        W = Tensor.from_dense("W", rng.random((n, fcols)))
        i, j, k, a, b, c, p, q = index_vars("i j k a b c p q")
        E[i, j] = B[i, j] * Ut[i, k] * Vt[k, j]
        F[p, q] = W[p, q]  # F changes between producer and consumer
        H[a, b] = E[a, c] * F[c, b]
        scheds = [auto_schedule(t.assignment, machine) for t in (E, F, H)]
        # With folding on, the copy is forwarded (the consumer reads W
        # directly) and fusing IS legal — so the composed pipeline fuses:
        plan = pipeline_plan(scheds, machine)
        assert next(r for r in plan.records if r.name == "fuse").fired
        # With folding off, the consumer still reads F, the intervening
        # write makes fusion unsound, and the guard must refuse it:
        plan = pipeline_plan(scheds, machine, fold=False)
        assert not next(r for r in plan.records if r.name == "fuse").fired
        assert len(plan.schedules) == 3


class TestDeadStoreElimination:
    def _spmv(self, out, B, x, seed_vars):
        i, j = seed_vars
        out[i] = B[i, j] * x[j]
        return out

    def test_overwritten_store_is_dropped(self):
        machine = Machine.cpu(2)
        rng = np.random.default_rng(0)
        M = _csr(30, 1)
        B = Tensor.from_scipy("B", M, CSR)
        x = Tensor.from_dense("x", rng.random(30))
        y = Tensor.from_dense("y", rng.random(30))
        a = Tensor.zeros("a", (30,))
        i, j, p, q = index_vars("i j p q")
        a[i] = B[i, j] * x[j]
        s1 = auto_schedule(a.assignment, machine)
        a[p] = B[p, q] * y[q]  # overwrites before any read
        s2 = auto_schedule(a.assignment, machine)
        plan = pipeline_plan([s1, s2], machine)
        rec = next(r for r in plan.records if r.name == "dse")
        assert rec.fired and rec.statements == (0,)
        assert len(plan.schedules) == 1
        cp = compile_program([s1, s2], machine)
        cp.execute(Runtime(machine))
        assert np.array_equal(a.vals.data, M @ y.vals.data)

    def test_read_downstream_is_never_dropped(self):
        machine = Machine.cpu(2)
        rng = np.random.default_rng(2)
        M = _csr(30, 3)
        B = Tensor.from_scipy("B", M, CSR)
        x = Tensor.from_dense("x", rng.random(30))
        a = Tensor.zeros("a", (30,))
        b = Tensor.zeros("b", (30,))
        i, j, p, q, r, t = index_vars("i j p q r t")
        a[i] = B[i, j] * x[j]
        s1 = auto_schedule(a.assignment, machine)
        b[p] = B[p, q] * a[q]  # reads a: the store is observable
        s2 = auto_schedule(b.assignment, machine)
        a[r] = B[r, t] * x[t]
        s3 = auto_schedule(a.assignment, machine)
        plan = pipeline_plan([s1, s2, s3], machine)
        assert not next(r_ for r_ in plan.records if r_.name == "dse").fired
        assert len(plan.schedules) == 3

    def test_keep_pins_an_otherwise_dead_store(self):
        machine = Machine.cpu(2)
        rng = np.random.default_rng(4)
        M = _csr(20, 5)
        B = Tensor.from_scipy("B", M, CSR)
        x = Tensor.from_dense("x", rng.random(20))
        y = Tensor.from_dense("y", rng.random(20))
        a = Tensor.zeros("a", (20,))
        i, j, p, q = index_vars("i j p q")
        a[i] = B[i, j] * x[j]
        s1 = auto_schedule(a.assignment, machine)
        a[p] = B[p, q] * y[q]
        s2 = auto_schedule(a.assignment, machine)
        plan = pipeline_plan([s1, s2], machine, keep=[a])
        assert not next(r for r in plan.records if r.name == "dse").fired
        assert len(plan.schedules) == 2

    def test_cse_identical_repeats_are_left_to_cse(self):
        machine = Machine.cpu(2)
        rng = np.random.default_rng(6)
        M = _csr(20, 7)
        B = Tensor.from_scipy("B", M, CSR)
        x = Tensor.from_dense("x", rng.random(20))
        a = Tensor.zeros("a", (20,))
        i, j = index_vars("i j")
        a[i] = B[i, j] * x[j]
        s1 = auto_schedule(a.assignment, machine)
        s2 = auto_schedule(a.assignment, machine)
        plan = pipeline_plan([s1, s2], machine)
        assert not next(r for r in plan.records if r.name == "dse").fired
        cp = compile_program([s1, s2], machine)
        cse = next(r for r in cp.passes if r.name == "cse")
        assert cse.fired  # the repeat collapses as a reuse, not a deletion


class TestCopyFolding:
    def _setup(self, machine):
        rng = np.random.default_rng(8)
        M = _csr(24, 9)
        B = Tensor.from_scipy("B", M, CSR)
        x = Tensor.from_dense("x", rng.random(24))
        mid = Tensor.zeros("mid", (24,))
        out = Tensor.zeros("out", (24,))
        i, p, q, r = index_vars("i p q r")
        mid[i] = x[i]  # identity copy
        s1 = auto_schedule(mid.assignment, machine)
        out[p] = B[p, q] * mid[q]
        s2 = auto_schedule(out.assignment, machine)
        return M, x, mid, out, s1, s2

    def test_reads_forward_to_the_source(self):
        machine = Machine.cpu(2)
        M, x, mid, out, s1, s2 = self._setup(machine)
        plan = pipeline_plan([s1, s2], machine)
        rec = next(r for r in plan.records if r.name == "fold")
        assert rec.fired
        reads = [acc.tensor
                 for acc in plan.schedules[-1].assignment.rhs.accesses()]
        assert any(t is x for t in reads)
        assert not any(t is mid for t in reads)

    def test_folded_values_match_unfolded(self):
        machine = Machine.cpu(2)
        M, x, mid, out, s1, s2 = self._setup(machine)
        cp = compile_program([s1, s2], machine)
        cp.execute(Runtime(machine))
        folded = out.vals.data.copy()
        assert np.array_equal(folded, M @ x.vals.data)

        clear_caches()
        M, x, mid, out, s1, s2 = self._setup(machine)
        cp = compile_program([s1, s2], machine, fold=False)
        cp.execute(Runtime(machine))
        assert np.array_equal(folded, out.vals.data)

    def test_copy_still_executes_and_bumps_nothing_extra(self):
        # Folding forwards *reads*; the copy statement itself survives (its
        # store is observable), so ``pattern_version`` of the copied-into
        # tensor behaves exactly as in the unfolded program.
        machine = Machine.cpu(2)
        M, x, mid, out, s1, s2 = self._setup(machine)
        before = mid.pattern_version
        cp = compile_program([s1, s2], machine)
        assert len(cp) == 2  # the copy is not deleted, only bypassed
        cp.execute(Runtime(machine))
        folded_bumps = mid.pattern_version - before

        clear_caches()
        M, x, mid, out, s1, s2 = self._setup(machine)
        before = mid.pattern_version
        compile_program([s1, s2], machine, fold=False).execute(Runtime(machine))
        assert mid.pattern_version - before == folded_bumps
        assert np.array_equal(mid.vals.data, x.vals.data)


class TestRuntimeAdoption:
    def _program(self, machine):
        rng = np.random.default_rng(10)
        M = _csr(16, 11)
        B = Tensor.from_scipy("B", M, CSR)
        x = Tensor.from_dense("x", rng.random(16))
        a = Tensor.zeros("a", (16,))
        i, j = index_vars("i j")
        a[i] = B[i, j] * x[j]
        return compile_program([auto_schedule(a.assignment, machine)], machine)

    def test_mismatched_runtime_is_rejected(self):
        cp = self._program(Machine.cpu(4))
        with pytest.raises(ValueError, match="does not match"):
            cp.execute(Runtime(Machine.cpu(8)))
        with pytest.raises(ValueError, match="does not match"):
            cp.execute(Runtime(Machine.gpu(4)))

    def test_adoption_is_explicit_and_resettable(self):
        machine = Machine.cpu(4)
        cp = self._program(machine)
        rt = Runtime(machine)
        cp.execute(rt)  # adopt=True default
        assert cp._runtime is rt
        cp.reset_runtime()
        assert cp._runtime is None
        other = Runtime(machine)
        cp.execute(other, adopt=False)
        assert cp._runtime is None  # borrowed, not adopted
