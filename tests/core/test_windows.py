"""Communicate-window inference tests (DISTAL's §II-C data inference).

A dense operand indexed through a Compressed level of a partitioned sparse
tensor only needs the coordinate window its piece's crd values touch —
e.g. the banded SpMV vector halo.
"""
import numpy as np
import pytest

from repro.core import compile_kernel
from repro.data.matrices import banded
from repro.legion import Machine, Runtime, NodeSpec
from repro.taco import CSR, Tensor, index_vars


def compile_spmv(A, pieces, machine):
    B = Tensor.from_scipy("B", A, CSR)
    c = Tensor.from_dense("c", np.ones(A.shape[1]))
    a = Tensor.zeros("a", (A.shape[0],))
    i, j, io, ii = index_vars("i j io ii")
    a[i] = B[i, j] * c[j]
    s = a.schedule().divide(i, io, ii, pieces).distribute(io)
    return compile_kernel(s, machine), B, c, a


class TestWindowInference:
    def test_banded_windows_are_narrow(self):
        A = banded(400, bandwidth=3)
        machine = Machine.cpu(4)
        ck, B, c, a = compile_spmv(A, 4, machine)
        part = ck.parts[id(c)]
        # each piece's window: its 100 rows +- the band, not the full vector
        for color in range(4):
            vol = part.vals_part[color].volume
            assert vol <= 100 + 2 * 3
        assert "windows inferred" in ck.plan.describe()

    def test_windows_fit_in_tiny_memory_where_replication_would_not(self):
        A = banded(4000, bandwidth=2)
        # each GPU holds its matrix strip + window, never the whole vector
        node = NodeSpec(gpu_mem_bytes=120_000.0)
        machine = Machine.gpu(8, node)
        ck, B, c, a = compile_spmv(A, 8, machine)
        rt = Runtime(machine)
        ck.execute(rt)  # would raise OOMError under replication

    def test_windows_still_correct_on_scattered_columns(self):
        rng = np.random.default_rng(2)
        import scipy.sparse as sp

        A = sp.random(60, 60, density=0.2, random_state=rng, format="csr")
        machine = Machine.cpu(3)
        ck, B, c, a = compile_spmv(A, 3, machine)
        c.vals.data[:] = rng.random(60)
        ck.execute()
        assert np.allclose(a.vals.data, A @ c.vals.data)

    def test_nonzero_path_windows_dense_operand(self):
        """SDDMM's D(k,j) gets j-windows from the split tensor's crd."""
        A = banded(200, bandwidth=2)
        B = Tensor.from_scipy("B", A, CSR)
        C = Tensor.from_dense("C", np.ones((200, 4)))
        D = Tensor.from_dense("D", np.ones((4, 200)))
        S = Tensor.zeros("S", (200, 200), CSR)
        i, j, k, f, fp, fo, fi = index_vars("i j k f fp fo fi")
        S[i, j] = B[i, j] * C[i, k] * D[k, j]
        s = (S.schedule().fuse(i, j, f).pos(f, fp, B[i, j])
             .divide(fp, fo, fi, 4).distribute(fo))
        ck = compile_kernel(s, Machine.cpu(4))
        part = ck.parts[id(D)]
        assert not part.replicated
        for color in range(4):
            assert part.vals_part[color].volume < 200 * 4  # windowed, not full
        ck.execute()
        expected = A.multiply(np.ones((200, 4)) @ np.ones((4, 200)))
        assert np.allclose(S.to_dense(), expected.toarray())
