"""mmap-backed region sidecars: lazy loading, copy-on-write promotion."""
import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import (
    cache_stats,
    clear_caches,
    compile_kernel,
    load_packed,
    read_manifest,
    save_packed,
)
from repro.core.store import REGIONS_DIR
from repro.errors import StoreError, StoreFormatError
from repro.legion import Machine, Runtime
from repro.taco import CSR, Tensor, index_vars

N, M, PIECES = 80, 64, 4


@pytest.fixture(autouse=True)
def isolated_caches():
    clear_caches()
    yield
    clear_caches()


def make_workload(seed=7, n=N, m=M):
    rng = np.random.default_rng(seed)
    A = sp.random(n, m, density=0.1, random_state=rng, format="csr")
    B = Tensor.from_scipy("B", A, CSR)
    c = Tensor.from_dense("c", rng.random(m))
    a = Tensor.zeros("a", (n,))
    return A, B, c, a


def spmv_schedule(B, c, a, pieces=PIECES):
    i, j, io, ii = index_vars("i j io ii")
    a[i] = B[i, j] * c[j]
    return (a.schedule().divide(i, io, ii, pieces).distribute(io)
            .communicate([a, B, c], io))


class TestSidecars:
    def test_sidecars_written_and_listed(self, tmp_path):
        _, B, _, _ = make_workload()
        path = save_packed(tmp_path / "art", B, include_caches=False,
                           sidecar_threshold=0)
        m = read_manifest(path)
        assert m["regions"]  # pos, crd, vals left the pickle
        for rmeta in m["regions"]:
            assert (path / rmeta["file"]).exists()
            assert rmeta["file"].startswith(REGIONS_DIR)
            assert len(rmeta["sha256"]) == 64
        assert "content_hash" in m and "payload_sha256" in m

    def test_eager_load_roundtrip(self, tmp_path):
        A, B, _, _ = make_workload()
        path = save_packed(tmp_path / "art", B, include_caches=False,
                           sidecar_threshold=0)
        t = load_packed(path).tensor
        assert np.array_equal(t.to_dense(), A.toarray())
        for region in t.regions():
            assert region.data.flags.writeable
            assert not region.is_mapped

    def test_negative_threshold_inlines_everything(self, tmp_path):
        A, B, _, _ = make_workload()
        path = save_packed(tmp_path / "art", B, include_caches=False,
                           sidecar_threshold=-1)
        assert read_manifest(path)["regions"] == []
        t = load_packed(path, mmap=True).tensor
        assert np.array_equal(t.to_dense(), A.toarray())

    def test_missing_sidecar_raises(self, tmp_path):
        _, B, _, _ = make_workload()
        path = save_packed(tmp_path / "art", B, include_caches=False,
                           sidecar_threshold=0)
        next((path / REGIONS_DIR).iterdir()).unlink()
        with pytest.raises(StoreError, match="missing sidecar"):
            load_packed(path, mmap=True)

    def test_save_does_not_disturb_live_tensor(self, tmp_path):
        """Sidecar extraction swaps arrays only for the duration of the
        pickle — the saved tensor keeps its real arrays afterwards."""
        A, B, _, _ = make_workload()
        save_packed(tmp_path / "art", B, include_caches=False,
                    sidecar_threshold=0)
        for region in B.regions():
            assert isinstance(region.data, np.ndarray)
        assert np.array_equal(B.to_dense(), A.toarray())


class TestMmap:
    def test_mmap_load_is_lazy_and_readonly(self, tmp_path):
        A, B, _, _ = make_workload()
        path = save_packed(tmp_path / "art", B, include_caches=False,
                           sidecar_threshold=0)
        t = load_packed(path, mmap=True).tensor
        mapped = [r for r in t.regions() if r.is_mapped]
        assert mapped  # pos/crd/vals all served from the map
        for region in mapped:
            assert isinstance(region.data, np.memmap)
            assert not region.data.flags.writeable
        # reads work without promotion
        assert np.array_equal(t.to_dense(), A.toarray())
        assert all(r.is_mapped for r in mapped)

    def test_promotion_bumps_pattern_version(self, tmp_path):
        _, B, _, _ = make_workload()
        path = save_packed(tmp_path / "art", B, include_caches=False,
                           sidecar_threshold=0)
        t = load_packed(path, mmap=True).tensor
        v0 = t.pattern_version
        region = t.vals
        assert region.is_mapped
        # region-method write promotes automatically...
        region.fill(1.0)
        assert not region.is_mapped and region.data.flags.writeable
        # ...and the owning tensor's pattern_version was bumped.
        assert t.pattern_version > v0

    def test_ensure_writable_promotes_all_regions(self, tmp_path):
        _, B, _, _ = make_workload()
        path = save_packed(tmp_path / "art", B, include_caches=False,
                           sidecar_threshold=0)
        t = load_packed(path, mmap=True).tensor
        v0 = t.pattern_version
        promoted = t.ensure_writable()
        assert promoted >= 3  # pos, crd, vals
        assert all(not r.is_mapped for r in t.regions())
        assert t.pattern_version == v0 + promoted
        t.vals.data[...] = 2.0  # raw NumPy writes now succeed

    def test_raw_write_to_mapped_region_raises(self, tmp_path):
        _, B, _, _ = make_workload()
        path = save_packed(tmp_path / "art", B, include_caches=False,
                           sidecar_threshold=0)
        t = load_packed(path, mmap=True).tensor
        with pytest.raises(ValueError, match="read-only"):
            t.vals.data[...] = 1.0

    def test_promotion_is_idempotent(self, tmp_path):
        _, B, _, _ = make_workload()
        path = save_packed(tmp_path / "art", B, include_caches=False,
                           sidecar_threshold=0)
        t = load_packed(path, mmap=True).tensor
        assert t.vals.promote() is True
        v1 = t.pattern_version
        assert t.vals.promote() is False  # already writable: no hook refire
        assert t.pattern_version == v1


class TestMmapWarmStart:
    def warm(self, B, c, a, machine, rt, iterations=2):
        sims = []
        for _ in range(iterations):
            ck = compile_kernel(spmv_schedule(B, c, a), machine)
            res = ck.execute(rt)
            sims.append(res.metrics.simulated_seconds(rt.network))
        return sims

    def test_mmap_warm_start_reaches_steady_state_under_ram_budget(
        self, tmp_path
    ):
        """The acceptance scenario: an artifact whose region data exceeds a
        simulated RAM budget loads via mmap, keeps the big read-only
        operands out of RAM, and still reaches cached steady state on the
        first execute (kernel hit, trace replay, bit-identical metrics)."""
        _, B, c, a = make_workload(n=2000, m=1600)
        machine = Machine.cpu(PIECES)
        rt = Runtime(machine)
        sims = self.warm(B, c, a, machine, rt)
        total_region_bytes = sum(
            r.data.nbytes for t in (B, c, a) for r in t.regions()
        )
        ram_budget = total_region_bytes // 4  # the simulated RAM budget
        path = save_packed(tmp_path / "art", B, sidecar_threshold=0)

        clear_caches()  # the fresh process's cache state
        art = load_packed(path, mmap=True)
        residency = art.region_residency()
        # The artifact exceeds the budget, but only write-privileged
        # regions (the output vector) were materialized.
        assert residency["mapped"] + residency["resident"] > ram_budget
        assert residency["resident"] <= ram_budget
        assert residency["mapped"] > residency["resident"]

        B2, c2, a2 = art.tensor, art.companions["c"], art.companions["a"]
        assert any(r.is_mapped for r in B2.regions())
        assert not any(r.is_mapped for r in a2.regions())  # promoted output
        rt2 = art.runtime()
        before = cache_stats()
        ck = compile_kernel(spmv_schedule(B2, c2, a2), machine)
        after = cache_stats()
        assert after["kernel_hits"] - before["kernel_hits"] == 1
        assert after["partition_misses"] == before["partition_misses"]
        res = ck.execute(rt2)
        assert rt2.trace_hits >= 1 and rt2.trace_records == 0
        assert res.metrics.simulated_seconds(rt2.network) == sims[-1]
        assert np.array_equal(a2.vals.data, a.vals.data)

    def test_writable_names_promote_before_cache_reseed(self, tmp_path):
        """Tensors named in ``writable`` are promoted before the caches are
        re-seeded, so their version bumps cannot break the first-compile
        cache hit — and their data is directly writable for value updates
        between iterations."""
        _, B, c, a = make_workload()
        machine = Machine.cpu(PIECES)
        rt = Runtime(machine)
        self.warm(B, c, a, machine, rt)
        path = save_packed(tmp_path / "art", B, sidecar_threshold=0)
        clear_caches()
        art = load_packed(path, mmap=True, writable=["c"])
        c2 = art.companions["c"]
        assert not any(r.is_mapped for r in c2.regions())
        c2.vals.data[...] = 0.5  # the iterative-loop value update
        before = cache_stats()
        compile_kernel(spmv_schedule(art.tensor, c2, art.companions["a"]),
                       machine)
        assert cache_stats()["kernel_hits"] - before["kernel_hits"] == 1

    def test_unknown_writable_name_raises(self, tmp_path):
        _, B, _, _ = make_workload()
        path = save_packed(tmp_path / "art", B, include_caches=False,
                           sidecar_threshold=0)
        with pytest.raises(StoreError, match="unknown tensor"):
            load_packed(path, mmap=True, writable=["nope"])

    def test_fresh_kernel_writing_into_mapped_tensor_promotes(self, tmp_path):
        """A kernel compiled *after* the load (so load_packed knew no write
        privileges for it) still promotes its write targets before the leaf
        captures their arrays — instead of crashing on the read-only map."""
        rng = np.random.default_rng(13)
        a = Tensor.from_dense("a", rng.random(N))
        path = save_packed(tmp_path / "art", a, include_caches=False,
                           sidecar_threshold=0)
        a2 = load_packed(path, mmap=True).tensor
        assert any(r.is_mapped for r in a2.regions())
        v0 = a2.pattern_version
        A, B, c, _ = make_workload(seed=21)
        machine = Machine.cpu(PIECES)
        ck = compile_kernel(spmv_schedule(B, c, a2), machine)
        ck.execute(Runtime(machine))
        assert not any(r.is_mapped for r in a2.regions())
        assert a2.pattern_version > v0
        assert np.allclose(a2.vals.data, A @ c.vals.data)


class TestManifestValidation:
    def test_missing_required_key_is_typed_error(self, tmp_path):
        import json

        from repro.core.store import MANIFEST_NAME

        _, B, _, _ = make_workload()
        path = save_packed(tmp_path / "art", B, include_caches=False)
        m = json.loads((path / MANIFEST_NAME).read_text())
        del m["tensor"]
        (path / MANIFEST_NAME).write_text(json.dumps(m))
        with pytest.raises(StoreFormatError, match="required keys: tensor"):
            load_packed(path)

    def test_version_mismatch_reports_expected_and_found(self, tmp_path):
        import json

        from repro.core.store import MANIFEST_NAME, STORE_FORMAT_VERSION

        _, B, _, _ = make_workload()
        path = save_packed(tmp_path / "art", B, include_caches=False)
        m = json.loads((path / MANIFEST_NAME).read_text())
        m["format_version"] = 1
        (path / MANIFEST_NAME).write_text(json.dumps(m))
        with pytest.raises(StoreFormatError) as err:
            load_packed(path)
        assert err.value.expected == STORE_FORMAT_VERSION
        assert err.value.found == 1
        assert str(path) in str(err.value)

    def test_truncated_manifest_is_typed_error(self, tmp_path):
        from repro.core.store import MANIFEST_NAME

        _, B, _, _ = make_workload()
        path = save_packed(tmp_path / "art", B, include_caches=False)
        text = (path / MANIFEST_NAME).read_text()
        (path / MANIFEST_NAME).write_text(text[: len(text) // 2])
        with pytest.raises(StoreFormatError, match="corrupt manifest"):
            load_packed(path)
