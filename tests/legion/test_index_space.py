"""Unit tests for index spaces, rects and subsets."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.legion import (
    EMPTY,
    ArraySubset,
    IndexSpace,
    Rect,
    RectSubset,
    intersect_subsets,
    subset_from_indices,
    union_subsets,
)
from repro.legion.index_space import subtract_subsets


class TestRect:
    def test_1d_basics(self):
        r = Rect(2, 5)
        assert r.ndim == 1
        assert r.volume == 4
        assert not r.empty
        assert r.contains_point(2) and r.contains_point(5)
        assert not r.contains_point(6)

    def test_empty(self):
        r = Rect(3, 2)
        assert r.empty
        assert r.volume == 0
        assert list(r.points()) == []

    def test_nd(self):
        r = Rect((0, 0), (1, 2))
        assert r.ndim == 2
        assert r.volume == 6
        assert r.shape() == (2, 3)
        assert list(r.points()) == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]

    def test_intersection(self):
        a = Rect(0, 10)
        b = Rect(5, 20)
        assert a.intersection(b) == Rect(5, 10)
        assert a.overlaps(b)
        assert not a.overlaps(Rect(11, 20))

    def test_contains_rect(self):
        assert Rect(0, 10).contains_rect(Rect(3, 7))
        assert not Rect(0, 10).contains_rect(Rect(3, 17))
        assert Rect(0, 10).contains_rect(Rect(5, 4))  # empty always contained

    def test_rank_mismatch_raises(self):
        with pytest.raises(ValueError):
            Rect((0, 0), (1,))
        with pytest.raises(ValueError):
            Rect(0, 1).intersection(Rect((0, 0), (1, 1)))


class TestIndexSpace:
    def test_from_int(self):
        isp = IndexSpace(10)
        assert isp.volume == 10
        assert isp.ndim == 1
        assert isp.bounds == Rect(0, 9)

    def test_from_shape(self):
        isp = IndexSpace((3, 4))
        assert isp.volume == 12
        assert isp.shape() == (3, 4)

    def test_identity(self):
        a, b = IndexSpace(5), IndexSpace(5)
        assert a is not b
        assert a.uid != b.uid

    def test_full_subset(self):
        isp = IndexSpace(7)
        assert isp.full_subset().volume == 7


class TestSubsets:
    def test_rect_subset_indices(self):
        s = RectSubset(Rect(2, 4))
        assert list(s.indices()) == [2, 3, 4]
        assert s.as_slice() == slice(2, 5)

    def test_array_subset_dedup_sort(self):
        s = ArraySubset(np.array([5, 1, 5, 3]))
        assert list(s.indices()) == [1, 3, 5]
        assert s.volume == 3
        assert s.as_slice() is None

    def test_array_subset_contiguous_slice(self):
        s = ArraySubset(np.array([3, 4, 5]))
        assert s.as_slice() == slice(3, 6)

    def test_contains_point(self):
        s = ArraySubset(np.array([1, 3, 5]))
        assert s.contains_point(3)
        assert not s.contains_point(2)

    def test_subset_from_indices_collapses_to_rect(self):
        s = subset_from_indices(np.array([4, 5, 6, 7]))
        assert isinstance(s, RectSubset)
        s2 = subset_from_indices(np.array([4, 6]))
        assert isinstance(s2, ArraySubset)
        assert subset_from_indices(np.array([], dtype=np.int64)) is EMPTY

    def test_union_adjacent_rects(self):
        u = union_subsets([RectSubset(Rect(0, 3)), RectSubset(Rect(4, 7))])
        assert isinstance(u, RectSubset)
        assert u.rect == Rect(0, 7)

    def test_union_disjoint(self):
        u = union_subsets([RectSubset(Rect(0, 1)), RectSubset(Rect(5, 6))])
        assert u.volume == 4
        assert list(u.indices()) == [0, 1, 5, 6]

    def test_union_empty(self):
        assert union_subsets([]) is EMPTY
        assert union_subsets([EMPTY, EMPTY]) is EMPTY

    def test_intersect(self):
        a = RectSubset(Rect(0, 5))
        b = ArraySubset(np.array([4, 5, 9]))
        got = intersect_subsets(a, b)
        assert list(got.indices()) == [4, 5]
        assert intersect_subsets(a, EMPTY) is EMPTY

    def test_subtract(self):
        a = RectSubset(Rect(0, 5))
        b = RectSubset(Rect(2, 3))
        got = subtract_subsets(a, b)
        assert list(got.indices()) == [0, 1, 4, 5]
        assert subtract_subsets(EMPTY, a) is EMPTY
        assert subtract_subsets(a, EMPTY) is a

    def test_subtract_nd_conservative(self):
        a = RectSubset(Rect((0, 0), (3, 3)))
        cover = RectSubset(Rect((0, 0), (5, 5)))
        partial = RectSubset(Rect((0, 0), (1, 1)))
        assert subtract_subsets(a, cover).empty
        assert subtract_subsets(a, partial) is a  # conservative


@st.composite
def subsets(draw):
    kind = draw(st.sampled_from(["rect", "array", "empty"]))
    if kind == "empty":
        return EMPTY
    if kind == "rect":
        lo = draw(st.integers(0, 50))
        hi = draw(st.integers(lo, lo + 30))
        return RectSubset(Rect(lo, hi))
    idx = draw(st.lists(st.integers(0, 80), min_size=1, max_size=30))
    return ArraySubset(np.array(idx))


class TestSubsetProperties:
    @given(subsets(), subsets())
    @settings(max_examples=80, deadline=None)
    def test_union_volume_bounds(self, a, b):
        u = union_subsets([a, b])
        assert max(a.volume, b.volume) <= u.volume <= a.volume + b.volume

    @given(subsets(), subsets())
    @settings(max_examples=80, deadline=None)
    def test_inclusion_exclusion(self, a, b):
        u = union_subsets([a, b])
        i = intersect_subsets(a, b)
        assert u.volume == a.volume + b.volume - i.volume

    @given(subsets(), subsets())
    @settings(max_examples=80, deadline=None)
    def test_subtract_partitions_a(self, a, b):
        diff = subtract_subsets(a, b)
        inter = intersect_subsets(a, b)
        assert diff.volume + inter.volume == a.volume

    @given(subsets())
    @settings(max_examples=50, deadline=None)
    def test_indices_sorted_unique(self, a):
        idx = a.indices()
        assert np.all(np.diff(idx) > 0) if idx.size > 1 else True
