"""Machine model and network model tests."""
import pytest

from repro.legion import Grid, Machine, Network, NodeSpec, ProcKind, Work


class TestGrid:
    def test_1d(self):
        g = Grid(4)
        assert g.size == 4 and g.ndim == 1
        assert list(g.points()) == [(0,), (1,), (2,), (3,)]

    def test_2d(self):
        g = Grid(2, 3)
        assert g.size == 6
        assert (1, 2) in list(g.points())

    def test_invalid(self):
        with pytest.raises(ValueError):
            Grid()
        with pytest.raises(ValueError):
            Grid(0)


class TestMachine:
    def test_cpu_one_rank_per_node(self):
        m = Machine.cpu(4)
        assert m.size == 4
        assert m.n_nodes == 4
        assert all(p.kind == ProcKind.CPU for p in m.processors)
        assert m.proc(0).parallel_lanes == 40

    def test_gpu_four_per_node(self):
        m = Machine.gpu(8)
        assert m.size == 8
        assert m.n_nodes == 2
        assert m.same_node(0, 3)
        assert not m.same_node(0, 4)

    def test_cpu_cores(self):
        m = Machine.cpu_cores(2)
        assert m.size == 80
        assert m.proc(0).flops == NodeSpec().core_flops

    def test_cpu_sockets(self):
        m = Machine.cpu_sockets(2)
        assert m.size == 4
        assert m.proc(0).parallel_lanes == 20

    def test_named_dims(self):
        m = Machine(Grid(3, 5))
        assert m.x == 3 and m.y == 5

    def test_node_aggregates(self):
        n = NodeSpec()
        assert n.node_flops() == n.cores * n.core_flops
        assert n.node_membw() == n.cores * n.core_membw


class TestRoofline:
    def test_memory_bound(self):
        p = Machine.cpu(1).proc(0)
        w = Work(flops=1.0, bytes=1e9)
        assert p.seconds_for(w) == pytest.approx(1e9 / p.membw)

    def test_compute_bound(self):
        p = Machine.cpu(1).proc(0)
        w = Work(flops=1e12, bytes=1.0)
        assert p.seconds_for(w) == pytest.approx(1e12 / p.flops)

    def test_work_addition(self):
        w = Work(1.0, 2.0) + Work(3.0, 4.0)
        assert w.flops == 4.0 and w.bytes == 6.0
        assert Work.zero().flops == 0.0


class TestNetwork:
    def test_transfer_zero_bytes_free(self):
        n = Network()
        assert n.transfer_seconds(0, same_node=True) == 0.0

    def test_intra_faster_than_inter(self):
        n = Network()
        assert n.transfer_seconds(1e6, same_node=True) < n.transfer_seconds(
            1e6, same_node=False
        )

    def test_mpi_sync_grows_with_ranks(self):
        assert Network.mpi(640).sync_overhead > Network.mpi(2).sync_overhead

    def test_legion_has_no_bulk_sync(self):
        assert Network.legion().sync_overhead == 0.0
