"""Mapping-trace replay: record, replay, state tracking, invalidation."""
import numpy as np
import pytest

from repro.legion import (
    IndexSpace,
    Machine,
    Partition,
    Privilege,
    Rect,
    RectSubset,
    Region,
    RegionReq,
    Runtime,
    Work,
    equal_partition,
)


def make_rt(nodes=2, **kw):
    return Runtime(Machine.cpu(nodes), **kw)


def mismatched(rt, n=8):
    """A region whose home placement mismatches the launch partition, so
    every fresh-trial launch stages real communication."""
    r = Region(IndexSpace(n))
    home = Partition(r.ispace, {0: RectSubset(Rect(0, n - 3)),
                                1: RectSubset(Rect(n - 2, n - 1))})
    rt.place(r, home)
    req = equal_partition(r.ispace, 2)
    return r, [RegionReq(r, req, Privilege.READ_ONLY)]


class TestRecordReplay:
    def test_second_trial_replays_identical_comm(self):
        rt = make_rt()
        r, reqs = mismatched(rt)
        s1 = rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        assert rt.trace_records == 1
        rt.reset_residency()
        s2 = rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        assert rt.trace_hits == 1
        assert s1.comm_bytes() == s2.comm_bytes() > 0
        assert [(e.src_proc, e.dst_proc, e.nbytes) for e in s1.comm_events] == \
               [(e.src_proc, e.dst_proc, e.nbytes) for e in s2.comm_events]
        assert s1.tasks_launched == s2.tasks_launched
        assert s1.compute_seconds == s2.compute_seconds

    def test_replay_matches_unreplayed_runtime(self):
        """Replayed metrics are bit-identical to a replay-disabled runtime."""
        results = []
        for replay in (True, False):
            rt = make_rt(trace_replay=replay)
            r, reqs = mismatched(rt)
            steps = []
            for _ in range(3):
                rt.reset_residency()
                steps.append(rt.index_launch("t", [0, 1], lambda c: Work(2, 5), reqs))
            results.append([
                (s.comm_bytes(), s.tasks_launched, dict(s.compute_seconds),
                 [(e.src_proc, e.dst_proc, e.nbytes, e.same_node)
                  for e in s.comm_events])
                for s in steps
            ])
        assert results[0] == results[1]

    def test_tasks_still_execute_on_replay(self):
        rt = make_rt()
        r, reqs = mismatched(rt)
        calls = []
        rt.index_launch("t", [0, 1], lambda c: calls.append(c) or Work(1, 1), reqs)
        rt.reset_residency()
        rt.index_launch("t", [0, 1], lambda c: calls.append(c) or Work(1, 1), reqs)
        assert calls == [0, 1, 0, 1]  # values may change: bodies always run

    def test_chained_launches_replay(self):
        rt = make_rt()
        r, reqs = mismatched(rt)
        rt.index_launch("a", [0, 1], lambda c: Work(1, 1), reqs)
        rt.index_launch("b", [0, 1], lambda c: Work(1, 1), reqs)
        assert rt.trace_records == 2
        rt.reset_residency()
        rt.index_launch("a", [0, 1], lambda c: Work(1, 1), reqs)
        rt.index_launch("b", [0, 1], lambda c: Work(1, 1), reqs)
        assert rt.trace_hits == 2

    def test_residency_restored_after_replay(self):
        rt = make_rt()
        r, reqs = mismatched(rt)
        rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        cov1 = rt._residency[r.uid].covered_volume(1, reqs[0].partition[1])
        rt.reset_residency()
        rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        cov2 = rt._residency[r.uid].covered_volume(1, reqs[0].partition[1])
        assert cov1 == cov2 == reqs[0].partition[1].volume


class TestStateTracking:
    def test_different_launch_name_records_fresh(self):
        rt = make_rt()
        r, reqs = mismatched(rt)
        rt.index_launch("a", [0, 1], lambda c: Work(1, 1), reqs)
        rt.reset_residency()
        rt.index_launch("b", [0, 1], lambda c: Work(1, 1), reqs)
        assert rt.trace_hits == 0 and rt.trace_records == 2

    def test_out_of_band_place_prevents_replay(self):
        rt = make_rt()
        r, reqs = mismatched(rt)
        rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        rt.reset_residency()
        other = Region(IndexSpace(4))
        rt.place_on(other, 1)  # residency changed out of band
        rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        assert rt.trace_hits == 0 and rt.trace_records == 2

    def test_copy_subset_prevents_replay(self):
        rt = make_rt()
        r, reqs = mismatched(rt)
        rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        rt.reset_residency()
        step = rt.metrics.new_step("copy")
        rt.copy_subset(step, r, RectSubset(Rect(0, 3)), 1)
        rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        assert rt.trace_hits == 0

    def test_invalidate_caches_drops_traces(self):
        rt = make_rt()
        r, reqs = mismatched(rt)
        rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        rt.invalidate_caches()  # out-of-band write hook
        rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        assert rt.trace_hits == 0 and rt.trace_records == 2

    def test_reset_residency_keeps_traces(self):
        rt = make_rt()
        r, reqs = mismatched(rt)
        rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        rt.reset_residency()
        rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        assert rt.trace_hits == 1

    def test_disabled_replay_never_records(self):
        rt = make_rt(trace_replay=False)
        r, reqs = mismatched(rt)
        rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        rt.reset_residency()
        rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        assert rt.trace_records == 0 and rt.trace_hits == 0


class TestReductionReplay:
    def test_reduce_comm_replayed(self):
        rt = make_rt()
        out = Region(IndexSpace(10))
        part = Partition(out.ispace, {0: RectSubset(Rect(0, 5)),
                                      1: RectSubset(Rect(5, 9))})
        rt.place(out, part)
        reqs = [RegionReq(out, part, Privilege.REDUCE)]
        s1 = rt.index_launch("r", [0, 1], lambda c: Work(1, 1), reqs)
        rt.reset_residency()
        s2 = rt.index_launch("r", [0, 1], lambda c: Work(1, 1), reqs)
        assert rt.trace_hits == 1
        assert s1.comm_bytes() == s2.comm_bytes() == 2 * 1 * 8


class TestSteadyStateLoops:
    def test_resident_data_loop_replays_without_reset(self):
        """fresh_trial=False style loops (no reset between launches) reach a
        residency fixpoint and replay instead of re-recording forever."""
        rt = make_rt()
        r, reqs = mismatched(rt)
        for _ in range(10):
            rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        # launch 1 stages (records), launch 2 records the fixpoint state,
        # launches 3..10 replay it
        assert rt.trace_records == 2
        assert rt.trace_hits == 8
        assert len(rt._traces) == 2

    def test_write_loop_reaches_fixpoint(self):
        rt = make_rt()
        out = Region(IndexSpace(8))
        part = equal_partition(out.ispace, 2)
        rt.place(out, part)
        reqs = [RegionReq(out, part, Privilege.WRITE_DISCARD)]
        for _ in range(6):
            rt.index_launch("w", [0, 1], lambda c: Work(1, 1), reqs)
        assert rt.trace_hits >= 4  # steady state replays

    def test_duplicate_residency_adds_are_skipped(self):
        rt = make_rt()
        r = Region(IndexSpace(8))
        rt.place_on(r, 0)
        res = rt._residency[r.uid]
        n = len(res.by_proc[0])
        res.add(0, r.ispace.full_subset())
        assert len(res.by_proc[0]) == n  # structurally equal: not re-added

    def test_reenabling_replay_after_untracked_launch_is_safe(self):
        """Launches with trace_replay off mutate residency; flipping the
        flag back on must not record from (and replay against) a stale
        'clean' state token."""
        rt = make_rt()
        r, reqs = mismatched(rt)
        rt.trace_replay = False
        s_warm = rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        rt.trace_replay = True
        rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)  # records (warm)
        rt.reset_residency()  # true homes-only state
        s_cold = rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        # the cold launch must re-pay staging, not replay the warm trace
        assert s_cold.comm_bytes() == s_warm.comm_bytes() > 0
