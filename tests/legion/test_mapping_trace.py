"""Mapping-trace replay: record, replay, state tracking, invalidation,
copy-sequence replay, the SpAdd assembly chain, and metrics auto-trim."""
import contextlib

import numpy as np
import pytest

from repro.legion import (
    IndexSpace,
    Machine,
    Partition,
    Privilege,
    Rect,
    RectSubset,
    Region,
    RegionReq,
    Runtime,
    Work,
    equal_partition,
)


def make_rt(nodes=2, **kw):
    return Runtime(Machine.cpu(nodes), **kw)


def mismatched(rt, n=8):
    """A region whose home placement mismatches the launch partition, so
    every fresh-trial launch stages real communication."""
    r = Region(IndexSpace(n))
    home = Partition(r.ispace, {0: RectSubset(Rect(0, n - 3)),
                                1: RectSubset(Rect(n - 2, n - 1))})
    rt.place(r, home)
    req = equal_partition(r.ispace, 2)
    return r, [RegionReq(r, req, Privilege.READ_ONLY)]


class TestRecordReplay:
    def test_second_trial_replays_identical_comm(self):
        rt = make_rt()
        r, reqs = mismatched(rt)
        s1 = rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        assert rt.trace_records == 1
        rt.reset_residency()
        s2 = rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        assert rt.trace_hits == 1
        assert s1.comm_bytes() == s2.comm_bytes() > 0
        assert [(e.src_proc, e.dst_proc, e.nbytes) for e in s1.comm_events] == \
               [(e.src_proc, e.dst_proc, e.nbytes) for e in s2.comm_events]
        assert s1.tasks_launched == s2.tasks_launched
        assert s1.compute_seconds == s2.compute_seconds

    def test_replay_matches_unreplayed_runtime(self):
        """Replayed metrics are bit-identical to a replay-disabled runtime."""
        results = []
        for replay in (True, False):
            rt = make_rt(trace_replay=replay)
            r, reqs = mismatched(rt)
            steps = []
            for _ in range(3):
                rt.reset_residency()
                steps.append(rt.index_launch("t", [0, 1], lambda c: Work(2, 5), reqs))
            results.append([
                (s.comm_bytes(), s.tasks_launched, dict(s.compute_seconds),
                 [(e.src_proc, e.dst_proc, e.nbytes, e.same_node)
                  for e in s.comm_events])
                for s in steps
            ])
        assert results[0] == results[1]

    def test_tasks_still_execute_on_replay(self):
        rt = make_rt()
        r, reqs = mismatched(rt)
        calls = []
        rt.index_launch("t", [0, 1], lambda c: calls.append(c) or Work(1, 1), reqs)
        rt.reset_residency()
        rt.index_launch("t", [0, 1], lambda c: calls.append(c) or Work(1, 1), reqs)
        assert calls == [0, 1, 0, 1]  # values may change: bodies always run

    def test_chained_launches_replay(self):
        rt = make_rt()
        r, reqs = mismatched(rt)
        rt.index_launch("a", [0, 1], lambda c: Work(1, 1), reqs)
        rt.index_launch("b", [0, 1], lambda c: Work(1, 1), reqs)
        assert rt.trace_records == 2
        rt.reset_residency()
        rt.index_launch("a", [0, 1], lambda c: Work(1, 1), reqs)
        rt.index_launch("b", [0, 1], lambda c: Work(1, 1), reqs)
        assert rt.trace_hits == 2

    def test_residency_restored_after_replay(self):
        rt = make_rt()
        r, reqs = mismatched(rt)
        rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        cov1 = rt._residency[r.uid].covered_volume(1, reqs[0].partition[1])
        rt.reset_residency()
        rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        cov2 = rt._residency[r.uid].covered_volume(1, reqs[0].partition[1])
        assert cov1 == cov2 == reqs[0].partition[1].volume


class TestStateTracking:
    def test_different_launch_name_records_fresh(self):
        rt = make_rt()
        r, reqs = mismatched(rt)
        rt.index_launch("a", [0, 1], lambda c: Work(1, 1), reqs)
        rt.reset_residency()
        rt.index_launch("b", [0, 1], lambda c: Work(1, 1), reqs)
        assert rt.trace_hits == 0 and rt.trace_records == 2

    def test_out_of_band_place_prevents_replay(self):
        rt = make_rt()
        r, reqs = mismatched(rt)
        rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        rt.reset_residency()
        other = Region(IndexSpace(4))
        rt.place_on(other, 1)  # residency changed out of band
        rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        assert rt.trace_hits == 0 and rt.trace_records == 2

    def test_copy_subset_prevents_replay(self):
        rt = make_rt()
        r, reqs = mismatched(rt)
        rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        rt.reset_residency()
        step = rt.metrics.new_step("copy")
        rt.copy_subset(step, r, RectSubset(Rect(0, 3)), 1)
        rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        assert rt.trace_hits == 0

    def test_invalidate_caches_drops_traces(self):
        rt = make_rt()
        r, reqs = mismatched(rt)
        rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        rt.invalidate_caches()  # out-of-band write hook
        rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        assert rt.trace_hits == 0 and rt.trace_records == 2

    def test_reset_residency_keeps_traces(self):
        rt = make_rt()
        r, reqs = mismatched(rt)
        rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        rt.reset_residency()
        rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        assert rt.trace_hits == 1

    def test_disabled_replay_never_records(self):
        rt = make_rt(trace_replay=False)
        r, reqs = mismatched(rt)
        rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        rt.reset_residency()
        rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        assert rt.trace_records == 0 and rt.trace_hits == 0


class TestReductionReplay:
    def test_reduce_comm_replayed(self):
        rt = make_rt()
        out = Region(IndexSpace(10))
        part = Partition(out.ispace, {0: RectSubset(Rect(0, 5)),
                                      1: RectSubset(Rect(5, 9))})
        rt.place(out, part)
        reqs = [RegionReq(out, part, Privilege.REDUCE)]
        s1 = rt.index_launch("r", [0, 1], lambda c: Work(1, 1), reqs)
        rt.reset_residency()
        s2 = rt.index_launch("r", [0, 1], lambda c: Work(1, 1), reqs)
        assert rt.trace_hits == 1
        assert s1.comm_bytes() == s2.comm_bytes() == 2 * 1 * 8


class TestSteadyStateLoops:
    def test_resident_data_loop_replays_without_reset(self):
        """fresh_trial=False style loops (no reset between launches) reach a
        residency fixpoint and replay instead of re-recording forever."""
        rt = make_rt()
        r, reqs = mismatched(rt)
        for _ in range(10):
            rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        # launch 1 stages (records), launch 2 records the fixpoint state,
        # launches 3..10 replay it
        assert rt.trace_records == 2
        assert rt.trace_hits == 8
        assert len(rt._traces) == 2

    def test_write_loop_reaches_fixpoint(self):
        rt = make_rt()
        out = Region(IndexSpace(8))
        part = equal_partition(out.ispace, 2)
        rt.place(out, part)
        reqs = [RegionReq(out, part, Privilege.WRITE_DISCARD)]
        for _ in range(6):
            rt.index_launch("w", [0, 1], lambda c: Work(1, 1), reqs)
        assert rt.trace_hits >= 4  # steady state replays

    def test_duplicate_residency_adds_are_skipped(self):
        rt = make_rt()
        r = Region(IndexSpace(8))
        rt.place_on(r, 0)
        res = rt._residency[r.uid]
        n = len(res.by_proc[0])
        res.add(0, r.ispace.full_subset())
        assert len(res.by_proc[0]) == n  # structurally equal: not re-added

    def test_reenabling_replay_after_untracked_launch_is_safe(self):
        """Launches with trace_replay off mutate residency; flipping the
        flag back on must not record from (and replay against) a stale
        'clean' state token."""
        rt = make_rt()
        r, reqs = mismatched(rt)
        rt.trace_replay = False
        s_warm = rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        rt.trace_replay = True
        rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)  # records (warm)
        rt.reset_residency()  # true homes-only state
        s_cold = rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        # the cold launch must re-pay staging, not replay the warm trace
        assert s_cold.comm_bytes() == s_warm.comm_bytes() > 0


class TestCopyReplay:
    """`communicate`-lowered copy_subset sequences record and replay."""

    def test_repeated_copy_launch_chain_replays(self):
        rt = make_rt()
        r, reqs = mismatched(rt)
        subset = RectSubset(Rect(0, 3))

        def trial():
            rt.reset_residency()
            step = rt.metrics.new_step("copy")
            rt.copy_subset(step, r, subset, 1)
            launch = rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
            return step.comm_bytes(), launch.comm_bytes()

        first = trial()
        assert rt.trace_records == 2 and rt.trace_hits == 0
        second = trial()
        assert rt.trace_hits == 2 and rt.trace_records == 2
        assert second == first
        assert first[0] > 0

    def test_copy_of_resident_subset_self_loops(self):
        """A copy that moves nothing leaves the state unchanged, so the
        surrounding launch chain keeps replaying."""
        rt = make_rt()
        r = Region(IndexSpace(8))
        rt.place_on(r, 1)  # already fully resident on proc 1
        for _ in range(3):
            step = rt.metrics.new_step("copy")
            rt.copy_subset(step, r, RectSubset(Rect(0, 3)), 1)
            assert step.comm_bytes() == 0
        assert rt.trace_records == 1 and rt.trace_hits == 2

    def test_different_subset_records_fresh(self):
        rt = make_rt()
        r, reqs = mismatched(rt)
        step = rt.metrics.new_step("copy")
        rt.copy_subset(step, r, RectSubset(Rect(0, 3)), 1)
        rt.reset_residency()
        step = rt.metrics.new_step("copy")
        rt.copy_subset(step, r, RectSubset(Rect(0, 5)), 1)
        assert rt.trace_hits == 0 and rt.trace_records == 2

    def test_invalidate_caches_drops_copy_traces(self):
        rt = make_rt()
        r, reqs = mismatched(rt)
        subset = RectSubset(Rect(0, 3))
        step = rt.metrics.new_step("copy")
        rt.copy_subset(step, r, subset, 1)
        rt.invalidate_caches()
        step = rt.metrics.new_step("copy")
        rt.copy_subset(step, r, subset, 1)
        assert rt.trace_hits == 0 and rt.trace_records == 2

    def test_disabled_replay_copies_mark_dirty(self):
        rt = make_rt(trace_replay=False)
        r, reqs = mismatched(rt)
        state = rt._state
        step = rt.metrics.new_step("copy")
        rt.copy_subset(step, r, RectSubset(Rect(0, 3)), 1)
        assert rt.trace_records == 0
        assert rt._state != state


class TestSpAddReplay:
    """The SpAdd assembly chain (symbolic -> scan -> fill) replays across
    iterations: the per-execute output re-assembly no longer re-records."""

    def iterate(self, rt, iterations, *, cached=True, seed=3):
        import scipy.sparse as sp

        from repro.core import cache_stats, clear_caches, compile_kernel
        from repro.core.cache import caches_disabled
        from repro.taco import CSR, Tensor, index_vars

        r = np.random.default_rng(seed)
        mats = [sp.random(50, 40, density=0.08, random_state=r, format="csr")
                for _ in range(3)]
        B, C, D = (Tensor.from_scipy(n, m, CSR) for n, m in zip("BCD", mats))
        A = Tensor.zeros("A", (50, 40), CSR)
        machine = rt.machine
        sims, kernels = [], []
        ctx = caches_disabled() if not cached else contextlib.nullcontext()
        with ctx:
            for _ in range(iterations):
                i, j, io, ii = index_vars("i j io ii")
                A[i, j] = B[i, j] + C[i, j] + D[i, j]
                s = A.schedule().divide(i, io, ii, 2).distribute(io)
                ck = compile_kernel(s, machine, use_cache=cached)
                res = ck.execute(rt)
                sims.append(res.metrics.simulated_seconds(rt.network))
                kernels.append(ck)
        ref = (mats[0] + mats[1] + mats[2]).toarray()
        return sims, kernels, np.allclose(A.to_dense(), ref)

    def test_iterative_spadd_replays_not_rerecords(self):
        from repro.core import clear_caches

        clear_caches()
        rt = make_rt()
        iterations = 5
        sims, kernels, numerics_ok = self.iterate(rt, iterations)
        clear_caches()
        assert numerics_ok
        # one compile, reused every iteration (output re-assembly must not
        # change the fingerprint)
        assert all(k is kernels[0] for k in kernels)
        # the chain records once (symbolic + fill) and replays after
        assert rt.trace_records == 2
        assert rt.trace_hits == 2 * (iterations - 1)
        assert len(set(sims)) == 1  # value-identical iterations

    def test_assembled_fingerprint_excludes_lhs_version_for_aliased_forms(self):
        """Every assembled statement — including ``A = B + A`` and the
        ``accumulate`` sugar — excludes the LHS pattern version from its
        fingerprint: execution snapshots aliased operand arrays before the
        install, so each re-assembly reuses the kernel and replays."""
        import scipy.sparse as sp

        from repro.core import kernel_fingerprint
        from repro.legion import Machine
        from repro.taco import CSR, Tensor, index_vars

        r = np.random.default_rng(1)
        B = Tensor.from_scipy(
            "B", sp.random(20, 16, density=0.2, random_state=r, format="csr"), CSR
        )
        A = Tensor.zeros("A", (20, 16), CSR)
        machine = Machine.cpu(2)

        def fp():
            i, j = index_vars("i j")
            from repro.taco.expr import Add

            A.assignment = None
            A[i, j] = Add([B[i, j], A[i, j]])
            return kernel_fingerprint(A.schedule(), machine)

        f1, f2 = fp(), fp()
        assert f1 == f2
        A._bump_pattern_version()  # what install_assembled_output does
        assert fp() == f1

        # The accumulate sugar (A = A + B + C) strips A from the operands
        # but still reads it — execution re-adds it from a snapshot, so
        # the fingerprint excludes its version too.
        D = Tensor.zeros("D", (20, 16), CSR)

        def fp_acc():
            i, j = index_vars("i j")
            D[i, j] = D[i, j] + B[i, j] + B[i, j]
            assert D.assignment.accumulate
            return kernel_fingerprint(D.schedule(), machine)

        a1 = fp_acc()
        D._bump_pattern_version()
        assert fp_acc() == a1

        # An operand that is *not* the LHS keeps its version in the key.
        b1 = fp()
        B._bump_pattern_version()
        assert fp() != b1

        # Non-aliased statements exclude the LHS version as before.
        C = Tensor.zeros("C", (20, 16), CSR)

        def fp_out():
            i, j = index_vars("i j")
            from repro.taco.expr import Add

            C[i, j] = Add([B[i, j], B[i, j]])
            return kernel_fingerprint(C.schedule(), machine)

        g1 = fp_out()
        C._bump_pattern_version()
        assert fp_out() == g1

    def test_spadd_cached_metrics_match_seed_path(self):
        """Replay is a wall-clock optimization of the simulator: the cached
        chain's simulated metrics equal the seed path's, iteration for
        iteration."""
        from repro.core import clear_caches

        clear_caches()
        sims_c, _, ok_c = self.iterate(make_rt(), 4, cached=True)
        clear_caches()
        sims_u, _, ok_u = self.iterate(make_rt(trace_replay=False), 4,
                                       cached=False)
        clear_caches()
        assert ok_c and ok_u
        assert sims_c == pytest.approx(sims_u)


class TestMetricsAutotrim:
    def test_long_loop_keeps_bounded_steps_and_exact_totals(self):
        rt = make_rt(metrics_limit=20)
        ref = make_rt(metrics_limit=0)  # never trims
        for rt_ in (rt, ref):
            r, reqs = mismatched(rt_)
            for _ in range(100):
                rt_.reset_residency()
                rt_.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        assert len(rt.metrics.steps) <= 21  # trimmed between trials
        assert len(ref.metrics.steps) == 100
        assert rt.metrics.folded_steps > 0
        # totals are preserved (to float summation order: folding
        # re-associates the same per-step terms)
        assert rt.metrics.simulated_seconds(rt.network) == pytest.approx(
            ref.metrics.simulated_seconds(ref.network), rel=1e-12)
        assert rt.metrics.total_comm_bytes() == ref.metrics.total_comm_bytes()
        assert rt.metrics.total_tasks() == ref.metrics.total_tasks()
        assert rt.metrics.total_compute_seconds() == pytest.approx(
            ref.metrics.total_compute_seconds(), rel=1e-12)

    def test_trim_disabled_by_default_at_small_scale(self):
        rt = make_rt()  # default limit 10k: nothing trims in normal tests
        r, reqs = mismatched(rt)
        for _ in range(30):
            rt.reset_residency()
            rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        assert len(rt.metrics.steps) == 30
        assert rt.metrics.folded_steps == 0

    def test_explicit_trim_metrics(self):
        rt = make_rt()
        r, reqs = mismatched(rt)
        for _ in range(10):
            rt.reset_residency()
            rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        total = rt.metrics.simulated_seconds(rt.network)
        folded = rt.trim_metrics(keep=2)
        assert folded == 8
        assert len(rt.metrics.steps) == 2
        assert rt.metrics.simulated_seconds(rt.network) == pytest.approx(
            total, rel=1e-12)

    def test_trim_never_shifts_a_trial_slice(self):
        """Auto-trim fires in reset_residency (before a trial's steps are
        sliced), so per-trial metrics stay intact mid-execution."""
        rt = make_rt(metrics_limit=4)
        r, reqs = mismatched(rt)
        for _ in range(12):
            rt.reset_residency()
            before = len(rt.metrics.steps)
            rt.index_launch("a", [0, 1], lambda c: Work(1, 1), reqs)
            rt.index_launch("b", [0, 1], lambda c: Work(1, 1), reqs)
            trial = rt.metrics.steps[before:]
            assert [s.name for s in trial] == ["a", "b"]
