"""Dependent partitioning: image/preimage semantics (paper §III-A, Fig. 6)."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.legion import (
    IndexSpace,
    Partition,
    Rect,
    RectSubset,
    Region,
    equal_partition,
    image,
    make_pos_region,
    partition_by_bounds,
    partition_by_value_ranges,
    preimage,
)


def fig6_regions():
    """The example of Fig. 6: S holds ranges naming indices of D (size 8)."""
    # S entries: {0,2}, {3,4}, {5,5}, {6,8}->clip to {6,7}
    pos = make_pos_region(np.array([[0, 2], [3, 4], [5, 5], [6, 7]]))
    dst = Region(IndexSpace(8), np.float64)
    return pos, dst


class TestImage:
    def test_fig6a_image(self):
        pos, dst = fig6_regions()
        ps = Partition(
            pos.ispace,
            {0: RectSubset(Rect(0, 1)), 1: RectSubset(Rect(2, 3))},
        )
        img = image(pos, ps, dst)
        assert img[0].indices().tolist() == [0, 1, 2, 3, 4]
        assert img[1].indices().tolist() == [5, 6, 7]

    def test_image_of_empty_color(self):
        pos, dst = fig6_regions()
        ps = Partition(pos.ispace, {0: RectSubset(Rect(0, -1))})
        assert image(pos, ps, dst)[0].empty

    def test_image_skips_empty_ranges(self):
        pos = make_pos_region([2, 0, 1])
        dst = Region(IndexSpace(3))
        ps = Partition(pos.ispace, {0: RectSubset(Rect(1, 1))})
        assert image(pos, ps, dst)[0].empty


class TestPreimage:
    def test_fig6b_preimage_aliases(self):
        pos, dst = fig6_regions()
        # color D by halves: [0..3] red, [4..7] blue
        pd = Partition(
            dst.ispace, {0: RectSubset(Rect(0, 3)), 1: RectSubset(Rect(4, 7))}
        )
        pre = preimage(pos, pd, dst)
        # entry 1 ({3,4}) straddles both halves -> colored twice
        assert pre[0].indices().tolist() == [0, 1]
        assert pre[1].indices().tolist() == [1, 2, 3]
        assert not pre.is_disjoint()

    def test_preimage_excludes_empty_sources(self):
        pos = make_pos_region([1, 0, 1])
        dst = Region(IndexSpace(2))
        pd = Partition(dst.ispace, {0: RectSubset(Rect(0, 1))})
        pre = preimage(pos, pd, dst)
        assert pre[0].indices().tolist() == [0, 2]

    def test_preimage_of_array_subset(self):
        pos, dst = fig6_regions()
        from repro.legion import ArraySubset

        pd = Partition(dst.ispace, {0: ArraySubset(np.array([5]))})
        pre = preimage(pos, pd, dst)
        assert pre[0].indices().tolist() == [2]


class TestByBoundsAndValues:
    def test_by_bounds_clamps(self):
        isp = IndexSpace(10)
        p = partition_by_bounds(isp, {0: (-5, 3), 1: (8, 100)})
        assert p[0].indices().tolist() == [0, 1, 2, 3]
        assert p[1].indices().tolist() == [8, 9]

    def test_by_value_ranges(self):
        crd = Region(IndexSpace(6), np.int64, data=np.array([0, 5, 2, 5, 1, 3]))
        p = partition_by_value_ranges(crd, {0: (0, 2), 1: (3, 5)})
        assert p[0].indices().tolist() == [0, 2, 4]
        assert p[1].indices().tolist() == [1, 3, 5]
        assert p.is_disjoint() and p.is_complete()


@st.composite
def csr_pos(draw):
    counts = draw(st.lists(st.integers(0, 5), min_size=1, max_size=12))
    return make_pos_region(np.array(counts, dtype=np.int64)), int(sum(counts))


class TestDependentProperties:
    @given(csr_pos(), st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_image_covers_children_of_colored_parents(self, pc, pieces):
        pos, total = pc
        dst = Region(IndexSpace(max(total, 1)))
        ps = equal_partition(pos.ispace, pieces)
        img = image(pos, ps, dst)
        for c in range(pieces):
            for i in ps[c].indices():
                lo, hi = pos.range_at(int(i))
                for p in range(lo, hi + 1):
                    assert img[c].contains_point(p)

    @given(csr_pos(), st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_preimage_of_image_contains_original(self, pc, pieces):
        """preimage(image(P)) ⊇ P restricted to non-empty sources."""
        pos, total = pc
        if total == 0:
            return
        dst = Region(IndexSpace(total))
        ps = equal_partition(pos.ispace, pieces)
        img = image(pos, ps, dst)
        pre = preimage(pos, img, dst)
        for c in range(pieces):
            for i in ps[c].indices():
                lo, hi = pos.range_at(int(i))
                if hi >= lo:  # non-empty sources must be recolored
                    assert pre[c].contains_point(int(i))

    @given(csr_pos(), st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_preimage_exactness(self, pc, pieces):
        """Every preimage-colored source really touches the colored subset."""
        pos, total = pc
        if total == 0:
            return
        dst = Region(IndexSpace(total))
        pd = equal_partition(dst.ispace, pieces)
        pre = preimage(pos, pd, dst)
        for c in range(pieces):
            target = pd[c]
            for i in pre[c].indices():
                lo, hi = pos.range_at(int(i))
                assert any(target.contains_point(p) for p in range(lo, hi + 1))
