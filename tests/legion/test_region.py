"""Unit tests for regions, including rect-valued pos regions (paper Fig. 7)."""
import numpy as np
import pytest

from repro.legion import (
    ArraySubset,
    IndexSpace,
    Rect,
    RectRegion,
    RectSubset,
    Region,
    make_pos_region,
)


class TestRegion:
    def test_zeros_by_default(self):
        r = Region(IndexSpace(4))
        assert np.all(r.data == 0)
        assert r.data.shape == (4,)

    def test_nd_region(self):
        r = Region(IndexSpace((2, 3)))
        assert r.data.shape == (2, 3)
        assert r.nbytes == 6 * 8

    def test_data_shape_validation(self):
        with pytest.raises(ValueError):
            Region(IndexSpace(4), data=np.zeros(5))

    def test_subset_view_is_view_for_rect(self):
        r = Region(IndexSpace(6), data=np.arange(6.0))
        v = r.subset_view(RectSubset(Rect(1, 3)))
        v[:] = -1
        assert r.data[1] == -1 and r.data[3] == -1

    def test_subset_view_gather_for_array(self):
        r = Region(IndexSpace(6), data=np.arange(6.0))
        v = r.subset_view(ArraySubset(np.array([0, 4])))
        assert list(v) == [0.0, 4.0]

    def test_write_and_accumulate(self):
        r = Region(IndexSpace(5))
        r.write_subset(RectSubset(Rect(0, 1)), np.array([1.0, 2.0]))
        r.accumulate_subset(ArraySubset(np.array([1, 3])), np.array([10.0, 20.0]))
        assert list(r.data) == [1.0, 12.0, 0.0, 20.0, 0.0]

    def test_nd_subset_view(self):
        r = Region(IndexSpace((3, 3)), data=np.arange(9.0).reshape(3, 3))
        v = r.subset_view(RectSubset(Rect((1, 0), (2, 1))))
        assert v.shape == (2, 2)
        assert v[0, 0] == 3.0


class TestRectRegion:
    def test_pos_from_counts(self):
        # Fig. 7: counts per row of the 4x4 example matrix
        pos = make_pos_region([3, 2, 1, 2])
        assert pos.data.tolist() == [[0, 2], [3, 4], [5, 5], [6, 7]]

    def test_empty_rows_have_inverted_ranges(self):
        pos = make_pos_region([2, 0, 1])
        assert pos.data.tolist() == [[0, 1], [2, 1], [2, 2]]
        lo, hi = pos.range_at(1)
        assert hi < lo  # empty

    def test_from_explicit_bounds(self):
        pos = make_pos_region(np.array([[0, 1], [2, 3]]))
        assert pos.range_at(1) == (2, 3)

    def test_destination_subset_contiguous(self):
        pos = make_pos_region([3, 2, 1, 2])
        d = pos.destination_subset(RectSubset(Rect(0, 1)))
        assert isinstance(d, RectSubset)
        assert d.rect == Rect(0, 4)

    def test_destination_subset_all_empty(self):
        pos = make_pos_region([0, 0])
        assert pos.destination_subset(RectSubset(Rect(0, 1))).empty

    def test_destination_subset_with_gaps(self):
        data = np.array([[0, 1], [5, 6]])
        pos = make_pos_region(data)
        d = pos.destination_subset(RectSubset(Rect(0, 1)))
        assert sorted(d.indices().tolist()) == [0, 1, 5, 6]

    def test_must_be_1d(self):
        with pytest.raises(ValueError):
            RectRegion(IndexSpace((2, 2)))

    def test_subset_nbytes_counts_rect_width(self):
        pos = make_pos_region([1, 1])
        assert pos.subset_nbytes(RectSubset(Rect(0, 1))) == 2 * 8 * 2
