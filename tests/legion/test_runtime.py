"""Runtime tests: staging, privileges, reductions, capacity, streaming."""
import numpy as np
import pytest

from repro.errors import OOMError
from repro.legion import (
    IndexSpace,
    Machine,
    Network,
    NodeSpec,
    Partition,
    Privilege,
    Rect,
    RectSubset,
    Region,
    RegionReq,
    Runtime,
    Work,
    equal_partition,
)


def make_rt(nodes=2, **net_kw):
    return Runtime(Machine.cpu(nodes), Network(**net_kw) if net_kw else None)


class TestStaging:
    def test_matched_placement_no_comm(self):
        rt = make_rt()
        r = Region(IndexSpace(8))
        p = equal_partition(r.ispace, 2)
        rt.place(r, p)
        step = rt.index_launch(
            "t", [0, 1], lambda c: Work(1, 1), [RegionReq(r, p, Privilege.READ_ONLY)]
        )
        assert step.comm_bytes() == 0

    def test_mismatched_placement_moves_missing(self):
        rt = make_rt()
        r = Region(IndexSpace(8))
        home = Partition(
            r.ispace, {0: RectSubset(Rect(0, 5)), 1: RectSubset(Rect(6, 7))}
        )
        rt.place(r, home)
        req = equal_partition(r.ispace, 2)  # wants [0..3], [4..7]
        step = rt.index_launch(
            "t", [0, 1], lambda c: Work(1, 1), [RegionReq(r, req, Privilege.READ_ONLY)]
        )
        # piece 1 needs [4..7]; owns [6..7]; missing [4..5] = 2 elems * 8B
        assert step.comm_bytes() == 2 * 8

    def test_second_trial_after_invalidate_repays(self):
        rt = make_rt()
        r = Region(IndexSpace(8))
        rt.place_on(r, 0)
        req = equal_partition(r.ispace, 2)
        reqs = [RegionReq(r, req, Privilege.READ_ONLY)]
        s1 = rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        assert s1.comm_bytes() == 4 * 8  # piece 1 pulls its half
        s2 = rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        assert s2.comm_bytes() == 0  # cached
        rt.invalidate_caches()
        s3 = rt.index_launch("t", [0, 1], lambda c: Work(1, 1), reqs)
        assert s3.comm_bytes() == 4 * 8  # cache dropped, home kept

    def test_replicated_home_survives_invalidation(self):
        rt = make_rt()
        r = Region(IndexSpace(8))
        rt.place_replicated(r)
        rt.invalidate_caches()
        step = rt.index_launch(
            "t", [0, 1], lambda c: Work(1, 1), [RegionReq(r, None, Privilege.READ_ONLY)]
        )
        assert step.comm_bytes() == 0


class TestWriteCoherence:
    def test_write_invalidates_other_copies(self):
        rt = make_rt()
        r = Region(IndexSpace(8))
        rt.place_replicated(r)
        p = equal_partition(r.ispace, 2)
        rt.index_launch(
            "w", [0, 1], lambda c: Work(1, 1), [RegionReq(r, p, Privilege.WRITE_DISCARD)]
        )
        # proc 1's copy of [0..3] was invalidated by proc 0's write
        res = rt._residency[r.uid]
        assert res.covered_volume(1, p[0]) == 0
        assert res.covered_volume(0, p[0]) == 4


class TestReduction:
    def test_reduce_charges_only_aliased_overlap(self):
        rt = make_rt()
        out = Region(IndexSpace(10))
        # aliased output partition: both pieces share row 5
        part = Partition(
            out.ispace, {0: RectSubset(Rect(0, 5)), 1: RectSubset(Rect(5, 9))}
        )
        rt.place(out, part)
        step = rt.index_launch(
            "r", [0, 1], lambda c: Work(1, 1), [RegionReq(out, part, Privilege.REDUCE)]
        )
        # each piece sends only the 1 shared element to the other's home
        assert step.comm_bytes() == 2 * 1 * 8

    def test_disjoint_reduce_free(self):
        rt = make_rt()
        out = Region(IndexSpace(10))
        part = equal_partition(out.ispace, 2)
        rt.place(out, part)
        step = rt.index_launch(
            "r", [0, 1], lambda c: Work(1, 1), [RegionReq(out, part, Privilege.REDUCE)]
        )
        assert step.comm_bytes() == 0


class TestStreaming:
    def test_streamed_repays_every_launch(self):
        rt = make_rt()
        r = Region(IndexSpace(100))
        rt.place_on(r, 0)
        req = RegionReq(r, None, Privilege.READ_ONLY, streamed=True)
        s1 = rt.index_launch("t", [1], lambda c: Work(1, 1), [req],
                             proc_map=lambda c: 1)
        s2 = rt.index_launch("t", [1], lambda c: Work(1, 1), [req],
                             proc_map=lambda c: 1)
        assert s1.comm_bytes() == 100 * 8
        assert s2.comm_bytes() == 100 * 8  # never resident

    def test_streamed_does_not_count_against_capacity(self):
        tiny = NodeSpec(dram_bytes=1024.0)
        rt = Runtime(Machine.cpu(2, tiny))
        r = Region(IndexSpace(4096))  # 32KB > 1KB capacity
        rt.place_on(r, 0)
        req = RegionReq(r, None, Privilege.READ_ONLY, streamed=True)
        rt.index_launch("t", [1], lambda c: Work(1, 1), [req], proc_map=lambda c: 1)


class TestCapacity:
    def test_oom_on_staging(self):
        tiny = NodeSpec(dram_bytes=64.0)
        rt = Runtime(Machine.cpu(2, tiny))
        r = Region(IndexSpace(100))  # 800B > 64B
        rt.place_on(r, 0)
        with pytest.raises(OOMError):
            rt.index_launch(
                "t", [1], lambda c: Work(1, 1),
                [RegionReq(r, None, Privilege.READ_ONLY)],
                proc_map=lambda c: 1,
            )

    def test_oom_message_mentions_capacity(self):
        err = OOMError(3, 2.0 * 2**30, 1.0 * 2**30, what="staging x")
        assert "3" in str(err) and "2.00 GiB" in str(err)


class TestMetricsRollup:
    def test_simulated_seconds_positive_and_additive(self):
        rt = make_rt()
        r = Region(IndexSpace(8))
        p = equal_partition(r.ispace, 2)
        rt.place(r, p)
        rt.index_launch("a", [0, 1], lambda c: Work(1e6, 1e6),
                        [RegionReq(r, p, Privilege.READ_ONLY)])
        t1 = rt.simulated_seconds()
        rt.index_launch("b", [0, 1], lambda c: Work(1e6, 1e6),
                        [RegionReq(r, p, Privilege.READ_ONLY)])
        assert rt.simulated_seconds() > t1 > 0

    def test_reset_metrics(self):
        rt = make_rt()
        rt.index_launch("a", [0], lambda c: Work(1, 1), [])
        old = rt.reset_metrics()
        assert len(old.steps) == 1
        assert len(rt.metrics.steps) == 0

    def test_load_imbalance_measure(self):
        rt = make_rt()
        works = {0: Work(4e6, 0), 1: Work(1e6, 0)}
        step = rt.index_launch("a", [0, 1], lambda c: works[c], [])
        assert step.load_imbalance() == pytest.approx(4 / 2.5)
