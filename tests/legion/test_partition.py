"""Unit tests for partitions and colorings."""
import numpy as np
import pytest

from repro.legion import (
    ArraySubset,
    Coloring,
    IndexSpace,
    Partition,
    Rect,
    RectSubset,
    equal_partition,
    equal_partition_nd,
)


class TestColoring:
    def test_set_get(self):
        c = Coloring()
        c[0] = (0, 4)
        c[1] = (5, 9)
        assert c[0] == (0, 4)
        assert len(c) == 2
        assert c.colors() == [0, 1]


class TestEqualPartition:
    def test_exact_division(self):
        p = equal_partition(IndexSpace(8), 4)
        assert [p[c].volume for c in range(4)] == [2, 2, 2, 2]
        assert p.is_disjoint() and p.is_complete()

    def test_uneven_division_matches_fig9b(self):
        # chunk = ceil(n/pieces); trailing colors may be short or empty
        p = equal_partition(IndexSpace(10), 4)
        assert [p[c].volume for c in range(4)] == [3, 3, 3, 1]
        p2 = equal_partition(IndexSpace(4), 3)
        assert [p2[c].volume for c in range(3)] == [2, 2, 0]

    def test_more_pieces_than_elements(self):
        p = equal_partition(IndexSpace(2), 5)
        vols = [p[c].volume for c in range(5)]
        assert sum(vols) == 2
        assert p.is_complete()

    def test_nd(self):
        p = equal_partition_nd(IndexSpace((4, 6)), (2, 3))
        assert p.n_colors == 6
        assert all(s.volume == 4 for _, s in p.items())
        assert p.is_disjoint() and p.is_complete()


class TestPartitionProperties:
    def test_overlapping_not_disjoint(self):
        isp = IndexSpace(10)
        p = Partition(isp, {0: RectSubset(Rect(0, 5)), 1: RectSubset(Rect(5, 9))})
        assert not p.is_disjoint()
        assert p.is_complete()

    def test_incomplete(self):
        isp = IndexSpace(10)
        p = Partition(isp, {0: RectSubset(Rect(0, 3))})
        assert not p.is_complete()

    def test_array_subset_disjointness(self):
        isp = IndexSpace(10)
        p = Partition(
            isp,
            {0: ArraySubset(np.array([0, 2, 4])), 1: ArraySubset(np.array([1, 3]))},
        )
        assert p.is_disjoint()
        p2 = Partition(
            isp,
            {0: ArraySubset(np.array([0, 2])), 1: ArraySubset(np.array([2, 3]))},
        )
        assert not p2.is_disjoint()

    def test_color_of_point(self):
        isp = IndexSpace(10)
        p = Partition(isp, {0: RectSubset(Rect(0, 5)), 1: RectSubset(Rect(4, 9))})
        assert p.color_of_point(4) == [0, 1]
        assert p.color_of_point(9) == [1]

    def test_missing_color_is_empty(self):
        p = equal_partition(IndexSpace(4), 2)
        assert p[99].empty

    def test_volumes(self):
        p = equal_partition(IndexSpace(9), 3)
        assert p.volumes() == {0: 3, 1: 3, 2: 3}

    def test_compose_intersection(self):
        isp = IndexSpace(10)
        a = Partition(isp, {0: RectSubset(Rect(0, 6)), 1: RectSubset(Rect(7, 9))})
        b = Partition(isp, {0: RectSubset(Rect(4, 9)), 1: RectSubset(Rect(0, 9))})
        both = a.compose_intersection(b)
        assert both[0].volume == 3  # [4,6]
        assert both[1].volume == 3  # [7,9]

    def test_scale_dense_rect(self):
        p = equal_partition(IndexSpace(4), 2)
        scaled = p.scale_dense(3)
        assert scaled[0].volume == 6
        assert scaled[0].indices().tolist() == [0, 1, 2, 3, 4, 5]

    def test_scale_dense_array(self):
        isp = IndexSpace(4)
        p = Partition(isp, {0: ArraySubset(np.array([0, 2]))})
        scaled = p.scale_dense(2)
        assert scaled[0].indices().tolist() == [0, 1, 4, 5]
