"""Dataset generator tests: determinism, structure, suite coverage."""
import numpy as np
import pytest

from repro.data import SUITE_MATRICES, SUITE_TENSORS, load_matrix, load_tensor, table2
from repro.data.matrices import (
    banded,
    kmer_like,
    mycielskian,
    power_law,
    rmat,
    stencil_kkt,
    uniform_random,
)
from repro.data.tensors import freebase_like, frostt_like, patents_like


class TestMatrixGenerators:
    def test_banded_structure(self):
        m = banded(50, bandwidth=2)
        assert m.shape == (50, 50)
        coo = m.tocoo()
        assert np.all(np.abs(coo.row - coo.col) <= 2)
        # interior rows have the full 5 diagonals
        assert m[25].nnz == 5

    def test_banded_deterministic(self):
        a, b = banded(30, seed=1), banded(30, seed=1)
        assert np.allclose(a.toarray(), b.toarray())
        assert not np.allclose(a.toarray(), banded(30, seed=2).toarray())

    def test_power_law_skew(self):
        m = power_law(500, 15000, alpha=1.8, seed=0)
        deg = np.diff(m.indptr)
        assert deg.max() > 5 * deg.mean()  # hubs
        assert 0.5 * 15000 < m.nnz <= 15000 * 1.05

    def test_rmat_shape_power_of_two(self):
        m = rmat(8, edge_factor=8)
        assert m.shape == (256, 256)
        assert m.nnz > 0

    def test_kmer_low_degree(self):
        m = kmer_like(1000)
        deg = np.diff(m.indptr)
        assert deg.max() <= 4
        assert deg.mean() < 4

    def test_stencil_kkt_constant_degree_and_symmetric_block(self):
        m = stencil_kkt(5)
        deg = np.diff(m.indptr)[: 125]  # laplacian block rows
        assert deg.max() <= 9  # 7-point stencil + constraint coupling
        assert m.shape[0] == m.shape[1]

    def test_mycielskian_matches_networkx_size(self):
        m = mycielskian(5)
        # M2=K2 (2 nodes); each step: 2n+1 nodes
        assert m.shape[0] == 23
        assert (m != m.T).nnz == 0  # symmetric adjacency

    def test_uniform_density(self):
        m = uniform_random(200, 0.05, seed=3)
        assert abs(m.nnz / 200**2 - 0.05) < 0.01


class TestTensorGenerators:
    def test_frostt_like_shapes(self):
        coords, vals, shape = frostt_like((50, 40, 30), 500, seed=1)
        assert shape == (50, 40, 30)
        for c, s in zip(coords, shape):
            assert c.min() >= 0 and c.max() < s
        assert vals.size == len(coords[0])

    def test_freebase_like_skew(self):
        coords, vals, shape = freebase_like((400, 16, 400), 4000, seed=2)
        counts = np.bincount(coords[0], minlength=shape[0])
        assert counts.max() > 5 * max(counts.mean(), 1)

    def test_patents_like_dense_prefix(self):
        coords, vals, shape = patents_like((4, 50, 50), 3000, seed=3)
        # nearly all (i, j) pairs populated -> dense-prefix format justified
        pairs = len(set(zip(coords[0].tolist(), coords[1].tolist())))
        assert pairs > 0.8 * shape[0] * shape[1]

    def test_no_duplicate_coordinates(self):
        coords, vals, shape = frostt_like((30, 30, 30), 2000, seed=4)
        keys = coords[0] * 900 + coords[1] * 30 + coords[2]
        assert np.unique(keys).size == keys.size


class TestSuite:
    def test_table2_has_all_entries(self):
        rows = table2(scale=0.2)
        assert len(rows) == len(SUITE_MATRICES) + len(SUITE_TENSORS)
        assert all(nnz > 0 for _, _, nnz, _ in rows)

    @pytest.mark.parametrize("name", list(SUITE_MATRICES))
    def test_each_matrix_loads(self, name):
        m = load_matrix(name, scale=0.2)
        assert m.nnz > 0
        assert m.shape[0] > 1

    @pytest.mark.parametrize("name", list(SUITE_TENSORS))
    def test_each_tensor_loads(self, name):
        t = load_tensor(name, scale=0.2)
        assert t.nnz > 0
        assert t.order == 3
        assert t.format == SUITE_TENSORS[name].format

    def test_deterministic_given_seed(self):
        a = load_matrix("arabic-2005", 0.2, seed=7)
        b = load_matrix("arabic-2005", 0.2, seed=7)
        assert np.allclose(a.toarray(), b.toarray())

    def test_scale_changes_size(self):
        small = load_matrix("arabic-2005", 0.2).nnz
        large = load_matrix("arabic-2005", 0.5).nnz
        assert large > small
