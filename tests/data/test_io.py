"""Matrix Market / FROSTT I/O tests."""
import numpy as np
import pytest
import scipy.sparse as sp

from repro.data import read_matrix_market, read_tns, write_matrix_market, write_tns
from repro.taco import CSF3, CSR, Tensor

rng = np.random.default_rng(13)


class TestMatrixMarket:
    def test_roundtrip(self, tmp_path):
        m = sp.random(20, 15, density=0.2, random_state=rng, format="csr")
        path = tmp_path / "m.mtx"
        write_matrix_market(path, m)
        got = read_matrix_market(path)
        assert np.allclose(got.toarray(), m.toarray())

    def test_gzip_roundtrip(self, tmp_path):
        m = sp.random(10, 10, density=0.3, random_state=rng, format="csr")
        path = tmp_path / "m.mtx.gz"
        write_matrix_market(path, m)
        assert np.allclose(read_matrix_market(path).toarray(), m.toarray())

    def test_symmetric_mirrored(self, tmp_path):
        path = tmp_path / "s.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 3\n1 1 2.0\n2 1 5.0\n3 3 1.0\n"
        )
        got = read_matrix_market(path).toarray()
        assert got[0, 1] == 5.0 and got[1, 0] == 5.0
        assert got[0, 0] == 2.0  # diagonal not doubled

    def test_pattern_matrices_get_unit_values(self, tmp_path):
        path = tmp_path / "p.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n"
        )
        got = read_matrix_market(path).toarray()
        assert got[0, 0] == 1.0 and got[1, 1] == 1.0

    def test_rejects_non_mm(self, tmp_path):
        path = tmp_path / "x.mtx"
        path.write_text("garbage\n")
        with pytest.raises(ValueError):
            read_matrix_market(path)


class TestTns:
    def test_roundtrip(self, tmp_path):
        idx = [rng.integers(0, 8, 40) for _ in range(3)]
        T = Tensor.from_coo("T", idx, rng.random(40) + 0.5, (8, 8, 8), CSF3)
        path = tmp_path / "t.tns"
        write_tns(path, T)
        got = read_tns(path, shape=(8, 8, 8), format=CSF3)
        assert np.allclose(got.to_dense(), T.to_dense())

    def test_shape_inferred(self, tmp_path):
        path = tmp_path / "t.tns"
        path.write_text("1 1 1 2.0\n3 2 4 1.0\n")
        got = read_tns(path)
        assert got.shape == (3, 2, 4)

    def test_matrix_tns(self, tmp_path):
        path = tmp_path / "m.tns"
        path.write_text("1 2 5.0\n2 1 3.0\n")
        got = read_tns(path, format=CSR)
        assert got.to_dense()[0, 1] == 5.0

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "e.tns"
        path.write_text("")
        with pytest.raises(ValueError):
            read_tns(path)

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "c.tns"
        path.write_text("# header\n1 1 1.0\n")
        assert read_tns(path).nnz == 1
