"""Applying TDN statements to tensors: partitions, placement, balance."""
import numpy as np
import pytest
import scipy.sparse as sp

from repro.distal import distribute, parse_tdn, partition_for_tdn, place_tensor
from repro.errors import CompileError, FormatError
from repro.legion import Grid, Machine, Runtime
from repro.taco import CSF3, CSR, Tensor

rng = np.random.default_rng(5)


def skewed_matrix(n=64):
    """First row holds half the non-zeros — a worst case for row splits."""
    rows = np.concatenate([np.zeros(n, dtype=np.int64),
                           rng.integers(0, n, n)])
    cols = np.concatenate([np.arange(n), rng.integers(0, n, n)])
    return Tensor.from_coo("B", [rows, cols], np.ones(2 * n), (n, n), CSR)


class TestMatrixDistributions:
    def test_row_wise_fig4b(self):
        B = skewed_matrix()
        d = distribute(B, "B(x, y) -> M(x)", Machine.cpu(4))
        assert d.partition.vals_part.is_disjoint()
        total = sum(d.partition.vals_subset(c).volume for c in range(4))
        assert total == B.nnz

    def test_row_wise_imbalanced_on_skew(self):
        B = skewed_matrix()
        d = distribute(B, "B(x, y) -> M(x)", Machine.cpu(4))
        assert d.load_balance() > 1.5

    def test_fused_nonzero_fig5c_balances(self):
        B = skewed_matrix()
        d = distribute(B, "B(x, y) [x y -> f] -> M(~f)", Machine.cpu(4))
        assert d.load_balance() == pytest.approx(1.0, abs=0.05)

    def test_nonzero_of_row_dim_splits_rows_of_nonzeros(self):
        B = skewed_matrix()
        d = distribute(B, "B(~x, y) -> M(~x)", Machine.cpu(4)) if False else \
            distribute(B, "B(x, y) -> M(~x)", Machine.cpu(4))
        # ~x alone partitions the row *coordinates'* stored entries; for a
        # Dense row level that equals a universe partition
        assert sum(d.partition.vals_subset(c).volume for c in range(4)) == B.nnz

    def test_replication(self):
        c = Tensor.from_dense("c", rng.random(10))
        d = distribute(c, "c(x) -> M(y)", Machine.cpu(4))
        assert d.partition.replicated
        assert d.load_balance() == 1.0

    def test_dense_tiled_2d(self):
        D = Tensor.from_dense("D", rng.random((8, 8)))
        m = Machine(Grid(2, 2))
        d = distribute(D, "D(x, y) -> M(x, y)", m)
        vols = [d.partition.vals_subset(c).volume for c in d.partition.colors]
        assert vols == [16, 16, 16, 16]

    def test_order_mismatch_rejected(self):
        B = skewed_matrix()
        with pytest.raises(FormatError):
            distribute(B, "B(x) -> M(x)", Machine.cpu(2))

    def test_machine_rank_mismatch_rejected(self):
        B = skewed_matrix()
        with pytest.raises(FormatError):
            distribute(B, "B(x, y) -> M(x, y)", Machine.cpu(2))

    def test_two_sparse_dims_rejected(self):
        B = skewed_matrix()
        m = Machine(Grid(2, 2))
        with pytest.raises(CompileError):
            distribute(B, "B(x, y) -> M(x, y)", m)


class Test3TensorDistributions:
    """The three distributions discussed under Fig. 5: slices/tubes/values."""

    @pytest.fixture
    def T(self):
        idx = [rng.integers(0, 20, 400) for _ in range(3)]
        return Tensor.from_coo("T", idx, np.ones(400), (20, 20, 20), CSF3)

    def test_nonzero_values_best_balance(self, T):
        m = Machine.cpu(4)
        slices = distribute(T, "T(x,y,z) -> M(~x)", m).load_balance()
        tubes = distribute(T, "T(x,y,z) [x y -> f] -> M(~f)", m).load_balance()
        values = distribute(T, "T(x,y,z) [x y z -> f] -> M(~f)", m).load_balance()
        assert values <= tubes + 0.05
        assert values == pytest.approx(1.0, abs=0.02)

    def test_values_split_covers_everything(self, T):
        d = distribute(T, "T(x,y,z) [x y z -> f] -> M(~f)", Machine.cpu(4))
        assert sum(d.partition.vals_subset(c).volume for c in range(4)) == T.nnz


class TestPlacement:
    def test_place_tensor_marks_and_homes(self):
        B = skewed_matrix()
        m = Machine.cpu(4)
        rt = Runtime(m)
        d = place_tensor(B, parse_tdn("B(x, y) -> M(x)"), m, rt)
        assert getattr(B, "_placed_by_tdn", False)
        # homes registered for pos/crd/vals regions
        assert B.vals.uid in rt._home
        assert len(rt._home[B.vals.uid]) == 4

    def test_nbytes_per_piece(self):
        B = skewed_matrix()
        d = distribute(B, "B(x, y) -> M(x)", Machine.cpu(4))
        per = d.nbytes_per_piece()
        assert len(per) == 4
        assert all(v > 0 for v in per.values())
