"""Tensor distribution notation tests (paper §II-B, Figs. 4-5)."""
import pytest

from repro.distal import TDN, Distribution, MachineDimRef, nz, parse_tdn
from repro.errors import FormatError
from repro.taco import dist_vars


class TestParser:
    def test_row_wise(self):
        t = parse_tdn("B(x, y) -> M(x)")
        assert t.tensor_dims == ("x", "y")
        assert t.machine_dims == (MachineDimRef("x"),)
        assert t.matched_dims() == [(0, MachineDimRef("x"), [0])]

    def test_juxtaposed_letters(self):
        t = parse_tdn("T(xy) -> M(x)")
        assert t.tensor_dims == ("x", "y")

    def test_nonzero_vector_fig5b(self):
        t = parse_tdn("T(x) -> M(~x)")
        assert t.machine_dims[0].nonzero

    def test_fused_fig5c(self):
        t = parse_tdn("B(x, y) [x y -> f] -> M(~f)")
        assert t.fusions == {"f": ("x", "y")}
        assert t.modes_of("f") == [0, 1]

    def test_replication_fig4a_style(self):
        t = parse_tdn("c(x) -> M(y)")
        assert t.matched_dims() == []
        assert t.replication_dims() == [0]

    def test_2d_machine(self):
        t = parse_tdn("T(x, y) -> M(x, y)")
        assert len(t.machine_dims) == 2
        assert len(t.matched_dims()) == 2

    def test_three_way_fusion(self):
        t = parse_tdn("T(x,y,z) [x y z -> f] -> M(~f)")
        assert t.modes_of("f") == [0, 1, 2]

    def test_partial_fusion(self):
        t = parse_tdn("T(x,y,z) [x y -> f] -> M(~f)")
        assert t.modes_of("f") == [0, 1]

    def test_unparseable(self):
        with pytest.raises(FormatError):
            parse_tdn("not a tdn statement")

    def test_tilde_unknown_dim_rejected(self):
        with pytest.raises(FormatError):
            parse_tdn("B(x, y) -> M(~q)")

    def test_fusion_unknown_dim_rejected(self):
        with pytest.raises(FormatError):
            parse_tdn("B(x, y) [x q -> f] -> M(~f)")

    def test_repr_roundtrip(self):
        t = parse_tdn("B(x, y) [x y -> f] -> M(~f)")
        t2 = parse_tdn(repr(t).replace("T(", "B("))
        assert t2.fusions == t.fusions
        assert t2.machine_dims == t.machine_dims


class TestDistributionConstructor:
    def test_fig1_style(self):
        x, y = dist_vars("x y")
        t = Distribution([x, y], None, [x])
        assert t.tensor_dims == ("x", "y")
        assert t.matched_dims()[0][2] == [0]

    def test_nz_marker(self):
        x, = dist_vars("x")
        t = Distribution([x], None, [nz(x)])
        assert t.machine_dims[0].nonzero

    def test_fusion_kwarg(self):
        x, y, f = dist_vars("x y f")
        t = Distribution([x, y], None, [nz(f)], fuse={f: [x, y]})
        assert t.modes_of("f") == [0, 1]
