"""Session.autotune: search, decision replay, and warm-start persistence.

Three contracts:

* **selection** — on the paper's Figure-10/11 workload shapes the tuner
  picks the strategy the hand-written schedules use (rows for CPU SpMV /
  SpMM on balanced matrices, non-zeros for GPU SpMM on skewed ones), and
  the 2-D ``grid`` strategy wins a square-grid SpMM whose row stripes
  defeat the 1-D split (``repro.data.matrices.striped``);
* **replay** — the decision table drives every later ``execute``/``einsum``
  of the same statement family to the winning strategy with zero search
  trials;
* **persistence** — winner decision + compiled kernel + mapping trace
  round-trip through the :class:`~repro.core.store_index.ArtifactStore`,
  and a fresh process (simulated with ``clear_caches`` + reload, the
  ``tests/bench/test_mmap_drivers.py`` pattern) warm-starts straight to
  the winning strategy: zero trials, kernel-cache hit, trace replay.
"""
import numpy as np
import pytest
import scipy.sparse as sp

import repro
from repro.api.session import AutotuneResult
from repro.core import cache as _cache
from repro.core import clear_caches
from repro.data.matrices import striped, uniform_random
from repro.data.suite import load_matrix


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


def _spmv(s, M, seed=1):
    B = s.tensor("B", M, repro.CSR)
    c = s.tensor("c", np.random.default_rng(seed).random(M.shape[1]))
    a = s.zeros("a", (M.shape[0],))
    i, j = repro.index_vars("i j")
    a[i] = B[i, j] * c[j]
    return a, B, c


def _spmm(s, M, k=32, seed=1):
    B = s.tensor("B", M, repro.CSR)
    C = s.tensor("C", np.random.default_rng(seed).random((M.shape[1], k)))
    out = s.zeros("A", (M.shape[0], k))
    i, kk, j = repro.index_vars("i k j")
    out[i, j] = B[i, kk] * C[kk, j]
    return out, B, C


class TestStrategySelection:
    def test_fig10_cpu_spmv_and_spmm_pick_rows(self):
        """Fig. 10's CPU schedules are row-based; the tuner agrees on the
        balanced Table-II stand-ins (web graph for SpMV, the near-uniform
        k-mer graph for SpMM)."""
        M = load_matrix("arabic-2005", 0.2)
        with repro.session(nodes=4) as s:
            a, *_ = _spmv(s, M)
            r = s.autotune(a, trials=1)
            assert r.strategy == "rows"
            assert not r.from_cache and r.trials_run >= 2  # searched
        clear_caches()
        with repro.session(nodes=4) as s:
            out, *_ = _spmm(s, load_matrix("kmer_A2a", 0.2))
            r = s.autotune(out, trials=1)
            assert r.strategy == "rows"
            tried = {c.strategy for c in r.candidates}
            assert tried == {"rows", "nonzeros", "grid"}

    def test_fig11_gpu_spmm_picks_nonzeros_spmv_rows(self):
        """Fig. 11's GPU SpMM schedule is non-zero based (skew-driven);
        SpMV stays row-based on both processor kinds (paper §VI-A)."""
        M = load_matrix("twitter7", 0.2)
        with repro.session(gpus=4) as s:
            out, *_ = _spmm(s, M)
            r = s.autotune(out, trials=1)
            assert r.strategy == "nonzeros"
        clear_caches()
        with repro.session(gpus=4) as s:
            a, *_ = _spmv(s, M)
            r = s.autotune(a, trials=1)
            assert r.strategy == "rows"

    def test_grid_wins_striped_square_spmm(self):
        """Alternating heavy/light row stripes: the 1-D row split is
        imbalanced at chunk granularity, the non-zero split pays its
        segment-reduction overhead for an imbalance a 2x2 grid fixes for
        free — the 2-D grid strategy must win."""
        M = striped(2000, 30000, heavy_frac=0.9, seed=9)
        with repro.session(nodes=4) as s:
            out, B, C = _spmm(s, M, k=32)
            r = s.autotune(out, trials=2)
            assert r.strategy == "grid"
            by = {c.strategy: c.simulated_seconds for c in r.candidates}
            assert by["grid"] < by["rows"] and by["grid"] < by["nonzeros"]
            # the winner kernel is the 2-D launch and computes the truth
            assert r.kernel.strategy == "grid"
            assert np.allclose(out.dense_array(), M @ C.dense_array())

    def test_losing_oom_candidate_does_not_win(self):
        """A candidate that OOMs is recorded as DNC and never selected."""
        M = uniform_random(400, 0.02, seed=3)
        with repro.session(nodes=4) as s:
            a, *_ = _spmv(s, M)
            r = s.autotune(a, trials=1)
            assert all(np.isfinite(c.simulated_seconds) or c.oom
                       for c in r.candidates)
            winner = next(c for c in r.candidates if c.strategy == r.strategy)
            assert winner.ok


class TestDecisionReplay:
    def test_second_autotune_is_zero_trials(self):
        M = uniform_random(600, 0.02, seed=4)
        with repro.session(nodes=4) as s:
            a, *_ = _spmv(s, M)
            r1 = s.autotune(a, trials=2)
            r2 = s.autotune(a)
            assert r2.from_cache and r2.trials_run == 0
            assert r2.strategy == r1.strategy
            assert r2.kernel is r1.kernel  # the cached winner
            r3 = s.autotune(a, force=True)  # explicit re-search
            assert not r3.from_cache and r3.trials_run > 0

    def test_restricted_pool_bypasses_cached_decision(self):
        """strategies= must be honored even when the decision table holds
        a winner outside the requested pool — and the constrained search
        must not overwrite the full-pool family decision."""
        M = uniform_random(500, 0.02, seed=4)
        with repro.session(nodes=4) as s:
            a, *_ = _spmv(s, M)
            r1 = s.autotune(a, trials=1)
            r2 = s.autotune(a, strategies=["nonzeros"], trials=1)
            assert r2.strategy == "nonzeros" and not r2.from_cache
            decision = _cache.lookup_decision(r1.decision_key)
            assert decision["strategy"] == r1.strategy
            r3 = s.autotune(a)
            assert r3.from_cache and r3.strategy == r1.strategy

    def test_restricted_probe_on_fresh_session_records_no_policy(self):
        """strategies= is a one-off measurement: on an untuned session it
        must not seed the decision table, so plain executes keep the
        paper's static default."""
        M = uniform_random(500, 0.02, seed=4)
        with repro.session(nodes=4) as s:
            a, *_ = _spmv(s, M)
            r = s.autotune(a, strategies=["nonzeros"], trials=1)
            assert r.strategy == "nonzeros"
            assert _cache.cache_stats()["decision_entries"] == 0
            assert s.compile_kernel(a.assignment).strategy == "rows"

    def test_tuned_grid_never_breaks_pieces_override(self):
        """A recorded 'grid' decision must not turn a previously valid
        non-square pieces= call into a ScheduleError — schedule_for falls
        back to the static default synthesis."""
        M = striped(1500, 20_000, heavy_frac=0.9, seed=2)
        with repro.session(nodes=4) as s:
            out, *_ = _spmm(s, M, k=16)
            assert s.autotune(out, trials=1).strategy == "grid"
            sched = s.schedule_for(out.assignment, pieces=6)
            assert sched.distributed  # built, not raised

    def test_cached_autotune_still_warms_session_runtime(self):
        """The warm contract holds on the from-cache path: the winner
        executes once on the session runtime and last_result is set."""
        M = uniform_random(400, 0.02, seed=6)
        with repro.session(nodes=4) as s:
            a, *_ = _spmv(s, M)
            s.autotune(a, trials=1)
            s.last_result = None
            r = s.autotune(a)
            assert r.from_cache and s.last_result is not None
            r2 = s.autotune(a, warm=False)
            assert r2.from_cache

    def test_skew_bucket_separates_pattern_families(self):
        """The decision key must distinguish a hub-row matrix from a
        uniform one of the same shape/nnz (the statistic that drives the
        rows-vs-nonzeros choice), even when nnz <= nrows."""
        import scipy.sparse as ssp

        n = 1000
        hub = ssp.csr_matrix(
            (np.ones(50), (np.zeros(50, int), np.arange(50))), shape=(n, n)
        )
        uni = ssp.random(n, n, density=50 / (n * n), format="csr",
                         random_state=np.random.default_rng(0))
        th = repro.Tensor.from_scipy("B", hub, repro.CSR)
        tu = repro.Tensor.from_scipy("B", uni, repro.CSR)
        assert _cache._pattern_stats(th)[-1] > _cache._pattern_stats(tu)[-1]

    def test_execute_replays_winning_strategy_and_trace(self):
        M = striped(1500, 20000, heavy_frac=0.9, seed=2)
        with repro.session(nodes=4) as s:
            out, B, C = _spmm(s, M)
            r = s.autotune(out, trials=1)
            assert r.strategy == "grid"
            # plain execute goes through the decision table: same kernel,
            # and the warm-up trace recorded by autotune replays
            hits0 = s.stats()["trace_hits"]
            ck = s.compile_kernel(out.assignment)
            assert ck is r.kernel
            s.execute(out)
            assert s.stats()["trace_hits"] > hits0

    def test_einsum_autotune_records_then_replays(self):
        M = uniform_random(500, 0.02, seed=5)
        with repro.session(nodes=4) as s:
            B = s.tensor("B", M, repro.CSR)
            c = s.tensor("c", np.random.default_rng(6).random(500))
            a1 = repro.einsum("ij,j->i", B, c, session=s, autotune=True,
                              trials=1)
            assert np.allclose(a1.vals.data, M @ c.dense_array())
            assert _cache.cache_stats()["decision_entries"] == 1
            hits0 = _cache.cache_stats()["decision_hits"]
            a2 = repro.einsum("ij,j->i", B, c, session=s)
            assert np.allclose(a2.vals.data, M @ c.dense_array())
            assert _cache.cache_stats()["decision_hits"] > hits0

    def test_program_autotune_tunes_each_statement(self):
        M = uniform_random(400, 0.02, seed=7)
        with repro.session(nodes=4) as s:
            a, B, c = _spmv(s, M)
            y = s.zeros("y", (400,))
            i2, j2 = repro.index_vars("i2 j2")
            with s.program() as p:
                y[i2] = B[i2, j2] * c[j2]
            p.define(a.assignment)
            results = s.autotune(p, trials=1)
            assert len(results) == 2
            assert all(isinstance(r, AutotuneResult) for r in results)


class TestPersistenceRoundTrip:
    """Winner decision + trace saved through ArtifactStore; a fresh
    process warm-starts to the winning strategy with zero search trials."""

    def _workload(self, s):
        M = striped(1600, 22000, heavy_frac=0.9, seed=11)
        return _spmm(s, M, k=16)

    def test_warm_start_replays_decision_with_zero_trials(self, tmp_path):
        from repro.core.store_index import ArtifactStore

        store_dir = tmp_path / "store"
        with repro.session(nodes=4, store=store_dir) as s:
            out, B, C = self._workload(s)
            r = s.autotune(out, trials=2)
            assert r.strategy == "grid" and not r.from_cache
            s.execute(out)  # a steady-state pass on the session runtime
            s.put(B, keys=["autotune:spmm"])

        # --- the "fresh process" (mmap-drivers pattern) ------------------
        clear_caches()
        store = ArtifactStore(store_dir)
        art = store.load("autotune:spmm")
        assert art.manifest["decision_entries"] >= 1
        B2 = art.tensor
        C2, out2 = art.companions["C"], art.companions["A"]
        rt = art.runtime()
        assert rt is not None
        with repro.session(runtime=rt) as s:
            # rebuild the statement the way a fresh solver process would
            i, k, j = repro.index_vars("i k j")
            out2[i, j] = B2[i, k] * C2[k, j]
            stats0 = _cache.cache_stats()
            r2 = s.autotune(out2)
            # zero search trials: the decision table answered
            assert r2.from_cache and r2.trials_run == 0
            assert r2.strategy == "grid"
            # the compile was a kernel-cache hit (no recompilation)
            stats1 = _cache.cache_stats()
            assert stats1["kernel_hits"] > stats0["kernel_hits"]
            # first execute replays the stored mapping trace: no re-record
            records0 = rt.trace_records
            res = s.execute(out2)
            assert rt.trace_records == records0
            assert rt.trace_hits >= 1
            assert np.allclose(
                out2.dense_array(),
                B2.to_dense() @ C2.dense_array(),
            )
            assert res.simulated_seconds > 0.0

    def test_decision_table_travels_through_save_packed(self, tmp_path):
        from repro.core.store import load_packed, save_packed

        with repro.session(nodes=2) as s:
            a, B, c = _spmv(s, uniform_random(500, 0.02, seed=8))
            r = s.autotune(a, trials=1)
            key = r.decision_key
            assert _cache.lookup_decision(key) is not None
            save_packed(tmp_path / "art", B, runtime=s.runtime)
        clear_caches()
        assert _cache.lookup_decision(key) is None
        load_packed(tmp_path / "art")
        decision = _cache.lookup_decision(key)
        assert decision is not None and decision["strategy"] == r.strategy


class TestPrunedSearch:
    """``autotune(prune=True)``: the static cost model stands in for trials.

    The planner's differential oracle (``tests/analysis/test_commplan_oracle.py``)
    proves predictions equal simulated metrics exactly for the specialized
    kernels, so the pruned search must select the same winner as the
    exhaustive one while executing strictly fewer scratch trials.
    """

    def test_same_winner_strictly_fewer_trials(self):
        M = load_matrix("kmer_A2a", 0.2)
        with repro.session(nodes=4) as s:
            out, *_ = _spmm(s, M)
            exhaustive = s.autotune(out, trials=1, force=True, warm=False)
        clear_caches()
        with repro.session(nodes=4) as s:
            out, *_ = _spmm(s, M)
            pruned = s.autotune(out, trials=1, force=True, warm=False,
                                prune=True)
        assert pruned.strategy == exhaustive.strategy
        assert pruned.pruned and not exhaustive.pruned
        assert 0 < pruned.trials_run < exhaustive.trials_run
        # every candidate carries its prediction; only the winner measured
        by = {c.strategy: c for c in pruned.candidates}
        assert all(c.predicted_seconds is not None
                   for c in pruned.candidates)
        winner = by[pruned.strategy]
        assert not winner.pruned and winner.ok
        # the model is exact for specialized kernels: the measured winner's
        # isolated trial equals its prediction to the last bit
        assert winner.simulated_seconds == winner.predicted_seconds
        skipped = [c for c in pruned.candidates if c.pruned]
        assert skipped and all(np.isnan(c.simulated_seconds)
                               for c in skipped)

    def test_prune_selects_grid_where_exhaustive_does(self):
        M = striped(2000, 30000, heavy_frac=0.9, seed=9)
        with repro.session(nodes=4) as s:
            out, B, C = _spmm(s, M, k=32)
            r = s.autotune(out, trials=1, prune=True)
            assert r.strategy == "grid"
            # prediction ranked grid first: one candidate's trials only
            assert r.trials_run == 1
            assert np.allclose(out.dense_array(), M @ C.dense_array())

    def test_pruned_decision_records_predicted_vs_measured(self):
        with repro.session(nodes=4) as s:
            a, *_ = _spmv(s, uniform_random(600, 0.02, seed=5))
            r = s.autotune(a, trials=1, prune=True)
        decision = _cache.lookup_decision(r.decision_key)
        assert decision is not None and decision["pruned"] is True
        # the static ranking that stood in for the skipped trials is
        # auditable next to the measured winner
        assert set(decision["predicted"]) == {
            c.strategy for c in r.candidates
        }
        assert decision["candidates"][r.strategy] == r.simulated_seconds
        for c in r.candidates:
            if c.pruned:
                assert decision["candidates"][c.strategy] == "pruned"
        # drift visibility: predicted winner cost equals the measured one
        assert decision["predicted"][r.strategy] == r.simulated_seconds
