"""Auto-scheduler equivalence: synthesized == hand-written, bit for bit.

For each kernel of the paper's §VI-A family the auto-synthesized schedule
must produce *bit-identical values* and *identical simulated metrics* to
the hand-written schedule the examples and the benchmark harness use —
the auto-scheduler is a default, never a different algorithm.
"""
import numpy as np
import pytest
import scipy.sparse as sp

from repro.api import auto_schedule, auto_strategy
from repro.bench.models import default_config
from repro.core import clear_caches, compile_kernel
from repro.legion import Machine, Runtime
from repro.taco import CSF3, CSR, Tensor, index_vars

PIECES = 4


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


def _machine():
    cfg = default_config()
    return cfg.cpu_machine(PIECES), cfg.legion_network()


def _run(sched, machine, network):
    rt = Runtime(machine, network)
    ck = compile_kernel(sched, machine)
    ck.execute(rt)  # cold: placement + staging
    return ck.execute(rt)  # warm trial


def _assert_equivalent(build, hand_schedule, out_values):
    """Build two identical tensor sets; run hand vs auto; compare bits."""
    machine, network = _machine()
    tensors_hand = build()
    r_hand = _run(hand_schedule(machine, *tensors_hand), machine, network)
    clear_caches()
    tensors_auto = build()
    r_auto = _run(auto_schedule(tensors_auto[0], machine), machine, network)
    assert np.array_equal(out_values(tensors_auto[0]), out_values(tensors_hand[0]))
    assert r_auto.simulated_seconds == r_hand.simulated_seconds
    assert (r_auto.metrics.total_comm_bytes()
            == r_hand.metrics.total_comm_bytes())
    assert r_auto.metrics.total_tasks() == r_hand.metrics.total_tasks()


class TestSpMV:
    def test_matches_hand_rows_schedule(self):
        M = sp.random(400, 400, density=0.02, format="csr",
                      random_state=np.random.default_rng(1))
        x = np.random.default_rng(2).random(400)

        def build():
            B = Tensor.from_scipy("B", M, CSR)
            c = Tensor.from_dense("c", x)
            a = Tensor.zeros("a", (400,))
            i, j = index_vars("i j")
            a[i] = B[i, j] * c[j]
            return a, B, c

        def hand(machine, a, B, c):
            i, j = a.assignment.index_vars()
            io, ii = index_vars("io ii")
            return (a.schedule().divide(i, io, ii, machine.size)
                    .distribute(io).communicate([a, B, c], io)
                    .parallelize(ii))

        _assert_equivalent(build, hand, lambda a: a.vals.data)


class TestSpMM:
    def test_matches_hand_rows_schedule(self):
        M = sp.random(200, 150, density=0.03, format="csr",
                      random_state=np.random.default_rng(3))
        Cd = np.random.default_rng(4).random((150, 8))

        def build():
            B = Tensor.from_scipy("B", M, CSR)
            Ct = Tensor.from_dense("C", Cd)
            out = Tensor.zeros("A", (200, 8))
            i, k, j = index_vars("i k j")
            out[i, j] = B[i, k] * Ct[k, j]
            return out, B, Ct

        def hand(machine, out, B, Ct):
            i, j, k = out.assignment.index_vars()
            io, ii = index_vars("io ii")
            return (out.schedule().divide(i, io, ii, machine.size)
                    .distribute(io).communicate([out, B, Ct], io)
                    .parallelize(ii))

        _assert_equivalent(build, hand, lambda out: out.dense_array())


class TestSDDMM:
    def test_matches_hand_nonzeros_schedule(self):
        M = sp.random(120, 120, density=0.05, format="csr",
                      random_state=np.random.default_rng(5))
        Cd = np.random.default_rng(6).random((120, 6))
        Dd = np.random.default_rng(7).random((6, 120))

        def build():
            B = Tensor.from_scipy("B", M, CSR)
            Ct = Tensor.from_dense("C", Cd)
            Dt = Tensor.from_dense("D", Dd)
            out = Tensor.zeros("A", M.shape, CSR)
            i, j, k = index_vars("i j k")
            out[i, j] = B[i, j] * Ct[i, k] * Dt[k, j]
            return out, B, Ct, Dt

        def hand(machine, out, B, Ct, Dt):
            i, j, k = out.assignment.index_vars()
            f, fp, fo, fi = index_vars("f fp fo fi")
            return (out.schedule().fuse(i, j, f)
                    .pos(f, fp, B[i, j])
                    .divide(fp, fo, fi, machine.size).distribute(fo)
                    .communicate([out, B, Ct, Dt], fo))

        _assert_equivalent(build, hand, lambda out: out.vals.data)

    def test_auto_strategy_is_nonzeros(self):
        machine, _ = _machine()
        out, *_ = self._tiny()
        assert auto_strategy(out.assignment, machine) == "nonzeros"

    @staticmethod
    def _tiny():
        M = sp.random(10, 10, density=0.3, format="csr",
                      random_state=np.random.default_rng(8))
        B = Tensor.from_scipy("B", M, CSR)
        Ct = Tensor.from_dense("C", np.random.rand(10, 2))
        Dt = Tensor.from_dense("D", np.random.rand(2, 10))
        out = Tensor.zeros("A", M.shape, CSR)
        i, j, k = index_vars("i j k")
        out[i, j] = B[i, j] * Ct[i, k] * Dt[k, j]
        return out, B, Ct, Dt


class TestMTTKRP:
    def test_matches_hand_rows_schedule(self):
        rng = np.random.default_rng(9)
        shape = (40, 30, 20)
        nnz = 500
        idx = [rng.integers(0, s, nnz) for s in shape]
        v = rng.random(nnz) + 0.5
        Cd = rng.random((30, 5))
        Dd = rng.random((20, 5))

        def build():
            T = Tensor.from_coo("T", idx, v, shape, CSF3)
            C = Tensor.from_dense("C", Cd)
            D = Tensor.from_dense("D", Dd)
            A = Tensor.zeros("A", (40, 5))
            i, j, k, l = index_vars("i j k l")
            A[i, l] = T[i, j, k] * C[j, l] * D[k, l]
            return A, T, C, D

        def hand(machine, A, T, C, D):
            i, l, j, k = A.assignment.index_vars()
            io, ii = index_vars("io ii")
            return (A.schedule().divide(i, io, ii, machine.size)
                    .distribute(io).communicate([A, T, C, D], io)
                    .parallelize(ii))

        _assert_equivalent(build, hand, lambda A: A.dense_array())


class TestStrategySelection:
    def test_gpu_machines_nonzero_split_where_the_paper_does(self):
        gpu = Machine.gpu(4)
        cpu = Machine.cpu(4)
        M = sp.random(50, 50, density=0.1, format="csr",
                      random_state=np.random.default_rng(10))
        B = Tensor.from_scipy("B", M, CSR)
        Ct = Tensor.from_dense("C", np.random.rand(50, 4))
        out = Tensor.zeros("A", (50, 4))
        i, k, j = index_vars("i k j")
        out[i, j] = B[i, k] * Ct[k, j]
        assert auto_strategy(out.assignment, cpu) == "rows"
        assert auto_strategy(out.assignment, gpu) == "nonzeros"

        c = Tensor.from_dense("c", np.random.rand(50))
        a = Tensor.zeros("a", (50,))
        a[i] = B[i, j] * c[j]
        # SpMV stays row-based on both processor kinds (paper §VI-A).
        assert auto_strategy(a.assignment, gpu) == "rows"

    def test_explicit_nonzeros_without_sparse_operand_raises(self):
        from repro.errors import ScheduleError

        machine, network = _machine()
        X = Tensor.from_dense("X", np.random.rand(12, 6))
        y = Tensor.from_dense("y", np.random.rand(6))
        z = Tensor.zeros("z", (12,))
        i, j = index_vars("i j")
        z[i] = X[i, j] * y[j]
        with pytest.raises(ScheduleError, match="compressed operand"):
            auto_schedule(z, machine, strategy="nonzeros")
        # The auto-derived path stays valid: dense statements row-split.
        sched = auto_schedule(z, machine)
        assert sched.distributed
        _run(sched, machine, network)
        assert np.allclose(z.vals.data, X.dense_array() @ y.dense_array())
