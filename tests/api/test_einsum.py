"""repro.einsum: the NumPy-style entry point over the SpDISTAL pipeline.

Acceptance property: an auto-scheduled ``einsum`` SpMV matches the
hand-scheduled kernel bit-identically in values and simulated metrics.
"""
import numpy as np
import pytest
import scipy.sparse as sp

import repro
from repro.core import clear_caches, compile_kernel
from repro.bench.models import default_config
from repro.legion import Runtime
from repro.taco import Tensor, index_vars


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestSpMVAcceptance:
    def test_einsum_spmv_matches_hand_scheduled_bit_identically(self):
        cfg = default_config()
        machine = cfg.cpu_machine(4)
        network = cfg.legion_network()
        M = sp.random(300, 300, density=0.02, format="csr",
                      random_state=np.random.default_rng(0))
        x = np.random.default_rng(1).random(300)

        # Hand-scheduled reference (the paper's row-based SpMV).
        B = Tensor.from_scipy("B", M, repro.CSR)
        c = Tensor.from_dense("c", x)
        a = Tensor.zeros("a", (300,))
        i, j, io, ii = index_vars("i j io ii")
        a[i] = B[i, j] * c[j]
        sched = (a.schedule().divide(i, io, ii, machine.size).distribute(io)
                 .communicate([a, B, c], io).parallelize(ii))
        rt = Runtime(machine, network)
        hand = compile_kernel(sched, machine).execute(rt)

        # Auto-scheduled einsum over fresh tensors on an equivalent session.
        clear_caches()
        with repro.session(machine=machine, network=network) as s:
            out = repro.einsum("ij,j->i", s.tensor("B2", M, repro.CSR),
                               s.tensor("c2", x), session=s)
            auto = s.last_result

        assert np.array_equal(out.vals.data, a.vals.data)
        assert auto.simulated_seconds == hand.simulated_seconds
        assert (auto.metrics.total_comm_bytes()
                == hand.metrics.total_comm_bytes())


class TestSemantics:
    def test_matmul(self):
        A = np.random.default_rng(2).random((6, 4))
        Bm = np.random.default_rng(3).random((4, 5))
        with repro.session(nodes=2) as s:
            out = repro.einsum("ik,kj->ij", A, Bm, session=s)
        assert np.allclose(out.dense_array(), A @ Bm)

    def test_implicit_output_follows_numpy_convention(self):
        A = np.random.default_rng(4).random((3, 4))
        v = np.random.default_rng(5).random(4)
        with repro.session() as s:
            out = repro.einsum("ij,j", A, v, session=s)  # -> "i"
        assert out.shape == (3,)
        assert np.allclose(out.vals.data, A @ v)

    def test_mttkrp_subscripts(self):
        rng = np.random.default_rng(6)
        T = rng.random((5, 4, 3)) * (rng.random((5, 4, 3)) < 0.5)
        C = rng.random((4, 2))
        D = rng.random((3, 2))
        with repro.session(nodes=2) as s:
            Tt = Tensor.from_dense("T", T, repro.CSF3)
            out = repro.einsum("ijk,jr,kr->ir", Tt, C, D, session=s)
        assert np.allclose(out.dense_array(),
                           np.einsum("ijk,jr,kr->ir", T, C, D))

    def test_out_tensor_is_used(self):
        M = sp.random(20, 20, density=0.2, format="csr",
                      random_state=np.random.default_rng(7))
        x = np.random.default_rng(8).random(20)
        with repro.session() as s:
            mine = Tensor.zeros("mine", (20,))
            got = repro.einsum("ij,j->i", M, x, session=s, out=mine)
        assert got is mine
        assert np.allclose(mine.vals.data, M @ x)

    def test_schedule_builder_override(self):
        M = sp.random(30, 30, density=0.2, format="csr",
                      random_state=np.random.default_rng(9))
        x = np.random.default_rng(10).random(30)

        def nonzeros(asg):
            from repro.taco import Schedule

            i, j = asg.index_vars()
            f, fp, fo, fi = index_vars("f fp fo fi")
            B = asg.rhs.accesses()[0]
            return (Schedule(asg).fuse(i, j, f).pos(f, fp, B)
                    .divide(fp, fo, fi, 2).distribute(fo))

        with repro.session(nodes=2) as s:
            out = repro.einsum("ij,j->i", s.tensor("B", M, repro.CSR), x,
                               session=s, schedule=nonzeros)
        assert np.allclose(out.vals.data, M @ x)

    def test_implicit_session_works(self):
        v = np.arange(4.0)
        Mx = np.eye(4)
        out = repro.einsum("ij,j->i", Mx, v)
        assert np.allclose(out.vals.data, v)


class TestSpecErrors:
    def test_operand_count_mismatch(self):
        with pytest.raises(ValueError, match="names 2 operands"):
            repro.einsum("ij,j->i", np.eye(2))

    def test_diagonal_rejected(self):
        with pytest.raises(ValueError, match="diagonals"):
            repro.einsum("ii->i", np.eye(2))

    def test_ellipsis_rejected(self):
        with pytest.raises(ValueError, match="ellipses"):
            repro.einsum("...i->i", np.eye(2))

    def test_unknown_output_subscript(self):
        with pytest.raises(ValueError, match="never appear"):
            repro.einsum("ij->k", np.eye(2))

    def test_full_reduction_rejected(self):
        with pytest.raises(ValueError, match="full reductions"):
            repro.einsum("ij->", np.eye(2))

    def test_inconsistent_extents(self):
        with pytest.raises(ValueError, match="inconsistent extents"):
            repro.einsum("ij,j->i", np.ones((2, 3)), np.ones(4))

    def test_order_mismatch(self):
        with pytest.raises(ValueError, match="order"):
            repro.einsum("ijk,j->i", np.ones((2, 3)), np.ones(3))

    def test_out_shape_mismatch(self):
        with pytest.raises(ValueError, match="does not match"):
            repro.einsum("ij,j->i", np.ones((2, 3)), np.ones(3),
                         out=Tensor.zeros("o", (5,)))
