"""einsum satellite fixes: content-keyed packing, additive specs, the
implicit-session lock.

Regression: ``einsum`` used to pack ``op{k}`` tensors fresh on every call,
so the identity-keyed kernel cache missed on repeated identical calls and
recompiled everything.  Operands are now packed through the session's
content-keyed memo — a second identical call compiles zero new kernels.
"""
import importlib
import threading

import numpy as np
import pytest
import scipy.sparse as sp

import repro

# ``repro.api`` re-exports the einsum *function* under the same name, so
# the module must be resolved explicitly.
einsum_mod = importlib.import_module("repro.api.einsum")
from repro.core import clear_caches
from repro.core.cache import cache_stats


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestPackingMemo:
    def test_second_identical_call_compiles_zero_kernels(self):
        M = sp.random(60, 60, density=0.05, format="csr",
                      random_state=np.random.default_rng(0))
        x = np.random.default_rng(1).random(60)
        with repro.session(nodes=2) as s:
            r1 = repro.einsum("ij,j->i", M, x, session=s)
            after_first = cache_stats()
            r2 = repro.einsum("ij,j->i", M, x, session=s)
            after_second = cache_stats()
        # The kernel cache saw no new compile, only a hit.
        assert after_second["kernel_misses"] == after_first["kernel_misses"]
        assert after_second["kernel_hits"] > after_first["kernel_hits"]
        # The memo returns the same output object, with the same values.
        assert r2 is r1
        assert np.array_equal(r1.vals.data, M @ x)

    def test_equal_content_in_fresh_arrays_still_hits(self):
        M = sp.random(40, 40, density=0.08, format="csr",
                      random_state=np.random.default_rng(2))
        x = np.random.default_rng(3).random(40)
        with repro.session(nodes=2) as s:
            repro.einsum("ij,j->i", M.copy(), x.copy(), session=s)
            after_first = cache_stats()
            repro.einsum("ij,j->i", M.copy(), x.copy(), session=s)
            after_second = cache_stats()
        assert after_second["kernel_misses"] == after_first["kernel_misses"]
        assert after_second["kernel_hits"] > after_first["kernel_hits"]

    def test_different_content_is_not_conflated(self):
        M = sp.random(30, 30, density=0.1, format="csr",
                      random_state=np.random.default_rng(4))
        rng = np.random.default_rng(5)
        x1, x2 = rng.random(30), rng.random(30)
        with repro.session(nodes=2) as s:
            r1 = repro.einsum("ij,j->i", M, x1, session=s)
            v1 = r1.vals.data.copy()
            r2 = repro.einsum("ij,j->i", M, x2, session=s)
        assert np.array_equal(v1, M @ x1)
        assert np.array_equal(r2.vals.data, M @ x2)

    def test_packed_tensor_operands_bypass_the_memo(self):
        # An explicitly packed Tensor is used as-is (its identity is the
        # caller's concern), exactly as before the memo existed.
        from repro.taco import Tensor

        M = sp.random(20, 20, density=0.1, format="csr",
                      random_state=np.random.default_rng(6))
        with repro.session(nodes=2) as s:
            B = s.tensor("B", M, repro.CSR)
            x = np.random.default_rng(7).random(20)
            r = repro.einsum("ij,j->i", B, x, session=s)
            assert isinstance(B, Tensor)
            assert np.allclose(r.vals.data, M @ x)


class TestAdditiveSpecs:
    def test_dense_elementwise_add(self):
        rng = np.random.default_rng(8)
        A, B = rng.random((5, 4)), rng.random((5, 4))
        with repro.session(nodes=2) as s:
            r = repro.einsum("ij+ij->ij", A, B, session=s)
        assert np.allclose(r.dense_array(), A + B)

    def test_implicit_output_of_additive_spec(self):
        rng = np.random.default_rng(9)
        A, B = rng.random(6), rng.random(6)
        with repro.session() as s:
            r = repro.einsum("i+i", A, B, session=s)
        assert r.shape == (6,)
        assert np.allclose(r.vals.data, A + B)

    def test_sparse_out_runs_spadd_assembly(self):
        from repro.taco import Tensor

        rng = np.random.default_rng(10)
        A = sp.random(25, 25, density=0.1, format="csr", random_state=rng)
        B = sp.random(25, 25, density=0.1, format="csr", random_state=rng)
        with repro.session(nodes=2) as s:
            At = s.tensor("A", A, repro.CSR)
            Bt = s.tensor("B", B, repro.CSR)
            out = Tensor.zeros("sum", (25, 25), repro.CSR)
            r = repro.einsum("ij+ij->ij", At, Bt, out=out, session=s)
        assert r is out
        assert np.allclose(out.to_dense(), (A + B).toarray())

    def test_mixed_separators_raise(self):
        with pytest.raises(ValueError, match="mixing"):
            repro.einsum("ij+ij,jk->ik", np.ones((2, 2)), np.ones((2, 2)),
                         np.ones((2, 2)))

    def test_mismatched_term_subscripts_raise(self):
        with pytest.raises(ValueError, match="identical subscripts"):
            repro.einsum("ij+ji->ij", np.ones((2, 2)), np.ones((2, 2)))

    def test_wrong_additive_output_raises(self):
        with pytest.raises(ValueError, match="additive output"):
            repro.einsum("ij+ij->ji", np.ones((2, 2)), np.ones((2, 2)))


class TestImplicitSessionLock:
    def test_racing_callers_agree_on_one_session(self, monkeypatch):
        monkeypatch.setattr(einsum_mod, "_implicit_session", None)
        barrier = threading.Barrier(8)
        got = []

        def grab():
            barrier.wait()
            got.append(einsum_mod._default_session())

        threads = [threading.Thread(target=grab) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(got) == 8
        assert all(s is got[0] for s in got)

    def test_lock_discipline_is_watched(self):
        import sys
        from pathlib import Path

        sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))
        try:
            import lock_check
        finally:
            sys.path.pop(0)
        assert "src/repro/api/einsum.py" in lock_check.WATCH
        rules = lock_check.WATCH["src/repro/api/einsum.py"]
        assert any("_implicit_session" in r.targets for r in rules)
