"""Lazy multi-statement programs: capture, compile-together, run-in-order.

The program-level acceptance property: statements sharing an operand have
its partitions derived *once* — the second statement's compile hits the
partition memo and reuses the very same ``TensorPartition`` object.
"""
import numpy as np
import pytest
import scipy.sparse as sp

import repro
from repro.core import cache as _cache
from repro.core import clear_caches


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


def _workload(s, n=300):
    M = sp.random(n, n, density=0.02, format="csr",
                  random_state=np.random.default_rng(0))
    B = s.tensor("B", M, repro.CSR)
    c = s.tensor("c", np.random.default_rng(1).random(n))
    x = s.tensor("x", np.random.default_rng(2).random(n))
    a = s.zeros("a", (n,))
    y = s.zeros("y", (n,))
    return M, B, c, x, a, y


class TestSharedOperandPartitions:
    def test_partition_memo_hits_for_shared_operand(self):
        """Two SpMVs over one matrix: the second statement's compile must
        hit the partition memo for B instead of re-deriving it."""
        with repro.session(nodes=4) as s:
            M, B, c, x, a, y = _workload(s)
            i, j, i2, j2 = repro.index_vars("i j i2 j2")
            a[i] = B[i, j] * c[j]
            y[i2] = B[i2, j2] * x[j2]

            before = _cache.cache_stats()
            prog = s.compile(a, y)
            after = _cache.cache_stats()

            # B is partitioned by statement 1 (a miss) and *hit* by
            # statement 2 — at least one memo hit, and the two kernels
            # share the identical partition object.
            assert after["partition_hits"] - before["partition_hits"] >= 1
            assert prog[0].parts[id(B)] is prog[1].parts[id(B)]

            res = prog.execute(s.runtime)
            assert np.allclose(a.vals.data, M @ c.dense_array())
            assert np.allclose(y.vals.data, M @ x.dense_array())
            assert len(res) == 2
            assert res.simulated_seconds == sum(
                r.simulated_seconds for r in res.results
            )

    def test_separate_compiles_also_share_via_memo(self):
        """compile_kernel is a one-statement program: two separate calls
        still share partitions through the process-wide memo."""
        with repro.session(nodes=4) as s:
            M, B, c, x, a, y = _workload(s)
            i, j, i2, j2 = repro.index_vars("i j i2 j2")
            a[i] = B[i, j] * c[j]
            ck1 = s.compile_kernel(a)
            y[i2] = B[i2, j2] * x[j2]
            before = _cache.cache_stats()["partition_hits"]
            ck2 = s.compile_kernel(y)
            assert _cache.cache_stats()["partition_hits"] - before >= 1
            assert ck1.parts[id(B)] is ck2.parts[id(B)]


class TestCaptureAndChaining:
    def test_with_block_captures_assignments_in_order(self):
        with repro.session(nodes=2) as s:
            M, B, c, x, a, y = _workload(s, n=100)
            i, j, i2, j2 = repro.index_vars("i j i2 j2")
            with s.program() as p:
                a[i] = B[i, j] * c[j]
                y[i2] = B[i2, j2] * x[j2]
            assert len(p) == 2
            assert p[0].output is a and p[1].output is y
            p.run()
            assert np.allclose(a.vals.data, M @ c.dense_array())

    def test_chained_statements_see_predecessor_outputs(self):
        """Statement 2 consumes statement 1's output: in-order execution
        on one runtime must propagate the fresh values."""
        with repro.session(nodes=2) as s:
            M, B, c, x, a, y = _workload(s, n=100)
            i, j, i2, j2 = repro.index_vars("i j i2 j2")
            with s.program() as p:
                a[i] = B[i, j] * c[j]
                y[i2] = B[i2, j2] * a[j2]   # reads a — B @ (B @ c)
            p.run()
            expected = M @ (M @ c.dense_array())
            assert np.allclose(y.vals.data, expected)

    def test_explicit_schedule_overrides_auto(self):
        with repro.session(nodes=3) as s:
            M, B, c, x, a, y = _workload(s, n=100)
            i, j = repro.index_vars("i j")
            a[i] = B[i, j] * c[j]
            f, fp, fo, fi = repro.index_vars("f fp fo fi")
            stmt = s.define(a)
            sched = (stmt.schedule().fuse(i, j, f).pos(f, fp, B[i, j])
                     .divide(fp, fo, fi, 3).distribute(fo)
                     .communicate([a, B, c], fo))
            res = s.run()
            assert np.allclose(a.vals.data, M @ c.dense_array())
            # the compiled kernel used the non-zero split we installed
            assert res[0].plan is not None
            assert stmt.explicit_schedule is sched

    def test_nested_programs_capture_innermost_only(self):
        with repro.session(nodes=2) as s:
            M, B, c, x, a, y = _workload(s, n=60)
            i, j, i2, j2 = repro.index_vars("i j i2 j2")
            with s.program() as outer:
                a[i] = B[i, j] * c[j]
                with s.program() as inner:
                    y[i2] = B[i2, j2] * x[j2]
            assert len(outer) == 1 and len(inner) == 1

    def test_empty_program_is_an_error(self):
        with repro.session() as s:
            with pytest.raises(ValueError, match="no statements"):
                s.program().compile()
            with pytest.raises(ValueError, match="no pending"):
                s.run()


class TestCommonSubexpressionReuse:
    """Repeated identical statements compile, partition AND execute once
    per pass — the program-level common-subexpression reuse."""

    def test_duplicate_statement_executes_once(self):
        with repro.session(nodes=4) as s:
            M, B, c, x, a, y = _workload(s)
            i, j = repro.index_vars("i j")
            a[i] = B[i, j] * c[j]
            prog = s.compile(a, a.assignment)
            # one CompiledKernel, shared (the kernel cache guarantees it)
            assert prog[0] is prog[1]
            assert prog.reused_from == [None, 0]
            res = prog.execute(s.runtime)
            assert len(res) == 2
            assert res[1].reused and not res[0].reused
            assert res.reused == 1
            assert res[1].simulated_seconds == 0.0
            assert res.simulated_seconds == res[0].simulated_seconds
            assert np.allclose(a.vals.data, M @ c.dense_array())

    def test_interleaved_write_blocks_reuse(self):
        """A statement that rewrites an operand between two occurrences
        makes the repeat a *different* value — it must re-execute."""
        with repro.session(nodes=4) as s:
            M, B, c, x, a, y = _workload(s)
            i, j, i2, j2 = repro.index_vars("i j i2 j2")
            a[i] = B[i, j] * c[j]
            first = a.assignment
            # c is rewritten from y's statement output shape — build a
            # statement writing c itself
            c2 = s.zeros("c2", c.shape)
            i3, j3 = repro.index_vars("i3 j3")
            c[i3] = B[i3, j3] * x[j3]  # writes c between the two a-statements
            middle = c.assignment
            prog = s.compile(first, middle, first)
            assert prog.reused_from == [None, None, None]
            res = prog.execute(s.runtime)
            assert res.reused == 0
            # the repeat saw the updated c
            assert np.allclose(a.vals.data, M @ (M @ x.dense_array()))

    def test_accumulate_never_reuses(self):
        from repro.taco.expr import Assignment

        with repro.session(nodes=2) as s:
            M, B, c, x, a, y = _workload(s, n=100)
            i, j = repro.index_vars("i j")
            a[i] = B[i, j] * c[j]
            acc = Assignment(a.assignment.lhs, a.assignment.rhs, accumulate=True)
            prog = s.compile(acc, acc)
            # ``+=`` changes the output on every execution — never skipped.
            assert prog.reused_from == [None, None]
            res = prog.execute(s.runtime)
            assert res.reused == 0
            assert all(r.simulated_seconds > 0.0 for r in res.results)

    def test_cse_disabled_executes_everything(self):
        with repro.session(nodes=2) as s:
            M, B, c, x, a, y = _workload(s, n=100)
            i, j = repro.index_vars("i j")
            a[i] = B[i, j] * c[j]
            prog = s.compile(a, a.assignment, cse=False)
            res = prog.execute(s.runtime)
            assert res.reused == 0
            assert res[1].simulated_seconds > 0.0
