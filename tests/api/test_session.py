"""Session: one context owning machine, runtime, budgets and the store."""
import numpy as np
import pytest
import scipy.sparse as sp

import repro
from repro.core import cache as _cache
from repro.core import clear_caches
from repro.legion import Machine, ProcKind


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestConstruction:
    def test_nodes_builds_cpu_machine(self):
        with repro.session(nodes=6) as s:
            assert s.machine.size == 6
            assert s.machine.kind == ProcKind.CPU
            assert s.runtime.machine is s.machine

    def test_gpus_builds_gpu_machine(self):
        with repro.session(gpus=4) as s:
            assert s.machine.size == 4
            assert s.machine.kind == ProcKind.GPU

    def test_explicit_machine_passes_through(self):
        m = Machine.cpu(3)
        with repro.session(machine=m) as s:
            assert s.machine is m

    def test_machine_and_nodes_conflict(self):
        with pytest.raises(ValueError, match="not both"):
            repro.session(machine=Machine.cpu(2), nodes=2)

    def test_adopts_existing_runtime(self):
        from repro.legion import Runtime

        rt = Runtime(Machine.cpu(3))
        with repro.session(runtime=rt) as s:
            assert s.runtime is rt
            assert s.machine is rt.machine
        with pytest.raises(ValueError, match="not both"):
            repro.session(machine=Machine.cpu(2), runtime=rt)
        # Options the adopted runtime already carries cannot be passed
        # alongside it — they would be silently ignored otherwise.
        with pytest.raises(ValueError, match="trace_replay"):
            repro.session(runtime=rt, trace_replay=False)
        with pytest.raises(ValueError, match="metrics_limit"):
            repro.session(runtime=rt, metrics_limit=5)

    def test_default_is_one_cpu_node(self):
        with repro.session() as s:
            assert s.machine.size == 1

    def test_cache_budgets_set_and_restored(self):
        before = _cache.cache_budgets()
        with repro.session(nodes=1, kernel_cache_bytes=1 << 20,
                           partition_cache_bytes=2 << 20):
            mid = _cache.cache_budgets()
            assert mid["kernel_bytes"] == 1 << 20
            assert mid["partition_bytes"] == 2 << 20
        assert _cache.cache_budgets() == before


class TestTensorSugar:
    def test_tensor_dispatches_on_type(self):
        with repro.session() as s:
            M = sp.eye(5).tocsr()
            B = s.tensor("B", M, repro.CSR)
            assert B.nnz == 5 and B.format is repro.CSR
            d = s.tensor("d", np.arange(4.0))
            assert d.shape == (4,)
            assert s.tensor("again", B) is B  # packed tensors pass through
            with pytest.raises(ValueError, match="repack"):
                s.tensor("B", B, repro.CSC)  # conflicting format: no silent no-op
            z = s.zeros("z", (3, 3), repro.CSR)
            assert z.nnz == 0

    def test_from_coo(self):
        with repro.session() as s:
            t = s.from_coo("t", [np.array([0, 1]), np.array([1, 0])],
                           np.array([2.0, 3.0]), (2, 2), repro.CSR)
            assert t.nnz == 2


class TestExecution:
    def test_execute_compiles_and_runs_on_session_runtime(self):
        with repro.session(nodes=2) as s:
            M = sp.random(50, 50, density=0.1, format="csr",
                          random_state=np.random.default_rng(0))
            B = s.tensor("B", M, repro.CSR)
            c = s.tensor("c", np.random.default_rng(1).random(50))
            a = s.zeros("a", (50,))
            i, j = repro.index_vars("i j")
            a[i] = B[i, j] * c[j]
            res = s.execute(a)
            assert np.allclose(a.vals.data, M @ c.dense_array())
            assert s.last_result is res

    def test_traces_accumulate_across_statements(self):
        with repro.session(nodes=2) as s:
            M = sp.random(60, 60, density=0.1, format="csr",
                          random_state=np.random.default_rng(2))
            B = s.tensor("B", M, repro.CSR)
            c = s.tensor("c", np.random.default_rng(3).random(60))
            a = s.zeros("a", (60,))
            i, j = repro.index_vars("i j")
            a[i] = B[i, j] * c[j]
            s.execute(a)
            hits0 = s.stats()["trace_hits"]
            s.execute(a)  # same statement: the mapping trace must replay
            assert s.stats()["trace_hits"] > hits0

    def test_stats_merges_cache_and_runtime_counters(self):
        with repro.session() as s:
            st = s.stats()
            for key in ("kernel_hits", "partition_hits", "trace_hits",
                        "trace_records"):
                assert key in st


class TestStore:
    def test_store_roundtrip_through_session(self, tmp_path):
        with repro.session(nodes=2, store=tmp_path / "store") as s:
            M = sp.random(40, 40, density=0.1, format="csr",
                          random_state=np.random.default_rng(4))
            B = s.tensor("B", M, repro.CSR)
            s.put(B, keys=["op:B"], include_caches=False)
            art = s.load("op:B")
            assert art.tensor.nnz == B.nnz
            assert s.store.verify() == []

    def test_no_store_is_a_clear_error(self):
        with repro.session() as s:
            with pytest.raises(ValueError, match="no artifact store"):
                s.put(s.zeros("z", (2,)))
