"""Baseline model tests: correctness and the behaviours the paper describes."""
import numpy as np
import pytest
import scipy.sparse as sp

from repro.baselines import CtfConfig, PetscConfig, TrilinosConfig, ctf, petsc, trilinos
from repro.errors import OOMError
from repro.legion import NodeSpec

rng = np.random.default_rng(9)


@pytest.fixture
def mats():
    A = sp.random(300, 300, density=0.05, random_state=rng, format="csr")
    B = sp.random(300, 300, density=0.04, random_state=rng, format="csr")
    C = sp.random(300, 300, density=0.04, random_state=rng, format="csr")
    return A, B, C


class TestPetsc:
    def test_spmv_correct(self, mats):
        A, _, _ = mats
        x = rng.random(300)
        r = petsc.spmv(A, x, PetscConfig(2))
        assert np.allclose(r.value, A @ x)
        assert r.seconds > 0

    def test_spmm_correct(self, mats):
        A, _, _ = mats
        C = rng.random((300, 8))
        r = petsc.spmm(A, C, PetscConfig(2))
        assert np.allclose(r.value, A @ C)

    def test_spadd3_pairwise_correct(self, mats):
        A, B, C = mats
        r = petsc.spadd3(A, B, C, PetscConfig(2))
        assert np.allclose(r.value.toarray(), (A + B + C).toarray())
        assert r.steps == ["MatAXPY", "MatAXPY"]

    def test_strong_scaling_monotone(self, mats):
        A, _, _ = mats
        x = rng.random(300)
        # slow the cores so compute dominates latency at test scale
        node = NodeSpec(core_flops=8e4, core_membw=6.5e4)
        t1 = petsc.spmv(A, x, PetscConfig(1, node=node)).seconds
        t4 = petsc.spmv(A, x, PetscConfig(4, node=node)).seconds
        assert t4 < t1

    def test_32bit_index_limit(self):
        big = sp.csr_matrix((1, 2**31 + 10))
        with pytest.raises(OOMError):
            petsc.spmv(big, np.zeros(2**31 + 10), PetscConfig(1))

    def test_no_gpu_spadd(self, mats):
        A, B, C = mats
        r = petsc.spadd3(A, B, C, PetscConfig(1, gpus=4))
        assert r.oom

    def test_gpu_spmm_multi_gpu_penalty(self, mats):
        A, _, _ = mats
        C = rng.random((300, 8))
        one = petsc.spmm(A, C, PetscConfig(1, gpus=1)).seconds
        two = petsc.spmm(A, C, PetscConfig(1, gpus=2)).seconds
        assert two > one  # broadcast penalty beats the halved compute


class TestTrilinos:
    def test_spmv_correct(self, mats):
        A, _, _ = mats
        x = rng.random(300)
        r = trilinos.spmv(A, x, TrilinosConfig(2))
        assert np.allclose(r.value, A @ x)

    def test_spadd3_slower_than_petsc(self, mats):
        """Tpetra assembly is the heaviest (38.5x vs 11.8x in the paper)."""
        A, B, C = mats
        t = trilinos.spadd3(A, B, C, TrilinosConfig(2)).seconds
        p = petsc.spadd3(A, B, C, PetscConfig(2)).seconds
        assert t > p

    def test_uvm_allows_oversubscription(self, mats):
        A, _, _ = mats
        tiny = NodeSpec(gpu_mem_bytes=1024.0)
        cfg = TrilinosConfig(1, gpus=2, node=tiny, pcie_bw=1e6)
        r = trilinos.spmv(A, rng.random(300), cfg)
        assert not r.oom  # pages instead of failing
        base = trilinos.spmv(A, rng.random(300), TrilinosConfig(1, gpus=2))
        assert r.seconds > base.seconds  # ... but pays for it


class TestCtf:
    def test_spmv_correct_but_slow(self, mats):
        A, _, _ = mats
        x = rng.random(300)
        r = ctf.spmv(A, x, CtfConfig(2))
        assert np.allclose(r.value, A @ x)
        p = petsc.spmv(A, x, PetscConfig(2))
        assert r.seconds > 5 * p.seconds  # interpretation overhead

    def test_spadd3_correct(self, mats):
        A, B, C = mats
        r = ctf.spadd3(A, B, C, CtfConfig(2))
        assert np.allclose(r.value.toarray(), (A + B + C).toarray())

    def test_sddmm_special_kernel_correct(self, mats):
        A, _, _ = mats
        C = rng.random((300, 6))
        D = rng.random((6, 300))
        r = ctf.sddmm(A, C, D, CtfConfig(2))
        assert np.allclose(r.value.toarray(), A.multiply(C @ D).toarray())

    def test_memory_limit_produces_dnc(self, mats):
        A, _, _ = mats
        tiny = NodeSpec(dram_bytes=100.0)
        r = ctf.spmv(A, rng.random(300), CtfConfig(1, node=tiny))
        assert r.oom

    def test_dim_product_limit(self):
        cfg = CtfConfig(1)
        assert not cfg.check_dims((2**22, 2**22, 2**22))
        assert cfg.check_dims((1000, 1000, 1000))

    def test_spttv_cost_only_needs_shape(self):
        cfg = CtfConfig(2)
        r = ctf.spttv(None, (100, 100, 100), 5000, np.zeros(100), cfg)
        assert r.seconds > 0 and not r.oom

    def test_mttkrp_steady_state_cheaper_than_generic_ttv(self):
        cfg = CtfConfig(2)
        ttv = ctf.spttv(None, (100, 100, 100), 50000, np.zeros(100), cfg)
        mttkrp = ctf.spmttkrp((100, 100, 100), 50000, 25, cfg)
        # per the paper: the special kernel is competitive, the generic
        # interpretation path is not (161x vs ~1x)
        assert mttkrp.seconds < ttv.seconds * 25
