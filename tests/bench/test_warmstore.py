"""Packed-operand warm store: memo reuse, store round trip, equivalence."""
import numpy as np
import pytest
import scipy.sparse as sp

from repro.bench import warmstore
from repro.core import clear_caches
from repro.taco import CSR, Tensor


@pytest.fixture(autouse=True)
def isolated_warmstore():
    warmstore.set_warm_store(None)
    warmstore.set_warm_memo_enabled(True)
    warmstore.clear_warm_memo()
    clear_caches()
    yield
    warmstore.set_warm_store(None)
    warmstore.set_warm_memo_enabled(True)
    warmstore.clear_warm_memo()
    clear_caches()


def mat(seed=1):
    rng = np.random.default_rng(seed)
    return sp.random(40, 30, density=0.1, random_state=rng, format="csr")


def test_memo_reuses_one_packed_tensor_per_content():
    A = mat()
    t1 = warmstore.packed_operand("B", A, CSR)
    t2 = warmstore.packed_operand("B", A.copy(), CSR)  # equal content
    assert t1 is t2
    t3 = warmstore.packed_operand("B", mat(seed=2), CSR)
    assert t3 is not t1


def test_tensor_passthrough():
    t = Tensor.from_scipy("B", mat(), CSR)
    assert warmstore.packed_operand("B", t, CSR) is t


def test_memo_disabled_repacks_every_call():
    warmstore.set_warm_memo_enabled(False)
    A = mat()
    t1 = warmstore.packed_operand("B", A, CSR)
    t2 = warmstore.packed_operand("B", A, CSR)
    assert t1 is not t2


def test_store_round_trip_across_simulated_processes(tmp_path):
    """With the persistent store enabled, a cleared memo (the fresh-process
    stand-in) loads the packed structure instead of re-packing — values
    identical to a from-scratch pack."""
    A = mat(seed=7)
    store = warmstore.set_warm_store(tmp_path / "store")
    cold = warmstore.packed_operand("B", A, CSR)
    assert len(store.entries()) == 1

    warmstore.clear_warm_memo()
    warm = warmstore.packed_operand("B", A, CSR)
    assert warm is not cold  # loaded, not memo-hit
    assert len(store.entries()) == 1  # dedup: no second artifact
    assert np.array_equal(warm.to_dense(), cold.to_dense())
    u, c = cold.to_coo()[0], warm.to_coo()[0]
    assert all(np.array_equal(x, y) for x, y in zip(u, c))
    assert store.verify() == []


def test_content_key_distinguishes_name_and_format():
    A = mat()
    k1 = warmstore.content_key("B", CSR, A)
    k2 = warmstore.content_key("C", CSR, A)
    k3 = warmstore.content_key("B", CSR, mat(seed=3))
    assert len({k1, k2, k3}) == 3
    assert warmstore.content_key("B", CSR, A.copy()) == k1
