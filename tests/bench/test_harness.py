"""Harness tests: every kernel runner computes the right answer and the
scaled machine model behaves sanely."""
import numpy as np
import pytest
import scipy.sparse as sp

from repro.bench import (
    BenchConfig,
    ctf_run,
    default_config,
    geomean,
    petsc_run,
    shifted,
    spdistal_sddmm,
    spdistal_spadd3,
    spdistal_spmm,
    spdistal_spmttkrp,
    spdistal_spmv,
    spdistal_spttv,
    trilinos_run,
)
from repro.data import load_tensor
from repro.data.matrices import banded

rng = np.random.default_rng(17)
CFG = default_config(dataset_scale=0.15)


@pytest.fixture(scope="module")
def mat():
    return sp.random(400, 400, density=0.04, random_state=rng, format="csr")


class TestModels:
    def test_scaled_node_rates(self):
        cfg = BenchConfig(rate_scale=1e-4)
        assert cfg.node.core_flops == pytest.approx(8.0e9 * 1e-4)
        assert cfg.node.gpu_mem_bytes == pytest.approx(16 * 1024**3 * 1e-4)

    def test_latencies_not_scaled(self):
        cfg = BenchConfig(rate_scale=1e-4)
        assert cfg.legion_network().alpha == pytest.approx(1.5e-6)
        assert cfg.mpi_network(80).sync_overhead > 0

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert np.isnan(geomean([float("nan")]))


class TestSpdistalRunners:
    def test_spmv_correct(self, mat):
        x = rng.random(400)
        r = spdistal_spmv(mat, x, 4, CFG)
        assert r.ok
        assert np.allclose(r.value, mat @ x)

    def test_spmv_nonzero_strategy(self, mat):
        x = rng.random(400)
        r = spdistal_spmv(mat, x, 4, CFG, strategy="nonzeros")
        assert np.allclose(r.value, mat @ x)

    def test_spmv_gpu(self, mat):
        x = rng.random(400)
        r = spdistal_spmv(mat, x, 0, CFG, gpus=4)
        assert r.ok and np.allclose(r.value, mat @ x)

    def test_spmm_all_strategies(self, mat):
        C = rng.random((400, 8))
        for strat in ("rows", "nonzeros", "batched"):
            r = spdistal_spmm(mat, C, 2, CFG, strategy=strat) if strat == "rows" \
                else spdistal_spmm(mat, C, 0, CFG, gpus=4, strategy=strat)
            if r.ok:
                assert np.allclose(r.value, mat @ C), strat

    def test_spadd3_correct(self, mat):
        B, C, D = mat, shifted(mat, 1), shifted(mat, 2)
        r = spdistal_spadd3(B, C, D, 2, CFG)
        assert np.allclose(r.value.to_dense(), (B + C + D).toarray())

    def test_sddmm_correct(self, mat):
        C = rng.random((400, 8))
        D = rng.random((8, 400))
        r = spdistal_sddmm(mat, C, D, 2, CFG)
        assert np.allclose(r.value.to_dense(), mat.multiply(C @ D).toarray())

    def test_spttv_correct(self):
        T = load_tensor("nell-2", 0.15, CFG.seed)
        x = rng.random(T.shape[2])
        r = spdistal_spttv(T, x, 2, CFG)
        expected = np.einsum("ijk,k->ij", T.to_dense(), x)
        assert np.allclose(r.value.to_dense(), expected)

    def test_spttv_patents_ddc(self):
        T = load_tensor("patents", 0.15, CFG.seed)
        x = rng.random(T.shape[2])
        r = spdistal_spttv(T, x, 2, CFG)
        expected = np.einsum("ijk,k->ij", T.to_dense(), x)
        assert np.allclose(np.asarray(r.value.to_dense()), expected)

    def test_spmttkrp_correct(self):
        T = load_tensor("nell-2", 0.15, CFG.seed)
        C = rng.random((T.shape[1], 5))
        D = rng.random((T.shape[2], 5))
        r = spdistal_spmttkrp(T, C, D, 2, CFG)
        expected = np.einsum("ijk,jl,kl->il", T.to_dense(), C, D)
        assert np.allclose(r.value, expected)

    def test_shifted_preserves_nnz(self, mat):
        assert shifted(mat, 3).nnz == mat.nnz


class TestCrossSystemAgreement:
    def test_all_systems_same_spmv_answer(self, mat):
        x = rng.random(400)
        sd = spdistal_spmv(mat, x, 2, CFG)
        pe = petsc_run("spmv", (mat, x), 2, CFG)
        tr = trilinos_run("spmv", (mat, x), 2, CFG)
        cf = ctf_run("spmv", (mat, x), 2, CFG)
        for r in (pe, tr, cf):
            assert np.allclose(r.value, sd.value)

    def test_ctf_interpretation_much_slower(self, mat):
        x = rng.random(400)
        sd = spdistal_spmv(mat, x, 2, CFG)
        cf = ctf_run("spmv", (mat, x), 2, CFG)
        assert cf.seconds > 10 * sd.seconds  # 1-2 orders in the paper

    def test_petsc_competitive_on_spmv(self, mat):
        x = rng.random(400)
        sd = spdistal_spmv(mat, x, 2, CFG)
        pe = petsc_run("spmv", (mat, x), 2, CFG)
        assert pe.seconds < 10 * sd.seconds  # same ballpark

    def test_fused_add_beats_baselines(self, mat):
        B, C, D = mat, shifted(mat, 1), shifted(mat, 2)
        sd = spdistal_spadd3(B, C, D, 2, CFG)
        pe = petsc_run("spadd3", (B, C, D), 2, CFG)
        tr = trilinos_run("spadd3", (B, C, D), 2, CFG)
        assert sd.seconds < pe.seconds < tr.seconds


class TestScalingShape:
    def test_strong_scaling_improves(self, mat):
        x = rng.random(400)
        t1 = spdistal_spmv(mat, x, 1, CFG).seconds
        t4 = spdistal_spmv(mat, x, 4, CFG).seconds
        assert t4 < t1

    def test_weak_scaling_flat(self):
        unit = 3000
        times = []
        for nodes in (1, 4):
            A = banded(unit * nodes, 5, seed=1)
            x = np.ones(unit * nodes)
            times.append(spdistal_spmv(A, x, nodes, CFG).seconds)
        assert times[1] == pytest.approx(times[0], rel=0.25)

    def test_gpu_oom_reports_dnc(self, mat):
        tiny = BenchConfig(rate_scale=1e-7, dataset_scale=0.15)
        r = spdistal_spmm(mat, rng.random((400, 8)), 0, tiny, gpus=1,
                          strategy="nonzeros")
        assert r.oom and not r.ok
