"""mmap warm starts in the iterative and warmstart scenario drivers.

PR 3 gave ``load_packed(..., mmap=True)`` to the figures driver only;
these tests cover the other two scenario drivers: the iterative loop run
off a packed artifact with mapped level arrays, and the warm-start
scenario's warm child loading with ``mmap=True`` — both must behave
bit-identically to the eager load (mmap is an I/O strategy, not a
semantics change).
"""
import numpy as np
import pytest

from repro.core import clear_caches, compile_kernel
from repro.core.store import save_packed
from repro.bench.iterative import (
    build_spmv_workload,
    load_spmv_workload,
    run_iterative_spmv,
    spmv_iteration_schedule,
)
from repro.bench.models import default_config
from repro.legion import Runtime


PIECES = 4


@pytest.fixture
def artifact(tmp_path):
    """A packed SpMV workload saved from a warmed two-iteration parent,
    with every level array in a sidecar so mmap has something to map."""
    clear_caches()
    cfg = default_config()
    machine = cfg.cpu_machine(PIECES)
    B, c, a = build_spmv_workload(2000, 1e-3, seed=7)
    rt = Runtime(machine, cfg.legion_network())
    for _ in range(2):
        s = spmv_iteration_schedule(B, c, a, PIECES)
        compile_kernel(s, machine).execute(rt)
        out = a.vals.data
        norm = float(np.linalg.norm(out))
        c.vals.data[...] = out / (norm if norm else 1.0)
    path = tmp_path / "artifact"
    save_packed(path, B, runtime=rt, sidecar_threshold=0)
    clear_caches()
    return path


class TestIterativeFromArtifact:
    def test_mmap_run_matches_eager_run_bit_identically(self, artifact):
        eager = run_iterative_spmv(
            pieces=PIECES, iterations=4, source=artifact, mmap=False
        )
        clear_caches()
        mapped = run_iterative_spmv(
            pieces=PIECES, iterations=4, source=artifact, mmap=True
        )
        assert mapped.sim_seconds == eager.sim_seconds
        assert mapped.comm_bytes == eager.comm_bytes
        assert mapped.checksum == eager.checksum

    def test_mmap_keeps_matrix_levels_mapped(self, artifact):
        B, c, a, rt = load_spmv_workload(artifact, mmap=True)
        # The read-only matrix stays a lazy map; the written tensors are
        # promoted (c explicitly, a as the kernel's write target).
        assert all(r.is_mapped for r in B.regions())
        assert not any(r.is_mapped for r in c.regions())
        assert not any(r.is_mapped for r in a.regions())
        clear_caches()

    def test_mmap_warm_start_hits_caches_on_first_iteration(self, artifact):
        res = run_iterative_spmv(
            pieces=PIECES, iterations=3, source=artifact, mmap=True
        )
        # First compile hits the stored kernel cache; every iteration
        # replays a stored or first-iteration mapping trace.
        assert res.kernel_cache_hits >= res.iterations
        assert res.trace_hits >= res.iterations


class TestWarmstartMmapChild:
    @pytest.mark.slow
    def test_warm_child_contract_holds_under_mmap(self, tmp_path):
        from repro.bench.warmstart import run_warmstart

        clear_caches()
        result = run_warmstart(
            store_dir=str(tmp_path),
            n=4000,
            density=5e-4,
            pieces=PIECES,
            iterations=5,
            mmap=True,
        )
        assert result.warm_first_hit_kernel_cache
        assert result.warm_first_partition_misses == 0
        assert result.warm_first_trace_records == 0
        assert result.metrics_bit_identical
        assert result.checksum_bit_identical
        assert result.warm["region_residency"]["mapped"] > 0
