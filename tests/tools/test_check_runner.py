"""Tier-1 enforcement of the unified check runner (``tools/check.py``).

Running every fast plugin clean here wires the whole invariant set —
lock discipline, docstring coverage, the exported API surface, the
nondeterminism lint and the AOT template/sanitizer agreement — into the
plain ``pytest`` loop.  The self-tests pin the runner's own semantics
(plugin selection, JSON schema stability, exact-line findings from the
nondet scanner) so the enforcement cannot rot into a vacuous pass.
"""
import ast
import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO / "tools"))

import check  # noqa: E402


def test_every_fast_plugin_runs_clean_on_the_repo():
    results = check.run_checks()  # the default (fast) set
    failures = [
        f"{r.name}: {f}" for r in results for f in r.findings
    ]
    assert not failures, "\n".join(failures)
    # the fast set is every non-slow plugin, each producing a summary
    assert [r.name for r in results] == [
        p.name for p in check.PLUGINS if not p.slow
    ]
    assert all(r.summary for r in results)


def test_cli_all_fast_exits_zero():
    proc = subprocess.run(
        [sys.executable, str(REPO / "tools" / "check.py")],
        capture_output=True, text=True, cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        timeout=300,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "OK   lock" in proc.stdout


def test_json_schema_is_stable():
    results = check.run_checks(["lock", "nondet"])
    doc = {
        "version": check.JSON_SCHEMA_VERSION,
        "ok": all(r.ok for r in results),
        "checks": [r.to_json() for r in results],
    }
    doc = json.loads(json.dumps(doc))  # round-trips as plain JSON
    assert doc["version"] == 2  # v2: commplan plugin + nondet waivers
    assert set(doc) == {"version", "ok", "checks"}
    for entry in doc["checks"]:
        assert set(entry) == {"name", "ok", "summary", "findings"}
        for f in entry["findings"]:
            assert set(f) == {"file", "line", "message"}


def test_only_selects_and_rejects_unknown():
    (result,) = check.run_checks(["docs"])
    assert result.name == "docs"
    with pytest.raises(KeyError):
        check.run_checks(["no-such-check"])


def test_cli_only_unknown_exits_two_listing_names():
    proc = subprocess.run(
        [sys.executable, str(REPO / "tools" / "check.py"),
         "--only", "bogus,nondet,also-bogus"],
        capture_output=True, text=True, cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        timeout=300,
    )
    assert proc.returncode == 2, proc.stdout + proc.stderr
    # the message names every unknown plugin and the registry to pick from
    assert "bogus" in proc.stderr and "also-bogus" in proc.stderr
    for p in check.PLUGINS:
        assert p.name in proc.stderr


def test_list_names_every_plugin():
    names = {p.name for p in check.PLUGINS}
    assert {"lock", "docs", "exports", "nondet",
            "aot-sanitizer", "commplan", "examples"} <= names
    # the commplan planner coherence sweep runs in the fast (tier-1) set
    assert "commplan" in {p.name for p in check.PLUGINS if not p.slow}
    # exactly one slow plugin today: the examples subprocess runner
    assert [p.name for p in check.PLUGINS if p.slow] == ["examples"]


class TestNondetScanner:
    def _scan(self, source):
        return check._scan_nondet("fake.py", source, ast.parse(source))

    def test_flags_unseeded_random_and_wallclock_with_lines(self):
        src = (
            "import numpy as np\n"
            "import time\n"
            "def kernel(x):\n"
            "    noise = np.random.random(x.shape)\n"   # line 4
            "    t0 = time.perf_counter()\n"            # line 5
            "    return noise, t0\n"
        )
        findings = sorted(self._scan(src), key=lambda f: f.line)
        assert [f.line for f in findings] == [4, 5]
        assert "unseeded randomness" in findings[0].message
        assert "wall-clock" in findings[1].message

    def test_seeded_generator_is_the_documented_fix(self):
        src = (
            "import numpy as np\n"
            "def kernel(x, seed):\n"
            "    rng = np.random.default_rng(seed)\n"
            "    return rng\n"
        )
        # default_rng construction itself is allowed...
        flagged = [f for f in self._scan(src) if "default_rng" in f.message]
        assert not flagged

    def test_clean_kernel_produces_no_findings(self):
        src = (
            "import numpy as np\n"
            "def kernel(vals, out):\n"
            "    out[...] = np.add.reduce(vals)\n"
        )
        assert self._scan(src) == []

    def test_seeded_generator_methods_are_not_flagged(self):
        src = (
            "import numpy as np\n"
            "def build(seed, n):\n"
            "    rng = np.random.default_rng(seed)\n"
            "    return rng.random(n)\n"
        )
        assert self._scan(src) == []

    def test_waiver_with_reason_silences_the_finding(self):
        src = (
            "import time\n"
            "def bench():\n"
            "    return time.perf_counter()"
            "  # nondet: ok measures host overhead\n"
        )
        assert self._scan(src) == []

    def test_waiver_without_reason_is_itself_a_finding(self):
        src = (
            "import time\n"
            "def bench():\n"
            "    return time.perf_counter()  # nondet: ok\n"
        )
        findings = self._scan(src)
        assert len(findings) == 1
        assert "without a reason" in findings[0].message

    def test_scipy_sparse_random_needs_random_state(self):
        src = (
            "import scipy.sparse as sp\n"
            "import numpy as np\n"
            "def build(n, rng):\n"
            "    bad = sp.random(n, n, density=0.1)\n"
            "    good = sp.random(n, n, density=0.1, random_state=rng)\n"
            "    return bad, good\n"
        )
        findings = self._scan(src)
        assert [f.line for f in findings] == [4]
        assert "random_state" in findings[0].message


def test_legacy_entry_points_still_work():
    # the wrapped scripts keep their standalone CLIs (back-compat)
    import api_check
    import docs_check
    import lock_check

    assert lock_check.main() == 0
    assert docs_check.main([]) == 0
    assert api_check.export_problems() == []
