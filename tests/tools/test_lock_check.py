"""Tier-1 enforcement of the static lock-discipline check.

``tools/lock_check.py`` asserts that every mutation of the shared cache
structures (:mod:`repro.core.cache`, :mod:`repro.codegen.registry`)
happens under the designated lock — the invariant the multi-tenant
serving layer leans on.  Running it here wires the check into the fast
tier-1 loop: an unlocked mutation introduced anywhere in the watched
files fails the plain ``pytest`` run, not just a manually-invoked tool.

The self-tests below also pin the checker's own semantics (it must catch
real violations and honor the documented exemptions), so the enforcement
cannot rot into a vacuous pass.
"""
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO / "tools"))

import lock_check  # noqa: E402


def test_repo_lock_discipline_holds(capsys):
    assert lock_check.main() == 0, capsys.readouterr().out


def test_every_watched_file_exists_and_parses():
    # A renamed/moved watched file must fail loudly, not silently shrink
    # the checked surface.
    for relpath, rules in lock_check.WATCH.items():
        path = REPO / relpath
        assert path.is_file(), f"watched file vanished: {relpath}"
        assert rules, f"no rules for {relpath}"
        # every designated lock is actually defined in the file
        text = path.read_text()
        for rule in rules:
            lock_name = rule.lock.split(".")[-1]
            assert lock_name in text, (
                f"{relpath}: designated lock {rule.lock} not found"
            )


def test_checker_flags_unlocked_mutations():
    rules = [
        lock_check.Rule(
            targets=("self._map", "self.hits"), lock="self._lock",
            scope="LRU", exempt=("__init__",),
        ),
        lock_check.Rule(targets=("_shared",), lock="_LOCK"),
    ]
    source = """
class LRU:
    def __init__(self):
        self._map = {}            # exempt: constructor
    def get(self, k):
        self.hits += 1            # violation: augmented assign
        with self._lock:
            self._map[k] = 1      # ok
        self._map.pop(k)          # violation: mutating method call

def helper():
    _shared.clear()               # violation: mutating method call
    _shared["k"] = 1              # violation: subscript assign
    del _shared["k"]              # violation: delete
    with _LOCK:
        _shared.update({})        # ok
"""
    found = lock_check.check_source(source, rules)
    lines = sorted(v.line for v in found)
    assert lines == [6, 9, 12, 13, 14], [str(v) for v in found]


def test_checker_tracks_nested_and_sibling_with_blocks():
    rules = [lock_check.Rule(targets=("_shared",), lock="_LOCK")]
    source = """
def nested():
    with _LOCK:
        with open("f") as fh:
            _shared["k"] = 1      # ok: _LOCK still held lexically

def sibling():
    with _LOCK:
        _shared["a"] = 1          # ok
    _shared["b"] = 2              # violation: lock released
"""
    found = lock_check.check_source(source, rules)
    assert [v.line for v in found] == [10], [str(v) for v in found]


def test_serving_rule_watches_the_server_state():
    # satellite of the serving layer: the Server's tenant/catalog state
    # is a watched target with the same discipline as the caches
    rules = lock_check.WATCH["src/repro/api/serving.py"]
    watched = {t for rule in rules for t in rule.targets}
    assert {"self._catalog", "self._tenants", "self._building"} <= watched
    assert all(rule.lock == "self._lock" for rule in rules)


def test_serving_rule_flags_unlocked_server_mutations():
    # Exact-line negatives against a synthetic Server: the serving rule
    # applied to a source that drops the lock must point at every
    # mutation site, and only those.
    rules = lock_check.WATCH["src/repro/api/serving.py"]
    source = """
class Server:
    def __init__(self):
        self._catalog = {}             # exempt: constructor
        self._tenants = {}
        self._lock = None
    def register(self, name, entry):
        self._catalog[name] = entry    # violation: unlocked subscript
    def evict(self, tenant):
        self._tenants.pop(tenant)      # violation: mutating call
        with self._lock:
            self._building.clear()     # ok: under the designated lock
    def count(self):
        self.compiles += 1             # violation: augmented assign
        return len(self._catalog)      # read: never flagged
"""
    found = lock_check.check_source(source, rules)
    assert sorted(v.line for v in found) == [8, 10, 14], (
        [str(v) for v in found]
    )
    assert all(v.lock == "self._lock" for v in found)


def test_checker_ignores_reads_and_module_level_init():
    rules = [lock_check.Rule(targets=("_shared",), lock="_LOCK")]
    source = """
_shared = {"a": 0}                # module-level init: exempt

def reader():
    x = _shared.get("a")          # read: never flagged
    return _shared["a"], len(_shared)
"""
    assert lock_check.check_source(source, rules) == []
