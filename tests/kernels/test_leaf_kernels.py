"""Leaf kernel tests: vectorized kernels vs loop references vs SciPy."""
import numpy as np
import pytest
import scipy.sparse as sp

from repro.kernels import (
    sddmm_nonzeros,
    sddmm_reference,
    spadd3_fill,
    spadd3_symbolic,
    spmm_nonzeros,
    spmm_rows,
    spmm_rows_reference,
    spmttkrp_csf,
    spmttkrp_ddc,
    spmttkrp_reference,
    spmv_nonzeros,
    spmv_rows,
    spmv_rows_reference,
    spttv_fibers,
    spttv_nonzeros,
    spttv_reference,
)
from repro.legion import make_pos_region
from repro.taco import CSF3, CSR, DDC, Tensor

rng = np.random.default_rng(11)


@pytest.fixture
def csr_case():
    n, m = 30, 24
    M = sp.random(n, m, density=0.2, random_state=rng, format="csr")
    # ensure an empty row and an empty trailing row exist
    M = M.tolil()
    M[3, :] = 0
    M[n - 1, :] = 0
    M = M.tocsr()
    M.eliminate_zeros()
    B = Tensor.from_scipy("B", M, CSR)
    pos, crd, vals = B.csr_arrays()
    return M, pos, crd, vals


class TestSpMV:
    def test_rows_match_scipy(self, csr_case):
        M, pos, crd, vals = csr_case
        x = rng.random(M.shape[1])
        out = np.zeros(M.shape[0])
        spmv_rows(pos, crd, vals, x, out, 0, M.shape[0] - 1)
        assert np.allclose(out, M @ x)

    def test_rows_match_reference(self, csr_case):
        M, pos, crd, vals = csr_case
        x = rng.random(M.shape[1])
        out_v = np.zeros(M.shape[0])
        out_r = np.zeros(M.shape[0])
        spmv_rows(pos, crd, vals, x, out_v, 5, 20)
        spmv_rows_reference(pos, crd, vals, x, out_r, 5, 20)
        assert np.allclose(out_v, out_r)

    def test_nonzeros_pieces_sum(self, csr_case):
        M, pos, crd, vals = csr_case
        x = rng.random(M.shape[1])
        out = np.zeros(M.shape[0])
        third = M.nnz // 3
        spmv_nonzeros(pos, crd, vals, x, out, 0, third)
        spmv_nonzeros(pos, crd, vals, x, out, third + 1, 2 * third)
        spmv_nonzeros(pos, crd, vals, x, out, 2 * third + 1, M.nnz - 1)
        assert np.allclose(out, M @ x)

    def test_empty_piece_zero_work(self, csr_case):
        M, pos, crd, vals = csr_case
        x = rng.random(M.shape[1])
        out = np.zeros(M.shape[0])
        w = spmv_rows(pos, crd, vals, x, out, 5, 4)
        assert w.flops == 0

    def test_empty_row_range(self, csr_case):
        M, pos, crd, vals = csr_case
        x = rng.random(M.shape[1])
        out = np.ones(M.shape[0])
        spmv_rows(pos, crd, vals, x, out, 3, 3)  # the empty row
        assert out[3] == 0.0

    def test_work_counts_nnz(self, csr_case):
        M, pos, crd, vals = csr_case
        x = rng.random(M.shape[1])
        out = np.zeros(M.shape[0])
        w = spmv_rows(pos, crd, vals, x, out, 0, M.shape[0] - 1)
        assert w.flops == 2.0 * M.nnz


class TestSpMM:
    def test_rows(self, csr_case):
        M, pos, crd, vals = csr_case
        C = rng.random((M.shape[1], 7))
        out = np.zeros((M.shape[0], 7))
        spmm_rows(pos, crd, vals, C, out, 0, M.shape[0] - 1)
        assert np.allclose(out, M @ C)

    def test_rows_vs_reference(self, csr_case):
        M, pos, crd, vals = csr_case
        C = rng.random((M.shape[1], 4))
        a = np.zeros((M.shape[0], 4))
        b = np.zeros((M.shape[0], 4))
        spmm_rows(pos, crd, vals, C, a, 2, 18)
        spmm_rows_reference(pos, crd, vals, C, b, 2, 18)
        assert np.allclose(a[2:19], b[2:19])

    def test_nonzeros(self, csr_case):
        M, pos, crd, vals = csr_case
        C = rng.random((M.shape[1], 7))
        out = np.zeros((M.shape[0], 7))
        half = M.nnz // 2
        spmm_nonzeros(pos, crd, vals, C, out, 0, half)
        spmm_nonzeros(pos, crd, vals, C, out, half + 1, M.nnz - 1)
        assert np.allclose(out, M @ C)


class TestSDDMM:
    def test_matches_dense_formula(self, csr_case):
        M, pos, crd, vals = csr_case
        C = rng.random((M.shape[0], 5))
        D = rng.random((5, M.shape[1]))
        ov = np.zeros(M.nnz)
        sddmm_nonzeros(pos, crd, vals, C, D, ov, 0, M.nnz - 1)
        expected = M.multiply(C @ D).tocsr()
        got = sp.csr_matrix(
            (ov, crd, np.concatenate([pos[:, 0], [M.nnz]])), shape=M.shape
        )
        assert np.allclose(got.toarray(), expected.toarray())

    def test_matches_reference(self, csr_case):
        M, pos, crd, vals = csr_case
        C = rng.random((M.shape[0], 5))
        D = rng.random((5, M.shape[1]))
        a = np.zeros(M.nnz)
        b = np.zeros(M.nnz)
        sddmm_nonzeros(pos, crd, vals, C, D, a, 3, 40)
        sddmm_reference(pos, crd, vals, C, D, b, 3, 40)
        assert np.allclose(a[3:41], b[3:41])


class TestSpAdd3:
    def test_two_phase_matches_scipy(self):
        n, m = 20, 16
        mats = [
            sp.random(n, m, density=0.15, random_state=rng, format="csr")
            for _ in range(3)
        ]
        tensors = [Tensor.from_scipy(f"T{i}", M, CSR) for i, M in enumerate(mats)]
        meta = [(t.levels[1].pos.data, t.levels[1].crd.data) for t in tensors]
        counts, _ = spadd3_symbolic(meta, m, 0, n - 1)
        pos = make_pos_region(counts)
        total = int(counts.sum())
        crd = np.zeros(total, dtype=np.int64)
        vals = np.zeros(total)
        full = [
            (t.levels[1].pos.data, t.levels[1].crd.data, t.vals.data) for t in tensors
        ]
        spadd3_fill(full, m, pos.data, crd, vals, 0, n - 1)
        expected = (mats[0] + mats[1] + mats[2]).toarray()
        got = np.zeros((n, m))
        for r in range(n):
            for p in range(pos.data[r, 0], pos.data[r, 1] + 1):
                got[r, crd[p]] = vals[p]
        assert np.allclose(got, expected)

    def test_symbolic_counts_union(self):
        a = Tensor.from_dense("a", np.array([[1.0, 0], [0, 2.0]]), CSR)
        b = Tensor.from_dense("b", np.array([[1.0, 3.0], [0, 0]]), CSR)
        meta = [(t.levels[1].pos.data, t.levels[1].crd.data) for t in (a, b)]
        counts, _ = spadd3_symbolic(meta, 2, 0, 1)
        assert counts.tolist() == [2, 1]

    def test_empty_operands(self):
        a = Tensor.zeros("a", (3, 3), CSR)
        meta = [(a.levels[1].pos.data, a.levels[1].crd.data)]
        counts, _ = spadd3_symbolic(meta, 3, 0, 2)
        assert counts.tolist() == [0, 0, 0]


@pytest.fixture
def csf_case():
    shape = (8, 7, 6)
    idx = [rng.integers(0, s, 120) for s in shape]
    vals = rng.random(120) + 0.5
    T = Tensor.from_coo("T", idx, vals, shape, CSF3)
    return T, T.to_dense()


class TestSpTTV:
    def test_fibers(self, csf_case):
        T, dense = csf_case
        x = rng.random(6)
        nf = T.levels[1].num_positions
        ov = np.zeros(nf)
        spttv_fibers(T.levels[2].pos.data, T.levels[2].crd.data, T.vals.data,
                     x, ov, 0, nf - 1)
        ref = np.zeros(nf)
        spttv_reference(T.levels[2].pos.data, T.levels[2].crd.data, T.vals.data,
                        x, ref, 0, nf - 1)
        assert np.allclose(ov, ref)

    def test_nonzeros_accumulate(self, csf_case):
        T, dense = csf_case
        x = rng.random(6)
        nf = T.levels[1].num_positions
        expected = np.zeros(nf)
        spttv_fibers(T.levels[2].pos.data, T.levels[2].crd.data, T.vals.data,
                     x, expected, 0, nf - 1)
        got = np.zeros(nf)
        half = T.nnz // 2
        spttv_nonzeros(T.levels[2].pos.data, T.levels[2].crd.data, T.vals.data,
                       x, got, 0, half)
        spttv_nonzeros(T.levels[2].pos.data, T.levels[2].crd.data, T.vals.data,
                       x, got, half + 1, T.nnz - 1)
        assert np.allclose(got, expected)


class TestSpMTTKRP:
    def test_csf_matches_einsum(self, csf_case):
        T, dense = csf_case
        C = rng.random((7, 4))
        D = rng.random((6, 4))
        out = np.zeros((8, 4))
        spmttkrp_csf(T.levels[1].pos.data, T.levels[1].crd.data,
                     T.levels[2].pos.data, T.levels[2].crd.data, T.vals.data,
                     C, D, out, 0, T.nnz - 1, accumulate=True)
        assert np.allclose(out, np.einsum("ijk,jl,kl->il", dense, C, D))

    def test_csf_matches_reference(self, csf_case):
        T, dense = csf_case
        C = rng.random((7, 3))
        D = rng.random((6, 3))
        a = np.zeros((8, 3))
        b = np.zeros((8, 3))
        spmttkrp_csf(T.levels[1].pos.data, T.levels[1].crd.data,
                     T.levels[2].pos.data, T.levels[2].crd.data, T.vals.data,
                     C, D, a, 10, 60, accumulate=True)
        spmttkrp_reference(T.levels[1].pos.data, T.levels[1].crd.data,
                           T.levels[2].pos.data, T.levels[2].crd.data, T.vals.data,
                           C, D, b, 10, 60)
        assert np.allclose(a, b)

    def test_ddc_variant(self):
        shape = (3, 5, 6)
        idx = [rng.integers(0, s, 60) for s in shape]
        vals = rng.random(60) + 0.5
        T = Tensor.from_coo("T", idx, vals, shape, DDC)
        dense = T.to_dense()
        C = rng.random((5, 4))
        D = rng.random((6, 4))
        out = np.zeros((3, 4))
        spmttkrp_ddc(5, T.levels[2].pos.data, T.levels[2].crd.data, T.vals.data,
                     C, D, out, 0, T.nnz - 1, accumulate=True)
        assert np.allclose(out, np.einsum("ijk,jl,kl->il", dense, C, D))
