"""Segment primitive tests."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import (
    expand_ranges,
    piece_range,
    row_of_positions,
    segment_sum,
    segment_sum_matrix,
)


class TestPieceRange:
    def test_even(self):
        assert [piece_range(8, 4, c) for c in range(4)] == [
            (0, 1), (2, 3), (4, 5), (6, 7)
        ]

    def test_uneven_trailing_empty(self):
        assert piece_range(4, 3, 2) == (4, 3)  # empty trailing piece

    def test_zero_extent(self):
        assert piece_range(0, 4, 0) == (0, -1)

    def test_union_covers_everything(self):
        for n, p in [(10, 3), (7, 7), (5, 8), (100, 16)]:
            got = set()
            for c in range(p):
                lo, hi = piece_range(n, p, c)
                got.update(range(lo, hi + 1))
            assert got == set(range(n))


class TestRowOfPositions:
    def test_basic(self):
        starts = np.array([0, 3, 5, 6])
        assert row_of_positions(starts, np.array([0, 2, 3, 4, 5, 6, 7])).tolist() == [
            0, 0, 1, 1, 2, 3, 3
        ]

    def test_empty_rows_skipped(self):
        # row 1 empty: starts [0, 2, 2, 5]
        starts = np.array([0, 2, 2, 5])
        got = row_of_positions(starts, np.array([1, 2, 4]))
        assert got.tolist() == [0, 2, 2]


class TestExpandRanges:
    def test_simple(self):
        got = expand_ranges(np.array([0, 5]), np.array([2, 6]))
        assert got.tolist() == [0, 1, 2, 5, 6]

    def test_with_empty_ranges(self):
        got = expand_ranges(np.array([0, 4, 7]), np.array([1, 3, 8]))
        assert got.tolist() == [0, 1, 7, 8]

    def test_all_empty(self):
        assert expand_ranges(np.array([3]), np.array([2])).size == 0

    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(-1, 8)), max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_matches_naive(self, spans):
        lo = np.array([s for s, _ in spans], dtype=np.int64)
        hi = np.array([s + d for s, d in spans], dtype=np.int64)
        expected = [p for l, h in zip(lo, hi) for p in range(l, h + 1)]
        assert expand_ranges(lo, hi).tolist() == expected


class TestSegmentSums:
    def test_segment_sum(self):
        got = segment_sum(np.array([1.0, 2, 3, 4]), np.array([0, 0, 2, 2]), 3)
        assert got.tolist() == [3.0, 0.0, 7.0]

    def test_segment_sum_matrix(self):
        vals = np.arange(8.0).reshape(4, 2)
        got = segment_sum_matrix(vals, np.array([0, 1, 1, 0]), 2)
        assert got.tolist() == [[6.0, 8.0], [6.0, 8.0]]

    @given(st.integers(1, 6), st.integers(0, 40), st.integers(1, 5))
    @settings(max_examples=50, deadline=None)
    def test_matrix_matches_loop(self, nseg, n, k):
        rng = np.random.default_rng(0)
        vals = rng.random((n, k))
        ids = rng.integers(0, nseg, n)
        expected = np.zeros((nseg, k))
        for t in range(n):
            expected[ids[t]] += vals[t]
        got = segment_sum_matrix(vals, ids, nseg) if n else np.zeros((nseg, k))
        assert np.allclose(got, expected)
