"""Generic COO engine tests, incl. a property check against dense evaluation."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import coo_of_access, evaluate_generic
from repro.taco import CSR, Tensor, evaluate, index_vars, var_sizes

rng = np.random.default_rng(23)


def sparse(n, m, density, name):
    dense = rng.random((n, m)) * (rng.random((n, m)) < density)
    return Tensor.from_dense(name, dense, CSR), dense


def densify(result, shape):
    out = np.zeros(shape)
    if result.nnz:
        np.add.at(out, tuple(result.coords), result.vals)
    return out


class TestCooOfAccess:
    def test_materializes_coo(self):
        B, Bd = sparse(5, 4, 0.5, "B")
        i, j = index_vars("i j")
        data = coo_of_access(B[i, j])
        assert data.vars == (i, j)
        assert data.nnz == B.nnz

    def test_restrict_filters(self):
        B, Bd = sparse(6, 6, 0.8, "B")
        i, j = index_vars("i j")
        data = coo_of_access(B[i, j], {i: (2, 3)})
        assert np.all((data.coords[0] >= 2) & (data.coords[0] <= 3))


class TestEvaluateGeneric:
    def test_two_sparse_contraction(self):
        B, Bd = sparse(6, 5, 0.4, "B")
        C, Cd = sparse(7, 5, 0.4, "C")
        A = Tensor.zeros("A", (6, 7))
        i, j, k = index_vars("i j k")
        A[i, j] = B[i, k] * C[j, k]
        res, work = evaluate_generic(A.assignment, var_sizes(A.assignment))
        assert np.allclose(densify(res, (6, 7)), Bd @ Cd.T)
        assert work.flops > 0

    def test_three_way_chain(self):
        B, Bd = sparse(4, 5, 0.5, "B")
        C, Cd = sparse(5, 6, 0.5, "C")
        D, Dd = sparse(6, 3, 0.5, "D")
        A = Tensor.zeros("A", (4, 3))
        i, j, k, l = index_vars("i j k l")
        A[i, l] = B[i, j] * C[j, k] * D[k, l]
        res, _ = evaluate_generic(A.assignment, var_sizes(A.assignment))
        assert np.allclose(densify(res, (4, 3)), Bd @ Cd @ Dd)

    def test_elementwise_add(self):
        B, Bd = sparse(4, 4, 0.4, "B")
        C, Cd = sparse(4, 4, 0.4, "C")
        A = Tensor.zeros("A", (4, 4), CSR)
        i, j = index_vars("i j")
        A[i, j] = B[i, j] + C[i, j]
        res, _ = evaluate_generic(A.assignment, var_sizes(A.assignment))
        assert np.allclose(densify(res, (4, 4)), Bd + Cd)

    def test_outer_product(self):
        u = Tensor.from_dense("u", rng.random(3))
        v = Tensor.from_dense("v", rng.random(4))
        A = Tensor.zeros("A", (3, 4))
        i, j = index_vars("i j")
        A[i, j] = u[i] * v[j]
        res, _ = evaluate_generic(A.assignment, var_sizes(A.assignment))
        assert np.allclose(densify(res, (3, 4)),
                           np.outer(u.dense_array(), v.dense_array()))

    def test_full_reduction_to_vector(self):
        B, Bd = sparse(5, 6, 0.5, "B")
        a = Tensor.zeros("a", (5,))
        i, j = index_vars("i j")
        a[i] = B[i, j]
        res, _ = evaluate_generic(a.assignment, var_sizes(a.assignment))
        assert np.allclose(densify(res, (5,)), Bd.sum(axis=1))

    def test_restricted_pieces_compose(self):
        B, Bd = sparse(8, 6, 0.5, "B")
        c = Tensor.from_dense("c", rng.random(6))
        a = Tensor.zeros("a", (8,))
        i, j = index_vars("i j")
        a[i] = B[i, j] * c[j]
        sizes = var_sizes(a.assignment)
        total = np.zeros(8)
        for lo, hi in [(0, 3), (4, 7)]:
            res, _ = evaluate_generic(a.assignment, sizes, {i: (lo, hi)})
            total += densify(res, (8,))
        assert np.allclose(total, Bd @ c.dense_array())


@st.composite
def small_statement(draw):
    n = draw(st.integers(2, 5))
    m = draw(st.integers(2, 5))
    k = draw(st.integers(2, 5))
    seed = draw(st.integers(0, 2**31))
    form = draw(st.sampled_from(["matmul", "elemwise", "spmv_like"]))
    return n, m, k, seed, form


class TestGenericMatchesReference:
    @given(small_statement())
    @settings(max_examples=40, deadline=None)
    def test_against_dense_reference(self, case):
        n, m, k, seed, form = case
        r = np.random.default_rng(seed)

        def mk(name, shape, density=0.6):
            dense = r.random(shape) * (r.random(shape) < density)
            return Tensor.from_dense(name, dense, CSR)

        i, j, kk = index_vars("i j k")
        if form == "matmul":
            B, C = mk("B", (n, k)), mk("C", (k, m))
            A = Tensor.zeros("A", (n, m))
            A[i, j] = B[i, kk] * C[kk, j]
        elif form == "elemwise":
            B, C = mk("B", (n, m)), mk("C", (n, m))
            A = Tensor.zeros("A", (n, m), CSR)
            A[i, j] = B[i, j] + C[i, j]
        else:
            B, C = mk("B", (n, m)), mk("c", (n, m))
            A = Tensor.zeros("A", (n, n))
            A[i, j] = B[i, kk] * C[j, kk]
        expected = evaluate(A.assignment)
        res, _ = evaluate_generic(A.assignment, var_sizes(A.assignment))
        assert np.allclose(densify(res, expected.shape), expected, atol=1e-12)


class TestInt64OverflowFallback:
    """Huge dimension products must not silently overflow the flattened
    sort keys; the engine falls back to lexsort-based ranking."""

    HUGE = 2**40  # HUGE**3 overflows int64

    def test_fits_int64(self):
        from repro.kernels import fits_int64

        assert fits_int64([2**31, 2**31])
        assert not fits_int64([2**31, 2**31, 2**31])
        assert fits_int64([])

    def test_lex_ranks_orders_and_groups(self):
        from repro.kernels import lex_ranks

        rows = np.array([[2, 1, 2, 1, 9], [0, 5, 0, 5, 9]])
        ranks = lex_ranks(rows)
        assert ranks[0] == ranks[2] and ranks[1] == ranks[3]
        assert ranks[1] < ranks[0] < ranks[4]  # lexicographic order
        assert lex_ranks(np.empty((2, 0), dtype=np.int64)).size == 0

    def test_key_for_huge_sizes_groups_consistently(self):
        from repro.kernels import CooData

        i, j, k = index_vars("i j k")
        coords = np.array([[1, 1, 5], [2, 2, 6], [3, 3, 7]], dtype=np.int64)
        data = CooData((i, j, k), coords, np.array([1.0, 2.0, 3.0]))
        key = data.key_for([i, j, k], {i: self.HUGE, j: self.HUGE, k: self.HUGE})
        assert key[0] == key[1] != key[2]

    def test_reduction_with_huge_dims(self):
        """Sum-reduce a mode of a fragment whose shape product overflows."""
        from repro.kernels.generic_coo import CooData, _reduce_to

        i, j, k = index_vars("i j k")
        big = self.HUGE - 1
        coords = np.array(
            [[0, 0, big, big], [1, 1, 7, 7], [0, 5, big, 3]], dtype=np.int64
        )
        t = CooData((i, j, k), coords, np.array([1.0, 2.0, 3.0, 4.0]))
        res = _reduce_to(t, [i, j], {i: self.HUGE, j: self.HUGE, k: self.HUGE})
        got = {(int(a), int(b)): v for a, b, v in zip(*res.coords, res.vals)}
        assert got == {(0, 1): 3.0, (big, 7): 7.0}

    def test_join_with_huge_dims_matches_small_dims(self):
        """The same nonzeros under huge vs small declared dims must join
        identically (coordinates are what matter, not the extents)."""
        i, j, k = index_vars("i j k")
        rb = np.random.default_rng(5)
        nb, nc = 40, 30
        bc = [rb.integers(0, 50, nb), rb.integers(0, 50, nb)]
        cc = [rb.integers(0, 50, nc), rb.integers(0, 50, nc)]
        bv, cv = rb.random(nb), rb.random(nc)

        def run(extent):
            from repro.kernels.generic_coo import CooData, _multiply

            B = CooData((i, k), np.stack([np.asarray(c, np.int64) for c in bc]), bv)
            C = CooData((j, k), np.stack([np.asarray(c, np.int64) for c in cc]), cv)
            sizes = {i: extent, j: extent, k: extent}
            prod, _ = _multiply(B, C, sizes)
            out = {}
            for col in range(prod.nnz):
                key = tuple(int(prod.coords[d, col]) for d in range(3))
                out[key] = out.get(key, 0.0) + float(prod.vals[col])
            return out

        small = run(50)
        huge = run(self.HUGE)
        assert small.keys() == huge.keys()
        for kk_ in small:
            assert small[kk_] == pytest.approx(huge[kk_])


    def test_lex_ranks_accepts_1d_input(self):
        from repro.kernels import lex_ranks

        ranks = lex_ranks(np.array([3, 1, 2, 1]))
        assert list(ranks) == [2, 0, 1, 0]
