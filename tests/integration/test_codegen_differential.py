"""Codegen-vs-interpreter differential oracle: exact values, exact metrics.

The AOT codegen backend claims it changes *how* leaves compute, never
*what* the distributed schedule does.  That reduces to two checkable
properties per kernel × format × strategy × machine kind: the output
tensor must match the interpreter leaf with **exact float64 equality**
(same accumulation primitives, same order), and the simulated Legion
metrics — per-step task counts, per-processor compute seconds, and every
communication event — must be **bit-identical** (codegen leaves return
the same frozen :class:`~repro.legion.machine.Work` costs).

Workloads are rebuilt from the same seed per backend (fresh tensors, same
values) so neither run can warm the other's caches.  A fixed-seed smoke
slice runs unmarked in the fast tier-1 loop; the full sweep carries the
``codegen`` and ``slow`` markers (``pytest -m codegen``).
"""
import numpy as np
import pytest

from repro.api.autoschedule import auto_schedule
from repro.codegen import codegen_stats, reset_codegen_stats
from repro.core import clear_caches, compile_kernel
from repro.legion import Machine, Runtime
from test_differential import _KIND_FORMATS, _STRATEGIES, _build

PIECES = 4

#: compute kernels with lowering templates (spadd3 never reaches the
#: compute leaf path — it runs the two-phase assembly pipeline).
_CODEGEN_KINDS = ("spmv", "spmm", "sddmm", "spttv", "spmttkrp")


def _metrics_signature(rt: Runtime):
    """An exact, comparable rendering of every recorded step metric."""
    sig = []
    for step in rt.metrics.steps:
        sig.append((
            step.name,
            step.tasks_launched,
            tuple(sorted(step.compute_seconds.items())),
            tuple((e.src_proc, e.dst_proc, e.nbytes, e.same_node, e.reason)
                  for e in step.comm_events),
        ))
    return tuple(sig)


def _run(kind, fmt, strategy, machine_kind, seed, backend, n, density):
    clear_caches()
    rng = np.random.default_rng(seed)
    out = _build(kind, fmt, rng, n, density)
    machine = (
        Machine.gpu(PIECES) if machine_kind == "gpu" else Machine.cpu(PIECES)
    )
    sched = auto_schedule(out, machine, strategy=strategy)
    ck = compile_kernel(sched, machine, backend=backend)
    rt = Runtime(machine)
    ck.execute(rt)
    return out.to_dense(), _metrics_signature(rt)


def _check(kind, fmt, strategy, machine_kind, seed, n=24, density=0.2):
    ref, ref_sig = _run(kind, fmt, strategy, machine_kind, seed,
                        "interp", n, density)
    reset_codegen_stats()
    got, got_sig = _run(kind, fmt, strategy, machine_kind, seed,
                        "codegen", n, density)
    stats = codegen_stats()
    assert stats["binds"] >= 1, (
        f"{kind}/{fmt}/{strategy}: codegen fell back to the interpreter "
        f"(stats={stats}) — the comparison would be vacuous"
    )
    if not np.array_equal(ref, got):
        bad = np.argwhere(ref != got)
        head = [
            (tuple(int(x) for x in idx),
             float(got[tuple(idx)]), float(ref[tuple(idx)]))
            for idx in bad[:5]
        ]
        raise AssertionError(
            f"{kind}/{fmt}/{strategy}/{machine_kind} seed={seed}: "
            f"{len(bad)} entries differ between backends; first "
            f"(index, codegen, interp): {head}"
        )
    assert got_sig == ref_sig, (
        f"{kind}/{fmt}/{strategy}/{machine_kind} seed={seed}: simulated "
        f"metrics drifted between backends"
    )


@pytest.fixture(autouse=True)
def _fresh():
    clear_caches()
    reset_codegen_stats()
    yield
    clear_caches()
    reset_codegen_stats()


def _combos():
    for kind in _CODEGEN_KINDS:
        for fmt in _KIND_FORMATS[kind]:
            for strategy in _STRATEGIES[kind]:
                yield kind, fmt, strategy


def _case_id(c):
    return "-".join(str(x) for x in c)


# --------------------------------------------------------------------------- #
# tier-1 slice: one fixed seed, CPU machine, every supported combination
# --------------------------------------------------------------------------- #
SMOKE_CASES = [(k, f, s, "cpu", 4321) for k, f, s in _combos()]


@pytest.mark.parametrize("case", SMOKE_CASES, ids=_case_id)
def test_codegen_backend_smoke(case):
    kind, fmt, strategy, machine_kind, seed = case
    _check(kind, fmt, strategy, machine_kind, seed)


# --------------------------------------------------------------------------- #
# the full sweep: seeds x densities x machine kinds (markers: codegen, slow)
# --------------------------------------------------------------------------- #
SWEEP_SEEDS = (13, 202)
SWEEP_DENSITIES = (0.05, 0.35)
SWEEP_SIZES = (17, 24)  # odd size exercises uneven piece boundaries

SWEEP_CASES = [
    (k, f, s, mk, seed, n, d)
    for k, f, s in _combos()
    for mk in ("cpu", "gpu")
    for seed, n in zip(SWEEP_SEEDS, SWEEP_SIZES)
    for d in SWEEP_DENSITIES
]


@pytest.mark.codegen
@pytest.mark.slow
@pytest.mark.parametrize("case", SWEEP_CASES, ids=_case_id)
def test_codegen_backend_sweep(case):
    kind, fmt, strategy, machine_kind, seed, n, density = case
    _check(kind, fmt, strategy, machine_kind, seed, n=n, density=density)
