"""Property: every valid schedule of a statement computes the same result.

This is the compiler's core soundness property — data distribution and
computation distribution choices change performance, never answers.
"""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import compile_kernel
from repro.legion import Machine
from repro.taco import CSR, Tensor, evaluate, index_vars


@st.composite
def spmv_case(draw):
    n = draw(st.integers(3, 24))
    m = draw(st.integers(3, 24))
    seed = draw(st.integers(0, 2**31))
    pieces = draw(st.integers(1, 6))
    strategy = draw(st.sampled_from(["rows", "nonzeros"]))
    return n, m, seed, pieces, strategy


class TestSpMVScheduleEquivalence:
    @given(spmv_case())
    @settings(max_examples=40, deadline=None)
    def test_all_schedules_agree_with_reference(self, case):
        n, m, seed, pieces, strategy = case
        rng = np.random.default_rng(seed)
        dense = rng.random((n, m)) * (rng.random((n, m)) < 0.3)
        B = Tensor.from_dense("B", dense, CSR)
        if strategy == "nonzeros" and B.nnz == 0:
            return  # nothing to split
        x = rng.random(m)
        c = Tensor.from_dense("c", x)
        a = Tensor.zeros("a", (n,))
        i, j = index_vars("i j")
        a[i] = B[i, j] * c[j]
        expected = evaluate(a.assignment)
        if strategy == "rows":
            io, ii = index_vars("io ii")
            s = a.schedule().divide(i, io, ii, pieces).distribute(io)
        else:
            f, fp, fo, fi = index_vars("f fp fo fi")
            s = (a.schedule().fuse(i, j, f).pos(f, fp, B[i, j])
                 .divide(fp, fo, fi, pieces).distribute(fo))
        ck = compile_kernel(s, Machine.cpu(max(1, min(pieces, 4))))
        ck.execute()
        assert np.allclose(a.vals.data, expected)


@st.composite
def spadd_case(draw):
    n = draw(st.integers(3, 16))
    m = draw(st.integers(3, 16))
    seed = draw(st.integers(0, 2**31))
    pieces = draw(st.integers(1, 5))
    return n, m, seed, pieces


class TestSpAddScheduleEquivalence:
    @given(spadd_case())
    @settings(max_examples=30, deadline=None)
    def test_two_phase_assembly_any_piece_count(self, case):
        n, m, seed, pieces = case
        rng = np.random.default_rng(seed)

        def mk(name):
            d = rng.random((n, m)) * (rng.random((n, m)) < 0.25)
            return Tensor.from_dense(name, d, CSR), d

        B, Bd = mk("B")
        C, Cd = mk("C")
        D, Dd = mk("D")
        A = Tensor.zeros("A", (n, m), CSR)
        i, j, io, ii = index_vars("i j io ii")
        A[i, j] = B[i, j] + C[i, j] + D[i, j]
        s = A.schedule().divide(i, io, ii, pieces).distribute(io)
        ck = compile_kernel(s, Machine.cpu(max(1, min(pieces, 4))))
        ck.execute()
        assert np.allclose(A.to_dense(), Bd + Cd + Dd)


@st.composite
def mttkrp_case(draw):
    seed = draw(st.integers(0, 2**31))
    pieces = draw(st.integers(1, 4))
    strategy = draw(st.sampled_from(["rows", "nonzeros"]))
    return seed, pieces, strategy


class TestMTTKRPScheduleEquivalence:
    @given(mttkrp_case())
    @settings(max_examples=25, deadline=None)
    def test_row_and_nonzero_agree(self, case):
        seed, pieces, strategy = case
        rng = np.random.default_rng(seed)
        from repro.taco import CSF3

        shape = (8, 7, 6)
        nnz = 60
        idx = [rng.integers(0, s, nnz) for s in shape]
        T = Tensor.from_coo("T", idx, rng.random(nnz) + 0.5, shape, CSF3)
        if strategy == "nonzeros" and T.nnz == 0:
            return
        Cd = rng.random((7, 3))
        Dd = rng.random((6, 3))
        C, D = Tensor.from_dense("C", Cd), Tensor.from_dense("D", Dd)
        A = Tensor.zeros("A", (8, 3))
        i, j, k, l = index_vars("i j k l")
        A[i, l] = T[i, j, k] * C[j, l] * D[k, l]
        if strategy == "rows":
            io, ii = index_vars("io ii")
            s = A.schedule().divide(i, io, ii, pieces).distribute(io)
        else:
            g1, g2, gp, go, gi = index_vars("g1 g2 gp go gi")
            s = (A.schedule().reorder(j, l).fuse(i, j, g1).reorder(k, l)
                 .fuse(g1, k, g2).pos(g2, gp, T[i, j, k])
                 .divide(gp, go, gi, pieces).distribute(go))
        ck = compile_kernel(s, Machine.cpu(max(1, min(pieces, 4))))
        ck.execute()
        expected = np.einsum("ijk,jl,kl->il", T.to_dense(), Cd, Dd)
        assert np.allclose(A.dense_array(), expected)
