"""Integration tests asserting the paper's qualitative claims hold
end-to-end on the scaled machine model (tiny configurations for speed)."""
import numpy as np
import pytest

pytestmark = pytest.mark.slow  # excluded from the fast `-m "not slow"` tier

from repro.bench import default_config
from repro.bench.figures import (
    ablation_distribution_mismatch,
    ablation_fusion,
    ablation_partition_tradeoff,
    fig10,
    fig12,
    fig13,
    table2_inventory,
)

CFG = default_config(dataset_scale=0.15)
TINY_MATS = ["arabic-2005", "nlpkkt240"]
TINY_TENSORS = ["nell-2", "patents"]


@pytest.fixture(scope="module")
def fig10_spmv():
    return fig10("spmv", CFG, node_counts=(1, 4), datasets=TINY_MATS)


class TestFig10Claims:
    def test_spdistal_scales(self, fig10_spmv):
        s = fig10_spmv.data["series"]["SpDISTAL"]
        assert s[0] == pytest.approx(1.0)
        assert s[1] > 1.5  # speedup at 4 nodes

    def test_petsc_competitive_spmv(self, fig10_spmv):
        """Paper: median 1.8x over PETSc — same order, not 10x."""
        s = fig10_spmv.data["series"]
        ratio = s["SpDISTAL"][0] / s["PETSc"][0]
        assert 1.0 < ratio < 8.0

    def test_ctf_one_to_two_orders_slower(self, fig10_spmv):
        s = fig10_spmv.data["series"]
        ratio = s["SpDISTAL"][0] / s["CTF"][0]
        assert 30 < ratio < 3000

    def test_spadd3_fusion_beats_libraries(self):
        r = fig10("spadd3", CFG, node_counts=(2,), datasets=TINY_MATS)
        s = r.data["series"]
        assert s["SpDISTAL"][0] > 3 * s["PETSc"][0]  # paper: 11.8x median
        assert s["SpDISTAL"][0] > 5 * s["Trilinos"][0]  # paper: 38.5x median

    def test_sddmm_load_balanced_scaling(self):
        r = fig10("sddmm", CFG, node_counts=(1, 4), datasets=TINY_MATS)
        s = r.data["series"]["SpDISTAL"]
        assert s[1] > 3.0  # near-perfect scaling (paper: near perfect)

    def test_mttkrp_parity_with_ctf(self):
        r = fig10("spmttkrp", CFG, node_counts=(1,), datasets=TINY_TENSORS)
        s = r.data["series"]
        ratio = s["SpDISTAL"][0] / s["CTF"][0]
        assert 0.2 < ratio < 10.0  # parity band, unlike the 100x kernels


class TestFig12And13Claims:
    def test_gpu_speedup_for_high_order_kernels(self):
        r = fig12("spttv", CFG, gpu_counts=(4,), datasets=["nell-2"])
        s = r.data["speedups"][("nell-2", 4)]
        assert s > 1.5  # paper: 2.0x median

    def test_weak_scaling_flat_and_petsc_close(self):
        r = fig13(CFG, node_counts=(1, 4))
        sd = r.data["series"]["SpDISTAL"]
        assert sd[1] == pytest.approx(sd[0], rel=0.2)  # flat
        pe = r.data["series"]["PETSc"]
        assert sd[0] == pytest.approx(pe[0], rel=0.5)  # within ~0.9-1.3x


class TestAblationClaims:
    def test_nonzero_partition_balances(self):
        r = ablation_partition_tradeoff(CFG, pieces=4)
        for ds, d in r.data.items():
            assert d["nonzero_balance"] <= d["universe_balance"] + 0.05

    def test_fusion_beats_pairwise(self):
        r = ablation_fusion(CFG, nodes=2)
        assert r.data["pairwise"] > 1.2 * r.data["fused"]

    def test_distribution_mismatch_costs(self):
        r = ablation_distribution_mismatch(CFG, nodes=2)
        matched_s, matched_b = r.data["matched"]
        mismatched_s, mismatched_b = r.data["mismatched"]
        assert mismatched_b > matched_b  # reshaping traffic (paper §II-D)
        assert mismatched_s >= matched_s


class TestTable2:
    def test_inventory_renders(self):
        r = table2_inventory(CFG)
        assert "patents" in r.text
        assert len(r.data["rows"]) == 14
