"""End-to-end compile-once / run-many: the iterative-SpMV scenario at a
test-friendly scale.  The cached and uncached paths must produce identical
numerics AND identical simulated metrics — caching is a wall-clock
optimization of the simulator, never a change to what it simulates."""
import numpy as np
import pytest

from repro.bench import run_iterative_spmv
from repro.core import clear_caches

ITERS = 8
KW = dict(n=600, density=5e-3, pieces=4, iterations=ITERS)


@pytest.fixture(autouse=True)
def isolated_caches():
    clear_caches()
    yield
    clear_caches()


def test_cached_and_uncached_runs_are_equivalent():
    cached = run_iterative_spmv(cached=True, **KW)
    uncached = run_iterative_spmv(cached=False, **KW)
    assert cached.checksum == pytest.approx(uncached.checksum)
    assert cached.sim_seconds == pytest.approx(uncached.sim_seconds)
    assert cached.comm_events == uncached.comm_events
    assert cached.comm_bytes == pytest.approx(uncached.comm_bytes)


def test_all_repeat_iterations_amortize():
    cached = run_iterative_spmv(cached=True, **KW)
    assert cached.kernel_cache_hits == ITERS - 1
    assert cached.trace_hits == ITERS - 1


def test_uncached_never_records():
    uncached = run_iterative_spmv(cached=False, **KW)
    assert uncached.trace_hits == 0
    assert uncached.kernel_cache_hits == 0


def test_checksum_approximates_dominant_eigenvalue():
    """The power iteration is numerically sensible: the norm of the final
    un-normalized product converges to A's dominant eigenvalue."""
    import scipy.sparse as sp
    import scipy.sparse.linalg as spla

    r = run_iterative_spmv(cached=True, n=300, density=2e-2, pieces=2,
                           iterations=60, seed=43)
    rng = np.random.default_rng(43)
    A = sp.random(300, 300, density=2e-2, random_state=rng, format="csr")
    A.data += 1.0
    lam = abs(spla.eigs(A, k=1, return_eigenvectors=False)[0])
    assert r.checksum == pytest.approx(float(lam), rel=1e-2)
