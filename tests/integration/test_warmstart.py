"""Cross-process warm start: a fresh Python process loading a stored
artifact must reach cached steady-state on its *first* execution — kernel
cache hit, zero partition misses, mapping-trace replay — with simulated
metrics and numerics bit-identical to the in-process cached path.

This drives the real three-actor scenario (parent + two subprocess
children) from :mod:`repro.bench.warmstart` at test scale; the wall-clock
speedup itself is benchmarked (and regression-gated) separately in
``benchmarks/bench_warmstart.py`` / ``tools/bench_check.py``.
"""
import pytest

from repro.bench.warmstart import run_warmstart
from repro.core import clear_caches

KW = dict(n=600, density=5e-3, pieces=4, warm_iterations=2, iterations=4)


@pytest.fixture(autouse=True)
def isolated_caches():
    clear_caches()
    yield
    clear_caches()


@pytest.fixture(scope="module")
def result():
    clear_caches()
    return run_warmstart(**KW)


def test_warm_process_first_compile_hits_kernel_cache(result):
    assert result.warm_first_hit_kernel_cache
    assert result.warm_first_partition_misses == 0


def test_warm_process_first_execute_replays_not_records(result):
    assert result.warm_first_trace_hits >= 1
    assert result.warm_first_trace_records == 0


def test_warm_process_metrics_bit_identical_to_in_process_path(result):
    # Exact float equality: the child reported via JSON, which round-trips
    # doubles losslessly.
    assert result.metrics_bit_identical
    assert result.warm["comm_events"] == [result.cold["comm_events"][0]] * KW["iterations"]


def test_warm_process_numerics_bit_identical(result):
    assert result.checksum_bit_identical


def test_cold_process_pays_the_cold_start(result):
    """The cold child records (no artifact to replay); its first iteration
    records traces and misses the kernel cache."""
    assert result.cold["first_kernel_hits"] == 0
    assert result.cold["trace_records_after_first"] >= 1
    assert result.cold["first_partition_misses"] > 0
