"""Two sessions on two threads over the shared process caches.

The smallest end-to-end statement of the thread-safety contract: two
:class:`repro.Session` objects running concurrently — same machine
structure, same statements — must (a) not corrupt or lose entries in the
shared kernel / partition / decision / AOT caches, (b) keep the
compile-once / run-many contract *within* each thread (the second
identical compile hits the cache no matter how the threads interleave),
and (c) produce results exactly equal to the same statements run serially
in one session.  Kernel fingerprints are identity-keyed per tensor, so
each thread's privately packed operands own private kernel entries —
cross-thread build sharing is the serving layer's catalog contract,
exercised in ``tests/serving`` — but the *tiers themselves* are shared
and must account exactly under the interleaving.  Small and unmarked:
this runs in the fast tier-1 loop.
"""
import threading

import numpy as np
import pytest

import repro
from repro.core import cache_stats, clear_caches
from repro.taco import Tensor

N, K = 60, 5


@pytest.fixture(autouse=True)
def isolated_caches():
    clear_caches()
    yield
    clear_caches()


def make_data():
    rng = np.random.default_rng(21)
    B = rng.random((N, N)) * (rng.random((N, N)) < 0.12)
    return B, rng.random(N), rng.random((N, K))


def run_statements(s, B, x, C, tag):
    """Each statement twice against one reused output tensor: the second
    run must hit the kernel cache and reproduce the first bit-for-bit."""
    Bt = s.tensor("B", B, repro.CSR)
    xt, Ct = s.tensor("x", x), s.tensor("C", C)
    values = []
    for spec, ops, shape in (("ij,j->i", (Bt, xt), (N,)),
                             ("ij,jk->ik", (Bt, Ct), (N, K))):
        out = Tensor.zeros(f"out_{tag}_{len(values)}", shape)
        first = np.array(repro.einsum(
            spec, *ops, session=s, out=out).to_dense(), copy=True)
        second = np.array(repro.einsum(
            spec, *ops, session=s, out=out).to_dense(), copy=True)
        assert np.array_equal(first, second)  # run-many: bit-stable replay
        values.append(first)
    return values


def test_two_threaded_sessions_match_serial_exactly():
    B, x, C = make_data()

    # the serial oracle, then a clean slate for the threaded run
    with repro.session(nodes=2) as s:
        serial = run_statements(s, B, x, C, "serial")
    clear_caches()

    machine = repro.Machine.cpu(2)  # shared machine: one signature family
    results = {}
    errors = []
    barrier = threading.Barrier(2)

    def worker(name):
        try:
            with repro.Session(machine=machine) as s:
                barrier.wait(timeout=30)
                results[name] = run_statements(s, B, x, C, name)
        except BaseException as e:  # noqa: BLE001 - surfaced after join
            errors.append(e)

    threads = [threading.Thread(target=worker, args=(n,)) for n in ("a", "b")]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not errors, errors
    assert set(results) == {"a", "b"}

    # exact equality: threaded sessions against serial, and each other
    for name in ("a", "b"):
        for got, want in zip(results[name], serial):
            assert np.array_equal(got, want)

    # no lost or duplicated entries in the shared tier: each thread owns
    # its two statements' entries (identity-keyed operands), and every
    # repeat compile was a hit — 4 entries, >= 4 hits, under interleaving
    stats = cache_stats()
    assert stats["kernel_entries"] == 4
    assert stats["kernel_hits"] >= 4
