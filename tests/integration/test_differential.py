"""The differential test oracle: every schedule the tuner can emit is checked.

``Session.autotune`` searches over synthesized schedules, so its
trustworthiness reduces to one property: *every* kernel × format ×
{rows, nonzeros, grid} strategy × machine kind combination the
auto-scheduler can produce computes exactly what the dense reference
(:mod:`repro.taco.reference`) computes.  This module sweeps that space
over seeded randomized COO tensors (shapes and densities swept too) and
cross-checks with **exact float64 equality** — all generated values are
small integers, so every sum of products is exactly representable and
associativity cannot hide a wrong answer behind a tolerance.

Failures dump a minimal standalone repro script into ``repro_failures/``
(and embed it in the assertion message), so a broken combination can be
replayed outside pytest with one command.

A small fixed-seed slice runs unmarked in the fast tier-1 loop; the full
sweep carries the ``differential`` marker (``pytest -m differential``).
"""
import os
from pathlib import Path

import numpy as np
import pytest
import scipy.sparse as sp

from repro.api.autoschedule import auto_schedule
from repro.core import clear_caches, compile_kernel
from repro.legion import Machine
from repro.taco import CSF3, CSR, DDC, Tensor, index_vars
from repro.taco.reference import evaluate

PIECES = 4  # 4 = 2x2: every strategy including the square grid is buildable

_FORMATS = {"csr": CSR, "csf3": CSF3, "ddc": DDC}

#: Which strategies the auto-scheduler can emit per kernel kind.
_STRATEGIES = {
    "spmv": ("rows", "nonzeros"),
    "spmm": ("rows", "nonzeros", "grid"),
    "sddmm": ("rows", "nonzeros"),
    "spttv": ("rows", "nonzeros"),
    "spmttkrp": ("rows", "nonzeros"),
    "spadd3": ("rows",),
}

_KIND_FORMATS = {
    "spmv": ("csr",),
    "spmm": ("csr",),
    "sddmm": ("csr",),
    "spttv": ("csf3", "ddc"),
    "spmttkrp": ("csf3", "ddc"),
    "spadd3": ("csr",),
}


# --------------------------------------------------------------------------- #
# integer-valued workload builders (exact float64 arithmetic)
# --------------------------------------------------------------------------- #
def _int_vals(rng, size):
    """Small integers as float64: sums of products stay exact."""
    return rng.integers(1, 5, size).astype(np.float64)


def _int_dense(rng, shape):
    return rng.integers(1, 5, shape).astype(np.float64)


def _int_csr(rng, n, m, density):
    nnz = max(1, int(n * m * density))
    mat = sp.coo_matrix(
        (_int_vals(rng, nnz),
         (rng.integers(0, n, nnz), rng.integers(0, m, nnz))),
        shape=(n, m),
    )
    mat.sum_duplicates()
    return mat.tocsr()


def _int_tensor3(rng, shape, density, fmt):
    nnz = max(1, int(shape[0] * shape[1] * shape[2] * density))
    idx = [rng.integers(0, s, nnz) for s in shape]
    return Tensor.from_coo("T", idx, _int_vals(rng, nnz), shape, fmt)


def _build(kind: str, fmt: str, rng, n: int, density: float) -> Tensor:
    """The statement's output tensor (assignment attached)."""
    fmt_obj = _FORMATS[fmt]
    if kind == "spmv":
        B = Tensor.from_scipy("B", _int_csr(rng, n, n, density), CSR)
        c = Tensor.from_dense("c", _int_dense(rng, (n,)))
        a = Tensor.zeros("a", (n,))
        i, j = index_vars("i j")
        a[i] = B[i, j] * c[j]
        return a
    if kind == "spmm":
        k = 5
        B = Tensor.from_scipy("B", _int_csr(rng, n, n, density), CSR)
        C = Tensor.from_dense("C", _int_dense(rng, (n, k)))
        out = Tensor.zeros("A", (n, k))
        i, kk, j = index_vars("i k j")
        out[i, j] = B[i, kk] * C[kk, j]
        return out
    if kind == "sddmm":
        k = 4
        B = Tensor.from_scipy("B", _int_csr(rng, n, n, density), CSR)
        C = Tensor.from_dense("C", _int_dense(rng, (n, k)))
        D = Tensor.from_dense("D", _int_dense(rng, (k, n)))
        out = Tensor.zeros("A", (n, n), CSR)
        i, j, kk = index_vars("i j k")
        out[i, j] = B[i, j] * C[i, kk] * D[kk, j]
        return out
    if kind == "spttv":
        shape = (n, max(3, n // 2), max(3, n // 3))
        T = _int_tensor3(rng, shape, density, fmt_obj)
        c = Tensor.from_dense("c", _int_dense(rng, (shape[2],)))
        out = Tensor.zeros("A", shape[:2], None if fmt_obj is DDC else CSR)
        i, j, kk = index_vars("i j k")
        out[i, j] = T[i, j, kk] * c[kk]
        return out
    if kind == "spmttkrp":
        shape = (n, max(3, n // 2), max(3, n // 3))
        l = 4
        T = _int_tensor3(rng, shape, density, fmt_obj)
        C = Tensor.from_dense("C", _int_dense(rng, (shape[1], l)))
        D = Tensor.from_dense("D", _int_dense(rng, (shape[2], l)))
        out = Tensor.zeros("A", (n, l))
        i, j, kk, ll = index_vars("i j k l")
        out[i, ll] = T[i, j, kk] * C[j, ll] * D[kk, ll]
        return out
    if kind == "spadd3":
        mats = [_int_csr(rng, n, n, density) for _ in range(3)]
        Bt, Ct, Dt = (
            Tensor.from_scipy(nm, m, CSR) for nm, m in zip("BCD", mats)
        )
        out = Tensor.zeros("A", (n, n), CSR)
        i, j = index_vars("i j")
        out[i, j] = Bt[i, j] + Ct[i, j] + Dt[i, j]
        return out
    raise ValueError(kind)


# --------------------------------------------------------------------------- #
# the oracle
# --------------------------------------------------------------------------- #
def run_case(
    kind: str,
    fmt: str,
    strategy: str,
    machine_kind: str,
    seed: int,
    n: int = 24,
    density: float = 0.2,
):
    """Build, auto-schedule, execute one combination and compare exactly.

    Importable by the generated repro scripts — keep the signature stable.
    Raises ``AssertionError`` naming the first differing entries on a
    mismatch; returns ``(actual, expected)`` dense arrays otherwise.
    """
    rng = np.random.default_rng(seed)
    out = _build(kind, fmt, rng, n, density)
    expected = evaluate(out.assignment)
    machine = (
        Machine.gpu(PIECES) if machine_kind == "gpu" else Machine.cpu(PIECES)
    )
    sched = auto_schedule(out, machine, strategy=strategy)
    ck = compile_kernel(sched, machine)
    ck.execute()
    actual = out.to_dense()
    if not np.array_equal(actual, expected):
        bad = np.argwhere(actual != expected)
        head = [
            (tuple(int(x) for x in idx),
             float(actual[tuple(idx)]), float(expected[tuple(idx)]))
            for idx in bad[:5]
        ]
        raise AssertionError(
            f"{kind}/{fmt}/{strategy}/{machine_kind} seed={seed} n={n} "
            f"density={density}: {len(bad)} differing entries; first "
            f"(index, actual, expected): {head}"
        )
    return actual, expected


def _repro_script(kind, fmt, strategy, machine_kind, seed, n, density) -> str:
    src = str(Path(__file__).resolve().parents[2] / "src")
    here = str(Path(__file__).resolve().parent)
    return (
        "#!/usr/bin/env python\n"
        '"""Auto-generated minimal repro of a differential-oracle failure."""\n'
        "import sys\n"
        f"sys.path.insert(0, {src!r})\n"
        f"sys.path.insert(0, {here!r})\n"
        "from test_differential import run_case\n"
        f"run_case(kind={kind!r}, fmt={fmt!r}, strategy={strategy!r},\n"
        f"         machine_kind={machine_kind!r}, seed={seed}, n={n},\n"
        f"         density={density})\n"
        "print('reproduced OK: the combination now matches the reference')\n"
    )


def _check(kind, fmt, strategy, machine_kind, seed, n=24, density=0.2):
    try:
        run_case(kind, fmt, strategy, machine_kind, seed, n=n, density=density)
    except AssertionError as e:
        dump_dir = Path(os.environ.get("REPRO_FAILURE_DIR", "repro_failures"))
        dump_dir.mkdir(parents=True, exist_ok=True)
        script = _repro_script(kind, fmt, strategy, machine_kind, seed, n, density)
        path = dump_dir / (
            f"repro_{kind}_{fmt}_{strategy}_{machine_kind}_s{seed}.py"
        )
        path.write_text(script)
        pytest.fail(
            f"{e}\nminimal repro written to {path}:\n{script}", pytrace=False
        )


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


def _combos():
    for kind, fmts in _KIND_FORMATS.items():
        for fmt in fmts:
            for strategy in _STRATEGIES[kind]:
                yield kind, fmt, strategy


def _case_id(c):
    return "-".join(str(x) for x in c)


# --------------------------------------------------------------------------- #
# tier-1 slice: one fixed seed, CPU machine, every kernel x strategy x format
# --------------------------------------------------------------------------- #
SMOKE_CASES = [(k, f, s, "cpu", 1234) for k, f, s in _combos()]


@pytest.mark.parametrize("case", SMOKE_CASES, ids=_case_id)
def test_differential_smoke(case):
    kind, fmt, strategy, machine_kind, seed = case
    _check(kind, fmt, strategy, machine_kind, seed)


# --------------------------------------------------------------------------- #
# the full sweep: seeds x densities x machine kinds (marker: differential)
# --------------------------------------------------------------------------- #
SWEEP_SEEDS = (7, 101)
SWEEP_DENSITIES = (0.05, 0.35)
SWEEP_SIZES = (17, 24)  # odd size exercises uneven piece boundaries

SWEEP_CASES = [
    (k, f, s, mk, seed, n, d)
    for k, f, s in _combos()
    for mk in ("cpu", "gpu")
    for seed, n in zip(SWEEP_SEEDS, SWEEP_SIZES)
    for d in SWEEP_DENSITIES
]


@pytest.mark.differential
@pytest.mark.parametrize("case", SWEEP_CASES, ids=_case_id)
def test_differential_sweep(case):
    kind, fmt, strategy, machine_kind, seed, n, density = case
    _check(kind, fmt, strategy, machine_kind, seed, n=n, density=density)
