"""Tensor packing tests: the SpDISTAL encoding of Fig. 7 and roundtrips."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.taco import (
    CSC,
    CSF3,
    CSR,
    DDC,
    Compressed,
    Dense,
    Format,
    SPARSE_VECTOR,
    Tensor,
)


def fig7_matrix():
    """The 4x4 example matrix used throughout the paper (Figs. 3 and 7)."""
    rows = np.array([0, 0, 0, 1, 1, 2, 3, 3])
    cols = np.array([0, 1, 3, 1, 3, 0, 0, 3])
    vals = np.arange(1.0, 9.0)
    return rows, cols, vals


class TestFig7Encoding:
    def test_csr_pos_crd_vals(self):
        rows, cols, vals = fig7_matrix()
        B = Tensor.from_coo("B", [rows, cols], vals, (4, 4), CSR)
        lvl = B.levels[1]
        assert lvl.pos.data.tolist() == [[0, 2], [3, 4], [5, 5], [6, 7]]
        assert lvl.crd.data.tolist() == [0, 1, 3, 1, 3, 0, 0, 3]
        assert B.vals.data.tolist() == list(vals)

    def test_csc_matches_fig3(self):
        rows, cols, vals = fig7_matrix()
        B = Tensor.from_coo("B", [rows, cols], vals, (4, 4), CSC)
        lvl = B.levels[1]
        # Fig. 3 CSC: pos {0,2}{3,4}{5,4}{5,7}, crd 0 2 3 0 1 0 1 3
        assert lvl.pos.data.tolist() == [[0, 2], [3, 4], [5, 4], [5, 7]]
        assert lvl.crd.data.tolist() == [0, 2, 3, 0, 1, 0, 1, 3]
        assert lvl.crd.data.tolist() == [0, 2, 3, 0, 1, 0, 1, 3]

    def test_csr_csc_same_dense(self):
        rows, cols, vals = fig7_matrix()
        a = Tensor.from_coo("a", [rows, cols], vals, (4, 4), CSR).to_dense()
        b = Tensor.from_coo("b", [rows, cols], vals, (4, 4), CSC).to_dense()
        assert np.allclose(a, b)


class TestPackingCases:
    def test_duplicates_summed(self):
        B = Tensor.from_coo(
            "B", [np.array([0, 0]), np.array([1, 1])], np.array([2.0, 3.0]), (2, 2), CSR
        )
        assert B.nnz == 1
        assert B.to_dense()[0, 1] == 5.0

    def test_empty_tensor(self):
        B = Tensor.zeros("B", (3, 4), CSR)
        assert B.nnz == 0
        assert np.all(B.to_dense() == 0)
        assert B.levels[1].pos.data.shape == (3, 2)

    def test_sparse_vector(self):
        v = Tensor.from_coo("v", [np.array([1, 5])], np.array([1.0, 2.0]), (8,),
                            SPARSE_VECTOR)
        assert v.levels[0].pos.data.tolist() == [[0, 1]]
        assert v.levels[0].crd.data.tolist() == [1, 5]
        assert v.to_dense()[5] == 2.0

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ValueError):
            Tensor.from_coo("B", [np.array([5]), np.array([0])], np.array([1.0]),
                            (4, 4), CSR)

    def test_coordinate_length_mismatch(self):
        with pytest.raises(ValueError):
            Tensor.from_coo("B", [np.array([0, 1]), np.array([0])], np.array([1.0]),
                            (4, 4), CSR)

    def test_format_order_mismatch(self):
        from repro.errors import FormatError

        with pytest.raises(FormatError):
            Tensor("B", (4, 4, 4), CSR)

    def test_csf3_level_counts(self):
        idx = [np.array([0, 0, 1]), np.array([0, 1, 0]), np.array([2, 2, 2])]
        T = Tensor.from_coo("T", idx, np.ones(3), (2, 2, 3), CSF3)
        assert T.levels[1].num_positions == 3  # three distinct (i, j) fibers
        assert T.levels[2].num_positions == 3
        assert T.nnz == 3

    def test_ddc_dense_prefix(self):
        idx = [np.array([0, 1]), np.array([1, 0]), np.array([2, 0])]
        T = Tensor.from_coo("T", idx, np.array([1.0, 2.0]), (2, 2, 3), DDC)
        assert T.levels[0].is_dense and T.levels[1].is_dense
        # pos of the compressed level spans all 4 dense (i, j) positions
        assert T.levels[2].pos.data.shape == (4, 2)
        assert np.allclose(T.to_dense()[0, 1, 2], 1.0)

    def test_dense_tensor_nd_vals(self):
        D = Tensor.from_dense("D", np.arange(6.0).reshape(2, 3))
        assert D.vals.data.shape == (2, 3)
        assert np.allclose(D.dense_array(), np.arange(6.0).reshape(2, 3))

    def test_dense_array_respects_mode_ordering(self):
        arr = np.arange(6.0).reshape(2, 3)
        f = Format([Dense, Dense], mode_ordering=(1, 0))
        D = Tensor.from_dense("D", arr, f)
        assert D.vals.data.shape == (3, 2)  # stored column-major
        assert np.allclose(D.dense_array(), arr)

    def test_from_scipy_roundtrip(self):
        import scipy.sparse as sp

        m = sp.random(10, 8, density=0.3, random_state=np.random.default_rng(0),
                      format="csr")
        B = Tensor.from_scipy("B", m, CSR)
        assert np.allclose(B.to_scipy().toarray(), m.toarray())

    def test_nbytes_counts_levels(self):
        rows, cols, vals = fig7_matrix()
        B = Tensor.from_coo("B", [rows, cols], vals, (4, 4), CSR)
        assert B.nbytes == 4 * 16 + 8 * 8 + 8 * 8  # pos rects + crd + vals


@st.composite
def coo_tensors(draw):
    order = draw(st.integers(1, 3))
    shape = tuple(draw(st.integers(1, 6)) for _ in range(order))
    nnz = draw(st.integers(0, 15))
    rng = np.random.default_rng(draw(st.integers(0, 2**31)))
    coords = [rng.integers(0, s, size=nnz) for s in shape]
    vals = rng.random(nnz) + 0.5
    levels = [draw(st.sampled_from([Dense, Compressed])) for _ in range(order)]
    perm = draw(st.permutations(list(range(order))))
    return coords, vals, shape, Format(levels, tuple(perm))


class TestPackingProperties:
    @given(coo_tensors())
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_preserves_dense_equivalent(self, case):
        coords, vals, shape, fmt = case
        dense = np.zeros(shape)
        if vals.size:
            np.add.at(dense, tuple(c for c in coords), vals)
        T = Tensor.from_coo("T", coords, vals, shape, fmt)
        assert np.allclose(T.to_dense(), dense)

    @given(coo_tensors())
    @settings(max_examples=60, deadline=None)
    def test_pos_ranges_are_contiguous_and_cover_crd(self, case):
        coords, vals, shape, fmt = case
        T = Tensor.from_coo("T", coords, vals, shape, fmt)
        for lvl in T.levels:
            if lvl.is_dense:
                continue
            pos = lvl.pos.data
            nonempty = pos[:, 1] >= pos[:, 0]
            covered = (pos[nonempty, 1] - pos[nonempty, 0] + 1).sum()
            assert covered == lvl.num_positions
            # monotone, gap-free starts
            starts = pos[:, 0]
            assert np.all(np.diff(starts) >= 0)
