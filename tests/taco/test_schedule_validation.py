"""Eager validation of the fluent scheduling language.

Invalid index-variable references must raise a typed ``ScheduleError`` at
schedule *build* time — not surface as an opaque provenance failure deep
inside lowering.
"""
import numpy as np
import pytest

from repro.errors import ScheduleError
from repro.taco import CSR, Tensor, index_vars


def spmv():
    rng = np.random.default_rng(0)
    dense = rng.random((8, 8)) * (rng.random((8, 8)) < 0.4)
    B = Tensor.from_dense("B", dense, CSR)
    c = Tensor.from_dense("c", rng.random(8))
    a = Tensor.zeros("a", (8,))
    i, j = index_vars("i j")
    a[i] = B[i, j] * c[j]
    return a, B, c, i, j


class TestUnknownVars:
    def test_divide_unknown_parent(self):
        a, B, c, i, j = spmv()
        k, io, ii = index_vars("k io ii")
        with pytest.raises(ScheduleError, match="not a loop"):
            a.schedule().divide(k, io, ii, 4)

    def test_distribute_unknown_var(self):
        a, B, c, i, j = spmv()
        (k,) = index_vars("k")
        with pytest.raises(ScheduleError, match="not a loop"):
            a.schedule().distribute(k)

    def test_communicate_unknown_var(self):
        a, B, c, i, j = spmv()
        (k,) = index_vars("k")
        with pytest.raises(ScheduleError, match="not a loop"):
            a.schedule().communicate([a, B, c], k)


class TestDuplicatedVars:
    def test_divide_reuses_existing_loop_as_derived(self):
        a, B, c, i, j = spmv()
        (io,) = index_vars("io")
        with pytest.raises(ScheduleError, match="already a loop"):
            a.schedule().divide(i, io, j, 4)

    def test_divide_outer_equals_inner(self):
        a, B, c, i, j = spmv()
        (io,) = index_vars("io")
        with pytest.raises(ScheduleError, match="must be distinct"):
            a.schedule().divide(i, io, io, 4)

    def test_divide_derives_var_from_itself(self):
        a, B, c, i, j = spmv()
        (ii,) = index_vars("ii")
        with pytest.raises(ScheduleError, match="derived from itself"):
            a.schedule().divide(i, i, ii, 4)

    def test_split_reuses_consumed_var(self):
        a, B, c, i, j = spmv()
        io, ii, x = index_vars("io ii x")
        s = a.schedule().divide(i, io, ii, 4)
        # ``i`` was consumed by the divide; deriving onto it again is a
        # stale reference the old code only caught at lowering time.
        with pytest.raises(ScheduleError, match="already used"):
            s.split(ii, i, x, 2)

    def test_fuse_reuses_existing_loop_as_fused(self):
        a, B, c, i, j = spmv()
        with pytest.raises(ScheduleError, match="derived from itself"):
            a.schedule().fuse(i, j, i)
        a2, B2, c2, i2, j2 = spmv()
        with pytest.raises(ScheduleError, match="already a loop"):
            a2.schedule().fuse(i2, j2, j2)

    def test_pos_reuses_existing_loop(self):
        a, B, c, i, j = spmv()
        f, fp = index_vars("f fp")
        s = a.schedule().fuse(i, j, f)
        with pytest.raises(ScheduleError, match="already used"):
            s.pos(f, i, B[i, j])


class TestFactorValidation:
    def test_split_nonpositive_factor(self):
        a, B, c, i, j = spmv()
        io, ii = index_vars("io ii")
        with pytest.raises(ScheduleError, match="positive factor"):
            a.schedule().split(i, io, ii, 0)

    def test_divide_nonpositive_pieces(self):
        a, B, c, i, j = spmv()
        io, ii = index_vars("io ii")
        with pytest.raises(ScheduleError, match="positive piece count"):
            a.schedule().divide(i, io, ii, -1)


class TestDoubleDivide:
    """A second ``divide`` over an already-divided dimension must fail at
    build time: two piece counts for one original dimension cannot be
    realized by the distributed compiler, and grid synthesis (two divides
    over *distinct* dimensions) relies on this precondition."""

    def test_divide_same_parent_twice(self):
        a, B, c, i, j = spmv()
        io, ii, x, y = index_vars("io ii x y")
        s = a.schedule().divide(i, io, ii, 4)
        with pytest.raises(ScheduleError, match="second time"):
            s.divide(i, x, y, 2)

    def test_divide_derived_inner_of_divided_var(self):
        a, B, c, i, j = spmv()
        io, ii, x, y = index_vars("io ii x y")
        s = a.schedule().divide(i, io, ii, 4)
        # ``ii`` derives from the divided ``i`` — dividing it again would
        # give ``i`` two piece geometries.
        with pytest.raises(ScheduleError, match="second time"):
            s.divide(ii, x, y, 2)

    def test_divide_split_descendant_of_divided_var(self):
        a, B, c, i, j = spmv()
        io, ii, t0, t1, x, y = index_vars("io ii t0 t1 x y")
        s = a.schedule().divide(i, io, ii, 4).split(ii, t0, t1, 2)
        with pytest.raises(ScheduleError, match="second time"):
            s.divide(t1, x, y, 2)

    def test_divide_fused_var_overlapping_divided_dim(self):
        # fuse(i, j) then divide covers both i and j; dividing the derived
        # inner again would re-divide them underneath.
        a, B, c, i, j = spmv()
        f, fo, fi, x, y = index_vars("f fo fi x y")
        s = a.schedule().fuse(i, j, f).divide(f, fo, fi, 4)
        with pytest.raises(ScheduleError, match="second time"):
            s.divide(fi, x, y, 2)

    def test_two_divides_of_distinct_dims_are_legal(self):
        """The 2-D grid shape: divide two *different* original variables."""
        rng = np.random.default_rng(1)
        dense = rng.random((8, 6)) * (rng.random((8, 6)) < 0.5)
        B = Tensor.from_dense("B", dense, CSR)
        C = Tensor.from_dense("C", rng.random((6, 4)))
        out = Tensor.zeros("A", (8, 4))
        i, k, j = index_vars("i k j")
        out[i, j] = B[i, k] * C[k, j]
        io, ii, jo, ji = index_vars("io ii jo ji")
        s = (out.schedule().divide(i, io, ii, 2).divide(j, jo, ji, 2)
             .distribute([io, jo]))
        assert s.pieces_of(io) == 2 and s.pieces_of(jo) == 2

    def test_split_of_divided_var_stays_legal(self):
        a, B, c, i, j = spmv()
        io, ii, io2, io3 = index_vars("io ii io2 io3")
        s = a.schedule().divide(i, io, ii, 4).split(ii, io2, io3, 2)
        assert io2 in s.loop_order and io3 in s.loop_order


class TestValidSchedulesStillBuild:
    def test_canonical_chains_unaffected(self):
        a, B, c, i, j = spmv()
        io, ii = index_vars("io ii")
        s = (a.schedule().divide(i, io, ii, 4).distribute(io)
             .communicate([a, B, c], io).parallelize(ii))
        assert s.pieces_of(io) == 4

        a2, B2, c2, i2, j2 = spmv()
        f, fp, fo, fi = index_vars("f fp fo fi")
        s2 = (a2.schedule().fuse(i2, j2, f).pos(f, fp, B2[i2, j2])
              .divide(fp, fo, fi, 4).distribute(fo))
        assert s2.is_position_var(fo)

    def test_rederiving_from_derived_vars_is_legal(self):
        a, B, c, i, j = spmv()
        io, ii, io2, io3 = index_vars("io ii io2 io3")
        s = a.schedule().divide(i, io, ii, 4).split(io, io2, io3, 2)
        assert io2 in s.loop_order and io3 in s.loop_order
