"""Format language tests (paper §II-B, Fig. 3)."""
import pytest

from repro.errors import FormatError
from repro.taco import (
    CSC,
    CSF3,
    CSR,
    DDC,
    DENSE_MATRIX,
    DENSE_VECTOR,
    SPARSE_VECTOR,
    Compressed,
    Dense,
    Format,
    dense_format,
)


class TestLevelFormats:
    def test_dense_flags(self):
        assert Dense.is_dense and not Dense.is_compressed

    def test_compressed_flags(self):
        assert Compressed.is_compressed and not Compressed.is_dense


class TestFormat:
    def test_csr_is_dense_then_compressed(self):
        assert CSR.levels == (Dense, Compressed)
        assert CSR.mode_ordering == (0, 1)

    def test_csc_reverses_mode_ordering(self):
        assert CSC.levels == (Dense, Compressed)
        assert CSC.mode_ordering == (1, 0)
        assert CSC != CSR

    def test_level_of_mode(self):
        assert CSR.level_of_mode(0) == 0
        assert CSC.level_of_mode(0) == 1  # rows stored at the inner level
        assert CSF3.level_of_mode(2) == 2

    def test_all_dense(self):
        assert DENSE_MATRIX.is_all_dense()
        assert not CSR.is_all_dense()
        assert CSR.has_compressed()

    def test_named_formats(self):
        assert DDC.levels == (Dense, Dense, Compressed)
        assert SPARSE_VECTOR.levels == (Compressed,)
        assert DENSE_VECTOR.order == 1

    def test_equality_and_hash(self):
        assert Format([Dense, Compressed]) == CSR
        assert hash(Format([Dense, Compressed])) == hash(CSR)

    def test_dense_format_builder(self):
        f = dense_format(3)
        assert f.order == 3 and f.is_all_dense()

    def test_invalid_mode_ordering(self):
        with pytest.raises(FormatError):
            Format([Dense, Compressed], mode_ordering=(0, 0))
        with pytest.raises(FormatError):
            Format([Dense, Compressed], mode_ordering=(0, 2))

    def test_empty_format_rejected(self):
        with pytest.raises(FormatError):
            Format([])

    def test_non_level_rejected(self):
        with pytest.raises(FormatError):
            Format([Dense, "Compressed"])

    def test_with_distribution_preserves_structure(self):
        f = CSR.with_distribution("placeholder")
        assert f == CSR
        assert f.distribution == "placeholder"

    def test_default_name_encodes_levels(self):
        f = Format([Dense, Compressed, Compressed])
        assert f.name == "Format(D,C,C)"
