"""Reference evaluator tests against direct NumPy computation."""
import numpy as np
import pytest

from repro.taco import CSR, CSF3, Tensor, evaluate, index_vars, var_sizes

rng = np.random.default_rng(42)


def sparse_matrix(n, m, density=0.3, name="B"):
    dense = rng.random((n, m)) * (rng.random((n, m)) < density)
    return Tensor.from_dense(name, dense, CSR), dense


class TestEvaluate:
    def test_spmv(self):
        B, Bd = sparse_matrix(6, 5)
        c = Tensor.from_dense("c", rng.random(5))
        a = Tensor.zeros("a", (6,))
        i, j = index_vars("i j")
        a[i] = B[i, j] * c[j]
        assert np.allclose(evaluate(a.assignment), Bd @ c.dense_array())

    def test_spmm(self):
        B, Bd = sparse_matrix(6, 5)
        C = Tensor.from_dense("C", rng.random((5, 3)))
        A = Tensor.zeros("A", (6, 3))
        i, k, j = index_vars("i k j")
        A[i, j] = B[i, k] * C[k, j]
        assert np.allclose(evaluate(A.assignment), Bd @ C.dense_array())

    def test_sddmm(self):
        B, Bd = sparse_matrix(6, 5)
        C = Tensor.from_dense("C", rng.random((6, 4)))
        D = Tensor.from_dense("D", rng.random((4, 5)))
        A = Tensor.zeros("A", (6, 5), CSR)
        i, j, k = index_vars("i j k")
        A[i, j] = B[i, j] * C[i, k] * D[k, j]
        expected = Bd * (C.dense_array() @ D.dense_array())
        assert np.allclose(evaluate(A.assignment), expected)

    def test_add_three(self):
        B, Bd = sparse_matrix(6, 5, name="B")
        C, Cd = sparse_matrix(6, 5, name="C")
        D, Dd = sparse_matrix(6, 5, name="D")
        A = Tensor.zeros("A", (6, 5), CSR)
        i, j = index_vars("i j")
        A[i, j] = B[i, j] + C[i, j] + D[i, j]
        assert np.allclose(evaluate(A.assignment), Bd + Cd + Dd)

    def test_ttv(self):
        dense = rng.random((4, 3, 5)) * (rng.random((4, 3, 5)) < 0.4)
        B = Tensor.from_dense("B", dense, CSF3)
        c = Tensor.from_dense("c", rng.random(5))
        A = Tensor.zeros("A", (4, 3), CSR)
        i, j, k = index_vars("i j k")
        A[i, j] = B[i, j, k] * c[k]
        assert np.allclose(evaluate(A.assignment),
                           np.einsum("ijk,k->ij", dense, c.dense_array()))

    def test_mttkrp(self):
        dense = rng.random((4, 3, 5)) * (rng.random((4, 3, 5)) < 0.4)
        B = Tensor.from_dense("B", dense, CSF3)
        C = Tensor.from_dense("C", rng.random((3, 2)))
        D = Tensor.from_dense("D", rng.random((5, 2)))
        A = Tensor.zeros("A", (4, 2))
        i, j, k, l = index_vars("i j k l")
        A[i, l] = B[i, j, k] * C[j, l] * D[k, l]
        expected = np.einsum("ijk,jl,kl->il", dense, C.dense_array(), D.dense_array())
        assert np.allclose(evaluate(A.assignment), expected)

    def test_literal_scaling(self):
        B, Bd = sparse_matrix(4, 4)
        A = Tensor.zeros("A", (4, 4), CSR)
        i, j = index_vars("i j")
        A[i, j] = 2.0 * B[i, j]
        assert np.allclose(evaluate(A.assignment), 2.0 * Bd)

    def test_accumulate(self):
        B, Bd = sparse_matrix(4, 4)
        a = Tensor.from_dense("a", np.ones(4))
        c = Tensor.from_dense("c", rng.random(4))
        i, j = index_vars("i j")
        a[i] = a[i] + B[i, j] * c[j]
        assert np.allclose(evaluate(a.assignment), 1.0 + Bd @ c.dense_array())

    def test_mixed_add_mul(self):
        B, Bd = sparse_matrix(4, 4, name="B")
        C, Cd = sparse_matrix(4, 4, name="C")
        c = Tensor.from_dense("c", rng.random(4))
        a = Tensor.zeros("a", (4,))
        i, j = index_vars("i j")
        a[i] = (B[i, j] + C[i, j]) * c[j]
        assert np.allclose(evaluate(a.assignment), (Bd + Cd) @ c.dense_array())


class TestVarSizes:
    def test_sizes_inferred(self):
        B, _ = sparse_matrix(6, 5)
        c = Tensor.from_dense("c", rng.random(5))
        a = Tensor.zeros("a", (6,))
        i, j = index_vars("i j")
        a[i] = B[i, j] * c[j]
        sizes = var_sizes(a.assignment)
        assert sizes[i] == 6 and sizes[j] == 5

    def test_conflicting_sizes_rejected(self):
        B, _ = sparse_matrix(6, 5)
        c = Tensor.from_dense("c", rng.random(7))
        a = Tensor.zeros("a", (6,))
        i, j = index_vars("i j")
        a[i] = B[i, j] * c[j]
        with pytest.raises(ValueError):
            var_sizes(a.assignment)
