"""Scheduling language tests: transformations and provenance (paper §II-C)."""
import numpy as np
import pytest

from repro.errors import ScheduleError
from repro.taco import (
    CPUThread,
    CSR,
    GPUThread,
    Tensor,
    index_vars,
)


@pytest.fixture
def spmv():
    B = Tensor.from_dense("B", np.eye(8), CSR)
    c = Tensor.from_dense("c", np.ones(8))
    a = Tensor.zeros("a", (8,))
    i, j = index_vars("i j")
    a[i] = B[i, j] * c[j]
    return a, B, c, i, j


class TestLoopTransformations:
    def test_divide_replaces_loop(self, spmv):
        a, B, c, i, j = spmv
        io, ii = index_vars("io ii")
        s = a.schedule().divide(i, io, ii, 4)
        assert [v.name for v in s.loop_order] == ["io", "ii", "j"]
        assert s.pieces_of(io) == 4

    def test_split_records_inner_extent(self, spmv):
        a, B, c, i, j = spmv
        io, ii = index_vars("io ii")
        s = a.schedule().split(i, io, ii, 2)
        sizes = {i: 8, j: 8}
        assert s.fused_extents(ii, sizes) == 2
        assert s.fused_extents(io, sizes) == 4

    def test_divide_extents(self, spmv):
        a, B, c, i, j = spmv
        io, ii = index_vars("io ii")
        s = a.schedule().divide(i, io, ii, 3)
        sizes = {i: 8, j: 8}
        assert s.fused_extents(io, sizes) == 3
        assert s.fused_extents(ii, sizes) == 3  # ceil(8/3)

    def test_fuse_requires_adjacency(self, spmv):
        a, B, c, i, j = spmv
        f, = index_vars("f")
        s = a.schedule()
        s.fuse(i, j, f)
        assert [v.name for v in s.loop_order] == ["f"]

    def test_fuse_non_adjacent_rejected(self, spmv):
        a, B, c, i, j = spmv
        f, = index_vars("f")
        with pytest.raises(ScheduleError):
            a.schedule().fuse(j, i, f)  # j is inside i

    def test_fused_extent_is_product(self, spmv):
        a, B, c, i, j = spmv
        f, = index_vars("f")
        s = a.schedule().fuse(i, j, f)
        assert s.fused_extents(f, {i: 8, j: 8}) == 64

    def test_reorder(self, spmv):
        a, B, c, i, j = spmv
        s = a.schedule().reorder(j, i)
        assert [v.name for v in s.loop_order] == ["j", "i"]

    def test_reorder_distinct(self, spmv):
        a, B, c, i, j = spmv
        with pytest.raises(ScheduleError):
            a.schedule().reorder(i, i)

    def test_pos_requires_sparse(self, spmv):
        a, B, c, i, j = spmv
        jp, = index_vars("jp")
        with pytest.raises(ScheduleError):
            a.schedule().pos(j, jp, c[j])

    def test_unknown_var_rejected(self, spmv):
        a, B, c, i, j = spmv
        k, io, ii = index_vars("k io ii")
        with pytest.raises(ScheduleError):
            a.schedule().divide(k, io, ii, 2)


class TestDistribution:
    def test_distribute_and_communicate(self, spmv):
        a, B, c, i, j = spmv
        io, ii = index_vars("io ii")
        s = (a.schedule().divide(i, io, ii, 4).distribute(io)
             .communicate([a, B, c], io).parallelize(ii, CPUThread))
        assert s.distributed == [io]
        assert s.communicated[io] == [a, B, c]
        assert s.parallelized[ii] is CPUThread

    def test_double_distribute_rejected(self, spmv):
        a, B, c, i, j = spmv
        io, ii = index_vars("io ii")
        s = a.schedule().divide(i, io, ii, 4).distribute(io)
        with pytest.raises(ScheduleError):
            s.distribute(io)

    def test_communicate_foreign_tensor_rejected(self, spmv):
        a, B, c, i, j = spmv
        other = Tensor.zeros("other", (3,))
        io, ii = index_vars("io ii")
        s = a.schedule().divide(i, io, ii, 4)
        with pytest.raises(ScheduleError):
            s.communicate(other, io)

    def test_pieces_requires_divide(self, spmv):
        a, B, c, i, j = spmv
        io, ii = index_vars("io ii")
        s = a.schedule().split(i, io, ii, 2).distribute(io)
        with pytest.raises(ScheduleError):
            s.pieces_of(io)


class TestProvenance:
    def test_underlying_vars_through_divide(self, spmv):
        a, B, c, i, j = spmv
        io, ii = index_vars("io ii")
        s = a.schedule().divide(i, io, ii, 4)
        assert s.underlying_vars(io) == [i]
        assert s.underlying_vars(ii) == [i]

    def test_underlying_vars_through_fuse_pos(self, spmv):
        a, B, c, i, j = spmv
        f, fp, fo, fi = index_vars("f fp fo fi")
        s = (a.schedule().fuse(i, j, f).pos(f, fp, B[i, j])
             .divide(fp, fo, fi, 4))
        assert s.underlying_vars(fo) == [i, j]
        assert s.is_position_var(fo)
        assert s.pos_relation_of(fo).access.tensor is B
        assert not s.is_position_var(i)

    def test_parallel_unit_query(self, spmv):
        a, B, c, i, j = spmv
        s = a.schedule().parallelize(j, GPUThread)
        assert s.leaf_parallel_unit() is GPUThread

    def test_precompute_records(self, spmv):
        a, B, c, i, j = spmv
        iw, = index_vars("iw")
        s = a.schedule().precompute(B[i, j] * c[j], j, iw)
        assert len(s.precomputed) == 1
