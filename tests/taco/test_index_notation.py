"""Tensor index notation AST tests."""
import numpy as np
import pytest

from repro.taco import (
    Access,
    Add,
    Assignment,
    CSR,
    Literal,
    Mul,
    Tensor,
    index_vars,
)


@pytest.fixture
def tensors():
    B = Tensor.zeros("B", (4, 5), CSR)
    c = Tensor.from_dense("c", np.arange(5.0))
    a = Tensor.zeros("a", (4,))
    return a, B, c


class TestAccess:
    def test_getitem_builds_access(self, tensors):
        a, B, c = tensors
        i, j = index_vars("i j")
        acc = B[i, j]
        assert isinstance(acc, Access)
        assert acc.indices == (i, j)
        assert repr(acc) == "B(i, j)"

    def test_single_var_access(self, tensors):
        a, B, c = tensors
        (i,) = index_vars("i")
        assert c[i].indices == (i,)

    def test_arity_mismatch(self, tensors):
        a, B, c = tensors
        i, j, k = index_vars("i j k")
        with pytest.raises(ValueError):
            B[i, j, k]


class TestExprBuilding:
    def test_mul_flattens(self, tensors):
        a, B, c = tensors
        i, j = index_vars("i j")
        e = B[i, j] * c[j] * c[j]
        assert isinstance(e, Mul)
        assert len(e.operands) == 3

    def test_add_flattens(self, tensors):
        a, B, c = tensors
        i, j = index_vars("i j")
        e = B[i, j] + B[i, j] + B[i, j]
        assert isinstance(e, Add)
        assert len(e.operands) == 3

    def test_scalar_wraps_to_literal(self, tensors):
        a, B, c = tensors
        i, j = index_vars("i j")
        e = 2.0 * B[i, j]
        assert isinstance(e.operands[0], Literal)

    def test_invalid_operand_type(self, tensors):
        a, B, c = tensors
        i, j = index_vars("i j")
        with pytest.raises(TypeError):
            B[i, j] * "nope"

    def test_index_vars_first_appearance_order(self, tensors):
        a, B, c = tensors
        i, j = index_vars("i j")
        e = B[i, j] * c[j]
        assert e.index_vars() == [i, j]


class TestAssignment:
    def test_setitem_records_assignment(self, tensors):
        a, B, c = tensors
        i, j = index_vars("i j")
        a[i] = B[i, j] * c[j]
        asg = a.assignment
        assert isinstance(asg, Assignment)
        assert asg.lhs.tensor is a
        assert asg.reduction_vars == [j]
        assert not asg.accumulate

    def test_augmented_assignment_detected(self, tensors):
        a, B, c = tensors
        i, j = index_vars("i j")
        a[i] = a[i] + B[i, j] * c[j]
        assert a.assignment.accumulate

    def test_index_vars_lhs_first(self, tensors):
        a, B, c = tensors
        i, j = index_vars("i j")
        a[i] = B[i, j] * c[j]
        assert a.assignment.index_vars() == [i, j]

    def test_tensors_unique(self, tensors):
        a, B, c = tensors
        i, j = index_vars("i j")
        a[i] = B[i, j] * c[j] + B[i, j] * c[j]
        names = [t.name for t in a.assignment.tensors()]
        assert names == ["a", "B", "c"]

    def test_is_additive(self, tensors):
        a, B, c = tensors
        i, j = index_vars("i j")
        B2 = Tensor.zeros("B2", (4, 5), CSR)
        out = Tensor.zeros("out", (4, 5), CSR)
        out[i, j] = B[i, j] + B2[i, j]
        assert out.assignment.is_additive()
        out[i, j] = B[i, j] * B2[i, j]
        assert not out.assignment.is_additive()

    def test_schedule_requires_assignment(self):
        t = Tensor.zeros("t", (3,))
        with pytest.raises(ValueError):
            t.schedule()


class TestIndexVarIdentity:
    def test_same_name_distinct_vars(self):
        i1, = index_vars("i")
        i2, = index_vars("i")
        assert i1 != i2
        assert i1.name == i2.name

    def test_parsing_helpers(self):
        vs = index_vars("i, j, k")
        assert [v.name for v in vs] == ["i", "j", "k"]
