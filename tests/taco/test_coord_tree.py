"""Coordinate tree tests (paper Fig. 7 and §IV-A level-partition semantics)."""
import numpy as np

from repro.taco import CSF3, CSR, CoordTree, Tensor, tree_partition_from_level


def fig7_tensor():
    rows = np.array([0, 0, 0, 1, 1, 2, 3, 3])
    cols = np.array([0, 1, 3, 1, 3, 0, 0, 3])
    vals = np.arange(1.0, 9.0)
    return Tensor.from_coo("B", [rows, cols], vals, (4, 4), CSR)


class TestCoordTree:
    def test_paths_enumerate_nonzeros(self):
        tree = CoordTree.from_tensor(fig7_tensor())
        paths = tree.paths()
        assert len(paths) == 8
        assert paths[0] == ((0, 0), 1.0)
        assert paths[-1] == ((3, 3), 8.0)

    def test_level_nodes_fig7(self):
        tree = CoordTree.from_tensor(fig7_tensor())
        level0 = tree.level_nodes(0)
        assert [n.coord for n in level0] == [0, 1, 2, 3]
        level1 = tree.level_nodes(1)
        assert [n.coord for n in level1] == [0, 1, 3, 1, 3, 0, 0, 3]

    def test_3tensor_fibers(self):
        idx = [np.array([0, 0, 1]), np.array([0, 1, 0]), np.array([2, 0, 1])]
        T = Tensor.from_coo("T", idx, np.ones(3), (2, 2, 3), CSF3)
        tree = CoordTree.from_tensor(T)
        assert len(tree.level_nodes(1)) == 3
        assert len(tree.level_nodes(2)) == 3


class TestTreePartitionPropagation:
    def test_downward_inheritance_fig8a(self):
        """Partitioning level 0 (rows) colors each row's children the same."""
        tree = CoordTree.from_tensor(fig7_tensor())
        colors = {0: {0}, 1: {0}, 2: {1}, 3: {1}}  # rows 0-1 red, 2-3 green
        per_level = tree_partition_from_level(tree, 0, colors)
        # level 1 positions 0..4 belong to rows 0-1 -> color 0
        for p in range(5):
            assert per_level[1][p] == {0}
        for p in range(5, 8):
            assert per_level[1][p] == {1}

    def test_upward_union_fig8b(self):
        """Partitioning level 1 (non-zeros) colors parents with all child colors."""
        tree = CoordTree.from_tensor(fig7_tensor())
        # positions 0..3 red, 4..7 green; row 1 has children at positions 3,4
        colors = {p: {0} for p in range(4)}
        colors.update({p: {1} for p in range(4, 8)})
        per_level = tree_partition_from_level(tree, 1, colors)
        assert per_level[0][0] == {0}
        assert per_level[0][1] == {0, 1}  # straddles the split
        assert per_level[0][2] == {1}
        assert per_level[0][3] == {1}

    def test_propagation_matches_compiler_partitions(self):
        """Tree semantics agree with the level-function machinery."""
        from repro.core import partition_tensor

        B = fig7_tensor()
        tree = CoordTree.from_tensor(B)
        bounds = {0: (0, 3), 1: (4, 7)}  # non-zero split
        part = partition_tensor(B, 1, "nonzero", bounds)
        colors = {p: {0} for p in range(4)}
        colors.update({p: {1} for p in range(4, 8)})
        per_level = tree_partition_from_level(tree, 1, colors)
        for row in range(4):
            expected = per_level[0][row]
            got = {
                c for c in (0, 1) if part.level_positions[0][c].contains_point(row)
            }
            assert got == expected
