"""Microbenchmarks of the substrate primitives (real wall-clock).

Unlike the figure benchmarks (one-shot experiment drivers), these measure
the actual Python/NumPy performance of the hot primitives: tensor packing,
dependent partitioning, leaf kernels, and the generic engine.
"""
import numpy as np
import pytest
import scipy.sparse as sp

from repro.kernels import (
    sddmm_nonzeros,
    spmm_rows,
    spmv_nonzeros,
    spmv_rows,
)
from repro.legion import equal_partition, image, preimage
from repro.taco import CSR, Tensor

rng = np.random.default_rng(31)
N, DENS = 3000, 0.01


@pytest.fixture(scope="module")
def packed():
    M = sp.random(N, N, density=DENS, random_state=rng, format="csr")
    B = Tensor.from_scipy("B", M, CSR)
    return M, B


@pytest.mark.benchmark(group="primitives")
def test_pack_csr(benchmark):
    M = sp.random(N, N, density=DENS, random_state=rng, format="coo")
    rows, cols, vals = M.row.astype(np.int64), M.col.astype(np.int64), M.data
    benchmark(lambda: Tensor.from_coo("B", [rows, cols], vals, (N, N), CSR))


@pytest.mark.benchmark(group="primitives")
def test_image_then_preimage(benchmark, packed):
    _, B = packed
    lvl = B.levels[1]
    part = equal_partition(lvl.pos.ispace, 16)

    def run():
        crd_part = image(lvl.pos, part, lvl.crd)
        return preimage(lvl.pos, crd_part, lvl.crd)

    benchmark(run)


@pytest.mark.benchmark(group="primitives")
def test_spmv_rows_leaf(benchmark, packed):
    M, B = packed
    pos, crd, vals = B.csr_arrays()
    x = rng.random(N)
    out = np.zeros(N)
    benchmark(lambda: spmv_rows(pos, crd, vals, x, out, 0, N - 1))
    assert np.allclose(out, M @ x)


@pytest.mark.benchmark(group="primitives")
def test_spmv_nonzeros_leaf(benchmark, packed):
    M, B = packed
    pos, crd, vals = B.csr_arrays()
    x = rng.random(N)
    out = np.zeros(N)

    def run():
        out[:] = 0
        spmv_nonzeros(pos, crd, vals, x, out, 0, M.nnz - 1)

    benchmark(run)
    assert np.allclose(out, M @ x)


@pytest.mark.benchmark(group="primitives")
def test_spmm_rows_leaf(benchmark, packed):
    M, B = packed
    pos, crd, vals = B.csr_arrays()
    C = rng.random((N, 32))
    out = np.zeros((N, 32))
    benchmark(lambda: spmm_rows(pos, crd, vals, C, out, 0, N - 1))


@pytest.mark.benchmark(group="primitives")
def test_sddmm_leaf(benchmark, packed):
    M, B = packed
    pos, crd, vals = B.csr_arrays()
    C = rng.random((N, 32))
    D = rng.random((32, N))
    ov = np.zeros(M.nnz)
    benchmark(lambda: sddmm_nonzeros(pos, crd, vals, C, D, ov, 0, M.nnz - 1))


@pytest.mark.benchmark(group="primitives")
def test_compile_spmv(benchmark, packed):
    """Compilation cost: partitioning a tensor's full coordinate tree."""
    from repro.core import compile_kernel
    from repro.legion import Machine
    from repro.taco import index_vars

    M, _ = packed

    def build_and_compile():
        B = Tensor.from_scipy("B", M, CSR)
        c = Tensor.from_dense("c", np.ones(N))
        a = Tensor.zeros("a", (N,))
        i, j, io, ii = index_vars("i j io ii")
        a[i] = B[i, j] * c[j]
        s = a.schedule().divide(i, io, ii, 16).distribute(io)
        return compile_kernel(s, Machine.cpu(16))

    benchmark(build_and_compile)
