"""Multi-tenant serving benchmark: 8 concurrent tenants vs isolated serial.

The scenario (see :mod:`repro.bench.servingbench`) drives a mixed
SpMV/SpMM/SDDMM open-loop load from 8 tenant threads through one
:class:`repro.Server` and replays the same request streams tenant-by-tenant
with cleared caches — the pre-serving world — as the baseline, checking
the serving contract:

* aggregate steady-state throughput >= 3x the isolated-serial baseline
  (the acceptance bar; compile/tune/pack amortization clears it, the load
  is GIL-bound either way),
* identical concurrent requests deduplicate to one compile/tune build
  (``Server.compiles`` == distinct signatures, no AOT double-lowering),
* every response is bit-identical to the serial single-session reference,
* no admission rejections under the default (unbudgeted) load.

Each run appends a ``BENCH_serving_<timestamp>.json`` next to this file;
``tools/bench_check.py --scenario serving`` compares a fresh run against
the latest one and fails on >20% regression of the serving speedup.
"""
from pathlib import Path

import pytest

from repro.bench.servingbench import run_serving_bench, write_serving_report
from repro.core import clear_caches

HERE = Path(__file__).resolve().parent


@pytest.mark.benchmark(group="serving")
def test_serving_throughput_speedup(benchmark):
    clear_caches()
    result = benchmark.pedantic(run_serving_bench, rounds=1, iterations=1)
    benchmark.extra_info["serving_speedup"] = round(result.serving_speedup, 2)
    benchmark.extra_info["serving_rps"] = round(result.serving_throughput_rps, 1)
    benchmark.extra_info["serial_rps"] = round(result.serial_throughput_rps, 1)
    benchmark.extra_info["p50_ms"] = round(result.p50_latency_s * 1e3, 2)
    benchmark.extra_info["p99_ms"] = round(result.p99_latency_s * 1e3, 2)
    path = write_serving_report(result, HERE)
    benchmark.extra_info["report"] = str(path)

    # the contracts hold regardless of any baseline
    assert result.values_bit_identical, (
        "served responses diverged from the serial reference"
    )
    assert result.deduplicated, (
        f"compile/tune work not deduplicated to one build per distinct "
        f"request: {result.server_compiles} builds for "
        f"{result.distinct_requests} signatures, lowered={result.lowered} "
        f"(one isolated tenant lowers {result.serial_lowered})"
    )
    assert result.rejections == 0, (
        f"{result.rejections} admission rejections under an unbudgeted load"
    )
    # the acceptance bar: >= 3x aggregate throughput over isolated tenants
    assert result.serving_speedup >= 3.0, (
        f"serving speedup {result.serving_speedup:.2f}x < 3x "
        f"(serving {result.serving_wall_s:.3f}s, "
        f"isolated serial {result.serial_wall_s:.3f}s for "
        f"{result.total_requests} requests)"
    )
