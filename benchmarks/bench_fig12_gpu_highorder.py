"""Fig. 12: GPU vs CPU for SpTTV and SpMTTKRP (non-zero based GPU kernels)."""
import pytest

from repro.bench.figures import fig12
from conftest import run_once


def _attach(benchmark, result):
    benchmark.extra_info["figure"] = result.name
    benchmark.extra_info["cells"] = {
        f"{ds}@{g}": cell for (ds, g), cell in result.data["cells"].items()
    }
    benchmark.extra_info["table"] = result.text
    return result


@pytest.mark.benchmark(group="fig12")
def test_fig12_spttv(benchmark, cfg):
    r = _attach(benchmark, run_once(benchmark, fig12, "spttv", cfg,
                                    gpu_counts=(4, 8, 16)))
    speedups = [s for s in r.data["speedups"].values()]
    # paper: median 2.0x GPU speedup when data fits
    assert sum(1 for s in speedups if s > 1.0) > len(speedups) // 2


@pytest.mark.benchmark(group="fig12")
def test_fig12_spmttkrp(benchmark, cfg):
    r = _attach(benchmark, run_once(benchmark, fig12, "spmttkrp", cfg,
                                    gpu_counts=(4, 8, 16)))
    sp = r.data["speedups"]
    # paper: 2.2x median, increasing with scale (better load balance)
    by_ds = {}
    for (ds, g), s in sp.items():
        by_ds.setdefault(ds, []).append((g, s))
    increasing = 0
    for ds, series in by_ds.items():
        series.sort()
        if series[-1][1] >= series[0][1]:
            increasing += 1
    assert increasing >= len(by_ds) // 2
