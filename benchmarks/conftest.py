"""Shared benchmark configuration.

Each figure benchmark runs its experiment driver once (rounds=1) — the
driver itself sweeps node counts and datasets — and attaches the paper-
facing results (speedup series, heatmap cells) to ``extra_info`` so the
JSON report carries the reproduced figures.
"""
import pytest

from repro.bench import default_config


@pytest.fixture(scope="session")
def cfg():
    # Scale 0.3 keeps every figure regeneration to seconds while preserving
    # the structural classes of Table II.
    return default_config(dataset_scale=0.3)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment driver exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
