"""Fig. 11: GPU strong scaling heatmaps for SpMV/SpMM/SpAdd3/SDDMM.

Regenerates the fastest-system-per-cell heatmaps, including DNC entries
from the simulated 16 GiB GPU memory, the memory-conserving
"SpDISTAL-Batched" SpMM, and Trilinos's CUDA-UVM oversubscription.
"""
import pytest

from repro.bench.figures import fig11
from conftest import run_once


def _attach(benchmark, result):
    benchmark.extra_info["figure"] = result.name
    benchmark.extra_info["cells"] = {
        f"{ds}@{g}": win for (ds, g), win in result.data["cells"].items()
    }
    benchmark.extra_info["table"] = result.text
    return result


@pytest.mark.benchmark(group="fig11")
def test_fig11_spmv(benchmark, cfg):
    r = _attach(benchmark, run_once(benchmark, fig11, "spmv", cfg,
                                    gpu_counts=(1, 2, 4, 8)))
    wins = list(r.data["cells"].values())
    # paper: SpDISTAL wins 28/38 configurations
    assert wins.count("SpDISTAL") >= len(wins) // 3


@pytest.mark.benchmark(group="fig11")
def test_fig11_spmm(benchmark, cfg):
    r = _attach(benchmark, run_once(benchmark, fig11, "spmm", cfg,
                                    gpu_counts=(1, 2, 4, 8, 16)))
    wins = list(r.data["cells"].values())
    # once data fits, the load-balanced or batched kernel wins (paper 34/49)
    assert any(w.startswith("SpDISTAL") for w in wins)
    assert "Trilinos" in wins  # UVM lets Trilinos take some cells


@pytest.mark.benchmark(group="fig11")
def test_fig11_spadd3(benchmark, cfg):
    r = _attach(benchmark, run_once(benchmark, fig11, "spadd3", cfg,
                                    gpu_counts=(2, 4, 8, 16)))
    wins = list(r.data["cells"].values())
    assert any(w == "SpDISTAL" for w in wins)  # paper: 32/34


@pytest.mark.benchmark(group="fig11")
def test_fig11_sddmm(benchmark, cfg):
    r = _attach(benchmark, run_once(benchmark, fig11, "sddmm", cfg,
                                    gpu_counts=(1, 2, 4, 8)))
    wins = list(r.data["cells"].values())
    assert any(w in ("SpDISTAL", "SpDISTAL-CPU") for w in wins)
