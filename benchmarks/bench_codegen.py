"""Codegen-backend benchmark: fused generated leaves vs interpreter leaves.

The scenario (see :mod:`repro.bench.codegenbench`) times a full leaf sweep
of the iterative-SpMV kernel under both backends and checks the codegen
contract:

* steady-state leaf execution with generated kernels is >= 2x faster than
  the interpreter leaves (the acceptance bar),
* output values and simulated Legion metrics are bit-identical either way
  (codegen changes how leaves compute, never what the schedule does), and
* a warm start through the artifact store re-seeds the generated module
  with zero lowering work.

Each run appends a ``BENCH_codegen_<timestamp>.json`` next to this file;
``tools/bench_check.py --scenario codegen`` compares a fresh run against
the latest one and fails on >20% regression of the leaf speedup.
"""
from pathlib import Path

import pytest

from repro.bench.codegenbench import run_codegen_bench, write_codegen_report
from repro.core import clear_caches

HERE = Path(__file__).resolve().parent


@pytest.mark.benchmark(group="codegen")
def test_codegen_leaf_speedup(benchmark):
    clear_caches()
    result = benchmark.pedantic(run_codegen_bench, rounds=1, iterations=1)
    benchmark.extra_info["leaf_speedup"] = round(result.leaf_speedup, 2)
    benchmark.extra_info["interp_leaf_ms"] = round(result.interp_leaf_s * 1e3, 4)
    benchmark.extra_info["codegen_leaf_ms"] = round(result.codegen_leaf_s * 1e3, 4)
    path = write_codegen_report(result, HERE)
    benchmark.extra_info["report"] = str(path)

    # the contracts hold regardless of any baseline
    assert result.values_bit_identical
    assert result.metrics_bit_identical
    assert result.warm_start_zero_lowering, (
        f"warm start did lowering work: {result.warm_stats}"
    )
    # the acceptance bar: generated leaves >= 2x over interpreter leaves
    assert result.leaf_speedup >= 2.0, (
        f"leaf speedup {result.leaf_speedup:.2f}x < 2x "
        f"(interp {result.interp_leaf_s * 1e3:.3f} ms/sweep, "
        f"codegen {result.codegen_leaf_s * 1e3:.3f} ms/sweep)"
    )
