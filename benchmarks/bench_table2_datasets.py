"""Table II: the dataset inventory (scaled synthetic stand-ins)."""
import pytest

from repro.bench.figures import table2_inventory
from conftest import run_once


@pytest.mark.benchmark(group="table2")
def test_table2_inventory(benchmark, cfg):
    r = run_once(benchmark, table2_inventory, cfg)
    benchmark.extra_info["table"] = r.text
    rows = r.data["rows"]
    assert len(rows) == 14  # ten matrices + four tensors, as in the paper
    names = {name for name, *_ in rows}
    for expected in ("arabic-2005", "twitter7", "nlpkkt240", "patents",
                     "freebase_music", "nell-2"):
        assert expected in names
    assert all(nnz > 0 for _, _, nnz, _ in rows)
