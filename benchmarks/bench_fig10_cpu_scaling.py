"""Fig. 10: CPU strong scaling for all six kernels (paper §VI-A).

Each benchmark regenerates one subplot's series — speedup over SpDISTAL on
1 node for SpDISTAL/PETSc/Trilinos/CTF — and attaches them to the report.
The shape assertions encode the paper's headline comparisons.
"""
import numpy as np
import pytest

from repro.bench.figures import fig10
from conftest import run_once

NODES = (1, 2, 4, 8, 16)


def _attach(benchmark, result):
    benchmark.extra_info["figure"] = result.name
    benchmark.extra_info["series"] = {
        k: [None if not np.isfinite(v) else round(v, 4) for v in vals]
        for k, vals in result.data["series"].items()
    }
    benchmark.extra_info["table"] = result.text
    return result.data["series"]


@pytest.mark.benchmark(group="fig10")
def test_fig10a_spmv(benchmark, cfg):
    r = run_once(benchmark, fig10, "spmv", cfg, node_counts=NODES)
    s = _attach(benchmark, r)
    assert s["SpDISTAL"][-1] > 4  # scales
    assert s["SpDISTAL"][0] / s["CTF"][0] > 30  # 1-2 orders over CTF
    assert s["SpDISTAL"][0] / s["PETSc"][0] < 8  # competitive with PETSc


@pytest.mark.benchmark(group="fig10")
def test_fig10b_spmm(benchmark, cfg):
    r = run_once(benchmark, fig10, "spmm", cfg, node_counts=NODES)
    s = _attach(benchmark, r)
    assert s["SpDISTAL"][0] / s["Trilinos"][0] > 1.5  # paper: 3.8x median
    assert s["SpDISTAL"][0] / s["CTF"][0] > 5


@pytest.mark.benchmark(group="fig10")
def test_fig10c_spadd3(benchmark, cfg):
    r = run_once(benchmark, fig10, "spadd3", cfg, node_counts=NODES)
    s = _attach(benchmark, r)
    assert s["SpDISTAL"][1] / s["PETSc"][1] > 4  # paper: 11.8x median
    assert s["SpDISTAL"][1] / s["Trilinos"][1] > 10  # paper: 38.5x median


@pytest.mark.benchmark(group="fig10")
def test_fig10d_sddmm(benchmark, cfg):
    r = run_once(benchmark, fig10, "sddmm", cfg, node_counts=NODES)
    s = _attach(benchmark, r)
    assert s["SpDISTAL"][-1] > 8  # near-perfect scaling (load balanced)
    assert s["SpDISTAL"][2] / s["CTF"][2] > 5  # paper: 15.3x median


@pytest.mark.benchmark(group="fig10")
def test_fig10e_spttv(benchmark, cfg):
    r = run_once(benchmark, fig10, "spttv", cfg, node_counts=NODES)
    s = _attach(benchmark, r)
    assert s["SpDISTAL"][0] / s["CTF"][0] > 30  # paper: 161x median


@pytest.mark.benchmark(group="fig10")
def test_fig10f_spmttkrp(benchmark, cfg):
    r = run_once(benchmark, fig10, "spmttkrp", cfg, node_counts=NODES)
    s = _attach(benchmark, r)
    ratio = s["SpDISTAL"][0] / s["CTF"][0]
    assert 0.2 < ratio < 10  # paper: parity (median 97% of CTF)
