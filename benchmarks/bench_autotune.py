"""Autotune benchmark: the tuner vs the paper's hand-written schedules.

``Session.autotune`` claims the distribution strategy is a *data- and
machine-dependent scheduling choice* the system can make itself (ROADMAP
follow-on of the Session front end; paper Figs. 10-12 motivate it).  This
scenario measures that claim on the figure workloads:

* the tuned steady trial matches or beats the best hand-written strategy
  (within 5% — in practice they are bit-identical when the tuner picks
  the same mapping, and strictly better when it finds the 2-D grid);
* the tuner agrees with the paper's schedules where the cost model does
  (CPU → rows, skewed GPU SpMM → non-zeros), and finds ``grid`` on the
  striped square-grid workload neither hand-written family wins;
* a *second* autotune of the same statement family answers from the
  decision table with zero search trials (the compile-once / run-many
  discipline applied to the search itself).

``tools/bench_check.py --scenario autotune`` gates the same contracts and
records ``BENCH_autotune_<timestamp>.json`` baselines.
"""
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.bench.harness import spdistal_autotuned, spdistal_spmm
from repro.bench.models import default_config
from repro.core import clear_caches
from repro.data.matrices import striped

HERE = Path(__file__).resolve().parent


@pytest.mark.benchmark(group="autotune")
def test_autotune_matches_or_beats_hand_schedules(benchmark):
    clear_caches()
    cfg = default_config(rate_scale=1.0, dataset_scale=0.2)
    rng = np.random.default_rng(3)
    M = striped(2000, 30_000, heavy_frac=0.9, seed=9)
    args = (M, rng.random((M.shape[1], 32)))

    hand = {}
    for strategy in ("rows", "nonzeros"):
        clear_caches()
        hand[strategy] = spdistal_spmm(*args, 4, cfg, strategy=strategy).seconds

    def tuned_run():
        clear_caches()
        return spdistal_autotuned("spmm", args, 4, cfg)

    tuned = benchmark.pedantic(tuned_run, rounds=1, iterations=1)
    best_hand = min(hand.values())
    benchmark.extra_info["tuned_strategy"] = tuned.strategy
    benchmark.extra_info["tuned_sim_s"] = tuned.seconds
    benchmark.extra_info["best_hand_sim_s"] = best_hand
    benchmark.extra_info["margin"] = round(best_hand / tuned.seconds, 4)

    # The tuner must match or beat the best hand-written schedule (5%).
    assert tuned.ok
    assert tuned.seconds <= best_hand * 1.05
    # On the striped workload the 2-D grid is the win neither hand-written
    # family gets.
    assert tuned.strategy == "grid"


@pytest.mark.benchmark(group="autotune")
def test_second_autotune_is_zero_trials(benchmark):
    clear_caches()
    M = striped(1500, 20_000, heavy_frac=0.9, seed=2)
    rng = np.random.default_rng(4)
    C = rng.random((M.shape[1], 16))

    with repro.session(nodes=4) as s:
        B = s.tensor("B", M, repro.CSR)
        Ct = s.tensor("C", C)
        out = s.zeros("A", (M.shape[0], 16))
        i, k, j = repro.index_vars("i k j")
        out[i, j] = B[i, k] * Ct[k, j]
        first = s.autotune(out, trials=2)
        assert not first.from_cache and first.trials_run > 0

        def replay():
            return s.autotune(out)

        second = benchmark.pedantic(replay, rounds=1, iterations=1)
        assert second.from_cache and second.trials_run == 0
        assert second.strategy == first.strategy
        benchmark.extra_info["winner"] = first.strategy
        benchmark.extra_info["search_trials_first"] = first.trials_run
    clear_caches()
