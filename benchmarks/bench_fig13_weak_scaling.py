"""Fig. 13: SpMV weak scaling on synthetic banded matrices up to 64 nodes."""
import numpy as np
import pytest

from repro.bench.figures import fig13
from conftest import run_once


@pytest.mark.benchmark(group="fig13")
def test_fig13_weak_scaling(benchmark, cfg):
    r = run_once(benchmark, fig13, cfg,
                 node_counts=(1, 2, 4, 8, 16, 32, 64))
    benchmark.extra_info["figure"] = r.name
    benchmark.extra_info["table"] = r.text
    s = r.data["series"]
    benchmark.extra_info["series"] = {
        k: [None if not np.isfinite(v) else round(v, 3) for v in vals]
        for k, vals in s.items()
    }
    # flat weak scaling: last/first within 20% for CPU systems (paper: ~flat)
    for name in ("SpDISTAL", "PETSc"):
        vals = [v for v in s[name] if np.isfinite(v)]
        assert min(vals) > 0.8 * max(vals), name
    # SpDISTAL within 0.9-1.3x of PETSc on CPUs (paper: 90-92%)
    ratio = s["SpDISTAL"][0] / s["PETSc"][0]
    assert 0.7 < ratio < 1.4
    # GPU lines exist and are also flat where they complete
    gvals = [v for v in s["SpDISTAL-GPU"] if np.isfinite(v)]
    assert len(gvals) >= 5
    assert min(gvals) > 0.75 * max(gvals)
