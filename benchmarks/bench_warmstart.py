"""Warm-start benchmark: cross-process compile-once / run-many.

A parent process packs a tensor, warms every amortization layer (kernel
cache, partition memo, mapping traces) and saves the artifact
(:mod:`repro.core.store`); a *fresh* process loads it and must reach
cached steady-state on its very first execution:

* first compile hits the kernel cache (no recompilation),
* zero partition-memo misses (no coordinate-tree re-partitioning),
* first execute replays the stored mapping trace (no re-record), and
* simulated metrics are bit-identical to the parent's in-process cached
  path (caching — in-process or persistent — never changes what the
  simulator simulates).

The measured statistic is ``warmstart_speedup``: a cold process's first
iteration (pack + compile + partition + record) over the warm process's
first iteration (load + replay).  Each run appends a
``BENCH_warmstart_<timestamp>.json`` next to this file;
``tools/bench_check.py`` compares a fresh run against the latest baseline
and fails on >20% regression of the speedup.
"""
from pathlib import Path

import pytest

from repro.bench.warmstart import run_warmstart, write_warmstart_report
from repro.core import clear_caches

HERE = Path(__file__).resolve().parent


@pytest.mark.benchmark(group="warmstart")
def test_warmstart_first_execute_is_steady_state(benchmark):
    clear_caches()
    result = run_warmstart(iterations=20)

    # pytest-benchmark times one full scenario pass at a reduced scale.
    def small():
        clear_caches()
        return run_warmstart(n=2000, density=1e-3, pieces=4,
                             warm_iterations=2, iterations=3)

    benchmark.pedantic(small, rounds=1, iterations=1)
    benchmark.extra_info["warmstart_speedup"] = round(result.warmstart_speedup, 2)
    benchmark.extra_info["cold_first_ms"] = round(result.cold_first_s * 1e3, 4)
    benchmark.extra_info["warm_first_ms"] = round(result.warm_first_s * 1e3, 4)
    path = write_warmstart_report(result, HERE)
    benchmark.extra_info["report"] = str(path)

    # The warm-start contract: a fresh process is at steady state on its
    # first execution.
    assert result.warm_first_hit_kernel_cache
    assert result.warm_first_partition_misses == 0
    assert result.warm_first_trace_records == 0
    assert result.warm_first_trace_hits >= 1
    # Persistence is a wall-clock optimization, never a simulation change.
    assert result.metrics_bit_identical
    assert result.checksum_bit_identical
    # And it must actually pay off against a cold process.
    assert result.warmstart_speedup >= 2.0, (
        f"warm-start first execute only {result.warmstart_speedup:.2f}x "
        "faster than a cold process's"
    )
