"""Ablations the paper's text calls out (§II-B, §II-D, §VI-A, §VI-C)."""
import pytest

from repro.bench.figures import (
    ablation_distribution_mismatch,
    ablation_fusion,
    ablation_partition_tradeoff,
    ablation_row_vs_nonzero,
)
from conftest import run_once


@pytest.mark.benchmark(group="ablations")
def test_row_vs_nonzero_spmv(benchmark, cfg):
    r = run_once(benchmark, ablation_row_vs_nonzero, cfg, nodes=8)
    benchmark.extra_info["table"] = r.text
    # the non-zero split always pays reduction traffic; row-based never does
    assert all(d["nz_comm"] > 0 for d in r.data.values())


@pytest.mark.benchmark(group="ablations")
def test_partition_balance_tradeoff(benchmark, cfg):
    r = run_once(benchmark, ablation_partition_tradeoff, cfg, pieces=8)
    benchmark.extra_info["table"] = r.text
    for ds, d in r.data.items():
        assert d["nonzero_balance"] <= d["universe_balance"] + 0.05, ds


@pytest.mark.benchmark(group="ablations")
def test_fusion_vs_pairwise(benchmark, cfg):
    r = run_once(benchmark, ablation_fusion, cfg, nodes=4)
    benchmark.extra_info["table"] = r.text
    assert r.data["pairwise"] > 1.2 * r.data["fused"]


@pytest.mark.benchmark(group="ablations")
def test_distribution_mismatch(benchmark, cfg):
    r = run_once(benchmark, ablation_distribution_mismatch, cfg, nodes=4)
    benchmark.extra_info["table"] = r.text
    assert r.data["mismatched"][1] > r.data["matched"][1]  # reshaping bytes
