"""Iterative-solver benchmark: repeated SpMV with compile-once / run-many.

The scenario is CG-shaped: 100 iterations of ``x <- normalize(A @ x)``
re-entering the compiler every step (see
:mod:`repro.bench.iterative`).  It checks the amortization contract:

* iterations 2..N with caching enabled are >= 5x faster wall-clock than
  the seed path (fresh compile + full staging analysis every step), and
* the *simulated* metrics (seconds, communication events/bytes) are
  identical either way — caching speeds up the simulator, never changes
  what it simulates.

Each run also appends a ``BENCH_iterative_<timestamp>.json`` next to this
file; ``tools/bench_check.py`` compares a fresh run against the latest
one and fails on >20% regression of the cached steady-state time.
"""
from pathlib import Path

import numpy as np
import pytest

from repro.bench.iterative import run_iterative_spmv, write_bench_report
from repro.core import clear_caches

ITERATIONS = 100
HERE = Path(__file__).resolve().parent


@pytest.mark.benchmark(group="iterative")
def test_iterative_spmv_amortization(benchmark):
    clear_caches()
    cached = run_iterative_spmv(iterations=ITERATIONS, cached=True)
    clear_caches()
    uncached = run_iterative_spmv(iterations=ITERATIONS, cached=False)

    # pytest-benchmark times one steady-state (replayed) iteration.
    def one_more():
        return run_iterative_spmv(iterations=2, cached=True)

    benchmark.pedantic(one_more, rounds=1, iterations=1)
    speedup = uncached.wall_steady / cached.wall_steady
    benchmark.extra_info["steady_speedup"] = round(speedup, 2)
    benchmark.extra_info["cached_steady_ms"] = round(cached.wall_steady * 1e3, 4)
    benchmark.extra_info["uncached_steady_ms"] = round(uncached.wall_steady * 1e3, 4)
    path = write_bench_report(cached, uncached, HERE)
    benchmark.extra_info["report"] = str(path)

    # every repeat iteration hit the kernel cache and replayed its trace
    assert cached.kernel_cache_hits == ITERATIONS - 1
    assert cached.trace_hits == ITERATIONS - 1
    # the acceptance bar: steady-state >= 5x over the seed path
    assert speedup >= 5.0, f"steady-state speedup {speedup:.2f}x < 5x"
    # caching must not change the simulation
    assert cached.sim_seconds == pytest.approx(uncached.sim_seconds)
    assert cached.comm_events == uncached.comm_events
    assert cached.comm_bytes == pytest.approx(uncached.comm_bytes)
    assert cached.checksum == pytest.approx(uncached.checksum)
