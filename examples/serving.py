"""Multi-tenant serving: many callers, one warm compile substrate.

SpDISTAL's compile-once / run-many amortization usually serves one
session; ``repro.serve`` multiplexes *tenants* — concurrent callers
issuing einsum requests — over a pool of pre-warmed runtimes that share
the process-wide kernel cache, partition memo, decision table and AOT
registry.  Identical requests from different tenants single-flight to one
compile (and one autotune search); per-tenant byte budgets shed a tenant
flooding distinct compiles while cache hits stay free.

Run:  python examples/serving.py
"""
import threading

import numpy as np

import repro
from repro.data.matrices import power_law


def main():
    M = power_law(2000, 60_000, seed=1)
    rng = np.random.default_rng(0)
    x, C = rng.random(M.shape[1]), rng.random((M.shape[1], 8))

    # -- One server, three tenants, one shared catalog. ------------------------
    with repro.serve(nodes=4, workers=2, tune=True) as srv:
        srv.put_tensor("M", M, repro.CSR)
        srv.put_tensor("x", x)
        srv.put_tensor("y", rng.random(M.shape[1]))
        srv.put_tensor("C", C)

        # Three tenants race the same SpMV (plus one SpMM): the first
        # request per signature leads the build, everyone else shares it.
        results = {}

        def tenant(name):
            spmv = srv.submit("ij,j->i", "M", "x", tenant=name)
            spmm = srv.submit("ij,jk->ik", "M", "C", tenant=name)
            results[name] = (spmv.result(), spmm.result())

        threads = [threading.Thread(target=tenant, args=(f"tenant-{t}",))
                   for t in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        stats = srv.stats()
        print(f"{len(results) * 2} requests from {len(results)} tenants "
              f"-> {stats['compiles']} compile/tune builds "
              f"({stats['entries']} cached signatures)")
        for name, (spmv, spmm) in sorted(results.items()):
            lead = "led build" if spmv.compiled else "shared build"
            print(f"  {name}: spmv[{spmv.strategy}] "
                  f"{spmv.latency_s * 1e3:6.1f} ms ({lead}), "
                  f"spmm[{spmm.strategy}] {spmm.latency_s * 1e3:6.1f} ms")

        # every tenant got the bit-identical answer
        base = results["tenant-0"]
        assert all(np.array_equal(r[0].value, base[0].value)
                   and np.array_equal(r[1].value, base[1].value)
                   for r in results.values())
        assert np.allclose(base[0].value, M @ x), "served SpMV disagrees!"

        # -- Admission control: budget a noisy tenant. -------------------------
        # The noisy tenant leads one fresh build (an SpMV against a vector
        # nobody else asked about) and is charged the bytes it pinned...
        srv.submit("ij,j->i", "M", "y", tenant="noisy").result()
        charged = srv.tenant("noisy").charged_bytes
        srv.set_tenant_budget("noisy", charged)  # ...which is now its cap
        try:
            srv.submit("ij,ij->i", "M", "M", tenant="noisy")
            raise AssertionError("noisy tenant was admitted over budget")
        except repro.TenantBudgetError as e:
            print(f"admission control: {e}")
        # ...but cached signatures stay free for everyone
        free = srv.submit("ij,j->i", "M", "x", tenant="noisy").result()
        print(f"noisy tenant still rides the warm cache "
              f"({free.latency_s * 1e3:.1f} ms, charged "
              f"{srv.tenant('noisy').charged_bytes} bytes)")


if __name__ == "__main__":
    main()
