"""Quickstart: the paper's Fig. 1 — a distributed CPU SpMV in SpDISTAL.

Declares the machine, the sparse formats with their data distributions,
the computation in tensor index notation, and a row-based distribution
schedule; then compiles, runs, and reports the simulated execution.

Run:  python examples/quickstart.py
"""
import numpy as np

from repro.bench.models import default_config
from repro.data.matrices import power_law
from repro.distal import distribute
from repro.legion import Machine, Runtime
from repro.taco import CSR, Tensor, index_vars
from repro.core import compile_kernel


def main():
    cfg = default_config()
    pieces = 4

    # -- Define the machine M as a 1D grid of processors (Fig. 1, line 4).
    machine = Machine.cpu(pieces, cfg.node)
    runtime = Runtime(machine, cfg.legion_network())

    # -- Create tensors.  B is a CSR web-connectivity matrix; a and c are
    #    dense vectors (Fig. 1, lines 12-22).
    M = power_law(2000, 60_000, seed=1)
    B = Tensor.from_scipy("B", M, CSR)
    c = Tensor.from_dense("c", np.random.default_rng(0).random(M.shape[1]))
    a = Tensor.zeros("a", (M.shape[0],))

    # -- Data distributions via tensor distribution notation: block B and a
    #    row-wise onto M, replicate c (BlockedCSR / BlockedDense / ReplDense).
    distribute(B, "B(x, y) -> M(x)", machine, runtime)
    distribute(a, "a(x) -> M(x)", machine, runtime)
    distribute(c, "c(x) -> M(y)", machine, runtime)

    # -- Declare the computation: a(i) = B(i, j) * c(j)  (Fig. 1, line 26).
    i, j, io, ii = index_vars("i j io ii")
    a[i] = B[i, j] * c[j]

    # -- Map the computation onto M via scheduling commands (lines 30-39).
    sched = (
        a.schedule()
        .divide(i, io, ii, machine.x)   # block i for each node
        .distribute(io)                 # each block on a different node
        .communicate([a, B, c], io)     # fetch each piece's sub-tensors
        .parallelize(ii)                # CPU threads within the node
    )

    kernel = compile_kernel(sched, machine)
    print("Generated partitioning code:")
    print(kernel.plan.describe())
    print()

    kernel.execute(runtime)            # cold run: placement + staging
    result = kernel.execute(runtime)   # warm trial

    expected = M @ c.dense_array()
    assert np.allclose(a.vals.data, expected), "distributed SpMV disagrees!"
    print(f"SpMV on {M.shape[0]}x{M.shape[1]} matrix ({M.nnz:,} nnz), "
          f"{pieces} nodes:")
    print(f"  simulated time     : {result.simulated_seconds * 1e3:.3f} ms")
    print(f"  communication      : {result.metrics.total_comm_bytes():,.0f} bytes "
          f"(matched distribution -> none)")
    print(f"  tasks launched     : {result.metrics.total_tasks()}")
    print("  result verified against SciPy.")


if __name__ == "__main__":
    main()
