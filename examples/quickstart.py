"""Quickstart: the paper's Fig. 1 — a distributed CPU SpMV in SpDISTAL.

The Session front end synthesizes everything the statement does not pin
down: the machine comes from ``repro.session(nodes=4)``, the schedule from
the auto-scheduler (the paper's canonical divide → distribute →
communicate → parallelize mapping), and ``repro.einsum`` is the one-line
entry point.  A hand-built schedule remains available as an override — the
second half shows it producing bit-identical values *and* metrics.

Run:  python examples/quickstart.py
"""
import numpy as np

import repro
from repro.data.matrices import power_law


def main():
    M = power_law(2000, 60_000, seed=1)                # a web-connectivity CSR
    x = np.random.default_rng(0).random(M.shape[1])

    # -- The whole SpMV: one session, one einsum. ------------------------------
    with repro.session(nodes=4) as s:
        a = repro.einsum("ij,j->i", s.tensor("B", M, repro.CSR),
                         s.tensor("c", x), session=s)
        result = s.last_result

    assert np.allclose(a.vals.data, M @ x), "distributed SpMV disagrees!"
    print("Generated partitioning code (auto-scheduled):")
    print(result.plan.describe())
    print(f"\nSpMV on {M.shape[0]}x{M.shape[1]} matrix ({M.nnz:,} nnz), 4 nodes:")
    print(f"  simulated time     : {result.simulated_seconds * 1e3:.3f} ms")
    print(f"  communication      : {result.metrics.total_comm_bytes():,.0f} bytes")
    print("  result verified against SciPy.")

    # -- The explicit mapping is an override, not a prerequisite. --------------
    # The same statement with the paper's hand-written schedule (Fig. 1,
    # lines 30-39) compiles to the identical kernel: bit-identical values
    # and bit-identical simulated metrics.
    with repro.session(nodes=4) as s:
        B = s.tensor("B", M, repro.CSR)
        c = s.tensor("c", x)
        a2 = s.zeros("a", (M.shape[0],))
        i, j, io, ii = repro.index_vars("i j io ii")
        a2[i] = B[i, j] * c[j]
        sched = (a2.schedule()
                 .divide(i, io, ii, s.machine.x)  # block rows per node
                 .distribute(io)                  # one block per processor
                 .communicate([a2, B, c], io)     # move each piece's sub-tensors
                 .parallelize(ii))                # threads within a node
        s.execute(sched)                          # cold: placement + staging
        r2 = s.execute(sched)                     # warm trial

    assert np.array_equal(a2.vals.data, a.vals.data)
    assert r2.simulated_seconds == result.simulated_seconds
    print("\nHand-written schedule override: bit-identical values and metrics.")


if __name__ == "__main__":
    main()
