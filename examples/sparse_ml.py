"""Sparse machine learning: one step of graph-regularized factorization.

SpMM and SDDMM are the two kernels of sparse ML workloads (paper §VI-A):
SDDMM evaluates prediction errors only at observed entries, SpMM
propagates them through the graph against the feature matrix.  The SpMM
consumes the SDDMM's sparse product, so the program pass pipeline fuses
the chain into a single ``fused_sddmm_spmm`` statement — the intermediate
error matrix is never materialized as a resident region, and the
redistribution of its non-zeros between the two statements disappears
entirely.  The fused statement inherits the consumer's distribution, so
its results are bit-identical to the unfused chain's.

Run:  python examples/sparse_ml.py
"""
import numpy as np

import repro
from repro.data.matrices import rmat

NODES = 8
RANK = 16


def main():
    rng = np.random.default_rng(5)

    # Observed interaction graph (social-network-like skew).
    G = rmat(11, edge_factor=8, seed=2)
    n = G.shape[0]
    U = rng.random((n, RANK)) * 0.1  # user factors
    V = rng.random((RANK, n)) * 0.1  # item factors
    F_arr = rng.random((n, RANK))    # feature matrix

    with repro.session(nodes=NODES) as s:
        B = s.tensor("G", G, repro.CSR)          # shared by both statements
        Ut, Vt = s.tensor("U", U), s.tensor("V", V)
        F = s.tensor("F", F_arr)
        E = s.zeros("E", G.shape, repro.CSR)     # errors at observed entries
        H = s.zeros("H", (n, RANK))              # propagated errors

        i, j, k, i2, j2, k2 = repro.index_vars("i j k i2 j2 k2")
        with s.program() as step:                # lazy: captured, not compiled
            E[i, j] = B[i, j] * Ut[i, k] * Vt[k, j]      # SDDMM
            H[i2, k2] = E[i2, j2] * F[j2, k2]            # SpMM over the errors
        fused = step.compile()
        print("pass pipeline:")
        for rec in fused.passes:
            print(f"  {rec.describe()}")
        fused.execute(s.runtime)                 # cold: placement + staging
        rf = fused.execute(s.runtime)            # warm trial
        h_fused = H.dense_array().copy()

        # The same program with fusion disabled: E materializes and its
        # non-zeros are redistributed from the SDDMM's pieces to the
        # SpMM's row pieces — traffic the fused statement never pays.
        unfused = step.compile(fuse=False)
        unfused.execute(s.runtime)
        ru = unfused.execute(s.runtime)

    assert len(fused) == 1 and fused.kernels[0].kind == "fused_sddmm_spmm"
    assert np.allclose(E.to_dense(), G.multiply(U @ V).toarray())
    assert np.array_equal(h_fused, H.dense_array())  # fused == unfused, bitwise
    assert np.allclose(h_fused, G.multiply(U @ V) @ F_arr)

    sim_u = sum(r.simulated_seconds for r in ru.results)
    print(f"\nfused SDDMM→SpMM ({G.nnz:,} observed entries, rank {RANK}, "
          f"{NODES} nodes): {rf[0].simulated_seconds * 1e3:.2f} ms simulated, "
          f"{rf.total_comm_bytes():.0f} B warm communication")
    print(f"unfused chain:   {sim_u * 1e3:.2f} ms simulated, "
          f"{ru.total_comm_bytes():.0f} B warm communication "
          f"({E.name} materialized and redistributed)")
    print("\nfused and unfused outputs are bit-identical; the fused program "
          "never keeps E resident.")


if __name__ == "__main__":
    main()
