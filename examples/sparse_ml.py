"""Sparse machine learning: one step of graph-regularized factorization.

SpMM and SDDMM are the two kernels of sparse ML workloads (paper §VI-A):
SDDMM evaluates predictions only at observed entries, SpMM propagates
dense features through a sparse graph.  Both statements share the same
observation graph, so they are recorded into one lazy ``Program`` and
compiled together — the graph's partitions are derived once for the
program, and the auto-scheduler picks each statement's canonical mapping
(SDDMM: the paper's non-zero split, statically load balanced; SpMM:
row-based with CPU threads).

Run:  python examples/sparse_ml.py
"""
import numpy as np

import repro
from repro.data.matrices import rmat

NODES = 8
RANK = 16


def main():
    rng = np.random.default_rng(5)

    # Observed interaction graph (social-network-like skew).
    G = rmat(11, edge_factor=8, seed=2)
    n = G.shape[0]
    U = rng.random((n, RANK)) * 0.1  # user factors
    V = rng.random((RANK, n)) * 0.1  # item factors

    with repro.session(nodes=NODES) as s:
        B = s.tensor("G", G, repro.CSR)          # shared by both statements
        Ut, Vt = s.tensor("U", U), s.tensor("V", V)
        F = s.tensor("F", rng.random((n, RANK)))
        E = s.zeros("E", G.shape, repro.CSR)     # errors at observed entries
        H = s.zeros("H", (n, RANK))              # propagated features

        i, j, k, i2, k2, j2 = repro.index_vars("i j k i2 k2 j2")
        with s.program() as step:                # lazy: captured, not compiled
            E[i, j] = B[i, j] * Ut[i, k] * Vt[k, j]      # SDDMM
            H[i2, j2] = B[i2, k2] * F[k2, j2]            # SpMM
        step.run()                               # cold: placement + staging
        r = step.run()                           # warm trial
        r1, r2 = r[0], r[1]

    assert np.allclose(E.to_dense(), G.multiply(U @ V).toarray())
    assert np.allclose(H.dense_array(), G @ F.dense_array())
    print(f"SDDMM  ({G.nnz:,} observed entries, rank {RANK}, {NODES} nodes): "
          f"{r1.simulated_seconds * 1e3:.2f} ms simulated "
          f"[auto: non-zero split, perfectly balanced]")
    print(f"SpMM   (feature propagation, k={RANK}):                   "
          f"{r2.simulated_seconds * 1e3:.2f} ms simulated [auto: row-based]")

    imb = max(
        st.load_imbalance() for st in r1.metrics.steps if st.compute_seconds
    )
    print(f"\nSDDMM piece imbalance (max/mean): {imb:.3f} — the non-zero "
          "split stays balanced regardless of the graph's degree skew.")


if __name__ == "__main__":
    main()
