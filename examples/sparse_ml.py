"""Sparse machine learning: one step of graph-regularized factorization.

SpMM and SDDMM are the two kernels of sparse ML workloads (paper §VI-A):
SDDMM evaluates predictions only at observed entries, SpMM propagates
dense features through a sparse graph.  This example runs both on a
distributed machine, SDDMM with the paper's non-zero-based distribution
(statically load balanced) and SpMM row-based.

Run:  python examples/sparse_ml.py
"""
import numpy as np

from repro.bench.models import default_config
from repro.data.matrices import rmat
from repro.legion import Machine, Runtime
from repro.taco import CSR, Tensor, index_vars
from repro.core import compile_kernel

NODES = 8
RANK = 16


def main():
    rng = np.random.default_rng(5)
    cfg = default_config()
    machine = Machine.cpu(NODES, cfg.node)

    # Observed interaction graph (social-network-like skew).
    G = rmat(11, edge_factor=8, seed=2)
    n = G.shape[0]
    U = rng.random((n, RANK)) * 0.1  # user factors
    V = rng.random((RANK, n)) * 0.1  # item factors

    # --- SDDMM: errors at observed entries, E(i,j) = G(i,j)*U(i,k)*V(k,j).
    runtime = Runtime(machine, cfg.legion_network())
    B = Tensor.from_scipy("G", G, CSR)
    Ut = Tensor.from_dense("U", U)
    Vt = Tensor.from_dense("V", V)
    E = Tensor.zeros("E", G.shape, CSR)
    i, j, k, f, fp, fo, fi = index_vars("i j k f fp fo fi")
    E[i, j] = B[i, j] * Ut[i, k] * Vt[k, j]
    sddmm = compile_kernel(
        E.schedule().fuse(i, j, f).pos(f, fp, B[i, j])
        .divide(fp, fo, fi, machine.size).distribute(fo)
        .communicate([E, B, Ut, Vt], fo),
        machine,
    )
    sddmm.execute(runtime)
    r1 = sddmm.execute(runtime)
    expected = G.multiply(U @ V)
    assert np.allclose(E.to_dense(), expected.toarray())
    print(f"SDDMM  ({G.nnz:,} observed entries, rank {RANK}, {NODES} nodes): "
          f"{r1.simulated_seconds * 1e3:.2f} ms simulated "
          f"[non-zero split, perfectly balanced]")

    # --- SpMM: feature propagation, H(i,j) = G(i,k) * F(k,j).
    runtime2 = Runtime(machine, cfg.legion_network())
    B2 = Tensor.from_scipy("G2", G, CSR)
    F = Tensor.from_dense("F", rng.random((n, RANK)))
    H = Tensor.zeros("H", (n, RANK))
    i2, k2, j2, io, ii = index_vars("i2 k2 j2 io ii")
    H[i2, j2] = B2[i2, k2] * F[k2, j2]
    spmm = compile_kernel(
        H.schedule().divide(i2, io, ii, machine.size).distribute(io)
        .communicate([H, B2, F], io).parallelize(ii),
        machine,
    )
    spmm.execute(runtime2)
    r2 = spmm.execute(runtime2)
    assert np.allclose(H.dense_array(), G @ F.dense_array())
    print(f"SpMM   (feature propagation, k={RANK}):                   "
          f"{r2.simulated_seconds * 1e3:.2f} ms simulated [row-based]")

    imb = max(
        st.load_imbalance() for st in r1.metrics.steps if st.compute_seconds
    )
    print(f"\nSDDMM piece imbalance (max/mean): {imb:.3f} — the non-zero "
          "split stays balanced regardless of the graph's degree skew.")


if __name__ == "__main__":
    main()
