"""Graph analytics: PageRank on a distributed web-connectivity matrix.

The paper's introduction motivates sparse tensor algebra for data
analytics; PageRank is the canonical iterated-SpMV workload.  This example
compares the two SpMV distribution strategies of §II-D on a skewed web
graph — the auto-scheduler's row-based default, and the non-zero-based
algorithm requested as a one-argument override (``strategy="nonzeros"``;
a fully hand-built ``Schedule`` would work the same way).  Iterations
re-enter the compiler every step the way a solver library would; the
session's caches make steps 2..N replay.

Run:  python examples/graph_analytics.py
"""
import numpy as np

import repro
from repro.data.matrices import power_law

DAMPING = 0.85
NODES = 8
ITERS = 10


def build_transition(n=2500, nnz=80_000):
    """Column-stochastic transition matrix of a synthetic web graph."""
    A = power_law(n, nnz, alpha=1.7, seed=3).tocsc()
    out = np.maximum(A.sum(axis=0).A.ravel(), 1.0)
    A = A.multiply(1.0 / out).tocsr()
    return A


def pagerank(A, strategy):
    with repro.session(nodes=NODES) as s:
        B = s.tensor("B", A, repro.CSR)
        x = s.tensor("x", np.full(A.shape[1], 1.0 / A.shape[1]))
        y = s.zeros("y", (A.shape[0],))
        i, j = repro.index_vars("i j")
        y[i] = B[i, j] * x[j]
        sched = repro.auto_schedule(y, s.machine, strategy=strategy)

        n = A.shape[0]
        rank = np.full(n, 1.0 / n)
        total = comm = 0.0
        for _ in range(ITERS):
            x.vals.data[:] = rank
            res = s.execute(sched)  # per-iteration staging is re-paid
            rank = DAMPING * y.vals.data + (1 - DAMPING) / n
            total += res.simulated_seconds
            comm += res.metrics.total_comm_bytes()
        return rank, total, comm


def main():
    A = build_transition()
    ref = np.full(A.shape[0], 1.0 / A.shape[0])
    for _ in range(ITERS):
        ref = DAMPING * (A @ ref) + (1 - DAMPING) / A.shape[0]

    print(f"PageRank on {A.shape[0]:,}-page web graph ({A.nnz:,} links), "
          f"{NODES} nodes, {ITERS} iterations\n")
    for strategy in ("rows", "nonzeros"):
        rank, seconds, comm = pagerank(A, strategy)
        assert np.allclose(rank, ref), strategy
        print(f"  {strategy:9s}: {seconds * 1e3:8.2f} ms simulated, "
              f"{comm:10,.0f} bytes moved (verified)")
    print("\nRow-degree skew makes the row-based split imbalanced; the "
          "non-zero split balances work but pays boundary reductions "
          "(paper §II-D).")


if __name__ == "__main__":
    main()
