"""Graph analytics: PageRank on a distributed web-connectivity matrix.

The paper's introduction motivates sparse tensor algebra for data
analytics; PageRank is the canonical iterated-SpMV workload.  This example
compares the two SpMV distribution strategies of §II-D on a skewed web
graph: the row-based algorithm (imbalanced under hub rows) and the
non-zero-based algorithm (perfect balance at the price of reductions).

Run:  python examples/graph_analytics.py
"""
import numpy as np

from repro.bench.models import default_config
from repro.data.matrices import power_law
from repro.legion import Machine, Runtime
from repro.taco import CSR, Tensor, index_vars
from repro.core import compile_kernel

DAMPING = 0.85
NODES = 8
ITERS = 10


def build_transition(n=2500, nnz=80_000):
    """Column-stochastic transition matrix of a synthetic web graph."""
    A = power_law(n, nnz, alpha=1.7, seed=3).tocsc()
    out = np.maximum(A.sum(axis=0).A.ravel(), 1.0)
    A = A @ np.ones(1)[0] if False else A  # keep CSC
    A = A.multiply(1.0 / out).tocsr()
    return A


def compile_spmv(A, strategy, machine):
    B = Tensor.from_scipy("B", A, CSR)
    x = Tensor.from_dense("x", np.full(A.shape[1], 1.0 / A.shape[1]))
    y = Tensor.zeros("y", (A.shape[0],))
    i, j = index_vars("i j")
    y[i] = B[i, j] * x[j]
    if strategy == "rows":
        io, ii = index_vars("io ii")
        s = (y.schedule().divide(i, io, ii, machine.size).distribute(io)
             .communicate([y, B, x], io).parallelize(ii))
    else:
        f, fp, fo, fi = index_vars("f fp fo fi")
        s = (y.schedule().fuse(i, j, f).pos(f, fp, B[i, j])
             .divide(fp, fo, fi, machine.size).distribute(fo)
             .communicate([y, B, x], fo))
    return compile_kernel(s, machine), x, y


def pagerank(A, strategy):
    cfg = default_config()
    machine = Machine.cpu(NODES, cfg.node)
    runtime = Runtime(machine, cfg.legion_network())
    kernel, x, y = compile_spmv(A, strategy, machine)
    n = A.shape[0]
    rank = np.full(n, 1.0 / n)
    total = 0.0
    comm = 0.0
    for _ in range(ITERS):
        x.vals.data[:] = rank
        res = kernel.execute(runtime)  # per-iteration staging is re-paid
        rank = DAMPING * y.vals.data + (1 - DAMPING) / n
        total += res.simulated_seconds
        comm += res.metrics.total_comm_bytes()
    return rank, total, comm


def main():
    A = build_transition()
    ref = np.full(A.shape[0], 1.0 / A.shape[0])
    for _ in range(ITERS):
        ref = DAMPING * (A @ ref) + (1 - DAMPING) / A.shape[0]

    print(f"PageRank on {A.shape[0]:,}-page web graph ({A.nnz:,} links), "
          f"{NODES} nodes, {ITERS} iterations\n")
    for strategy in ("rows", "nonzeros"):
        rank, seconds, comm = pagerank(A, strategy)
        assert np.allclose(rank, ref), strategy
        print(f"  {strategy:9s}: {seconds * 1e3:8.2f} ms simulated, "
              f"{comm:10,.0f} bytes moved (verified)")
    print("\nRow-degree skew makes the row-based split imbalanced; the "
          "non-zero split balances work but pays boundary reductions "
          "(paper §II-D).")


if __name__ == "__main__":
    main()
