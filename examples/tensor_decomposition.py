"""Tensor decomposition: CP-ALS factor updates via distributed SpMTTKRP.

Tensor factorizations in data analytics are the paper's motivation for
SpTTV/SpMTTKRP (§VI-A).  This example runs the MTTKRP at the heart of one
CP-ALS sweep over a FROSTT-like 3-tensor, for every mode, on 8 simulated
nodes, and cross-checks against dense einsum.

Run:  python examples/tensor_decomposition.py
"""
import numpy as np

from repro.bench.models import default_config
from repro.data.tensors import frostt_like
from repro.legion import Machine, Runtime
from repro.taco import CSF3, Tensor, index_vars
from repro.core import compile_kernel

NODES = 8
RANK = 12


def mttkrp_mode0(T, C, D, machine, runtime):
    """A(i,r) = sum_{j,k} T(i,j,k) C(j,r) D(k,r), distributed row-based."""
    Ct = Tensor.from_dense("C", C)
    Dt = Tensor.from_dense("D", D)
    A = Tensor.zeros("A", (T.shape[0], C.shape[1]))
    i, j, k, r, io, ii = index_vars("i j k r io ii")
    A[i, r] = T[i, j, k] * Ct[j, r] * Dt[k, r]
    kernel = compile_kernel(
        A.schedule().divide(i, io, ii, machine.size).distribute(io)
        .communicate([A, T, Ct, Dt], io).parallelize(ii),
        machine,
    )
    kernel.execute(runtime)
    res = kernel.execute(runtime)
    return A.dense_array().copy(), res


def main():
    rng = np.random.default_rng(9)
    cfg = default_config()
    machine = Machine.cpu(NODES, cfg.node)

    coords, vals, shape = frostt_like((600, 450, 300), 40_000, seed=4)
    dense = np.zeros(shape)
    np.add.at(dense, tuple(coords), vals)

    factors = [rng.random((s, RANK)) for s in shape]
    mode_names = "ijk"
    print(f"CP-ALS MTTKRP sweep on a {shape} tensor "
          f"({vals.size:,} nnz, rank {RANK}, {NODES} nodes)\n")

    total = 0.0
    for mode in range(3):
        # Rotate the tensor so the updated mode is first (CSF stores the
        # outer mode dense) — the standard CP-ALS formulation.
        perm = [mode] + [m for m in range(3) if m != mode]
        T = Tensor.from_coo(
            "T", [coords[p] for p in perm], vals,
            tuple(shape[p] for p in perm), CSF3,
        )
        C = factors[perm[1]]
        D = factors[perm[2]]
        runtime = Runtime(machine, cfg.legion_network())
        got, res = mttkrp_mode0(T, C, D, machine, runtime)
        expected = np.einsum(
            "ijk,jr,kr->ir", np.transpose(dense, perm), C, D
        )
        assert np.allclose(got, expected), f"mode {mode}"
        total += res.simulated_seconds
        print(f"  mode {mode_names[mode]}: {res.simulated_seconds * 1e3:8.2f} ms "
              f"simulated, {res.metrics.total_comm_bytes():8,.0f} bytes "
              "(verified)")
        # In a real ALS we would now solve for factors[mode]; the MTTKRP
        # dominates the cost, so we sweep without the least-squares solve.

    print(f"\nFull MTTKRP sweep: {total * 1e3:.2f} ms simulated.")


if __name__ == "__main__":
    main()
