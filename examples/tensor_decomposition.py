"""Tensor decomposition: CP-ALS factor updates via distributed SpMTTKRP.

Tensor factorizations in data analytics are the paper's motivation for
SpTTV/SpMTTKRP (§VI-A).  This example runs the MTTKRP at the heart of one
CP-ALS sweep over a FROSTT-like 3-tensor, for every mode, on 8 simulated
nodes, and cross-checks against dense einsum.  Each mode's update is one
``session.execute`` over an auto-scheduled higher-order statement — the
synthesized mapping is the paper's row-based CPU schedule.

Run:  python examples/tensor_decomposition.py
"""
import numpy as np

import repro
from repro.data.tensors import frostt_like

NODES = 8
RANK = 12


def main():
    rng = np.random.default_rng(9)
    coords, vals, shape = frostt_like((600, 450, 300), 40_000, seed=4)
    dense = np.zeros(shape)
    np.add.at(dense, tuple(coords), vals)

    factors = [rng.random((s, RANK)) for s in shape]
    mode_names = "ijk"
    print(f"CP-ALS MTTKRP sweep on a {shape} tensor "
          f"({vals.size:,} nnz, rank {RANK}, {NODES} nodes)\n")

    total = 0.0
    with repro.session(nodes=NODES) as s:
        for mode in range(3):
            # Rotate the tensor so the updated mode is first (CSF stores the
            # outer mode dense) — the standard CP-ALS formulation.
            perm = [mode] + [m for m in range(3) if m != mode]
            T = s.from_coo(
                "T", [coords[p] for p in perm], vals,
                tuple(shape[p] for p in perm), repro.CSF3,
            )
            C, D = factors[perm[1]], factors[perm[2]]
            A = repro.einsum("ijk,jr,kr->ir", T, s.tensor("C", C),
                             s.tensor("D", D), session=s, name="A")
            res = s.last_result
            expected = np.einsum(
                "ijk,jr,kr->ir", np.transpose(dense, perm), C, D
            )
            assert np.allclose(A.dense_array(), expected), f"mode {mode}"
            total += res.simulated_seconds
            print(f"  mode {mode_names[mode]}: "
                  f"{res.simulated_seconds * 1e3:8.2f} ms simulated, "
                  f"{res.metrics.total_comm_bytes():8,.0f} bytes (verified)")
            # In a real ALS we would now solve for factors[mode]; the MTTKRP
            # dominates the cost, so we sweep without the least-squares solve.

    print(f"\nFull MTTKRP sweep: {total * 1e3:.2f} ms simulated.")


if __name__ == "__main__":
    main()
