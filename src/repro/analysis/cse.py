"""Proven-safe common-subexpression collapse.

This module is the analyzer-derived replacement for the pattern-matched
reuse map that used to live inline in ``core.program``: given the
scheduled statements of a program, decide which later statements are
satisfied by an earlier identical one, and — new — explain every
*blocked* collapse as a typed :class:`~repro.errors.IllegalCSE`
diagnostic with full provenance (the root occurrence, the interleaved
write that invalidated it, and the tensor that carried the conflict).

The legality rules are exactly the executed semantics:

* two statements are candidates when their kernel fingerprints coincide
  (same canonical statement, schedule, tensor identities, pattern
  versions and machine);
* accumulating statements (``+=`` changes the output each execution) and
  assembled outputs (SpAdd re-builds its pattern; the fingerprint
  deliberately ignores the LHS version) never collapse;
* a statement writing tensor T invalidates every recorded subexpression
  that touches T — except the subexpression the writer itself repeats,
  whose values it reproduces bit-for-bit.

``compile_program(cse=True)`` consults :func:`cse_reuse_map`, so the
collapse decision is *proven* from privilege/fingerprint facts rather
than re-derived ad hoc, and ``Program.analyze()`` surfaces the same
facts as diagnostics.
"""
from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core import cache as _cache
from ..errors import IllegalCSE
from .report import Diagnostic, Provenance

__all__ = ["cse_reuse_map"]


def cse_reuse_map(
    schedules: Sequence, machine
) -> Tuple[List[Optional[int]], List[Diagnostic]]:
    """(reuse map, blocked-collapse diagnostics) for a program.

    The reuse map lists, per statement, the index of the earlier
    identical statement whose execution satisfies it (or None); indices
    always point at the root occurrence, which is the one that executes.
    Diagnostics are warning-severity: a blocked collapse is not a program
    error, it just must execute — the diagnostic documents *why*.
    """
    reuse: List[Optional[int]] = [None] * len(schedules)
    live: Dict = {}    # fingerprint -> index of the executing occurrence
    killed: Dict = {}  # fingerprint -> (root, killer index, tensor name)
    diagnostics: List[Diagnostic] = []
    for n, sched in enumerate(schedules):
        asg = sched.assignment
        try:
            fp = _cache.kernel_fingerprint(sched, machine)
        except _cache.Unfingerprintable:
            fp = None
        eligible = (
            fp is not None
            and not asg.accumulate
            and not _cache.is_assembled_output(asg)
        )
        if eligible and fp in live:
            reuse[n] = live[fp]
        elif eligible and fp in killed:
            root, killer, tname = killed[fp]
            diagnostics.append(Diagnostic(
                severity="warning",
                error_type=IllegalCSE,
                message=(
                    f"identical to statement {root} but statement {killer} "
                    f"wrote {tname} in between — the repeated occurrence "
                    "reads different values and must execute"
                ),
                provenance=Provenance(
                    statement=n,
                    statement_repr=repr(asg),
                    tensor=tname,
                    related_statement=killer,
                ),
            ))
        # This statement writes its LHS: any recorded subexpression reading
        # (or writing) that tensor is stale for statements after n — except
        # the one n itself repeats, whose values n reproduces bit-for-bit.
        written = asg.lhs.tensor
        for f in [f for f, m in live.items() if f != fp and any(
            t is written for t in schedules[m].assignment.tensors()
        )]:
            killed[f] = (live[f], n, written.name)
            del live[f]
        if eligible and fp not in live:
            live[fp] = n
            killed.pop(fp, None)
    return reuse, diagnostics
