"""Analysis reports: typed diagnostics with statement/loop-var provenance.

An :class:`AnalysisReport` is what ``Program.analyze()`` (and the core
:func:`repro.analysis.analyze_program`) returns: the per-statement
privilege sets, the statement dependence graph, and a list of
:class:`Diagnostic` findings.  Each diagnostic names its typed error
class from the :mod:`repro.errors` taxonomy (``WriteHazard``,
``IllegalCSE``, ``UnsupportedEinsum``) and carries a
:class:`Provenance` chain — statement index and repr, the tensor, and
the loop variables involved with their derived → underlying provenance —
so a rejected program points at exactly where the hazard lives.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Type

from ..errors import AnalysisError

__all__ = ["Provenance", "Diagnostic", "AnalysisReport"]


@dataclass(frozen=True)
class Provenance:
    """Where a diagnostic is anchored in the analyzed program."""

    statement: int  #: 0-based program position
    statement_repr: str
    tensor: Optional[str] = None
    #: involved loop variables; derived variables render their underlying
    #: chain as ``"fo<-i,j"`` (derived ``<-`` the originals it ranges over).
    loop_vars: Tuple[str, ...] = ()
    #: a second statement the finding relates to (CSE root, clobberer, …)
    related_statement: Optional[int] = None

    def __str__(self) -> str:
        parts = [f"statement {self.statement}: {self.statement_repr}"]
        if self.tensor is not None:
            parts.append(f"tensor {self.tensor}")
        if self.loop_vars:
            parts.append("vars " + ", ".join(self.loop_vars))
        if self.related_statement is not None:
            parts.append(f"with statement {self.related_statement}")
        return "; ".join(parts)


@dataclass
class Diagnostic:
    """One typed finding of the analyzer."""

    severity: str  #: "error" (compile would misbehave) or "warning"
    error_type: Type[AnalysisError]
    message: str
    provenance: Provenance

    def to_error(self) -> AnalysisError:
        """Instantiate the typed error this diagnostic describes."""
        return self.error_type(self.message, self.provenance)

    def __str__(self) -> str:
        return (f"{self.severity}[{self.error_type.__name__}] "
                f"{self.message} [{self.provenance}]")


@dataclass
class AnalysisReport:
    """The outcome of statically analyzing one program."""

    privileges: List = field(default_factory=list)
    graph: Optional[object] = None  #: :class:`repro.analysis.hazards.DependenceGraph`
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: per statement, the earlier identical statement CSE may collapse it
    #: into (None where it must execute) — what ``compile_program`` consults.
    reuse_map: List[Optional[int]] = field(default_factory=list)
    #: with ``analyze_program(..., cost=True)``: per statement, the
    #: statically predicted metrics signature
    #: (:class:`repro.analysis.commplan.MetricsSignature`), or None where
    #: the statement is CSE-collapsed or could not be compiled.
    predictions: List[Optional[object]] = field(default_factory=list)
    #: what the compile-time pass pipeline (:mod:`repro.core.passes`) would
    #: do to this program — fold/dse/fuse :class:`PassRecord` entries with
    #: statement provenance, in pass order.
    passes: List = field(default_factory=list)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostic was found."""
        return not self.errors

    def raise_errors(self) -> None:
        """Raise the first error-severity diagnostic as its typed error."""
        for d in self.errors:
            raise d.to_error()

    def diagnostics_of(self, error_type: Type[AnalysisError]
                       ) -> List[Diagnostic]:
        """Diagnostics of one typed-error class (errors and warnings)."""
        return [d for d in self.diagnostics if d.error_type is error_type]

    def describe(self) -> str:
        """A human-readable rendering of the whole report."""
        lines = [p.describe() for p in self.privileges]
        if self.graph is not None:
            lines.append(self.graph.describe())
        lines.extend(rec.describe() for rec in self.passes)
        lines.extend(str(d) for d in self.diagnostics)
        if not self.diagnostics:
            lines.append("no diagnostics")
        return "\n".join(lines)
