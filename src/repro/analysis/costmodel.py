"""Static cost model: price a communication plan without executing.

The companion to :mod:`repro.analysis.commplan`: where the planner
derives *what moves*, this module derives *what it costs*.  Leaf compute
is predicted by per-(kernel × strategy) :class:`~repro.legion.machine.Work`
formulas that read only the packed operands' **pattern** (rect-``pos``
arrays, level sizes — never the values), mirroring exactly what the real
leaf kernels in :mod:`repro.kernels` report; communication and overheads
are priced by running the planner's mirror and folding its steps through
the very same :meth:`~repro.legion.metrics.ExecutionMetrics.simulated_seconds`
the simulator uses.

For the specialized kernels (SpMV/SpMM/SDDMM/SpTTV/SpMTTKRP and SpAdd
assembly) the Work formulas are exact — a predicted cost equals the
simulated seconds of a real isolated trial, which is what lets
``Session.autotune(prune=True)`` rank candidate strategies statically
and trial-execute only the predicted best.  The generic COO engine's
work depends on intermediate result sizes, so its estimate is
approximate and :attr:`CostEstimate.exact` is False.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from ..errors import OOMError
from ..legion.machine import Work
from ..legion.metrics import ExecutionMetrics
from ..legion.network import Network
from ..legion.runtime import Runtime
from .commplan import (
    CommPlan, MetricsSignature, WorkModel, _mirror_kernel, _plan_of,
    _seed_tdn_homes,
)

__all__ = ["CostEstimate", "kernel_work_model", "predict_cost"]

F8 = 8


@dataclass
class CostEstimate:
    """The statically predicted cost of one compiled statement."""

    strategy: str
    seconds: float  #: predicted simulated seconds of one isolated trial
    comm_bytes: float
    signature: Optional[MetricsSignature] = None
    plan: Optional[CommPlan] = None
    #: True when the Work model mirrors the leaf exactly (specialized
    #: kernels on packed operands); False for the generic engine's estimate.
    exact: bool = True
    oom: bool = False

    @property
    def ok(self) -> bool:
        return not self.oom and np.isfinite(self.seconds)


def _rows_nnz(pos: np.ndarray, r0: int, r1: int) -> int:
    """nnz of rows [r0, r1] the way the row-based leaves count it."""
    lo = pos[r0 : r1 + 1, 0]
    hi = pos[r0 : r1 + 1, 1]
    return int(np.maximum(hi - lo + 1, 0).sum())


def _row_of(starts: np.ndarray, p: int) -> int:
    from ..kernels.segment import row_of_positions

    return int(row_of_positions(starts, np.asarray([p], dtype=np.int64))[0])


def kernel_work_model(ck) -> Tuple[WorkModel, bool]:
    """A (work model, exact?) pair for a compiled kernel.

    The model maps ``(phase, piece)`` to the :class:`Work` the leaf task
    for that piece will return, derived purely from the operands' packed
    pattern.  ``exact`` is True when the formulas mirror the leaf
    kernel's own accounting.
    """
    kind, strategy = ck.kind, ck.strategy
    if kind == "spmv":
        pos, _crd, _vals = ck.roles["B"].tensor.csr_arrays()
        if strategy == "nonzeros":

            def work(_phase, p) -> Work:
                p0, p1 = p.pos
                if p1 < p0:
                    return Work.zero()
                nnz = p1 - p0 + 1
                span = _row_of(pos[:, 0], p1) - _row_of(pos[:, 0], p0) + 1
                return Work(2.0 * nnz, float(nnz * 3 * F8 + span * 2 * F8))

        else:

            def work(_phase, p) -> Work:
                r0, r1 = p.rows
                if r1 < r0:
                    return Work.zero()
                nnz = _rows_nnz(pos, r0, r1)
                if nnz == 0:
                    return Work(0.0, (r1 - r0 + 1) * F8)
                return Work(
                    2.0 * nnz, float(nnz * 3 * F8 + (r1 - r0 + 1) * 2 * F8)
                )

        return work, True

    if kind == "spmm":
        pos, _crd, _vals = ck.roles["B"].tensor.csr_arrays()
        full_k = ck.roles["C"].tensor.shape[1]
        if strategy == "nonzeros":

            def work(_phase, p) -> Work:
                p0, p1 = p.pos
                if p1 < p0:
                    return Work.zero()
                nnz = p1 - p0 + 1
                span = _row_of(pos[:, 0], p1) - _row_of(pos[:, 0], p0) + 1
                return Work(
                    2.0 * nnz * full_k,
                    float(nnz * (2 * F8 + F8 * full_k) + span * full_k * F8),
                )

        else:

            def work(_phase, p) -> Work:
                r0, r1 = p.rows
                if r1 < r0:
                    return Work.zero()
                k = p.cols[1] - p.cols[0] + 1 if p.cols is not None else full_k
                nnz = int(pos[r1, 1]) + 1 - int(pos[r0, 0])
                return Work(
                    2.0 * nnz * k,
                    float(nnz * (2 * F8 + F8 * k) + (r1 - r0 + 1) * k * F8),
                )

        return work, True

    if kind == "sddmm":
        pos, _crd, _vals = ck.roles["B"].tensor.csr_arrays()
        k = ck.roles["C"].tensor.shape[1]

        def sddmm_span(p0: int, p1: int) -> Work:
            if p1 < p0:
                return Work.zero()
            nnz = p1 - p0 + 1
            return Work(2.0 * nnz * k + nnz, float(nnz * (2 * k + 4) * F8))

        if strategy == "nonzeros":
            return (lambda _phase, p: sddmm_span(p.pos[0], p.pos[1])), True

        def work(_phase, p) -> Work:
            r0, r1 = p.rows
            if r1 < r0:
                return Work.zero()
            return sddmm_span(int(pos[r0, 0]), int(pos[r1, 1]))

        return work, True

    if kind in ("spttv", "spmttkrp"):
        return _fiber_work_model(ck), True

    if kind == "spadd":
        return _spadd_work_model(ck), True

    return _generic_work_model(ck), False


def _fiber_work_model(ck) -> WorkModel:
    from ..core.compiler import _fiber_arrays

    B = ck.roles["B"].tensor
    pos2, _crd2, fibers_of_rows = _fiber_arrays(B)
    kind, strategy = ck.kind, ck.strategy
    if kind == "spttv":

        def fiber_span(f0: int, f1: int) -> Work:
            if f1 < f0:
                return Work.zero()
            nnz = _rows_nnz(pos2, f0, f1)
            if nnz == 0:
                return Work(0.0, (f1 - f0 + 1) * F8)
            return Work(2.0 * nnz, float(nnz * 3 * F8 + (f1 - f0 + 1) * 2 * F8))

        if strategy == "nonzeros":

            def work(_phase, p) -> Work:
                p0, p1 = p.pos
                if p1 < p0:
                    return Work.zero()
                nnz = p1 - p0 + 1
                span = _row_of(pos2[:, 0], p1) - _row_of(pos2[:, 0], p0) + 1
                return Work(2.0 * nnz, float(nnz * 3 * F8 + span * 2 * F8))

            return work

        def work(_phase, p) -> Work:
            r0, r1 = p.rows
            if r1 < r0:
                return Work.zero()
            return fiber_span(*fibers_of_rows(r0, r1))

        return work

    # spmttkrp
    l = ck.roles["C"].tensor.shape[1]
    lvl1 = B.levels[1]
    from ..taco.tensor import CompressedLevel

    csf = isinstance(lvl1, CompressedLevel)
    pos1 = lvl1.pos.data if csf else None
    n1 = None if csf else lvl1.size

    def i_of_fiber(f: int) -> int:
        return _row_of(pos1[:, 0], f) if csf else f // n1

    def mttkrp_span(p0: int, p1: int) -> Work:
        if p1 < p0:
            return Work.zero()
        nnz = p1 - p0 + 1
        i0 = i_of_fiber(_row_of(pos2[:, 0], p0))
        i1 = i_of_fiber(_row_of(pos2[:, 0], p1))
        return Work(
            3.0 * nnz * l,
            float(nnz * (2 * l + 3) * F8 + (i1 - i0 + 1) * l * F8),
        )

    if ck.strategy == "nonzeros":
        return lambda _phase, p: mttkrp_span(p.pos[0], p.pos[1])

    def work(_phase, p) -> Work:
        r0, r1 = p.rows
        if r1 < r0:
            return Work.zero()
        f0, f1 = fibers_of_rows(r0, r1)
        if f1 < f0:
            return Work.zero()
        return mttkrp_span(int(pos2[f0, 0]), int(pos2[f1, 1]))

    return work


def _spadd_work_model(ck) -> WorkModel:
    out = ck.out
    _nrows, ncols = out.shape
    operand_tensors = [o.tensor for o in ck.operands]
    if ck.schedule.assignment.accumulate and all(
        t is not out for t in operand_tensors
    ):
        operand_tensors.append(out)
    metas = [(t.levels[1].pos.data, t.levels[1].crd.data) for t in operand_tensors]

    def rows_keys(r0: int, r1: int):
        keys, touched = [], 0
        for pos, crd in metas:
            lo = pos[r0 : r1 + 1, 0]
            hi = pos[r0 : r1 + 1, 1]
            lens = np.maximum(hi - lo + 1, 0)
            n = int(lens.sum())
            if n:
                s = int(lo[0])
                rows = np.repeat(np.arange(r0, r1 + 1, dtype=np.int64), lens)
                keys.append(rows * ncols + crd[s : s + n])
                touched += n
        return keys, touched

    def work(phase, p) -> Work:
        r0, r1 = p.rows
        if r1 < r0:
            return Work.zero()
        keys, touched = rows_keys(r0, r1)
        if not keys:
            return Work(0.0, 0.0) if phase == "spadd:symbolic" else Work.zero()
        if phase == "spadd:symbolic":
            return Work(float(touched), float(touched * 2 * F8))
        uniq = int(np.unique(np.concatenate(keys)).size)
        return Work(
            float(touched), float(touched * 3 * F8 + uniq * 2 * F8)
        )

    return work


def _generic_work_model(ck) -> WorkModel:
    """A rough estimate for the generic COO engine (its real work depends
    on intermediate result sizes): the statement's stored entries spread
    evenly across pieces, at the engine's 24-bytes-per-touched-entry."""
    touched = 0
    for part in ck.parts.values():
        t = part.tensor
        if t is ck.out:
            continue
        touched += t.nnz if not t.format.is_all_dense() else int(
            np.prod(t.shape)
        )
    per_piece = float(touched) / max(1, len(ck.pieces))

    def work(_phase, _p) -> Work:
        return Work(2.0 * per_piece, per_piece * 24.0)

    return work


def predict_cost(
    ck,
    *,
    network: Optional[Network] = None,
    runtime: Optional[Runtime] = None,
) -> CostEstimate:
    """Statically predict one isolated trial's simulated seconds.

    Runs the communication planner's mirror with the kernel's Work model
    and prices the resulting steps through the same
    :meth:`~repro.legion.metrics.ExecutionMetrics.simulated_seconds`
    the simulator itself folds — compute, receiver-side communication
    serialization, task and sync overheads.  A plan that exceeds a
    processor's memory comes back with ``oom=True`` and infinite seconds
    instead of raising, so autotune ranking can sink it.
    """
    work, exact = kernel_work_model(ck)
    rt = Runtime(ck.machine, network)
    _seed_tdn_homes(ck, rt, runtime)
    try:
        steps = _mirror_kernel(ck, rt, work)
    except OOMError:
        return CostEstimate(
            strategy=ck.strategy, seconds=float("inf"), comm_bytes=0.0,
            exact=exact, oom=True,
        )
    plan = _plan_of(ck, steps, rt)
    metrics = ExecutionMetrics(steps=list(steps))
    return CostEstimate(
        strategy=ck.strategy,
        seconds=metrics.simulated_seconds(rt.network),
        comm_bytes=metrics.total_comm_bytes(),
        signature=plan.signature,
        plan=plan,
        exact=exact,
    )
