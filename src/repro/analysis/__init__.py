"""Static analysis over programs and stored artifacts.

Three coordinated layers (see ``docs/analysis.md``):

* **privileges + hazards** — per-statement read/write privilege sets
  (tensor × mode, with the accumulate / assembled-output distinctions
  the execution engine makes), RAW/WAR/WAW dependence graph, and typed
  ``WriteHazard`` / ``UnsupportedEinsum`` diagnostics;
* **cse** — proven-safe common-subexpression collapse: the reuse map
  ``compile_program(cse=True)`` executes, plus ``IllegalCSE``
  diagnostics explaining every blocked collapse;
* **sanitizer** — the AST allowlist that guards every exec-load of
  store-seeded AOT kernel source.

:func:`analyze_program` is the one-call entry; the high-level
``repro.Program.analyze()`` wraps it.
"""
from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.passes import PassRecord, PipelinePlan, pipeline_plan
from ..errors import (
    AnalysisError, IllegalCSE, IncoherentDistribution, MissingCommunicate,
    RedundantCommunicate, SanitizerError, UnsupportedEinsum, WriteHazard,
)
from .commplan import (
    CommPlan, MetricsSignature, commplan_diagnostics, communication_plan,
    measured_signature, predict_metrics,
)
from .costmodel import CostEstimate, kernel_work_model, predict_cost
from .cse import cse_reuse_map
from .hazards import Dependence, DependenceGraph, build_graph, detect_hazards
from .privileges import (
    StatementPrivileges, TensorUse, program_privileges, statement_privileges,
)
from .report import AnalysisReport, Diagnostic, Provenance
from .sanitizer import (
    ALLOWED_IMPORT_ROOTS, FORBIDDEN_NAMES, aot_trusted, verify_aot_source,
)

__all__ = [
    "AnalysisReport", "Diagnostic", "Provenance",
    "TensorUse", "StatementPrivileges",
    "statement_privileges", "program_privileges",
    "Dependence", "DependenceGraph", "build_graph", "detect_hazards",
    "cse_reuse_map", "analyze_program",
    "PassRecord", "PipelinePlan", "pipeline_plan",
    "CommPlan", "MetricsSignature", "predict_metrics", "communication_plan",
    "measured_signature", "commplan_diagnostics",
    "CostEstimate", "kernel_work_model", "predict_cost",
    "aot_trusted", "verify_aot_source",
    "ALLOWED_IMPORT_ROOTS", "FORBIDDEN_NAMES",
    "AnalysisError", "WriteHazard", "IllegalCSE", "UnsupportedEinsum",
    "RedundantCommunicate", "MissingCommunicate", "IncoherentDistribution",
    "SanitizerError",
]


def analyze_program(
    targets: Sequence, machine=None, *, cost: bool = False, runtime=None,
) -> AnalysisReport:
    """Statically analyze a program (a sequence of schedules/assignments).

    Returns the full :class:`AnalysisReport`: privilege sets, dependence
    graph, WriteHazard / UnsupportedEinsum / IllegalCSE diagnostics, and
    the CSE reuse map ``compile_program`` consults.  Never executes or
    compiles anything.

    With ``cost=True`` the static communication planner additionally runs
    over each statement: schedules are *compiled* (through the ordinary
    kernel cache — still nothing executes), ``report.predictions`` holds
    each statement's predicted metrics signature, and the diagnostics
    gain the planner's coherence findings (redundant/missing
    ``communicate`` placements, privilege-incoherent distributions).
    Statements the compiler rejects are skipped — the hazard analyzer
    already reports them as ``UnsupportedEinsum``.  Pass ``runtime`` when
    tensors were placed by ``repro.distal`` so the planner sees their
    real home placements.
    """
    from ..legion.machine import Machine
    from ..taco.schedule import Schedule

    if machine is None:
        machine = Machine.cpu(1)
    schedules = [
        t if isinstance(t, Schedule) else Schedule(t) for t in targets
    ]
    privs = program_privileges(schedules)
    report = AnalysisReport(
        privileges=privs,
        graph=build_graph(privs),
        diagnostics=detect_hazards(privs),
    )
    if len(schedules) > 1:
        reuse, cse_diags = cse_reuse_map(schedules, machine)
        report.reuse_map = reuse
        report.diagnostics.extend(cse_diags)
    else:
        report.reuse_map = [None] * len(schedules)
    try:
        # What the compile-time pass pipeline would do — reported for
        # provenance only; the report's privileges/hazards/reuse facts
        # describe the *source* program the user wrote.
        report.passes = list(pipeline_plan(schedules, machine).records)
    except Exception:
        # Analysis stays usable for programs the pipeline cannot model
        # (e.g. statements the classifier rejects mid-fusion-probe); the
        # hazard diagnostics above already explain those.
        report.passes = []
    if cost:
        from ..errors import CompileError, OOMError, ScheduleError
        from .commplan import communication_plan, commplan_diagnostics

        for n, sched in enumerate(schedules):
            if report.reuse_map[n] is not None:
                report.predictions.append(None)
                continue
            try:
                plan = communication_plan(sched, machine, runtime=runtime)
            except (CompileError, ScheduleError, OOMError):
                # rejected schedules are already UnsupportedEinsum findings;
                # an OOMing plan has no signature to report.
                report.predictions.append(None)
                continue
            report.predictions.append(plan.signature)
            report.diagnostics.extend(commplan_diagnostics(
                sched, machine, runtime=runtime, statement=n, plan=plan,
            ))
    return report
