"""RAW/WAR/WAW hazards and the statement dependence graph.

Built from the privilege sets of :mod:`repro.analysis.privileges`, the
:class:`DependenceGraph` records every pair of statements that must stay
ordered and why (which tensor, which dependence kind).  Program order is
always a valid topological order of the graph — edges only ever point
forward — so ``CompiledProgram.execute``'s in-order pass satisfies every
edge by construction; the graph is the *precondition artifact* for any
pass that wants to deviate from program order (the roadmap's
SparseLNR-style fusion).

Two statically detected defect classes also live here:

* :class:`~repro.errors.WriteHazard` — a statement's RHS reads the
  tensor its LHS writes (SpAdd-assembled statements exempt; their
  execution snapshots operands before installing the output pattern);
* :class:`~repro.errors.UnsupportedEinsum` — the statement/schedule
  combination is outside what ``core.compiler`` can lower, predicted
  from the same predicates the compiler raises ``CompileError`` on.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..errors import UnsupportedEinsum, WriteHazard
from .privileges import StatementPrivileges
from .report import Diagnostic, Provenance

__all__ = [
    "Dependence", "DependenceGraph", "build_graph", "detect_hazards",
]

RAW = "RAW"
WAR = "WAR"
WAW = "WAW"


@dataclass(frozen=True)
class Dependence:
    """One ordered pair of statements that must not be reordered."""

    src: int  #: earlier statement (producer side)
    dst: int  #: later statement (consumer side); always ``src < dst``
    kind: str  #: "RAW", "WAR" or "WAW"
    tensor: str  #: name of the tensor carrying the dependence

    def __repr__(self) -> str:  # pragma: no cover
        return f"{self.src} -{self.kind}[{self.tensor}]-> {self.dst}"


@dataclass
class DependenceGraph:
    """All dependences of a program, indexed both ways."""

    n_statements: int
    edges: List[Dependence] = field(default_factory=list)

    def predecessors(self, n: int) -> List[int]:
        """Statements that must execute before statement ``n``."""
        return sorted({e.src for e in self.edges if e.dst == n})

    def successors(self, n: int) -> List[int]:
        """Statements that must execute after statement ``n``."""
        return sorted({e.dst for e in self.edges if e.src == n})

    def edges_between(self, src: int, dst: int) -> List[Dependence]:
        return [e for e in self.edges if e.src == src and e.dst == dst]

    def topological_order(self) -> List[int]:
        """A valid execution order.  Program order always qualifies —
        every edge points forward — and it is what the runtime uses."""
        return list(range(self.n_statements))

    def admits_order(self, order: Sequence[int]) -> bool:
        """Whether ``order`` (a permutation of statements) satisfies
        every dependence edge — the check the acceptance criteria run
        against the *observed* execution order."""
        pos = {s: k for k, s in enumerate(order)}
        if len(pos) != self.n_statements:
            return False
        return all(pos[e.src] < pos[e.dst] for e in self.edges)

    def describe(self) -> str:
        if not self.edges:
            return f"dependence graph: {self.n_statements} statements, no edges"
        lines = [f"dependence graph: {self.n_statements} statements"]
        lines.extend(
            f"  {e.src} -{e.kind}[{e.tensor}]-> {e.dst}" for e in self.edges
        )
        return "\n".join(lines)


def build_graph(privs: Sequence[StatementPrivileges]) -> DependenceGraph:
    """Pairwise RAW/WAR/WAW dependences over the privilege sets.

    Tensor identity (not name) decides aliasing, matching how the
    execution engine and the kernel-cache fingerprints treat tensors.
    """
    g = DependenceGraph(n_statements=len(privs))
    for j, later in enumerate(privs):
        reads_j = {id(t) for t in later.read_tensors}
        writes_j = {id(t) for t in later.written_tensors}
        for i in range(j):
            earlier = privs[i]
            for t in earlier.written_tensors:
                if id(t) in reads_j:
                    g.edges.append(Dependence(i, j, RAW, t.name))
                if id(t) in writes_j:
                    g.edges.append(Dependence(i, j, WAW, t.name))
            for t in earlier.read_tensors:
                if id(t) in writes_j:
                    g.edges.append(Dependence(i, j, WAR, t.name))
    return g


def _var_chain(schedule, v) -> str:
    """Render a loop variable with its derived -> underlying provenance."""
    unders = schedule.underlying_vars(v)
    if len(unders) == 1 and unders[0] is v:
        return v.name
    return f"{v.name}<-{','.join(u.name for u in unders)}"


def _write_hazards(privs: Sequence[StatementPrivileges]) -> List[Diagnostic]:
    out = []
    for p in privs:
        if p.write_kind == "assemble":
            # SpAdd snapshots every operand before installing the new
            # output pattern, so A = B + A reads consistent values.
            continue
        asg = p.assignment
        lhs_t = asg.lhs.tensor
        for acc in asg.rhs.accesses():
            if acc.tensor is not lhs_t:
                continue
            if tuple(acc.indices) == tuple(asg.lhs.indices):
                # Pointwise self-reference (a(i) = a(i) * x(i)): every
                # iteration reads only the element it writes, which the
                # in-order leaf loops execute correctly.
                continue
            vars_ = tuple(
                v.name for v in dict.fromkeys(
                    tuple(asg.lhs.indices) + tuple(acc.indices)
                )
            )
            out.append(Diagnostic(
                severity="error",
                error_type=WriteHazard,
                message=(
                    f"statement reads {lhs_t.name}"
                    f"({', '.join(v.name for v in acc.indices)}) while "
                    f"writing {lhs_t.name}"
                    f"({', '.join(v.name for v in asg.lhs.indices)}) — "
                    "iterations would observe partially updated values"
                ),
                provenance=Provenance(
                    statement=p.index,
                    statement_repr=repr(asg),
                    tensor=lhs_t.name,
                    loop_vars=vars_,
                ),
            ))
            break  # one diagnostic per statement is enough
    return out


def _unsupported(privs: Sequence[StatementPrivileges]) -> List[Diagnostic]:
    """Statically predict the ``CompileError``s of ``core.compiler``."""
    from ..core.assembly import pattern_source
    from ..core.compiler import classify

    out = []
    for p in privs:
        asg = p.assignment
        sched = p.schedule
        prov = lambda tensor=None, vars_=(): Provenance(  # noqa: E731
            statement=p.index, statement_repr=repr(asg),
            tensor=tensor, loop_vars=vars_,
        )

        def diag(message, tensor=None, vars_=()):
            out.append(Diagnostic(
                severity="error", error_type=UnsupportedEinsum,
                message=message, provenance=prov(tensor, vars_),
            ))

        kind = classify(asg).kind
        if (
            kind == "generic"
            and not asg.lhs.tensor.format.is_all_dense()
            and pattern_source(asg) is None
        ):
            diag(
                "generic-engine statement with a sparse output needs a "
                "pattern-preserving RHS (no pattern source found)",
                tensor=asg.lhs.tensor.name,
            )
            continue
        if sched is None:
            continue
        dvars = list(sched.distributed)
        nonzero = [v for v in dvars if sched.is_position_var(v)]
        if len(nonzero) > 1:
            diag(
                "at most one non-zero distributed variable is supported",
                vars_=tuple(_var_chain(sched, v) for v in nonzero),
            )
            continue
        if nonzero and len(dvars) != 1:
            diag(
                "non-zero distribution cannot be combined with other "
                "distributed variables",
                vars_=tuple(_var_chain(sched, v) for v in dvars),
            )
            continue
        if nonzero and kind == "generic":
            diag(
                "the generic engine only supports coordinate (universe) "
                "distribution, not non-zero splits",
                vars_=(_var_chain(sched, nonzero[0]),),
            )
            continue
        if dvars and not nonzero:
            fused = [
                v for v in dvars if len(sched.underlying_vars(v)) != 1
            ]
            if fused:
                diag(
                    "universe distribution of fused variables is not "
                    "supported; use a non-zero partition for fused "
                    "dimensions",
                    vars_=tuple(_var_chain(sched, v) for v in fused),
                )
    return out


def detect_hazards(
    privs: Sequence[StatementPrivileges],
) -> List[Diagnostic]:
    """All WriteHazard / UnsupportedEinsum diagnostics of a program."""
    return _write_hazards(privs) + _unsupported(privs)
