"""Per-statement read/write privilege extraction.

The hazard analyzer's ground truth: for every statement of a program,
which (tensor × mode) pairs it reads and which it writes, with the two
write distinctions the execution engine makes (``repro.core.compiler``):

* **accumulate** — ``A += expr`` reduces into the existing values, so the
  output is also a *read* of the statement;
* **assemble** — SpAdd-shaped statements (``is_assembled_output``)
  rebuild the output's sparse pattern from scratch each execute, and the
  execution path snapshots every operand array *before* the new pattern
  is installed, which is what makes the aliased forms (``A = B + A``)
  legal.

Privilege sets are pure statement metadata — no compilation, no leaf
binding — so they are cheap enough to derive for every ``compile_program``
call and are the inputs to :mod:`repro.analysis.hazards` (the dependence
graph) and :mod:`repro.analysis.cse` (collapse legality).
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from ..core import cache as _cache
from ..taco.expr import Access, Assignment
from ..taco.schedule import Schedule

__all__ = [
    "TensorUse", "StatementPrivileges", "statement_privileges",
    "program_privileges",
]


@dataclass(frozen=True)
class TensorUse:
    """One tensor touched by a statement, with the modes it is touched at.

    ``modes`` pairs each tensor mode with the index-variable name that
    ranges over it (``B(i, j)`` → ``((0, "i"), (1, "j"))``) — the
    tensor × mode granularity the issue-level privilege model asks for.
    """

    tensor: object  #: the :class:`~repro.taco.tensor.Tensor` (by identity)
    modes: Tuple[Tuple[int, str], ...]

    @property
    def name(self) -> str:
        return self.tensor.name

    def __repr__(self) -> str:  # pragma: no cover
        idx = ", ".join(v for _, v in self.modes)
        return f"{self.name}({idx})"


@dataclass
class StatementPrivileges:
    """The read/write privilege sets of one program statement."""

    index: int  #: position in the program (0-based)
    assignment: Assignment
    schedule: Optional[Schedule]
    reads: List[TensorUse] = field(default_factory=list)
    writes: List[TensorUse] = field(default_factory=list)
    #: "write" (overwrite), "accumulate" (``+=`` reduce) or "assemble"
    #: (SpAdd pattern rebuild with pre-install operand snapshots).
    write_kind: str = "write"

    @property
    def read_tensors(self) -> List:
        seen, out = set(), []
        for u in self.reads:
            if id(u.tensor) not in seen:
                seen.add(id(u.tensor))
                out.append(u.tensor)
        return out

    @property
    def written_tensors(self) -> List:
        seen, out = set(), []
        for u in self.writes:
            if id(u.tensor) not in seen:
                seen.add(id(u.tensor))
                out.append(u.tensor)
        return out

    def touched_tensors(self) -> List:
        seen, out = set(), []
        for u in self.reads + self.writes:
            if id(u.tensor) not in seen:
                seen.add(id(u.tensor))
                out.append(u.tensor)
        return out

    def aliased_tensors(self) -> List:
        """Tensors this statement both reads and writes (by identity)."""
        written = {id(t) for t in self.written_tensors}
        return [t for t in self.read_tensors if id(t) in written]

    def describe(self) -> str:
        r = ", ".join(map(repr, self.reads)) or "-"
        w = ", ".join(map(repr, self.writes)) or "-"
        return (f"statement {self.index}: reads [{r}] "
                f"{self.write_kind}s [{w}]")


def _use(access: Access) -> TensorUse:
    return TensorUse(
        access.tensor,
        tuple((m, v.name) for m, v in enumerate(access.indices)),
    )


def statement_privileges(
    target: Union[Assignment, Schedule], index: int = 0
) -> StatementPrivileges:
    """Extract the privilege sets of one (optionally scheduled) statement.

    The RHS accesses are the reads; the LHS access is the write.  An
    accumulating statement (``+=``) additionally *reads* its output — the
    existing values participate in the result — and so does the stripped
    LHS of the SpAdd ``accumulate`` sugar (``A += B + C`` reads A even
    though A no longer appears in the operand list).
    """
    schedule = target if isinstance(target, Schedule) else None
    asg = target.assignment if schedule is not None else target
    priv = StatementPrivileges(index=index, assignment=asg, schedule=schedule)
    priv.writes.append(_use(asg.lhs))
    if _cache.is_assembled_output(asg):
        priv.write_kind = "assemble"
    elif asg.accumulate:
        priv.write_kind = "accumulate"
    for acc in asg.rhs.accesses():
        priv.reads.append(_use(acc))
    if asg.accumulate and all(
        u.tensor is not asg.lhs.tensor for u in priv.reads
    ):
        # ``+=`` consumes the existing output values (for SpAdd this is
        # the stripped-LHS operand _execute_spadd re-adds from snapshot).
        priv.reads.append(_use(asg.lhs))
    return priv


def program_privileges(
    targets: Sequence[Union[Assignment, Schedule]]
) -> List[StatementPrivileges]:
    """Privilege sets for every statement of a program, in order."""
    return [statement_privileges(t, n) for n, t in enumerate(targets)]
