"""AST allowlist sanitizer for store-seeded AOT kernel modules.

Artifacts unpacked from an :class:`~repro.core.store.ArtifactStore`
carry generated Python source (``aot/<fingerprint>.py``) that the
codegen registry ``exec``-loads on warm start.  A tampered artifact
would therefore be arbitrary code execution at *load* time.  This
module verifies, before every such exec, that the source still looks
like what :mod:`repro.codegen.lowering` emits:

* imports restricted to ``numpy`` / ``scipy`` / ``math`` — at module
  scope only;
* no calls to or references of exec/eval/compile/``__import__``/open/
  getattr-family names, no dunder attribute access, no ``global`` /
  ``nonlocal`` statements;
* the module body is docstring + imports + literal constant assignments
  (``META = {...}``, ``_CHUNK = 1 << 18``, ``_JITTED = [False]``) +
  function definitions, one of which must be ``bind``.

Violations raise a typed :class:`~repro.errors.SanitizerError` naming
the offending path and source line.  ``REPRO_AOT_TRUST=1`` is the
escape hatch for callers that explicitly trust their store.

Kept dependency-light (``ast``/``os``/``errors`` only) so both the
codegen registry and the store can import it without cycles.
"""
from __future__ import annotations

import ast
import os
from typing import Optional

from ..errors import SanitizerError

__all__ = [
    "ALLOWED_IMPORT_ROOTS", "FORBIDDEN_NAMES", "aot_trusted",
    "verify_aot_source",
]

#: Top-level modules generated kernels may import (numpy, scipy.sparse
#: and the stdlib math module — nothing with I/O or process reach).
ALLOWED_IMPORT_ROOTS = frozenset({"numpy", "scipy", "math"})

#: Names whose mere reference fails verification: dynamic execution,
#: dynamic import, I/O, attribute smuggling and interpreter escape.
FORBIDDEN_NAMES = frozenset({
    "eval", "exec", "compile", "__import__", "open", "input",
    "breakpoint", "globals", "locals", "vars", "getattr", "setattr",
    "delattr", "exit", "quit", "memoryview", "__builtins__",
})

_TRUST_ENV = "REPRO_AOT_TRUST"


def aot_trusted() -> bool:
    """Whether ``REPRO_AOT_TRUST`` disables sanitizing (escape hatch)."""
    return os.environ.get(_TRUST_ENV, "").strip().lower() in (
        "1", "true", "yes", "on",
    )


def _fail(path, message: str, node: Optional[ast.AST] = None) -> None:
    line = getattr(node, "lineno", None) if node is not None else None
    raise SanitizerError(path, message, line=line)


def _is_literal(node: ast.AST) -> bool:
    """Literal-ish expressions the module body may assign: constants,
    containers of literals, and constant arithmetic (``1 << 18``)."""
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return all(_is_literal(e) for e in node.elts)
    if isinstance(node, ast.Dict):
        return all(
            k is not None and _is_literal(k) and _is_literal(v)
            for k, v in zip(node.keys, node.values)
        )
    if isinstance(node, ast.BinOp):
        return _is_literal(node.left) and _is_literal(node.right)
    if isinstance(node, ast.UnaryOp):
        return _is_literal(node.operand)
    return False


def _check_import(path, node) -> None:
    if isinstance(node, ast.Import):
        names = [a.name for a in node.names]
    else:  # ast.ImportFrom
        if node.level:
            _fail(path, "relative imports are not allowed", node)
        names = [node.module or ""]
    for name in names:
        root = name.split(".", 1)[0]
        if root not in ALLOWED_IMPORT_ROOTS:
            _fail(
                path,
                f"import of {name!r} is outside the generated-module "
                f"allowlist {sorted(ALLOWED_IMPORT_ROOTS)}",
                node,
            )


def verify_aot_source(source: str, *, filename: str = "<aot>") -> ast.Module:
    """Verify ``source`` against the generated-module allowlist.

    Returns the parsed module on success so callers can reuse the AST;
    raises :class:`~repro.errors.SanitizerError` (with the offending
    line) on the first violation.  Never executes the source.
    """
    try:
        tree = ast.parse(source, filename=str(filename))
    except SyntaxError as e:
        raise SanitizerError(
            filename, f"not parseable as Python: {e.msg}", line=e.lineno
        ) from e

    # -- module-body structural allowlist ---------------------------------
    has_bind = False
    for k, stmt in enumerate(tree.body):
        if (
            k == 0
            and isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, str)
        ):
            continue  # module docstring
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            _check_import(filename, stmt)
            continue
        if isinstance(stmt, ast.Assign):
            if not all(
                isinstance(t, ast.Name) and not t.id.startswith("__")
                for t in stmt.targets
            ):
                _fail(filename, "module-level assignment must bind plain "
                                "names", stmt)
            if not _is_literal(stmt.value):
                _fail(filename, "module-level assignment must be a literal "
                                "constant", stmt)
            continue
        if isinstance(stmt, ast.FunctionDef):
            has_bind = has_bind or stmt.name == "bind"
            continue
        _fail(
            filename,
            f"module-level {type(stmt).__name__} is outside the "
            "generated-module shape (docstring, imports, constants, "
            "function definitions)",
            stmt,
        )
    if not has_bind:
        _fail(filename, "generated module must define bind()")

    # -- whole-tree reference checks --------------------------------------
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            if node not in tree.body:
                _fail(filename, "imports are only allowed at module scope",
                      node)
        elif isinstance(node, ast.Name):
            if node.id in FORBIDDEN_NAMES:
                _fail(filename, f"reference to forbidden name {node.id!r}",
                      node)
        elif isinstance(node, ast.Attribute):
            if node.attr.startswith("__") and node.attr.endswith("__"):
                _fail(filename,
                      f"dunder attribute access {node.attr!r} is not allowed",
                      node)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            _fail(filename,
                  f"{type(node).__name__.lower()} statements are not allowed",
                  node)
        elif isinstance(node, (ast.AsyncFunctionDef, ast.ClassDef)):
            _fail(filename,
                  f"{type(node).__name__} is outside the generated-module "
                  "shape", node)
    return tree
