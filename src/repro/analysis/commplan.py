"""Static communication planning: predict simulated metrics without executing.

SpDISTAL's premise is that the *schedule* decides communication and
communication decides performance.  The simulated runtime
(:mod:`repro.legion.runtime`) derives every transfer deterministically
from static artifacts — region partitions, home placements, privileges
and the color→processor map — plus a residency state machine; nothing
about the tensors' *values* ever reaches a staging decision.  This module
exploits that: it drives the runtime's own staging algebra over a scratch
:class:`~repro.legion.runtime.Runtime` with the leaf task bodies replaced
by a (pattern-derived) :class:`~repro.legion.machine.Work` model, so the
communication plan — per-color launch set, region movements with byte
counts per channel, per-node footprint — and the full metrics signature
are derived **without executing any tensor math**.

Because the mirror runs the same subset algebra, the same home lists and
the same owner selection as a real cold execution, the prediction is
*exact*: launch counts, every :class:`~repro.legion.metrics.CommEvent`
(source, destination, bytes, channel, reason) and the per-node resident
footprint match what :meth:`CompiledKernel.execute` on a fresh runtime
reports, byte for byte.  The differential oracle
(``tests/analysis/test_commplan_oracle.py``) pins that equality over the
full kernel × format × strategy × machine sweep.

The planner also emits typed :class:`~repro.analysis.report.Diagnostic`
findings through the :class:`~repro.analysis.report.AnalysisReport`
machinery: redundant ``communicate`` placements (the placed tensor moves
zero bytes), missing ones (overlapping sub-regions staged to several
processors — duplicate transfer a ``communicate`` would hoist), and
privilege-incoherent distributions (a streamed region holding write or
reduce privilege).

Entry points:

* :func:`predict_metrics` — the public one-call predictor (also exported
  as ``repro.predict_metrics``);
* :func:`communication_plan` — the richer per-statement plan;
* :func:`measured_signature` — fold an executed
  :class:`~repro.legion.metrics.ExecutionMetrics` + runtime into the same
  signature shape, for differential comparison;
* :func:`commplan_diagnostics` — the coherence findings,
  consumed by ``Program.analyze(cost=True)`` and the ``commplan``
  check-runner plugin.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import (
    IncoherentDistribution, MissingCommunicate, RedundantCommunicate,
)
from ..legion.machine import Machine, Work
from ..legion.metrics import CommEvent, ExecutionMetrics, StepMetrics
from ..legion.runtime import Privilege, RegionReq, Runtime
from .hazards import _var_chain
from .report import Diagnostic, Provenance

__all__ = [
    "PredictedStep", "MetricsSignature", "Movement", "CommPlan",
    "predict_metrics", "communication_plan", "measured_signature",
    "commplan_diagnostics",
]

#: a Work model: maps (phase name, piece) to the Work the leaf will report.
WorkModel = Callable[[str, object], Work]


def _zero_work(_phase: str, _piece: object) -> Work:
    return Work.zero()


# --------------------------------------------------------------------------- #
# signature shapes
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class PredictedStep:
    """One step of a (predicted or measured) metrics signature."""

    name: str
    tasks_launched: int
    comm_events: Tuple[CommEvent, ...]

    @property
    def comm_bytes(self) -> float:
        """Total bytes moved by this step."""
        return sum(e.nbytes for e in self.comm_events)


@dataclass(frozen=True)
class MetricsSignature:
    """The execution-shape fingerprint of a statement (or program).

    Same shape the simulator emits: ordered steps with launch counts and
    communication events, plus the per-node resident footprint (under the
    capacity model's accounting —
    :meth:`repro.legion.runtime.Runtime.resident_bytes_per_proc`).
    Hashable and exactly comparable: two signatures are equal iff every
    launch count, every event (src, dst, bytes, channel, reason) and
    every node's footprint agree.
    """

    steps: Tuple[PredictedStep, ...]
    node_footprint: Tuple[Tuple[int, float], ...]  #: sorted (node_id, bytes)

    @property
    def launches(self) -> int:
        """Total tasks launched across all steps."""
        return sum(s.tasks_launched for s in self.steps)

    def events(self) -> Tuple[CommEvent, ...]:
        """Every communication event, in execution order."""
        return tuple(e for s in self.steps for e in s.comm_events)

    def comm_bytes_by_channel(self) -> Dict[str, float]:
        """Bytes moved per machine channel.

        ``intra_node`` covers transfers between processors sharing a node
        (GPU peers over the same node's links); ``inter_node`` covers the
        network.  Zero-byte local "transfers" (src == dst) count toward
        neither total.
        """
        out = {"intra_node": 0.0, "inter_node": 0.0}
        for e in self.events():
            if e.src_proc == e.dst_proc:
                continue
            out["intra_node" if e.same_node else "inter_node"] += e.nbytes
        return out

    def total_comm_bytes(self) -> float:
        """Total bytes moved across all steps."""
        return sum(s.comm_bytes for s in self.steps)

    def describe(self) -> str:
        """A compact human-readable rendering."""
        lines = []
        for s in self.steps:
            lines.append(
                f"{s.name}: {s.tasks_launched} tasks, "
                f"{len(s.comm_events)} transfers, {s.comm_bytes:.0f} B"
            )
        by = self.comm_bytes_by_channel()
        lines.append(
            f"channels: intra-node {by['intra_node']:.0f} B, "
            f"inter-node {by['inter_node']:.0f} B"
        )
        foot = ", ".join(f"node {n}: {b:.0f} B" for n, b in self.node_footprint)
        lines.append(f"footprint: {foot if foot else 'empty'}")
        return "\n".join(lines)


@dataclass(frozen=True)
class Movement:
    """One region movement of the communication plan."""

    step: str  #: launch name the movement belongs to
    region: str  #: region name parsed from the staging reason
    src_proc: int
    dst_proc: int
    nbytes: float
    channel: str  #: "intra_node" | "inter_node" | "local"
    reason: str  #: the runtime's verb: stage / stream / reduce / counts / pos


@dataclass
class CommPlan:
    """The full static communication plan of one compiled statement."""

    kind: str
    strategy: str
    #: per-color launch assignment, in launch order
    launches: List[Tuple[object, int]] = field(default_factory=list)
    movements: List[Movement] = field(default_factory=list)
    signature: Optional[MetricsSignature] = None
    #: per-node footprint maximum observed at step granularity (the
    #: capacity model checks per staged region; this bounds it per step)
    peak_node_footprint: Dict[int, float] = field(default_factory=dict)
    #: bytes staged/streamed per tensor name (reduce flows excluded)
    staged_bytes_by_tensor: Dict[str, float] = field(default_factory=dict)

    def describe(self) -> str:
        """The plan as text: launches, movements, channels, footprint."""
        lines = [f"{self.kind}:{self.strategy} — {len(self.launches)} pieces"]
        for color, proc in self.launches:
            lines.append(f"  color {color} -> proc {proc}")
        for m in self.movements:
            lines.append(
                f"  [{m.step}] {m.region}: {m.src_proc} -> {m.dst_proc} "
                f"{m.nbytes:.0f} B ({m.channel}, {m.reason})"
            )
        if self.signature is not None:
            lines.append(self.signature.describe())
        return "\n".join(lines)


# --------------------------------------------------------------------------- #
# signature construction
# --------------------------------------------------------------------------- #
def _fold_steps(steps: Sequence[StepMetrics]) -> Tuple[PredictedStep, ...]:
    return tuple(
        PredictedStep(s.name, s.tasks_launched, tuple(s.comm_events))
        for s in steps
    )


def _node_footprint(
    per_proc: Dict[int, float], machine: Machine
) -> Tuple[Tuple[int, float], ...]:
    by_node: Dict[int, float] = {}
    for proc, nbytes in per_proc.items():
        node = machine.proc(proc).node_id
        by_node[node] = by_node.get(node, 0.0) + nbytes
    return tuple(sorted(by_node.items()))


def measured_signature(
    metrics: ExecutionMetrics, runtime: Runtime
) -> MetricsSignature:
    """Fold an executed trial's metrics + runtime state into a signature.

    The differential counterpart of :func:`predict_metrics`: the steps
    come from the trial's :class:`~repro.legion.metrics.ExecutionMetrics`
    and the footprint from the runtime the trial ran on, read through the
    same :meth:`~repro.legion.runtime.Runtime.resident_bytes_per_proc`
    accounting the predictor uses.
    """
    return MetricsSignature(
        steps=_fold_steps(metrics.steps),
        node_footprint=_node_footprint(
            runtime.resident_bytes_per_proc(), runtime.machine
        ),
    )


# --------------------------------------------------------------------------- #
# the mirror: the runtime's staging algebra minus the task bodies
# --------------------------------------------------------------------------- #
def _spadd_read_reqs(ck) -> List[RegionReq]:
    """The READ_ONLY launch requirements SpAdd assembly freezes on first
    execute (``CompiledKernel._execute_spadd``), derived the same way —
    or the already-frozen list when the kernel has executed before."""
    if ck._spadd_reqs is not None:
        return ck._spadd_reqs
    operand_tensors = [o.tensor for o in ck.operands]
    if ck.schedule.assignment.accumulate and all(
        t is not ck.out for t in operand_tensors
    ):
        operand_tensors.append(ck.out)
    return [
        req
        for t in operand_tensors
        for req in ck.parts[id(t)].region_reqs(Privilege.READ_ONLY)
    ]


def _seed_tdn_homes(ck, rt: Runtime, source: Optional[Runtime]) -> None:
    """Copy home placements of TDN-placed tensors from the real runtime.

    ``CompiledKernel._place`` skips tensors placed by ``repro.distal``
    (their homes live on the session runtime), so a scratch mirror would
    otherwise see them as homeless.  Copying the home lists *in order*
    preserves the owner-selection tie-breaking of ``_owner_of``.
    """
    if source is None:
        return
    for part in ck.parts.values():
        if not getattr(part.tensor, "_placed_by_tdn", False):
            continue
        for req in part.region_reqs(Privilege.READ_ONLY):
            homes = source._home.get(req.region.uid)
            if homes:
                rt._home.setdefault(req.region.uid, []).extend(homes)
    rt._homes_changed()


def _mirror_kernel(ck, rt: Runtime, work: WorkModel) -> List[StepMetrics]:
    """Replay one cold kernel execution's *mapping* on ``rt``.

    Identical calls to the same runtime entry points a real
    ``execute()`` makes — placement, then the index launch(es) — with the
    leaf bodies replaced by the Work model.  Returns the freshly
    appended steps.  Raises :class:`repro.errors.OOMError` exactly where
    the real execution would.
    """
    before = len(rt.metrics.steps)
    ck._place(rt)
    by_color = {p.color: p for p in ck.pieces}
    colors = [p.color for p in ck.pieces]
    if ck.kind == "spadd":
        reqs = _spadd_read_reqs(ck)
        rt.index_launch(
            "spadd:symbolic", colors,
            lambda c: work("spadd:symbolic", by_color[c]),
            reqs, proc_map=ck._proc_of_color,
        )
        scan = rt.metrics.new_step("spadd:scan")
        for p in ck.pieces:
            r0, r1 = p.rows
            n = max(0, r1 - r0 + 1)
            if p.proc != 0 and n:
                scan.comm_events.append(CommEvent(
                    p.proc, 0, n * 8.0, rt.machine.same_node(p.proc, 0),
                    "counts",
                ))
                scan.comm_events.append(CommEvent(
                    0, p.proc, n * 16.0, rt.machine.same_node(0, p.proc),
                    "pos",
                ))
        rt.index_launch(
            "spadd:fill", colors,
            lambda c: work("spadd:fill", by_color[c]),
            reqs, proc_map=ck._proc_of_color,
        )
    else:
        rt.index_launch(
            f"{ck.kind}:{ck.strategy}", colors,
            lambda c: work("compute", by_color[c]),
            ck._reqs(), proc_map=ck._proc_of_color,
        )
    return rt.metrics.steps[before:]


def _channel_of(e: CommEvent) -> str:
    if e.src_proc == e.dst_proc:
        return "local"
    return "intra_node" if e.same_node else "inter_node"


def _movements_of(steps: Sequence[StepMetrics]) -> List[Movement]:
    out = []
    for s in steps:
        for e in s.comm_events:
            verb, _, rest = e.reason.partition(" ")
            out.append(Movement(
                step=s.name, region=rest or e.reason,
                src_proc=e.src_proc, dst_proc=e.dst_proc, nbytes=e.nbytes,
                channel=_channel_of(e), reason=verb,
            ))
    return out


def _region_tensors(ck) -> Dict[str, str]:
    """region name -> owning tensor name (ambiguous names dropped)."""
    names: Dict[str, str] = {}
    for part in ck.parts.values():
        for req in part.region_reqs(Privilege.READ_ONLY):
            rname = req.region.name
            owner = part.tensor.name
            if rname in names and names[rname] != owner:
                names[rname] = ""  # ambiguous: exclude from attribution
            else:
                names[rname] = owner
    return names


def _plan_of(ck, steps: List[StepMetrics], rt: Runtime) -> CommPlan:
    plan = CommPlan(
        kind=ck.kind,
        strategy=ck.strategy,
        launches=[(p.color, p.proc) for p in ck.pieces],
        movements=_movements_of(steps),
        signature=MetricsSignature(
            steps=_fold_steps(steps),
            node_footprint=_node_footprint(
                rt.resident_bytes_per_proc(), rt.machine
            ),
        ),
    )
    for node, nbytes in plan.signature.node_footprint:
        plan.peak_node_footprint[node] = max(
            plan.peak_node_footprint.get(node, 0.0), nbytes
        )
    region_owner = _region_tensors(ck)
    for m in plan.movements:
        if m.reason not in ("stage", "stream"):
            continue
        owner = region_owner.get(m.region)
        if owner:
            plan.staged_bytes_by_tensor[owner] = (
                plan.staged_bytes_by_tensor.get(owner, 0.0) + m.nbytes
            )
    return plan


def _predict_one(
    ck,
    *,
    runtime: Optional[Runtime] = None,
    work: Optional[WorkModel] = None,
) -> CommPlan:
    rt = Runtime(ck.machine)
    _seed_tdn_homes(ck, rt, runtime)
    steps = _mirror_kernel(ck, rt, work or _zero_work)
    return _plan_of(ck, steps, rt)


def communication_plan(
    target,
    machine: Optional[Machine] = None,
    *,
    runtime: Optional[Runtime] = None,
    work: Optional[WorkModel] = None,
) -> CommPlan:
    """The static communication plan of one scheduled statement.

    ``target`` is a :class:`~repro.taco.schedule.Schedule`, a bare
    :class:`~repro.taco.expr.Assignment` (or a tensor carrying one), or an
    already-compiled :class:`~repro.core.compiler.CompiledKernel`.
    Compilation (when needed) goes through the ordinary kernel cache;
    nothing executes.  Pass the session ``runtime`` when tensors were
    placed by ``repro.distal`` so the plan sees their real homes.
    """
    ck = _as_kernel(target, machine)
    return _predict_one(ck, runtime=runtime, work=work)


def _as_kernel(target, machine: Optional[Machine]):
    from ..core.compiler import CompiledKernel, compile_statement
    from ..taco.schedule import Schedule

    if isinstance(target, CompiledKernel):
        return target
    if isinstance(target, Schedule):
        sched = target
    else:
        # A bare assignment predicts what the session would run: the
        # auto-scheduler's distributed mapping for this machine, not an
        # unscheduled single-piece wrapper.
        from ..api.autoschedule import auto_schedule
        from ..legion.machine import Machine as _Machine

        sched = auto_schedule(
            _as_asg(target), machine if machine is not None else _Machine.cpu(1)
        )
    return compile_statement(sched, machine)


def _as_asg(target):
    from ..taco.expr import Assignment
    from ..taco.tensor import Tensor

    if isinstance(target, Assignment):
        return target
    if isinstance(target, Tensor) and target.assignment is not None:
        return target.assignment
    raise TypeError(
        "predict_metrics needs a Schedule, an Assignment, a tensor carrying "
        f"one, a CompiledKernel or a compiled/recorded program — got {target!r}"
    )


def predict_metrics(
    target,
    machine: Optional[Machine] = None,
    *,
    runtime: Optional[Runtime] = None,
    work: Optional[WorkModel] = None,
) -> MetricsSignature:
    """Statically predict the simulated metrics signature of ``target``.

    ``target`` may be a single statement (a
    :class:`~repro.taco.schedule.Schedule`, an
    :class:`~repro.taco.expr.Assignment`, a tensor carrying one, or a
    :class:`~repro.core.compiler.CompiledKernel`), a sequence of
    schedules, a :class:`~repro.core.program.CompiledProgram`, or a
    recorded :class:`repro.Program`.  Nothing executes: the runtime's
    deterministic staging algebra runs over a scratch runtime with leaf
    bodies replaced by a static :class:`~repro.legion.machine.Work`
    model, so the returned :class:`MetricsSignature` — launch counts,
    every communication event with its channel, the per-node footprint —
    is exactly what a cold :meth:`execute` on a fresh runtime would
    report (pinned by the differential oracle).

    For multi-statement targets the signature concatenates the
    statements' steps in program order, honoring common-subexpression
    reuse (collapsed statements contribute no steps), and the footprint
    is the program's end state.  Raises
    :class:`repro.errors.OOMError` if the plan exceeds a processor's
    memory — the same failure, at the same staging point, the execution
    would hit.
    """
    program = _as_compiled_program(target, machine)
    if program is not None:
        rt = Runtime(program.machine)
        steps: List[StepMetrics] = []
        for n, ck in enumerate(program.kernels):
            if program.reused_from[n] is not None:
                continue
            _seed_tdn_homes(ck, rt, runtime)
            steps.extend(_mirror_kernel(ck, rt, work or _zero_work))
        return MetricsSignature(
            steps=_fold_steps(steps),
            node_footprint=_node_footprint(
                rt.resident_bytes_per_proc(), rt.machine
            ),
        )
    plan = _predict_one(_as_kernel(target, machine), runtime=runtime, work=work)
    return plan.signature


def _as_compiled_program(target, machine: Optional[Machine]):
    from ..core.program import CompiledProgram, compile_program

    if isinstance(target, CompiledProgram):
        return target
    if isinstance(target, (list, tuple)):
        return compile_program(list(target), machine)
    try:
        from ..api.program import Program
    except ImportError:  # pragma: no cover - api layer always present
        return None
    if isinstance(target, Program):
        return target.compile()
    return None


# --------------------------------------------------------------------------- #
# diagnostics: communicate placements and distribution coherence
# --------------------------------------------------------------------------- #
def commplan_diagnostics(
    target,
    machine: Optional[Machine] = None,
    *,
    runtime: Optional[Runtime] = None,
    statement: int = 0,
    plan: Optional[CommPlan] = None,
) -> List[Diagnostic]:
    """Statically vet one scheduled statement's communication coherence.

    Three findings, all anchored with derived-variable provenance like
    the hazard analyzer's:

    * **error** :class:`~repro.errors.IncoherentDistribution` — a
      streamed (never-resident) tensor holds WRITE or REDUCE privilege;
      its round-wise transfers could not maintain output coherence;
    * **warning** :class:`~repro.errors.RedundantCommunicate` — a
      ``communicate(tensor, var)`` placement whose tensor moves zero
      bytes in the derived plan (already resident where it executes);
    * **warning** :class:`~repro.errors.MissingCommunicate` — a tensor
      with no ``communicate`` placement whose staged transfers exceed the
      data actually needed (overlapping sub-regions pulled by several
      processors), i.e. duplicated movement a placement would hoist.
    """
    ck = _as_kernel(target, machine)
    schedule = ck.schedule
    if plan is None:
        plan = _predict_one(ck, runtime=runtime)
    diags: List[Diagnostic] = []
    srepr = repr(schedule.assignment)

    def prov(tensor=None, loop_vars=()):
        return Provenance(
            statement=statement, statement_repr=srepr,
            tensor=tensor, loop_vars=tuple(loop_vars),
        )

    # streamed regions must stay read-only: the runtime discards their
    # round-wise transfers, so written data would never be read back.
    for t_id in ck._streamed:
        priv = ck.privileges.get(t_id, Privilege.READ_ONLY)
        if priv != Privilege.READ_ONLY:
            part = ck.parts.get(t_id)
            name = part.tensor.name if part is not None else "?"
            diags.append(Diagnostic(
                severity="error",
                error_type=IncoherentDistribution,
                message=(
                    f"streamed tensor {name} holds {priv.name} privilege: "
                    "streamed sub-regions are never resident, so the "
                    "written rounds would be discarded before the output "
                    "is read back"
                ),
                provenance=prov(tensor=name),
            ))

    communicated_names = set()
    for var, tensors in schedule.communicated.items():
        chain = _var_chain(schedule, var)
        for t in tensors:
            communicated_names.add(t.name)
            moved = plan.staged_bytes_by_tensor.get(t.name, 0.0)
            if moved == 0.0:
                part = ck.parts.get(id(t))
                why = (
                    "its partition is replicated onto every piece"
                    if part is not None and part.replicated
                    else "every piece's sub-region is already resident "
                    "where it executes"
                )
                diags.append(Diagnostic(
                    severity="warning",
                    error_type=RedundantCommunicate,
                    message=(
                        f"communicate({t.name}, {var.name}) moves no data: "
                        f"{why}"
                    ),
                    provenance=prov(tensor=t.name, loop_vars=(chain,)),
                ))

    # duplicated staging: the same region pulled (with overlap) by several
    # processors — a communicate at the distributed loop would hoist it.
    dvars = list(schedule.distributed)
    chain = _var_chain(schedule, dvars[0]) if dvars else None
    region_owner = _region_tensors(ck)
    by_region: Dict[str, Tuple[float, set]] = {}
    for m in plan.movements:
        if m.reason != "stage" or m.nbytes <= 0.0:
            continue
        total, dsts = by_region.get(m.region, (0.0, set()))
        dsts = set(dsts)
        dsts.add(m.dst_proc)
        by_region[m.region] = (total + m.nbytes, dsts)
    flagged = set()
    for part in ck.parts.values():
        t = part.tensor
        if t is ck.out or t.name in communicated_names or t.name in flagged:
            continue
        region_bytes = {
            req.region.name: req.region.subset_nbytes(
                req.region.ispace.full_subset()
            )
            for req in part.region_reqs(Privilege.READ_ONLY)
        }
        for rname, full_bytes in region_bytes.items():
            if region_owner.get(rname) != t.name:
                continue
            total, dsts = by_region.get(rname, (0.0, set()))
            if len(dsts) >= 2 and total > full_bytes:
                flagged.add(t.name)
                diags.append(Diagnostic(
                    severity="warning",
                    error_type=MissingCommunicate,
                    message=(
                        f"{t.name} is staged to {len(dsts)} processors "
                        f"moving {total:.0f} B against {full_bytes:.0f} B "
                        "of data — overlapping transfers a communicate "
                        "placement at the distributed loop would hoist"
                    ),
                    provenance=prov(
                        tensor=t.name,
                        loop_vars=(chain,) if chain else (),
                    ),
                ))
                break
    return diags
