"""Deferred assignment capture for lazy multi-statement programs.

``Tensor.__setitem__`` eagerly records the :class:`~repro.taco.expr.Assignment`
on the tensor; a :class:`~repro.api.program.Program` additionally wants to
*collect* every assignment written inside a ``with`` block so a whole
multi-statement computation can be compiled together::

    with session.program() as p:
        a[i] = B[i, j] * c[j]          # captured by p
        y[i] = B[i, j] * x[j]          # captured by p
    p.run()

This module holds the (stack of) active recorders.  Recorders are plain
callables receiving each new :class:`Assignment`; only the innermost one
sees it (programs nest without double-recording).  When no recorder is
active, assignment capture is a no-op — the eager single-statement flow is
unchanged.
"""
from __future__ import annotations

from typing import Callable, List

from .expr import Assignment

__all__ = ["push_recorder", "pop_recorder", "notify_assignment"]

_recorders: List[Callable[[Assignment], None]] = []


def push_recorder(recorder: Callable[[Assignment], None]) -> None:
    """Make ``recorder`` the active (innermost) assignment recorder."""
    _recorders.append(recorder)


def pop_recorder(recorder: Callable[[Assignment], None]) -> None:
    """Deactivate ``recorder``; it must be the innermost one."""
    # ``==`` not ``is``: bound methods are re-created per attribute access,
    # so a Program entering with ``self._record`` exits with an equal (not
    # identical) object.
    if not _recorders or _recorders[-1] != recorder:
        raise RuntimeError("assignment recorders must pop in LIFO order")
    _recorders.pop()


def notify_assignment(assignment: Assignment) -> None:
    """Deliver a freshly built assignment to the innermost recorder."""
    if _recorders:
        _recorders[-1](assignment)
