"""Deferred assignment capture for lazy multi-statement programs.

``Tensor.__setitem__`` eagerly records the :class:`~repro.taco.expr.Assignment`
on the tensor; a :class:`~repro.api.program.Program` additionally wants to
*collect* every assignment written inside a ``with`` block so a whole
multi-statement computation can be compiled together::

    with session.program() as p:
        a[i] = B[i, j] * c[j]          # captured by p
        y[i] = B[i, j] * x[j]          # captured by p
    p.run()

This module holds the (stack of) active recorders.  Recorders are plain
callables receiving each new :class:`Assignment`; only the innermost one
sees it (programs nest without double-recording).  When no recorder is
active, assignment capture is a no-op — the eager single-statement flow is
unchanged.

The stack is *thread-local*: a program capturing on one serving thread
must never collect assignments written concurrently by another tenant's
thread (see :mod:`repro.api.serving`), and LIFO push/pop stays coherent
per thread without locking.
"""
from __future__ import annotations

import threading
from typing import Callable, List

from .expr import Assignment

__all__ = ["push_recorder", "pop_recorder", "notify_assignment"]

_local = threading.local()


def _stack() -> List[Callable[[Assignment], None]]:
    stack = getattr(_local, "recorders", None)
    if stack is None:
        stack = _local.recorders = []
    return stack


def push_recorder(recorder: Callable[[Assignment], None]) -> None:
    """Make ``recorder`` the active (innermost) assignment recorder on the
    calling thread."""
    _stack().append(recorder)


def pop_recorder(recorder: Callable[[Assignment], None]) -> None:
    """Deactivate ``recorder``; it must be the calling thread's innermost."""
    # ``==`` not ``is``: bound methods are re-created per attribute access,
    # so a Program entering with ``self._record`` exits with an equal (not
    # identical) object.
    recorders = _stack()
    if not recorders or recorders[-1] != recorder:
        raise RuntimeError("assignment recorders must pop in LIFO order")
    recorders.pop()


def notify_assignment(assignment: Assignment) -> None:
    """Deliver a freshly built assignment to the calling thread's innermost
    recorder."""
    recorders = _stack()
    if recorders:
        recorders[-1](assignment)
