"""The scheduling language (paper §II-C).

SpDISTAL composes TACO's sparse iteration-space transformations
(``split``/``divide``/``fuse``/``pos``/``reorder``/``parallelize``/
``precompute``, Senanayake et al.) with DISTAL's distributed commands
(``distribute``/``communicate``).  A :class:`Schedule` records the loop
order, the provenance relations between derived and original index
variables, and the distribution directives; the compiler (``repro.core``)
interprets it.

The non-zero-based SpMV from §II-D looks like::

    s = (a.schedule()
          .fuse(i, j, f)
          .pos(f, fp, B[i, j])
          .divide(fp, fo, fi, pieces)
          .distribute(fo)
          .communicate([a, B, c], fo)
          .parallelize(fi, CPUThread))
"""
from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ScheduleError
from .expr import Access, Assignment
from .index_vars import IndexVar

__all__ = [
    "ParallelUnit",
    "CPUThread",
    "GPUThread",
    "GPUBlock",
    "SplitRel",
    "FuseRel",
    "PosRel",
    "Schedule",
]


class ParallelUnit(Enum):
    CPUThread = "CPUThread"
    GPUThread = "GPUThread"
    GPUBlock = "GPUBlock"


CPUThread = ParallelUnit.CPUThread
GPUThread = ParallelUnit.GPUThread
GPUBlock = ParallelUnit.GPUBlock


@dataclass(frozen=True)
class SplitRel:
    """``parent = outer * chunk + inner``.

    ``split`` fixes the inner extent to ``factor``; ``divide`` fixes the
    *outer* extent to ``factor`` pieces of ``ceil(N / factor)`` each.
    """

    parent: IndexVar
    outer: IndexVar
    inner: IndexVar
    factor: int
    is_divide: bool


@dataclass(frozen=True)
class FuseRel:
    """``fused = a * extent(b) + b`` — collapses two adjacent loops."""

    a: IndexVar
    b: IndexVar
    fused: IndexVar


@dataclass(frozen=True)
class PosRel:
    """Switch ``coord_var`` to the position space of ``access``'s tensor.

    Iteration runs over the non-zero positions of the level that stores the
    innermost dimension covered by ``coord_var`` (Senanayake et al. §3.3),
    enabling statically load-balanced non-zero strip-mining.
    """

    coord_var: IndexVar
    pos_var: IndexVar
    access: Access


Relation = Union[SplitRel, FuseRel, PosRel]


class Schedule:
    """A scheduled tensor index notation statement."""

    def __init__(self, assignment: Assignment):
        self.assignment = assignment
        self.loop_order: List[IndexVar] = list(assignment.index_vars())
        self.relations: List[Relation] = []
        self.distributed: List[IndexVar] = []
        self.communicated: Dict[IndexVar, List] = {}
        self.parallelized: Dict[IndexVar, ParallelUnit] = {}
        self.precomputed: List[Tuple] = []

    # ------------------------------------------------------------------ #
    # transformations (all chainable)
    # ------------------------------------------------------------------ #
    def split(
        self, i: IndexVar, outer: IndexVar, inner: IndexVar, factor: int
    ) -> "Schedule":
        """Strip-mine ``i`` into ``outer`` and ``inner`` of extent ``factor``."""
        if factor <= 0:
            raise ScheduleError(f"split needs a positive factor, got {factor}")
        self._check_fresh(i, outer, inner)
        self._replace(i, [outer, inner])
        self.relations.append(SplitRel(i, outer, inner, int(factor), is_divide=False))
        return self

    def divide(
        self, i: IndexVar, outer: IndexVar, inner: IndexVar, pieces: int
    ) -> "Schedule":
        """Break ``i`` into ``pieces`` contiguous chunks (outer = chunk id)."""
        if pieces <= 0:
            raise ScheduleError(f"divide needs a positive piece count, got {pieces}")
        self._check_not_redivided(i)
        self._check_fresh(i, outer, inner)
        self._replace(i, [outer, inner])
        self.relations.append(SplitRel(i, outer, inner, int(pieces), is_divide=True))
        return self

    def fuse(self, i: IndexVar, j: IndexVar, fused: IndexVar) -> "Schedule":
        """Collapse adjacent loops ``i`` (outer) and ``j`` into ``fused``."""
        pi, pj = self._position(i), self._position(j)
        if pj != pi + 1:
            raise ScheduleError(
                f"fuse requires {i.name} directly outside {j.name}; "
                f"loop order is {[v.name for v in self.loop_order]}"
            )
        self._check_fresh(i, fused)
        self.loop_order[pi : pj + 1] = [fused]
        self.relations.append(FuseRel(i, j, fused))
        return self

    def pos(self, i: IndexVar, pos_var: IndexVar, access: Access) -> "Schedule":
        """Iterate ``i`` over the non-zero positions of ``access``'s tensor."""
        if access.tensor.format.is_all_dense():
            raise ScheduleError(
                f"pos({i.name}) requires a sparse access, {access.tensor.name} is dense"
            )
        self._check_fresh(i, pos_var)
        self._replace(i, [pos_var])
        self.relations.append(PosRel(i, pos_var, access))
        return self

    def reorder(self, *vars: IndexVar) -> "Schedule":
        """Permute the given loops among the positions they occupy."""
        if len({id(v) for v in vars}) != len(vars):
            raise ScheduleError("reorder arguments must be distinct")
        positions = sorted(self._position(v) for v in vars)
        for p, v in zip(positions, vars):
            self.loop_order[p] = v
        return self

    def distribute(self, vars: Union[IndexVar, Sequence[IndexVar]]) -> "Schedule":
        """Execute iterations of the target loop(s) on different processors."""
        if isinstance(vars, IndexVar):
            vars = [vars]
        for v in vars:
            self._position(v)  # validates membership
            if v in self.distributed:
                raise ScheduleError(f"{v.name} is already distributed")
            self.distributed.append(v)
        return self

    def communicate(self, tensors, i: IndexVar) -> "Schedule":
        """Fetch each tensor's needed sub-tensor at iterations of loop ``i``."""
        self._position(i)
        if not isinstance(tensors, (list, tuple)):
            tensors = [tensors]
        stmt_tensors = {id(t) for t in self.assignment.tensors()}
        for t in tensors:
            if id(t) not in stmt_tensors:
                raise ScheduleError(f"{t.name} does not appear in the statement")
        self.communicated.setdefault(i, []).extend(tensors)
        return self

    def parallelize(self, i: IndexVar, unit: ParallelUnit = CPUThread) -> "Schedule":
        self._position(i)
        self.parallelized[i] = unit
        return self

    def precompute(self, expr, i: IndexVar, iw: IndexVar, workspace=None) -> "Schedule":
        """Hoist ``expr`` into a workspace (recorded; leaves exploit it)."""
        self._position(i)
        self.precomputed.append((expr, i, iw, workspace))
        return self

    # ------------------------------------------------------------------ #
    # provenance queries (used by the distributed compiler)
    # ------------------------------------------------------------------ #
    def _relation_vars(self) -> set:
        """Every variable a recorded relation touches (parents and derived)."""
        out = set()
        for rel in self.relations:
            if isinstance(rel, SplitRel):
                out.update((rel.parent, rel.outer, rel.inner))
            elif isinstance(rel, FuseRel):
                out.update((rel.a, rel.b, rel.fused))
            elif isinstance(rel, PosRel):
                out.update((rel.coord_var, rel.pos_var))
        return out

    def _check_not_redivided(self, parent: IndexVar) -> None:
        """Reject a second ``divide`` over an already-divided dimension.

        ``divide`` fixes the *piece geometry* of the original dimensions the
        parent ranges over; a second divide of the same variable — or of any
        variable *derived* from an already-divided one — would give one
        original dimension two piece counts, which the distributed compiler
        cannot realize (and which ``pieces_of`` would resolve arbitrarily).
        Tiling an already-divided loop is still legal via ``split``.  This
        must hold eagerly so 2-D grid synthesis (two divides over *distinct*
        dimensions) can trust its own preconditions.
        """
        unders = set(self.underlying_vars(parent))
        for rel in self.relations:
            if isinstance(rel, SplitRel) and rel.is_divide:
                clash = unders & set(self.underlying_vars(rel.outer))
                if clash:
                    names = ", ".join(sorted(v.name for v in clash))
                    raise ScheduleError(
                        f"divide({parent.name}) would divide {names} a "
                        f"second time ({rel.parent.name} was already divided "
                        f"into {rel.factor} pieces); each original variable "
                        "can be divided once — use split to tile within a "
                        "piece"
                    )

    def _check_fresh(self, parent: IndexVar, *new: IndexVar) -> None:
        """Eagerly validate derived variables at build time.

        The parent must be a *current loop* of the schedule, and each
        derived variable must be a *fresh* :class:`IndexVar`: not the
        parent, not a current loop, not one an earlier transformation
        already introduced or consumed, and not repeated within the call.
        Raising a typed :class:`ScheduleError` here keeps invalid schedules
        from failing deep inside lowering with an opaque provenance error.
        """
        self._position(parent)  # the parent must still be a live loop
        if len({id(v) for v in new}) != len(new):
            raise ScheduleError(
                f"derived variables must be distinct, got "
                f"{[v.name for v in new]}"
            )
        used = self._relation_vars()
        for v in new:
            if v is parent:
                raise ScheduleError(
                    f"{v.name} cannot be derived from itself"
                )
            if v in self.loop_order:
                raise ScheduleError(
                    f"{v.name} is already a loop of the scheduled statement; "
                    "derived variables must be fresh"
                )
            if v in used:
                raise ScheduleError(
                    f"{v.name} was already used by an earlier transformation; "
                    "derived variables must be fresh"
                )

    def _position(self, v: IndexVar) -> int:
        try:
            return self.loop_order.index(v)
        except ValueError:
            raise ScheduleError(
                f"{v.name} is not a loop of the scheduled statement "
                f"(loops: {[x.name for x in self.loop_order]})"
            ) from None

    def _replace(self, old: IndexVar, new: List[IndexVar]) -> None:
        p = self._position(old)
        self.loop_order[p : p + 1] = new

    def parents_of(self, v: IndexVar) -> List[IndexVar]:
        """Immediate provenance parents of a derived variable."""
        for rel in self.relations:
            if isinstance(rel, SplitRel) and v in (rel.outer, rel.inner):
                return [rel.parent]
            if isinstance(rel, FuseRel) and v is rel.fused:
                return [rel.a, rel.b]
            if isinstance(rel, PosRel) and v is rel.pos_var:
                return [rel.coord_var]
        return []

    def underlying_vars(self, v: IndexVar) -> List[IndexVar]:
        """Original statement variables a derived variable ranges over."""
        parents = self.parents_of(v)
        if not parents:
            return [v]
        out: List[IndexVar] = []
        for p in parents:
            for u in self.underlying_vars(p):
                if u not in out:
                    out.append(u)
        return out

    def pos_relation_of(self, v: IndexVar) -> Optional[PosRel]:
        """The PosRel governing ``v``, if ``v`` derives from a position var."""
        for rel in self.relations:
            if isinstance(rel, PosRel) and v is rel.pos_var:
                return rel
            if isinstance(rel, SplitRel) and v in (rel.outer, rel.inner):
                return self.pos_relation_of(rel.parent)
            if isinstance(rel, FuseRel) and v is rel.fused:
                ra = self.pos_relation_of(rel.a)
                return ra if ra is not None else self.pos_relation_of(rel.b)
        return None

    def is_position_var(self, v: IndexVar) -> bool:
        """Position (non-zero) iteration vs coordinate (universe) iteration."""
        return self.pos_relation_of(v) is not None

    def divide_rel_of(self, v: IndexVar) -> Optional[SplitRel]:
        for rel in self.relations:
            if isinstance(rel, SplitRel) and v is rel.outer:
                return rel
        return None

    def pieces_of(self, v: IndexVar) -> int:
        """Number of pieces a distributed variable ranges over."""
        rel = self.divide_rel_of(v)
        if rel is not None and rel.is_divide:
            return rel.factor
        raise ScheduleError(
            f"distributed variable {v.name} must come from divide(...) "
            "so the piece count is static"
        )

    def fused_extents(self, v: IndexVar, sizes: Dict[IndexVar, int]) -> int:
        """Extent of (possibly fused/derived) coordinate variable ``v``."""
        for rel in self.relations:
            if isinstance(rel, FuseRel) and v is rel.fused:
                return self.fused_extents(rel.a, sizes) * self.fused_extents(rel.b, sizes)
            if isinstance(rel, SplitRel) and v is rel.inner:
                if rel.is_divide:
                    n = self.fused_extents(rel.parent, sizes)
                    return -(-n // rel.factor)
                return rel.factor
            if isinstance(rel, SplitRel) and v is rel.outer:
                n = self.fused_extents(rel.parent, sizes)
                if rel.is_divide:
                    return rel.factor
                return -(-n // rel.factor)
        if v in sizes:
            return sizes[v]
        raise ScheduleError(f"cannot determine extent of {v.name}")

    def leaf_parallel_unit(self) -> Optional[ParallelUnit]:
        for unit in self.parallelized.values():
            return unit
        return None

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Schedule({self.assignment!r}; loops="
            f"{[v.name for v in self.loop_order]}, "
            f"distributed={[v.name for v in self.distributed]})"
        )
