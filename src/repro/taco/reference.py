"""Reference evaluator for tensor index notation.

Densifies every operand and evaluates the expression tree with NumPy
broadcasting, summing over reduction variables.  Exact but O(universe) in
memory — used as ground truth in tests and by baselines' verification, not
on large tensors.
"""
from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from .expr import Access, Add, Assignment, IndexExpr, Literal, Mul
from .index_vars import IndexVar

__all__ = ["evaluate", "evaluate_expr", "var_sizes"]


def var_sizes(assignment: Assignment) -> Dict[IndexVar, int]:
    """Infer every index variable's extent from the accesses using it."""
    sizes: Dict[IndexVar, int] = {}
    for acc in assignment.accesses():
        for iv, dim in zip(acc.indices, acc.tensor.shape):
            if iv in sizes and sizes[iv] != dim:
                raise ValueError(
                    f"index {iv.name} used with extents {sizes[iv]} and {dim}"
                )
            sizes[iv] = dim
    return sizes


def _align(
    array: np.ndarray, vars_in: Tuple[IndexVar, ...], vars_out: List[IndexVar]
) -> np.ndarray:
    """Transpose/expand ``array`` (indexed by vars_in) to the vars_out axes."""
    perm = [vars_in.index(v) for v in vars_out if v in vars_in]
    arr = np.transpose(array, perm) if perm else array
    shape = []
    k = 0
    for v in vars_out:
        if v in vars_in:
            shape.append(arr.shape[k])
            k += 1
        else:
            shape.append(1)
    return arr.reshape(shape)


def evaluate_expr(
    expr: IndexExpr, vars_out: List[IndexVar], sizes: Dict[IndexVar, int]
) -> np.ndarray:
    if isinstance(expr, Literal):
        return np.full([1] * max(len(vars_out), 1), expr.value)
    if isinstance(expr, Access):
        return _align(expr.tensor.to_dense(), expr.indices, vars_out)
    if isinstance(expr, Mul):
        out = None
        for op in expr.operands:
            v = evaluate_expr(op, vars_out, sizes)
            out = v if out is None else out * v
        return out
    if isinstance(expr, Add):
        out = None
        for op in expr.operands:
            v = evaluate_expr(op, vars_out, sizes)
            v = np.broadcast_to(v, tuple(sizes[x] for x in vars_out)) if vars_out else v
            out = v.copy() if out is None else out + v
        return out
    raise TypeError(f"cannot evaluate {type(expr).__name__}")


def evaluate(assignment: Assignment) -> np.ndarray:
    """Evaluate a TIN statement; returns the dense result (LHS-shaped)."""
    sizes = var_sizes(assignment)
    all_vars = list(assignment.lhs.indices) + [
        v for v in assignment.reduction_vars
    ]
    rhs = evaluate_expr(assignment.rhs, all_vars, sizes)
    rhs = np.broadcast_to(rhs, tuple(sizes[v] for v in all_vars))
    n_red = len(assignment.reduction_vars)
    if n_red:
        rhs = rhs.sum(axis=tuple(range(len(all_vars) - n_red, len(all_vars))))
    out = np.asarray(rhs, dtype=assignment.lhs.tensor.dtype).copy()
    if assignment.accumulate:
        out = out + assignment.lhs.tensor.to_dense()
    return out
