"""Explicit coordinate trees (paper Fig. 7) for inspection and testing.

A tensor's coordinate tree has one level per stored dimension plus a root;
each root-to-leaf path is a stored coordinate.  SpDISTAL's partitioning is
*defined* on coordinate trees (paper §IV-A): partitioning one level induces
partitions of the levels above (each parent colored with its children's
colors) and below (children inherit their parent's color).  The compiler
operates on the packed level arrays; this module provides the tree-side
semantics the tests compare against.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

__all__ = ["CoordNode", "CoordTree", "tree_partition_from_level"]


@dataclass
class CoordNode:
    coord: Optional[int]  # None for the root
    level: int  # root = -1
    position: int  # index of this entry within its level (storage order)
    children: List["CoordNode"] = field(default_factory=list)
    value: Optional[float] = None  # leaves only

    def paths(self) -> List[Tuple[Tuple[int, ...], float]]:
        if not self.children:
            return [((), self.value if self.value is not None else 0.0)]
        out = []
        for c in self.children:
            for coords, v in c.paths():
                out.append(((c.coord, *coords), v))
        return out


class CoordTree:
    """Coordinate tree built from a packed tensor."""

    def __init__(self, root: CoordNode, num_levels: int):
        self.root = root
        self.num_levels = num_levels

    @staticmethod
    def from_tensor(tensor) -> "CoordTree":
        coords, vals = tensor.to_coo()
        # reorder to storage order
        stored = [coords[m] for m in tensor.format.mode_ordering]
        order = len(stored)
        root = CoordNode(None, -1, 0)
        n = vals.size
        position_counters = [0] * order
        # nnz arrive sorted lexicographically by construction
        path_nodes: List[CoordNode] = [root] * (order + 1)
        prev = [None] * order
        for t in range(n):
            # find first level where the coordinate differs from the previous path
            split = 0
            while split < order and prev[split] == stored[split][t]:
                split += 1
            for l in range(split, order):
                node = CoordNode(int(stored[l][t]), l, position_counters[l])
                position_counters[l] += 1
                path_nodes[l].children.append(node)
                path_nodes[l + 1] = node
                prev[l] = int(stored[l][t])
                for l2 in range(l + 1, order):
                    prev[l2] = None
            path_nodes[order].value = float(vals[t])
        return CoordTree(root, order)

    def level_nodes(self, level: int) -> List[CoordNode]:
        """All nodes of a level, in storage (position) order."""
        out: List[CoordNode] = []

        def walk(n: CoordNode):
            if n.level == level:
                out.append(n)
                return
            for c in n.children:
                walk(c)

        walk(self.root)
        return sorted(out, key=lambda n: n.position)

    def paths(self) -> List[Tuple[Tuple[int, ...], float]]:
        return self.root.paths()


def tree_partition_from_level(
    tree: CoordTree, level: int, level_colors: Dict[int, Set[int]]
) -> List[Dict[int, Set[int]]]:
    """Propagate a coloring of one level to the whole tree (paper §IV-A).

    ``level_colors`` maps a node position at ``level`` to its set of colors.
    Children inherit their parent's colors; parents gain the union of their
    children's colors (so nodes may end up with several colors, as in
    Fig. 8b).  Returns one position→colors dict per level.
    """
    out: List[Dict[int, Set[int]]] = [dict() for _ in range(tree.num_levels)]

    def down(node: CoordNode, colors: Set[int]):
        if node.level >= 0:
            out[node.level].setdefault(node.position, set()).update(colors)
        for c in node.children:
            if node.level + 1 == level:
                base = set(level_colors.get(c.position, set()))
            elif node.level >= level:
                base = colors
            else:
                base = set()
            down(c, base)

    def up(node: CoordNode) -> Set[int]:
        if node.level == level:
            mine = set(level_colors.get(node.position, set()))
            out[level].setdefault(node.position, set()).update(mine)
            return mine
        gathered: Set[int] = set()
        for c in node.children:
            gathered |= up(c)
        if node.level >= 0:
            out[node.level].setdefault(node.position, set()).update(gathered)
        return gathered

    down(self_or_root(tree), set())
    up(self_or_root(tree))
    return out


def self_or_root(tree: CoordTree) -> CoordNode:
    return tree.root
