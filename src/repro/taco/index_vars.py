"""Index variables for tensor index notation and distribution notation.

``IndexVar`` names a loop in tensor index notation (paper §II-A);
``DistVar`` names a tensor/machine dimension in tensor distribution
notation (paper §II-B).  Scheduling transformations derive new index
variables from old ones (split/fuse/pos), recorded by the schedule's
provenance relations.
"""
from __future__ import annotations

import itertools
from typing import Tuple

__all__ = ["IndexVar", "DistVar", "index_vars", "dist_vars"]


class IndexVar:
    """A named index variable; identity-compared so shadowed names stay distinct."""

    _counter = itertools.count()

    def __init__(self, name: str = ""):
        self.uid = next(IndexVar._counter)
        self.name = name or f"i{self.uid}"

    def __repr__(self) -> str:
        return self.name

    def __hash__(self) -> int:
        return hash(self.uid)

    def __eq__(self, other) -> bool:
        return self is other


class DistVar:
    """A distribution-notation variable naming a tensor or machine dimension."""

    _counter = itertools.count()

    def __init__(self, name: str = ""):
        self.uid = next(DistVar._counter)
        self.name = name or f"x{self.uid}"

    def __repr__(self) -> str:
        return self.name

    def __hash__(self) -> int:
        return hash(self.uid)

    def __eq__(self, other) -> bool:
        return self is other


def index_vars(names: str) -> Tuple[IndexVar, ...]:
    """``i, j, k = index_vars("i j k")`` convenience constructor."""
    return tuple(IndexVar(n) for n in names.replace(",", " ").split())


def dist_vars(names: str) -> Tuple[DistVar, ...]:
    return tuple(DistVar(n) for n in names.replace(",", " ").split())
