"""TACO substrate: tensor index notation, sparse formats, scheduling.

Reimplements the parts of TACO (Kjolstad et al., OOPSLA'17) that SpDISTAL
builds on: the format language with Dense/Compressed level formats
(Chou et al.), tensor packing into the coordinate-tree encoding, tensor
index notation, and the sparse iteration-space scheduling transformations
(Senanayake et al.).
"""
from .index_vars import DistVar, IndexVar, dist_vars, index_vars
from .expr import Access, Add, Assignment, IndexExpr, Literal, Mul
from .formats import (
    CSC,
    CSF3,
    CSR,
    DDC,
    DENSE_MATRIX,
    DENSE_VECTOR,
    SPARSE_VECTOR,
    Compressed,
    Dense,
    Format,
    LevelFormat,
    dense_format,
)
from .tensor import CompressedLevel, DenseLevel, Tensor
from .reference import evaluate, evaluate_expr, var_sizes
from .coord_tree import CoordTree, tree_partition_from_level
from .schedule import (
    CPUThread,
    FuseRel,
    GPUBlock,
    GPUThread,
    ParallelUnit,
    PosRel,
    Schedule,
    SplitRel,
)

__all__ = [
    "DistVar", "IndexVar", "dist_vars", "index_vars",
    "Access", "Add", "Assignment", "IndexExpr", "Literal", "Mul",
    "CSC", "CSF3", "CSR", "DDC", "DENSE_MATRIX", "DENSE_VECTOR",
    "SPARSE_VECTOR", "Compressed", "Dense", "Format", "LevelFormat",
    "dense_format",
    "CompressedLevel", "DenseLevel", "Tensor",
    "evaluate", "evaluate_expr", "var_sizes",
    "CoordTree", "tree_partition_from_level",
    "CPUThread", "FuseRel", "GPUBlock", "GPUThread", "ParallelUnit",
    "PosRel", "Schedule", "SplitRel",
]
