"""Tensors stored in SpDISTAL's distributed sparse encoding (paper Fig. 7).

Each storage level is either

* :class:`DenseLevel` — an implicit level of ``size`` slots per parent
  entry (its position space is ``P_parent * size``), or
* :class:`CompressedLevel` — a rect-valued ``pos`` region over the parent's
  position space and a ``crd`` region holding the non-zero coordinates.

``pos[i] = [lo, hi]`` (inclusive) names the positions of entry ``i``'s
children in ``crd`` — the encoding SpDISTAL uses so that Legion's
``image``/``preimage`` can relate partitions of ``pos`` and ``crd``.
Values live in a ``vals`` region over the last level's position space.
"""
from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import FormatError
from ..legion.index_space import IndexSpace
from ..legion.region import RectRegion, Region, make_pos_region
from .expr import Access, Add, Assignment, IndexExpr
from .formats import Compressed, Dense, Format, dense_format
from .index_vars import IndexVar

__all__ = ["DenseLevel", "CompressedLevel", "Tensor"]


class DenseLevel:
    """A dense storage level: ``size`` implicit slots per parent entry."""

    def __init__(self, size: int, num_positions: int):
        self.size = int(size)
        self.num_positions = int(num_positions)  # P_l = P_{l-1} * size
        self.pos_ispace = IndexSpace(self.num_positions, name="dense_dom")

    @property
    def is_dense(self) -> bool:
        return True

    @property
    def nbytes(self) -> int:
        return 0  # implicit

    def __repr__(self) -> str:
        return f"DenseLevel(size={self.size})"


class CompressedLevel:
    """A compressed level: rect ``pos`` over the parent positions + ``crd``."""

    def __init__(self, pos: RectRegion, crd: Region):
        self.pos = pos
        self.crd = crd

    @property
    def is_dense(self) -> bool:
        return False

    @property
    def num_positions(self) -> int:
        return self.crd.ispace.volume

    @property
    def pos_ispace(self) -> IndexSpace:
        return self.crd.ispace

    @property
    def nbytes(self) -> int:
        return self.pos.nbytes + self.crd.nbytes

    def counts(self) -> np.ndarray:
        """Children per parent entry (empty ranges count zero)."""
        return np.maximum(self.pos.hi - self.pos.lo + 1, 0)

    def __repr__(self) -> str:
        return f"CompressedLevel(parents={self.pos.ispace.volume}, nnz={self.num_positions})"


class Tensor:
    """A (possibly sparse) tensor packed into per-level regions.

    Construct with :meth:`from_coo`, :meth:`from_dense`, :meth:`from_scipy`
    or :meth:`zeros`; index with ``T[i, j]`` to build tensor index notation.
    """

    def __init__(
        self,
        name: str,
        shape: Sequence[int],
        format: Optional[Format] = None,
        dtype=np.float64,
    ):
        self.name = name
        self.shape: Tuple[int, ...] = tuple(int(s) for s in shape)
        self.format = format if format is not None else dense_format(len(self.shape))
        if self.format.order != len(self.shape):
            raise FormatError(
                f"format order {self.format.order} != tensor order {len(self.shape)}"
            )
        self.dtype = np.dtype(dtype)
        self.levels: List[Union[DenseLevel, CompressedLevel]] = []
        self.vals: Optional[Region] = None
        self.assignment: Optional[Assignment] = None
        #: Monotone counter identifying this tensor's *sparsity pattern*.
        #: Bumped whenever the level structure (pos/crd metadata, region
        #: identity) changes — packing, assembly, pattern adoption — but NOT
        #: by in-place writes to ``vals.data``.  Caches key on it so that
        #: value updates reuse partitions while structural changes miss.
        self.pattern_version: int = 0
        #: How many times this tensor's pattern has been rebuilt *as the
        #: assembled output* of an unknown-pattern statement (SpAdd's
        #: two-phase assembly).  An observability counter, not a cache
        #: key: the mechanism that keeps iterative SpAdd from recompiling
        #: is that kernel fingerprints *exclude* the LHS pattern version
        #: for assembled statements (an output pattern is what the kernel
        #: produces, not consumes — see
        #: :func:`repro.core.cache.is_assembled_output`).  The artifact
        #: store records and validates this counter in its manifest, and
        #: consumers of the tensor still see every structural change
        #: through ``pattern_version``.
        self.assembly_version: int = 0
        if self.format.is_all_dense():
            self._init_dense_levels()

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def from_coo(
        name: str,
        coords: Sequence[np.ndarray],
        vals: np.ndarray,
        shape: Sequence[int],
        format: Optional[Format] = None,
        dtype=np.float64,
    ) -> "Tensor":
        t = Tensor(name, shape, format, dtype)
        t._pack(
            [np.asarray(c, dtype=np.int64) for c in coords],
            np.asarray(vals, dtype=t.dtype),
        )
        return t

    @staticmethod
    def from_dense(name: str, array: np.ndarray, format: Optional[Format] = None) -> "Tensor":
        array = np.asarray(array)
        t = Tensor(name, array.shape, format, array.dtype)
        if t.format.is_all_dense():
            t._set_dense_values(array)
        else:
            nz = np.nonzero(array)
            t._pack([np.asarray(c, dtype=np.int64) for c in nz], array[nz])
        return t

    @staticmethod
    def from_scipy(name: str, mat, format: Optional[Format] = None) -> "Tensor":
        coo = mat.tocoo()
        return Tensor.from_coo(
            name,
            [coo.row.astype(np.int64), coo.col.astype(np.int64)],
            coo.data,
            coo.shape,
            format,
        )

    @staticmethod
    def zeros(
        name: str, shape: Sequence[int], format: Optional[Format] = None, dtype=np.float64
    ) -> "Tensor":
        t = Tensor(name, shape, format, dtype)
        if not t.format.is_all_dense():
            # Sparse output: structurally empty until assembled.
            t._pack([np.empty(0, dtype=np.int64) for _ in shape], np.empty(0, dtype=dtype))
        return t

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def order(self) -> int:
        return len(self.shape)

    @property
    def nnz(self) -> int:
        """Number of stored values (the last level's position count)."""
        return 0 if self.vals is None else self.vals.ispace.volume

    @property
    def nbytes(self) -> int:
        lvl = sum(l.nbytes for l in self.levels)
        return lvl + (self.vals.nbytes if self.vals is not None else 0)

    def stored_shape(self) -> Tuple[int, ...]:
        """Dimension sizes in storage-level order."""
        return tuple(self.shape[m] for m in self.format.mode_ordering)

    def regions(self):
        """Yield this tensor's backing regions (each ``pos``/``crd`` of the
        compressed levels, then ``vals``), deduplicated by identity —
        ``adopt_pattern`` shares level regions between tensors."""
        seen = set()
        for lvl in self.levels:
            if isinstance(lvl, CompressedLevel):
                for region in (lvl.pos, lvl.crd):
                    if id(region) not in seen:
                        seen.add(id(region))
                        yield region
        if self.vals is not None and id(self.vals) not in seen:
            yield self.vals

    def ensure_writable(self) -> int:
        """Promote every read-only (mmap-backed) region of this tensor to a
        private writable copy (see :meth:`repro.legion.region.Region.promote`);
        returns the number of regions promoted.  Required before writing
        ``region.data`` directly on a tensor loaded with ``mmap=True`` —
        region-method writes promote automatically, raw NumPy writes do not.
        Promotions fire the registered ``pattern_version`` bump hooks, so
        call this *before* the first compile over the tensor (or pass
        ``writable=[name]`` to ``load_packed``) to keep warm-start cache
        hits intact."""
        return sum(1 for r in self.regions() if r.promote())

    # ------------------------------------------------------------------ #
    # index notation
    # ------------------------------------------------------------------ #
    def __getitem__(self, indices) -> Access:
        if isinstance(indices, IndexVar):
            indices = (indices,)
        return Access(self, indices)

    def __setitem__(self, indices, expr) -> None:
        if isinstance(indices, IndexVar):
            indices = (indices,)
        lhs = Access(self, indices)
        accumulate = False
        if isinstance(expr, Add) and expr.operands:
            first = expr.operands[0]
            if (
                isinstance(first, Access)
                and first.tensor is self
                and first.indices == lhs.indices
            ):
                accumulate = True
                rest = expr.operands[1:]
                expr = rest[0] if len(rest) == 1 else Add(rest)
        self.assignment = Assignment(lhs, expr, accumulate=accumulate)
        # Lazy programs (repro.api) capture assignments written inside a
        # ``with session.program()`` block; a no-op when none is active.
        from .capture import notify_assignment

        notify_assignment(self.assignment)

    def schedule(self):
        """Start scheduling the statement last assigned to this tensor."""
        if self.assignment is None:
            raise ValueError(f"no statement assigned to {self.name}")
        from .schedule import Schedule

        return Schedule(self.assignment)

    def _bump_pattern_version(self) -> None:
        """Record a sparsity-pattern mutation (new levels / metadata regions).

        Invalidates cached partitions and compiled kernels that captured the
        old structure (their cache keys embed the version).  Value-only
        writes must not call this.
        """
        self.pattern_version += 1

    def _bump_assembly_version(self) -> None:
        """Record one re-assembly of this tensor as an unknown-pattern
        output (see ``assembly_version``).  Always paired with a
        ``_bump_pattern_version`` by the assembly code — input-side caches
        must still see the structural change."""
        self.assembly_version += 1

    # ------------------------------------------------------------------ #
    # persistence (the artifact store; see repro.core.store)
    # ------------------------------------------------------------------ #
    def save(self, path, *, include_caches: bool = True, runtime=None):
        """Persist this packed tensor (pickle + JSON manifest) to ``path``.

        With ``include_caches`` (the default) every kernel-cache and
        partition-memo entry referencing this tensor is stored alongside —
        including the companion tensors and runtimes those entries pin — so
        :meth:`load` in a fresh process warm-starts straight to the cached
        steady state.  Delegates to :func:`repro.core.store.save_packed`.
        """
        from ..core.store import save_packed

        return save_packed(path, self, include_caches=include_caches,
                           runtime=runtime)

    @staticmethod
    def load(path) -> "Tensor":
        """Load the primary tensor of an artifact saved by :meth:`save`,
        re-seeding the kernel cache and partition memo as a side effect.
        Use :func:`repro.core.store.load_packed` to also reach the
        companion tensors and the restored runtime."""
        from ..core.store import load_packed

        return load_packed(path).tensor

    # ------------------------------------------------------------------ #
    # packing (COO -> levels)
    # ------------------------------------------------------------------ #
    def _init_dense_levels(self) -> None:
        """All-dense tensors store an N-D vals region (stored-shape order),
        so dense distributions partition it with N-D rectangles directly."""
        self.levels = []
        p = 1
        for size in self.stored_shape():
            p *= size
            self.levels.append(DenseLevel(size, p))
        self.vals = Region(
            IndexSpace(self.stored_shape(), name=f"{self.name}_vals"),
            self.dtype,
            name=f"{self.name}.vals",
        )
        self._bump_pattern_version()

    def _set_dense_values(self, array: np.ndarray) -> None:
        self._init_dense_levels()
        stored = np.transpose(array, self.format.mode_ordering)
        self.vals.data[...] = np.ascontiguousarray(stored).astype(self.dtype)

    def _pack(self, coords: List[np.ndarray], vals: np.ndarray) -> None:
        if self.format.is_all_dense():
            dense = np.zeros(self.shape, dtype=self.dtype)
            if vals.size:
                np.add.at(dense, tuple(np.asarray(c, dtype=np.int64) for c in coords), vals)
            self._set_dense_values(dense)
            return
        order = self.order
        if len(coords) != order:
            raise ValueError(f"expected {order} coordinate arrays, got {len(coords)}")
        nnz = vals.size
        for mode, c in enumerate(coords):
            if c.size != nnz:
                raise ValueError("coordinate/value length mismatch")
            if c.size and (c.min() < 0 or c.max() >= self.shape[mode]):
                raise ValueError(f"mode-{mode} coordinates out of bounds")
        stored = [coords[m] for m in self.format.mode_ordering]
        sizes = self.stored_shape()

        if nnz:
            # Lexicographic sort by storage order, then fold duplicates.
            sort = np.lexsort(tuple(reversed(stored)))
            stored = [c[sort] for c in stored]
            vals = vals[sort]
            if nnz > 1:
                dup = np.ones(nnz, dtype=bool)
                same = np.ones(nnz - 1, dtype=bool)
                for c in stored:
                    same &= c[1:] == c[:-1]
                dup[1:] = ~same
                if not dup.all():
                    group = np.cumsum(dup) - 1
                    vals = np.bincount(group, weights=vals, minlength=group[-1] + 1).astype(
                        self.dtype
                    )
                    stored = [c[dup] for c in stored]
                    nnz = vals.size

        self.levels = []
        parent_ids = np.zeros(nnz, dtype=np.int64)
        num_parents = 1
        for l, lf in enumerate(self.format.levels):
            size = sizes[l]
            if lf.is_dense:
                parent_ids = parent_ids * size + stored[l]
                num_parents *= size
                self.levels.append(DenseLevel(size, num_parents))
            else:
                if nnz:
                    change = np.ones(nnz, dtype=bool)
                    change[1:] = (parent_ids[1:] != parent_ids[:-1]) | (
                        stored[l][1:] != stored[l][:-1]
                    )
                    entry_ids = np.cumsum(change) - 1
                    crd_vals = stored[l][change]
                    parents_of_entries = parent_ids[change]
                    counts = np.bincount(parents_of_entries, minlength=num_parents)
                else:
                    entry_ids = parent_ids
                    crd_vals = np.empty(0, dtype=np.int64)
                    counts = np.zeros(num_parents, dtype=np.int64)
                pos = make_pos_region(counts, name=f"{self.name}.pos{l}")
                crd = Region(
                    IndexSpace(crd_vals.size, name=f"{self.name}_crd{l}"),
                    np.int64,
                    data=crd_vals,
                    name=f"{self.name}.crd{l}",
                )
                self.levels.append(CompressedLevel(pos, crd))
                parent_ids = entry_ids
                num_parents = crd_vals.size
        self.vals = Region(
            IndexSpace(num_parents, name=f"{self.name}_vals"), self.dtype,
            name=f"{self.name}.vals",
        )
        if nnz:
            np.add.at(self.vals.data, parent_ids, vals)
        self._bump_pattern_version()

    # ------------------------------------------------------------------ #
    # unpacking
    # ------------------------------------------------------------------ #
    def to_coo(self) -> Tuple[List[np.ndarray], np.ndarray]:
        """Return stored coordinates (tensor-mode order) and values.

        Dense levels enumerate every slot, so explicit zeros under a dense
        level are included — matching what the structure actually stores.
        """
        if self.vals is None:
            return [np.empty(0, dtype=np.int64) for _ in self.shape], np.empty(0, self.dtype)
        if self.format.is_all_dense():
            grids = np.indices(self.stored_shape()).reshape(self.order, -1)
            coords_mode: List[np.ndarray] = [None] * self.order  # type: ignore
            for l, m in enumerate(self.format.mode_ordering):
                coords_mode[m] = grids[l].astype(np.int64)
            return coords_mode, self.vals.data.ravel().copy()
        coords_storage: List[np.ndarray] = []
        current = np.zeros(1, dtype=np.int64)  # positions at the current level
        for lvl in self.levels:
            if lvl.is_dense:
                p = current.size
                parent_sel = np.repeat(np.arange(p), lvl.size)
                coord = np.tile(np.arange(lvl.size, dtype=np.int64), p)
                coords_storage = [c[parent_sel] for c in coords_storage]
                coords_storage.append(coord)
                current = current[parent_sel] * lvl.size + coord
            else:
                counts = lvl.counts()[current]
                parent_sel = np.repeat(np.arange(current.size), counts)
                starts = lvl.pos.lo[current]
                offsets = np.concatenate(
                    [np.arange(c, dtype=np.int64) for c in counts]
                ) if counts.size else np.empty(0, dtype=np.int64)
                child_pos = starts[parent_sel] + offsets
                coords_storage = [c[parent_sel] for c in coords_storage]
                coords_storage.append(lvl.crd.data[child_pos])
                current = child_pos
        values = self.vals.data[current]
        coords_mode: List[np.ndarray] = [None] * self.order  # type: ignore
        for l, m in enumerate(self.format.mode_ordering):
            coords_mode[m] = coords_storage[l]
        return coords_mode, values

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=self.dtype)
        coords, vals = self.to_coo()
        if vals.size:
            np.add.at(out, tuple(coords), vals)
        return out

    def to_scipy(self):
        import scipy.sparse as sp

        if self.order != 2:
            raise ValueError("to_scipy requires a matrix")
        coords, vals = self.to_coo()
        return sp.coo_matrix((vals, (coords[0], coords[1])), shape=self.shape).tocsr()

    # ------------------------------------------------------------------ #
    # convenient raw views for leaf kernels
    # ------------------------------------------------------------------ #
    def dense_array(self) -> np.ndarray:
        """The values of an all-dense tensor, shaped in tensor-mode order."""
        if not self.format.is_all_dense():
            raise FormatError(f"{self.name} is not dense")
        inverse = np.argsort(self.format.mode_ordering)
        return np.transpose(self.vals.data, inverse)

    def csr_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(pos, crd, vals) of a {Dense, Compressed} matrix (rect-pos form)."""
        if len(self.levels) != 2 or self.levels[0].is_dense is False or self.levels[1].is_dense:
            raise FormatError(f"{self.name} is not in a {{Dense, Compressed}} format")
        lvl = self.levels[1]
        return lvl.pos.data, lvl.crd.data, self.vals.data

    def level(self, l: int) -> Union[DenseLevel, CompressedLevel]:
        return self.levels[l]

    def __repr__(self) -> str:
        return (
            f"Tensor({self.name}, shape={self.shape}, format={self.format.name}, "
            f"nnz={self.nnz})"
        )
