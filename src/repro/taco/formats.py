"""The format language: per-dimension level formats (paper §II-B, Fig. 3).

A k-dimensional tensor is stored as a stack of k *level formats*, one per
coordinate-tree level.  ``Dense`` stores every coordinate of the dimension;
``Compressed`` stores only the non-zero coordinates with a ``pos``/``crd``
pair.  ``mode_ordering`` maps storage levels to tensor modes, so CSC is the
same level stack as CSR with the dimensions stored in reverse order.

A :class:`Format` may also carry a data *distribution* (tensor distribution
notation), mirroring the paper's Fig. 1 where ``Format BlockedCSR({Dense,
Compressed}, Distribution(...))`` couples structure and placement.
"""
from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..errors import FormatError

__all__ = [
    "LevelFormat",
    "Dense",
    "Compressed",
    "Format",
    "CSR",
    "CSC",
    "CSF3",
    "DDC",
    "DENSE_VECTOR",
    "DENSE_MATRIX",
    "SPARSE_VECTOR",
    "dense_format",
]


class LevelFormat:
    """One coordinate-tree level's physical encoding."""

    def __init__(self, name: str, *, compressed: bool):
        self.name = name
        self.compressed = compressed

    @property
    def is_dense(self) -> bool:
        return not self.compressed

    @property
    def is_compressed(self) -> bool:
        return self.compressed

    def __repr__(self) -> str:
        return self.name


Dense = LevelFormat("Dense", compressed=False)
Compressed = LevelFormat("Compressed", compressed=True)


class Format:
    """An ordered stack of level formats plus an optional data distribution."""

    def __init__(
        self,
        levels: Sequence[LevelFormat],
        mode_ordering: Optional[Sequence[int]] = None,
        distribution=None,
        *,
        name: str = "",
    ):
        self.levels: Tuple[LevelFormat, ...] = tuple(levels)
        if not self.levels:
            raise FormatError("a format needs at least one level")
        for lf in self.levels:
            if not isinstance(lf, LevelFormat):
                raise FormatError(f"not a level format: {lf!r}")
        order = len(self.levels)
        if mode_ordering is None:
            mode_ordering = tuple(range(order))
        self.mode_ordering: Tuple[int, ...] = tuple(int(m) for m in mode_ordering)
        if sorted(self.mode_ordering) != list(range(order)):
            raise FormatError(
                f"mode_ordering must be a permutation of 0..{order - 1}, "
                f"got {self.mode_ordering}"
            )
        self.distribution = distribution
        self.name = name or self._default_name()

    @property
    def order(self) -> int:
        return len(self.levels)

    def is_all_dense(self) -> bool:
        return all(lf.is_dense for lf in self.levels)

    def has_compressed(self) -> bool:
        return any(lf.is_compressed for lf in self.levels)

    def level_of_mode(self, mode: int) -> int:
        """Storage level at which tensor dimension ``mode`` is stored."""
        return self.mode_ordering.index(mode)

    def with_distribution(self, distribution) -> "Format":
        return Format(self.levels, self.mode_ordering, distribution, name=self.name)

    def _default_name(self) -> str:
        lv = ",".join(lf.name[0] for lf in self.levels)  # e.g. "D,C"
        if self.mode_ordering != tuple(range(self.order)):
            return f"Format({lv};{self.mode_ordering})"
        return f"Format({lv})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Format)
            and self.levels == other.levels
            and self.mode_ordering == other.mode_ordering
        )

    def __hash__(self) -> int:
        return hash((self.levels, self.mode_ordering))

    def __repr__(self) -> str:
        return self.name


def dense_format(order: int) -> Format:
    return Format([Dense] * order, name=f"Dense{order}")


# Common formats from the paper's evaluation (§VI):
CSR = Format([Dense, Compressed], name="CSR")
CSC = Format([Dense, Compressed], mode_ordering=(1, 0), name="CSC")
CSF3 = Format([Dense, Compressed, Compressed], name="CSF3")
DDC = Format([Dense, Dense, Compressed], name="DDC")  # the "patents" format
DENSE_VECTOR = dense_format(1)
DENSE_MATRIX = dense_format(2)
SPARSE_VECTOR = Format([Compressed], name="SparseVec")
