"""Tensor index notation (TIN) abstract syntax.

A TIN statement assigns an expression built from accesses, ``+`` and ``*``
into a left-hand-side access (paper §II-A).  Index variables appearing only
on the right-hand side are sum-reduced over their domain.

Example (SpMV)::

    a[i] = B[i, j] * c[j]          # via Tensor.__setitem__
"""
from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from .index_vars import IndexVar

__all__ = ["IndexExpr", "Access", "Add", "Mul", "Literal", "Assignment"]


class IndexExpr:
    """Base class for TIN expressions; supports ``+`` and ``*``."""

    def __add__(self, other) -> "IndexExpr":
        return Add._make(self, _wrap(other))

    def __radd__(self, other) -> "IndexExpr":
        return Add._make(_wrap(other), self)

    def __mul__(self, other) -> "IndexExpr":
        return Mul._make(self, _wrap(other))

    def __rmul__(self, other) -> "IndexExpr":
        return Mul._make(_wrap(other), self)

    # -- analysis ---------------------------------------------------------
    def index_vars(self) -> List[IndexVar]:
        """Distinct index variables in first-appearance order."""
        out: List[IndexVar] = []
        self._collect_vars(out)
        return out

    def accesses(self) -> List["Access"]:
        out: List[Access] = []
        self._collect_accesses(out)
        return out

    def tensors(self) -> List:
        seen, out = set(), []
        for a in self.accesses():
            if id(a.tensor) not in seen:
                seen.add(id(a.tensor))
                out.append(a.tensor)
        return out

    def _collect_vars(self, out: List[IndexVar]) -> None:
        raise NotImplementedError

    def _collect_accesses(self, out: List["Access"]) -> None:
        raise NotImplementedError


class Literal(IndexExpr):
    def __init__(self, value: float):
        self.value = float(value)

    def _collect_vars(self, out):
        pass

    def _collect_accesses(self, out):
        pass

    def __repr__(self) -> str:
        return repr(self.value)


class Access(IndexExpr):
    """A tensor indexed by a list of index variables, e.g. ``B(i, j)``."""

    def __init__(self, tensor, indices: Sequence[IndexVar]):
        self.tensor = tensor
        self.indices: Tuple[IndexVar, ...] = tuple(indices)
        if len(self.indices) != tensor.order:
            raise ValueError(
                f"{tensor.name} has order {tensor.order} but was accessed "
                f"with {len(self.indices)} indices"
            )

    def _collect_vars(self, out):
        for iv in self.indices:
            if iv not in out:
                out.append(iv)

    def _collect_accesses(self, out):
        out.append(self)

    def __repr__(self) -> str:
        idx = ", ".join(v.name for v in self.indices)
        return f"{self.tensor.name}({idx})"


class _NaryOp(IndexExpr):
    symbol = "?"

    def __init__(self, operands: Sequence[IndexExpr]):
        self.operands: Tuple[IndexExpr, ...] = tuple(operands)

    @classmethod
    def _make(cls, a: IndexExpr, b: IndexExpr) -> "IndexExpr":
        ops: List[IndexExpr] = []
        for x in (a, b):
            if isinstance(x, cls):
                ops.extend(x.operands)
            else:
                ops.append(x)
        return cls(ops)

    def _collect_vars(self, out):
        for op in self.operands:
            op._collect_vars(out)

    def _collect_accesses(self, out):
        for op in self.operands:
            op._collect_accesses(out)

    def __repr__(self) -> str:
        return "(" + f" {self.symbol} ".join(map(repr, self.operands)) + ")"


class Add(_NaryOp):
    symbol = "+"


class Mul(_NaryOp):
    symbol = "*"


def _wrap(x) -> IndexExpr:
    if isinstance(x, IndexExpr):
        return x
    if isinstance(x, (int, float)):
        return Literal(x)
    raise TypeError(f"cannot use {type(x).__name__} in an index expression")


class Assignment:
    """``lhs = rhs`` (or ``lhs += rhs`` when ``accumulate``)."""

    def __init__(self, lhs: Access, rhs: IndexExpr, *, accumulate: bool = False):
        self.lhs = lhs
        self.rhs = _wrap(rhs)
        self.accumulate = accumulate

    @property
    def result_vars(self) -> Tuple[IndexVar, ...]:
        return self.lhs.indices

    @property
    def reduction_vars(self) -> List[IndexVar]:
        """RHS-only variables, which are sum-reduced (paper §II-A)."""
        lhs = set(self.lhs.indices)
        return [v for v in self.rhs.index_vars() if v not in lhs]

    def index_vars(self) -> List[IndexVar]:
        """All distinct variables: LHS order first, then reduction variables."""
        out = list(self.lhs.indices)
        for v in self.rhs.index_vars():
            if v not in out:
                out.append(v)
        return out

    def accesses(self) -> List[Access]:
        return [self.lhs] + self.rhs.accesses()

    def tensors(self) -> List:
        seen, out = set(), []
        for a in self.accesses():
            if id(a.tensor) not in seen:
                seen.add(id(a.tensor))
                out.append(a.tensor)
        return out

    def is_additive(self) -> bool:
        """True when the RHS is a pure addition of accesses (e.g. SpAdd3)."""
        return isinstance(self.rhs, Add) and all(
            isinstance(op, Access) for op in self.rhs.operands
        )

    def __repr__(self) -> str:
        op = "+=" if self.accumulate else "="
        return f"{self.lhs!r} {op} {self.rhs!r}"
