"""Multi-tenant serving: N logical tenants over one warm compile substrate.

SpDISTAL's value proposition is compile-once / run-many: schedule
synthesis, autotuning and mapping-trace replay amortize across executions.
A single :class:`~repro.api.session.Session` reaps that for one caller;
this module multiplexes *many* callers — logical tenants issuing
einsum-style requests concurrently — over a pool of pre-warmed runtimes
that share the process-wide kernel cache, partition memo, decision table
and AOT module registry (all thread-safe; see the thread-safety notes in
:mod:`repro.core.cache` and :mod:`repro.codegen.registry`)::

    import repro

    with repro.serve(nodes=4, workers=4) as srv:
        srv.put_tensor("B", scipy_matrix, repro.CSR)
        srv.put_tensor("c", dense_vector)
        fut = srv.submit("ij,j->i", "B", "c", tenant="alice")
        result = fut.result()          # ServeResult: value + latency + key

Three mechanisms make the multiplexing safe and cheap:

* **Single-flight compile/tune** — requests are canonicalized to a
  *request key* (normalized subscripts + catalog operand names + tuning
  mode).  The first thread to miss becomes the build leader: it compiles
  (and, in tuned mode, runs the full :meth:`Session.autotune` search)
  exactly once while every concurrent identical request waits on the
  leader's event and then shares the built entry.  N tenants asking for
  the same SpMV lower and tune **once** — the dedup the serving bench
  gate asserts via cache and AotEntry counters.

* **Per-entry execution serialization** — each distinct request signature
  owns one output tensor and one compiled kernel; executions of that
  signature serialize on the entry lock (responses copy the output
  array out before releasing), so results are bit-identical to serial
  execution while *different* signatures run in parallel across the
  worker pool.

* **Tenant byte budgets with admission control** — every tenant carries a
  compile-cache budget; the build leader's tenant is charged the
  estimated bytes its new kernel (and generated AOT source) pin in the
  shared caches.  A tenant at or over budget is refused at admission
  (:class:`~repro.errors.TenantBudgetError`) until the operator raises
  its budget — cache hits cost nothing, so steady-state tenants keep
  flowing while a tenant flooding distinct compiles is shed.

``tools/bench_check.py --scenario serving`` gates the layer: p50/p99
latency and aggregate throughput under a mixed SpMV/SpMM/SDDMM open-loop
load from 8 tenants, ≥3x the isolated-serial-tenant baseline, with
compile/tune work deduplicated to one per distinct request and results
bit-identical to serial execution (see :mod:`repro.bench.servingbench`
and ``docs/serving.md``).
"""
from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from queue import SimpleQueue
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core import cache as _cache
from ..errors import ServingError, TenantBudgetError
from ..legion.machine import Machine
from ..taco.expr import Access, Assignment
from ..taco.formats import Format
from ..taco.index_vars import IndexVar
from ..taco.tensor import Tensor
from .einsum import _parse_spec
from .session import Session

__all__ = ["Server", "ServeResult", "TenantStats", "serve"]

_SHUTDOWN = object()


@dataclass
class TenantStats:
    """Admission-control accounting for one logical tenant."""

    name: str
    budget_bytes: Optional[int] = None  # None: unlimited
    charged_bytes: int = 0  # estimated cache bytes this tenant's compiles pin
    admitted: int = 0
    rejected: int = 0
    completed: int = 0

    @property
    def over_budget(self) -> bool:
        return (self.budget_bytes is not None
                and self.charged_bytes >= self.budget_bytes)


@dataclass
class ServeResult:
    """One served request: the value plus its latency breakdown."""

    value: np.ndarray  #: a private copy of the output (dense rendering)
    tenant: str
    key: Tuple  #: the canonical request key the entry is shared under
    latency_s: float  #: submit → response (queueing + compile wait + run)
    execute_s: float  #: the execution slice alone
    compiled: bool  #: True when *this* request led the single-flight build
    strategy: Optional[str] = None  #: tuned winner (tuned entries only)


@dataclass
class _Entry:
    """One distinct request signature's shared compile state."""

    key: Tuple
    assignment: Assignment
    out: Tensor
    kernel: Any
    compile_bytes: int
    strategy: Optional[str] = None
    lock: threading.Lock = field(default_factory=threading.Lock)
    executions: int = 0


class _Flight:
    """The single-flight cell one build leader publishes through."""

    def __init__(self) -> None:
        self.done = threading.Event()
        self.entry: Optional[_Entry] = None
        self.error: Optional[BaseException] = None


@dataclass
class _Request:
    key: Tuple
    spec: str
    operands: Tuple[str, ...]
    tenant: str
    tune: bool
    out_format: Optional[Format]
    future: Future
    submitted: float


class Server:
    """A threaded request scheduler over a pool of pre-warmed runtimes.

    ``workers`` sessions are built eagerly (each owns its runtime — the
    pre-warmed pool) against one shared :class:`Machine`, so every kernel
    fingerprint agrees across the pool and the process-wide caches serve
    all of them.  Requests go through :meth:`submit`, which returns a
    :class:`concurrent.futures.Future` resolving to a :class:`ServeResult`.

    Dispatch is *key-affine*: each request key hashes to one owning
    worker, so executions of one signature — which must serialize anyway
    (they share the signature's output tensor) — queue on their owner
    while distinct signatures run on different workers, instead of
    convoying the whole pool on a per-entry lock.

    The server is a context manager; :meth:`close` drains the workers.
    """

    def __init__(
        self,
        machine: Optional[Machine] = None,
        *,
        nodes: Optional[int] = None,
        gpus: Optional[int] = None,
        workers: int = 4,
        backend: Optional[str] = None,
        tune: bool = False,
        trials: int = 2,
        default_budget_bytes: Optional[int] = None,
        tenant_budgets: Optional[Dict[str, Optional[int]]] = None,
        store=None,
    ):
        if workers < 1:
            raise ValueError(f"a server needs at least one worker, got {workers}")
        if machine is None:
            machine = (Machine.gpu(gpus) if gpus is not None
                       else Machine.cpu(nodes if nodes is not None else 1))
        elif nodes is not None or gpus is not None:
            raise ValueError("pass either machine= or nodes=/gpus=, not both")
        self.machine = machine
        self.tune = bool(tune)
        self.trials = int(trials)
        self.default_budget_bytes = default_budget_bytes
        self._lock = threading.RLock()
        self._catalog: Dict[str, Tensor] = {}
        self._entries: Dict[Tuple, _Entry] = {}
        self._building: Dict[Tuple, _Flight] = {}
        self._tenants: Dict[str, TenantStats] = {}
        for name, budget in (tenant_budgets or {}).items():
            self._tenants[name] = TenantStats(name, budget_bytes=budget)
        self._closed = False
        self.compiles = 0  # single-flight builds (== distinct entries)
        # The pre-warmed pool: one session (machine + runtime + optional
        # store handle) per worker, all over the same Machine object so
        # structural signatures — and therefore cache keys — coincide.
        self._sessions = [
            Session(machine=self.machine, backend=backend, store=store)
            for _ in range(workers)
        ]
        # Key-affinity dispatch: every request key hashes to one owning
        # worker (its own queue), so executions of one signature — which
        # must serialize anyway, they share the signature's output tensor —
        # line up on their owner instead of convoying idle workers on the
        # entry lock, while distinct signatures spread across the pool.
        self._queues: List["SimpleQueue[Any]"] = [
            SimpleQueue() for _ in self._sessions
        ]
        self._threads = [
            threading.Thread(
                target=self._worker, args=(s, q), name=f"repro-serve-{i}",
                daemon=True,
            )
            for i, (s, q) in enumerate(zip(self._sessions, self._queues))
        ]
        for t in self._threads:
            t.start()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def __enter__(self) -> "Server":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Stop accepting work, drain the queue, and join the pool
        (idempotent).  Pending futures complete before workers exit."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for q in self._queues:
            q.put(_SHUTDOWN)
        for t in self._threads:
            t.join()
        for s in self._sessions:
            s.close()

    # ------------------------------------------------------------------ #
    # catalog
    # ------------------------------------------------------------------ #
    def put_tensor(self, name: str, data, format: Optional[Format] = None
                   ) -> Tensor:
        """Register a shared operand under ``name`` (packed via
        :meth:`Session.tensor` semantics).  Requests reference catalog
        tensors by name, which is what lets identical requests from
        different tenants share one compile.  Re-registering a name with a
        different object is an error — tenants already hold entries
        compiled against the old structure."""
        with self._lock:
            existing = self._catalog.get(name)
            if existing is not None:
                raise ServingError(
                    f"catalog tensor {name!r} is already registered; "
                    "serve a new version under a new name"
                )
            t = self._sessions[0].tensor(name, data, format)
            self._catalog[name] = t
            return t

    def catalog(self) -> List[str]:
        """The registered catalog tensor names (sorted)."""
        with self._lock:
            return sorted(self._catalog)

    def _resolve(self, token: str) -> Tensor:
        t = self._catalog.get(token)
        if t is None:
            raise ServingError(
                f"unknown catalog tensor {token!r}; register it with "
                f"put_tensor() first (catalog: {self.catalog()})"
            )
        return t

    # ------------------------------------------------------------------ #
    # tenants / admission control
    # ------------------------------------------------------------------ #
    def tenant(self, name: str) -> TenantStats:
        """The (auto-created) accounting record for tenant ``name``."""
        with self._lock:
            t = self._tenants.get(name)
            if t is None:
                t = self._tenants[name] = TenantStats(
                    name, budget_bytes=self.default_budget_bytes
                )
            return t

    def set_tenant_budget(self, name: str, budget_bytes: Optional[int]) -> None:
        """Set (or lift, with ``None``) one tenant's compile byte budget."""
        with self._lock:
            self.tenant(name).budget_bytes = budget_bytes

    def tenant_stats(self) -> Dict[str, TenantStats]:
        """A snapshot of every tenant's accounting record."""
        with self._lock:
            return {
                k: TenantStats(v.name, v.budget_bytes, v.charged_bytes,
                               v.admitted, v.rejected, v.completed)
                for k, v in self._tenants.items()
            }

    def _admit(self, tenant: str, key: Tuple) -> TenantStats:
        """Admission control: an over-budget tenant may only ride warm
        entries.  A request whose signature is already built (or building
        on someone else's charge) costs nothing and is always admitted;
        one that would lead a fresh compile/tune is refused."""
        with self._lock:
            t = self.tenant(tenant)
            warm = key in self._entries or key in self._building
            if t.over_budget and not warm:
                t.rejected += 1
                raise TenantBudgetError(tenant, t.charged_bytes,
                                        t.budget_bytes or 0)
            t.admitted += 1
            return t

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        spec: str,
        *operands: Union[str, Tensor],
        tenant: str = "default",
        tune: Optional[bool] = None,
        out_format: Optional[Format] = None,
    ) -> "Future[ServeResult]":
        """Enqueue one einsum-style request for ``tenant``; returns a future.

        ``operands`` name catalog tensors (strings) or pass
        :class:`Tensor` objects, which are registered under their own
        names on first use.  ``tune`` (default: the server's mode) routes
        the build through :meth:`Session.autotune` — searched once per
        statement family, then replayed.  ``out_format`` requests a
        formatted output (e.g. ``repro.CSR`` for SDDMM's sampled output).
        Admission control runs here: a tenant over its compile budget gets
        :class:`~repro.errors.TenantBudgetError` instead of a future —
        unless the signature is already warm (built or building), which
        costs the tenant nothing and is always admitted.
        """
        with self._lock:
            if self._closed:
                raise ServingError("cannot submit to a closed server")
        tokens = []
        for op in operands:
            if isinstance(op, Tensor):
                with self._lock:
                    held = self._catalog.get(op.name)
                    if held is None:
                        self._catalog[op.name] = op
                    elif held is not op:
                        raise ServingError(
                            f"operand tensor {op.name!r} collides with a "
                            "different catalog tensor of the same name"
                        )
                tokens.append(op.name)
            else:
                self._resolve(op)  # fail fast on unknown names
                tokens.append(op)
        do_tune = self.tune if tune is None else bool(tune)
        norm = spec.replace(" ", "")
        _parse_spec(norm, len(tokens))  # fail fast on malformed subscripts
        key = (norm, tuple(tokens), do_tune,
               out_format.name if out_format is not None else None)
        self._admit(tenant, key)
        fut: "Future[ServeResult]" = Future()
        owner = hash(key) % len(self._queues)
        self._queues[owner].put(_Request(
            key=key, spec=norm, operands=tuple(tokens), tenant=tenant,
            tune=do_tune, out_format=out_format, future=fut,
            submitted=time.perf_counter(),
        ))
        return fut

    def submit_program(
        self,
        requests: Sequence[Tuple],
        *,
        tenant: str = "default",
        **kw,
    ) -> List["Future[ServeResult]"]:
        """Submit a multi-statement program as an ordered request batch:
        each item is ``(spec, *operand_names)``.  Statements share the
        single-flight entries like any other request, so two tenants
        submitting the same program compile it once."""
        return [self.submit(item[0], *item[1:], tenant=tenant, **kw)
                for item in requests]

    def warm(self, requests: Sequence[Tuple], *, tenant: str = "__warm__"
             ) -> None:
        """Pre-build entries for ``requests`` (blocking): the operator's
        warm-up hook so first tenant requests land on a hot substrate."""
        for fut in self.submit_program(requests, tenant=tenant):
            fut.result()

    # ------------------------------------------------------------------ #
    # worker loop
    # ------------------------------------------------------------------ #
    def _worker(self, session: Session, queue: "SimpleQueue[Any]") -> None:
        while True:
            item = queue.get()
            if item is _SHUTDOWN:
                return
            req: _Request = item
            if not req.future.set_running_or_notify_cancel():
                continue
            try:
                req.future.set_result(self._serve(session, req))
            except BaseException as e:  # noqa: BLE001 - futures carry errors
                req.future.set_exception(e)

    def _serve(self, session: Session, req: _Request) -> ServeResult:
        entry, led = self._entry_for(session, req)
        t0 = time.perf_counter()
        with entry.lock:
            session.execute(entry.kernel)
            value = np.array(entry.out.to_dense(), copy=True)
            entry.executions += 1
        t1 = time.perf_counter()
        with self._lock:
            self.tenant(req.tenant).completed += 1
        return ServeResult(
            value=value,
            tenant=req.tenant,
            key=req.key,
            latency_s=t1 - req.submitted,
            execute_s=t1 - t0,
            compiled=led,
            strategy=entry.strategy,
        )

    # ------------------------------------------------------------------ #
    # single-flight build
    # ------------------------------------------------------------------ #
    def _entry_for(self, session: Session, req: _Request
                   ) -> Tuple[_Entry, bool]:
        """The shared entry for ``req.key``: built once by an elected
        leader; every concurrent identical request waits and shares it.
        Returns ``(entry, led)`` where ``led`` marks the leader."""
        while True:
            with self._lock:
                entry = self._entries.get(req.key)
                if entry is not None:
                    return entry, False
                flight = self._building.get(req.key)
                if flight is None:
                    flight = self._building[req.key] = _Flight()
                    break
            flight.done.wait()
            if flight.entry is not None:
                return flight.entry, False
            # Leader failed: loop to elect a new one (its error was
            # delivered to its own future; ours retries the build).
        try:
            entry = self._build_entry(session, req)
            with self._lock:
                self._entries[req.key] = entry
                self.compiles += 1
                self._charge(req.tenant, entry)
            flight.entry = entry
            return entry, True
        except BaseException as e:  # noqa: BLE001 - published to waiters
            flight.error = e
            raise
        finally:
            with self._lock:
                del self._building[req.key]
            flight.done.set()

    def _build_entry(self, session: Session, req: _Request) -> _Entry:
        tensors = [self._resolve(tok) for tok in req.operands]
        inputs, out_sub, additive = _parse_spec(req.spec, len(tensors))
        ivars: Dict[str, IndexVar] = {}
        sizes: Dict[str, int] = {}
        for sub, t in zip(inputs, tensors):
            if len(sub) != t.order:
                raise ServingError(
                    f"operand {t.name} has order {t.order} but subscripts "
                    f"{sub!r} name {len(sub)} indices"
                )
            for ch, dim in zip(sub, t.shape):
                if ch in sizes and sizes[ch] != dim:
                    raise ServingError(
                        f"index {ch!r} has inconsistent extents "
                        f"{sizes[ch]} and {dim}"
                    )
                sizes[ch] = dim
                ivars.setdefault(ch, IndexVar(ch))
        accesses = [Access(t, tuple(ivars[ch] for ch in sub))
                    for sub, t in zip(inputs, tensors)]
        rhs = accesses[0]
        for acc in accesses[1:]:
            rhs = (rhs + acc) if additive else (rhs * acc)
        out_shape = tuple(sizes[ch] for ch in out_sub)
        out = Tensor.zeros(f"serve_out_{len(self._entries)}", out_shape,
                           req.out_format)
        asg = Assignment(Access(out, tuple(ivars[ch] for ch in out_sub)), rhs)

        aot_before = _cache.cache_stats()["aot_bytes"]
        strategy = None
        if req.tune:
            res = session.autotune(asg, trials=self.trials, warm=False)
            kernel, strategy = res.kernel, res.strategy
        else:
            kernel = session.compile_kernel(asg)
        aot_after = _cache.cache_stats()["aot_bytes"]
        compile_bytes = (_cache.kernel_entry_nbytes(kernel)
                         + max(0, aot_after - aot_before))
        return _Entry(
            key=req.key, assignment=asg, out=out, kernel=kernel,
            compile_bytes=compile_bytes, strategy=strategy,
        )

    def _charge(self, tenant: str, entry: _Entry) -> None:
        # Caller holds self._lock.  Only the build leader's tenant pays:
        # under single-flight the work happened once, so the charge lands
        # once — followers (and later hits) ride free, which is exactly
        # the cross-tenant amortization the serving layer sells.
        self.tenant(tenant).charged_bytes += entry.compile_bytes

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Any]:
        """One serving report: entry/compile counts, per-entry execution
        totals, tenant accounting, and the shared-cache counters."""
        with self._lock:
            entries = {
                "/".join([k[0], *k[1]]): e.executions
                for k, e in self._entries.items()
            }
            return {
                "workers": len(self._sessions),
                "entries": len(self._entries),
                "compiles": self.compiles,
                "executions": entries,
                "tenants": {
                    k: {
                        "budget_bytes": v.budget_bytes,
                        "charged_bytes": v.charged_bytes,
                        "admitted": v.admitted,
                        "rejected": v.rejected,
                        "completed": v.completed,
                    }
                    for k, v in self._tenants.items()
                },
                "cache": _cache.cache_stats(),
            }

    def __repr__(self) -> str:  # pragma: no cover
        return (f"Server({self.machine!r}, workers={len(self._sessions)}, "
                f"entries={len(self._entries)})")


def serve(
    machine: Optional[Machine] = None,
    *,
    nodes: Optional[int] = None,
    gpus: Optional[int] = None,
    workers: int = 4,
    **kw,
) -> Server:
    """Open a multi-tenant :class:`Server` — the serving-layer entry point,
    mirroring :func:`repro.session` (``repro.serve(nodes=4, workers=4)``).
    Designed for ``with`` use; ``close()`` drains the worker pool."""
    return Server(machine, nodes=nodes, gpus=gpus, workers=workers, **kw)
