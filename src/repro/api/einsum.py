"""NumPy-style ``einsum`` over the SpDISTAL pipeline.

``repro.einsum("ij,j->i", B, c)`` builds the tensor-index-notation
statement the subscripts describe, synthesizes the canonical distributed
schedule for the session's machine (:mod:`repro.api.autoschedule`),
compiles through the same kernel cache / partition memo / mapping-trace
layers as every other statement, and executes on the session runtime.
Operands may be packed :class:`~repro.taco.tensor.Tensor` objects, SciPy
sparse matrices, or NumPy arrays (the latter two are packed on the fly).

Supported subscripts are the product-and-reduce fragment the paper's
kernels cover: distinct letters per operand, ``,`` between operands, an
optional ``->`` output (defaulting to NumPy's convention — letters that
appear exactly once, alphabetically).  Additive specs join operands with
``+`` instead of ``,`` — ``"ij+ij->ij"`` is elementwise addition; all
terms (and the output) must carry identical subscripts, and a sparse
``out=`` executes as the paper's two-phase SpAdd assembly.  Diagonals
(repeated letters within one operand) and ellipses are outside tensor
index notation and raise ``ValueError``.
"""
from __future__ import annotations

import threading
from functools import reduce
from typing import Dict, List, Optional, Tuple

from ..taco.expr import Access, Assignment
from ..taco.index_vars import IndexVar
from ..taco.schedule import Schedule
from ..taco.tensor import Tensor

__all__ = ["einsum"]

_implicit_session = None
#: Guards the check-then-set on ``_implicit_session``: two threads racing
#: the first sessionless ``einsum`` must agree on one implicit session
#: (two would split the runtime's mapping traces and the packing memo).
_SESSION_LOCK = threading.Lock()


def _default_session():
    """The lazily created implicit session (a 1-node CPU machine), used
    when ``einsum`` is called without ``session=``."""
    global _implicit_session
    if _implicit_session is None:
        with _SESSION_LOCK:
            if _implicit_session is None:
                from .session import Session

                _implicit_session = Session()
    return _implicit_session


def _parse_spec(spec: str, n_operands: int) -> Tuple[List[str], str, bool]:
    spec = spec.replace(" ", "")
    if "..." in spec:
        raise ValueError("einsum ellipses are not supported")
    if "->" in spec:
        lhs, _, out = spec.partition("->")
    else:
        lhs, out = spec, None
    additive = "+" in lhs
    if additive:
        if "," in lhs:
            raise ValueError(
                "einsum additive specs join every operand with '+'; "
                "mixing ',' and '+' is not supported"
            )
        inputs = lhs.split("+")
    else:
        inputs = lhs.split(",")
    if len(inputs) != n_operands:
        raise ValueError(
            f"einsum spec {spec!r} names {len(inputs)} operands, "
            f"got {n_operands}"
        )
    seen: Dict[str, int] = {}
    for sub in inputs:
        if not sub.isalpha():
            raise ValueError(f"invalid einsum subscripts {sub!r}")
        if len(set(sub)) != len(sub):
            raise ValueError(
                f"repeated index in operand subscripts {sub!r} "
                "(diagonals are not supported)"
            )
        for ch in sub:
            seen[ch] = seen.get(ch, 0) + 1
    if additive:
        # Addition aligns mode-for-mode: every term names the same
        # subscripts and the output is exactly those subscripts.
        if any(sub != inputs[0] for sub in inputs[1:]):
            raise ValueError(
                "einsum additive terms must carry identical subscripts "
                f"(got {'+'.join(inputs)!r})"
            )
        if out is None:
            out = inputs[0]
        elif out != inputs[0]:
            raise ValueError(
                f"einsum additive output must be {inputs[0]!r}, "
                f"got {out!r}"
            )
        return inputs, out, True
    if out is None:
        out = "".join(sorted(ch for ch, n in seen.items() if n == 1))
    else:
        if out and not out.isalpha():
            raise ValueError(f"invalid einsum output subscripts {out!r}")
        if len(set(out)) != len(out):
            raise ValueError("repeated index in einsum output subscripts")
        missing = [ch for ch in out if ch not in seen]
        if missing:
            raise ValueError(
                f"output subscripts {''.join(missing)!r} never appear "
                "in an operand"
            )
    if not out:
        raise ValueError(
            "einsum full reductions (empty output) are not supported; "
            "keep at least one output index"
        )
    return inputs, out, False


def einsum(
    spec: str,
    *operands,
    session=None,
    out: Optional[Tensor] = None,
    schedule: Optional[Schedule] = None,
    autotune: bool = False,
    trials: int = 2,
    name: str = "out",
) -> Tensor:
    """Evaluate ``spec`` over ``operands`` on the SpDISTAL pipeline.

    Returns the output tensor (pass ``out=`` to write into an existing
    one, e.g. a sparse-formatted output); the execution's metrics are
    available as ``session.last_result``.  ``schedule=`` overrides the
    auto-synthesized mapping with a hand-built
    :class:`~repro.taco.schedule.Schedule`.

    ``autotune=True`` searches the schedule-family candidates through
    :meth:`~repro.api.session.Session.autotune` (``trials`` timed trials
    per candidate) before executing — the first call pays the search, and
    the recorded decision makes every later ``einsum`` of the same
    statement family (this process or a warm-started one) synthesize the
    winning strategy directly.
    """
    if not operands:
        raise ValueError("einsum needs at least one operand")
    if autotune and schedule is not None:
        raise ValueError("pass either autotune=True or schedule=, not both")
    s = session if session is not None else _default_session()
    inputs, out_sub, additive = _parse_spec(spec, len(operands))

    # Content-keyed packing: equal raw operands come back as the *same*
    # packed tensor objects, so the identity-keyed kernel cache hits on a
    # repeated call instead of compiling everything again.
    tensors: List[Tensor] = [
        s.packed_operand(f"op{k}", op) for k, op in enumerate(operands)
    ]
    ivars: Dict[str, IndexVar] = {}
    sizes: Dict[str, int] = {}
    for sub, t in zip(inputs, tensors):
        if len(sub) != t.order:
            raise ValueError(
                f"operand {t.name} has order {t.order} but subscripts "
                f"{sub!r} name {len(sub)} indices"
            )
        for ch, dim in zip(sub, t.shape):
            if ch in sizes and sizes[ch] != dim:
                raise ValueError(
                    f"index {ch!r} has inconsistent extents "
                    f"{sizes[ch]} and {dim}"
                )
            sizes[ch] = dim
            ivars.setdefault(ch, IndexVar(ch))

    accesses = [
        Access(t, tuple(ivars[ch] for ch in sub))
        for sub, t in zip(inputs, tensors)
    ]
    rhs = reduce(
        (lambda a, b: a + b) if additive else (lambda a, b: a * b), accesses
    )
    out_shape = tuple(sizes[ch] for ch in out_sub)
    if out is None:
        # The output tensor's identity participates in the kernel
        # fingerprint too, so a repeated identical einsum must reuse one
        # output object.  The memo value pins the operand tensors,
        # keeping the id()-based key collision-free.
        out_key = (
            name, tuple(inputs), out_sub, additive,
            tuple(id(t) for t in tensors), out_shape,
        )
        memo = s._einsum_out_memo.get(out_key)
        if memo is not None:
            out = memo[1]
        else:
            out = Tensor.zeros(name, out_shape)
            s._einsum_out_memo[out_key] = (tuple(tensors), out)
    elif out.shape != out_shape:
        raise ValueError(
            f"out tensor shape {out.shape} does not match the einsum "
            f"output shape {out_shape}"
        )
    asg = Assignment(Access(out, tuple(ivars[ch] for ch in out_sub)), rhs)
    out.assignment = asg
    if autotune:
        # warm=False: the execute below runs (and trace-records) the
        # winner on the session runtime anyway — a warm-up pass here
        # would launch the statement twice per call.
        s.autotune(asg, trials=trials, warm=False)
    if schedule is None:
        target = asg
    elif isinstance(schedule, Schedule):
        target = schedule
    elif callable(schedule):
        # The index variables are created inside einsum, so a hand mapping
        # is most naturally a builder over the generated assignment:
        #   einsum(..., schedule=lambda asg: Schedule(asg).divide(...)...)
        target = schedule(asg)
    else:
        raise TypeError("schedule= must be a Schedule or a builder callable")
    s.execute(target)
    return out
