"""Schedule synthesis: the paper's canonical mappings, derived automatically.

SpDISTAL keeps computation, data layout and mapping independent; the paper's
experiments nevertheless use a small family of canonical schedules (§VI-A):
row-based ``divide → distribute → communicate → parallelize`` over the
output's first dimension, and the non-zero-based ``fuse → pos → divide →
distribute → communicate`` split of the sparse operand for skew-sensitive
kernels.  This module synthesizes exactly those schedules from what the
user already declared — the statement, the tensor formats, and the machine
grid — so an explicit ``.schedule()`` becomes an *override* instead of a
prerequisite.

Synthesis rules (see ``docs/api.md`` for the user-facing table):

* The statement is classified (:func:`repro.core.compiler.classify`); the
  kernel kind and the machine's processor kind pick the strategy:
  SDDMM always distributes non-zeros (statically load balanced — the
  paper's choice on both processor kinds); SpMM, SpTTV and SpMTTKRP
  distribute non-zeros on GPU machines and rows on CPU machines; SpMV,
  SpAdd and the generic fallback distribute rows everywhere.
* **rows**: the output's first index variable is divided into
  ``machine.size`` pieces, the outer piece loop is distributed, every
  tensor in the statement is communicated at it, and the inner loop is
  parallelized (CPU threads on CPU machines, GPU threads on GPU machines).
* **nonzeros**: the sparse operand's index variables are brought outermost
  (in its storage order), fused pairwise into one loop, switched to the
  operand's position space, divided into ``machine.size`` pieces,
  distributed, and every tensor is communicated at the piece loop.

The synthesized schedule is bit-identical in effect to the hand-written
schedules of ``examples/`` and ``repro.bench.harness`` — values *and*
simulated metrics match (``tests/api/test_autoschedule.py`` asserts it).
"""
from __future__ import annotations

import math
from typing import List, Optional, Tuple, Union

from ..core.compiler import classify
from ..errors import ScheduleError
from ..legion.machine import Machine, ProcKind
from ..taco.expr import Access, Assignment
from ..taco.index_vars import IndexVar
from ..taco.schedule import CPUThread, GPUThread, ParallelUnit, Schedule
from ..taco.tensor import Tensor

__all__ = ["auto_schedule", "auto_strategy", "candidate_strategies"]

#: Kernel kinds that non-zero-distribute on GPU machines (paper §VI-A).
_GPU_NONZERO_KINDS = frozenset({"spmm", "sddmm", "spttv", "spmttkrp"})
#: Kernel kinds the 2-D ``grid`` strategy applies to: the output's first
#: two dimensions are divided over a square processor grid.  SpMM is the
#: paper's case — rows of B × columns of C tile naturally.
_GRID_KINDS = frozenset({"spmm"})


def _as_assignment(target: Union[Assignment, Tensor]) -> Assignment:
    if isinstance(target, Assignment):
        return target
    if isinstance(target, Tensor):
        if target.assignment is None:
            raise ScheduleError(
                f"no statement assigned to {target.name}; write "
                f"``{target.name}[i, ...] = ...`` first"
            )
        return target.assignment
    raise TypeError(
        f"auto_schedule needs an Assignment or a Tensor with one, "
        f"got {type(target).__name__}"
    )


def _sparse_access(asg: Assignment, kind_roles) -> Optional[Access]:
    """The single compressed operand to position-split, if there is one."""
    b = kind_roles.get("B")
    if b is not None and b.tensor.format.has_compressed():
        return b
    candidates = [
        a for a in asg.rhs.accesses() if a.tensor.format.has_compressed()
    ]
    return candidates[0] if len(candidates) == 1 else None


def auto_strategy(asg: Assignment, machine: Machine) -> str:
    """The synthesized distribution strategy: ``"rows"`` or ``"nonzeros"``."""
    kind = classify(asg).kind
    if kind in ("sddmm", "fused_sddmm_spmm"):
        # The fused SDDMM→SpMM statement inherits SDDMM's statically
        # load-balanced non-zero split on both processor kinds.
        return "nonzeros"
    if machine.kind == ProcKind.GPU and kind in _GPU_NONZERO_KINDS:
        return "nonzeros"
    return "rows"


def _square_grid(machine: Machine, pieces: Optional[int]) -> Optional[Tuple[int, int]]:
    """The ``(gx, gy)`` factors of the 2-D grid strategy, or None.

    A machine declared as a 2-D grid keeps its declared factors; a 1-D
    machine (or an explicit ``pieces=``) must be a perfect square — the
    paper's square node grids.
    """
    if pieces is None and machine.grid.ndim == 2:
        return machine.grid.dims[0], machine.grid.dims[1]
    n = int(pieces) if pieces is not None else machine.size
    g = math.isqrt(n)
    return (g, g) if g * g == n and g >= 1 else None


def candidate_strategies(
    asg: Assignment, machine: Machine, *, pieces: Optional[int] = None
) -> List[str]:
    """The ordered strategy pool ``Session.autotune`` searches.

    The paper's default for this kind/machine comes first — the tuner keeps
    the incumbent on ties, so when two mappings are indistinguishable under
    the cost model the canonical hand-written choice survives.  The
    alternatives follow: the other of rows/non-zeros when buildable, and
    the 2-D ``grid`` for SpMM on square machine grids.
    """
    default = auto_strategy(asg, machine)
    kc = classify(asg)
    out = [default]
    if kc.kind != "spadd":
        if default != "nonzeros" and _sparse_access(asg, kc.roles) is not None:
            out.append("nonzeros")
        if default != "rows":
            out.append("rows")
    if (
        kc.kind in _GRID_KINDS
        and machine.size > 1
        and _square_grid(machine, pieces) is not None
    ):
        out.append("grid")
    return out


def auto_schedule(
    target: Union[Assignment, Tensor],
    machine: Optional[Machine] = None,
    *,
    pieces: Optional[int] = None,
    strategy: Optional[str] = None,
) -> Schedule:
    """Synthesize the canonical distributed schedule for a statement.

    ``target`` is an :class:`~repro.taco.expr.Assignment` or a tensor that
    was just assigned (``a[i] = B[i, j] * c[j]``).  ``pieces`` defaults to
    the machine's grid size; ``strategy`` (``"rows"``/``"nonzeros"``)
    overrides the kind/machine-derived choice.  Statements with no index
    variables come back unscheduled (single-piece execution).
    """
    asg = _as_assignment(target)
    if machine is None:
        machine = Machine.cpu(1)
    sched = Schedule(asg)
    if not asg.index_vars():
        return sched
    npieces = int(pieces) if pieces is not None else machine.size
    explicit = strategy is not None
    if strategy is None:
        strategy = auto_strategy(asg, machine)
    if strategy not in ("rows", "nonzeros", "grid"):
        raise ScheduleError(
            f"unknown auto-schedule strategy {strategy!r} "
            "(expected 'rows', 'nonzeros' or 'grid')"
        )
    if strategy == "grid":
        kind = classify(asg).kind
        if kind not in _GRID_KINDS:
            raise ScheduleError(
                f"strategy='grid' applies to {sorted(_GRID_KINDS)} "
                f"statements; this one classifies as {kind!r}"
            )
        dims = _square_grid(machine, pieces)
        if dims is None:
            raise ScheduleError(
                f"strategy='grid' needs a square piece count; "
                f"{npieces} pieces cannot form a 2-D grid"
            )
        return _grid_schedule(sched, asg, machine, *dims)
    if strategy == "nonzeros":
        split = _sparse_access(asg, classify(asg).roles)
        if split is None:
            # An explicitly requested non-zero split that cannot be built
            # must fail loudly — silently running rows would let strategy
            # comparisons report identical numbers for both.  The
            # auto-derived path only picks "nonzeros" for kinds classified
            # around a single sparse operand, so this fallback is defensive.
            if explicit:
                raise ScheduleError(
                    "strategy='nonzeros' needs exactly one compressed "
                    "operand to position-split; this statement has none"
                )
            strategy = "rows"
    if strategy == "rows":
        return _rows_schedule(sched, asg, machine, npieces)
    return _nonzeros_schedule(sched, asg, machine, npieces, split)


def _parallel_unit(machine: Machine) -> ParallelUnit:
    return GPUThread if machine.kind == ProcKind.GPU else CPUThread


def _rows_schedule(
    sched: Schedule, asg: Assignment, machine: Machine, npieces: int
) -> Schedule:
    """divide → distribute → communicate → parallelize over the output's
    first dimension (the paper's row-based mapping)."""
    d = asg.lhs.indices[0] if asg.lhs.indices else asg.index_vars()[0]
    outer = IndexVar(f"{d.name}o")
    inner = IndexVar(f"{d.name}i")
    sched.divide(d, outer, inner, npieces).distribute(outer)
    sched.communicate(asg.tensors(), outer)
    sched.parallelize(inner, _parallel_unit(machine))
    return sched


def _grid_schedule(
    sched: Schedule, asg: Assignment, machine: Machine, gx: int, gy: int
) -> Schedule:
    """divide × divide → distribute over a 2-D processor grid.

    The output's first dimension (rows of the sparse operand) is divided
    into ``gx`` pieces and its second (the dense right-hand columns) into
    ``gy``; the cross product of piece loops is distributed, so each
    processor owns one (row-chunk × column-chunk) tile.  Compared to the
    1-D row split, this halves (at a 2×2 grid) both the widest piece's
    compute and the dense operand volume each piece keeps resident — the
    shape that wins when row skew concentrates non-zeros in few chunks.
    """
    li = asg.lhs.indices
    if len(li) < 2:
        raise ScheduleError(
            "strategy='grid' needs a 2-D output to tile; "
            f"{asg.lhs.tensor.name} has {len(li)} index variable(s)"
        )
    i, j = li[0], li[1]
    io, ii = IndexVar(f"{i.name}o"), IndexVar(f"{i.name}i")
    jo, ji = IndexVar(f"{j.name}o"), IndexVar(f"{j.name}i")
    sched.divide(i, io, ii, gx).divide(j, jo, ji, gy)
    sched.distribute([io, jo])
    sched.communicate(asg.tensors(), io)
    sched.parallelize(ii, _parallel_unit(machine))
    return sched


def _nonzeros_schedule(
    sched: Schedule,
    asg: Assignment,
    machine: Machine,
    npieces: int,
    split: Access,
) -> Schedule:
    """fuse → pos → divide → distribute → communicate over the sparse
    operand's non-zeros (the paper's statically load-balanced mapping)."""
    bvars: List[IndexVar] = list(split.indices)
    others = [v for v in sched.loop_order if v not in bvars]
    target = bvars + others
    if target != sched.loop_order:
        sched.reorder(*target)
    fused = bvars[0]
    for k, nxt in enumerate(bvars[1:], start=1):
        f = IndexVar(f"f{k}")
        sched.fuse(fused, nxt, f)
        fused = f
    fp = IndexVar("fp")
    fo = IndexVar("fo")
    fi = IndexVar("fi")
    sched.pos(fused, fp, split).divide(fp, fo, fi, npieces).distribute(fo)
    sched.communicate(asg.tensors(), fo)
    return sched
