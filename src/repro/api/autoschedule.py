"""Schedule synthesis: the paper's canonical mappings, derived automatically.

SpDISTAL keeps computation, data layout and mapping independent; the paper's
experiments nevertheless use a small family of canonical schedules (§VI-A):
row-based ``divide → distribute → communicate → parallelize`` over the
output's first dimension, and the non-zero-based ``fuse → pos → divide →
distribute → communicate`` split of the sparse operand for skew-sensitive
kernels.  This module synthesizes exactly those schedules from what the
user already declared — the statement, the tensor formats, and the machine
grid — so an explicit ``.schedule()`` becomes an *override* instead of a
prerequisite.

Synthesis rules (see ``docs/api.md`` for the user-facing table):

* The statement is classified (:func:`repro.core.compiler.classify`); the
  kernel kind and the machine's processor kind pick the strategy:
  SDDMM always distributes non-zeros (statically load balanced — the
  paper's choice on both processor kinds); SpMM, SpTTV and SpMTTKRP
  distribute non-zeros on GPU machines and rows on CPU machines; SpMV,
  SpAdd and the generic fallback distribute rows everywhere.
* **rows**: the output's first index variable is divided into
  ``machine.size`` pieces, the outer piece loop is distributed, every
  tensor in the statement is communicated at it, and the inner loop is
  parallelized (CPU threads on CPU machines, GPU threads on GPU machines).
* **nonzeros**: the sparse operand's index variables are brought outermost
  (in its storage order), fused pairwise into one loop, switched to the
  operand's position space, divided into ``machine.size`` pieces,
  distributed, and every tensor is communicated at the piece loop.

The synthesized schedule is bit-identical in effect to the hand-written
schedules of ``examples/`` and ``repro.bench.harness`` — values *and*
simulated metrics match (``tests/api/test_autoschedule.py`` asserts it).
"""
from __future__ import annotations

from typing import List, Optional, Union

from ..core.compiler import classify
from ..errors import ScheduleError
from ..legion.machine import Machine, ProcKind
from ..taco.expr import Access, Assignment
from ..taco.index_vars import IndexVar
from ..taco.schedule import CPUThread, GPUThread, ParallelUnit, Schedule
from ..taco.tensor import Tensor

__all__ = ["auto_schedule", "auto_strategy"]

#: Kernel kinds that non-zero-distribute on GPU machines (paper §VI-A).
_GPU_NONZERO_KINDS = frozenset({"spmm", "sddmm", "spttv", "spmttkrp"})


def _as_assignment(target: Union[Assignment, Tensor]) -> Assignment:
    if isinstance(target, Assignment):
        return target
    if isinstance(target, Tensor):
        if target.assignment is None:
            raise ScheduleError(
                f"no statement assigned to {target.name}; write "
                f"``{target.name}[i, ...] = ...`` first"
            )
        return target.assignment
    raise TypeError(
        f"auto_schedule needs an Assignment or a Tensor with one, "
        f"got {type(target).__name__}"
    )


def _sparse_access(asg: Assignment, kind_roles) -> Optional[Access]:
    """The single compressed operand to position-split, if there is one."""
    b = kind_roles.get("B")
    if b is not None and b.tensor.format.has_compressed():
        return b
    candidates = [
        a for a in asg.rhs.accesses() if a.tensor.format.has_compressed()
    ]
    return candidates[0] if len(candidates) == 1 else None


def auto_strategy(asg: Assignment, machine: Machine) -> str:
    """The synthesized distribution strategy: ``"rows"`` or ``"nonzeros"``."""
    kind = classify(asg).kind
    if kind == "sddmm":
        return "nonzeros"
    if machine.kind == ProcKind.GPU and kind in _GPU_NONZERO_KINDS:
        return "nonzeros"
    return "rows"


def auto_schedule(
    target: Union[Assignment, Tensor],
    machine: Optional[Machine] = None,
    *,
    pieces: Optional[int] = None,
    strategy: Optional[str] = None,
) -> Schedule:
    """Synthesize the canonical distributed schedule for a statement.

    ``target`` is an :class:`~repro.taco.expr.Assignment` or a tensor that
    was just assigned (``a[i] = B[i, j] * c[j]``).  ``pieces`` defaults to
    the machine's grid size; ``strategy`` (``"rows"``/``"nonzeros"``)
    overrides the kind/machine-derived choice.  Statements with no index
    variables come back unscheduled (single-piece execution).
    """
    asg = _as_assignment(target)
    if machine is None:
        machine = Machine.cpu(1)
    sched = Schedule(asg)
    if not asg.index_vars():
        return sched
    npieces = int(pieces) if pieces is not None else machine.size
    explicit = strategy is not None
    if strategy is None:
        strategy = auto_strategy(asg, machine)
    if strategy not in ("rows", "nonzeros"):
        raise ScheduleError(
            f"unknown auto-schedule strategy {strategy!r} "
            "(expected 'rows' or 'nonzeros')"
        )
    if strategy == "nonzeros":
        split = _sparse_access(asg, classify(asg).roles)
        if split is None:
            # An explicitly requested non-zero split that cannot be built
            # must fail loudly — silently running rows would let strategy
            # comparisons report identical numbers for both.  The
            # auto-derived path only picks "nonzeros" for kinds classified
            # around a single sparse operand, so this fallback is defensive.
            if explicit:
                raise ScheduleError(
                    "strategy='nonzeros' needs exactly one compressed "
                    "operand to position-split; this statement has none"
                )
            strategy = "rows"
    if strategy == "rows":
        return _rows_schedule(sched, asg, machine, npieces)
    return _nonzeros_schedule(sched, asg, machine, npieces, split)


def _parallel_unit(machine: Machine) -> ParallelUnit:
    return GPUThread if machine.kind == ProcKind.GPU else CPUThread


def _rows_schedule(
    sched: Schedule, asg: Assignment, machine: Machine, npieces: int
) -> Schedule:
    """divide → distribute → communicate → parallelize over the output's
    first dimension (the paper's row-based mapping)."""
    d = asg.lhs.indices[0] if asg.lhs.indices else asg.index_vars()[0]
    outer = IndexVar(f"{d.name}o")
    inner = IndexVar(f"{d.name}i")
    sched.divide(d, outer, inner, npieces).distribute(outer)
    sched.communicate(asg.tensors(), outer)
    sched.parallelize(inner, _parallel_unit(machine))
    return sched


def _nonzeros_schedule(
    sched: Schedule,
    asg: Assignment,
    machine: Machine,
    npieces: int,
    split: Access,
) -> Schedule:
    """fuse → pos → divide → distribute → communicate over the sparse
    operand's non-zeros (the paper's statically load-balanced mapping)."""
    bvars: List[IndexVar] = list(split.indices)
    others = [v for v in sched.loop_order if v not in bvars]
    target = bvars + others
    if target != sched.loop_order:
        sched.reorder(*target)
    fused = bvars[0]
    for k, nxt in enumerate(bvars[1:], start=1):
        f = IndexVar(f"f{k}")
        sched.fuse(fused, nxt, f)
        fused = f
    fp = IndexVar("fp")
    fo = IndexVar("fo")
    fi = IndexVar("fi")
    sched.pos(fused, fp, split).divide(fp, fo, fi, npieces).distribute(fo)
    sched.communicate(asg.tensors(), fo)
    return sched
