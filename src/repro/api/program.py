"""Lazy multi-statement programs over the SpDISTAL pipeline.

A :class:`Program` records tensor-index-notation statements without
compiling them, then compiles the whole set together through
:func:`repro.core.program.compile_program` — so partitions of operands
shared between statements are derived once, and the session runtime's
mapping traces span the statement chain.  Statements are recorded three
ways, all equivalent:

* explicitly: ``p.define(a)`` after ``a[i] = B[i, j] * c[j]``;
* by capture: assignments written inside ``with session.program() as p:``
  are recorded automatically (deferred tensors — see
  :mod:`repro.taco.capture`);
* with an explicit mapping: ``p.define(a, schedule=hand_built_schedule)``
  or ``stmt.use_schedule(...)`` — the fluent
  :class:`~repro.taco.schedule.Schedule` stays available anywhere as an
  override of the auto-scheduler.
"""
from __future__ import annotations

from typing import List, Optional, Union

from ..core.program import CompiledProgram, ProgramResult
from ..taco.capture import pop_recorder, push_recorder
from ..taco.expr import Assignment
from ..taco.schedule import Schedule
from ..taco.tensor import Tensor

__all__ = ["Program", "Statement"]


class Statement:
    """One recorded statement of a :class:`Program`."""

    def __init__(self, program: "Program", assignment: Assignment,
                 schedule: Optional[Schedule] = None):
        self.program = program
        self.assignment = assignment
        self.explicit_schedule = schedule

    def use_schedule(self, schedule: Schedule) -> "Statement":
        """Override the auto-scheduler with a hand-built schedule."""
        if schedule.assignment is not self.assignment:
            raise ValueError(
                "the schedule must be built over this statement's assignment"
            )
        self.explicit_schedule = schedule
        return self

    def schedule(self) -> Schedule:
        """Start building an explicit schedule for this statement (fluent;
        the built schedule is automatically installed as the override)."""
        sched = Schedule(self.assignment)
        self.explicit_schedule = sched
        return sched

    @property
    def output(self) -> Tensor:
        return self.assignment.lhs.tensor

    def __repr__(self) -> str:  # pragma: no cover
        how = "explicit" if self.explicit_schedule is not None else "auto"
        return f"Statement({self.assignment!r}, schedule={how})"


class Program:
    """An ordered, lazily compiled list of statements bound to a session."""

    def __init__(self, session):
        self.session = session
        self.statements: List[Statement] = []

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def define(
        self,
        target: Union[Assignment, Tensor, Schedule],
        *,
        schedule: Optional[Schedule] = None,
    ) -> Statement:
        """Append one statement.  ``target`` is an assignment, a tensor
        that was just assigned, or an explicit :class:`Schedule` (which is
        both the statement and its mapping)."""
        if isinstance(target, Schedule):
            stmt = Statement(self, target.assignment, target)
        elif isinstance(target, Assignment):
            stmt = Statement(self, target, schedule)
        elif isinstance(target, Tensor):
            if target.assignment is None:
                raise ValueError(f"no statement assigned to {target.name}")
            stmt = Statement(self, target.assignment, schedule)
        else:
            raise TypeError(
                f"cannot define a statement from {type(target).__name__}"
            )
        self.statements.append(stmt)
        return stmt

    # -- deferred capture (``with session.program() as p:``) ---------------
    def __enter__(self) -> "Program":
        push_recorder(self._record)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pop_recorder(self._record)

    def _record(self, assignment: Assignment) -> None:
        self.statements.append(Statement(self, assignment))

    def __len__(self) -> int:
        return len(self.statements)

    def __getitem__(self, k: int) -> Statement:
        return self.statements[k]

    # ------------------------------------------------------------------ #
    # compile / run
    # ------------------------------------------------------------------ #
    def schedules(self) -> List[Schedule]:
        """Every statement's effective schedule (explicit override, else
        auto-synthesized for the session's machine)."""
        return [
            s.explicit_schedule
            if s.explicit_schedule is not None
            else self.session.schedule_for(s.assignment)
            for s in self.statements
        ]

    def analyze(self, *, cost: bool = False):
        """Statically analyze the recorded statements without executing.

        Returns an :class:`repro.analysis.AnalysisReport`: per-statement
        read/write privilege sets, the RAW/WAR/WAW statement dependence
        graph, typed diagnostics (``WriteHazard`` / ``UnsupportedEinsum``
        errors, ``IllegalCSE`` warnings) and the common-subexpression
        reuse map that :meth:`compile` with ``cse=True`` will execute —
        the same analysis, so what the report proves is what runs.

        With ``cost=True`` the static communication planner additionally
        vets every statement (compiling through the kernel cache, still
        never executing): ``report.predictions`` carries each statement's
        predicted metrics signature and the diagnostics gain
        redundant/missing ``communicate`` and incoherent-distribution
        findings (see :mod:`repro.analysis.commplan`).
        """
        if not self.statements:
            raise ValueError("the program has no statements")
        from ..analysis import analyze_program

        return analyze_program(
            self.schedules(), self.session.machine,
            cost=cost, runtime=self.session.runtime if cost else None,
        )

    def compile(self, *, use_cache: bool = True, cse: bool = True,
                fold: bool = True, dse: bool = True, fuse: bool = True,
                keep=None) -> CompiledProgram:
        """Compile all recorded statements together (shared operands'
        partitions are derived once, repeated identical statements collapse
        to one execution — the program-level amortizations).  The pass
        pipeline's knobs pass through: ``fold``/``dse``/``fuse`` disable
        individual passes, ``keep=`` pins tensors (objects or names) that
        must stay materialized (see :mod:`repro.core.passes`)."""
        if not self.statements:
            raise ValueError("the program has no statements")
        return self.session.compile(
            *self.schedules(), use_cache=use_cache, cse=cse,
            fold=fold, dse=dse, fuse=fuse, keep=keep,
        )

    def run(self, *, fresh_trial: bool = True, fold: bool = True,
            dse: bool = True, fuse: bool = True, keep=None) -> ProgramResult:
        """Compile (cached) and execute every statement in order on the
        session runtime; returns the per-statement results."""
        return self.compile(fold=fold, dse=dse, fuse=fuse, keep=keep).execute(
            self.session.runtime, fresh_trial=fresh_trial
        )
