"""The high-level SpDISTAL front end: sessions, lazy programs, einsum.

The paper keeps computation (tensor index notation), data layout (formats
+ distribution notation) and mapping (scheduling commands) independent;
this package makes the *defaults* of each synthesizable so a statement
runs with exactly as much ceremony as the user wants to spend:

* :class:`Session` (``repro.session(...)``) — owns the machine, the
  runtime, cache budgets and the optional artifact store; one context
  manager instead of five imports.
* :class:`Program` — a lazy multi-statement graph compiled together, so
  partitions of shared operands are derived once and mapping traces span
  the statement chain.
* :func:`auto_schedule` — synthesizes the paper's canonical
  divide→distribute→communicate→parallelize (or fuse→pos→divide→…)
  mapping from the statement, formats and machine; any hand-built
  :class:`~repro.taco.schedule.Schedule` overrides it.
* :func:`einsum` — ``repro.einsum("ij,j->i", B, c)``, the NumPy-style
  entry point lowering to the same pipeline.
* :class:`Server` (``repro.serve(...)``) — a multi-tenant request
  scheduler multiplexing concurrent einsum requests over a pool of
  pre-warmed sessions that share the process-wide caches, with
  single-flight compile/tune dedup and per-tenant byte budgets
  (``docs/serving.md``).

The low-level API (``compile_kernel(schedule, machine)``) keeps working
unchanged — it is now a thin wrapper over a one-statement program.
"""
from .autoschedule import auto_schedule, auto_strategy, candidate_strategies
from .einsum import einsum
from .program import Program, Statement
from .serving import ServeResult, Server, TenantStats, serve
from .session import AutotuneCandidate, AutotuneResult, Session, session

__all__ = [
    "Session",
    "session",
    "Server",
    "serve",
    "ServeResult",
    "TenantStats",
    "Program",
    "Statement",
    "auto_schedule",
    "auto_strategy",
    "candidate_strategies",
    "einsum",
    "AutotuneCandidate",
    "AutotuneResult",
]
