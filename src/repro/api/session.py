"""The Session: one object that owns the whole SpDISTAL execution context.

The low-level API asks every caller to assemble a ``Machine``, a
``Runtime``, cache budgets and (optionally) an ``ArtifactStore`` by hand —
five imports of ceremony per statement.  A :class:`Session` folds all of
that behind one context manager::

    import repro

    with repro.session(nodes=4) as s:
        B = s.tensor("B", scipy_matrix, repro.CSR)
        c = s.tensor("c", dense_vector)
        a = repro.einsum("ij,j->i", B, c, session=s)

The session owns the machine (built from ``nodes=``/``gpus=`` or passed
in), the runtime (mapping traces accumulate across every statement the
session executes), the kernel/partition cache budgets (restored on exit),
and an optional persistent artifact store for cross-process warm starts.
Explicit schedules remain a per-statement *override* — anywhere the
session accepts a statement it also accepts a hand-built
:class:`~repro.taco.schedule.Schedule`.
"""
from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import codegen as _codegen
from ..core import cache as _cache
from ..core.compiler import CompiledKernel, ExecutionResult
from ..core.program import CompiledProgram, ProgramResult, compile_program
from ..core.store_index import ArtifactStore
from ..errors import OOMError, ScheduleError
from ..legion.machine import Machine, NodeSpec
from ..legion.network import Network
from ..legion.runtime import Runtime
from ..taco.expr import Assignment
from ..taco.formats import Format
from ..taco.schedule import Schedule
from ..taco.tensor import Tensor
from .autoschedule import _as_assignment, auto_schedule, candidate_strategies

__all__ = ["Session", "session", "AutotuneCandidate", "AutotuneResult"]

Schedulable = Union[Schedule, Assignment, Tensor]


@dataclass
class AutotuneCandidate:
    """One strategy's timed trials inside a :meth:`Session.autotune` search.

    Under ``autotune(prune=True)`` every candidate also carries the static
    cost model's ``predicted_seconds``; candidates the predicted ranking
    eliminated have ``pruned=True`` and NaN ``simulated_seconds`` — they
    were never trial-executed.
    """

    strategy: str
    simulated_seconds: float
    comm_bytes: float = 0.0
    oom: bool = False
    predicted_seconds: Optional[float] = None
    pruned: bool = False

    @property
    def ok(self) -> bool:
        return not self.oom and np.isfinite(self.simulated_seconds)


@dataclass
class AutotuneResult:
    """The outcome of one :meth:`Session.autotune` call.

    ``strategy`` names the winning schedule family, ``kernel`` is its
    compiled form (also held by the kernel cache), ``candidates`` lists
    every strategy tried with its trial cost (empty when the decision table
    answered), ``trials_run`` counts timed trials actually executed (zero
    on a decision-table or warm-start hit), and ``from_cache`` says whether
    the search was skipped.
    """

    strategy: str
    kernel: CompiledKernel
    decision_key: Optional[str]
    candidates: List[AutotuneCandidate] = field(default_factory=list)
    trials_run: int = 0
    from_cache: bool = False
    #: True when the static cost model ranked the pool and only the
    #: predicted best was trial-executed (``autotune(prune=True)``).
    pruned: bool = False

    @property
    def simulated_seconds(self) -> float:
        """The winner's best trial time (NaN on a from-cache replay)."""
        for c in self.candidates:
            if c.strategy == self.strategy:
                return c.simulated_seconds
        return float("nan")


class Session:
    """Owns machine, runtime, cache budgets and the optional artifact store.

    Usable as a context manager (``with repro.session(nodes=4) as s:``);
    entering is cheap and exiting restores any cache budgets the session
    changed.  All work submitted through one session executes on one
    runtime, so mapping traces recorded by statement N replay for
    statement N+k — the compile-once / run-many layers span the session.
    """

    def __init__(
        self,
        machine: Optional[Machine] = None,
        *,
        nodes: Optional[int] = None,
        gpus: Optional[int] = None,
        node: Optional[NodeSpec] = None,
        network: Optional[Network] = None,
        runtime: Optional[Runtime] = None,
        store: Optional[Union[str, Path, ArtifactStore]] = None,
        kernel_cache_bytes: Optional[int] = None,
        partition_cache_bytes: Optional[int] = None,
        trace_replay: Optional[bool] = None,
        metrics_limit: Optional[int] = None,
        backend: Optional[str] = None,
    ):
        if runtime is not None:
            # Adopt an existing runtime (e.g. one restored from the
            # artifact store, mapping traces included); the session's
            # machine is the runtime's, and the runtime keeps the network,
            # trace_replay and metrics_limit it was built with — passing
            # any of them here would be silently ignored, so it is an
            # error, like the machine-family conflict.
            conflicts = {
                "machine": machine, "nodes": nodes, "gpus": gpus,
                "node": node, "network": network,
                "trace_replay": trace_replay, "metrics_limit": metrics_limit,
            }
            clashing = [k for k, v in conflicts.items() if v is not None]
            if clashing:
                raise ValueError(
                    f"runtime= already carries {', '.join(clashing)}; "
                    "pass either runtime= or those options, not both"
                )
            self.machine = runtime.machine
            self.runtime = runtime
        else:
            if machine is not None and (nodes is not None or gpus is not None):
                raise ValueError("pass either machine= or nodes=/gpus=, not both")
            if machine is None:
                spec = node if node is not None else NodeSpec()
                if gpus is not None:
                    machine = Machine.gpu(gpus, spec)
                else:
                    machine = Machine.cpu(nodes if nodes is not None else 1, spec)
            self.machine = machine
            self.runtime = Runtime(
                machine, network,
                trace_replay=True if trace_replay is None else trace_replay,
                metrics_limit=10_000 if metrics_limit is None else metrics_limit,
            )
        if store is None or isinstance(store, ArtifactStore):
            self.store: Optional[ArtifactStore] = store
        else:
            self.store = ArtifactStore(store)
        self._saved_budgets: Optional[Dict[str, int]] = None
        if kernel_cache_bytes is not None or partition_cache_bytes is not None:
            self._saved_budgets = _cache.cache_budgets()
            _cache.set_cache_budget(kernel_cache_bytes, partition_cache_bytes)
        #: Leaf-execution backend for this session's compiles: "interp",
        #: "codegen", or None to follow the process-wide codegen default.
        #: Validated eagerly so a typo fails at session construction.
        self.backend = _codegen.resolve_backend(backend) if backend is not None else None
        self._pending = None  # implicit Program fed by define()
        #: Content-keyed packing memo (see :meth:`packed_operand`): digest
        #: of the raw operand → the packed Tensor, so repeated calls over
        #: equal raw data reuse one tensor *identity* and every
        #: identity-keyed layer downstream (kernel fingerprints, partition
        #: memo, mapping traces) hits.
        self._packed_memo: Dict[str, Tensor] = {}
        #: einsum output-tensor memo: statement signature → (operand
        #: tensors, output tensor).  Holding the operands pins their ids
        #: so a recycled id can never alias a stale key.
        self._einsum_out_memo: Dict[tuple, tuple] = {}
        #: The :class:`ExecutionResult` of the session's most recent
        #: single-statement execution (``execute``/``einsum``).
        self.last_result: Optional[ExecutionResult] = None

    # ------------------------------------------------------------------ #
    # context management
    # ------------------------------------------------------------------ #
    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Restore cache budgets the session changed (idempotent)."""
        if self._saved_budgets is not None:
            _cache.set_cache_budget(
                self._saved_budgets["kernel_bytes"],
                self._saved_budgets["partition_bytes"],
                self._saved_budgets.get("decision_bytes"),
            )
            self._saved_budgets = None

    # ------------------------------------------------------------------ #
    # tensor construction sugar
    # ------------------------------------------------------------------ #
    def tensor(self, name: str, data, format: Optional[Format] = None) -> Tensor:
        """Pack ``data`` into a named tensor: accepts a SciPy sparse
        matrix or a NumPy array / array-like.  An already packed
        :class:`Tensor` passes through unchanged (its existing name is
        kept); asking for a *different* format than the packed one is an
        error rather than a silent no-op — repack explicitly via
        ``Tensor.from_coo(...)`` to convert."""
        if isinstance(data, Tensor):
            if format is not None and format != data.format:
                raise ValueError(
                    f"{data.name} is already packed as {data.format.name}; "
                    f"it cannot pass through as {format.name} — repack it "
                    "to convert formats"
                )
            return data
        if hasattr(data, "tocoo"):  # scipy sparse
            return Tensor.from_scipy(name, data, format)
        return Tensor.from_dense(name, np.asarray(data), format)

    def packed_operand(self, name: str, data,
                       format: Optional[Format] = None) -> Tensor:
        """Like :meth:`tensor`, but memoized by raw-operand *content*.

        Two calls with equal raw operands — same name, format, shape,
        dtype and bytes — return the *same* packed :class:`Tensor`
        object.  Every amortization layer downstream keys on tensor
        identity (kernel fingerprints, the partition memo, mapping
        traces), so this is what lets a repeated ``einsum`` over the same
        raw arrays compile **zero** new kernels.  Operands whose content
        cannot be digested (already packed tensors pass through; exotic
        array-likes fall back) just pack fresh, exactly as
        :meth:`tensor` would.
        """
        if isinstance(data, Tensor):
            return self.tensor(name, data, format)
        key = self._content_key(name, data, format)
        if key is None:
            return self.tensor(name, data, format)
        hit = self._packed_memo.get(key)
        if hit is not None:
            return hit
        t = self.tensor(name, data, format)
        self._packed_memo[key] = t
        return t

    @staticmethod
    def _content_key(name: str, data, format: Optional[Format]) -> Optional[str]:
        """A content digest of a raw operand, or None when undigestable.

        SciPy matrices reuse the bench warmstore's digest discipline
        (name + format + CSR arrays); dense arrays hash name + format +
        shape + dtype + bytes.
        """
        if hasattr(data, "tocoo"):  # scipy sparse
            from ..bench.warmstore import content_key

            return "sp:" + content_key(name, format, data)
        try:
            arr = np.asarray(data)
        except Exception:
            return None
        if arr.dtype.hasobject:
            return None
        h = hashlib.sha256()
        h.update(repr((
            name, format.name if format is not None else None,
            arr.shape, arr.dtype.str,
        )).encode())
        h.update(np.ascontiguousarray(arr).tobytes())
        return "np:" + h.hexdigest()

    def from_coo(self, name: str, coords, vals, shape,
                 format: Optional[Format] = None) -> Tensor:
        """Pack COO coordinates/values (see :meth:`Tensor.from_coo`)."""
        return Tensor.from_coo(name, coords, vals, shape, format)

    def zeros(self, name: str, shape: Sequence[int],
              format: Optional[Format] = None, dtype=np.float64) -> Tensor:
        """An output tensor (see :meth:`Tensor.zeros`)."""
        return Tensor.zeros(name, shape, format, dtype)

    # ------------------------------------------------------------------ #
    # scheduling / compilation
    # ------------------------------------------------------------------ #
    def schedule_for(self, target: Schedulable, **kw) -> Schedule:
        """The schedule the session will use for ``target``: an explicit
        :class:`Schedule` passes through; anything else is auto-scheduled
        for the session's machine (see :func:`repro.api.auto_schedule`).

        When the decision table holds an :meth:`autotune` winner for the
        statement's family (same statement shape, tensor pattern stats and
        machine signature), that strategy is synthesized instead of the
        paper's static default — tuned sessions, warm-started processes and
        ``einsum`` all replay the tuned choice with zero search trials.
        """
        if isinstance(target, Schedule):
            return target
        if "strategy" not in kw:
            decision = self._lookup_decision(_as_assignment(target))
            if decision is not None:
                try:
                    return auto_schedule(
                        target, self.machine,
                        strategy=decision["strategy"], **kw,
                    )
                except ScheduleError:
                    # The recorded winner cannot be built under these
                    # options (e.g. a tuned 'grid' with a non-square
                    # pieces= override): a tuned session must never turn
                    # a previously valid call into an error — fall back
                    # to the static default synthesis.
                    pass
        return auto_schedule(target, self.machine, **kw)

    def _decision_key(self, asg: Assignment) -> Optional[str]:
        try:
            return _cache.decision_fingerprint(asg, self.machine)
        except _cache.Unfingerprintable:
            return None

    def _lookup_decision(self, asg: Assignment) -> Optional[Dict]:
        if not _cache.has_decisions():
            return None  # untuned process: skip the fingerprint walk
        key = self._decision_key(asg)
        return _cache.lookup_decision(key) if key is not None else None

    def compile(self, *targets: Schedulable, use_cache: bool = True,
                cse: bool = True, fold: bool = True, dse: bool = True,
                fuse: bool = True, keep=None,
                backend: Optional[str] = None) -> CompiledProgram:
        """Compile one or more statements together as a program.

        Each target is a :class:`Schedule` (explicit mapping), an
        :class:`Assignment`, or a :class:`Tensor` carrying one (both
        auto-scheduled).  The pass pipeline (:mod:`repro.core.passes`)
        runs first — ``fold``/``dse``/``fuse`` disable individual passes,
        ``keep=`` pins tensors that must stay materialized.  Shared
        operands' partitions are derived once across the program, and
        with ``cse`` (default) identical repeated statements execute once
        per pass (see :func:`repro.core.program.compile_program`).
        ``backend`` overrides the session's leaf-execution backend for
        this compile ("interp"/"codegen"; see :mod:`repro.codegen`).
        """
        schedules = [self.schedule_for(t) for t in targets]
        return compile_program(
            schedules, self.machine, use_cache=use_cache, cse=cse,
            fold=fold, dse=dse, fuse=fuse, keep=keep,
            backend=backend if backend is not None else self.backend,
        )

    def compile_kernel(self, target: Schedulable, *, use_cache: bool = True,
                       backend: Optional[str] = None) -> CompiledKernel:
        """Compile a single statement to its :class:`CompiledKernel`."""
        return self.compile(
            target, use_cache=use_cache, backend=backend
        ).kernels[0]

    def execute(self, target, *, fresh_trial: bool = True) -> ExecutionResult:
        """Compile (if needed) and run one statement on the session runtime.

        ``target`` may be anything :meth:`compile` accepts, or an already
        compiled :class:`CompiledKernel`.  Returns the execution result
        (also kept as :attr:`last_result`).
        """
        if isinstance(target, CompiledKernel):
            ck = target
        else:
            ck = self.compile_kernel(target)
        res = ck.execute(self.runtime, fresh_trial=fresh_trial)
        self.last_result = res
        return res

    # ------------------------------------------------------------------ #
    # autotuning
    # ------------------------------------------------------------------ #
    def autotune(
        self,
        target,
        *,
        strategies: Optional[Sequence[str]] = None,
        trials: int = 2,
        force: bool = False,
        warm: bool = True,
        prune: bool = False,
    ):
        """Search the schedule-family space for ``target`` and keep the winner.

        ``target`` is an :class:`~repro.taco.expr.Assignment`, a tensor
        carrying one, or a :class:`~repro.api.program.Program` (each
        auto-scheduled statement is tuned in order; a list of results comes
        back).  Every candidate strategy — the paper's default for the
        statement's kind/machine, the alternative of rows/non-zeros, and
        the 2-D ``grid`` split for SpMM on square machine grids — is
        compiled through the kernel cache and timed for ``trials``
        isolated trials on a scratch runtime (:meth:`~repro.legion.runtime.Runtime.fresh_trial`: one
        cold placement pass records the mapping trace, the timed trials
        replay it), under the simulator's deterministic cost model.  Ties
        keep the paper's default.

        The winner's :class:`CompiledKernel` stays in the kernel cache, and
        the decision is recorded in the decision table under the statement
        family's stable fingerprint — later :meth:`execute`/``einsum``
        calls synthesize the winning strategy directly, and an
        ``ArtifactStore`` warm start replays it in a fresh process with
        **zero** search trials (``force=True`` re-searches anyway).
        ``strategies=`` restricts the pool for a one-off *measurement*:
        the constrained search bypasses (and never writes) the decision
        table, so it cannot become family policy.

        ``prune=True`` ranks the compiled candidates with the static cost
        model (:func:`repro.analysis.predict_cost`) and trial-executes
        them in predicted order only until one succeeds — normally just
        the predicted best, so a pool of *n* strategies costs one
        candidate's trials instead of *n*.  For the specialized kernels
        the prediction is exact (it mirrors the simulator), so the pruned
        search provably selects the same winner as the exhaustive one;
        eliminated candidates appear in ``result.candidates`` with their
        ``predicted_seconds`` and ``pruned=True``, and the recorded
        decision keeps the predicted-vs-measured comparison.  With
        ``warm`` (default)
        the winner executes once on the *session* runtime — searched or
        answered from the table — so its mapping trace is recorded (or
        replayed) where subsequent executions use it; the result lands in
        :attr:`last_result`.
        """
        from .program import Program

        if isinstance(target, Program):
            return [
                self.autotune(
                    stmt.assignment, strategies=strategies, trials=trials,
                    force=force, warm=warm, prune=prune,
                )
                for stmt in target.statements
                if stmt.explicit_schedule is None
            ]
        asg = _as_assignment(target)
        key = self._decision_key(asg)
        # An explicit strategies= pool is a one-off measurement: it
        # neither answers from the decision table (the recorded winner
        # may be a strategy the caller excluded) nor writes to it.
        if not force and strategies is None and key is not None:
            decision = _cache.lookup_decision(key)
            if decision is not None:
                sched = auto_schedule(
                    asg, self.machine, strategy=decision["strategy"]
                )
                ck = compile_program([sched], self.machine).kernels[0]
                if warm:
                    # The warm contract holds on the cached path too: the
                    # winner runs once on the session runtime (replaying
                    # its stored trace when one was persisted) and the
                    # result lands in last_result.
                    self.last_result = ck.execute(self.runtime)
                return AutotuneResult(
                    strategy=decision["strategy"],
                    kernel=ck,
                    decision_key=key,
                    trials_run=0,
                    from_cache=True,
                )

        if trials < 1:
            raise ValueError(f"autotune needs at least one trial, got {trials}")
        pool = (
            list(strategies)
            if strategies is not None
            else candidate_strategies(asg, self.machine)
        )
        if not pool:
            raise ValueError("autotune needs at least one candidate strategy")
        compiled: List[Tuple[str, CompiledKernel]] = []
        for strategy in pool:
            try:
                sched = auto_schedule(asg, self.machine, strategy=strategy)
                ck = compile_program([sched], self.machine).kernels[0]
            except ScheduleError:
                # An inapplicable candidate (e.g. 'nonzeros' with no single
                # compressed operand) just drops out of the pool.
                continue
            compiled.append((strategy, ck))
        predicted: Dict[str, object] = {}
        order = compiled
        if prune and compiled:
            from ..analysis.costmodel import predict_cost

            for strategy, ck in compiled:
                predicted[strategy] = predict_cost(
                    ck, network=self.runtime.network, runtime=self.runtime
                )
            # A stable sort keeps pool order (the paper's default first)
            # on predicted ties — the same tie-break as the exhaustive
            # search's strict-improvement rule.
            order = sorted(
                compiled, key=lambda sc: predicted[sc[0]].seconds
            )
        candidates: List[AutotuneCandidate] = []
        kernels: Dict[str, CompiledKernel] = {}
        best: Optional[AutotuneCandidate] = None
        trials_run = 0
        for strategy, ck in order:
            est = predicted.get(strategy)
            if prune and best is not None:
                # The predicted ranking already placed this candidate
                # behind a measured winner: record it without executing.
                candidates.append(AutotuneCandidate(
                    strategy, float("nan"),
                    oom=est.oom, predicted_seconds=est.seconds, pruned=True,
                ))
                kernels[strategy] = ck
                continue
            # Candidate isolation: a scratch runtime per strategy, priced
            # under the session's network model.  Placements and traces of
            # one candidate never touch the session runtime or each other.
            rt = Runtime(self.machine, self.runtime.network)
            try:
                ck.execute(rt)  # cold: placement + staging + trace record
                seconds = []
                comm = 0.0
                for _ in range(trials):
                    with rt.fresh_trial() as trial:
                        ck.execute(rt, fresh_trial=False)
                    seconds.append(trial.simulated_seconds)
                    comm = trial.comm_bytes
                    trials_run += 1
                cand = AutotuneCandidate(
                    strategy, min(seconds), comm,
                    predicted_seconds=est.seconds if est is not None else None,
                )
            except OOMError:
                cand = AutotuneCandidate(
                    strategy, float("inf"), oom=True,
                    predicted_seconds=est.seconds if est is not None else None,
                )
            candidates.append(cand)
            kernels[strategy] = ck
            # Strict improvement only: a tie keeps the earlier candidate,
            # and the pool lists the paper's default first.
            if cand.ok and (
                best is None or cand.simulated_seconds < best.simulated_seconds
            ):
                best = cand
        if best is None:
            raise OOMError(
                0, float("inf"), 0.0,
                what="autotune: every candidate strategy OOMed",
            )
        # Detach the throwaway trial runtimes: the candidates stay compiled
        # (kernel cache), but a scratch runtime pinned on a kernel would be
        # persisted by save_packed — and a warm-started process would adopt
        # the wrong runtime's (empty) traces instead of the session's.
        for ck in kernels.values():
            ck._runtime = None
        winner = kernels[best.strategy]
        # A restricted pool measures, it does not set family policy: only
        # a full-candidate search records into the decision table, so a
        # one-off ``strategies=['nonzeros']`` probe can neither overwrite
        # nor seed what later executes (and warm-started processes) replay.
        record = key is not None and strategies is None
        if record:
            decision = {
                "strategy": best.strategy,
                "kind": winner.kind,
                "pieces": len(winner.pieces),
                "simulated_seconds": best.simulated_seconds,
                "trials": int(trials),
                "candidates": {
                    c.strategy: (
                        "oom" if c.oom else
                        "pruned" if c.pruned else c.simulated_seconds
                    )
                    for c in candidates
                },
            }
            if prune:
                # Keep the predicted-vs-measured comparison auditable: the
                # static ranking that stood in for the skipped trials.
                decision["pruned"] = True
                decision["predicted"] = {
                    s: ("oom" if predicted[s].oom else predicted[s].seconds)
                    for s, _ in compiled
                }
            _cache.store_decision(key, decision)
        result = AutotuneResult(
            strategy=best.strategy,
            kernel=winner,
            decision_key=key,
            candidates=candidates,
            trials_run=trials_run,
            from_cache=False,
            pruned=prune,
        )
        if warm:
            # Record the winner's mapping trace on the session runtime so
            # the next execute replays instead of re-analyzing.
            self.last_result = winner.execute(self.runtime)
        return result

    # ------------------------------------------------------------------ #
    # lazy programs
    # ------------------------------------------------------------------ #
    def program(self) -> "Program":
        """A new lazy multi-statement :class:`~repro.api.program.Program`
        bound to this session (usable as a ``with`` block that captures
        assignments)."""
        from .program import Program

        return Program(self)

    def define(self, target: Schedulable, *, schedule: Optional[Schedule] = None):
        """Record a statement into the session's implicit pending program.

        Returns the program :class:`~repro.api.program.Statement` handle
        (``.use_schedule(...)`` overrides the auto-schedule).  Run the
        accumulated statements with :meth:`run`.
        """
        if self._pending is None:
            self._pending = self.program()
        return self._pending.define(target, schedule=schedule)

    def run(self, program=None, *, fresh_trial: bool = True) -> ProgramResult:
        """Compile and execute a program (default: the statements recorded
        by :meth:`define`, which are then cleared)."""
        if program is None:
            program = self._pending
            self._pending = None
        if program is None:
            raise ValueError("no pending statements; call define() first")
        return program.run(fresh_trial=fresh_trial)

    # ------------------------------------------------------------------ #
    # persistence (optional artifact store)
    # ------------------------------------------------------------------ #
    def _require_store(self) -> ArtifactStore:
        if self.store is None:
            raise ValueError(
                "this session has no artifact store; pass store=<dir> to "
                "repro.session(...)"
            )
        return self.store

    def put(self, tensor: Tensor, *, keys: Sequence[str] = (), **kw) -> Path:
        """Publish a packed tensor (plus the cache entries referencing it)
        to the session's artifact store; see :meth:`ArtifactStore.put`."""
        return self._require_store().put(
            tensor, keys=keys, runtime=kw.pop("runtime", self.runtime), **kw
        )

    def load(self, key: str, **kw):
        """Load the newest artifact for ``key`` from the session's store
        (keywords pass through, e.g. ``mmap=True``)."""
        return self._require_store().load(key, **kw)

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, int]:
        """One amortization report: compiler cache counters
        (:func:`repro.core.cache.cache_stats`) plus the runtime's
        mapping-trace counters (:meth:`Runtime.stats`)."""
        out = dict(_cache.cache_stats())
        out.update(self.runtime.stats())
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Session({self.machine!r}, store="
            f"{self.store.root if self.store else None})"
        )


def session(
    machine: Optional[Machine] = None,
    *,
    nodes: Optional[int] = None,
    gpus: Optional[int] = None,
    **kw,
) -> Session:
    """Open a :class:`Session` — the primary entry point of the high-level
    API.  ``repro.session(nodes=4)`` builds a 4-node CPU machine;
    ``repro.session(gpus=8)`` a GPU machine; pass ``machine=`` for full
    control and ``store=<dir>`` to enable the persistent artifact store.
    Designed for ``with`` use, but valid without (``close()`` restores the
    cache budgets a long-lived session changed)."""
    return Session(machine, nodes=nodes, gpus=gpus, **kw)
