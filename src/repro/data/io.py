"""Matrix Market / FROSTT ``.tns`` I/O and packed-artifact persistence.

SuiteSparse ships Matrix Market files and FROSTT ships ``.tns`` coordinate
files; these readers/writers let the suite exchange data with the real
datasets when they are available (and are exercised by the test suite on
the synthetic stand-ins).

Text formats exchange *coordinates* — loading one re-packs from scratch
and re-derives every partition.  :func:`save_packed` / :func:`load_packed`
are the warm path: they persist the packed level structure together with
the compile-once / run-many state (partition memo, kernel cache, mapping
traces; see :mod:`repro.core.store`), so a fresh process skips packing
*and* reaches cached steady-state on its first execute.
"""
from __future__ import annotations

import gzip
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp

from ..core.store import PackedArtifact, load_packed, save_packed
from ..core.store_index import ArtifactStore, gc_artifacts
from ..taco.formats import Format
from ..taco.tensor import Tensor

__all__ = [
    "write_matrix_market", "read_matrix_market", "write_tns", "read_tns",
    "save_packed", "load_packed", "PackedArtifact",
    "ArtifactStore", "gc_artifacts",
]


def _open(path: Union[str, Path], mode: str):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def write_matrix_market(path: Union[str, Path], mat: sp.spmatrix) -> None:
    coo = mat.tocoo()
    with _open(path, "w") as f:
        f.write("%%MatrixMarket matrix coordinate real general\n")
        f.write(f"{coo.shape[0]} {coo.shape[1]} {coo.nnz}\n")
        for r, c, v in zip(coo.row, coo.col, coo.data):
            f.write(f"{r + 1} {c + 1} {v:.17g}\n")


def read_matrix_market(path: Union[str, Path]) -> sp.csr_matrix:
    with _open(path, "r") as f:
        header = f.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ValueError(f"{path}: not a MatrixMarket file")
        symmetric = "symmetric" in header
        pattern = "pattern" in header
        line = f.readline()
        while line.startswith("%"):
            line = f.readline()
        nrows, ncols, nnz = (int(x) for x in line.split())
        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.empty(nnz, dtype=np.float64)
        for i in range(nnz):
            parts = f.readline().split()
            rows[i] = int(parts[0]) - 1
            cols[i] = int(parts[1]) - 1
            vals[i] = 1.0 if pattern else float(parts[2])
    m = sp.coo_matrix((vals, (rows, cols)), shape=(nrows, ncols))
    if symmetric:
        # Mirror the stored (lower) triangle, excluding the diagonal.
        mask = rows != cols
        m = sp.coo_matrix(
            (
                np.concatenate([vals, vals[mask]]),
                (np.concatenate([rows, cols[mask]]), np.concatenate([cols, rows[mask]])),
            ),
            shape=(nrows, ncols),
        )
    return m.tocsr()


def write_tns(path: Union[str, Path], tensor: Tensor) -> None:
    """FROSTT format: 1-based coordinates, one non-zero per line."""
    coords, vals = tensor.to_coo()
    with _open(path, "w") as f:
        for t in range(vals.size):
            cs = " ".join(str(int(c[t]) + 1) for c in coords)
            f.write(f"{cs} {vals[t]:.17g}\n")


def read_tns(
    path: Union[str, Path],
    shape: Optional[Tuple[int, ...]] = None,
    format: Optional[Format] = None,
    name: str = "T",
) -> Tensor:
    rows: List[List[int]] = []
    vals: List[float] = []
    order = None
    with _open(path, "r") as f:
        for line in f:
            parts = line.split()
            if not parts or parts[0].startswith("#"):
                continue
            if order is None:
                order = len(parts) - 1
                rows = [[] for _ in range(order)]
            for d in range(order):
                rows[d].append(int(parts[d]) - 1)
            vals.append(float(parts[-1]))
    if order is None:
        raise ValueError(f"{path}: empty tensor file")
    coords = [np.asarray(r, dtype=np.int64) for r in rows]
    if shape is None:
        shape = tuple(int(c.max()) + 1 if c.size else 1 for c in coords)
    return Tensor.from_coo(name, coords, np.asarray(vals), shape, format)
