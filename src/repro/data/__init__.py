"""Dataset suite: synthetic Table II stand-ins, generators and I/O."""
from . import matrices, tensors
from .io import (
    load_packed,
    read_matrix_market,
    read_tns,
    save_packed,
    write_matrix_market,
    write_tns,
)
from .suite import (
    SUITE_MATRICES,
    SUITE_TENSORS,
    DatasetEntry,
    load_matrix,
    load_tensor,
    table2,
)

__all__ = [
    "matrices", "tensors",
    "read_matrix_market", "read_tns", "write_matrix_market", "write_tns",
    "save_packed", "load_packed",
    "SUITE_MATRICES", "SUITE_TENSORS", "DatasetEntry",
    "load_matrix", "load_tensor", "table2",
]
