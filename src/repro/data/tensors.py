"""Synthetic 3-tensor generators for the FROSTT / Freebase entries of Table II.

* ``frostt_like`` — nell-2-style NLP tensors: moderate mode sizes, skewed
  slice and fiber populations;
* ``freebase_like`` — knowledge-graph triples: one short relation mode and
  two very large, very skewed entity modes (music/sampled);
* ``patents_like`` — the "patents" structure: a short dense first mode
  (years), a dense second mode, and a compressed third — the reason the
  paper stores it as {Dense, Dense, Compressed}.

Generators return ``(coords, vals, shape)`` triples (tensor-mode order)
that feed :meth:`repro.taco.Tensor.from_coo`, and are deterministic in
``seed``.
"""
from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = ["frostt_like", "freebase_like", "patents_like", "random_tensor"]

Coords = Tuple[List[np.ndarray], np.ndarray, Tuple[int, ...]]


def _zipf_indices(rng, n: int, count: int, alpha: float) -> np.ndarray:
    """``count`` samples from a Zipf-ish distribution over ``[0, n)``."""
    ranks = np.arange(1, n + 1, dtype=float)
    w = ranks ** (-alpha)
    w /= w.sum()
    idx = rng.choice(n, size=count, p=w)
    perm = rng.permutation(n)  # scatter the hubs
    return perm[idx].astype(np.int64)


def frostt_like(
    shape: Tuple[int, int, int] = (1200, 900, 600),
    nnz: int = 60_000,
    *,
    alpha: float = 1.1,
    seed: int = 0,
) -> Coords:
    """An NLP-style tensor (nell-2): all modes moderately skewed."""
    rng = np.random.default_rng(seed)
    i = _zipf_indices(rng, shape[0], nnz, alpha)
    j = _zipf_indices(rng, shape[1], nnz, alpha * 0.9)
    k = _zipf_indices(rng, shape[2], nnz, alpha * 0.8)
    vals = rng.random(nnz) + 0.1
    return _dedupe([i, j, k], vals, shape)


def freebase_like(
    shape: Tuple[int, int, int] = (4000, 64, 4000),
    nnz: int = 80_000,
    *,
    seed: int = 0,
) -> Coords:
    """Knowledge-graph triples (subject, relation, object): heavy skew.

    A small set of entities participates in most triples, and relations
    are Zipf-distributed — the structure that makes row-based splits of
    Freebase tensors badly imbalanced.
    """
    rng = np.random.default_rng(seed)
    i = _zipf_indices(rng, shape[0], nnz, 1.4)
    j = _zipf_indices(rng, shape[1], nnz, 1.2)
    k = _zipf_indices(rng, shape[2], nnz, 1.4)
    vals = np.ones(nnz)
    return _dedupe([i, j, k], vals, shape)


def patents_like(
    shape: Tuple[int, int, int] = (8, 1500, 1500),
    nnz: int = 90_000,
    *,
    seed: int = 0,
) -> Coords:
    """The "patents" structure: short dense first mode, dense second mode.

    Nearly every (year, term) pair appears, so the first two levels are
    best stored Dense (the paper's DDC format choice).
    """
    rng = np.random.default_rng(seed)
    i = rng.integers(0, shape[0], size=nnz).astype(np.int64)
    j = rng.integers(0, shape[1], size=nnz).astype(np.int64)
    k = _zipf_indices(rng, shape[2], nnz, 0.8)
    vals = rng.random(nnz) + 0.1
    return _dedupe([i, j, k], vals, shape)


def random_tensor(
    shape: Tuple[int, ...], nnz: int, *, seed: int = 0
) -> Coords:
    rng = np.random.default_rng(seed)
    coords = [rng.integers(0, s, size=nnz).astype(np.int64) for s in shape]
    vals = rng.random(nnz) + 0.1
    return _dedupe(coords, vals, shape)


def _dedupe(coords: List[np.ndarray], vals: np.ndarray, shape) -> Coords:
    key = np.zeros(vals.size, dtype=np.int64)
    for c, s in zip(coords, shape):
        key = key * s + c
    _, keep = np.unique(key, return_index=True)
    return [c[keep] for c in coords], vals[keep], tuple(shape)
