"""Synthetic matrix generators reproducing Table II's structural classes.

The paper evaluates on SuiteSparse matrices too large to ship or build
here; each generator below reproduces the *structural class* of one group
of Table II entries at a configurable scale, because the evaluation's
qualitative behaviour depends on structure:

* web-connectivity graphs (arabic/it/sk/uk/webbase) — power-law out-degree
  with local clustering → row-degree skew → load imbalance for row splits;
* social networks (twitter7) — heavier-tailed RMAT-style skew;
* protein k-mer graphs (kmer_A2a/V1r) — huge, 2–4 non-zeros per row,
  near-uniform → metadata-dominated;
* PDE/KKT systems (nlpkkt240) — structured stencil blocks, symmetric,
  nearly constant row degree → perfectly balanced;
* mycielskian19 — the recursive Mycielski construction (via networkx);
* banded matrices — the weak-scaling workload of Fig. 13.

All generators are deterministic in ``seed`` and return CSR matrices.
"""
from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = [
    "banded",
    "power_law",
    "rmat",
    "kmer_like",
    "stencil_kkt",
    "mycielskian",
    "uniform_random",
    "striped",
]


def banded(n: int, bandwidth: int = 5, *, seed: int = 0) -> sp.csr_matrix:
    """A banded matrix with ``2*bandwidth+1`` diagonals (Fig. 13 workload)."""
    rng = np.random.default_rng(seed)
    offsets = range(-bandwidth, bandwidth + 1)
    diags = [rng.random(n - abs(o)) + 0.1 for o in offsets]
    return sp.diags(diags, list(offsets), shape=(n, n), format="csr")


def power_law(
    n: int, nnz_target: int, *, alpha: float = 1.8, seed: int = 0
) -> sp.csr_matrix:
    """Web-connectivity-like matrix: Zipf out-degrees, clustered columns."""
    rng = np.random.default_rng(seed)
    # Zipf row degrees normalized to the target nnz, capped so hub rows do
    # not collapse to duplicates (real web hubs link to distinct pages).
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** (-alpha)
    cap = max(1, n // 2)
    scale_c = nnz_target / weights.sum()
    for _ in range(8):  # renormalize around the cap until the total lands
        degrees = np.minimum(np.round(scale_c * weights), cap)
        total = degrees.sum()
        if total >= nnz_target or total == cap * n:
            break
        free = degrees < cap
        deficit = nnz_target - total
        scale_c *= 1.0 + deficit / max(scale_c * weights[free].sum(), 1.0)
    degrees = np.maximum(degrees, 1).astype(np.int64)
    rng.shuffle(degrees)  # hubs scattered through the row space
    rows = np.repeat(np.arange(n, dtype=np.int64), degrees)
    # Columns cluster near the row (web locality) with long-range links.
    local = rng.normal(loc=rows, scale=max(2.0, n * 0.05), size=rows.size)
    far = rng.integers(0, n, size=rows.size)
    use_far = rng.random(rows.size) < 0.2
    cols = np.where(use_far, far, np.clip(np.round(local), 0, n - 1)).astype(np.int64)
    vals = rng.random(rows.size) + 0.1
    m = sp.coo_matrix((vals, (rows, cols)), shape=(n, n))
    m.sum_duplicates()
    return m.tocsr()


def rmat(
    scale: int, edge_factor: int = 16, *,
    a: float = 0.57, b: float = 0.19, c: float = 0.19, seed: int = 0,
) -> sp.csr_matrix:
    """Recursive-matrix (Graph500) generator — social-network-like skew."""
    rng = np.random.default_rng(seed)
    n = 1 << scale
    nedges = n * edge_factor
    rows = np.zeros(nedges, dtype=np.int64)
    cols = np.zeros(nedges, dtype=np.int64)
    ab, abc = a + b, a + b + c
    for level in range(scale):
        r = rng.random(nedges)
        go_right = (r >= a) & (r < ab)
        go_down = (r >= ab) & (r < abc)
        go_diag = r >= abc
        bit = 1 << (scale - level - 1)
        cols += bit * (go_right | go_diag)
        rows += bit * (go_down | go_diag)
    vals = rng.random(nedges) + 0.1
    m = sp.coo_matrix((vals, (rows, cols)), shape=(n, n))
    m.sum_duplicates()
    return m.tocsr()


def kmer_like(n: int, *, seed: int = 0) -> sp.csr_matrix:
    """Protein k-mer graph: 1–4 non-zeros per row, near-uniform structure."""
    rng = np.random.default_rng(seed)
    degrees = rng.integers(1, 5, size=n)
    rows = np.repeat(np.arange(n, dtype=np.int64), degrees)
    # de-Bruijn-like successors: small multiplicative jumps in id space
    jumps = rng.integers(1, 5, size=rows.size)
    cols = (rows * 4 + jumps) % n
    vals = np.ones(rows.size)
    m = sp.coo_matrix((vals, (rows, cols)), shape=(n, n))
    m.sum_duplicates()
    return m.tocsr()


def stencil_kkt(grid: int, *, seed: int = 0) -> sp.csr_matrix:
    """nlpkkt-like: a 3-D 7-point stencil KKT system (constant row degree)."""
    rng = np.random.default_rng(seed)
    one = sp.eye(grid, format="csr")
    tri = sp.diags(
        [np.ones(grid - 1), np.full(grid, 6.0), np.ones(grid - 1)],
        [-1, 0, 1], format="csr",
    )
    lap = (
        sp.kron(sp.kron(tri, one), one)
        + sp.kron(sp.kron(one, tri), one)
        + sp.kron(sp.kron(one, one), tri)
    ).tocsr()
    n = lap.shape[0]
    lap.data = lap.data * (0.5 + rng.random(lap.nnz))
    # KKT structure: [[H, A^T], [A, 0]] with a thin constraint block.
    m = n // 4 + 1
    a_rows = np.arange(m, dtype=np.int64)
    a_cols = (a_rows * 3) % n
    A = sp.coo_matrix((np.ones(m), (a_rows, a_cols)), shape=(m, n)).tocsr()
    top = sp.hstack([lap, A.T], format="csr")
    bottom = sp.hstack([A, sp.csr_matrix((m, m))], format="csr")
    return sp.vstack([top, bottom], format="csr")


def mycielskian(k: int, *, seed: int = 0) -> sp.csr_matrix:
    """The Mycielski graph M_k's adjacency matrix (Table II: mycielskian19)."""
    import networkx as nx

    g = nx.mycielski_graph(k)
    m = nx.to_scipy_sparse_array(g, format="csr", dtype=np.float64)
    rng = np.random.default_rng(seed)
    m = sp.csr_matrix(m)
    m.data = 0.1 + rng.random(m.nnz)
    return sp.csr_matrix((m + m.T) / 2.0)  # keep the adjacency symmetric


def striped(
    n: int,
    nnz_target: int,
    *,
    heavy_frac: float = 0.9,
    stripes: int = 4,
    seed: int = 0,
) -> sp.csr_matrix:
    """Alternating heavy/light row stripes (coupled multi-field systems).

    ``heavy_frac`` of the non-zeros land in the even-numbered of ``stripes``
    contiguous row bands, the rest in the odd ones — the structure of
    systems interleaving a dense-coupled field with a sparse one.  The
    shape is the 2-D-grid stress case for distribution choice: contiguous
    1-D row chunks at stripe granularity are badly imbalanced, yet
    half-space row chunks are perfectly balanced, so a square processor
    grid (divide rows × divide columns) beats both the 1-D row split and
    the non-zero split (which pays its segment-reduction overhead without
    an imbalance to fix at the coarser granularity).
    """
    rng = np.random.default_rng(seed)
    band = max(1, n // stripes)
    heavy = int(nnz_target * heavy_frac)
    light = nnz_target - heavy
    rows_list = []
    heavy_bands = [b for b in range(stripes) if b % 2 == 0]
    light_bands = [b for b in range(stripes) if b % 2 == 1]
    for bands, count in ((heavy_bands, heavy), (light_bands, light)):
        if not bands or count <= 0:
            continue
        per = np.full(len(bands), count // len(bands))
        per[: count - per.sum()] += 1
        for b, c in zip(bands, per):
            lo, hi = b * band, n if b == stripes - 1 else (b + 1) * band
            rows_list.append(rng.integers(lo, hi, int(c)))
    rows = np.concatenate(rows_list) if rows_list else np.empty(0, dtype=np.int64)
    cols = rng.integers(0, n, rows.size)
    vals = rng.random(rows.size) + 0.1
    m = sp.coo_matrix((vals, (rows, cols)), shape=(n, n))
    m.sum_duplicates()
    return m.tocsr()


def uniform_random(n: int, density: float, *, seed: int = 0) -> sp.csr_matrix:
    rng = np.random.default_rng(seed)
    return sp.random(n, n, density=density, random_state=rng, format="csr",
                     data_rvs=lambda size: rng.random(size) + 0.1)
