"""The experiment dataset suite: scaled stand-ins for Table II.

Every entry of the paper's Table II has a named, deterministic, scaled
synthetic counterpart here.  ``load_matrix``/``load_tensor`` construct the
dataset; ``table2()`` prints the inventory with domains and non-zero counts
the way the paper's table does.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..taco.formats import CSF3, CSR, DDC, Format
from ..taco.tensor import Tensor
from . import matrices as M
from . import tensors as T

__all__ = [
    "DatasetEntry",
    "SUITE_MATRICES",
    "SUITE_TENSORS",
    "load_matrix",
    "load_tensor",
    "table2",
]


@dataclass(frozen=True)
class DatasetEntry:
    name: str
    domain: str
    paper_nnz: float  # the real dataset's non-zeros (Table II)
    builder: Callable[[float, int], object]  # (scale, seed) -> data
    kind: str  # "matrix" | "tensor"
    format: Format = CSR


def _m(name, domain, paper_nnz, fn):
    return DatasetEntry(name, domain, paper_nnz, fn, "matrix")


def _t(name, domain, paper_nnz, fn, fmt=CSF3):
    return DatasetEntry(name, domain, paper_nnz, fn, "tensor", fmt)


SUITE_MATRICES: Dict[str, DatasetEntry] = {
    e.name: e
    for e in [
        _m("arabic-2005", "Web Connectivity", 6.39e8,
           lambda s, seed: M.power_law(int(3000 * s), int(130_000 * s), alpha=1.8, seed=seed)),
        _m("it-2004", "Web Connectivity", 1.15e9,
           lambda s, seed: M.power_law(int(3400 * s), int(200_000 * s), alpha=1.9, seed=seed + 1)),
        _m("kmer_A2a", "Protein Structure", 3.60e8,
           lambda s, seed: M.kmer_like(int(40_000 * s), seed=seed + 2)),
        _m("kmer_V1r", "Protein Structure", 4.65e8,
           lambda s, seed: M.kmer_like(int(52_000 * s), seed=seed + 3)),
        _m("mycielskian19", "Synthetic", 9.03e8,
           lambda s, seed: M.mycielskian(max(5, int(np.log2(max(s, 1e-3) * 8192))), seed=seed + 4)),
        _m("nlpkkt240", "PDE's", 7.60e8,
           lambda s, seed: M.stencil_kkt(max(4, int(round(28 * s ** (1 / 3)))), seed=seed + 5)),
        _m("sk-2005", "Web Connectivity", 1.94e9,
           lambda s, seed: M.power_law(int(4000 * s), int(330_000 * s), alpha=2.0, seed=seed + 6)),
        _m("twitter7", "Social Network", 1.46e9,
           lambda s, seed: M.rmat(max(6, int(np.log2(16_000 * s))), 16, seed=seed + 7)),
        _m("uk-2005", "Web Connectivity", 9.36e8,
           lambda s, seed: M.power_law(int(3200 * s), int(160_000 * s), alpha=1.85, seed=seed + 8)),
        _m("webbase-2001", "Web Connectivity", 1.01e9,
           lambda s, seed: M.power_law(int(3600 * s), int(175_000 * s), alpha=2.1, seed=seed + 9)),
    ]
}

SUITE_TENSORS: Dict[str, DatasetEntry] = {
    e.name: e
    for e in [
        _t("freebase_music", "Data Mining", 1.74e9,
           lambda s, seed: T.freebase_like(
               (int(4000 * s), 64, int(4000 * s)), int(120_000 * s), seed=seed + 10)),
        _t("freebase_sampled", "Data Mining", 9.95e7,
           lambda s, seed: T.freebase_like(
               (int(2500 * s), 48, int(2500 * s)), int(60_000 * s), seed=seed + 11)),
        _t("nell-2", "NLP", 7.68e7,
           lambda s, seed: T.frostt_like(
               (int(1200 * s), int(900 * s), int(600 * s)), int(60_000 * s), seed=seed + 12)),
        _t("patents", "Data Mining", 3.59e9,
           lambda s, seed: T.patents_like(
               (8, int(1500 * s), int(1500 * s)), int(150_000 * s), seed=seed + 13),
           DDC),
    ]
}

#: Dataset scale used throughout the benchmarks (fraction of "full" synthetic
#: size, which is itself ~1e-3 of the paper's datasets).
DEFAULT_SCALE = 1.0


def load_matrix(name: str, scale: float = DEFAULT_SCALE, seed: int = 7) -> sp.csr_matrix:
    entry = SUITE_MATRICES[name]
    mat = entry.builder(scale, seed)
    return mat.tocsr()


def load_tensor(name: str, scale: float = DEFAULT_SCALE, seed: int = 7) -> Tensor:
    entry = SUITE_TENSORS[name]
    coords, vals, shape = entry.builder(scale, seed)
    return Tensor.from_coo(name.replace("-", "_"), coords, vals, shape, entry.format)


def table2(scale: float = DEFAULT_SCALE, seed: int = 7) -> List[Tuple[str, str, int, float]]:
    """(name, domain, scaled nnz, paper nnz) rows, mirroring Table II."""
    rows = []
    for name, e in SUITE_MATRICES.items():
        rows.append((name, e.domain, int(load_matrix(name, scale, seed).nnz), e.paper_nnz))
    for name, e in SUITE_TENSORS.items():
        rows.append((name, e.domain, int(load_tensor(name, scale, seed).nnz), e.paper_nnz))
    return rows
