"""Content-addressed artifact index with compaction/GC.

:mod:`repro.core.store` writes one artifact per directory; a production
deployment serving many tensors and schedules needs more: finding "the
latest artifact for this schedule" without scanning directories, not
storing the same payload twice, and bounding the disk a store directory
consumes.  This module layers all three over ``save_packed``/``load_packed``
without changing the artifact format — the storage-layout-behind-a-stable-
interface discipline of the format abstractions the paper builds on
(Chou et al.).

A store root looks like::

    store/
    ├── index.json            # the content-addressed index (this module)
    ├── artifacts/
    │   └── a000001/          # ordinary save_packed artifacts
    │       ├── manifest.json
    │       ├── payload.pkl   # hard link into objects/ when deduped
    │       └── regions/r7.npy
    └── objects/
        └── <sha256>          # one blob per distinct payload/sidecar

* **Index** — ``index.json`` maps *keys* to artifact lists (oldest →
  newest).  Every artifact is indexed under ``fp:<stable fingerprint>``
  for each kernel it carries (the schedule fingerprint + tensor pattern
  versions + machine signature digest of :func:`repro.core.store.stable_fingerprint`)
  and under ``tensor:<name>``; callers add their own keys (the figure
  drivers key packed operands on a content digest of the source data).
  :meth:`ArtifactStore.resolve` returns the newest artifact for a key in
  one dictionary lookup.

* **Dedup** — payloads and sidecars are content-addressed: each file is
  hard-linked to ``objects/<sha256>`` (falling back to plain copies on
  filesystems without links), so saving identical content twice stores it
  once.  A ``put`` whose whole content hash matches an existing artifact
  reuses that artifact outright and just extends its keys.

* **GC/compaction** — :meth:`ArtifactStore.gc` applies reference-counted
  retention: ``keep_latest=N`` keeps each key's newest N artifacts (an
  artifact survives while *any* key retains it), ``max_bytes`` then evicts
  least-recently-used artifacts until the store fits the budget — the
  newest artifact is never evicted, mirroring the in-memory byte-budgeted
  LRUs of :mod:`repro.core.cache`.  Objects are removed when their
  reference count reaches zero, and orphaned files (from crashes between
  a save and an index write) are swept.

Mapped regions of an artifact removed by GC keep working in processes
that already loaded them: the inode survives until the last open map
closes (POSIX unlink semantics).
"""
from __future__ import annotations

import contextlib
import json
import os
import shutil
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

try:  # POSIX advisory locks; absent on some platforms
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

from ..analysis.sanitizer import verify_aot_source
from ..errors import SanitizerError, StoreError, StoreFormatError
from .store import (
    MANIFEST_NAME,
    PackedArtifact,
    file_sha256,
    load_packed,
    read_manifest,
    save_packed,
    stable_fingerprint,
)

__all__ = [
    "INDEX_FORMAT_VERSION",
    "ArtifactStore",
    "GCStats",
    "fingerprint_key",
    "gc_artifacts",
]

INDEX_NAME = "index.json"
LOCK_NAME = "index.lock"
INDEX_FORMAT_VERSION = 1
ARTIFACTS_DIR = "artifacts"
OBJECTS_DIR = "objects"


def fingerprint_key(schedule, machine) -> str:
    """The index key of a schedule/machine pair (see ``stable_fingerprint``)."""
    return f"fp:{stable_fingerprint(schedule, machine)}"


@dataclass
class GCStats:
    """What one :meth:`ArtifactStore.gc` pass did."""

    scanned: int = 0
    removed_artifacts: int = 0
    removed_objects: int = 0
    swept_orphans: int = 0
    bytes_before: int = 0
    bytes_after: int = 0

    @property
    def bytes_freed(self) -> int:
        return max(0, self.bytes_before - self.bytes_after)


class ArtifactStore:
    """A content-addressed, garbage-collected directory of artifacts."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.artifacts_dir = self.root / ARTIFACTS_DIR
        self.objects_dir = self.root / OBJECTS_DIR
        # In-process serialization of the index read-modify-write, taken
        # *before* the cross-process flock in _locked: N serving threads
        # sharing one ArtifactStore queue here instead of each burning a
        # file descriptor + flock round trip, and platforms without fcntl
        # still get single-writer behavior within the process.  Reentrant
        # because locked entry points never call each other today but the
        # discipline should not break if one ever does.
        self._tlock = threading.RLock()

    # ------------------------------------------------------------------ #
    # index I/O
    # ------------------------------------------------------------------ #
    @property
    def index_path(self) -> Path:
        return self.root / INDEX_NAME

    @property
    def lock_path(self) -> Path:
        return self.root / LOCK_NAME

    @contextlib.contextmanager
    def _locked(self):
        """Exclusive advisory lock over the index read-modify-write.

        ``index.json`` updates are read → mutate → atomic-replace; two
        writers interleaving those steps would silently drop one writer's
        artifacts (its additions vanish from the replaced index while its
        files remain on disk as "orphans" the next gc sweeps away).  Every
        mutating entry point (``put``, ``gc``, ``load``'s last-used touch)
        therefore serializes on a POSIX ``flock`` over a sidecar lock file
        — the lock file, not ``index.json`` itself, because the atomic
        ``os.replace`` swaps the index inode out from under a lock held on
        it.  In-process threads serialize on ``self._tlock`` first (the
        RLock mirror of the flock discipline — see the thread-safety note
        in :mod:`repro.core.cache`); on platforms without ``fcntl`` the
        file lock degrades to a no-op and the thread lock alone preserves
        single-writer behavior within the process.
        """
        with self._tlock:
            if fcntl is None:  # pragma: no cover - non-POSIX fallback
                yield
                return
            self.root.mkdir(parents=True, exist_ok=True)
            with open(self.lock_path, "a+b") as fh:
                fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
                try:
                    yield
                finally:
                    fcntl.flock(fh.fileno(), fcntl.LOCK_UN)

    def _fresh_index(self) -> Dict[str, Any]:
        return {
            "format_version": INDEX_FORMAT_VERSION,
            "seq": 0,
            "artifacts": {},
            "keys": {},
            "objects": {},
        }

    def read_index(self) -> Dict[str, Any]:
        if not self.index_path.exists():
            return self._fresh_index()
        try:
            idx = json.loads(self.index_path.read_text())
        except ValueError as e:
            raise StoreFormatError(self.index_path, f"corrupt store index: {e}")
        version = idx.get("format_version") if isinstance(idx, dict) else None
        if version != INDEX_FORMAT_VERSION:
            raise StoreFormatError(
                self.index_path,
                "unsupported store index version",
                expected=INDEX_FORMAT_VERSION,
                found=version,
            )
        return idx

    def _write_index(self, idx: Dict[str, Any]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.index_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(idx, indent=2, sort_keys=True))
        os.replace(tmp, self.index_path)

    # ------------------------------------------------------------------ #
    # publish
    # ------------------------------------------------------------------ #
    def _dedup_file(self, idx: Dict[str, Any], path: Path, sha: str,
                    nbytes: int) -> None:
        """Content-address one artifact file into ``objects/<sha>``."""
        blob = self.objects_dir / sha
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        try:
            if blob.exists():
                if not os.path.samefile(path, blob):
                    path.unlink()
                    os.link(blob, path)
            else:
                os.link(path, blob)
        except OSError:
            # No hard links on this filesystem: keep content-addressing
            # (the blob is authoritative for integrity checks) without the
            # space saving — and restore the artifact file if the link
            # attempt already unlinked it.
            if not blob.exists():
                shutil.copy2(path, blob)
            elif not path.exists():
                shutil.copy2(blob, path)
        entry = idx["objects"].setdefault(sha, {"bytes": int(nbytes), "refs": 0})
        entry["refs"] += 1

    def put(
        self,
        tensor,
        *,
        keys: Sequence[str] = (),
        include_caches: bool = True,
        runtime=None,
        **save_kw,
    ) -> Path:
        """Save ``tensor`` as a new indexed artifact; returns its directory.

        The artifact is indexed under ``fp:<stable fingerprint>`` of every
        cached kernel it carries, ``tensor:<name>``, and each extra key in
        ``keys``.  If an artifact with an identical content hash already
        exists, no new artifact is created — the existing one gains the new
        keys and becomes each key's latest entry (the dedup hit).

        Safe under concurrent writers: the whole read-modify-write (index
        read, sequence allocation, artifact save, dedup, index replace)
        holds the store's advisory file lock (see :meth:`_locked`).
        """
        with self._locked():
            return self._put_locked(
                tensor, keys=keys, include_caches=include_caches,
                runtime=runtime, **save_kw,
            )

    def _put_locked(
        self,
        tensor,
        *,
        keys: Sequence[str] = (),
        include_caches: bool = True,
        runtime=None,
        **save_kw,
    ) -> Path:
        idx = self.read_index()
        seq = idx["seq"] + 1
        aid = f"a{seq:06d}"
        art_dir = self.artifacts_dir / aid
        save_packed(art_dir, tensor, include_caches=include_caches,
                    runtime=runtime, **save_kw)
        manifest = read_manifest(art_dir)

        all_keys = [f"tensor:{manifest['tensor']['name']}"]
        for k in manifest["kernels"]:
            if k.get("fingerprint"):
                all_keys.append(f"fp:{k['fingerprint']}")
        for k in keys:
            if k not in all_keys:
                all_keys.append(str(k))

        content_hash = manifest["content_hash"]
        existing = next(
            (a for a, meta in idx["artifacts"].items()
             if meta["content_hash"] == content_hash),
            None,
        )
        if existing is not None:
            shutil.rmtree(art_dir)
            meta = idx["artifacts"][existing]
            for key in all_keys:
                if key not in meta["keys"]:
                    meta["keys"].append(key)
                entries = idx["keys"].setdefault(key, [])
                if existing in entries:
                    entries.remove(existing)
                entries.append(existing)  # newest-last for this key again
            meta["last_used"] = time.time()
            self._write_index(idx)
            return self.root / meta["dir"]

        files = [(art_dir / manifest["payload"],
                  manifest["payload_sha256"], manifest["payload_bytes"])]
        for rmeta in manifest["regions"]:
            files.append((art_dir / rmeta["file"], rmeta["sha256"],
                          rmeta["bytes"]))
        aot_modules = manifest.get("aot_modules", [])
        for ameta in aot_modules:
            files.append((art_dir / ameta["file"], ameta["sha256"],
                          ameta["bytes"]))
        objects = []
        for path, sha, nbytes in files:
            self._dedup_file(idx, path, sha, nbytes)
            objects.append(sha)

        idx["seq"] = seq
        idx["artifacts"][aid] = {
            "dir": f"{ARTIFACTS_DIR}/{aid}",
            "seq": seq,
            "created": time.time(),
            "last_used": time.time(),
            "bytes": sum(int(n) for _, _, n in files),
            "manifest_bytes": (art_dir / MANIFEST_NAME).stat().st_size,
            "content_hash": content_hash,
            "keys": all_keys,
            "objects": objects,
            # AOT generated-module count: gc pins the newest holder of a
            # live fp: key when it carries generated source (see _gc_locked).
            "aot": len(aot_modules),
        }
        for key in all_keys:
            idx["keys"].setdefault(key, []).append(aid)
        self._write_index(idx)
        return art_dir

    # ------------------------------------------------------------------ #
    # resolve / load
    # ------------------------------------------------------------------ #
    def resolve(self, key: str) -> Optional[Path]:
        """The newest artifact directory indexed under ``key`` (one index
        lookup, no directory scanning), or None."""
        idx = self.read_index()
        entries = idx["keys"].get(key, ())
        if not entries:
            return None
        return self.root / idx["artifacts"][entries[-1]]["dir"]

    def load(self, key: str, **load_kw) -> PackedArtifact:
        """``load_packed`` the newest artifact for ``key`` (keyword
        arguments pass through, e.g. ``mmap=True``) and mark it used."""
        # The whole resolve → read → last-used touch holds the lock: a
        # concurrent gc could otherwise rmtree the resolved artifact while
        # its files are being read (mapped regions opened here survive a
        # later gc via POSIX unlink semantics — only the read window needs
        # protecting).
        with self._locked():
            path = self.resolve(key)
            if path is None:
                raise StoreError(
                    f"{self.root}: no artifact indexed under {key!r}"
                )
            art = load_packed(path, **load_kw)
            idx = self.read_index()
            entries = idx["keys"].get(key, ())
            if entries and entries[-1] in idx["artifacts"]:
                idx["artifacts"][entries[-1]]["last_used"] = time.time()
                self._write_index(idx)
        return art

    def load_latest(self, schedule, machine, **load_kw) -> PackedArtifact:
        """The newest artifact for this schedule/machine pair."""
        return self.load(fingerprint_key(schedule, machine), **load_kw)

    def entries(self, key: Optional[str] = None) -> List[Dict[str, Any]]:
        """Index metadata of every artifact (newest last), optionally
        restricted to one key."""
        idx = self.read_index()
        if key is not None:
            aids = idx["keys"].get(key, ())
        else:
            aids = sorted(idx["artifacts"], key=lambda a: idx["artifacts"][a]["seq"])
        return [dict(idx["artifacts"][a], id=a) for a in aids]

    def total_bytes(self, idx: Optional[Dict[str, Any]] = None) -> int:
        """Store footprint: unique object bytes plus manifests."""
        idx = idx or self.read_index()
        return sum(int(o["bytes"]) for o in idx["objects"].values()) + sum(
            int(a.get("manifest_bytes", 0)) for a in idx["artifacts"].values()
        )

    # ------------------------------------------------------------------ #
    # GC / compaction
    # ------------------------------------------------------------------ #
    def gc(
        self,
        *,
        keep_latest: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> GCStats:
        """Reference-counted retention + byte-budgeted eviction.

        ``keep_latest=N`` keeps each key's newest N artifacts; an artifact
        is removed only when no key retains it.  ``max_bytes`` then evicts
        the least-recently-used survivors until the store footprint fits —
        except the newest artifact, which is never evicted (the in-memory
        LRU rule: the entry being inserted always caches).  Orphaned
        directories and blobs are swept either way.

        Holds the store's advisory file lock for the whole pass, so a
        concurrent ``put`` can neither lose its index entry to the sweep
        nor have its half-written artifact collected as an orphan.
        """
        with self._locked():
            return self._gc_locked(keep_latest=keep_latest, max_bytes=max_bytes)

    def _gc_locked(
        self,
        *,
        keep_latest: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> GCStats:
        idx = self.read_index()
        stats = GCStats(scanned=len(idx["artifacts"]),
                        bytes_before=self.total_bytes(idx))

        doomed: set = set()
        if keep_latest is not None:
            if keep_latest < 1:
                raise StoreError("gc: keep_latest must be >= 1")
            retained: set = set()
            for entries in idx["keys"].values():
                retained.update(entries[-keep_latest:])
            doomed = set(idx["artifacts"]) - retained

        if max_bytes is not None:
            newest = max(
                (a for a in idx["artifacts"] if a not in doomed),
                key=lambda a: idx["artifacts"][a]["seq"],
                default=None,
            )
            # Pin the newest surviving holder of every live fp: key that
            # carries AOT generated modules: that artifact is what resolves
            # the fingerprint, and evicting it would pull the generated
            # source out from under a persisted kernel-cache entry.
            pinned: set = set()
            for key, entries in idx["keys"].items():
                if not key.startswith("fp:"):
                    continue
                holder = next(
                    (a for a in reversed(entries) if a not in doomed), None
                )
                if holder is not None and int(
                    idx["artifacts"][holder].get("aot", 0)
                ):
                    pinned.add(holder)
            by_lru = sorted(
                (a for a in idx["artifacts"]
                 if a not in doomed and a != newest and a not in pinned),
                key=lambda a: (idx["artifacts"][a]["last_used"],
                               idx["artifacts"][a]["seq"]),
            )
            # Running decrement: evicting a victim frees its manifest plus
            # every object it was the last live referrer of.
            live_refs: Dict[str, int] = {}
            for aid, meta in idx["artifacts"].items():
                if aid not in doomed:
                    for sha in meta["objects"]:
                        live_refs[sha] = live_refs.get(sha, 0) + 1
            live_total = self._live_bytes(idx, doomed)
            for victim in by_lru:
                if live_total <= max_bytes:
                    break
                meta = idx["artifacts"][victim]
                live_total -= int(meta.get("manifest_bytes", 0))
                for sha in meta["objects"]:
                    live_refs[sha] -= 1
                    if live_refs[sha] == 0 and sha in idx["objects"]:
                        live_total -= int(idx["objects"][sha]["bytes"])
                doomed.add(victim)

        for aid in doomed:
            meta = idx["artifacts"].pop(aid)
            art_dir = self.root / meta["dir"]
            if art_dir.exists():
                shutil.rmtree(art_dir)
            stats.removed_artifacts += 1
            for sha in meta["objects"]:
                obj = idx["objects"].get(sha)
                if obj is None:
                    continue
                obj["refs"] -= 1
                if obj["refs"] <= 0:
                    del idx["objects"][sha]
                    blob = self.objects_dir / sha
                    if blob.exists():
                        blob.unlink()
                    stats.removed_objects += 1
        for key in list(idx["keys"]):
            idx["keys"][key] = [a for a in idx["keys"][key] if a not in doomed]
            if not idx["keys"][key]:
                del idx["keys"][key]

        stats.swept_orphans = self._sweep_orphans(idx)
        stats.bytes_after = self.total_bytes(idx)
        self._write_index(idx)
        return stats

    def _live_bytes(self, idx: Dict[str, Any], doomed: set) -> int:
        live_objects: Dict[str, int] = {}
        manifests = 0
        for aid, meta in idx["artifacts"].items():
            if aid in doomed:
                continue
            manifests += int(meta.get("manifest_bytes", 0))
            for sha in meta["objects"]:
                obj = idx["objects"].get(sha)
                if obj is not None:
                    live_objects[sha] = int(obj["bytes"])
        return sum(live_objects.values()) + manifests

    def _iter_orphans(self, idx: Dict[str, Any]):
        """Yield ``(kind, path)`` for on-disk artifacts/blobs the index does
        not know about (leftovers of a crash between a save and the index
        write).  The single definition of "orphan" — gc deletes them,
        verify reports them."""
        known_dirs = {meta["dir"] for meta in idx["artifacts"].values()}
        if self.artifacts_dir.is_dir():
            for entry in self.artifacts_dir.iterdir():
                if f"{ARTIFACTS_DIR}/{entry.name}" not in known_dirs:
                    yield "artifact", entry
        if self.objects_dir.is_dir():
            for blob in self.objects_dir.iterdir():
                if blob.name not in idx["objects"]:
                    yield "object", blob

    def _sweep_orphans(self, idx: Dict[str, Any]) -> int:
        swept = 0
        for _kind, path in self._iter_orphans(idx):
            shutil.rmtree(path) if path.is_dir() else path.unlink()
            swept += 1
        return swept

    # ------------------------------------------------------------------ #
    # integrity
    # ------------------------------------------------------------------ #
    def verify(self) -> List[str]:
        """Check store integrity; returns a list of problems (empty = OK).

        Every key entry must resolve to an indexed artifact; every indexed
        artifact must exist on disk with a valid manifest, its payload, and
        its declared content hash; every AOT module sidecar must match its
        manifest sha256 *and* pass the generated-module AST sanitizer
        (:func:`repro.analysis.sanitizer.verify_aot_source`); every object
        reference must resolve to a blob of the declared size with an
        accurate reference count; and no orphaned blobs or artifact
        directories may remain.
        """
        problems: List[str] = []
        try:
            idx = self.read_index()
        except StoreError as e:
            return [str(e)]
        for key, entries in idx["keys"].items():
            for aid in entries:
                if aid not in idx["artifacts"]:
                    problems.append(f"key {key!r} references unknown artifact {aid}")
        counted: Dict[str, int] = {}
        for aid, meta in idx["artifacts"].items():
            art_dir = self.root / meta["dir"]
            try:
                manifest = read_manifest(art_dir)
            except StoreError as e:
                problems.append(f"artifact {aid}: {e}")
                continue
            if manifest["content_hash"] != meta["content_hash"]:
                problems.append(f"artifact {aid}: content hash drifted")
            payload = art_dir / manifest["payload"]
            if not payload.exists():
                problems.append(f"artifact {aid}: missing payload")
            elif payload.stat().st_size != manifest["payload_bytes"]:
                problems.append(f"artifact {aid}: payload size mismatch")
            for rmeta in manifest["regions"]:
                sidecar = art_dir / rmeta["file"]
                if not sidecar.exists():
                    problems.append(f"artifact {aid}: missing sidecar {rmeta['file']}")
            for ameta in manifest.get("aot_modules", ()):
                module = art_dir / ameta["file"]
                if not module.exists():
                    problems.append(
                        f"artifact {aid}: missing aot module {ameta['file']}"
                    )
                    continue
                declared = ameta.get("sha256")
                if declared and file_sha256(module) != declared:
                    problems.append(
                        f"artifact {aid}: aot module {ameta['file']} content "
                        "does not match its manifest sha256 (tampered?)"
                    )
                    continue
                try:
                    verify_aot_source(module.read_text(), filename=module)
                except SanitizerError as e:
                    problems.append(
                        f"artifact {aid}: aot module failed sanitizing: {e}"
                    )
            for sha in meta["objects"]:
                counted[sha] = counted.get(sha, 0) + 1
                obj = idx["objects"].get(sha)
                if obj is None:
                    problems.append(f"artifact {aid}: object {sha[:12]} not indexed")
                    continue
                blob = self.objects_dir / sha
                if not blob.exists():
                    problems.append(f"object {sha[:12]}: blob missing")
                elif blob.stat().st_size != obj["bytes"]:
                    problems.append(f"object {sha[:12]}: blob size mismatch")
        for sha, obj in idx["objects"].items():
            if obj["refs"] != counted.get(sha, 0):
                problems.append(
                    f"object {sha[:12]}: refcount {obj['refs']} != "
                    f"{counted.get(sha, 0)} references"
                )
        for kind, path in self._iter_orphans(idx):
            if kind == "artifact":
                problems.append(f"orphaned artifact directory {path.name}")
            else:
                problems.append(f"orphaned object {path.name[:12]}")
        return problems


def gc_artifacts(
    root: Union[str, Path],
    *,
    keep_latest: Optional[int] = None,
    max_bytes: Optional[int] = None,
) -> GCStats:
    """Compact the artifact store at ``root``; see :meth:`ArtifactStore.gc`."""
    return ArtifactStore(root).gc(keep_latest=keep_latest, max_bytes=max_bytes)
