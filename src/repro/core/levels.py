"""Format abstractions for sparse tensor partitioning (paper §IV-B, Table I).

Each storage level implements two groups of *level functions*:

* initial partitioning — ``init/create/finalizeUniversePartition`` and the
  non-zero counterparts — which build a partition of one coordinate-tree
  level from per-color coordinate (universe) or position (non-zero) bounds;
* derived partitioning — ``partitionFromParent``/``partitionFromChild`` —
  which propagate a level partition down/up the coordinate tree.

``finalize*`` returns ``(parent_part, child_part)``: a partition to use for
partitioning the level above and one for the level below, exactly as in the
paper.  Every function records the IR fragment it represents into the
:class:`~repro.core.plan.PartitioningPlan` while executing the operation
against the Legion substrate.
"""
from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import CompileError
from ..legion.dependent import (
    image,
    partition_by_bounds,
    partition_by_value_ranges,
    preimage,
)
from ..legion.index_space import ArraySubset, EMPTY, Rect, RectSubset
from ..legion.partition import Coloring, Partition
from ..taco.tensor import CompressedLevel, DenseLevel, Tensor
from .plan import PartitioningPlan

__all__ = [
    "LevelFunctions",
    "DenseLevelFunctions",
    "CompressedLevelFunctions",
    "level_functions_for",
    "shrink_dense_partition",
]


def shrink_dense_partition(part: Partition, size: int, parent_volume: int) -> Partition:
    """Map a partition of ``parent*size + k`` positions back to parents."""
    from ..legion.index_space import IndexSpace, subset_from_indices

    parent_space = IndexSpace(parent_volume, name=f"{part.parent.name}/ {size}")
    subsets = {}
    for c, s in part.items():
        if s.empty:
            subsets[c] = EMPTY
        elif isinstance(s, RectSubset):
            subsets[c] = RectSubset(
                Rect(s.rect.lo[0] // size, s.rect.hi[0] // size)
            )
        else:
            subsets[c] = subset_from_indices(s.indices() // size)
    return Partition(parent_space, subsets, name=f"{part.name}//{size}")


class LevelFunctions:
    """Base class binding a level of a packed tensor to its level functions."""

    def __init__(self, tensor: Tensor, level_index: int, plan: PartitioningPlan):
        self.tensor = tensor
        self.level_index = level_index
        self.level = tensor.levels[level_index]
        self.plan = plan
        # Populated as the functions run:
        self.positions_part: Optional[Partition] = None
        self.pos_part: Optional[Partition] = None  # Compressed levels only

    def _emit(self, op: str, text: str) -> None:
        self.plan.emit(op, text, tensor=self.tensor.name, level=self.level_index)

    @property
    def _tag(self) -> str:
        return f"{self.tensor.name}{self.level_index + 1}"

    # The six initial-partition functions + two derived ones; subclasses
    # implement the behaviour of Table I.
    def init_universe_partition(self) -> Coloring:
        raise NotImplementedError

    def create_universe_partition_entry(self, coloring, color, bounds) -> None:
        raise NotImplementedError

    def finalize_universe_partition(self, coloring) -> Tuple[Optional[Partition], Partition]:
        raise NotImplementedError

    def init_nonzero_partition(self) -> Coloring:
        raise NotImplementedError

    def create_nonzero_partition_entry(self, coloring, color, bounds) -> None:
        raise NotImplementedError

    def finalize_nonzero_partition(self, coloring) -> Tuple[Optional[Partition], Partition]:
        raise NotImplementedError

    def partition_from_parent(self, parent_part: Partition) -> Partition:
        raise NotImplementedError

    def partition_from_child(self, child_part: Partition) -> Optional[Partition]:
        raise NotImplementedError


class DenseLevelFunctions(LevelFunctions):
    """Dense levels: positions *are* coordinates (scaled by parent entries).

    Universe and non-zero partitions coincide — every coordinate of a dense
    level is materialized, so bounds on coordinates and on positions name
    the same sets (Table I gives both groups the same bodies).
    """

    level: DenseLevel

    # -- initial partitions -------------------------------------------------
    def init_universe_partition(self) -> Coloring:
        self._emit("init", f"C_{self._tag} = {{}}")
        return Coloring()

    def create_universe_partition_entry(self, coloring, color, bounds) -> None:
        coloring[color] = bounds
        self._emit("entry", f"C_{self._tag}[{color}] = {bounds}")

    def finalize_universe_partition(self, coloring):
        if self.level.num_positions != self.level.size and self.level_index > 0:
            raise CompileError(
                "initial universe partitions of non-root Dense levels are not "
                "supported; distribute an outer dimension instead"
            )
        part = partition_by_bounds(self.level.pos_ispace, coloring,
                                   name=f"{self._tag}Part")
        self._emit(
            "partitionByBounds",
            f"{self._tag}Part = partitionByBounds(C_{self._tag}, {self._tag}.dom)",
        )
        self.positions_part = part
        return part, part

    init_nonzero_partition = init_universe_partition
    create_nonzero_partition_entry = create_universe_partition_entry
    finalize_nonzero_partition = finalize_universe_partition

    # -- derived partitions ---------------------------------------------------
    def partition_from_parent(self, parent_part: Partition) -> Partition:
        part = parent_part.scale_dense(self.level.size)
        self._emit("copy", f"{self._tag}Part = copy(parentPart)")
        self.positions_part = part
        return part

    def partition_from_child(self, child_part: Partition) -> Optional[Partition]:
        self.positions_part = child_part
        self._emit("copy", f"{self._tag}ParentPart = copy(childPart)")
        if self.level_index == 0:
            return None
        parents = self.level.num_positions // self.level.size
        return shrink_dense_partition(child_part, self.level.size, parents)


class CompressedLevelFunctions(LevelFunctions):
    """Compressed levels: partition ``crd`` then recover ``pos`` by preimage."""

    level: CompressedLevel

    # -- universe -----------------------------------------------------------
    def init_universe_partition(self) -> Coloring:
        self._emit("init", f"C_{self._tag}_crd = {{}}")
        return Coloring()

    def create_universe_partition_entry(self, coloring, color, bounds) -> None:
        coloring[color] = bounds
        self._emit("entry", f"C_{self._tag}_crd[{color}] = {bounds}")

    def finalize_universe_partition(self, coloring):
        crd_part = partition_by_value_ranges(
            self.level.crd, coloring, name=f"{self._tag}CrdPart"
        )
        self._emit(
            "partitionByValueRanges",
            f"P_{self._tag}_crd = partitionByValueRanges(C_{self._tag}_crd, "
            f"{self.tensor.name}[{self.level_index}].crd)",
        )
        pos_part = preimage(self.level.pos, crd_part, self.level.crd,
                            name=f"{self._tag}PosPart")
        self._emit(
            "preimage",
            f"P_{self._tag}_pos = preimage({self.tensor.name}[{self.level_index}].pos, "
            f"P_{self._tag}_crd, crd)",
        )
        self.positions_part = crd_part
        self.pos_part = pos_part
        return pos_part, crd_part

    # -- non-zero ----------------------------------------------------------
    def init_nonzero_partition(self) -> Coloring:
        self._emit("init", f"C_{self._tag}_crd = {{}}")
        return Coloring()

    def create_nonzero_partition_entry(self, coloring, color, bounds) -> None:
        coloring[color] = bounds
        self._emit("entry", f"C_{self._tag}_crd[{color}] = {bounds}  // position bounds")

    def finalize_nonzero_partition(self, coloring):
        crd_part = partition_by_bounds(
            self.level.crd.ispace, coloring, name=f"{self._tag}CrdPart"
        )
        self._emit(
            "partitionByBounds",
            f"P_{self._tag}_crd = partitionByBounds(C_{self._tag}_crd, "
            f"{self.tensor.name}[{self.level_index}].crd)",
        )
        pos_part = preimage(self.level.pos, crd_part, self.level.crd,
                            name=f"{self._tag}PosPart")
        self._emit(
            "preimage",
            f"P_{self._tag}_pos = preimage({self.tensor.name}[{self.level_index}].pos, "
            f"P_{self._tag}_crd, crd)",
        )
        self.positions_part = crd_part
        self.pos_part = pos_part
        return pos_part, crd_part

    # -- derived -------------------------------------------------------------
    def partition_from_parent(self, parent_part: Partition) -> Partition:
        pos_part = parent_part.copy(name=f"{self._tag}PosPart")
        self._emit("copy", f"P_{self._tag}_pos = copy(parentPart)")
        crd_part = image(self.level.pos, pos_part, self.level.crd,
                         name=f"{self._tag}CrdPart")
        self._emit(
            "image",
            f"P_{self._tag}_crd = image({self.tensor.name}[{self.level_index}].pos, "
            f"P_{self._tag}_pos, crd)",
        )
        self.pos_part = pos_part
        self.positions_part = crd_part
        return crd_part

    def partition_from_child(self, child_part: Partition) -> Optional[Partition]:
        crd_part = child_part.copy(name=f"{self._tag}CrdPart")
        self._emit("copy", f"P_{self._tag}_crd = copy(childPart)")
        pos_part = preimage(self.level.pos, crd_part, self.level.crd,
                            name=f"{self._tag}PosPart")
        self._emit(
            "preimage",
            f"P_{self._tag}_pos = preimage({self.tensor.name}[{self.level_index}].pos, "
            f"P_{self._tag}_crd, crd)",
        )
        self.positions_part = crd_part
        self.pos_part = pos_part
        return pos_part


def level_functions_for(
    tensor: Tensor, level_index: int, plan: PartitioningPlan
) -> LevelFunctions:
    lvl = tensor.levels[level_index]
    if isinstance(lvl, DenseLevel):
        return DenseLevelFunctions(tensor, level_index, plan)
    return CompressedLevelFunctions(tensor, level_index, plan)
