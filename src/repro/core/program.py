"""Program-level compilation: many scheduled statements, one compile entry.

SpDISTAL's motivating workloads are rarely a single statement — a solver
step is an SpMV plus vector updates, a CP-ALS sweep is three MTTKRPs, a
graph pipeline chains SpMM into SDDMM.  Compiling those statements
*together* lets the amortization layers work across the program instead of
per ``compile_kernel`` call: every statement's compile goes through the
same kernel cache and partition memo, so a tensor partitioned by one
statement is *not* re-partitioned by the next statement that splits it the
same way (the memo key — tensor identity, pattern version, level, kind,
bounds — hits), and communicate plans recorded by the runtime replay
across the whole statement sequence.

:func:`compile_program` is the entry; :func:`repro.core.compiler.compile_kernel`
is a thin wrapper over a one-statement program, and the high-level
:mod:`repro.api` front end (``Session``/``Program``/``einsum``) lowers here.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..legion.machine import Machine
from ..legion.metrics import ExecutionMetrics
from ..legion.runtime import Runtime
from ..taco.schedule import Schedule
from . import cache as _cache
from .compiler import CompiledKernel, ExecutionResult, compile_statement
from .passes import PassRecord, pipeline_plan

__all__ = ["CompiledProgram", "ProgramResult", "compile_program"]


@dataclass
class ProgramResult:
    """The outcome of one :meth:`CompiledProgram.execute` pass."""

    results: List[ExecutionResult] = field(default_factory=list)

    @property
    def outputs(self) -> List:
        """Each statement's output tensor, in program order."""
        return [r.output for r in self.results]

    @property
    def output(self):
        """The last statement's output tensor (the program's result)."""
        return self.results[-1].output if self.results else None

    @property
    def simulated_seconds(self) -> float:
        """Total simulated execution time across the program's statements."""
        return sum(r.simulated_seconds for r in self.results)

    @property
    def reused(self) -> int:
        """Statements satisfied by common-subexpression reuse this pass."""
        return sum(1 for r in self.results if r.reused)

    def total_comm_bytes(self) -> float:
        return sum(r.metrics.total_comm_bytes() for r in self.results)

    def __getitem__(self, k: int) -> ExecutionResult:
        return self.results[k]

    def __len__(self) -> int:
        return len(self.results)


class CompiledProgram:
    """An ordered sequence of compiled kernels executed as one unit.

    Statements execute in definition order on a single runtime, so a
    statement reading a predecessor's output sees its freshly computed
    values, and the runtime's mapping traces cover the whole chain.
    """

    def __init__(
        self,
        kernels: Sequence[CompiledKernel],
        machine: Machine,
        reused_from: Optional[Sequence[Optional[int]]] = None,
        *,
        passes: Optional[Sequence[PassRecord]] = None,
        origin: Optional[Sequence[tuple]] = None,
    ):
        self.kernels: List[CompiledKernel] = list(kernels)
        self.machine = machine
        #: Per statement, the index of the earlier identical statement whose
        #: execution satisfies it (common-subexpression reuse), or None.
        self.reused_from: List[Optional[int]] = (
            list(reused_from) if reused_from is not None
            else [None] * len(self.kernels)
        )
        #: What the pass pipeline did while compiling this program
        #: (fold → dse → fuse → cse), in order.
        self.passes: List[PassRecord] = list(passes) if passes is not None else []
        #: Per compiled statement, the source-statement indices it came
        #: from (fusion merges several; DSE removes some entirely).
        self.origin: List[tuple] = (
            list(origin) if origin is not None
            else [(n,) for n in range(len(self.kernels))]
        )
        self._runtime: Optional[Runtime] = None

    def __len__(self) -> int:
        return len(self.kernels)

    def __getitem__(self, k: int) -> CompiledKernel:
        return self.kernels[k]

    def describe(self) -> str:
        """The pass pipeline's provenance followed by the generated
        partitioning code of every statement, in order."""
        chunks = [f"// {rec.describe()}" for rec in self.passes]
        for n, ck in enumerate(self.kernels):
            src = self.origin[n] if n < len(self.origin) else (n,)
            label = f"// statement {n}"
            if tuple(src) != (n,):
                label += f" (from source statement{'s' if len(src) > 1 else ''} " \
                         f"{'+'.join(str(s) for s in src)})"
            chunks.append(f"{label}: {ck.schedule.assignment!r}")
            chunks.append(ck.plan.describe())
        return "\n".join(chunks)

    def _ensure_runtime(
        self, runtime: Optional[Runtime], *, adopt: bool = True
    ) -> Runtime:
        if runtime is not None:
            if runtime.machine is not self.machine and (
                _cache._machine_signature(runtime.machine)
                != _cache._machine_signature(self.machine)
            ):
                raise ValueError(
                    "runtime machine "
                    f"({runtime.machine.kind.value}, grid "
                    f"{runtime.machine.grid.dims}) does not match the "
                    f"program's machine ({self.machine.kind.value}, grid "
                    f"{self.machine.grid.dims}); the compiled plans would "
                    "map to the wrong processors"
                )
            if adopt:
                self._runtime = runtime
            return runtime
        if self._runtime is None:
            self._runtime = Runtime(self.machine)
        return self._runtime

    def reset_runtime(self) -> None:
        """Forget the adopted runtime.  The next :meth:`execute` without an
        explicit ``runtime`` builds a fresh one for ``self.machine``."""
        self._runtime = None

    def execute(
        self,
        runtime: Optional[Runtime] = None,
        *,
        fresh_trial: bool = True,
        adopt: bool = True,
    ) -> ProgramResult:
        """Run every statement once, in order, on one shared runtime.

        ``fresh_trial`` resets staged copies to home placements once for
        the whole program (not per statement), so intermediate results
        staged by one statement stay resident for its consumers within the
        same trial — matching what a fused multi-statement task graph pays.

        An explicit ``runtime`` must belong to a machine equivalent to
        ``self.machine`` (a :class:`ValueError` otherwise) and — with
        ``adopt`` (the default) — becomes this program's runtime for later
        calls too; pass ``adopt=False`` to use it for this call only, or
        call :meth:`reset_runtime` to drop a previously adopted one.
        """
        rt = self._ensure_runtime(runtime, adopt=adopt)
        if fresh_trial:
            rt.reset_residency()
        out = ProgramResult()
        for n, ck in enumerate(self.kernels):
            prior = self.reused_from[n]
            if prior is not None:
                # Common-subexpression reuse: an identical earlier statement
                # already ran this pass and nothing wrote its operands since,
                # so the output tensor holds exactly these values — no
                # launch, no simulated cost.
                out.results.append(ExecutionResult(
                    output=ck.out,
                    metrics=ExecutionMetrics(),
                    simulated_seconds=0.0,
                    plan=ck.plan,
                    reused=True,
                ))
                continue
            out.results.append(ck.execute(rt, fresh_trial=False))
        return out


def _cse_reuse_map(
    schedules: Sequence[Schedule], machine: Machine
) -> List[Optional[int]]:
    """Which statements an earlier identical statement satisfies.

    Two statements are common subexpressions when their kernel fingerprints
    coincide — same canonical statement *and* schedule over the same tensor
    identities, pattern versions and machine — and no statement in between
    writes any tensor the earlier one touched.  Accumulating statements
    (``+=`` changes the output per execution) and assembled outputs (SpAdd
    rebuilds its pattern; the fingerprint deliberately ignores the LHS
    version) are never reused.  Reuse indices always point at the root
    occurrence, which is the one that executes.

    The legality rules live in the static analyzer
    (:func:`repro.analysis.cse.cse_reuse_map`) so the collapse decision is
    derived from the same privilege/fingerprint facts ``Program.analyze()``
    reports; this wrapper discards the blocked-collapse diagnostics.
    """
    from ..analysis.cse import cse_reuse_map

    reuse, _diagnostics = cse_reuse_map(schedules, machine)
    return reuse


def compile_program(
    schedules: Sequence[Schedule],
    machine: Optional[Machine] = None,
    *,
    use_cache: bool = True,
    cse: bool = True,
    fold: bool = True,
    dse: bool = True,
    fuse: bool = True,
    keep=None,
    backend: Optional[str] = None,
) -> CompiledProgram:
    """Compile scheduled statements together into a :class:`CompiledProgram`.

    The ordered pass pipeline (:mod:`repro.core.passes`) runs first —
    copy folding (``fold``), dead-store elimination (``dse``) and
    SDDMM→SpMM fusion (``fuse``), each individually disableable, with
    ``keep=`` pinning tensors (objects or names) that must stay
    materialized.  Each surviving statement then compiles through the
    cache-aware single-statement engine; because all statements share the
    process-wide kernel cache and partition memo, operands appearing in
    several statements have their coordinate-tree partitions derived once
    and replayed for every later statement that splits them identically.
    With ``cse`` (the default) *identical* repeated statements
    additionally collapse: they compile to the same
    :class:`CompiledKernel` (the cache guarantees that part) and only the
    first occurrence executes per pass — later occurrences are satisfied
    from it (see :func:`_cse_reuse_map` for the safety rules).  Which
    passes fired — with statement provenance — is reported by
    ``CompiledProgram.passes`` and :meth:`CompiledProgram.describe`.
    An empty program is an error — there is nothing to compile.
    ``backend`` is forwarded to every statement compile (None picks the
    process-wide codegen default; see :mod:`repro.codegen`).
    """
    if not schedules:
        raise ValueError("compile_program needs at least one scheduled statement")
    if machine is None:
        machine = Machine.cpu(1)
    plan = pipeline_plan(
        schedules, machine, fold=fold, dse=dse, fuse=fuse, keep=keep
    )
    kernels = [
        compile_statement(s, machine, use_cache=use_cache, backend=backend)
        for s in plan.schedules
    ]
    reused_from = (
        _cse_reuse_map(plan.schedules, machine)
        if cse and len(plan.schedules) > 1
        else None
    )
    records = list(plan.records)
    if not cse:
        records.append(PassRecord("cse", False, (), "disabled"))
    else:
        collapsed = tuple(
            plan.origin[n][0]
            for n, r in enumerate(reused_from or [])
            if r is not None
        )
        records.append(PassRecord(
            "cse", bool(collapsed), collapsed,
            "identical statements collapse to one execution"
            if collapsed else "no identical repeated statements",
        ))
    return CompiledProgram(
        kernels, machine, reused_from, passes=records, origin=plan.origin
    )
