"""The SpDISTAL compiler: scheduled TIN statements → distributed kernels.

``compile_kernel`` implements the code generation algorithm of the paper's
Fig. 9a.  For each distributed index variable it

1. creates initial level partitions of the accessed tensors — universe
   partitions for coordinate-value iteration, non-zero partitions for
   coordinate-position iteration (``createInitialUniversePartitions`` /
   ``createInitialNonZeroPartition``),
2. derives full coordinate-tree partitions (``partitionCoordinateTrees`` /
   ``partitionNonZeroCoordinateTree``), and for the non-zero case partitions
   the remaining tensors from the split tensor's top-level partition
   (``partitionRemainingCoordinateTrees``),
3. emits a distributed loop passing each piece its sub-regions
   (``emitDistributedForLoop``) — realized as a Legion index launch whose
   leaf is selected from ``repro.kernels`` by matching the scheduled
   statement.

The result is a :class:`CompiledKernel` that can be executed repeatedly on a
:class:`~repro.legion.runtime.Runtime`, producing both the numerical result
and the simulated distributed execution metrics.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import CompileError
from ..legion.machine import Machine, Work
from ..legion.metrics import CommEvent, ExecutionMetrics
from ..legion.partition import Partition
from ..legion.runtime import Privilege, RegionReq, Runtime
from ..taco.expr import Access, Add, Assignment, Mul
from ..taco.index_vars import IndexVar
from ..taco.reference import var_sizes
from ..taco.schedule import ParallelUnit, Schedule
from ..taco.tensor import CompressedLevel, Tensor
from .. import kernels as K
from . import cache as _cache
from .assembly import adopt_pattern, install_assembled_output, pattern_source
from .partitioner import (
    TensorPartition,
    partition_dense_tensor,
    partition_tensor,
    replicated_partition,
)
from .plan import PartitioningPlan

__all__ = [
    "KernelClass", "classify", "Piece", "CompiledKernel", "compile_kernel",
    "compile_statement", "ExecutionResult",
]

Bounds = Tuple[int, int]
Color = Hashable


# --------------------------------------------------------------------------- #
# kernel classification
# --------------------------------------------------------------------------- #
@dataclass
class KernelClass:
    kind: str
    roles: Dict[str, Access] = field(default_factory=dict)
    operands: List[Access] = field(default_factory=list)  # spadd only


def classify(asg: Assignment) -> KernelClass:
    """Match the statement against the specialized kernel patterns."""
    fused = getattr(asg, "fused_class", None)
    if fused is not None:
        # A pipeline-synthesized statement (repro.core.passes) carries its
        # class explicitly — e.g. "fused_sddmm_spmm", whose 4-access Mul
        # would otherwise pattern-match nothing.  Honoring it here makes
        # the compiler, the autoscheduler, the hazard analyzer and the
        # communication planner all see the fused kind through their
        # ordinary classify() entry points.
        return fused
    lhs, rhs = asg.lhs, asg.rhs
    if _cache.is_assembled_output(asg):
        # SpAdd: a sum of aligned accesses into a sparse output whose
        # pattern is assembled anew each execute.  The one predicate is
        # shared with the kernel fingerprint, which must exclude the LHS
        # pattern version for exactly the statements classified here.
        return KernelClass("spadd", operands=list(rhs.operands))
    operands = list(rhs.operands) if isinstance(rhs, Mul) else [rhs]
    if not all(isinstance(o, Access) for o in operands):
        return KernelClass("generic")
    sparse = [o for o in operands if o.tensor.format.has_compressed()]
    dense = [o for o in operands if not o.tensor.format.has_compressed()]
    if len(sparse) != 1:
        return KernelClass("generic")
    B = sparse[0]
    bi = B.indices
    if B.tensor.order == 2 and len(dense) == 1 and len(operands) == 2:
        d = dense[0]
        if d.tensor.order == 1 and lhs.indices == (bi[0],) and d.indices == (bi[1],):
            return KernelClass("spmv", {"B": B, "c": d})
        if (
            d.tensor.order == 2
            and len(lhs.indices) == 2
            and lhs.indices[0] == bi[0]
            and d.indices == (bi[1], lhs.indices[1])
            and lhs.tensor.format.is_all_dense()
        ):
            return KernelClass("spmm", {"B": B, "C": d})
    if (
        B.tensor.order == 2
        and len(dense) == 2
        and lhs.indices == bi
        and not lhs.tensor.format.is_all_dense()
    ):
        C = next((d for d in dense if d.indices and d.indices[0] == bi[0]), None)
        D = next((d for d in dense if d.indices and d.indices[-1] == bi[1]), None)
        if C is not None and D is not None and C is not D and C.indices[1] == D.indices[0]:
            return KernelClass("sddmm", {"B": B, "C": C, "D": D})
    if B.tensor.order == 3 and len(dense) == 1 and dense[0].tensor.order == 1:
        if tuple(lhs.indices) == tuple(bi[:2]) and dense[0].indices == (bi[2],):
            return KernelClass("spttv", {"B": B, "c": dense[0]})
    if (
        B.tensor.order == 3
        and len(dense) == 2
        and all(d.tensor.order == 2 for d in dense)
        and len(lhs.indices) == 2
        and lhs.indices[0] == bi[0]
    ):
        l = lhs.indices[1]
        C = next((d for d in dense if d.indices == (bi[1], l)), None)
        D = next((d for d in dense if d.indices == (bi[2], l)), None)
        if C is not None and D is not None:
            return KernelClass("spmttkrp", {"B": B, "C": C, "D": D})
    return KernelClass("generic")


# --------------------------------------------------------------------------- #
# distribution spec
# --------------------------------------------------------------------------- #
@dataclass
class Piece:
    """One point of the distributed launch domain."""

    color: Color
    proc: int
    var_bounds: Dict[IndexVar, Bounds]
    rows: Bounds  # top-level coordinate bounds of this piece
    pos: Optional[Bounds] = None  # non-zero position bounds (non-zero strategy)
    cols: Optional[Bounds] = None  # secondary universe bounds (batched SpMM)


def _chunk_bounds(extent: int, pieces: int) -> List[Bounds]:
    return [K.piece_range(extent, pieces, c) for c in range(pieces)]


@dataclass
class ExecutionResult:
    output: Tensor
    metrics: ExecutionMetrics
    simulated_seconds: float
    plan: PartitioningPlan
    #: True when program-level common-subexpression reuse satisfied this
    #: statement from an earlier identical one in the same pass (no launch
    #: ran; the output already holds the values).
    reused: bool = False


class CompiledKernel:
    """A compiled distributed sparse tensor kernel."""

    def __init__(
        self,
        schedule: Schedule,
        machine: Machine,
        kind: str,
        strategy: str,
        pieces: List[Piece],
        parts: Dict[int, TensorPartition],
        privileges: Dict[int, Privilege],
        plan: PartitioningPlan,
        roles: Dict[str, Access],
        operands: List[Access],
    ):
        self.schedule = schedule
        self.machine = machine
        self.kind = kind
        self.strategy = strategy
        self.pieces = pieces
        self.parts = parts
        self.privileges = privileges
        self.plan = plan
        self.roles = roles
        self.operands = operands
        self.out = schedule.assignment.lhs.tensor
        self._runtime: Optional[Runtime] = None
        #: execution backend: "interp" (closure leaves over repro.kernels)
        #: or "codegen" (AOT-generated flat thunks, interpreter fallback
        #: where unsupported).  Set by ``compile_statement``.
        self.backend: str = "interp"
        self._leaf: Optional[Callable[[Piece], Work]] = None
        #: backend the current ``_leaf`` was built for (rebuild on change).
        self._leaf_backend: Optional[str] = None
        self._streamed: set = set()
        self._spadd_reqs: Optional[List[RegionReq]] = None

    def stream_tensor(self, tensor: Tensor) -> None:
        """Communicate this tensor's sub-regions in memory-sized rounds
        instead of keeping them resident (the "SpDISTAL-Batched" strategy)."""
        self._streamed.add(id(tensor))

    # -- persistence (repro.core.store) ---------------------------------------
    def __getstate__(self):
        """Compiled kernels are picklable minus the leaf closure (it binds
        raw NumPy views and is rebuilt lazily on the first execute)."""
        state = self.__dict__.copy()
        state["_leaf"] = None
        state["_leaf_backend"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        # Kernels pickled before the codegen backend existed lack the knob.
        self.__dict__.setdefault("backend", "interp")
        self.__dict__.setdefault("_leaf_backend", None)
        # ``parts``/``privileges``/``_streamed`` key on id(tensor); ids
        # changed across the pickle boundary.  Every partition carries its
        # tensor, so re-key from the old ids to the unpickled identities.
        old_parts: Dict[int, TensorPartition] = self.parts
        tensor_of = {old_id: part.tensor for old_id, part in old_parts.items()}
        self.parts = {id(t): old_parts[old_id] for old_id, t in tensor_of.items()}
        self.privileges = {
            id(tensor_of[old_id]): priv
            for old_id, priv in self.privileges.items()
            if old_id in tensor_of
        }
        self._streamed = {
            id(tensor_of[old_id]) for old_id in self._streamed if old_id in tensor_of
        }

    # -- data placement -----------------------------------------------------
    def _ensure_runtime(self, runtime: Optional[Runtime]) -> Runtime:
        if runtime is not None:
            if runtime is not self._runtime:
                self._runtime = runtime
                self._place(runtime)
            return runtime
        if self._runtime is None:
            self._runtime = Runtime(self.machine)
            self._place(self._runtime)
        return self._runtime

    def _place(self, rt: Runtime) -> None:
        """Distribute every tensor according to its (computed) partition.

        Matches the paper's experiments where the declared data distribution
        matches the computation distribution; mismatched TDN placements are
        applied by ``repro.distal`` before execution instead.
        """
        placed = set()
        for t_id, part in self.parts.items():
            tensor = part.tensor
            if id(tensor) in placed:
                continue
            placed.add(id(tensor))
            if getattr(tensor, "_placed_by_tdn", False):
                continue
            if id(tensor) in self._streamed:
                for req in part.region_reqs(Privilege.READ_ONLY):
                    rt.place_on(req.region, 0)
                continue
            for req in part.region_reqs(Privilege.READ_ONLY):
                if req.partition is None:
                    rt.place_replicated(req.region)
                else:
                    rt.place(req.region, req.partition, self._proc_of_color)
        rt.invalidate_caches()

    def _proc_of_color(self, color: Color) -> int:
        if isinstance(color, tuple):
            idx = 0
            dims = self._color_dims
            for c, d in zip(color, dims):
                idx = idx * d + int(c)
            return idx % self.machine.size
        return int(color) % self.machine.size

    @property
    def _color_dims(self) -> Tuple[int, ...]:
        first = self.pieces[0].color
        if isinstance(first, tuple):
            dims = []
            for d in range(len(first)):
                dims.append(max(p.color[d] for p in self.pieces) + 1)
            return tuple(dims)
        return (len(self.pieces),)

    # -- region requirements --------------------------------------------------
    def _reqs(self) -> List[RegionReq]:
        reqs: List[RegionReq] = []
        for t_id, part in self.parts.items():
            priv = self.privileges.get(t_id, Privilege.READ_ONLY)
            for req in part.region_reqs(priv):
                if t_id in self._streamed:
                    req.streamed = True
                reqs.append(req)
        return reqs

    # -- execution ---------------------------------------------------------------
    def execute(
        self, runtime: Optional[Runtime] = None, *, fresh_trial: bool = True
    ) -> ExecutionResult:
        """Run the kernel once; returns the output and this trial's metrics.

        ``fresh_trial`` resets staged copies to home placements so each
        trial pays the communication its algorithm inherently performs; the
        runtime's recorded mapping traces survive the reset, so iterations
        2..N replay the first iteration's staging decisions instead of
        re-deriving them (see :class:`repro.legion.runtime.Runtime`).
        """
        rt = self._ensure_runtime(runtime)
        if fresh_trial:
            rt.reset_residency()
        before = len(rt.metrics.steps)
        if self.kind == "spadd":
            self._execute_spadd(rt)
        else:
            self._execute_compute(rt)
        new_steps = rt.metrics.steps[before:]
        trial = ExecutionMetrics(steps=list(new_steps))
        return ExecutionResult(
            output=self.out,
            metrics=trial,
            simulated_seconds=trial.simulated_seconds(rt.network),
            plan=self.plan,
        )

    def _execute_compute(self, rt: Runtime) -> None:
        if self._leaf is None or self._leaf_backend != self.backend:
            # Write targets must be promoted before the leaf captures their
            # arrays: a leaf closure over a read-only mmap-backed region
            # (load_packed(..., mmap=True)) would crash on its first write,
            # and a later promotion could not reach the captured buffer.
            for t_id, part in self.parts.items():
                if self.privileges.get(t_id, Privilege.READ_ONLY) != Privilege.READ_ONLY:
                    part.tensor.ensure_writable()
            leaf = None
            if self.backend == "codegen":
                from .. import codegen as _codegen  # lazy: avoids import cycle

                leaf = _codegen.leaf_for(self)
            self._leaf = leaf if leaf is not None else _build_leaf(self)
            self._leaf_backend = self.backend
        if self._needs_zero():
            self.out.vals.fill(0.0)
        by_color = {p.color: p for p in self.pieces}
        rt.index_launch(
            f"{self.kind}:{self.strategy}",
            [p.color for p in self.pieces],
            lambda color: self._leaf(by_color[color]),
            self._reqs(),
            proc_map=self._proc_of_color,
        )

    def _needs_zero(self) -> bool:
        if self.privileges.get(id(self.out)) == Privilege.REDUCE:
            return True
        if self.kind == "generic" and not self.schedule.assignment.accumulate:
            # The generic engine scatter-*adds* piece results into the
            # output under every strategy (not just "nonzeros"), so a
            # repeated execute must start from zero or it doubles.
            return True
        return self.strategy == "nonzeros" and self.kind in (
            "spmv", "spmm", "spttv", "spmttkrp", "fused_sddmm_spmm",
        )

    # -- SpAdd: two-phase assembly (paper §V-B) --------------------------------
    def _execute_spadd(self, rt: Runtime) -> None:
        out = self.out
        nrows, ncols = out.shape
        # Operand array snapshot, taken BEFORE install_assembled_output
        # replaces the output's structure: an aliased operand (``A = B + A``,
        # or the ``accumulate`` sugar, which strips A from the operand list
        # but still reads it) shares that structure, and the pre-install
        # arrays are the values the statement consumes.  Re-reading through
        # the tensor after install would see the freshly-sized empty output
        # instead — the seed bug that crashed or dropped the aliased operand.
        operand_tensors = [o.tensor for o in self.operands]
        if self.schedule.assignment.accumulate and all(
            t is not out for t in operand_tensors
        ):
            operand_tensors.append(out)
        snaps = [
            (t.levels[1].pos.data, t.levels[1].crd.data, t.vals.data)
            for t in operand_tensors
        ]
        ops_meta = [(pos, crd) for pos, crd, _vals in snaps]
        counts = np.zeros(nrows, dtype=np.int64)
        # The launch requirements are frozen on first execute, while the
        # aliased operand's structure still matches its compile-time
        # partitions.  Rebuilding them per iteration would pair the stale
        # partitions with the freshly installed regions — new uids every
        # time, so the assembly chain could never replay its traces.
        if self._spadd_reqs is None:
            self._spadd_reqs = [
                req
                for t in operand_tensors
                for req in self.parts[id(t)].region_reqs(Privilege.READ_ONLY)
            ]
        read_reqs = self._spadd_reqs
        by_color = {p.color: p for p in self.pieces}

        def symbolic(color):
            p = by_color[color]
            r0, r1 = p.rows
            piece_counts, work = K.spadd3_symbolic(ops_meta, ncols, r0, r1)
            if r1 >= r0:
                counts[r0 : r1 + 1] = piece_counts
            return work

        rt.index_launch(
            "spadd:symbolic",
            [p.color for p in self.pieces],
            symbolic,
            read_reqs,
            proc_map=self._proc_of_color,
        )

        # Scan: counts travel to the launching node; scanned pos scatters back.
        scan = rt.metrics.new_step("spadd:scan")
        for p in self.pieces:
            r0, r1 = p.rows
            n = max(0, r1 - r0 + 1)
            if p.proc != 0 and n:
                scan.comm_events.append(
                    CommEvent(p.proc, 0, n * 8.0, rt.machine.same_node(p.proc, 0), "counts")
                )
                scan.comm_events.append(
                    CommEvent(0, p.proc, n * 16.0, rt.machine.same_node(0, p.proc), "pos")
                )
        out_pos, out_crd, out_vals = install_assembled_output(out, counts, ncols)

        def fill(color):
            p = by_color[color]
            r0, r1 = p.rows
            return K.spadd3_fill(snaps, ncols, out_pos, out_crd, out_vals, r0, r1)

        rt.index_launch(
            "spadd:fill",
            [p.color for p in self.pieces],
            fill,
            read_reqs,
            proc_map=self._proc_of_color,
        )


# --------------------------------------------------------------------------- #
# compilation
# --------------------------------------------------------------------------- #
def compile_kernel(
    schedule: Schedule,
    machine: Optional[Machine] = None,
    *,
    use_cache: bool = True,
    backend: Optional[str] = None,
) -> CompiledKernel:
    """Compile a scheduled statement for a machine (Fig. 9a).

    Memoized (compile-once / run-many): an equivalent schedule over the
    same tensors and an equivalent machine returns the previously compiled
    :class:`CompiledKernel` — including its partitions, leaf closure and
    attached runtime — so iterative workloads pay compilation once.  The
    cache key embeds every tensor's ``pattern_version``; structural
    mutations miss while value-only updates hit (see
    :mod:`repro.core.cache`).  Pass ``use_cache=False`` (or disable caches
    globally) to force a fresh compile.

    This entry point is a thin wrapper over a one-statement program (see
    :func:`repro.core.program.compile_program`); multi-statement callers
    and the high-level :mod:`repro.api` front end go through the program
    entry directly so shared operands' partitions are derived once.
    """
    from .program import compile_program

    return compile_program(
        [schedule], machine, use_cache=use_cache, backend=backend
    ).kernels[0]


def compile_statement(
    schedule: Schedule,
    machine: Optional[Machine] = None,
    *,
    use_cache: bool = True,
    backend: Optional[str] = None,
) -> CompiledKernel:
    """Compile one scheduled statement (the cache-aware single-statement
    engine behind :func:`compile_kernel` and
    :func:`repro.core.program.compile_program`).

    ``backend`` selects how leaves execute: ``"codegen"`` (the default,
    via :mod:`repro.codegen`) runs AOT-generated flat thunks where a
    lowering template exists and falls back to the interpreter elsewhere;
    ``"interp"`` forces the closure leaves.  The knob only retargets the
    kernel's leaf — partitions, launches and simulated metrics are
    identical either way.
    """
    from .. import codegen as _codegen  # lazy: avoids import cycle

    backend = _codegen.resolve_backend(backend)
    if machine is None:
        machine = Machine.cpu(1)
    if not use_cache:
        # The full seed path: bypass the partition memo too, so measured
        # uncached compiles really re-derive every coordinate-tree partition.
        with _cache.caches_disabled():
            ck = _compile_uncached(schedule, machine)
            ck.backend = backend
            return ck
    if _cache.caches_enabled():
        try:
            key = _cache.kernel_fingerprint(schedule, machine)
        except _cache.Unfingerprintable:
            key = None
        if key is not None:
            hit = _cache.lookup_kernel(key)
            # A kernel mutated after compilation (stream_tensor) must not be
            # handed to a caller that didn't ask for streaming — recompile
            # (the fresh kernel then replaces the mutated entry).
            if hit is not None and not hit._streamed:
                hit.backend = backend
                return hit
            ck = _compile_uncached(schedule, machine)
            ck.backend = backend
            # Compilation may adopt an input's pattern into the output
            # (bumping its version), so store under the post-compile
            # fingerprint — the one the next lookup will compute.
            post = _cache.kernel_fingerprint(schedule, machine)
            _cache.store_kernel(post, ck, schedule.assignment.tensors())
            return ck
    ck = _compile_uncached(schedule, machine)
    ck.backend = backend
    return ck


def _compile_uncached(schedule: Schedule, machine: Machine) -> CompiledKernel:
    asg = schedule.assignment
    sizes = var_sizes(asg)
    kc = classify(asg)
    plan = PartitioningPlan(f"{kc.kind}")

    dvars = list(schedule.distributed)
    nonzero_vars = [v for v in dvars if schedule.is_position_var(v)]
    if len(nonzero_vars) > 1:
        raise CompileError("at most one non-zero distributed variable is supported")

    if not dvars:
        return _compile_single(schedule, machine, kc, plan, sizes)
    if nonzero_vars:
        if len(dvars) != 1:
            raise CompileError("non-zero distribution cannot be combined with others")
        return _compile_nonzero(schedule, machine, kc, plan, sizes, dvars[0])
    return _compile_universe(schedule, machine, kc, plan, sizes, dvars)


def _unique_tensors(asg: Assignment) -> List[Tuple[Tensor, Access]]:
    seen, out = set(), []
    for acc in asg.accesses():
        if id(acc.tensor) not in seen:
            seen.add(id(acc.tensor))
            out.append((acc.tensor, acc))
    return out


def _prepare_output(kc: KernelClass, asg: Assignment) -> None:
    out = asg.lhs.tensor
    src = pattern_source(asg)
    if src is not None and kc.kind in ("sddmm", "spttv", "generic"):
        if not out.format.is_all_dense():
            adopt_pattern(out, src.tensor, keep_levels=len(asg.lhs.indices))
            plan_note = True  # structure copied; leaves write values only


def _compile_single(schedule, machine, kc, plan, sizes) -> CompiledKernel:
    """No distributed loops: one piece covering the whole iteration space."""
    asg = schedule.assignment
    _prepare_output(kc, asg)
    parts: Dict[int, TensorPartition] = {}
    privileges: Dict[int, Privilege] = {}
    for tensor, acc in _unique_tensors(asg):
        parts[id(tensor)] = replicated_partition(tensor, [0])
        privileges[id(tensor)] = (
            Privilege.READ_WRITE if tensor is asg.lhs.tensor else Privilege.READ_ONLY
        )
    n0 = asg.lhs.tensor.shape[0] if asg.lhs.tensor.shape else 1
    kind_rows = (0, n0 - 1)
    sparse_in = kc.roles.get("B")
    pos_bounds = None
    if sparse_in is not None:
        last = sparse_in.tensor.levels[-1]
        pos_bounds = (0, last.num_positions - 1)
    pieces = [Piece(color=0, proc=0, var_bounds={}, rows=kind_rows, pos=pos_bounds)]
    plan.emit("single", "// single-piece execution (no distributed loops)")
    return CompiledKernel(
        schedule, machine, kc.kind, "rows", pieces, parts, privileges, plan,
        kc.roles, kc.operands,
    )


def _compile_universe(schedule, machine, kc, plan, sizes, dvars) -> CompiledKernel:
    """createInitialUniversePartitions + partitionCoordinateTrees."""
    asg = schedule.assignment
    _prepare_output(kc, asg)

    infos = []  # (dvar, underlying var, pieces, chunk bounds)
    for d in dvars:
        unders = schedule.underlying_vars(d)
        if len(unders) != 1:
            raise CompileError(
                "universe distribution of fused variables is not supported; "
                "use a non-zero partition (tilde) for fused dimensions"
            )
        u = unders[0]
        p = schedule.pieces_of(d)
        infos.append((d, u, p, _chunk_bounds(sizes[u], p)))

    multi = len(infos) > 1
    if multi:
        grid = [p for (_, _, p, _) in infos]
        colors: List[Color] = [tuple(c) for c in np.ndindex(*grid)]
    else:
        colors = list(range(infos[0][2]))

    def bounds_of(color: Color, k: int) -> Bounds:
        comp = color[k] if multi else color
        return infos[k][3][comp]

    parts: Dict[int, TensorPartition] = {}
    privileges: Dict[int, Privilege] = {}
    primary_u = infos[0][1]
    primary_sparse: Optional[TensorPartition] = None
    for tensor, acc in _unique_tensors(asg):
        matched = {}
        for k, (d, u, p, chunks) in enumerate(infos):
            if u in acc.indices:
                matched[k] = acc.indices.index(u)
        is_out = tensor is asg.lhs.tensor
        if tensor.format.is_all_dense():
            mode_bounds = {
                c: {matched[k]: bounds_of(c, k) for k in matched} for c in colors
            }
            if not matched and not is_out:
                windows = _inferred_windows(asg, acc, parts, colors)
                if windows is not None:
                    mode_bounds = windows
                    plan.emit(
                        "image",
                        f"// {tensor.name} windows inferred from crd images",
                        tensor=tensor.name,
                    )
            parts[id(tensor)] = partition_dense_tensor(tensor, mode_bounds, plan)
        elif matched:
            sparse_ks = list(matched.keys())
            if len(sparse_ks) > 1:
                raise CompileError(
                    f"sparse tensor {tensor.name} partitioned by multiple "
                    "universe variables is not supported"
                )
            k = sparse_ks[0]
            mode = matched[k]
            level = tensor.format.level_of_mode(mode)
            bounds = {c: bounds_of(c, k) for c in colors}
            parts[id(tensor)] = partition_tensor(tensor, level, "universe", bounds, plan)
        else:
            parts[id(tensor)] = replicated_partition(tensor, colors)
            plan.emit("replicate", f"// {tensor.name} replicated onto all pieces",
                      tensor=tensor.name)
        if is_out:
            part = parts[id(tensor)]
            if part.replicated or part.is_output_aliased():
                privileges[id(tensor)] = Privilege.REDUCE
            else:
                privileges[id(tensor)] = Privilege.WRITE_DISCARD
        else:
            privileges[id(tensor)] = Privilege.READ_ONLY

    pieces = []
    for i, c in enumerate(colors):
        var_bounds = {infos[k][0]: bounds_of(c, k) for k in range(len(infos))}
        rows = bounds_of(c, 0)
        cols = bounds_of(c, 1) if multi else None
        pieces.append(
            Piece(color=c, proc=_linear(c, infos) % machine.size,
                  var_bounds=var_bounds, rows=rows, cols=cols)
        )
    plan.emit("launch", f"distributed for io in {{0 ... {len(colors)}}} {{ ... }}")
    # A multi-variable universe distribution is the 2-D (or N-D) grid
    # mapping — reported as its own strategy so callers (autotune, the
    # store manifest) can tell the tile shape apart from the 1-D row split.
    return CompiledKernel(
        schedule, machine, kc.kind, "grid" if multi else "rows", pieces,
        parts, privileges, plan, kc.roles, kc.operands,
    )


def _inferred_windows(
    asg: Assignment,
    acc: Access,
    parts: Dict[int, TensorPartition],
    colors: Sequence[Color],
) -> Optional[Dict[Color, Dict[int, Bounds]]]:
    """Infer per-piece windows of an unpartitioned dense operand.

    DISTAL's ``communicate`` infers *what data to communicate* (paper
    §II-C): a dense operand indexed by a variable that names a Compressed
    level of an already-partitioned sparse tensor only needs the coordinate
    range its piece's ``crd`` values actually touch — e.g. the halo window
    of the SpMV vector on a banded matrix.  Returns None when no indexing
    variable can be related to a partitioned compressed level.
    """
    windows: Dict[Color, Dict[int, Bounds]] = {c: {} for c in colors}
    found = False
    for mode, var in enumerate(acc.indices):
        for other in asg.accesses():
            part = parts.get(id(other.tensor))
            if part is None or other.tensor.format.is_all_dense() or part.replicated:
                continue
            if var not in other.indices:
                continue
            level = other.tensor.format.level_of_mode(other.indices.index(var))
            lvl = other.tensor.levels[level]
            if lvl.is_dense or part.level_positions[level] is None:
                continue
            crd = lvl.crd.data
            for c in colors:
                subset = part.level_positions[level][c]
                if subset.empty:
                    windows[c][mode] = (0, -1)
                    continue
                vals = crd[subset.indices()]
                windows[c][mode] = (int(vals.min()), int(vals.max()))
            found = True
            break
    return windows if found else None


def _linear(color: Color, infos) -> int:
    if not isinstance(color, tuple):
        return int(color)
    idx = 0
    for c, (_, _, p, _) in zip(color, infos):
        idx = idx * p + int(c)
    return idx


def _compile_nonzero(schedule, machine, kc, plan, sizes, dvar) -> CompiledKernel:
    """createInitialNonZeroPartition + partitionNonZeroCoordinateTree +
    partitionRemainingCoordinateTrees (Fig. 9a, else branch)."""
    asg = schedule.assignment
    _prepare_output(kc, asg)
    pos_rel = schedule.pos_relation_of(dvar)
    split_acc = pos_rel.access
    split_tensor = split_acc.tensor
    unders = schedule.underlying_vars(dvar)
    split_level = max(
        split_tensor.format.level_of_mode(split_acc.indices.index(u))
        for u in unders
        if u in split_acc.indices
    )
    npieces = schedule.pieces_of(dvar)
    npos = split_tensor.levels[split_level].num_positions
    chunks = _chunk_bounds(npos, npieces)
    colors = list(range(npieces))
    bounds = {c: chunks[c] for c in colors}

    parts: Dict[int, TensorPartition] = {}
    privileges: Dict[int, Privilege] = {}
    split_part = partition_tensor(split_tensor, split_level, "nonzero", bounds, plan)
    parts[id(split_tensor)] = split_part
    top_bounds = split_part.top_level_bounds()

    # Which underlying variable names the split tensor's root level?
    top_u = None
    for u in unders:
        if u in split_acc.indices and split_tensor.format.level_of_mode(
            split_acc.indices.index(u)
        ) == 0:
            top_u = u

    for tensor, acc in _unique_tensors(asg):
        if id(tensor) in parts:
            continue
        is_out = tensor is asg.lhs.tensor
        shares_pattern = (
            is_out
            and not tensor.format.is_all_dense()
            and tensor.levels
            and tensor.levels[-1] is split_tensor.levels[len(tensor.levels) - 1]
        )
        if shares_pattern:
            lvl = len(tensor.levels) - 1
            src = split_part.level_positions[lvl]
            parts[id(tensor)] = TensorPartition(
                tensor,
                level_positions=list(split_part.level_positions[: lvl + 1]),
                level_pos_parts=list(split_part.level_pos_parts[: lvl + 1]),
                vals_part=Partition(tensor.vals.ispace, dict(src.subsets),
                                    name=f"{tensor.name}ValsPart"),
                colors=colors,
            )
            plan.emit("copy", f"// {tensor.name} adopts {split_tensor.name}'s partition",
                      tensor=tensor.name)
        elif top_u is not None and top_u in acc.indices:
            mode = acc.indices.index(top_u)
            if tensor.format.is_all_dense():
                mode_bounds = {c: {mode: top_bounds[c]} for c in colors}
                parts[id(tensor)] = partition_dense_tensor(tensor, mode_bounds, plan)
            else:
                level = tensor.format.level_of_mode(mode)
                parts[id(tensor)] = partition_tensor(
                    tensor, level, "universe", top_bounds, plan
                )
        elif tensor.format.is_all_dense() and not is_out:
            windows = _inferred_windows(asg, acc, parts, colors)
            if windows is not None:
                plan.emit("image", f"// {tensor.name} windows inferred from crd images",
                          tensor=tensor.name)
                parts[id(tensor)] = partition_dense_tensor(tensor, windows, plan)
            else:
                parts[id(tensor)] = replicated_partition(tensor, colors)
                plan.emit("replicate", f"// {tensor.name} replicated onto all pieces",
                          tensor=tensor.name)
        else:
            parts[id(tensor)] = replicated_partition(tensor, colors)
            plan.emit("replicate", f"// {tensor.name} replicated onto all pieces",
                      tensor=tensor.name)
        if is_out:
            part = parts[id(tensor)]
            if part.replicated or part.is_output_aliased():
                privileges[id(tensor)] = Privilege.REDUCE
            else:
                privileges[id(tensor)] = Privilege.WRITE_DISCARD
        else:
            privileges[id(tensor)] = Privilege.READ_ONLY

    pieces = []
    for c in colors:
        pieces.append(
            Piece(
                color=c,
                proc=c % machine.size,
                var_bounds={dvar: bounds[c]},
                rows=top_bounds[c],
                pos=bounds[c],
            )
        )
    plan.emit("launch", f"distributed for fo in {{0 ... {npieces}}} {{ ... }}")
    return CompiledKernel(
        schedule, machine, kc.kind, "nonzeros", pieces, parts, privileges, plan,
        kc.roles, kc.operands,
    )


# --------------------------------------------------------------------------- #
# leaf selection
# --------------------------------------------------------------------------- #
def _build_leaf(ck: CompiledKernel) -> Callable[[Piece], Work]:
    kind, strategy = ck.kind, ck.strategy
    asg = ck.schedule.assignment
    out = ck.out
    if kind == "spmv":
        B = ck.roles["B"].tensor
        c = ck.roles["c"].tensor.dense_array()
        pos, crd, vals = B.csr_arrays()
        o = out.vals.data
        if strategy == "nonzeros":
            return lambda p: K.spmv_nonzeros(pos, crd, vals, c, o, p.pos[0], p.pos[1])
        return lambda p: K.spmv_rows(pos, crd, vals, c, o, p.rows[0], p.rows[1])
    if kind == "spmm":
        B = ck.roles["B"].tensor
        C = ck.roles["C"].tensor.dense_array()
        pos, crd, vals = B.csr_arrays()
        o = out.dense_array()
        if strategy == "nonzeros":
            return lambda p: K.spmm_nonzeros(pos, crd, vals, C, o, p.pos[0], p.pos[1])

        def spmm_piece(p: Piece) -> Work:
            if p.cols is not None:
                c0, c1 = p.cols
                return K.spmm_rows(
                    pos, crd, vals, C[:, c0 : c1 + 1], o[:, c0 : c1 + 1],
                    p.rows[0], p.rows[1],
                )
            return K.spmm_rows(pos, crd, vals, C, o, p.rows[0], p.rows[1])

        return spmm_piece
    if kind == "sddmm":
        B = ck.roles["B"].tensor
        C = ck.roles["C"].tensor.dense_array()
        D = ck.roles["D"].tensor.dense_array()
        pos, crd, vals = B.csr_arrays()
        ov = out.vals.data
        if strategy == "nonzeros":
            return lambda p: K.sddmm_nonzeros(pos, crd, vals, C, D, ov, p.pos[0], p.pos[1])
        return lambda p: K.sddmm_rows(pos, crd, vals, C, D, ov, p.rows[0], p.rows[1])
    if kind == "fused_sddmm_spmm":
        # Synthesized by the pass pipeline (repro.core.passes): the SDDMM
        # product is computed into a scratch values array private to the
        # leaf and consumed immediately by the SpMM phase — it is never a
        # region, never placed, never communicated.
        B = ck.roles["B"].tensor
        C = ck.roles["C"].tensor.dense_array()
        D = ck.roles["D"].tensor.dense_array()
        F = ck.roles["F"].tensor.dense_array()
        pos, crd, vals = B.csr_arrays()
        o = out.dense_array()
        scratch = np.zeros_like(vals)
        if strategy == "nonzeros":
            def fused_nonzeros(p: Piece) -> Work:
                w1 = K.sddmm_nonzeros(pos, crd, vals, C, D, scratch, p.pos[0], p.pos[1])
                w2 = K.spmm_nonzeros(pos, crd, scratch, F, o, p.pos[0], p.pos[1])
                return w1 + w2

            return fused_nonzeros

        def fused_rows(p: Piece) -> Work:
            if p.rows[1] < p.rows[0]:
                return Work.zero()
            w1 = K.sddmm_rows(pos, crd, vals, C, D, scratch, p.rows[0], p.rows[1])
            w2 = K.spmm_rows(pos, crd, scratch, F, o, p.rows[0], p.rows[1])
            return w1 + w2

        return fused_rows
    if kind == "spttv":
        return _build_spttv_leaf(ck)
    if kind == "spmttkrp":
        return _build_spmttkrp_leaf(ck)
    if kind == "generic":
        return _build_generic_leaf(ck)
    raise CompileError(f"no leaf kernel for {kind}/{strategy}")


def _fiber_arrays(B: Tensor):
    """(pos2, crd2, fiber-range-of-rows fn) for CSF3 or DDC 3-tensors."""
    lvl2 = B.levels[2]
    if not isinstance(lvl2, CompressedLevel):
        raise CompileError("3-tensor kernels need a compressed last level")
    pos2, crd2 = lvl2.pos.data, lvl2.crd.data
    lvl1 = B.levels[1]
    if isinstance(lvl1, CompressedLevel):
        pos1 = lvl1.pos.data

        def fibers_of_rows(r0: int, r1: int) -> Bounds:
            return int(pos1[r0, 0]), int(pos1[r1, 1])

    else:
        n1 = lvl1.size

        def fibers_of_rows(r0: int, r1: int) -> Bounds:
            return r0 * n1, (r1 + 1) * n1 - 1

    return pos2, crd2, fibers_of_rows


def _build_spttv_leaf(ck: CompiledKernel) -> Callable[[Piece], Work]:
    B = ck.roles["B"].tensor
    c = ck.roles["c"].tensor.dense_array()
    pos2, crd2, fibers_of_rows = _fiber_arrays(B)
    vals = B.vals.data
    ov = ck.out.vals.data.reshape(-1)
    if ck.strategy == "nonzeros":
        return lambda p: K.spttv_nonzeros(pos2, crd2, vals, c, ov, p.pos[0], p.pos[1])

    def rows_piece(p: Piece) -> Work:
        if p.rows[1] < p.rows[0]:
            return Work.zero()
        f0, f1 = fibers_of_rows(p.rows[0], p.rows[1])
        return K.spttv_fibers(pos2, crd2, vals, c, ov, f0, f1)

    return rows_piece


def _build_spmttkrp_leaf(ck: CompiledKernel) -> Callable[[Piece], Work]:
    B = ck.roles["B"].tensor
    C = ck.roles["C"].tensor.dense_array()
    D = ck.roles["D"].tensor.dense_array()
    pos2, crd2, fibers_of_rows = _fiber_arrays(B)
    vals = B.vals.data
    o = ck.out.dense_array()
    lvl1 = B.levels[1]
    csf = isinstance(lvl1, CompressedLevel)
    if csf:
        pos1, crd1 = lvl1.pos.data, lvl1.crd.data

    def run(p0: int, p1: int, accumulate: bool) -> Work:
        if csf:
            return K.spmttkrp_csf(
                pos1, crd1, pos2, crd2, vals, C, D, o, p0, p1, accumulate=accumulate
            )
        return K.spmttkrp_ddc(
            lvl1.size, pos2, crd2, vals, C, D, o, p0, p1, accumulate=accumulate
        )

    if ck.strategy == "nonzeros":
        return lambda p: run(p.pos[0], p.pos[1], True)

    def rows_piece(p: Piece) -> Work:
        if p.rows[1] < p.rows[0]:
            return Work.zero()
        f0, f1 = fibers_of_rows(p.rows[0], p.rows[1])
        if f1 < f0:
            return Work.zero()
        return run(int(pos2[f0, 0]), int(pos2[f1, 1]), False)

    return rows_piece


def _build_generic_leaf(ck: CompiledKernel) -> Callable[[Piece], Work]:
    """Fallback: the generic COO engine per piece (paper: full generality)."""
    asg = ck.schedule.assignment
    sizes = var_sizes(asg)
    out = ck.out
    if not out.format.is_all_dense():
        src = pattern_source(asg)
        if src is None:
            raise CompileError(
                "generic distributed lowering requires a dense output or a "
                "pattern-preserving statement"
            )
    dvars = ck.schedule.distributed
    if dvars and ck.strategy != "rows":
        raise CompileError(
            "the generic engine only supports coordinate (universe) "
            "distribution; schedule a specialized kernel for non-zero splits"
        )
    restrict_var = None
    if dvars and ck.strategy == "rows":
        unders = ck.schedule.underlying_vars(dvars[0])
        restrict_var = unders[0]

    dense_out = out.format.is_all_dense()
    o = out.dense_array() if dense_out else None

    def piece(p: Piece) -> Work:
        restrict = {restrict_var: p.rows} if restrict_var is not None else None
        result, work = K.evaluate_generic(asg, sizes, restrict)
        if dense_out:
            if result.nnz:
                np.add.at(o, tuple(result.coords), result.vals)
        else:
            coords, _ = out.to_coo()
            # pattern-preserving sparse output: scatter into stored positions
            if K.fits_int64(out.shape):
                key_stored = np.zeros(out.nnz, dtype=np.int64)
                key_new = np.zeros(result.nnz, dtype=np.int64)
                for d in range(out.order):
                    key_stored = key_stored * out.shape[d] + coords[d]
                    key_new = key_new * out.shape[d] + result.coords[d]
            else:
                # Huge dimension products overflow the flattened key; rank
                # stored and new coordinates jointly instead.
                both = np.concatenate(
                    [np.stack(coords), np.asarray(result.coords)], axis=1
                )
                ranks = K.lex_ranks(both)
                key_stored, key_new = ranks[: out.nnz], ranks[out.nnz :]
            idx = np.searchsorted(key_stored, key_new)
            out.vals.data.reshape(-1)[idx] += result.vals
        return work

    return piece
