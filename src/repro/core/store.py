"""Persistent artifact store: packed tensors + their amortization state.

SpDISTAL's compile-once / run-many model (see :mod:`repro.core.cache` and
:mod:`repro.legion.runtime`) amortizes partitioning, compilation and
mapping analysis across executions — but only within one process.  The
paper's workflow is *pack once, run many kernels over it across sessions*:
the packed tensor is the expensive, reusable artifact, the way TACO-family
compilers persist format-specialized artifacts (Chou et al.).  This module
extends the amortization across processes by serializing, next to the
packed tensor:

* the **companion tensors** of every cached kernel over it (cache keys
  embed object identities, so the whole statement's tensors travel
  together),
* the **kernel-cache entries** (the compiled kernels themselves, minus
  their leaf closures, which rebuild lazily),
* the **partition-memo entries** (coordinate-tree partitions + recorded
  plan statements), and
* the **runtimes** those kernels executed on, with their recorded mapping
  traces, home placements and symbolic residency state.

An artifact is a directory with two files:

``payload.pkl``
    One pickle of the object graph above.  Shared structure (a ``crd``
    region adopted by two tensors, a runtime shared by two kernels) is
    preserved exactly.

``manifest.json``
    Human-readable metadata keyed on the *stable* schedule fingerprint
    (the canonical fingerprint of :func:`repro.core.cache.kernel_fingerprint`
    minus the process-local tensor ids, hashed), each tensor's
    ``pattern_version``, and the structural machine signature.  Read this
    to inspect an artifact without unpickling it; :func:`load_packed`
    validates it against the payload.

``load_packed`` re-seeds the process-local caches under the *new* object
identities (fingerprints are recomputed over the unpickled tensors, trace
keys are re-anchored on the unpickled partitions), so a fresh process that
rebuilds the same schedule over the loaded tensors hits the kernel cache
on its first compile and replays mapping traces on its first execute —
steady-state cost from execution one, with bit-identical simulated
metrics.  See ``docs/caching.md`` for the contract and
``benchmarks/bench_warmstart.py`` for the measurement.

Only load artifacts you wrote yourself: this is ``pickle`` underneath,
with all of pickle's trust assumptions.
"""
from __future__ import annotations

import hashlib
import json
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..errors import StoreError
from ..legion.index_space import IndexSpace
from ..legion.region import Region
from ..taco.tensor import CompressedLevel, Tensor
from . import cache as _cache

__all__ = [
    "STORE_FORMAT_VERSION",
    "PackedArtifact",
    "save_packed",
    "load_packed",
    "read_manifest",
    "stable_fingerprint",
    "machine_signature",
]

STORE_FORMAT_VERSION = 1
PAYLOAD_NAME = "payload.pkl"
MANIFEST_NAME = "manifest.json"


def machine_signature(machine) -> Tuple:
    """The structural (process-independent) signature of a machine."""
    return _cache._machine_signature(machine)


def stable_fingerprint(schedule, machine) -> str:
    """A process-independent digest of a kernel cache key.

    :func:`repro.core.cache.kernel_fingerprint` embeds ``id(tensor)``
    values, which are meaningless across processes; this drops them and
    hashes the canonical schedule signature, the tensor states
    (pattern versions, shapes, formats, dtypes) and the machine signature.
    Two processes compiling the same statement over equal-state tensors
    agree on it — it is what the manifest keys kernel entries on.
    """
    sched_sig, _ids, tensor_states, msig = _cache.kernel_fingerprint(
        schedule, machine
    )
    blob = repr((sched_sig, tensor_states, msig)).encode()
    return hashlib.sha256(blob).hexdigest()


@dataclass
class PackedArtifact:
    """Everything :func:`load_packed` restored from one artifact."""

    tensor: Tensor
    companions: Dict[str, Tensor] = field(default_factory=dict)
    kernels: List[Any] = field(default_factory=list)
    runtimes: List[Any] = field(default_factory=list)
    manifest: Dict[str, Any] = field(default_factory=dict)

    def runtime(self):
        """The restored runtime (the first, which is the common case of a
        single shared runtime), or None if none was stored."""
        return self.runtimes[0] if self.runtimes else None

    def all_tensors(self) -> List[Tensor]:
        return [self.tensor] + list(self.companions.values())


# --------------------------------------------------------------------------- #
# save
# --------------------------------------------------------------------------- #
def _tensor_regions(tensor: Tensor):
    for lvl in tensor.levels:
        if isinstance(lvl, CompressedLevel):
            yield lvl.pos
            yield lvl.crd
    if tensor.vals is not None:
        yield tensor.vals


def _tensor_meta(tensor: Tensor) -> Dict[str, Any]:
    return {
        "name": tensor.name,
        "shape": list(tensor.shape),
        "format": tensor.format.name,
        "dtype": tensor.dtype.str,
        "pattern_version": tensor.pattern_version,
        "assembly_version": tensor.assembly_version,
        "nnz": int(tensor.nnz),
        "nbytes": int(tensor.nbytes),
    }


def save_packed(
    path: Union[str, Path],
    tensor: Tensor,
    *,
    include_caches: bool = True,
    runtime=None,
) -> Path:
    """Persist ``tensor`` (and, by default, its amortization state) to the
    artifact directory ``path``.

    With ``include_caches`` every live kernel-cache entry whose statement
    involves ``tensor`` is exported, together with the companion tensors it
    pins, the partition-memo entries of all those tensors, and the
    runtimes the kernels executed on (traces included).  Pass an explicit
    ``runtime`` to persist one that is not attached to any cached kernel.
    Returns the artifact directory path.
    """
    path = Path(path)
    if path.exists() and not path.is_dir():
        raise StoreError(f"{path}: artifact path exists and is not a directory")
    path.mkdir(parents=True, exist_ok=True)

    kernel_entries: List[Tuple[Any, Tuple]] = []  # (kernel, pinned tensors)
    if include_caches:
        for _key, kernel, tensors in _cache.iter_kernel_entries():
            if any(t is tensor for t in tensors):
                kernel_entries.append((kernel, tensors))

    tensor_set: List[Tensor] = [tensor]
    for _kernel, tensors in kernel_entries:
        for t in tensors:
            if not any(t is s for s in tensor_set):
                tensor_set.append(t)

    partition_entries: List[Tuple[Tensor, Tuple, Any, Tuple]] = []
    if include_caches:
        for key, part, stmts in _cache.iter_partition_entries():
            owner = part.tensor
            if any(owner is t for t in tensor_set):
                # key[0] is id(owner); store the tail and re-key on load.
                partition_entries.append((owner, key[1:], part, stmts))

    runtimes: List[Any] = []
    for kernel, _tensors in kernel_entries:
        rt = getattr(kernel, "_runtime", None)
        if rt is not None and not any(rt is r for r in runtimes):
            runtimes.append(rt)
    if runtime is not None and not any(runtime is r for r in runtimes):
        runtimes.append(runtime)

    # Advance-counter watermark: every region uid the payload can mention
    # must be covered, or a fresh region in the loading process could
    # collide with a pickled one.  Beyond the tensors' own regions, copy
    # traces can reference regions that were only ever staged via
    # copy_subset (and later dropped from residency), so trace keys and
    # residency snapshots are scanned too.
    max_region_uid = -1
    max_ispace_uid = -1
    for t in tensor_set:
        for region in _tensor_regions(t):
            max_region_uid = max(max_region_uid, region.uid)
            max_ispace_uid = max(max_ispace_uid, region.ispace.uid)
    for rt in runtimes:
        for uid_map in (rt._home, rt._residency):
            for uid in uid_map:
                max_region_uid = max(max_region_uid, uid)
        for key, trace in rt._traces.items():
            for reqsig in key[3]:
                max_region_uid = max(max_region_uid, reqsig[0])
            for uid in trace.residency_after:
                max_region_uid = max(max_region_uid, uid)
        for key, trace in rt._copy_traces.items():
            max_region_uid = max(max_region_uid, key[1])
            for uid in trace.residency_after:
                max_region_uid = max(max_region_uid, uid)
            if trace.pinned:
                region = trace.pinned[0]
                max_region_uid = max(max_region_uid, region.uid)
                max_ispace_uid = max(max_ispace_uid, region.ispace.uid)

    payload = {
        "format_version": STORE_FORMAT_VERSION,
        "tensor": tensor,
        "companions": [t for t in tensor_set if t is not tensor],
        "kernels": kernel_entries,
        "partitions": partition_entries,
        "runtimes": runtimes,
        "max_region_uid": max_region_uid,
        "max_ispace_uid": max_ispace_uid,
    }
    payload_path = path / PAYLOAD_NAME
    with open(payload_path, "wb") as f:
        pickle.dump(payload, f, protocol=pickle.HIGHEST_PROTOCOL)

    kernels_meta = []
    for kernel, tensors in kernel_entries:
        try:
            fp = stable_fingerprint(kernel.schedule, kernel.machine)
        except _cache.Unfingerprintable:  # pragma: no cover - cached => fingerprintable
            fp = None
        kernels_meta.append(
            {
                "fingerprint": fp,
                "kind": kernel.kind,
                "strategy": kernel.strategy,
                "pieces": len(kernel.pieces),
                "machine": list(machine_signature(kernel.machine)),
                "tensors": [t.name for t in tensors],
            }
        )
    manifest = {
        "format_version": STORE_FORMAT_VERSION,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "payload": PAYLOAD_NAME,
        "payload_bytes": payload_path.stat().st_size,
        "tensor": _tensor_meta(tensor),
        "companions": [_tensor_meta(t) for t in tensor_set if t is not tensor],
        "kernels": kernels_meta,
        "partition_entries": len(partition_entries),
        "runtimes": len(runtimes),
        "trace_count": sum(
            len(rt._traces) + len(rt._copy_traces) for rt in runtimes
        ),
    }
    (path / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2))
    return path


# --------------------------------------------------------------------------- #
# load
# --------------------------------------------------------------------------- #
def read_manifest(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and validate an artifact's JSON manifest (no unpickling)."""
    path = Path(path)
    manifest_path = path / MANIFEST_NAME if path.is_dir() else path
    if not manifest_path.exists():
        raise StoreError(f"{path}: no {MANIFEST_NAME} found")
    try:
        manifest = json.loads(manifest_path.read_text())
    except ValueError as e:
        raise StoreError(f"{manifest_path}: corrupt manifest: {e}") from e
    version = manifest.get("format_version")
    if version != STORE_FORMAT_VERSION:
        raise StoreError(
            f"{manifest_path}: unsupported store format version {version!r} "
            f"(this build reads version {STORE_FORMAT_VERSION})"
        )
    return manifest


def load_packed(
    path: Union[str, Path], *, restore_caches: bool = True
) -> PackedArtifact:
    """Load an artifact directory written by :func:`save_packed`.

    Re-seeds the kernel cache and partition memo under the loaded objects'
    identities (skipped when ``restore_caches`` is false or caching is
    globally disabled), advances the region/index-space uid counters past
    the loaded uids, and returns a :class:`PackedArtifact`.  A fresh
    process that rebuilds the saved schedule over the returned tensors
    compiles to a cache hit and replays the stored mapping traces on its
    first execute.
    """
    path = Path(path)
    manifest = read_manifest(path)
    payload_path = path / manifest.get("payload", PAYLOAD_NAME)
    if not payload_path.exists():
        raise StoreError(f"{payload_path}: manifest names a missing payload")
    try:
        with open(payload_path, "rb") as f:
            payload = pickle.load(f)
    except Exception as e:
        # pickle surfaces corruption as UnpicklingError, EOFError,
        # AttributeError/ImportError (missing classes), ... — fold them all
        # into the module's documented error type.
        raise StoreError(f"{payload_path}: corrupt payload: {e}") from e
    if not isinstance(payload, dict):
        raise StoreError(f"{payload_path}: payload is not an artifact dict")
    if payload.get("format_version") != manifest["format_version"]:
        raise StoreError(
            f"{path}: payload format version {payload.get('format_version')!r} "
            f"does not match manifest {manifest['format_version']!r}"
        )

    tensor: Tensor = payload["tensor"]
    declared = manifest.get("tensor", {})
    for counter in ("pattern_version", "assembly_version"):
        if declared.get(counter) != getattr(tensor, counter):
            raise StoreError(
                f"{path}: manifest {counter} {declared.get(counter)!r} does "
                f"not match payload {getattr(tensor, counter)!r} "
                "(stale manifest next to a rewritten payload?)"
            )

    Region.advance_uid_counter(payload.get("max_region_uid", -1))
    IndexSpace.advance_uid_counter(payload.get("max_ispace_uid", -1))

    kernels = []
    if restore_caches and _cache.caches_enabled():
        for owner, key_tail, part, stmts in payload.get("partitions", ()):
            _cache.store_partition((id(owner),) + tuple(key_tail), part, stmts)
        for kernel, tensors in payload.get("kernels", ()):
            try:
                key = _cache.kernel_fingerprint(kernel.schedule, kernel.machine)
            except _cache.Unfingerprintable:  # pragma: no cover
                continue
            _cache.store_kernel(key, kernel, tensors)
            kernels.append(kernel)
    else:
        kernels = [kernel for kernel, _ in payload.get("kernels", ())]

    return PackedArtifact(
        tensor=tensor,
        companions={t.name: t for t in payload.get("companions", ())},
        kernels=kernels,
        runtimes=list(payload.get("runtimes", ())),
        manifest=manifest,
    )
