"""Persistent artifact store: packed tensors + their amortization state.

SpDISTAL's compile-once / run-many model (see :mod:`repro.core.cache` and
:mod:`repro.legion.runtime`) amortizes partitioning, compilation and
mapping analysis across executions — but only within one process.  The
paper's workflow is *pack once, run many kernels over it across sessions*:
the packed tensor is the expensive, reusable artifact, the way TACO-family
compilers persist format-specialized artifacts (Chou et al.).  This module
extends the amortization across processes by serializing, next to the
packed tensor:

* the **companion tensors** of every cached kernel over it (cache keys
  embed object identities, so the whole statement's tensors travel
  together),
* the **kernel-cache entries** (the compiled kernels themselves, minus
  their leaf closures, which rebuild lazily),
* the **partition-memo entries** (coordinate-tree partitions + recorded
  plan statements), and
* the **runtimes** those kernels executed on, with their recorded mapping
  traces, home placements and symbolic residency state.

An artifact is a directory:

``payload.pkl``
    One pickle of the object graph above.  Shared structure (a ``crd``
    region adopted by two tensors, a runtime shared by two kernels) is
    preserved exactly.  Tensor level arrays above ``sidecar_threshold``
    bytes are *not* inside the pickle — they are replaced by references
    into ``regions/``.

``regions/r<uid>.npy``
    Raw NumPy sidecars holding the big level arrays (``pos``/``crd``/
    ``vals``).  :func:`load_packed` loads them eagerly by default, or as
    read-only memory maps with ``mmap=True`` (``np.load(mmap_mode="r")``)
    so artifacts larger than RAM warm-start lazily; the first mutation
    promotes a mapped region to a private copy and bumps the owning
    tensors' ``pattern_version`` (see :class:`repro.legion.region.Region`).

``manifest.json``
    Human-readable metadata keyed on the *stable* schedule fingerprint
    (the canonical fingerprint of :func:`repro.core.cache.kernel_fingerprint`
    minus the process-local tensor ids, hashed), each tensor's
    ``pattern_version``, and the structural machine signature — plus the
    SHA-256 of the payload and of every sidecar, which is what the
    content-addressed index (:mod:`repro.core.store_index`) dedups on.
    Read this to inspect an artifact without unpickling it;
    :func:`load_packed` validates it against the payload.

``load_packed`` re-seeds the process-local caches under the *new* object
identities (fingerprints are recomputed over the unpickled tensors, trace
keys are re-anchored on the unpickled partitions), so a fresh process that
rebuilds the same schedule over the loaded tensors hits the kernel cache
on its first compile and replays mapping traces on its first execute —
steady-state cost from execution one, with bit-identical simulated
metrics.  See ``docs/caching.md`` for the contract and
``benchmarks/bench_warmstart.py`` for the measurement.

Only load artifacts you wrote yourself: this is ``pickle`` underneath,
with all of pickle's trust assumptions.
"""
from __future__ import annotations

import hashlib
import json
import pickle
import time

import numpy as np
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..errors import SanitizerError, StoreError, StoreFormatError
from ..legion.index_space import IndexSpace
from ..legion.region import Region
from ..legion.runtime import Privilege
from ..taco.tensor import CompressedLevel, Tensor
from . import cache as _cache

__all__ = [
    "STORE_FORMAT_VERSION",
    "PackedArtifact",
    "save_packed",
    "load_packed",
    "read_manifest",
    "stable_fingerprint",
    "machine_signature",
    "file_sha256",
]

STORE_FORMAT_VERSION = 2
PAYLOAD_NAME = "payload.pkl"
MANIFEST_NAME = "manifest.json"
REGIONS_DIR = "regions"
AOT_DIR = "aot"
#: Level arrays at or above this many bytes leave the pickle for ``.npy``
#: sidecars (mmap-able on load); smaller ones stay inline.
SIDECAR_THRESHOLD = 4096

#: Keys every manifest must carry, with their required types —
#: validated *before* any payload byte is unpickled.
_MANIFEST_SCHEMA = {
    "format_version": int,
    "payload": str,
    "payload_bytes": int,
    "tensor": dict,
    "companions": list,
    "kernels": list,
    "regions": list,
}


def file_sha256(path: Union[str, Path]) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as f:
        for chunk in iter(lambda: f.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


class _SidecarRef:
    """Pickle placeholder for a region array stored as a ``.npy`` sidecar."""

    __slots__ = ("file",)

    def __init__(self, file: str):
        self.file = file

    def __getstate__(self):
        return self.file

    def __setstate__(self, state):
        self.file = state


def machine_signature(machine) -> Tuple:
    """The structural (process-independent) signature of a machine."""
    return _cache._machine_signature(machine)


def stable_fingerprint(schedule, machine) -> str:
    """A process-independent digest of a kernel cache key.

    :func:`repro.core.cache.kernel_fingerprint` embeds ``id(tensor)``
    values, which are meaningless across processes; this drops them and
    hashes the canonical schedule signature, the tensor states
    (pattern versions, shapes, formats, dtypes) and the machine signature.
    Two processes compiling the same statement over equal-state tensors
    agree on it — it is what the manifest keys kernel entries on.
    """
    sched_sig, _ids, tensor_states, msig = _cache.kernel_fingerprint(
        schedule, machine
    )
    blob = repr((sched_sig, tensor_states, msig)).encode()
    return hashlib.sha256(blob).hexdigest()


@dataclass
class PackedArtifact:
    """Everything :func:`load_packed` restored from one artifact."""

    tensor: Tensor
    companions: Dict[str, Tensor] = field(default_factory=dict)
    kernels: List[Any] = field(default_factory=list)
    runtimes: List[Any] = field(default_factory=list)
    manifest: Dict[str, Any] = field(default_factory=dict)

    def runtime(self):
        """The restored runtime (the first, which is the common case of a
        single shared runtime), or None if none was stored."""
        return self.runtimes[0] if self.runtimes else None

    def all_tensors(self) -> List[Tensor]:
        return [self.tensor] + list(self.companions.values())

    def region_residency(self) -> Dict[str, int]:
        """Byte accounting of the loaded region data: ``mapped`` counts
        bytes still served lazily from read-only mmaps, ``resident`` counts
        bytes materialized in process RAM.  The sum is the artifact's total
        region footprint; with ``mmap=True`` only write-privileged (or
        explicitly promoted) tensors contribute to ``resident``."""
        mapped = resident = 0
        seen = set()
        for t in self.all_tensors():
            for region in t.regions():
                if id(region) in seen:
                    continue
                seen.add(id(region))
                if region.is_mapped:
                    mapped += region.data.nbytes
                else:
                    resident += region.data.nbytes
        return {"mapped": mapped, "resident": resident}


# --------------------------------------------------------------------------- #
# save
# --------------------------------------------------------------------------- #
def _tensor_regions(tensor: Tensor):
    return tensor.regions()


def _tensor_meta(tensor: Tensor) -> Dict[str, Any]:
    return {
        "name": tensor.name,
        "shape": list(tensor.shape),
        "format": tensor.format.name,
        "dtype": tensor.dtype.str,
        "pattern_version": tensor.pattern_version,
        "assembly_version": tensor.assembly_version,
        "nnz": int(tensor.nnz),
        "nbytes": int(tensor.nbytes),
    }


def save_packed(
    path: Union[str, Path],
    tensor: Tensor,
    *,
    include_caches: bool = True,
    runtime=None,
    sidecar_threshold: int = SIDECAR_THRESHOLD,
) -> Path:
    """Persist ``tensor`` (and, by default, its amortization state) to the
    artifact directory ``path``.

    With ``include_caches`` every live kernel-cache entry whose statement
    involves ``tensor`` is exported, together with the companion tensors it
    pins, the partition-memo entries of all those tensors, and the
    runtimes the kernels executed on (traces included).  Pass an explicit
    ``runtime`` to persist one that is not attached to any cached kernel.

    Level arrays at or above ``sidecar_threshold`` bytes are written as raw
    ``regions/r<uid>.npy`` sidecars instead of travelling inside the pickle
    (pass ``0`` to sidecar everything, a negative value to inline
    everything); ``load_packed(..., mmap=True)`` then maps them lazily.
    Returns the artifact directory path.
    """
    path = Path(path)
    if path.exists() and not path.is_dir():
        raise StoreError(f"{path}: artifact path exists and is not a directory")
    path.mkdir(parents=True, exist_ok=True)

    kernel_entries: List[Tuple[Any, Tuple]] = []  # (kernel, pinned tensors)
    if include_caches:
        for _key, kernel, tensors in _cache.iter_kernel_entries():
            if any(t is tensor for t in tensors):
                kernel_entries.append((kernel, tensors))

    tensor_set: List[Tensor] = [tensor]
    for _kernel, tensors in kernel_entries:
        for t in tensors:
            if not any(t is s for s in tensor_set):
                tensor_set.append(t)

    partition_entries: List[Tuple[Tensor, Tuple, Any, Tuple]] = []
    if include_caches:
        for key, part, stmts in _cache.iter_partition_entries():
            owner = part.tensor
            if any(owner is t for t in tensor_set):
                # key[0] is id(owner); store the tail and re-key on load.
                partition_entries.append((owner, key[1:], part, stmts))

    runtimes: List[Any] = []
    for kernel, _tensors in kernel_entries:
        rt = getattr(kernel, "_runtime", None)
        if rt is not None and not any(rt is r for r in runtimes):
            runtimes.append(rt)
    if runtime is not None and not any(runtime is r for r in runtimes):
        runtimes.append(runtime)

    # Advance-counter watermark: every region uid the payload can mention
    # must be covered, or a fresh region in the loading process could
    # collide with a pickled one.  Beyond the tensors' own regions, copy
    # traces can reference regions that were only ever staged via
    # copy_subset (and later dropped from residency), so trace keys and
    # residency snapshots are scanned too.
    max_region_uid = -1
    max_ispace_uid = -1
    for t in tensor_set:
        for region in _tensor_regions(t):
            max_region_uid = max(max_region_uid, region.uid)
            max_ispace_uid = max(max_ispace_uid, region.ispace.uid)
    for rt in runtimes:
        for uid_map in (rt._home, rt._residency):
            for uid in uid_map:
                max_region_uid = max(max_region_uid, uid)
        for key, trace in rt._traces.items():
            for reqsig in key[3]:
                max_region_uid = max(max_region_uid, reqsig[0])
            for uid in trace.residency_after:
                max_region_uid = max(max_region_uid, uid)
        for key, trace in rt._copy_traces.items():
            max_region_uid = max(max_region_uid, key[1])
            for uid in trace.residency_after:
                max_region_uid = max(max_region_uid, uid)
            if trace.pinned:
                region = trace.pinned[0]
                max_region_uid = max(max_region_uid, region.uid)
                max_ispace_uid = max(max_ispace_uid, region.ispace.uid)

    # Autotune decisions travel whole: keys are process-independent digests
    # (no tensor ids to re-anchor) and entries are a few hundred bytes, so
    # filtering by tensor would buy nothing and could strand a decision
    # whose statement family the loading process re-creates.
    decision_entries: List[Tuple[str, Dict[str, Any]]] = []
    if include_caches:
        decision_entries = list(_cache.iter_decision_entries())

    payload = {
        "format_version": STORE_FORMAT_VERSION,
        "tensor": tensor,
        "companions": [t for t in tensor_set if t is not tensor],
        "kernels": kernel_entries,
        "partitions": partition_entries,
        "decisions": decision_entries,
        "runtimes": runtimes,
        "max_region_uid": max_region_uid,
        "max_ispace_uid": max_ispace_uid,
    }

    # Sidecar extraction: big level arrays leave the pickle for raw .npy
    # files.  The arrays are swapped for references only for the duration
    # of the dump — the live tensors are untouched afterwards.
    sidecars: List[Tuple[Region, Any, str]] = []  # (region, array, file)
    regions_meta: List[Dict[str, Any]] = []
    if sidecar_threshold >= 0:
        seen = set()
        regions_dir = path / REGIONS_DIR
        for t in tensor_set:
            for region in _tensor_regions(t):
                if id(region) in seen:
                    continue
                seen.add(id(region))
                arr = region.data
                if arr.nbytes < sidecar_threshold:
                    continue
                regions_dir.mkdir(exist_ok=True)
                fname = f"{REGIONS_DIR}/r{region.uid}.npy"
                np.save(path / fname, np.asarray(arr))
                sidecars.append((region, arr, fname))
        for region, _arr, fname in sidecars:
            regions_meta.append(
                {
                    "file": fname,
                    "region": region.name,
                    "bytes": int((path / fname).stat().st_size),
                    "sha256": file_sha256(path / fname),
                }
            )

    payload_path = path / PAYLOAD_NAME
    try:
        for region, _arr, fname in sidecars:
            region.data = _SidecarRef(fname)
        with open(payload_path, "wb") as f:
            pickle.dump(payload, f, protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        for region, arr, _fname in sidecars:
            region.data = arr

    kernels_meta = []
    for kernel, tensors in kernel_entries:
        try:
            fp = stable_fingerprint(kernel.schedule, kernel.machine)
        except _cache.Unfingerprintable:  # pragma: no cover - cached => fingerprintable
            fp = None
        kernels_meta.append(
            {
                "fingerprint": fp,
                "kind": kernel.kind,
                "strategy": kernel.strategy,
                "pieces": len(kernel.pieces),
                "machine": list(machine_signature(kernel.machine)),
                "tensors": [t.name for t in tensors],
            }
        )
    # AOT codegen modules: persist the generated source of every saved
    # kernel whose fingerprint has a lowered module in the AOT cache, so a
    # fresh process exec-loads ready-to-run leaves with zero lowering work.
    aot_meta: List[Dict[str, Any]] = []
    if include_caches:
        seen_fps = set()
        for meta in kernels_meta:
            fp = meta["fingerprint"]
            if fp is None or fp in seen_fps:
                continue
            seen_fps.add(fp)
            entry = _cache.lookup_aot(fp)
            if entry is None or not getattr(entry, "source", None):
                continue
            aot_dir = path / AOT_DIR
            aot_dir.mkdir(exist_ok=True)
            fname = f"{AOT_DIR}/{fp[:32]}.py"
            (path / fname).write_text(entry.source)
            aot_meta.append(
                {
                    "file": fname,
                    "fingerprint": fp,
                    "kind": entry.kind,
                    "format": entry.fmt,
                    "strategy": entry.strategy,
                    "bytes": int((path / fname).stat().st_size),
                    "sha256": file_sha256(path / fname),
                }
            )
    payload_sha = file_sha256(payload_path)
    content = hashlib.sha256(payload_sha.encode())
    for meta in sorted(regions_meta, key=lambda m: m["file"]):
        content.update(meta["sha256"].encode())
    for meta in sorted(aot_meta, key=lambda m: m["file"]):
        content.update(meta["sha256"].encode())
    manifest = {
        "format_version": STORE_FORMAT_VERSION,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "payload": PAYLOAD_NAME,
        "payload_bytes": payload_path.stat().st_size,
        "payload_sha256": payload_sha,
        "content_hash": content.hexdigest(),
        "tensor": _tensor_meta(tensor),
        "companions": [_tensor_meta(t) for t in tensor_set if t is not tensor],
        "kernels": kernels_meta,
        "regions": regions_meta,
        "aot_modules": aot_meta,
        "partition_entries": len(partition_entries),
        "decision_entries": len(decision_entries),
        "runtimes": len(runtimes),
        "trace_count": sum(
            len(rt._traces) + len(rt._copy_traces) for rt in runtimes
        ),
    }
    (path / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2))
    return path


# --------------------------------------------------------------------------- #
# load
# --------------------------------------------------------------------------- #
def read_manifest(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and validate an artifact's JSON manifest (no unpickling).

    Validation happens *before* anything is unpickled: the format version
    must match and the required keys must be present with the right types,
    so truncated or foreign files fail with a typed
    :class:`~repro.errors.StoreFormatError` naming the path and the
    expected/found versions — never a raw ``KeyError``.
    """
    path = Path(path)
    manifest_path = path / MANIFEST_NAME if path.is_dir() else path
    if not manifest_path.exists():
        raise StoreError(f"{path}: no {MANIFEST_NAME} found")
    try:
        manifest = json.loads(manifest_path.read_text())
    except ValueError as e:
        raise StoreFormatError(manifest_path, f"corrupt manifest: {e}")
    if not isinstance(manifest, dict):
        raise StoreFormatError(manifest_path, "manifest is not a JSON object")
    version = manifest.get("format_version")
    if version != STORE_FORMAT_VERSION:
        raise StoreFormatError(
            manifest_path,
            "unsupported store format version",
            expected=STORE_FORMAT_VERSION,
            found=version,
        )
    missing = [
        key
        for key, typ in _MANIFEST_SCHEMA.items()
        if not isinstance(manifest.get(key), typ)
    ]
    if missing:
        raise StoreFormatError(
            manifest_path,
            f"manifest missing or mistyped required keys: {', '.join(missing)}",
        )
    for counter in ("pattern_version", "assembly_version"):
        if not isinstance(manifest["tensor"].get(counter), int):
            raise StoreFormatError(
                manifest_path, f"manifest tensor entry lacks {counter}"
            )
    return manifest


def _resolve_sidecars(path: Path, tensors: List[Tensor], mmap: bool) -> None:
    """Replace every :class:`_SidecarRef` left in the unpickled regions with
    its array — eagerly loaded, or a read-only memory map with ``mmap``.
    Shared regions resolve once (pickle preserved the sharing)."""
    for t in tensors:
        for region in _tensor_regions(t):
            ref = region.data
            if not isinstance(ref, _SidecarRef):
                continue
            sidecar = path / ref.file
            if not sidecar.exists():
                raise StoreError(
                    f"{path}: payload references a missing sidecar {ref.file}"
                )
            if mmap:
                region.data = np.load(sidecar, mmap_mode="r")
            else:
                region.data = np.load(sidecar)


def load_packed(
    path: Union[str, Path],
    *,
    restore_caches: bool = True,
    mmap: bool = False,
    writable: Tuple[str, ...] = (),
) -> PackedArtifact:
    """Load an artifact directory written by :func:`save_packed`.

    Re-seeds the kernel cache and partition memo under the loaded objects'
    identities (skipped when ``restore_caches`` is false or caching is
    globally disabled), advances the region/index-space uid counters past
    the loaded uids, and returns a :class:`PackedArtifact`.  A fresh
    process that rebuilds the saved schedule over the returned tensors
    compiles to a cache hit and replays the stored mapping traces on its
    first execute.

    With ``mmap`` the region sidecars are *not* read into RAM: each becomes
    a read-only ``np.load(mmap_mode="r")`` map, paged in lazily, with
    copy-on-write promotion (and a ``pattern_version`` bump) on first
    mutation.  Tensors that any stored kernel holds write privileges on,
    plus any named in ``writable``, are promoted immediately — *before* the
    caches are re-seeded — so the warm-start cache-hit contract survives
    the promotion bumps.  To mutate other tensors' data directly, name them
    in ``writable`` or call ``tensor.ensure_writable()`` (which costs the
    cached kernels over that tensor).
    """
    path = Path(path)
    manifest = read_manifest(path)
    payload_path = path / manifest["payload"]
    if not payload_path.exists():
        raise StoreError(f"{payload_path}: manifest names a missing payload")
    try:
        with open(payload_path, "rb") as f:
            payload = pickle.load(f)
    except Exception as e:
        # pickle surfaces corruption as UnpicklingError, EOFError,
        # AttributeError/ImportError (missing classes), ... — fold them all
        # into the module's documented error type.
        raise StoreError(f"{payload_path}: corrupt payload: {e}") from e
    if not isinstance(payload, dict):
        raise StoreError(f"{payload_path}: payload is not an artifact dict")
    if payload.get("format_version") != manifest["format_version"]:
        raise StoreFormatError(
            path,
            "payload format version does not match manifest",
            expected=manifest["format_version"],
            found=payload.get("format_version"),
        )
    for key in ("tensor", "companions", "kernels", "runtimes"):
        if key not in payload:
            raise StoreError(f"{payload_path}: payload lacks the {key!r} entry")

    tensor: Tensor = payload["tensor"]
    declared = manifest["tensor"]
    for counter in ("pattern_version", "assembly_version"):
        if declared.get(counter) != getattr(tensor, counter):
            raise StoreError(
                f"{path}: manifest {counter} {declared.get(counter)!r} does "
                f"not match payload {getattr(tensor, counter)!r} "
                "(stale manifest next to a rewritten payload?)"
            )

    all_tensors: List[Tensor] = [tensor] + list(payload.get("companions", ()))
    _resolve_sidecars(path, all_tensors, mmap)

    Region.advance_uid_counter(payload.get("max_region_uid", -1))
    IndexSpace.advance_uid_counter(payload.get("max_ispace_uid", -1))

    if mmap:
        # Promotion hooks: the first mutation of a mapped region bumps the
        # owning tensors' pattern_version, invalidating any cache entry
        # whose leaf captured the mapped buffer.
        for t in all_tensors:
            for region in _tensor_regions(t):
                if region.is_mapped:
                    region.add_promote_hook(t._bump_pattern_version)
        # Promote known write targets *before* re-seeding the caches, so
        # the re-seeded fingerprints already embed the bumped versions and
        # the first compile still hits.
        by_name = {t.name: t for t in all_tensors}
        for name in writable:
            if name not in by_name:
                raise StoreError(
                    f"{path}: writable names unknown tensor {name!r} "
                    f"(artifact holds {sorted(by_name)})"
                )
            by_name[name].ensure_writable()
        for kernel, tensors in payload.get("kernels", ()):
            for t in tensors:
                priv = kernel.privileges.get(id(t))
                if priv is not None and priv != Privilege.READ_ONLY:
                    t.ensure_writable()

    kernels = []
    if restore_caches and _cache.caches_enabled():
        # AOT generated modules re-seed first (keys are stable digests, no
        # re-anchoring): the first execute of a re-seeded kernel then binds
        # a ready-to-run generated leaf with zero lowering work.
        aot_modules = manifest.get("aot_modules", ())
        if aot_modules:
            from ..codegen import registry as _codegen_registry

            from ..analysis import sanitizer as _sanitizer

            for meta in aot_modules:
                src_path = path / meta["file"]
                if not src_path.exists():
                    raise StoreError(
                        f"{path}: manifest names a missing AOT module "
                        f"{meta['file']}"
                    )
                # Refuse tampered source before it reaches the exec-loading
                # registry: the manifest's per-module sha256 must match the
                # bytes on disk (REPRO_AOT_TRUST skips, like the sanitizer).
                declared = meta.get("sha256")
                if declared and not _sanitizer.aot_trusted():
                    actual = file_sha256(src_path)
                    if actual != declared:
                        raise SanitizerError(
                            src_path,
                            "AOT module content does not match its manifest "
                            f"sha256 (declared {declared[:12]}…, found "
                            f"{actual[:12]}… — tampered or stale artifact)",
                        )
                _codegen_registry.seed_from_store(
                    meta["fingerprint"], meta, src_path.read_text(),
                    origin=src_path,
                )
        for key, decision in payload.get("decisions", ()):
            _cache.store_decision(key, decision)
        for owner, key_tail, part, stmts in payload.get("partitions", ()):
            _cache.store_partition((id(owner),) + tuple(key_tail), part, stmts)
        for kernel, tensors in payload.get("kernels", ()):
            try:
                key = _cache.kernel_fingerprint(kernel.schedule, kernel.machine)
            except _cache.Unfingerprintable:  # pragma: no cover
                continue
            _cache.store_kernel(key, kernel, tensors)
            kernels.append(kernel)
    else:
        kernels = [kernel for kernel, _ in payload.get("kernels", ())]

    return PackedArtifact(
        tensor=tensor,
        companions={t.name: t for t in payload.get("companions", ())},
        kernels=kernels,
        runtimes=list(payload.get("runtimes", ())),
        manifest=manifest,
    )
