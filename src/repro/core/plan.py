"""Partitioning-plan IR: the "generated code" of the compiler.

The paper's code generation algorithm (Fig. 9a) emits IR fragments returned
by the level functions of Table I.  In this reproduction the level functions
*execute* the partitioning operations eagerly (against ``repro.legion``) and
simultaneously record the IR statement they would have emitted, so tests can
check the generated program against Table I / Fig. 9b while the resulting
partitions are immediately usable.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = ["PlanStmt", "PartitioningPlan"]


@dataclass(frozen=True)
class PlanStmt:
    """One emitted IR statement.

    ``op`` is the abstract operation (e.g. ``partitionByBounds``, ``image``,
    ``preimage``, ``copy``); ``text`` is the Fig. 9b-style pseudo-code line;
    ``tensor``/``level`` identify the level function invocation that emitted
    it.
    """

    op: str
    text: str
    tensor: str = ""
    level: int = -1


class PartitioningPlan:
    """An ordered list of emitted partitioning statements."""

    def __init__(self, name: str = "plan"):
        self.name = name
        self.stmts: List[PlanStmt] = []

    def emit(self, op: str, text: str, *, tensor: str = "", level: int = -1) -> None:
        self.stmts.append(PlanStmt(op, text, tensor, level))

    def ops(self) -> List[str]:
        return [s.op for s in self.stmts]

    def ops_for(self, tensor: str) -> List[str]:
        return [s.op for s in self.stmts if s.tensor == tensor]

    def describe(self) -> str:
        return "\n".join(s.text for s in self.stmts)

    def __len__(self) -> int:
        return len(self.stmts)

    def __repr__(self) -> str:  # pragma: no cover
        return f"PartitioningPlan({self.name}, {len(self.stmts)} stmts)"
