"""Sparse output tensors (paper §V-B).

Two cases, exactly as the prototype supports:

* **pattern-preserving** statements (SDDMM, SpTTV, ...) where the output's
  sparsity equals an input's — the compiler copies the coordinate metadata
  from the input into the output and the leaves write only values;
* **unknown pattern** (SpAdd3) — the two-phase parallel assembly of
  Chou et al.: a symbolic pass counts each piece's output non-zeros, an
  exclusive scan sizes the result, and a fill pass writes coordinates and
  values with no synchronization.
"""
from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..errors import CompileError
from ..legion.index_space import IndexSpace
from ..legion.region import Region, make_pos_region
from ..taco.expr import Access, Assignment, Mul
from ..taco.tensor import CompressedLevel, DenseLevel, Tensor

__all__ = [
    "pattern_source",
    "adopt_pattern",
    "scan_counts",
    "install_assembled_output",
]


def pattern_source(assignment: Assignment) -> Optional[Access]:
    """The sparse input whose pattern the output provably preserves.

    A multiplicative statement preserves the pattern of a sparse operand
    that is indexed by exactly the LHS variables in the same order and
    whose remaining (reduction-variable) dimensions only shrink the value,
    never the structure — e.g. ``A(i,j) = B(i,j)*C(i,k)*D(k,j)`` (SDDMM)
    and ``A(i,j) = B(i,j,k)*c(k)`` (SpTTV).
    """
    lhs = assignment.lhs
    if lhs.tensor.format.is_all_dense():
        return None
    rhs = assignment.rhs
    operands = rhs.operands if isinstance(rhs, Mul) else [rhs]
    lhs_vars = lhs.indices
    for op in operands:
        if not isinstance(op, Access) or op.tensor.format.is_all_dense():
            continue
        if op.indices[: len(lhs_vars)] == lhs_vars:
            return op
    return None


def adopt_pattern(out: Tensor, src: Tensor, keep_levels: int) -> None:
    """Give ``out`` the first ``keep_levels`` levels of ``src``'s structure.

    The coordinate metadata regions are shared (the paper copies them; for
    a simulation sharing is equivalent and cheaper), and a fresh zeroed
    values region is allocated over the kept prefix's position space.
    """
    if keep_levels > len(src.levels):
        raise CompileError("cannot adopt more levels than the source stores")
    out.levels = list(src.levels[:keep_levels])
    last = out.levels[-1]
    out.vals = Region(
        IndexSpace(last.num_positions, name=f"{out.name}_vals"),
        out.dtype,
        name=f"{out.name}.vals",
    )
    out._bump_pattern_version()


def scan_counts(counts: np.ndarray, name: str = "pos"):
    """Exclusive scan of per-row counts into a rect ``pos`` region."""
    return make_pos_region(counts, name=name)


def install_assembled_output(
    out: Tensor, counts: np.ndarray, ncols: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Phase-1 result of two-phase assembly: size and install the output.

    Returns ``(pos, crd, vals)`` arrays for the fill phase to write into.

    Bumps the output's ``pattern_version`` (consumers of ``out`` must see
    the structural change) *and* its ``assembly_version``.  Kernel
    fingerprints of assembled statements exclude the LHS pattern version
    (see :func:`repro.core.cache.is_assembled_output`), so re-executing the
    same SpAdd statement hits the kernel cache and replays its mapping
    traces instead of re-recording every iteration.
    """
    if len(out.levels) != 2 or not isinstance(out.levels[1], CompressedLevel):
        # (Re)build the level structure of a CSR output from scratch.
        nrows = counts.size
        pos = scan_counts(counts, name=f"{out.name}.pos1")
        total = int(np.maximum(counts, 0).sum())
        crd = Region(
            IndexSpace(total, name=f"{out.name}_crd1"),
            np.int64,
            name=f"{out.name}.crd1",
        )
        out.levels = [DenseLevel(nrows, nrows), CompressedLevel(pos, crd)]
        out.vals = Region(
            IndexSpace(total, name=f"{out.name}_vals"), out.dtype, name=f"{out.name}.vals"
        )
    else:
        pos = scan_counts(counts, name=f"{out.name}.pos1")
        total = int(np.maximum(counts, 0).sum())
        crd = Region(
            IndexSpace(total, name=f"{out.name}_crd1"), np.int64, name=f"{out.name}.crd1"
        )
        out.levels = [out.levels[0], CompressedLevel(pos, crd)]
        out.vals = Region(
            IndexSpace(total, name=f"{out.name}_vals"), out.dtype, name=f"{out.name}.vals"
        )
    out._bump_pattern_version()
    out._bump_assembly_version()
    lvl = out.levels[1]
    return lvl.pos.data, lvl.crd.data, out.vals.data
