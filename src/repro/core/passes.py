"""The ordered program pass pipeline: fold → DSE → fuse (CSE follows).

SpDISTAL schedules *whole sparse programs*; this module is the program-level
optimizer that runs between recording and per-statement compilation
(:func:`repro.core.program.compile_program`).  Passes run in a fixed,
introspectable order and every run reports what fired through
:class:`PassRecord` entries (surfaced by ``CompiledProgram.describe()`` and
``Program.analyze()``):

1. **fold** — copy/identity folding: after ``a(i, j) = b(i, j)``,
   downstream reads of ``a`` are forwarded to ``b`` (formats, shape and
   dtype must agree, so classification and schedule legality are
   preserved).  The copy statement itself still executes — every
   statement's output is observable through ``ProgramResult.outputs`` —
   but forwarding unlocks fusion and CSE across the copy.
2. **dse** — dead-*store* elimination: a statement whose output is
   overwritten by a later non-accumulating statement, with no intervening
   read of it, performs work no one can observe and is dropped.  Outputs
   that are read downstream, the program's final output, statements listed
   in ``keep``, and stores a *fingerprint-identical* later statement
   repeats (those collapse better under CSE) are never dropped.
3. **fuse** — SDDMM→SpMM kernel fusion (the SparseLNR-style loop-nest
   restructuring of the roadmap): a producer ``E(i,j) = B(i,j)·U(i,k)·
   V(k,j)`` feeding a single consumer ``H(i,l) = E(i,j)·F(j,l)`` becomes
   one statement ``H(i,l) = B(i,j)·U(i,k)·V(k,j)·F(j,l)`` carrying a
   synthetic :class:`~repro.core.compiler.KernelClass` of kind
   ``"fused_sddmm_spmm"`` — the intermediate sparse product ``E`` never
   materializes as a resident region, so the fused program communicates
   strictly fewer bytes and holds a strictly smaller peak footprint.

Fusion legality is derived from the hazard analyzer's privilege sets
(:mod:`repro.analysis.privileges`): the producer's output must be consumed
by exactly **one** statement, written by no other, aliased by neither
endpoint, and neither endpoint may accumulate; no statement between the
pair may write any operand the fused statement reads.  The fused statement
replaces the *consumer* (so intervening statements keep their position)
and the producer is removed.

Every pass can be disabled per compile (``compile_program(..., fold=False,
dse=False, fuse=False)``) and ``keep=`` pins tensors (objects or names)
whose producing statements must survive DSE and whose values must stay
materialized (blocking fusion through them).
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..taco.expr import Access, Add, Assignment, Mul
from ..taco.schedule import FuseRel, PosRel, Schedule, SplitRel
from . import cache as _cache

__all__ = ["PassRecord", "PipelinePlan", "pipeline_plan", "FUSED_SDDMM_SPMM"]

#: The kernel kind string a fused SDDMM→SpMM statement classifies as.
FUSED_SDDMM_SPMM = "fused_sddmm_spmm"


@dataclass(frozen=True)
class PassRecord:
    """What one pipeline pass did to one compiled program."""

    name: str  #: "fold" | "dse" | "fuse" | "cse"
    fired: bool
    #: source-statement indices the pass touched (original program order)
    statements: Tuple[int, ...] = ()
    detail: str = ""

    def describe(self) -> str:
        state = "fired" if self.fired else "no-op"
        where = f" @ statements {list(self.statements)}" if self.statements else ""
        tail = f" — {self.detail}" if self.detail else ""
        return f"pass {self.name}: {state}{where}{tail}"


@dataclass
class PipelinePlan:
    """The pipeline's outcome: transformed schedules plus provenance."""

    schedules: List[Schedule] = field(default_factory=list)
    records: List[PassRecord] = field(default_factory=list)
    #: per final statement, the original statement indices it came from
    origin: List[Tuple[int, ...]] = field(default_factory=list)


@dataclass
class _Entry:
    orig: Tuple[int, ...]
    schedule: Schedule


def _keep_sets(keep) -> Tuple[Set[int], Set[str]]:
    ids: Set[int] = set()
    names: Set[str] = set()
    for item in keep or ():
        if isinstance(item, str):
            names.add(item)
        else:
            ids.add(id(item))
            name = getattr(item, "name", None)
            if name is not None:
                names.add(name)
    return ids, names


def _kept(tensor, keep_ids: Set[int], keep_names: Set[str]) -> bool:
    return id(tensor) in keep_ids or tensor.name in keep_names


def _read_tensor_ids(asg: Assignment) -> Set[int]:
    out = {id(acc.tensor) for acc in asg.rhs.accesses()}
    if asg.accumulate:
        out.add(id(asg.lhs.tensor))
    return out


# --------------------------------------------------------------------------- #
# pass 1: copy/identity folding
# --------------------------------------------------------------------------- #
def _same_layout(a, b) -> bool:
    return (
        a.shape == b.shape
        and a.dtype == b.dtype
        and _cache._format_signature(a.format) == _cache._format_signature(b.format)
    )


def _subst_expr(expr, a, b):
    if isinstance(expr, Access):
        return Access(b, expr.indices) if expr.tensor is a else expr
    if isinstance(expr, (Add, Mul)):
        return type(expr)([_subst_expr(o, a, b) for o in expr.operands])
    return expr


def _forward_reads(old: Schedule, a, b) -> Schedule:
    """Clone ``old`` with every read of tensor ``a`` forwarded to ``b``.

    A structural clone, not a transform replay: the source schedule was
    validated when it was built, and the substitution preserves every
    index extent (the fold requires identical shapes), so relations,
    loop order and directives carry over verbatim — only tensor
    references are remapped.
    """
    asg = old.assignment
    new_asg = Assignment(
        asg.lhs, _subst_expr(asg.rhs, a, b), accumulate=asg.accumulate
    )
    sched = Schedule.__new__(Schedule)
    sched.assignment = new_asg
    sched.loop_order = list(old.loop_order)
    sched.relations = [
        PosRel(r.coord_var, r.pos_var, Access(b, r.access.indices))
        if isinstance(r, PosRel) and r.access.tensor is a
        else r
        for r in old.relations
    ]
    sched.distributed = list(old.distributed)
    sched.communicated = {
        v: [b if t is a else t for t in ts]
        for v, ts in old.communicated.items()
    }
    sched.parallelized = dict(old.parallelized)
    sched.precomputed = [
        (_subst_expr(e, a, b), i, iw, w) for e, i, iw, w in old.precomputed
    ]
    return sched


def _fold_copies(entries: List[_Entry]) -> PassRecord:
    touched: List[int] = []
    details: List[str] = []
    for idx, entry in enumerate(entries):
        asg = entry.schedule.assignment
        if asg.accumulate or not isinstance(asg.rhs, Access):
            continue
        a, rhs = asg.lhs.tensor, asg.rhs
        b = rhs.tensor
        if a is b or rhs.indices != asg.lhs.indices or not _same_layout(a, b):
            continue
        for j in range(idx + 1, len(entries)):
            later = entries[j].schedule.assignment
            if later.lhs.tensor is a or later.lhs.tensor is b:
                break  # a redefined, or b no longer holds the copied values
            if any(acc.tensor is a for acc in later.rhs.accesses()):
                entries[j].schedule = _forward_reads(entries[j].schedule, a, b)
                touched.extend(entries[j].orig)
                details.append(
                    f"statement {entries[j].orig[0]} reads {b.name} "
                    f"instead of {a.name} (copy at statement {entry.orig[0]})"
                )
    return PassRecord(
        "fold",
        bool(touched),
        tuple(dict.fromkeys(touched)),
        "; ".join(details) if details else "no forwardable copies",
    )


# --------------------------------------------------------------------------- #
# pass 2: dead-store elimination
# --------------------------------------------------------------------------- #
def _dead_stores(
    entries: List[_Entry], machine, keep_ids: Set[int], keep_names: Set[str]
) -> PassRecord:
    fingerprints: List[Optional[Tuple]] = []
    for e in entries:
        try:
            fingerprints.append(_cache.kernel_fingerprint(e.schedule, machine))
        except _cache.Unfingerprintable:
            fingerprints.append(None)
    alive = [True] * len(entries)
    dropped: List[int] = []
    details: List[str] = []
    for i, entry in enumerate(entries):
        out = entry.schedule.assignment.lhs.tensor
        if _kept(out, keep_ids, keep_names):
            continue
        for j in range(i + 1, len(entries)):
            later = entries[j].schedule.assignment
            if id(out) in _read_tensor_ids(later):
                break  # read downstream: the store is observable
            if later.lhs.tensor is out and not later.accumulate:
                if (
                    fingerprints[i] is not None
                    and fingerprints[i] == fingerprints[j]
                ):
                    break  # identical repeat: CSE collapses it for free
                alive[i] = False
                dropped.extend(entry.orig)
                details.append(
                    f"statement {entry.orig[0]} ({out.name}) is overwritten "
                    f"by statement {entries[j].orig[0]} before any read"
                )
                break
    if not all(alive):
        entries[:] = [e for k, e in enumerate(entries) if alive[k]]
    return PassRecord(
        "dse",
        bool(dropped),
        tuple(dropped),
        "; ".join(details) if details else "no dead stores",
    )


# --------------------------------------------------------------------------- #
# pass 3: SDDMM→SpMM fusion
# --------------------------------------------------------------------------- #
def _is_csr(tensor) -> bool:
    fmt = tensor.format
    return (
        tensor.order == 2
        and not fmt.levels[0].is_compressed
        and fmt.levels[1].is_compressed
        and tuple(fmt.mode_ordering) == (0, 1)
    )


def _find_fusable_pair(entries: List[_Entry], keep_ids, keep_names):
    """One legal (producer, consumer, fused schedule ingredients) triple.

    Legality follows the hazard analyzer's privilege sets
    (:func:`repro.analysis.privileges.program_privileges`): exactly one
    consumer of the intermediate, no other writer, no aliasing at either
    endpoint, plain overwrite semantics on both, and no intervening write
    to any operand the fused statement reads.
    """
    from ..analysis.privileges import program_privileges
    from .compiler import classify

    privs = program_privileges([e.schedule for e in entries])
    for p, entry in enumerate(entries):
        asg_p = entry.schedule.assignment
        if privs[p].write_kind != "write" or privs[p].aliased_tensors():
            continue
        kc_p = classify(asg_p)
        if kc_p.kind != "sddmm":
            continue
        inter = asg_p.lhs.tensor  # the SDDMM's sparse product, E
        if _kept(inter, keep_ids, keep_names):
            continue
        B, C, D = kc_p.roles["B"], kc_p.roles["C"], kc_p.roles["D"]
        if not _is_csr(B.tensor):
            continue
        readers = [
            q.index
            for q in privs
            if q.index != p and any(t is inter for t in q.read_tensors)
        ]
        writers = [
            q.index
            for q in privs
            if q.index != p and any(t is inter for t in q.written_tensors)
        ]
        if writers or len(readers) != 1 or readers[0] <= p:
            continue
        c = readers[0]
        if privs[c].write_kind != "write" or privs[c].aliased_tensors():
            continue
        asg_c = entries[c].schedule.assignment
        kc_c = classify(asg_c)
        if kc_c.kind != "spmm" or kc_c.roles["B"].tensor is not inter:
            continue
        if sum(1 for acc in asg_c.rhs.accesses() if acc.tensor is inter) != 1:
            continue
        F = kc_c.roles["C"]
        H = asg_c.lhs.tensor
        fused_inputs = {id(B.tensor), id(C.tensor), id(D.tensor), id(F.tensor)}
        if id(H) in fused_inputs or id(inter) in fused_inputs or F.tensor is H:
            continue
        # The fused statement sits at the consumer's slot, so statements
        # between the pair now run before the producer's reads happen —
        # none of them may write what the fused statement consumes.
        if any(
            id(t) in fused_inputs
            for j in range(p + 1, c)
            for t in privs[j].written_tensors
        ):
            continue
        i_var, j_var = asg_p.lhs.indices  # == B's indices (sddmm predicate)
        k_var = C.indices[1]  # the producer's contracted rank variable
        l_var = asg_c.lhs.indices[1]  # the consumer's free output column
        if l_var in (i_var, j_var, k_var):
            continue  # variable collision would mis-bind the fused loops
        return p, c, (B, C, D, F, H, i_var, j_var, l_var)
    return None


def _consumer_strategy(schedule: Schedule) -> Optional[str]:
    """The consumer's distribution strategy, where the fused statement can
    inherit it (``None`` falls back to the fused kind's auto choice).

    The fused statement replaces the consumer, so distributing it the way
    the consumer was distributed keeps the output's per-piece accumulation
    order — fused and unfused programs then produce bit-identical values.
    """
    from ..taco.schedule import PosRel

    if any(isinstance(r, PosRel) for r in schedule.relations):
        return "nonzeros"
    if len(schedule.distributed) == 1:
        return "rows"
    return None  # unscheduled, or a grid tiling the fused kind lacks


def _build_fused(
    machine, B, C, D, F, H, i_var, j_var, l_var, strategy=None
) -> Schedule:
    from ..api.autoschedule import auto_schedule  # lazy: api layers on core
    from .compiler import KernelClass

    F_new = Access(F.tensor, (j_var, l_var))
    fused = Assignment(Access(H, (i_var, l_var)), Mul([B, C, D, F_new]))
    # ``classify`` honors this attribute before pattern matching, so the
    # compiler, fingerprint, autoscheduler and commplan all see the fused
    # kind through their ordinary entry points.
    fused.fused_class = KernelClass(
        FUSED_SDDMM_SPMM, {"B": B, "C": C, "D": D, "F": F_new}
    )
    return auto_schedule(fused, machine, strategy=strategy)


def _fuse_sddmm_spmm(
    entries: List[_Entry], machine, keep_ids: Set[int], keep_names: Set[str]
) -> PassRecord:
    touched: List[int] = []
    details: List[str] = []
    while len(entries) >= 2:
        found = _find_fusable_pair(entries, keep_ids, keep_names)
        if found is None:
            break
        p, c, ingredients = found
        H = ingredients[4]
        fused_sched = _build_fused(
            machine, *ingredients,
            strategy=_consumer_strategy(entries[c].schedule),
        )
        orig = entries[p].orig + entries[c].orig
        inter_name = entries[p].schedule.assignment.lhs.tensor.name
        entries[c] = _Entry(orig, fused_sched)
        del entries[p]
        touched.extend(orig)
        details.append(
            f"statements {orig[0]}+{orig[-1]} fused into one "
            f"{FUSED_SDDMM_SPMM} statement ({inter_name} never materializes; "
            f"output {H.name})"
        )
    return PassRecord(
        "fuse",
        bool(touched),
        tuple(touched),
        "; ".join(details) if details else "no fusable SDDMM→SpMM chain",
    )


# --------------------------------------------------------------------------- #
# the pipeline
# --------------------------------------------------------------------------- #
def pipeline_plan(
    schedules: Sequence[Schedule],
    machine,
    *,
    fold: bool = True,
    dse: bool = True,
    fuse: bool = True,
    keep=None,
) -> PipelinePlan:
    """Run the program passes over ``schedules`` (pure: inputs untouched).

    Returns the transformed schedule list, one :class:`PassRecord` per
    pass (disabled passes report ``fired=False``), and per-statement
    origin tuples mapping each surviving statement back to the source
    statements it came from.  CSE is not run here — it is a reuse *map*
    over the final statements, owned by ``compile_program`` — but its
    record is appended there so the reported order is fold → dse → fuse
    → cse.
    """
    keep_ids, keep_names = _keep_sets(keep)
    entries = [_Entry((n,), s) for n, s in enumerate(schedules)]
    records: List[PassRecord] = []

    if fold and len(entries) > 1:
        records.append(_fold_copies(entries))
    else:
        records.append(PassRecord("fold", False, (), "disabled" if not fold else ""))
    if dse and len(entries) > 1:
        records.append(_dead_stores(entries, machine, keep_ids, keep_names))
    else:
        records.append(PassRecord("dse", False, (), "disabled" if not dse else ""))
    if fuse and len(entries) > 1:
        records.append(_fuse_sddmm_spmm(entries, machine, keep_ids, keep_names))
    else:
        records.append(PassRecord("fuse", False, (), "disabled" if not fuse else ""))

    return PipelinePlan(
        schedules=[e.schedule for e in entries],
        records=records,
        origin=[e.orig for e in entries],
    )
