"""Coordinate-tree partitioning (paper §IV-A/§IV-C).

Given an initial partition of one coordinate-tree level — universe
(coordinate bounds) or non-zero (position bounds) per color — derive
partitions of every level above and below it:

* levels **below** the initial level via ``partitionFromParent`` (children
  inherit their parent's color),
* levels **above** via ``partitionFromChild`` (parents are colored with all
  of their children's colors, so the result may alias, Fig. 8b).

The result is a :class:`TensorPartition`: one positions-partition per level
(plus the ``pos``-region partitions of compressed levels) and the values
partition, ready to be turned into Legion region requirements.

Partitions are memoized per ``(tensor pattern version, level, kind,
bounds)`` in :mod:`repro.core.cache`: re-deriving the same coordinate-tree
partition for the same data (a recompile, or another statement splitting
the same tensor the same way) returns the cached object and replays the
recorded plan statements.  Mutating a tensor's values does not bump its
pattern version and therefore does not invalidate these entries.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import CompileError
from ..legion.index_space import EMPTY, Rect, RectSubset
from ..legion.partition import Partition
from ..legion.runtime import Privilege, RegionReq
from ..taco.tensor import CompressedLevel, Tensor
from . import cache as _cache
from .levels import LevelFunctions, level_functions_for
from .plan import PartitioningPlan

__all__ = [
    "TensorPartition",
    "partition_tensor",
    "partition_dense_tensor",
    "replicated_partition",
]

Color = Hashable
Bounds = Tuple[int, int]


@dataclass
class TensorPartition:
    """A full coordinate-tree partition of one tensor."""

    tensor: Tensor
    level_positions: List[Optional[Partition]]  # per level, positions partition
    level_pos_parts: List[Optional[Partition]]  # per level, pos-region partition
    vals_part: Partition
    colors: List[Color]
    replicated: bool = False

    def region_reqs(self, privilege: Privilege) -> List[RegionReq]:
        """Region requirements describing this tensor's per-color footprint.

        Metadata (``pos``/``crd``) is always read-only; only ``vals`` takes
        the requested privilege.
        """
        reqs: List[RegionReq] = []
        if not self.replicated:
            for lvl, positions, pos_part in zip(
                self.tensor.levels, self.level_positions, self.level_pos_parts
            ):
                if isinstance(lvl, CompressedLevel):
                    if pos_part is not None:
                        reqs.append(RegionReq(lvl.pos, pos_part, Privilege.READ_ONLY))
                    if positions is not None:
                        reqs.append(RegionReq(lvl.crd, positions, Privilege.READ_ONLY))
            reqs.append(RegionReq(self.tensor.vals, self.vals_part, privilege))
        else:
            for lvl in self.tensor.levels:
                if isinstance(lvl, CompressedLevel):
                    reqs.append(RegionReq(lvl.pos, None, Privilege.READ_ONLY))
                    reqs.append(RegionReq(lvl.crd, None, Privilege.READ_ONLY))
            reqs.append(RegionReq(self.tensor.vals, None, privilege))
        return reqs

    def vals_subset(self, color: Color):
        return self.vals_part[color] if not self.replicated else self.tensor.vals.ispace.full_subset()

    def is_output_aliased(self) -> bool:
        """True when the values partition overlaps (requires reduction)."""
        return not self.vals_part.is_disjoint()

    def top_level_bounds(self) -> Dict[Color, Bounds]:
        """Per-color [lo, hi] coordinate bounds at the root level.

        Used by ``partitionRemainingCoordinateTrees`` to derive universe
        partitions of the other tensors in the statement.
        """
        out: Dict[Color, Bounds] = {}
        top = self.level_positions[0]
        lvl0 = self.tensor.levels[0]
        for c, s in top.items():
            if s.empty:
                out[c] = (0, -1)
            elif isinstance(s, RectSubset):
                lo, hi = s.rect.lo[0], s.rect.hi[0]
                if not lvl0.is_dense:
                    crd = lvl0.crd.data
                    lo, hi = int(crd[lo]), int(crd[hi])
                out[c] = (lo, hi)
            else:
                idx = s.indices()
                lo, hi = int(idx[0]), int(idx[-1])
                if not lvl0.is_dense:
                    crd = lvl0.crd.data
                    lo, hi = int(crd[lo]), int(crd[hi])
                out[c] = (lo, hi)
        return out

    def nbytes_for(self, color: Color) -> int:
        total = 0
        for req in self.region_reqs(Privilege.READ_ONLY):
            total += req.region.subset_nbytes(req.subset_for(color))
        return total


def partition_tensor(
    tensor: Tensor,
    initial_level: int,
    kind: str,  # "universe" | "nonzero"
    bounds: Dict[Color, Bounds],
    plan: Optional[PartitioningPlan] = None,
) -> TensorPartition:
    """Run the Table I level functions to partition one tensor's tree.

    Memoized: a repeat call over the same pattern version, level, kind and
    bounds returns the cached :class:`TensorPartition` (shared, read-only)
    and re-emits the originally recorded plan statements into ``plan``.
    """
    if plan is None:
        plan = PartitioningPlan(f"partition_{tensor.name}")
    if tensor.format.is_all_dense():
        raise CompileError("use partition_dense_tensor for all-dense tensors")
    nlevels = len(tensor.levels)
    if not (0 <= initial_level < nlevels):
        raise CompileError(f"initial level {initial_level} out of range")
    key = _cache.partition_cache_key(tensor, initial_level, kind, bounds)
    hit = _cache.lookup_partition(key)
    if hit is not None:
        part, stmts = hit
        plan.stmts.extend(stmts)
        return part
    emitted_from = len(plan.stmts)
    funcs: List[LevelFunctions] = [
        level_functions_for(tensor, l, plan) for l in range(nlevels)
    ]
    init = funcs[initial_level]
    colors = list(bounds.keys())

    if kind == "universe":
        coloring = init.init_universe_partition()
        for c in colors:
            init.create_universe_partition_entry(coloring, c, bounds[c])
        up, down = init.finalize_universe_partition(coloring)
    elif kind == "nonzero":
        coloring = init.init_nonzero_partition()
        for c in colors:
            init.create_nonzero_partition_entry(coloring, c, bounds[c])
        up, down = init.finalize_nonzero_partition(coloring)
    else:
        raise CompileError(f"unknown partition kind {kind!r}")

    positions: List[Optional[Partition]] = [None] * nlevels
    positions[initial_level] = down
    # Downward: children inherit their parent's colors.
    cur = down
    for l in range(initial_level + 1, nlevels):
        cur = funcs[l].partition_from_parent(cur)
        positions[l] = cur
    # Upward: parents take the union of their children's colors.
    if initial_level > 0:
        positions[initial_level - 1] = up
        for l in range(initial_level - 1, 0, -1):
            parent = funcs[l].partition_from_child(positions[l])
            positions[l - 1] = parent
        if positions[0] is not None:
            funcs[0].partition_from_child(positions[0])

    vals_src = positions[nlevels - 1]
    vals_part = Partition(tensor.vals.ispace, dict(vals_src.subsets),
                          name=f"{tensor.name}ValsPart")
    result = TensorPartition(
        tensor,
        level_positions=positions,
        level_pos_parts=[f.pos_part for f in funcs],
        vals_part=vals_part,
        colors=colors,
    )
    _cache.store_partition(key, result, plan.stmts[emitted_from:])
    return result


def partition_dense_tensor(
    tensor: Tensor,
    mode_bounds: Dict[Color, Dict[int, Bounds]],
    plan: Optional[PartitioningPlan] = None,
) -> TensorPartition:
    """Partition an all-dense tensor by per-mode coordinate bounds.

    ``mode_bounds[color]`` maps tensor modes to inclusive coordinate ranges;
    unmentioned modes span their full extent (this is DISTAL's dense tensor
    distribution).  The partition is over the tensor's N-D values region.
    """
    if plan is None:
        plan = PartitioningPlan(f"partition_{tensor.name}")
    if not tensor.format.is_all_dense():
        raise CompileError("partition_dense_tensor requires an all-dense tensor")
    key = _cache.dense_partition_cache_key(tensor, mode_bounds)
    hit = _cache.lookup_partition(key)
    if hit is not None:
        part, stmts = hit
        plan.stmts.extend(stmts)
        return part
    emitted_from = len(plan.stmts)
    subsets = {}
    stored_modes = tensor.format.mode_ordering
    for color, per_mode in mode_bounds.items():
        lo, hi = [], []
        for level, mode in enumerate(stored_modes):
            size = tensor.shape[mode]
            b = per_mode.get(mode, (0, size - 1))
            lo.append(max(0, b[0]))
            hi.append(min(size - 1, b[1]))
        r = Rect(tuple(lo), tuple(hi))
        subsets[color] = EMPTY if r.empty else RectSubset(r)
    plan.emit(
        "partitionByBounds",
        f"{tensor.name}ValsPart = partitionByBounds(C_{tensor.name}, {tensor.name}.dom)",
        tensor=tensor.name,
        level=0,
    )
    part = Partition(tensor.vals.ispace, subsets, name=f"{tensor.name}ValsPart")
    nlevels = len(tensor.levels)
    result = TensorPartition(
        tensor,
        level_positions=[None] * nlevels,
        level_pos_parts=[None] * nlevels,
        vals_part=part,
        colors=list(mode_bounds.keys()),
    )
    _cache.store_partition(key, result, plan.stmts[emitted_from:])
    return result


def replicated_partition(tensor: Tensor, colors: Sequence[Color]) -> TensorPartition:
    """Every color sees the whole tensor (e.g. the replicated SpMV vector)."""
    full = tensor.vals.ispace.full_subset()
    part = Partition(
        tensor.vals.ispace, {c: full for c in colors}, name=f"{tensor.name}Repl"
    )
    nlevels = len(tensor.levels)
    return TensorPartition(
        tensor,
        level_positions=[None] * nlevels,
        level_pos_parts=[None] * nlevels,
        vals_part=part,
        colors=list(colors),
        replicated=True,
    )
