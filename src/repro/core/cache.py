"""Compile-once / run-many caches (the amortization layer of the paper).

SpDISTAL's headline wins come from paying the cost of sparse-tensor
partitioning once and amortizing it over the many executions of an
iterative workload (SpMV inside CG, MTTKRP inside ALS — paper §VI).  This
module provides the two compiler-side layers of that amortization (the
runtime-side mapping-trace replay lives in
:mod:`repro.legion.runtime`):

* **Kernel cache** — :func:`repro.core.compile_kernel` is memoized behind
  :func:`lookup_kernel` / :func:`store_kernel`.  The key is a *canonical
  fingerprint* of the schedule (statement structure with tensors and index
  variables canonicalized by first appearance, loop order, provenance
  relations, distribution variables, piece counts, parallel units) plus
  each tensor's identity, shape, format, dtype and ``pattern_version``,
  plus a structural machine signature.  Rebuilding an identical schedule —
  even with fresh :class:`~repro.taco.index_vars.IndexVar` objects —
  therefore hits.

* **Partition memo** — coordinate-tree partitions
  (:func:`repro.core.partitioner.partition_tensor`) and dense bound
  partitions are memoized per ``(tensor, pattern_version, level, kind,
  bounds)``.  Mutating a tensor's *values* does not change its
  ``pattern_version``, so re-compiles and re-executes over updated values
  reuse the partitions; re-packing (a structural change) bumps the version
  and the stale entries simply never hit again.

Invalidation
------------
Keys embed ``Tensor.pattern_version``; a pattern bump self-invalidates all
dependent entries.  Explicit hooks are also provided: call
:func:`invalidate_tensor` after out-of-band structural surgery on a
tensor, or :func:`clear_caches` to drop everything (tests use this for
isolation).  Both caches are bounded LRUs; entries hold strong references
to their tensors, which keeps ``id``-based keys unambiguous (an id can
only be reused after the entry — and thus the reference — is evicted).

Use :func:`set_cache_enabled` (or the :func:`caches_disabled` context
manager) to force the uncached paths, e.g. when benchmarking the seed
behavior.
"""
from __future__ import annotations

import contextlib
from collections import OrderedDict
from dataclasses import astuple
from typing import Any, Dict, Hashable, List, Optional, Tuple

from ..taco.expr import Access, Add, Assignment, Literal, Mul
from ..taco.schedule import FuseRel, PosRel, Schedule, SplitRel

__all__ = [
    "kernel_fingerprint",
    "lookup_kernel",
    "store_kernel",
    "lookup_partition",
    "store_partition",
    "partition_cache_key",
    "dense_partition_cache_key",
    "invalidate_tensor",
    "clear_caches",
    "cache_stats",
    "set_cache_enabled",
    "caches_enabled",
    "caches_disabled",
]

_KERNEL_CACHE_SIZE = 128
_PARTITION_CACHE_SIZE = 512

_enabled = True


class Unfingerprintable(Exception):
    """Raised when a schedule contains content the fingerprint cannot
    canonicalize; the caller falls back to an uncached compile."""


class _LRU:
    """A small bounded LRU map with hit/miss counters."""

    def __init__(self, maxsize: int):
        self.maxsize = maxsize
        self._map: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable) -> Optional[Any]:
        try:
            value = self._map[key]
        except KeyError:
            self.misses += 1
            return None
        self._map.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        self._map[key] = value
        self._map.move_to_end(key)
        while len(self._map) > self.maxsize:
            self._map.popitem(last=False)

    def drop_if(self, pred) -> int:
        doomed = [k for k, v in self._map.items() if pred(k, v)]
        for k in doomed:
            del self._map[k]
        return len(doomed)

    def clear(self) -> None:
        self._map.clear()

    def __len__(self) -> int:
        return len(self._map)


_kernel_cache = _LRU(_KERNEL_CACHE_SIZE)
_partition_cache = _LRU(_PARTITION_CACHE_SIZE)


# --------------------------------------------------------------------------- #
# enable / disable
# --------------------------------------------------------------------------- #
def set_cache_enabled(enabled: bool) -> None:
    global _enabled
    _enabled = bool(enabled)


def caches_enabled() -> bool:
    return _enabled


@contextlib.contextmanager
def caches_disabled():
    """Temporarily force uncached compilation/partitioning (seed behavior)."""
    global _enabled
    prev = _enabled
    _enabled = False
    try:
        yield
    finally:
        _enabled = prev


# --------------------------------------------------------------------------- #
# canonical fingerprints
# --------------------------------------------------------------------------- #
class _Canon:
    """Canonicalizes tensors and index variables by first appearance, so
    structurally identical schedules built from fresh objects coincide."""

    def __init__(self):
        self.tensors: List[Any] = []
        self._tensor_tokens: Dict[int, int] = {}
        self._var_tokens: Dict[int, int] = {}

    def tensor(self, t) -> int:
        tok = self._tensor_tokens.get(id(t))
        if tok is None:
            tok = len(self.tensors)
            self._tensor_tokens[id(t)] = tok
            self.tensors.append(t)
        return tok

    def var(self, v) -> int:
        tok = self._var_tokens.get(id(v))
        if tok is None:
            tok = len(self._var_tokens)
            self._var_tokens[id(v)] = tok
        return tok

    def expr(self, e) -> Tuple:
        if isinstance(e, Access):
            return ("A", self.tensor(e.tensor), tuple(self.var(v) for v in e.indices))
        if isinstance(e, Mul):
            return ("*",) + tuple(self.expr(o) for o in e.operands)
        if isinstance(e, Add):
            return ("+",) + tuple(self.expr(o) for o in e.operands)
        if isinstance(e, Literal):
            return ("L", e.value)
        raise Unfingerprintable(f"cannot fingerprint {type(e).__name__}")


def _format_signature(fmt) -> Tuple:
    return (tuple(lf.is_compressed for lf in fmt.levels), fmt.mode_ordering)


def _tensor_state(t) -> Tuple:
    return (t.pattern_version, t.shape, _format_signature(t.format), t.dtype.str)


_machine_sigs: Dict[int, Tuple[Any, Tuple]] = {}


def _machine_signature(machine) -> Tuple:
    # Machines are immutable after construction; memoize per object (the
    # strong reference keeps the id unambiguous while cached).
    hit = _machine_sigs.get(id(machine))
    if hit is not None and hit[0] is machine:
        return hit[1]
    sig = (machine.kind.value, machine.grid.dims, astuple(machine.node))
    if len(_machine_sigs) > 64:
        _machine_sigs.clear()
    _machine_sigs[id(machine)] = (machine, sig)
    return sig


def kernel_fingerprint(schedule: Schedule, machine) -> Tuple:
    """The canonical cache key of ``compile_kernel(schedule, machine)``.

    Raises :class:`Unfingerprintable` for schedule content outside the
    canonical forms (callers then compile uncached).
    """
    canon = _Canon()
    asg: Assignment = schedule.assignment
    stmt = ("=", canon.expr(asg.lhs), canon.expr(asg.rhs), asg.accumulate)
    rels = []
    for rel in schedule.relations:
        if isinstance(rel, SplitRel):
            rels.append(("split", canon.var(rel.parent), canon.var(rel.outer),
                         canon.var(rel.inner), rel.factor, rel.is_divide))
        elif isinstance(rel, FuseRel):
            rels.append(("fuse", canon.var(rel.a), canon.var(rel.b),
                         canon.var(rel.fused)))
        elif isinstance(rel, PosRel):
            rels.append(("pos", canon.var(rel.coord_var), canon.var(rel.pos_var),
                         canon.expr(rel.access)))
        else:
            raise Unfingerprintable(f"unknown relation {type(rel).__name__}")
    sched_sig = (
        stmt,
        tuple(rels),
        tuple(canon.var(v) for v in schedule.loop_order),
        tuple(canon.var(v) for v in schedule.distributed),
        tuple((canon.var(v), u.value) for v, u in schedule.parallelized.items()),
        tuple(
            (canon.var(v), tuple(canon.tensor(t) for t in ts))
            for v, ts in schedule.communicated.items()
        ),
        tuple(
            (canon.expr(e), canon.var(i), canon.var(iw),
             canon.tensor(w) if w is not None else None)
            for e, i, iw, w in schedule.precomputed
        ),
    )
    tensor_ids = tuple(id(t) for t in canon.tensors)
    tensor_states = tuple(_tensor_state(t) for t in canon.tensors)
    return (sched_sig, tensor_ids, tensor_states, _machine_signature(machine))


# --------------------------------------------------------------------------- #
# kernel cache
# --------------------------------------------------------------------------- #
def lookup_kernel(key: Tuple):
    """Return the cached :class:`CompiledKernel` for ``key``, or None."""
    if not _enabled:
        return None
    entry = _kernel_cache.get(key)
    return None if entry is None else entry[0]


def store_kernel(key: Tuple, kernel, tensors: List[Any]) -> None:
    """Store a compiled kernel; ``tensors`` pins the identities in the key."""
    if not _enabled:
        return
    _kernel_cache.put(key, (kernel, tuple(tensors)))


# --------------------------------------------------------------------------- #
# partition memo
# --------------------------------------------------------------------------- #
def _sorted_items(d) -> Tuple:
    """Order-insensitive dict signature (falls back to insertion order for
    incomparable keys, which never occurs for homogeneous color dicts)."""
    try:
        return tuple(sorted(d.items()))
    except TypeError:
        return tuple(d.items())


def partition_cache_key(tensor, initial_level: int, kind: str, bounds) -> Tuple:
    return (
        id(tensor),
        tensor.pattern_version,
        "tree",
        initial_level,
        kind,
        _sorted_items(bounds),
    )


def dense_partition_cache_key(tensor, mode_bounds) -> Tuple:
    return (
        id(tensor),
        tensor.pattern_version,
        "dense",
        _sorted_items({c: _sorted_items(pm) for c, pm in mode_bounds.items()}),
    )


def lookup_partition(key: Tuple):
    """Return ``(TensorPartition, plan_stmts)`` for ``key``, or None."""
    if not _enabled:
        return None
    entry = _partition_cache.get(key)
    return None if entry is None else (entry[0], entry[1])


def store_partition(key: Tuple, partition, plan_stmts) -> None:
    if not _enabled:
        return
    _partition_cache.put(key, (partition, tuple(plan_stmts)))


# --------------------------------------------------------------------------- #
# invalidation hooks
# --------------------------------------------------------------------------- #
def invalidate_tensor(tensor) -> int:
    """Drop every cache entry that references ``tensor``.

    Pattern bumps already self-invalidate (keys embed the version); this is
    the explicit hook for out-of-band structural surgery.  Returns the
    number of entries dropped.
    """
    tid = id(tensor)
    n = _partition_cache.drop_if(lambda k, v: k[0] == tid)
    n += _kernel_cache.drop_if(lambda k, v: tid in k[1])
    return n


def clear_caches() -> None:
    """Drop all kernel and partition cache entries (e.g. between tests)."""
    _kernel_cache.clear()
    _partition_cache.clear()


def cache_stats() -> Dict[str, int]:
    return {
        "kernel_entries": len(_kernel_cache),
        "kernel_hits": _kernel_cache.hits,
        "kernel_misses": _kernel_cache.misses,
        "partition_entries": len(_partition_cache),
        "partition_hits": _partition_cache.hits,
        "partition_misses": _partition_cache.misses,
    }
