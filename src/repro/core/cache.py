"""Compile-once / run-many caches (the amortization layer of the paper).

SpDISTAL's headline wins come from paying the cost of sparse-tensor
partitioning once and amortizing it over the many executions of an
iterative workload (SpMV inside CG, MTTKRP inside ALS — paper §VI).  This
module provides the two compiler-side layers of that amortization (the
runtime-side mapping-trace replay lives in
:mod:`repro.legion.runtime`):

* **Kernel cache** — :func:`repro.core.compile_kernel` is memoized behind
  :func:`lookup_kernel` / :func:`store_kernel`.  The key is a *canonical
  fingerprint* of the schedule (statement structure with tensors and index
  variables canonicalized by first appearance, loop order, provenance
  relations, distribution variables, piece counts, parallel units) plus
  each tensor's identity, shape, format, dtype and ``pattern_version``,
  plus a structural machine signature.  Rebuilding an identical schedule —
  even with fresh :class:`~repro.taco.index_vars.IndexVar` objects —
  therefore hits.

* **Partition memo** — coordinate-tree partitions
  (:func:`repro.core.partitioner.partition_tensor`) and dense bound
  partitions are memoized per ``(tensor, pattern_version, level, kind,
  bounds)``.  Mutating a tensor's *values* does not change its
  ``pattern_version``, so re-compiles and re-executes over updated values
  reuse the partitions; re-packing (a structural change) bumps the version
  and the stale entries simply never hit again.

* **Decision table** — :meth:`repro.api.session.Session.autotune` records
  which schedule family won for a statement under
  :func:`decision_fingerprint` — a *stable* digest of the bare statement
  structure, each tensor's pattern stats (shape, format, dtype, nnz, row
  skew bucket — not its exact pattern) and the machine signature.  Later
  auto-scheduled compiles of the same statement family replay the winning
  strategy without a search, and because the keys carry no process-local
  ids the table persists verbatim through :mod:`repro.core.store`.

Invalidation
------------
Keys embed ``Tensor.pattern_version``; a pattern bump self-invalidates all
dependent entries.  Explicit hooks are also provided: call
:func:`invalidate_tensor` after out-of-band structural surgery on a
tensor, or :func:`clear_caches` to drop everything (tests use this for
isolation).  Both caches are *size-aware* LRUs: every entry is charged an
estimated byte cost (the partition subsets and plan statements it pins,
plus, for kernels, the pieces and partitions of the compiled artifact) and
the least-recently-used entries are evicted once the cache's byte budget
(:func:`set_cache_budget`) is exceeded.  Entries hold strong references to
their tensors, which keeps ``id``-based keys unambiguous (an id can only
be reused after the entry — and thus the reference — is evicted).

Persistence
-----------
:mod:`repro.core.store` serializes cache entries next to packed tensors so
a fresh process warm-starts to the amortized regime.
:func:`iter_kernel_entries` / :func:`iter_partition_entries` expose the
live entries for export; on import the store re-keys them under the new
process's object identities and calls :func:`store_kernel` /
:func:`store_partition` as usual.

Use :func:`set_cache_enabled` (or the :func:`caches_disabled` context
manager) to force the uncached paths, e.g. when benchmarking the seed
behavior.

Thread safety
-------------
Every cache tier is safe for concurrent in-process use: each
:class:`_SizedLRU` serializes its own map/accounting mutations behind a
per-instance ``RLock`` (the in-process mirror of the cross-process
advisory ``flock`` the artifact store holds over ``index.json``), and the
machine-signature memo holds a module lock.  The discipline — every
mutation of a shared cache structure happens lexically inside a ``with
<lock>:`` block — is enforced statically by ``tools/lock_check.py``,
which runs in the tier-1 suite.  Cross-call races (two threads compiling
the same schedule and both storing) stay benign: puts are idempotent for
equal keys and byte accounting is exact either way.  *Deduplicating* that
duplicate work is the serving layer's job (:mod:`repro.api.serving`
single-flights compiles/autotunes per fingerprint).
"""
from __future__ import annotations

import contextlib
import hashlib
import threading
from collections import OrderedDict
from dataclasses import astuple
from typing import Any, Dict, Hashable, Iterator, List, Optional, Tuple

import numpy as np

from ..legion.index_space import ArraySubset
from ..taco.expr import Access, Add, Assignment, Literal, Mul
from ..taco.schedule import FuseRel, PosRel, Schedule, SplitRel

__all__ = [
    "kernel_fingerprint",
    "lookup_kernel",
    "store_kernel",
    "lookup_partition",
    "store_partition",
    "partition_cache_key",
    "dense_partition_cache_key",
    "decision_fingerprint",
    "lookup_decision",
    "store_decision",
    "lookup_aot",
    "store_aot",
    "iter_aot_entries",
    "iter_kernel_entries",
    "iter_partition_entries",
    "iter_decision_entries",
    "invalidate_tensor",
    "clear_caches",
    "cache_stats",
    "set_cache_budget",
    "cache_budgets",
    "set_cache_enabled",
    "caches_enabled",
    "caches_disabled",
]

MiB = 1024 * 1024
#: Default byte budgets.  These bound what the *caches* pin beyond the
#: tensors the user already holds: partition subsets (index arrays for
#: irregular colors), plan statements and compiled-kernel scaffolding.
_KERNEL_CACHE_BUDGET = 64 * MiB
_PARTITION_CACHE_BUDGET = 128 * MiB
#: Autotune decisions are a few hundred bytes each; 1 MiB holds thousands.
_DECISION_CACHE_BUDGET = 1 * MiB
#: Generated AOT modules are a few KiB of source plus one exec'd module.
_AOT_CACHE_BUDGET = 8 * MiB
#: Entry-count backstops so a flood of tiny entries cannot balloon the
#: key/bookkeeping overhead past the byte accounting.
_KERNEL_CACHE_MAX_ENTRIES = 512
_PARTITION_CACHE_MAX_ENTRIES = 4096
_DECISION_CACHE_MAX_ENTRIES = 4096
_AOT_CACHE_MAX_ENTRIES = 512

_enabled = True


class Unfingerprintable(Exception):
    """Raised when a schedule contains content the fingerprint cannot
    canonicalize; the caller falls back to an uncached compile."""


class _SizedLRU:
    """A byte-budgeted LRU map with hit/miss/eviction counters.

    Every entry carries an estimated byte cost; :meth:`put` evicts from the
    least-recently-used end until the total fits ``budget_bytes`` (and the
    entry count fits ``max_entries``).  The entry being inserted is never
    evicted, so a single oversized entry still caches — run-many workloads
    over one huge tensor must not silently lose their only entry.

    Thread-safe: every method serializes on the instance ``RLock`` (a
    reentrant lock so eviction inside ``put`` may run arbitrary entry
    destructors that read the cache).  ``items`` snapshots under the lock
    and yields outside it, so export iteration never holds the lock across
    caller work.
    """

    def __init__(self, budget_bytes: int, max_entries: int):
        self._lock = threading.RLock()
        self.budget_bytes = int(budget_bytes)
        self.max_entries = int(max_entries)
        self._map: "OrderedDict[Hashable, Tuple[Any, int]]" = OrderedDict()
        self.total_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable) -> Optional[Any]:
        with self._lock:
            try:
                value, _ = self._map[key]
            except KeyError:
                self.misses += 1
                return None
            self._map.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any, nbytes: int) -> None:
        with self._lock:
            nbytes = max(int(nbytes), 1)
            old = self._map.pop(key, None)
            if old is not None:
                self.total_bytes -= old[1]
            self._map[key] = (value, nbytes)
            self.total_bytes += nbytes
            while len(self._map) > 1 and (
                self.total_bytes > self.budget_bytes
                or len(self._map) > self.max_entries
            ):
                _, (_, dropped) = self._map.popitem(last=False)
                self.total_bytes -= dropped
                self.evictions += 1

    def resize(self, budget_bytes: int) -> None:
        with self._lock:
            self.budget_bytes = int(budget_bytes)
            while len(self._map) > 1 and self.total_bytes > self.budget_bytes:
                _, (_, dropped) = self._map.popitem(last=False)
                self.total_bytes -= dropped
                self.evictions += 1

    def drop_if(self, pred) -> int:
        with self._lock:
            doomed = [k for k, (v, _) in self._map.items() if pred(k, v)]
            for k in doomed:
                self.total_bytes -= self._map.pop(k)[1]
            return len(doomed)

    def items(self) -> Iterator[Tuple[Hashable, Any]]:
        with self._lock:
            snapshot = [(k, v) for k, (v, _) in self._map.items()]
        return iter(snapshot)

    def clear(self) -> None:
        with self._lock:
            self._map.clear()
            self.total_bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._map)


_kernel_cache = _SizedLRU(_KERNEL_CACHE_BUDGET, _KERNEL_CACHE_MAX_ENTRIES)
_partition_cache = _SizedLRU(_PARTITION_CACHE_BUDGET, _PARTITION_CACHE_MAX_ENTRIES)
_decision_cache = _SizedLRU(_DECISION_CACHE_BUDGET, _DECISION_CACHE_MAX_ENTRIES)
_aot_cache = _SizedLRU(_AOT_CACHE_BUDGET, _AOT_CACHE_MAX_ENTRIES)


# --------------------------------------------------------------------------- #
# entry byte accounting
# --------------------------------------------------------------------------- #
def _subset_nbytes(subset) -> int:
    """Estimated bytes a partition color's subset pins beyond the tensor."""
    if subset is None:
        return 0
    if isinstance(subset, ArraySubset):
        return int(subset.indices().nbytes) + 64
    return 64  # RectSubset / EMPTY: a handful of ints


def _legion_partition_nbytes(part) -> int:
    if part is None:
        return 0
    return sum(_subset_nbytes(s) for s in part.subsets.values()) + 64


def partition_entry_nbytes(partition, plan_stmts=()) -> int:
    """Estimated bytes a :class:`TensorPartition` memo entry holds."""
    total = 256  # dataclass scaffolding, colors list
    for p in partition.level_positions:
        total += _legion_partition_nbytes(p)
    for p in partition.level_pos_parts:
        total += _legion_partition_nbytes(p)
    total += _legion_partition_nbytes(partition.vals_part)
    total += 128 * len(tuple(plan_stmts))
    return total


def kernel_entry_nbytes(kernel) -> int:
    """Estimated bytes a compiled-kernel cache entry holds.

    Partitions shared with the partition memo are charged to both caches;
    the double count is deliberate — either cache must stay within its own
    budget even if the other is cleared.
    """
    total = 1024  # schedule, plan, roles, closures
    total += 256 * len(getattr(kernel, "pieces", ()))
    for part in getattr(kernel, "parts", {}).values():
        total += partition_entry_nbytes(part)
    return total


# --------------------------------------------------------------------------- #
# enable / disable
# --------------------------------------------------------------------------- #
def set_cache_enabled(enabled: bool) -> None:
    global _enabled
    _enabled = bool(enabled)


def caches_enabled() -> bool:
    return _enabled


@contextlib.contextmanager
def caches_disabled():
    """Temporarily force uncached compilation/partitioning (seed behavior)."""
    global _enabled
    prev = _enabled
    _enabled = False
    try:
        yield
    finally:
        _enabled = prev


def set_cache_budget(
    kernel_bytes: Optional[int] = None,
    partition_bytes: Optional[int] = None,
    decision_bytes: Optional[int] = None,
) -> None:
    """Set the byte budgets of the kernel / partition / decision caches.

    Shrinking a budget evicts LRU entries immediately.  Pass ``None`` to
    leave a budget unchanged.  See ``docs/caching.md`` for tuning guidance.
    """
    if kernel_bytes is not None:
        _kernel_cache.resize(kernel_bytes)
    if partition_bytes is not None:
        _partition_cache.resize(partition_bytes)
    if decision_bytes is not None:
        _decision_cache.resize(decision_bytes)


def cache_budgets() -> Dict[str, int]:
    return {
        "kernel_bytes": _kernel_cache.budget_bytes,
        "partition_bytes": _partition_cache.budget_bytes,
        "decision_bytes": _decision_cache.budget_bytes,
    }


# --------------------------------------------------------------------------- #
# canonical fingerprints
# --------------------------------------------------------------------------- #
class _Canon:
    """Canonicalizes tensors and index variables by first appearance, so
    structurally identical schedules built from fresh objects coincide."""

    def __init__(self):
        self.tensors: List[Any] = []
        self._tensor_tokens: Dict[int, int] = {}
        self._var_tokens: Dict[int, int] = {}

    def tensor(self, t) -> int:
        tok = self._tensor_tokens.get(id(t))
        if tok is None:
            tok = len(self.tensors)
            self._tensor_tokens[id(t)] = tok
            self.tensors.append(t)
        return tok

    def var(self, v) -> int:
        tok = self._var_tokens.get(id(v))
        if tok is None:
            tok = len(self._var_tokens)
            self._var_tokens[id(v)] = tok
        return tok

    def expr(self, e) -> Tuple:
        if isinstance(e, Access):
            return ("A", self.tensor(e.tensor), tuple(self.var(v) for v in e.indices))
        if isinstance(e, Mul):
            return ("*",) + tuple(self.expr(o) for o in e.operands)
        if isinstance(e, Add):
            return ("+",) + tuple(self.expr(o) for o in e.operands)
        if isinstance(e, Literal):
            return ("L", e.value)
        raise Unfingerprintable(f"cannot fingerprint {type(e).__name__}")


def _format_signature(fmt) -> Tuple:
    return (tuple(lf.is_compressed for lf in fmt.levels), fmt.mode_ordering)


def _tensor_state(t) -> Tuple:
    return (t.pattern_version, t.shape, _format_signature(t.format), t.dtype.str)


def _assembled_output_state(t) -> Tuple:
    """Tensor state of an *assembled* output (SpAdd-style unknown pattern).

    Executing such a statement rebuilds the output's level structure from
    scratch and bumps its ``pattern_version`` — the version the kernel
    *produces*, not one it consumes.  Keying the fingerprint on it would
    make every iteration of ``A = B + C + D`` recompile (and re-record its
    mapping traces); the output pattern is versioned separately
    (``Tensor.assembly_version``) and excluded here.  Shape, format and
    dtype still participate: those the compiled kernel does assume.
    """
    return ("out", t.shape, _format_signature(t.format), t.dtype.str)


def is_assembled_output(asg: Assignment) -> bool:
    """True when the statement assembles its sparse output's pattern anew:
    a sum of accesses aligned with a sparse LHS.  This is the single
    source of truth for the SpAdd shape — ``repro.core.compiler.classify``
    calls it to pick the spadd lowering, and :func:`kernel_fingerprint`
    calls it to exclude the LHS pattern version, so the two can never
    drift (a statement lowered as spadd is always fingerprinted as one)."""
    lhs, rhs = asg.lhs, asg.rhs
    if not isinstance(rhs, Add) or lhs.tensor.format.is_all_dense():
        return False
    ops = rhs.operands
    return len(ops) >= 2 and all(
        isinstance(o, Access) and o.indices == lhs.indices for o in ops
    )


_machine_sigs: Dict[int, Tuple[Any, Tuple]] = {}
_SIG_LOCK = threading.RLock()


def _machine_signature(machine) -> Tuple:
    # Machines are immutable after construction; memoize per object (the
    # strong reference keeps the id unambiguous while cached).
    hit = _machine_sigs.get(id(machine))
    if hit is not None and hit[0] is machine:
        return hit[1]
    sig = (machine.kind.value, machine.grid.dims, astuple(machine.node))
    with _SIG_LOCK:
        if len(_machine_sigs) > 64:
            _machine_sigs.clear()
        _machine_sigs[id(machine)] = (machine, sig)
    return sig


def kernel_fingerprint(schedule: Schedule, machine) -> Tuple:
    """The canonical cache key of ``compile_kernel(schedule, machine)``.

    Raises :class:`Unfingerprintable` for schedule content outside the
    canonical forms (callers then compile uncached).
    """
    canon = _Canon()
    asg: Assignment = schedule.assignment
    # A pipeline-synthesized statement carries an explicit kernel class
    # (repro.core.passes fusion); the marker keeps it from colliding with
    # a textually identical statement lowered through the generic engine.
    fused = getattr(asg, "fused_class", None)
    stmt = (
        "=", canon.expr(asg.lhs), canon.expr(asg.rhs), asg.accumulate,
        None if fused is None else fused.kind,
    )
    rels = []
    for rel in schedule.relations:
        if isinstance(rel, SplitRel):
            rels.append(("split", canon.var(rel.parent), canon.var(rel.outer),
                         canon.var(rel.inner), rel.factor, rel.is_divide))
        elif isinstance(rel, FuseRel):
            rels.append(("fuse", canon.var(rel.a), canon.var(rel.b),
                         canon.var(rel.fused)))
        elif isinstance(rel, PosRel):
            rels.append(("pos", canon.var(rel.coord_var), canon.var(rel.pos_var),
                         canon.expr(rel.access)))
        else:
            raise Unfingerprintable(f"unknown relation {type(rel).__name__}")
    sched_sig = (
        stmt,
        tuple(rels),
        tuple(canon.var(v) for v in schedule.loop_order),
        tuple(canon.var(v) for v in schedule.distributed),
        tuple((canon.var(v), u.value) for v, u in schedule.parallelized.items()),
        tuple(
            (canon.var(v), tuple(canon.tensor(t) for t in ts))
            for v, ts in schedule.communicated.items()
        ),
        tuple(
            (canon.expr(e), canon.var(i), canon.var(iw),
             canon.tensor(w) if w is not None else None)
            for e, i, iw, w in schedule.precomputed
        ),
    )
    tensor_ids = tuple(id(t) for t in canon.tensors)
    assembled = None
    if is_assembled_output(asg):
        # The LHS pattern version is excluded for every assembled statement,
        # including the aliased forms (``A = B + A``, and the ``accumulate``
        # sugar): execution snapshots the aliased operand's pre-install
        # arrays (see ``CompiledKernel._execute_spadd``), so the compiled
        # kernel never reads through the stale structure and each
        # re-assembly can reuse the kernel and replay its mapping traces.
        assembled = asg.lhs.tensor
    tensor_states = tuple(
        _assembled_output_state(t) if t is assembled else _tensor_state(t)
        for t in canon.tensors
    )
    return (sched_sig, tensor_ids, tensor_states, _machine_signature(machine))


# --------------------------------------------------------------------------- #
# kernel cache
# --------------------------------------------------------------------------- #
def lookup_kernel(key: Tuple):
    """Return the cached :class:`CompiledKernel` for ``key``, or None."""
    if not _enabled:
        return None
    entry = _kernel_cache.get(key)
    return None if entry is None else entry[0]


def store_kernel(key: Tuple, kernel, tensors: List[Any]) -> None:
    """Store a compiled kernel; ``tensors`` pins the identities in the key."""
    if not _enabled:
        return
    _kernel_cache.put(key, (kernel, tuple(tensors)), kernel_entry_nbytes(kernel))


def iter_kernel_entries() -> Iterator[Tuple[Tuple, Any, Tuple]]:
    """Yield every live kernel entry as ``(key, kernel, pinned_tensors)``
    (LRU order, oldest first).  Used by :mod:`repro.core.store` to export
    the cache next to packed tensors."""
    for key, (kernel, tensors) in _kernel_cache.items():
        yield key, kernel, tensors


# --------------------------------------------------------------------------- #
# partition memo
# --------------------------------------------------------------------------- #
def _sorted_items(d) -> Tuple:
    """Order-insensitive dict signature (falls back to insertion order for
    incomparable keys, which never occurs for homogeneous color dicts)."""
    try:
        return tuple(sorted(d.items()))
    except TypeError:
        return tuple(d.items())


def partition_cache_key(tensor, initial_level: int, kind: str, bounds) -> Tuple:
    return (
        id(tensor),
        tensor.pattern_version,
        "tree",
        initial_level,
        kind,
        _sorted_items(bounds),
    )


def dense_partition_cache_key(tensor, mode_bounds) -> Tuple:
    return (
        id(tensor),
        tensor.pattern_version,
        "dense",
        _sorted_items({c: _sorted_items(pm) for c, pm in mode_bounds.items()}),
    )


def lookup_partition(key: Tuple):
    """Return ``(TensorPartition, plan_stmts)`` for ``key``, or None."""
    if not _enabled:
        return None
    entry = _partition_cache.get(key)
    return None if entry is None else (entry[0], entry[1])


def store_partition(key: Tuple, partition, plan_stmts) -> None:
    if not _enabled:
        return
    stmts = tuple(plan_stmts)
    _partition_cache.put(
        key, (partition, stmts), partition_entry_nbytes(partition, stmts)
    )


def iter_partition_entries() -> Iterator[Tuple[Tuple, Any, Tuple]]:
    """Yield every live partition-memo entry as ``(key, partition,
    plan_stmts)`` (LRU order, oldest first)."""
    for key, (partition, stmts) in _partition_cache.items():
        yield key, partition, stmts


# --------------------------------------------------------------------------- #
# autotune decision table
# --------------------------------------------------------------------------- #
def _pattern_stats(t) -> Tuple:
    """Structural statistics of one tensor for the decision key.

    Distribution choice depends on the tensor *family*, not its exact
    non-zero pattern: the same statement over a re-packed matrix with the
    same shape, density and row skew should replay the tuned decision
    without a new search.  So the key deliberately excludes
    ``pattern_version`` and hashes coarse stats instead: shape, format,
    dtype, non-zero count, and a log2 *skew bucket* of the heaviest
    compressed segment relative to the mean (the statistic that separates
    rows-balanced from non-zeros-balanced mappings in the paper's Figs.
    10-12).
    """
    base = (tuple(t.shape), _format_signature(t.format), t.dtype.str, int(t.nnz))
    skew_bucket = 0
    for lvl in getattr(t, "levels", ()):
        if getattr(lvl, "pos", None) is None:
            continue
        seg = lvl.counts()  # children per parent; rect pos is inclusive
        total = int(seg.sum())
        if len(seg) and total > 0:
            ratio = float(seg.max()) * len(seg) / total
            skew_bucket = int(np.ceil(np.log2(max(ratio, 1.0))))
        break
    return base + (skew_bucket,)


def decision_fingerprint(assignment: Assignment, machine) -> str:
    """The stable (process-independent) key of one autotune decision.

    Canonicalizes the *bare statement* (no scheduling relations — the
    decision is precisely about which schedule family to synthesize), the
    per-tensor pattern stats of :func:`_pattern_stats` in canonical order,
    and the structural machine signature, then digests the result.  Two
    processes tuning the same statement shape over equal-stat tensors on
    equivalent machines agree on the key, which is what lets
    :mod:`repro.core.store` warm-start the table.  Raises
    :class:`Unfingerprintable` for expression content outside the canonical
    forms (callers then skip the table).
    """
    canon = _Canon()
    stmt = (
        "=",
        canon.expr(assignment.lhs),
        canon.expr(assignment.rhs),
        assignment.accumulate,
    )
    stats = tuple(_pattern_stats(t) for t in canon.tensors)
    blob = repr((stmt, stats, _machine_signature(machine))).encode()
    return "dt:" + hashlib.sha256(blob).hexdigest()


def has_decisions() -> bool:
    """True when the decision table holds any entry at all.

    The cheap pre-check for the auto-schedule hot path: computing a
    decision fingerprint walks each sparse tensor's ``pos`` array, which
    an iterative solver loop should not pay per statement when nothing
    was ever tuned (the common case).
    """
    return _enabled and len(_decision_cache) > 0


def lookup_decision(key: str) -> Optional[Dict[str, Any]]:
    """The recorded autotune decision for ``key``, or None."""
    if not _enabled:
        return None
    return _decision_cache.get(key)


def store_decision(key: str, decision: Dict[str, Any]) -> None:
    """Record one autotune decision (a small JSON-able dict; at least a
    ``"strategy"`` entry).  Sized into the decision table's byte budget."""
    if not _enabled:
        return
    nbytes = len(key) + len(repr(decision)) + 64
    _decision_cache.put(key, dict(decision), nbytes)


def iter_decision_entries() -> Iterator[Tuple[str, Dict[str, Any]]]:
    """Yield every live decision as ``(key, decision)`` (LRU order).  Keys
    are process-independent digests, so :mod:`repro.core.store` persists
    entries verbatim — no re-keying on load."""
    for key, decision in _decision_cache.items():
        yield key, dict(decision)


# --------------------------------------------------------------------------- #
# AOT generated-module cache
# --------------------------------------------------------------------------- #
def lookup_aot(key: str):
    """The cached :class:`~repro.codegen.registry.AotEntry` for a stable
    fingerprint digest, or None."""
    if not _enabled:
        return None
    return _aot_cache.get(key)


def store_aot(key: str, entry, nbytes: Optional[int] = None) -> None:
    """Cache one generated AOT module entry under its stable fingerprint."""
    if not _enabled:
        return
    if nbytes is None:
        nbytes = len(getattr(entry, "source", "")) + 512
    _aot_cache.put(key, entry, nbytes)


def iter_aot_entries() -> Iterator[Tuple[str, Any]]:
    """Yield every live AOT entry as ``(fingerprint, entry)`` (LRU order).
    Keys are process-independent digests, so :mod:`repro.core.store`
    persists the generated source verbatim — no re-keying on load."""
    for key, entry in _aot_cache.items():
        yield key, entry


# --------------------------------------------------------------------------- #
# invalidation hooks
# --------------------------------------------------------------------------- #
def invalidate_tensor(tensor) -> int:
    """Drop every cache entry that references ``tensor``.

    Pattern bumps already self-invalidate (keys embed the version); this is
    the explicit hook for out-of-band structural surgery.  Returns the
    number of entries dropped.
    """
    tid = id(tensor)
    n = _partition_cache.drop_if(lambda k, v: k[0] == tid)
    n += _kernel_cache.drop_if(lambda k, v: tid in k[1])
    return n


def clear_caches() -> None:
    """Drop all kernel, partition and decision entries (e.g. between tests)."""
    _kernel_cache.clear()
    _partition_cache.clear()
    _decision_cache.clear()
    _aot_cache.clear()


def cache_stats() -> Dict[str, int]:
    return {
        "kernel_entries": len(_kernel_cache),
        "kernel_hits": _kernel_cache.hits,
        "kernel_misses": _kernel_cache.misses,
        "kernel_bytes": _kernel_cache.total_bytes,
        "kernel_evictions": _kernel_cache.evictions,
        "partition_entries": len(_partition_cache),
        "partition_hits": _partition_cache.hits,
        "partition_misses": _partition_cache.misses,
        "partition_bytes": _partition_cache.total_bytes,
        "partition_evictions": _partition_cache.evictions,
        "decision_entries": len(_decision_cache),
        "decision_hits": _decision_cache.hits,
        "decision_misses": _decision_cache.misses,
        "decision_bytes": _decision_cache.total_bytes,
        "decision_evictions": _decision_cache.evictions,
        "aot_entries": len(_aot_cache),
        "aot_hits": _aot_cache.hits,
        "aot_misses": _aot_cache.misses,
        "aot_bytes": _aot_cache.total_bytes,
        "aot_evictions": _aot_cache.evictions,
    }
