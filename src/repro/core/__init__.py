"""SpDISTAL core: compiling distributed sparse tensor computations.

The paper's contribution: format abstractions for sparse tensor
partitioning (Table I), the coordinate-tree partitioning algorithm
(§IV-A), the code generation algorithm (Fig. 9a) and sparse output
assembly (§V-B).
"""
from .plan import PartitioningPlan, PlanStmt
from .cache import (
    cache_budgets,
    cache_stats,
    caches_disabled,
    caches_enabled,
    clear_caches,
    invalidate_tensor,
    kernel_fingerprint,
    set_cache_budget,
    set_cache_enabled,
)
from .levels import (
    CompressedLevelFunctions,
    DenseLevelFunctions,
    LevelFunctions,
    level_functions_for,
    shrink_dense_partition,
)
from .partitioner import (
    TensorPartition,
    partition_dense_tensor,
    partition_tensor,
    replicated_partition,
)
from .assembly import adopt_pattern, install_assembled_output, pattern_source, scan_counts
from .compiler import (
    CompiledKernel,
    ExecutionResult,
    KernelClass,
    Piece,
    classify,
    compile_kernel,
    compile_statement,
)
from .program import CompiledProgram, ProgramResult, compile_program
from .store import (
    PackedArtifact,
    load_packed,
    read_manifest,
    save_packed,
    stable_fingerprint,
)
from .store_index import ArtifactStore, GCStats, fingerprint_key, gc_artifacts

__all__ = [
    "PartitioningPlan", "PlanStmt",
    "cache_budgets", "cache_stats", "caches_disabled", "caches_enabled",
    "clear_caches", "invalidate_tensor", "kernel_fingerprint",
    "set_cache_budget", "set_cache_enabled",
    "CompressedLevelFunctions", "DenseLevelFunctions", "LevelFunctions",
    "level_functions_for", "shrink_dense_partition",
    "TensorPartition", "partition_dense_tensor", "partition_tensor",
    "replicated_partition",
    "adopt_pattern", "install_assembled_output", "pattern_source", "scan_counts",
    "CompiledKernel", "ExecutionResult", "KernelClass", "Piece",
    "classify", "compile_kernel", "compile_statement",
    "CompiledProgram", "ProgramResult", "compile_program",
    "PackedArtifact", "load_packed", "read_manifest", "save_packed",
    "stable_fingerprint",
    "ArtifactStore", "GCStats", "fingerprint_key", "gc_artifacts",
]
