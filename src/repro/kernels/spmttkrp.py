"""SpMTTKRP leaf kernels: ``A(i,l) = B(i,j,k) * C(j,l) * D(k,l)``.

For CSF B the fiber level supplies ``j`` (via ``crd1``) and the leaf level
``k`` (via ``crd2``); for the DDC "patents" format the (i, j) fiber space
is dense, so ``j = fiber % n1`` and ``i = fiber // n1``.  The row-based
variant owns disjoint ``i`` ranges; the non-zero-based variant splits leaf
positions exactly and reduces aliased output rows (the GPU schedule in the
paper, which wins through load balance).

Index notation: ``A(i,l) = B(i,j,k) * C(j,l) * D(k,l)`` — paper §VI-A
(higher-order kernels), Fig. 10/12 (evaluation).
"""
from __future__ import annotations

import numpy as np

from ..legion.machine import Work
from .segment import row_of_positions, segment_sum_matrix

__all__ = ["spmttkrp_csf", "spmttkrp_ddc", "spmttkrp_reference"]

F8 = 8


def _mttkrp_body(
    i_ids: np.ndarray,
    j_ids: np.ndarray,
    k_ids: np.ndarray,
    vals_piece: np.ndarray,
    C: np.ndarray,
    D: np.ndarray,
    out: np.ndarray,
    accumulate: bool,
) -> Work:
    nnz = vals_piece.size
    if nnz == 0:
        return Work.zero()
    l = C.shape[1]
    prods = vals_piece[:, None] * C[j_ids, :] * D[k_ids, :]
    r0, r1 = int(i_ids[0]), int(i_ids[-1])
    acc = segment_sum_matrix(prods, i_ids - r0, r1 - r0 + 1)
    if accumulate:
        out[r0 : r1 + 1, :] += acc
    else:
        out[r0 : r1 + 1, :] = acc
    return Work(
        flops=3.0 * nnz * l,
        bytes=float(nnz * (2 * l + 3) * F8 + (r1 - r0 + 1) * l * F8),
    )


def spmttkrp_csf(
    pos1: np.ndarray,
    crd1: np.ndarray,
    pos2: np.ndarray,
    crd2: np.ndarray,
    vals: np.ndarray,
    C: np.ndarray,
    D: np.ndarray,
    out: np.ndarray,
    p0: int,
    p1: int,
    *,
    accumulate: bool,
) -> Work:
    """Process leaf positions ``[p0, p1]`` of a CSF tensor."""
    if p1 < p0:
        return Work.zero()
    positions = np.arange(p0, p1 + 1, dtype=np.int64)
    fibers = row_of_positions(pos2[:, 0], positions)
    i_ids = row_of_positions(pos1[:, 0], fibers)
    j_ids = crd1[fibers]
    k_ids = crd2[positions]
    return _mttkrp_body(i_ids, j_ids, k_ids, vals[p0 : p1 + 1], C, D, out, accumulate)


def spmttkrp_ddc(
    n1: int,
    pos2: np.ndarray,
    crd2: np.ndarray,
    vals: np.ndarray,
    C: np.ndarray,
    D: np.ndarray,
    out: np.ndarray,
    p0: int,
    p1: int,
    *,
    accumulate: bool,
) -> Work:
    """Process leaf positions of a {Dense, Dense, Compressed} tensor."""
    if p1 < p0:
        return Work.zero()
    positions = np.arange(p0, p1 + 1, dtype=np.int64)
    fibers = row_of_positions(pos2[:, 0], positions)
    i_ids = fibers // n1
    j_ids = fibers % n1
    k_ids = crd2[positions]
    return _mttkrp_body(i_ids, j_ids, k_ids, vals[p0 : p1 + 1], C, D, out, accumulate)


def spmttkrp_reference(pos1, crd1, pos2, crd2, vals, C, D, out, p0, p1) -> Work:
    nnz = 0
    f_starts = pos2[:, 0]
    i_starts = pos1[:, 0]
    for p in range(p0, p1 + 1):
        f = int(np.searchsorted(f_starts, p, side="right") - 1)
        i = int(np.searchsorted(i_starts, f, side="right") - 1)
        j = int(crd1[f])
        k = int(crd2[p])
        out[i, :] += vals[p] * C[j, :] * D[k, :]
        nnz += 1
    l = C.shape[1]
    return Work(flops=3.0 * nnz * l, bytes=float(nnz * (2 * l + 3) * F8))
