"""SpMM leaf kernels: ``A(i,j) = B(i,k) * C(k,j)`` with sparse B, dense C.

The row-based piece uses the schedule of Senanayake et al. for the leaf
(tight CSR traversal — realized here as a per-piece SciPy CSR matmul, the
moral equivalent of the vendor kernel the paper calls at the leaves).  The
non-zero-based piece (the GPU schedule) balances positions exactly but
replicates C and reduces aliased output rows.

Index notation: ``A(i,j) = B(i,k) * C(k,j)`` — paper §VI-A (algorithms,
including the memory-conserving "SpDISTAL-Batched" variant), Fig. 10/11
(evaluation).
"""
from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..legion.machine import Work
from .segment import row_of_positions, segment_sum_matrix

__all__ = ["spmm_rows", "spmm_nonzeros", "spmm_rows_reference"]

F8 = 8


def _local_csr(pos: np.ndarray, crd: np.ndarray, vals: np.ndarray, r0: int, r1: int, ncols: int):
    """View rows [r0, r1] of the rect-pos CSR as a SciPy CSR block."""
    s = int(pos[r0, 0])
    e = int(pos[r1, 1])
    indptr = np.empty(r1 - r0 + 2, dtype=np.int64)
    indptr[:-1] = pos[r0 : r1 + 1, 0] - s
    indptr[-1] = e + 1 - s
    return sp.csr_matrix(
        (vals[s : e + 1], crd[s : e + 1], indptr),
        shape=(r1 - r0 + 1, ncols),
    ), e + 1 - s


def spmm_rows(
    pos: np.ndarray,
    crd: np.ndarray,
    vals: np.ndarray,
    C: np.ndarray,
    out: np.ndarray,
    r0: int,
    r1: int,
) -> Work:
    """Compute output rows ``[r0, r1]`` of ``A = B @ C``."""
    if r1 < r0:
        return Work.zero()
    k = C.shape[1]
    block, nnz = _local_csr(pos, crd, vals, r0, r1, C.shape[0])
    out[r0 : r1 + 1, :] = block @ C
    return Work(
        flops=2.0 * nnz * k,
        bytes=float(nnz * (2 * F8 + F8 * k) + (r1 - r0 + 1) * k * F8),
    )


def spmm_nonzeros(
    pos: np.ndarray,
    crd: np.ndarray,
    vals: np.ndarray,
    C: np.ndarray,
    out: np.ndarray,
    p0: int,
    p1: int,
) -> Work:
    """Accumulate positions ``[p0, p1]`` into the (aliased) output rows."""
    if p1 < p0:
        return Work.zero()
    k = C.shape[1]
    nnz = p1 - p0 + 1
    cols = crd[p0 : p1 + 1]
    prods = vals[p0 : p1 + 1, None] * C[cols, :]
    rows = row_of_positions(pos[:, 0], np.arange(p0, p1 + 1, dtype=np.int64))
    r0, r1 = int(rows[0]), int(rows[-1])
    out[r0 : r1 + 1, :] += segment_sum_matrix(prods, rows - r0, r1 - r0 + 1)
    return Work(
        flops=2.0 * nnz * k,
        bytes=float(nnz * (2 * F8 + F8 * k) + (r1 - r0 + 1) * k * F8),
    )


def spmm_rows_reference(pos, crd, vals, C, out, r0, r1) -> Work:
    """Loop-nest reference for cross-validation."""
    nnz = 0
    k = C.shape[1]
    for i in range(r0, r1 + 1):
        acc = np.zeros(k)
        for p in range(pos[i, 0], pos[i, 1] + 1):
            acc += vals[p] * C[crd[p], :]
            nnz += 1
        out[i, :] = acc
    return Work(flops=2.0 * nnz * k, bytes=float(nnz * (2 + k) * F8))
