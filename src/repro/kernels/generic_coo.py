"""Generic sparse tensor algebra engine over COO data.

SpDISTAL supports *all* of tensor algebra; the specialized leaf kernels
cover the paper's evaluation kernels, and every other expression lowers to
this engine: operands are materialized as COO sub-tensors, products are
evaluated by pairwise sort-merge joins on shared index variables, sums by
concatenation, and reduction variables are folded with a grouped segment
sum.  Everything is vectorized NumPy; no Python-level loops over non-zeros.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..legion.machine import Work
from ..taco.expr import Access, Add, IndexExpr, Literal, Mul
from ..taco.index_vars import IndexVar

__all__ = [
    "CooData",
    "coo_of_access",
    "evaluate_generic",
    "fits_int64",
    "lex_ranks",
]

_INT64_MAX = np.iinfo(np.int64).max


def fits_int64(sizes: Sequence[int]) -> bool:
    """True when a row-major flattening of these dimension sizes cannot
    overflow int64 (the product is computed with Python's bignum ints)."""
    prod = 1
    for s in sizes:
        prod *= max(int(s), 1)
    return prod <= _INT64_MAX


def _lex_groups(rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Lexicographically sort columns and mark group starts.

    Returns ``(order, change)`` where ``rows[:, order]`` is lex-sorted and
    ``change[i]`` is True at the first column of each run of equal columns.
    The shared core of :func:`lex_ranks` and the overflow-safe reduction.
    """
    n = rows.shape[1]
    order = np.lexsort(rows[::-1])
    sorted_rows = rows[:, order]
    change = np.zeros(n, dtype=bool)
    change[0] = True
    if n > 1:
        change[1:] = (sorted_rows[:, 1:] != sorted_rows[:, :-1]).any(axis=0)
    return order, change


def lex_ranks(rows: np.ndarray) -> np.ndarray:
    """Dense lexicographic ranks of the columns of ``rows``.

    Equal columns receive equal ranks and the rank order matches the
    lexicographic order of the columns — i.e. the same order the flattened
    ``key * size + coord`` key induces, but immune to int64 overflow for
    huge dimension products.  Ranks are only comparable within one call;
    to compare two fragments, rank their concatenated columns jointly.
    """
    rows = np.asarray(rows)
    if rows.ndim == 1:
        rows = rows[None, :]
    n = rows.shape[1]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if rows.shape[0] == 0:
        return np.zeros(n, dtype=np.int64)
    order, change = _lex_groups(rows)
    ranks = np.empty(n, dtype=np.int64)
    ranks[order] = np.cumsum(change) - 1
    return ranks


@dataclass
class CooData:
    """A COO tensor fragment labelled by index variables."""

    vars: Tuple[IndexVar, ...]
    coords: np.ndarray  # (len(vars), nnz) int64
    vals: np.ndarray

    @property
    def nnz(self) -> int:
        return self.vals.size

    def rows_for(self, vars: Sequence[IndexVar]) -> np.ndarray:
        """The coordinate rows of ``vars``, stacked ``(len(vars), nnz)``."""
        sel = [self.vars.index(v) for v in vars]
        return self.coords[sel] if sel else np.empty((0, self.nnz), dtype=np.int64)

    def key_for(self, vars: Sequence[IndexVar], sizes: Dict[IndexVar, int]) -> np.ndarray:
        """Flatten the coordinates of ``vars`` into a single sortable key.

        When the dimension product would overflow int64, falls back to
        :func:`lex_ranks` over the coordinate rows — order- and
        equality-consistent within this fragment, but (unlike the flattened
        form) not decodable and not comparable across fragments.
        """
        if not fits_int64([sizes[v] for v in vars]):
            return lex_ranks(self.rows_for(vars))
        key = np.zeros(self.nnz, dtype=np.int64)
        for v in vars:
            key = key * sizes[v] + self.coords[self.vars.index(v)]
        return key


def coo_of_access(access: Access, restrict: Optional[Dict[IndexVar, Tuple[int, int]]] = None) -> CooData:
    """Materialize an access as COO, optionally restricted per-variable.

    ``restrict`` maps index variables to inclusive coordinate bounds — the
    per-piece sub-tensor selection of a distributed execution.
    """
    coords_list, vals = access.tensor.to_coo()
    coords = np.stack([np.asarray(c) for c in coords_list]) if coords_list else np.empty((0, 0))
    if restrict:
        mask = np.ones(vals.size, dtype=bool)
        for dim, v in enumerate(access.indices):
            if v in restrict:
                lo, hi = restrict[v]
                mask &= (coords[dim] >= lo) & (coords[dim] <= hi)
        coords = coords[:, mask]
        vals = vals[mask]
    return CooData(tuple(access.indices), coords, vals)


def _multiply(a: CooData, b: CooData, sizes: Dict[IndexVar, int]) -> Tuple[CooData, float]:
    """Sort-merge join on shared variables; returns the product and flop count."""
    shared = [v for v in a.vars if v in b.vars]
    out_vars = list(a.vars) + [v for v in b.vars if v not in a.vars]
    if not shared:
        # outer product
        na, nb = a.nnz, b.nnz
        ia = np.repeat(np.arange(na, dtype=np.int64), nb)
        ib = np.tile(np.arange(nb, dtype=np.int64), na)
    else:
        if fits_int64([sizes[v] for v in shared]):
            ka = a.key_for(shared, sizes)
            kb = b.key_for(shared, sizes)
        else:
            # Joint ranking keeps the keys comparable across both operands
            # where per-fragment flattening would overflow int64.
            both = np.concatenate([a.rows_for(shared), b.rows_for(shared)], axis=1)
            ranks = lex_ranks(both)
            ka, kb = ranks[: a.nnz], ranks[a.nnz :]
        order = np.argsort(kb, kind="stable")
        kb_sorted = kb[order]
        lo = np.searchsorted(kb_sorted, ka, side="left")
        hi = np.searchsorted(kb_sorted, ka, side="right")
        counts = hi - lo
        ia = np.repeat(np.arange(a.nnz, dtype=np.int64), counts)
        if counts.sum() == 0:
            ib = np.empty(0, dtype=np.int64)
        else:
            steps = np.ones(int(counts.sum()), dtype=np.int64)
            ends = np.cumsum(counts[counts > 0])
            first = lo[counts > 0]
            steps[0] = first[0]
            steps[ends[:-1]] = first[1:] - (first[:-1] + counts[counts > 0][:-1] - 1)
            ib = order[np.cumsum(steps)]
    rows = []
    for v in out_vars:
        if v in a.vars:
            rows.append(a.coords[a.vars.index(v)][ia])
        else:
            rows.append(b.coords[b.vars.index(v)][ib])
    coords = np.stack(rows) if rows else np.empty((0, ia.size))
    vals = a.vals[ia] * b.vals[ib]
    return CooData(tuple(out_vars), coords, vals), float(vals.size)


def _reduce_to(t: CooData, keep: Sequence[IndexVar], sizes: Dict[IndexVar, int]) -> CooData:
    """Sum out every variable not in ``keep``; coalesce duplicates."""
    keep = [v for v in keep if v in t.vars] + []
    if t.nnz == 0:
        return CooData(tuple(keep), np.empty((len(keep), 0), dtype=np.int64), t.vals[:0])
    if keep and not fits_int64([sizes[v] for v in keep]):
        # Flattened keys would overflow: group by lexsorted coordinate rows
        # directly (the coordinates come from the sort, no decode needed).
        rows = t.rows_for(keep)
        order, change = _lex_groups(rows)
        group = np.cumsum(change) - 1
        vals = np.bincount(group, weights=t.vals[order], minlength=int(group[-1]) + 1)
        coords = np.ascontiguousarray(rows[:, order][:, change])
        return CooData(tuple(keep), coords, vals.astype(t.vals.dtype))
    key = t.key_for(keep, sizes) if keep else np.zeros(t.nnz, dtype=np.int64)
    uniq, inverse = np.unique(key, return_inverse=True)
    vals = np.bincount(inverse, weights=t.vals, minlength=uniq.size)
    coords = np.empty((len(keep), uniq.size), dtype=np.int64)
    rem = uniq.copy()
    for d in range(len(keep) - 1, -1, -1):
        size = sizes[keep[d]]
        coords[d] = rem % size
        rem //= size
    return CooData(tuple(keep), coords, vals.astype(t.vals.dtype))


def _eval(expr: IndexExpr, sizes, restrict) -> Tuple[CooData, float]:
    if isinstance(expr, Access):
        return coo_of_access(expr, restrict), 0.0
    if isinstance(expr, Literal):
        return CooData((), np.empty((0, 1), dtype=np.int64), np.array([expr.value])), 0.0
    if isinstance(expr, Mul):
        acc, flops = _eval(expr.operands[0], sizes, restrict)
        for op in expr.operands[1:]:
            rhs, f2 = _eval(op, sizes, restrict)
            acc, f3 = _multiply(acc, rhs, sizes)
            flops += f2 + f3
        return acc, flops
    if isinstance(expr, Add):
        parts, flops = [], 0.0
        out_vars: List[IndexVar] = []
        for op in expr.operands:
            p, f = _eval(op, sizes, restrict)
            parts.append(p)
            flops += f
            for v in p.vars:
                if v not in out_vars:
                    out_vars.append(v)
        aligned = []
        for p in parts:
            if set(p.vars) != set(out_vars):
                raise ValueError("addition operands must share index variables")
            perm = [p.vars.index(v) for v in out_vars]
            aligned.append(CooData(tuple(out_vars), p.coords[perm], p.vals))
        coords = np.concatenate([p.coords for p in aligned], axis=1)
        vals = np.concatenate([p.vals for p in aligned])
        merged = _reduce_to(CooData(tuple(out_vars), coords, vals), out_vars, sizes)
        return merged, flops + vals.size
    raise TypeError(f"cannot evaluate {type(expr).__name__}")


def evaluate_generic(
    assignment,
    sizes: Dict[IndexVar, int],
    restrict: Optional[Dict[IndexVar, Tuple[int, int]]] = None,
) -> Tuple[CooData, Work]:
    """Evaluate a TIN statement on (a piece of) its operands.

    Returns the result as COO over the LHS variables plus the work done.
    """
    rhs, flops = _eval(assignment.rhs, sizes, restrict)
    result = _reduce_to(rhs, list(assignment.lhs.indices), sizes)
    touched = sum(a.tensor.nnz for a in assignment.rhs.accesses())
    return result, Work(flops=2.0 * max(flops, result.nnz), bytes=float(touched * 24))
