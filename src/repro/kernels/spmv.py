"""SpMV leaf kernels: ``a(i) = B(i,j) * c(j)`` (paper §II-D).

Two distributed algorithms from the paper:

* **row-based** — each piece owns a contiguous row range of B (universe
  partition of level 0) plus all of ``c``; no reduction needed;
* **non-zero-based** — each piece owns a contiguous range of B's non-zero
  positions (non-zero partition of level 1); pieces that share a boundary
  row reduce into the output.

Both compute on the rect-``pos`` arrays with NumPy segment reductions and
return the roofline :class:`~repro.legion.machine.Work` they performed.

Index notation: ``a(i) = B(i,j) * c(j)`` — paper §II-D (schedules), §VI-A
(CPU/GPU algorithm choice), Fig. 10/11/13 (evaluation).
"""
from __future__ import annotations

from typing import Tuple

import numpy as np

from ..legion.machine import Work
from .segment import row_of_positions, segment_sum

__all__ = ["spmv_rows", "spmv_nonzeros", "spmv_rows_reference"]

F8 = 8  # bytes per float64 / int64


def spmv_rows(
    pos: np.ndarray,
    crd: np.ndarray,
    vals: np.ndarray,
    c: np.ndarray,
    out: np.ndarray,
    r0: int,
    r1: int,
) -> Work:
    """Compute rows ``[r0, r1]`` of ``out = B @ c`` on one piece."""
    if r1 < r0:
        return Work.zero()
    lo = pos[r0 : r1 + 1, 0]
    hi = pos[r0 : r1 + 1, 1]
    lens = np.maximum(hi - lo + 1, 0)
    nnz = int(lens.sum())
    if nnz == 0:
        out[r0 : r1 + 1] = 0.0
        return Work(0.0, (r1 - r0 + 1) * F8)
    s, e = int(lo[0]), int(hi[-1])
    prods = vals[s : e + 1] * c[crd[s : e + 1]]
    rows = np.repeat(np.arange(r1 - r0 + 1, dtype=np.int64), lens)
    out[r0 : r1 + 1] = segment_sum(prods, rows, r1 - r0 + 1)
    return Work(flops=2.0 * nnz, bytes=float(nnz * 3 * F8 + (r1 - r0 + 1) * 2 * F8))


def spmv_nonzeros(
    pos: np.ndarray,
    crd: np.ndarray,
    vals: np.ndarray,
    c: np.ndarray,
    out: np.ndarray,
    p0: int,
    p1: int,
) -> Work:
    """Accumulate positions ``[p0, p1]`` of B into ``out`` (may alias rows)."""
    if p1 < p0:
        return Work.zero()
    nnz = p1 - p0 + 1
    prods = vals[p0 : p1 + 1] * c[crd[p0 : p1 + 1]]
    rows = row_of_positions(pos[:, 0], np.arange(p0, p1 + 1, dtype=np.int64))
    r0, r1 = int(rows[0]), int(rows[-1])
    out[r0 : r1 + 1] += segment_sum(prods, rows - r0, r1 - r0 + 1)
    return Work(flops=2.0 * nnz, bytes=float(nnz * 3 * F8 + (r1 - r0 + 1) * 2 * F8))


def spmv_rows_reference(
    pos: np.ndarray,
    crd: np.ndarray,
    vals: np.ndarray,
    c: np.ndarray,
    out: np.ndarray,
    r0: int,
    r1: int,
) -> Work:
    """The straight-line loop nest the compiler's pseudo-code emits (Fig. 9b).

    Kept as the cross-validation reference for the vectorized kernel.
    """
    nnz = 0
    for i in range(r0, r1 + 1):
        acc = 0.0
        for p in range(pos[i, 0], pos[i, 1] + 1):
            acc += vals[p] * c[crd[p]]
            nnz += 1
        out[i] = acc
    return Work(flops=2.0 * nnz, bytes=float(nnz * 3 * F8))
