"""Leaf kernels executed by the pieces of a distributed computation.

Each kernel has a vectorized implementation (the analogue of the
generated C++/CUDA or vendor-library leaf in the paper) plus, for the core
kernels, a straight loop-nest reference used for cross-validation.  The
generic COO engine covers every tensor algebra expression the specialized
kernels do not match.
"""
from .segment import (
    expand_ranges,
    piece_range,
    row_of_positions,
    segment_sum,
    segment_sum_matrix,
)
from .spmv import spmv_nonzeros, spmv_rows, spmv_rows_reference
from .spmm import spmm_nonzeros, spmm_rows, spmm_rows_reference
from .sddmm import sddmm_nonzeros, sddmm_reference, sddmm_rows
from .spadd import spadd3_fill, spadd3_symbolic
from .spttv import spttv_fibers, spttv_nonzeros, spttv_reference
from .spmttkrp import spmttkrp_csf, spmttkrp_ddc, spmttkrp_reference
from .generic_coo import CooData, coo_of_access, evaluate_generic, fits_int64, lex_ranks

__all__ = [
    "expand_ranges", "piece_range", "row_of_positions", "segment_sum",
    "segment_sum_matrix",
    "spmv_nonzeros", "spmv_rows", "spmv_rows_reference",
    "spmm_nonzeros", "spmm_rows", "spmm_rows_reference",
    "sddmm_nonzeros", "sddmm_reference", "sddmm_rows",
    "spadd3_fill", "spadd3_symbolic",
    "spttv_fibers", "spttv_nonzeros", "spttv_reference",
    "spmttkrp_csf", "spmttkrp_ddc", "spmttkrp_reference",
    "CooData", "coo_of_access", "evaluate_generic", "fits_int64", "lex_ranks",
]
