"""SpTTV leaf kernels: ``A(i,j) = B(i,j,k) * c(k)``.

The output keeps B's (i, j) pattern (paper §V-B): for CSF B, ``A`` is a CSR
matrix sharing B's first two levels; for the DDC ("patents") format the
(i, j) fiber space is dense and ``A`` is a dense matrix.  Either way the
leaf reduces each fiber's positions against ``c`` — one segmented sum over
the fiber parent space.

Index notation: ``A(i,j) = B(i,j,k) * c(k)`` — paper §V-B (pattern
preservation), §VI-A (higher-order kernels), Fig. 10/12 (evaluation).
"""
from __future__ import annotations

import numpy as np

from ..legion.machine import Work
from .segment import row_of_positions, segment_sum

__all__ = ["spttv_fibers", "spttv_nonzeros", "spttv_reference"]

F8 = 8


def spttv_fibers(
    pos2: np.ndarray,
    crd2: np.ndarray,
    vals: np.ndarray,
    c: np.ndarray,
    out_vals: np.ndarray,
    f0: int,
    f1: int,
) -> Work:
    """Reduce fibers ``[f0, f1]`` (entries of B's second level) into out_vals."""
    if f1 < f0:
        return Work.zero()
    lo = pos2[f0 : f1 + 1, 0]
    hi = pos2[f0 : f1 + 1, 1]
    lens = np.maximum(hi - lo + 1, 0)
    nnz = int(lens.sum())
    if nnz == 0:
        out_vals[f0 : f1 + 1] = 0.0
        return Work(0.0, (f1 - f0 + 1) * F8)
    s = int(lo[0])
    e = s + nnz - 1
    prods = vals[s : e + 1] * c[crd2[s : e + 1]]
    fibers = np.repeat(np.arange(f1 - f0 + 1, dtype=np.int64), lens)
    out_vals[f0 : f1 + 1] = segment_sum(prods, fibers, f1 - f0 + 1)
    return Work(flops=2.0 * nnz, bytes=float(nnz * 3 * F8 + (f1 - f0 + 1) * 2 * F8))


def spttv_nonzeros(
    pos2: np.ndarray,
    crd2: np.ndarray,
    vals: np.ndarray,
    c: np.ndarray,
    out_vals: np.ndarray,
    p0: int,
    p1: int,
) -> Work:
    """Accumulate leaf positions ``[p0, p1]`` (may split fibers across pieces)."""
    if p1 < p0:
        return Work.zero()
    nnz = p1 - p0 + 1
    prods = vals[p0 : p1 + 1] * c[crd2[p0 : p1 + 1]]
    fibers = row_of_positions(pos2[:, 0], np.arange(p0, p1 + 1, dtype=np.int64))
    f0, f1 = int(fibers[0]), int(fibers[-1])
    out_vals[f0 : f1 + 1] += segment_sum(prods, fibers - f0, f1 - f0 + 1)
    return Work(flops=2.0 * nnz, bytes=float(nnz * 3 * F8 + (f1 - f0 + 1) * 2 * F8))


def spttv_reference(pos2, crd2, vals, c, out_vals, f0, f1) -> Work:
    nnz = 0
    for f in range(f0, f1 + 1):
        acc = 0.0
        for p in range(pos2[f, 0], pos2[f, 1] + 1):
            acc += vals[p] * c[crd2[p]]
            nnz += 1
        out_vals[f] = acc
    return Work(flops=2.0 * nnz, bytes=float(nnz * 3 * F8))
