"""Segment primitives shared by the vectorized leaf kernels.

All leaf kernels operate on contiguous position ranges of the SpDISTAL
rect-``pos`` encoding; these helpers map positions to owning rows, expand
rect ranges to position lists, and perform segmented reductions without
Python-level loops (guide: vectorize, avoid copies).
"""
from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "row_of_positions",
    "expand_ranges",
    "segment_sum",
    "segment_sum_matrix",
    "piece_range",
]


def piece_range(extent: int, pieces: int, color: int) -> Tuple[int, int]:
    """Inclusive [lo, hi] chunk bounds used by divide (Fig. 9b convention)."""
    chunk = -(-extent // pieces) if extent else 0
    lo = color * chunk
    hi = min((color + 1) * chunk, extent) - 1
    return lo, hi


def row_of_positions(starts: np.ndarray, positions: np.ndarray) -> np.ndarray:
    """Owning parent entry of each position, given monotone range starts.

    ``starts`` is ``pos[:, 0]`` of a canonically packed level: empty entries
    share their successor's start, so the last entry with ``start <= p``
    (``searchsorted right - 1``) is the non-empty owner of position ``p``.
    """
    return np.searchsorted(starts, positions, side="right") - 1


def expand_ranges(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Concatenate the positions of inclusive ranges ``[lo_i, hi_i]``.

    Vectorized: builds the result with one cumulative sum rather than a
    Python loop over ranges.
    """
    lo = np.asarray(lo, dtype=np.int64)
    hi = np.asarray(hi, dtype=np.int64)
    lens = np.maximum(hi - lo + 1, 0)
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    keep = lens > 0
    lo, lens = lo[keep], lens[keep]
    out = np.ones(total, dtype=np.int64)
    ends = np.cumsum(lens)
    out[0] = lo[0]
    out[ends[:-1]] = lo[1:] - (lo[:-1] + lens[:-1] - 1)
    return np.cumsum(out)


def segment_sum(values: np.ndarray, seg_ids: np.ndarray, nseg: int) -> np.ndarray:
    """Sum ``values`` into ``nseg`` buckets keyed by ``seg_ids``."""
    return np.bincount(seg_ids, weights=values, minlength=nseg)[:nseg]


def segment_sum_matrix(values: np.ndarray, seg_ids: np.ndarray, nseg: int) -> np.ndarray:
    """Row-wise segmented sum of an ``(n, k)`` matrix into ``(nseg, k)``.

    For the small trailing dimensions of SpMM/MTTKRP (k ≈ 25–64), a bincount
    per column beats ``np.add.at`` by a wide margin.
    """
    n, k = values.shape
    out = np.empty((nseg, k), dtype=values.dtype)
    for col in range(k):
        out[:, col] = np.bincount(seg_ids, weights=values[:, col], minlength=nseg)[:nseg]
    return out
