"""SDDMM leaf kernels: ``A(i,j) = B(i,j) * C(i,k) * D(k,j)``.

The output inherits B's sparsity pattern (paper §V-B), so the leaf writes
only the values array.  The paper uses a non-zero-based algorithm and data
distribution for SDDMM on both CPUs and GPUs — each piece computes an exact
slice of the non-zero positions, which is what makes it perfectly load
balanced regardless of the sparsity structure.

Index notation: ``A(i,j) = B(i,j) * C(i,k) * D(k,j)`` — paper §V-B
(pattern-preserving output), §VI-A (non-zero distribution), Fig. 10/11.
"""
from __future__ import annotations

import numpy as np

from ..legion.machine import Work
from .segment import row_of_positions

__all__ = ["sddmm_nonzeros", "sddmm_rows", "sddmm_reference"]

F8 = 8
_CHUNK = 1 << 18  # bound the nnz*k intermediate (be easy on memory)


def sddmm_nonzeros(
    pos: np.ndarray,
    crd: np.ndarray,
    vals: np.ndarray,
    C: np.ndarray,
    D: np.ndarray,
    out_vals: np.ndarray,
    p0: int,
    p1: int,
) -> Work:
    """Compute output values at positions ``[p0, p1]``."""
    if p1 < p0:
        return Work.zero()
    k = C.shape[1]
    nnz = p1 - p0 + 1
    rows = row_of_positions(pos[:, 0], np.arange(p0, p1 + 1, dtype=np.int64))
    Dt = D.T  # (j, k) layout so each chunk gathers contiguous rows
    for s in range(0, nnz, _CHUNK):
        e = min(s + _CHUNK, nnz)
        cols = crd[p0 + s : p0 + e]
        dots = np.einsum("ij,ij->i", C[rows[s:e], :], Dt[cols, :])
        out_vals[p0 + s : p0 + e] = vals[p0 + s : p0 + e] * dots
    return Work(flops=2.0 * nnz * k + nnz, bytes=float(nnz * (2 * k + 4) * F8))


def sddmm_rows(
    pos: np.ndarray,
    crd: np.ndarray,
    vals: np.ndarray,
    C: np.ndarray,
    D: np.ndarray,
    out_vals: np.ndarray,
    r0: int,
    r1: int,
) -> Work:
    """Row-based variant (used for the schedule ablation)."""
    if r1 < r0:
        return Work.zero()
    p0 = int(pos[r0, 0])
    p1 = int(pos[r1, 1])
    if p1 < p0:
        return Work.zero()
    return sddmm_nonzeros(pos, crd, vals, C, D, out_vals, p0, p1)


def sddmm_reference(pos, crd, vals, C, D, out_vals, p0, p1) -> Work:
    nnz = 0
    starts = pos[:, 0]
    for p in range(p0, p1 + 1):
        i = int(np.searchsorted(starts, p, side="right") - 1)
        j = int(crd[p])
        out_vals[p] = vals[p] * float(C[i, :] @ D[:, j])
        nnz += 1
    k = C.shape[1]
    return Work(flops=2.0 * nnz * k, bytes=float(nnz * (2 * k + 4) * F8))
