"""SpAdd3 leaf kernels: ``A(i,j) = B(i,j) + C(i,j) + D(i,j)`` on CSR inputs.

The output pattern is unknown, so assembly follows the two-phase parallel
approach of Chou et al. (paper §V-B): a *symbolic* pass computes each
piece's per-row output counts; after an exclusive scan sizes the output, a
*fill* pass writes coordinates and values without synchronization.  Fusing
all three operands in one sweep (instead of two pairwise adds) is what buys
the paper its 11.8–38.5x over PETSc/Trilinos.

Index notation: ``A(i,j) = B(i,j) + C(i,j) + D(i,j)`` — paper §V-B
(two-phase assembly), §VI-C (SpAdd evaluation vs PETSc/Trilinos).
"""
from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..legion.machine import Work

__all__ = ["spadd3_symbolic", "spadd3_fill"]

F8 = 8


def _gather_rows(
    pos: np.ndarray, crd: np.ndarray, r0: int, r1: int
) -> Tuple[np.ndarray, np.ndarray, int, int]:
    """(row_ids, slice bounds) of one operand's entries within rows [r0, r1]."""
    lo = pos[r0 : r1 + 1, 0]
    hi = pos[r0 : r1 + 1, 1]
    lens = np.maximum(hi - lo + 1, 0)
    s = int(lo[0]) if lens.sum() else 0
    e = s + int(lens.sum()) - 1
    rows = np.repeat(np.arange(r0, r1 + 1, dtype=np.int64), lens)
    return rows, lens, s, e


def spadd3_symbolic(
    operands: Sequence[Tuple[np.ndarray, np.ndarray]],
    ncols: int,
    r0: int,
    r1: int,
) -> Tuple[np.ndarray, Work]:
    """Count the union pattern's entries per row for rows ``[r0, r1]``.

    ``operands`` holds each input's ``(pos, crd)``.  Returns per-row counts.
    """
    if r1 < r0:
        return np.empty(0, dtype=np.int64), Work.zero()
    keys = []
    touched = 0
    for pos, crd in operands:
        rows, lens, s, e = _gather_rows(pos, crd, r0, r1)
        if e >= s:
            keys.append(rows * ncols + crd[s : e + 1])
            touched += e - s + 1
    if not keys:
        return np.zeros(r1 - r0 + 1, dtype=np.int64), Work(0.0, 0.0)
    merged = np.unique(np.concatenate(keys))
    counts = np.bincount(merged // ncols - r0, minlength=r1 - r0 + 1)
    return counts.astype(np.int64), Work(flops=float(touched), bytes=float(touched * 2 * F8))


def spadd3_fill(
    operands: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray]],
    ncols: int,
    out_pos: np.ndarray,
    out_crd: np.ndarray,
    out_vals: np.ndarray,
    r0: int,
    r1: int,
) -> Work:
    """Write the merged coordinates/values for rows ``[r0, r1]``.

    ``out_pos`` must already hold the scanned row ranges (assembly phase 1).
    """
    if r1 < r0:
        return Work.zero()
    keys, values = [], []
    touched = 0
    for pos, crd, vals in operands:
        rows, lens, s, e = _gather_rows(pos, crd, r0, r1)
        if e >= s:
            keys.append(rows * ncols + crd[s : e + 1])
            values.append(vals[s : e + 1])
            touched += e - s + 1
    if not keys:
        return Work.zero()
    key = np.concatenate(keys)
    val = np.concatenate(values)
    uniq, inverse = np.unique(key, return_inverse=True)
    sums = np.bincount(inverse, weights=val, minlength=uniq.size)
    dst0 = int(out_pos[r0, 0])
    out_crd[dst0 : dst0 + uniq.size] = uniq % ncols
    out_vals[dst0 : dst0 + uniq.size] = sums
    return Work(
        flops=float(touched),
        bytes=float(touched * 3 * F8 + uniq.size * 2 * F8),
    )
