"""repro: a Python reproduction of SpDISTAL (SC 2022).

SpDISTAL compiles sparse tensor algebra to distributed machines by
combining tensor index notation, a sparse format language, tensor
distribution notation and a scheduling language, lowered through dependent
partitioning onto a Legion-style task runtime.

Public API re-exports live here; see README.md for a tour.
"""
from .errors import CompileError, FormatError, OOMError, ReproError, ScheduleError

__version__ = "0.1.0"

__all__ = [
    "CompileError",
    "FormatError",
    "OOMError",
    "ReproError",
    "ScheduleError",
    "__version__",
]
