"""repro: a Python reproduction of SpDISTAL (SC 2022).

SpDISTAL compiles sparse tensor algebra to distributed machines by
combining tensor index notation, a sparse format language, tensor
distribution notation and a scheduling language, lowered through dependent
partitioning onto a Legion-style task runtime.

The primary entry points live here (see ``docs/api.md``)::

    import repro

    with repro.session(nodes=4) as s:
        B = s.tensor("B", scipy_matrix, repro.CSR)
        c = s.tensor("c", dense_vector)
        a = repro.einsum("ij,j->i", B, c, session=s)

``repro.session`` opens the execution context (machine, runtime, caches,
optional artifact store); ``repro.einsum`` and ``Session.define`` /
``Program`` submit work with auto-synthesized schedules; a hand-built
:class:`~repro.taco.schedule.Schedule` overrides the auto-scheduler
anywhere.  The low-level surface (``repro.core.compile_kernel``,
``repro.legion.Runtime``) remains available unchanged.
"""
from .errors import (
    AnalysisError,
    CompileError,
    FormatError,
    IllegalCSE,
    OOMError,
    ReproError,
    SanitizerError,
    ScheduleError,
    ServingError,
    TenantBudgetError,
    UnsupportedEinsum,
    WriteHazard,
)
from .taco import (
    CSC,
    CSF3,
    CSR,
    DDC,
    DENSE_MATRIX,
    DENSE_VECTOR,
    SPARSE_VECTOR,
    Format,
    Schedule,
    Tensor,
    index_vars,
)
from .legion import Machine
from .core import compile_kernel, compile_program
from .codegen import codegen_backend, codegen_stats, set_codegen_backend
from .analysis import AnalysisReport, analyze_program, predict_metrics
from .api import (
    AutotuneResult,
    Program,
    ServeResult,
    Server,
    Session,
    auto_schedule,
    einsum,
    serve,
    session,
)

__version__ = "0.2.0"

__all__ = [
    # high-level front end
    "session",
    "Session",
    "Program",
    "einsum",
    "auto_schedule",
    "AutotuneResult",
    # multi-tenant serving layer
    "serve",
    "Server",
    "ServeResult",
    # building blocks
    "Tensor",
    "Schedule",
    "Machine",
    "index_vars",
    "compile_kernel",
    "compile_program",
    # static analysis
    "analyze_program",
    "AnalysisReport",
    "predict_metrics",
    # codegen backend knobs
    "set_codegen_backend",
    "codegen_backend",
    "codegen_stats",
    # formats
    "Format",
    "CSR",
    "CSC",
    "CSF3",
    "DDC",
    "DENSE_MATRIX",
    "DENSE_VECTOR",
    "SPARSE_VECTOR",
    # errors
    "AnalysisError",
    "CompileError",
    "FormatError",
    "IllegalCSE",
    "OOMError",
    "ReproError",
    "SanitizerError",
    "ScheduleError",
    "ServingError",
    "TenantBudgetError",
    "UnsupportedEinsum",
    "WriteHazard",
    "__version__",
]
