"""DISTAL layer: tensor distribution notation and data placement.

DISTAL (Yadav et al., PLDI'22) contributes the separation of data
distribution (TDN) from computation distribution (scheduling); SpDISTAL
extends TDN with non-zero partitions and coordinate fusion (paper §II-B).
"""
from .tdn import TDN, Distribution, MachineDimRef, nz, parse_tdn
from .distribution import (
    TensorDistribution,
    distribute,
    partition_for_tdn,
    place_tensor,
)

__all__ = [
    "TDN", "Distribution", "MachineDimRef", "nz", "parse_tdn",
    "TensorDistribution", "distribute", "partition_for_tdn", "place_tensor",
]
