"""Tensor distribution notation (paper §II-B).

A TDN statement names each dimension of a tensor and of a machine; tensor
dimensions sharing a name with a machine dimension are partitioned by it.
SpDISTAL extends DISTAL's notation with

* **non-zero partitions** — the tilde operator ``~d`` splits the stored
  non-zero coordinates of ``d`` evenly instead of its coordinate universe;
* **coordinate fusion** — ``xy -> f`` collapses dimensions into one logical
  dimension that can then be non-zero partitioned.

Construct programmatically (``Distribution([x, y], M, [x])`` as in the
paper's Fig. 1) or parse from text::

    parse_tdn("B(x, y) -> M(x)")                 # row-wise (Fig. 4b)
    parse_tdn("T(x) -> M(~x)")                   # non-zero vector (Fig. 5b)
    parse_tdn("B(x, y) [x y -> f] -> M(~f)")     # fused non-zeros (Fig. 5c)
    parse_tdn("c(x) -> M(y)")                    # replicated (no shared name)
"""
from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import FormatError
from ..taco.index_vars import DistVar

__all__ = ["MachineDimRef", "TDN", "Distribution", "nz", "parse_tdn"]


@dataclass(frozen=True)
class MachineDimRef:
    """One machine dimension's binding: a name, optionally non-zero (~)."""

    name: str
    nonzero: bool = False

    def __repr__(self) -> str:
        return ("~" if self.nonzero else "") + self.name


class _Tilde:
    """Marker produced by :func:`nz` around a DistVar."""

    def __init__(self, var: Union[DistVar, str]):
        self.name = var.name if isinstance(var, DistVar) else str(var)


def nz(var: Union[DistVar, str]) -> _Tilde:
    """The tilde operator: request a non-zero partition of ``var``."""
    return _Tilde(var)


@dataclass
class TDN:
    """A tensor distribution notation statement."""

    tensor_dims: Tuple[str, ...]  # one name per tensor mode
    machine_dims: Tuple[MachineDimRef, ...]  # one per machine grid dim
    fusions: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    def __post_init__(self):
        for fused, parts in self.fusions.items():
            for p in parts:
                if p not in self.tensor_dims:
                    raise FormatError(
                        f"fusion {parts}->{fused} names unknown dimension {p!r}"
                    )
        for m in self.machine_dims:
            if m.nonzero and not self._resolves(m.name):
                raise FormatError(f"~{m.name} names no tensor or fused dimension")

    def _resolves(self, name: str) -> bool:
        return name in self.tensor_dims or name in self.fusions

    def modes_of(self, name: str) -> List[int]:
        """Tensor modes a (possibly fused) dimension name covers."""
        if name in self.fusions:
            out: List[int] = []
            for part in self.fusions[name]:
                out.extend(self.modes_of(part))
            return out
        if name in self.tensor_dims:
            return [self.tensor_dims.index(name)]
        return []

    def matched_dims(self) -> List[Tuple[int, MachineDimRef, List[int]]]:
        """(machine grid dim, ref, covered tensor modes) for partitioning dims."""
        out = []
        for g, m in enumerate(self.machine_dims):
            modes = self.modes_of(m.name)
            if modes:
                out.append((g, m, modes))
        return out

    def replication_dims(self) -> List[int]:
        """Machine grid dims that replicate (no matching tensor dimension)."""
        return [g for g, m in enumerate(self.machine_dims) if not self.modes_of(m.name)]

    def __repr__(self) -> str:
        t = ",".join(self.tensor_dims)
        f = "".join(
            f" [{' '.join(parts)} -> {fused}]" for fused, parts in self.fusions.items()
        )
        m = ",".join(map(repr, self.machine_dims))
        return f"T({t}){f} -> M({m})"


def Distribution(
    tensor_vars: Sequence[Union[DistVar, str]],
    machine,
    machine_vars: Sequence[Union[DistVar, str, _Tilde]],
    fuse: Optional[Dict[Union[DistVar, str], Sequence[Union[DistVar, str]]]] = None,
) -> TDN:
    """The paper's ``Distribution({x, y}, M, {x})`` constructor (Fig. 1).

    ``machine`` is accepted for interface fidelity; the grid is re-checked
    when the distribution is applied.
    """
    t_names = tuple(v.name if isinstance(v, DistVar) else str(v) for v in tensor_vars)
    m_refs = []
    for v in machine_vars:
        if isinstance(v, _Tilde):
            m_refs.append(MachineDimRef(v.name, nonzero=True))
        else:
            m_refs.append(MachineDimRef(v.name if isinstance(v, DistVar) else str(v)))
    fusions = {}
    if fuse:
        for fused, parts in fuse.items():
            fname = fused.name if isinstance(fused, DistVar) else str(fused)
            fusions[fname] = tuple(
                p.name if isinstance(p, DistVar) else str(p) for p in parts
            )
    return TDN(t_names, tuple(m_refs), fusions)


_TDN_RE = re.compile(
    r"^\s*(?P<tensor>\w+)\s*\(\s*(?P<tdims>[^)]*)\)\s*"
    r"(?P<fusions>(?:\[[^\]]*\]\s*)*)"
    r"->\s*(?P<machine>\w+)\s*\(\s*(?P<mdims>[^)]*)\)\s*$"
)
_FUSION_RE = re.compile(r"\[\s*([^\]]+?)\s*->\s*(\w+)\s*\]")


def _split_names(text: str) -> List[str]:
    text = text.strip()
    if not text:
        return []
    if "," in text or re.search(r"\s", text):
        return [t for t in re.split(r"[,\s]+", text) if t]
    # juxtaposed single letters, e.g. "xy" or "~f"
    return re.findall(r"~?\w", text)


def parse_tdn(text: str) -> TDN:
    """Parse a textual TDN statement; see the module docstring for examples."""
    m = _TDN_RE.match(text)
    if not m:
        raise FormatError(f"cannot parse TDN statement: {text!r}")
    tdims = tuple(_split_names(m.group("tdims")))
    fusions: Dict[str, Tuple[str, ...]] = {}
    for fm in _FUSION_RE.finditer(m.group("fusions") or ""):
        parts = tuple(_split_names(fm.group(1)))
        fusions[fm.group(2)] = parts
    mdims = []
    for name in _split_names(m.group("mdims")):
        if name.startswith("~"):
            mdims.append(MachineDimRef(name[1:], nonzero=True))
        else:
            mdims.append(MachineDimRef(name))
    return TDN(tdims, tuple(mdims), fusions)
