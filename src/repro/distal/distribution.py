"""Applying tensor distribution notation to tensors (paper §V-C).

DISTAL translates a TDN statement into a scheduled TIN statement that uses
``divide`` + ``distribute`` to partition the tensor; SpDISTAL extends this
with ``fuse`` (coordinate fusion) and the non-zero variant of ``divide``.
This module performs the equivalent translation directly onto the level
functions: a TDN statement becomes an initial level partition (universe or
non-zero) plus derived coordinate tree partitions, and the sub-tensors are
placed onto the machine's memories.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from ..errors import CompileError, FormatError
from ..kernels.segment import piece_range
from ..legion.machine import Machine
from ..legion.runtime import Privilege, Runtime
from ..taco.tensor import Tensor
from ..core.partitioner import (
    TensorPartition,
    partition_dense_tensor,
    partition_tensor,
    replicated_partition,
)
from ..core.plan import PartitioningPlan
from .tdn import TDN, parse_tdn

__all__ = ["TensorDistribution", "partition_for_tdn", "place_tensor", "distribute"]

Color = Hashable


@dataclass
class TensorDistribution:
    """The result of applying a TDN statement to a tensor on a machine."""

    tensor: Tensor
    tdn: TDN
    machine: Machine
    partition: TensorPartition
    plan: PartitioningPlan

    def nbytes_per_piece(self) -> Dict[Color, int]:
        return {c: self.partition.nbytes_for(c) for c in self.partition.colors}

    def load_balance(self) -> float:
        """max/mean stored values per piece (1.0 = perfectly balanced)."""
        vols = [
            self.partition.vals_subset(c).volume for c in self.partition.colors
        ]
        mean = sum(vols) / len(vols) if vols else 0
        return (max(vols) / mean) if mean else 1.0


def _grid_colors(machine: Machine) -> List[Color]:
    if machine.grid.ndim == 1:
        return list(range(machine.grid.dims[0]))
    return [tuple(p) for p in machine.grid.points()]


def _component(color: Color, g: int, ndim: int) -> int:
    if ndim == 1:
        return int(color)
    return int(color[g])


def partition_for_tdn(
    tensor: Tensor, tdn: TDN, machine: Machine
) -> Tuple[TensorPartition, PartitioningPlan]:
    """Build the coordinate-tree partition a TDN statement describes."""
    if len(tdn.tensor_dims) != tensor.order:
        raise FormatError(
            f"TDN names {len(tdn.tensor_dims)} dims but {tensor.name} has order "
            f"{tensor.order}"
        )
    if len(tdn.machine_dims) != machine.grid.ndim:
        raise FormatError(
            f"TDN names {len(tdn.machine_dims)} machine dims but the machine "
            f"grid has rank {machine.grid.ndim}"
        )
    plan = PartitioningPlan(f"tdn_{tensor.name}")
    colors = _grid_colors(machine)
    ndim = machine.grid.ndim
    matched = tdn.matched_dims()

    if not matched:
        return replicated_partition(tensor, colors), plan

    if tensor.format.is_all_dense():
        nz_free = [m for m in matched if not m[1].nonzero]
        if len(nz_free) != len(matched):
            # Non-zero partitions of dense tensors fall back to universe
            # partitions (every coordinate is stored).
            nz_free = matched
        mode_bounds: Dict[Color, Dict[int, Tuple[int, int]]] = {}
        for c in colors:
            per_mode: Dict[int, Tuple[int, int]] = {}
            for g, ref, modes in nz_free:
                if len(modes) != 1:
                    raise CompileError(
                        "fused distributions of dense tensors are not supported"
                    )
                mode = modes[0]
                per_mode[mode] = piece_range(
                    tensor.shape[mode], machine.grid.dims[g], _component(c, g, ndim)
                )
            mode_bounds[c] = per_mode
        return partition_dense_tensor(tensor, mode_bounds, plan), plan

    if len(matched) > 1:
        raise CompileError(
            "sparse tensors can be partitioned along one machine dimension"
        )
    g, ref, modes = matched[0]
    pieces = machine.grid.dims[g]
    if ref.nonzero:
        # Non-zero partition of the level storing the innermost covered mode.
        level = max(tensor.format.level_of_mode(m) for m in modes)
        npos = tensor.levels[level].num_positions
        bounds = {
            c: piece_range(npos, pieces, _component(c, g, ndim)) for c in colors
        }
        part = partition_tensor(tensor, level, "nonzero", bounds, plan)
    else:
        if len(modes) != 1:
            raise CompileError(
                "universe partitions of fused dimensions are not supported; "
                "use ~ for fused dimensions"
            )
        mode = modes[0]
        level = tensor.format.level_of_mode(mode)
        size = tensor.shape[mode]
        bounds = {
            c: piece_range(size, pieces, _component(c, g, ndim)) for c in colors
        }
        part = partition_tensor(tensor, level, "universe", bounds, plan)
    return part, plan


def place_tensor(
    tensor: Tensor, tdn: TDN, machine: Machine, runtime: Runtime
) -> TensorDistribution:
    """Partition per the TDN statement and place sub-tensors on the machine."""
    part, plan = partition_for_tdn(tensor, tdn, machine)

    def proc_of(color: Color) -> int:
        if isinstance(color, tuple):
            idx = 0
            for comp, d in zip(color, machine.grid.dims):
                idx = idx * d + int(comp)
            return idx % machine.size
        return int(color) % machine.size

    for req in part.region_reqs(Privilege.READ_ONLY):
        if req.partition is None:
            runtime.place_replicated(req.region)
        else:
            runtime.place(req.region, req.partition, proc_of)
    tensor._placed_by_tdn = True  # the compiler will not re-place it
    return TensorDistribution(tensor, tdn, machine, part, plan)


def distribute(
    tensor: Tensor, statement: str, machine: Machine, runtime: Optional[Runtime] = None
) -> TensorDistribution:
    """Convenience: parse a textual TDN statement and apply it.

    With no runtime, only the partition is computed (no placement).
    """
    tdn = parse_tdn(statement)
    if runtime is None:
        part, plan = partition_for_tdn(tensor, tdn, machine)
        return TensorDistribution(tensor, tdn, machine, part, plan)
    return place_tensor(tensor, tdn, machine, runtime)
