"""Baseline runners sharing the scaled machine model with SpDISTAL."""
from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..baselines import ctf as ctf_mod
from ..baselines import petsc as petsc_mod
from ..baselines import trilinos as trilinos_mod
from ..baselines.common import BaselineResult
from ..baselines.ctf import CtfConfig
from ..baselines.petsc import PetscConfig
from ..baselines.trilinos import TrilinosConfig
from ..errors import OOMError
from ..taco.tensor import Tensor
from .harness import SimResult
from .models import BenchConfig, default_config

__all__ = [
    "petsc_run",
    "trilinos_run",
    "ctf_run",
]


def _to_sim(system: str, r: BaselineResult) -> SimResult:
    return SimResult(system, r.seconds, r.comm_bytes, oom=r.oom, value=r.value)


def _petsc_cfg(nodes: int, gpus: Optional[int], cfg: BenchConfig) -> PetscConfig:
    ranks = gpus if gpus is not None else nodes * cfg.node.cores
    return PetscConfig(nodes, gpus=gpus, node=cfg.node, network=cfg.mpi_network(ranks))


def _trilinos_cfg(nodes: int, gpus: Optional[int], cfg: BenchConfig) -> TrilinosConfig:
    ranks = gpus if gpus is not None else nodes * cfg.node.sockets
    return TrilinosConfig(nodes, gpus=gpus, node=cfg.node,
                          network=cfg.mpi_network(ranks),
                          pcie_bw=16.0e9 * cfg.rate_scale)


def _ctf_cfg(nodes: int, cfg: BenchConfig) -> CtfConfig:
    return CtfConfig(nodes, node=cfg.node, network=cfg.mpi_network(nodes * cfg.node.cores))


def petsc_run(kernel: str, args, nodes: int, cfg: Optional[BenchConfig] = None,
              *, gpus: Optional[int] = None) -> SimResult:
    cfg = cfg or default_config()
    pc = _petsc_cfg(nodes, gpus, cfg)
    try:
        if kernel == "spmv":
            return _to_sim("PETSc", petsc_mod.spmv(args[0], args[1], pc))
        if kernel == "spmm":
            return _to_sim("PETSc", petsc_mod.spmm(args[0], args[1], pc))
        if kernel == "spadd3":
            return _to_sim("PETSc", petsc_mod.spadd3(args[0], args[1], args[2], pc))
    except OOMError:
        return SimResult("PETSc", float("inf"), oom=True)
    return SimResult("PETSc", float("inf"), oom=True)  # unsupported kernel


def trilinos_run(kernel: str, args, nodes: int, cfg: Optional[BenchConfig] = None,
                 *, gpus: Optional[int] = None) -> SimResult:
    cfg = cfg or default_config()
    tc = _trilinos_cfg(nodes, gpus, cfg)
    try:
        if kernel == "spmv":
            return _to_sim("Trilinos", trilinos_mod.spmv(args[0], args[1], tc))
        if kernel == "spmm":
            return _to_sim("Trilinos", trilinos_mod.spmm(args[0], args[1], tc))
        if kernel == "spadd3":
            return _to_sim("Trilinos", trilinos_mod.spadd3(args[0], args[1], args[2], tc))
    except OOMError:
        return SimResult("Trilinos", float("inf"), oom=True)
    return SimResult("Trilinos", float("inf"), oom=True)


def ctf_run(kernel: str, args, nodes: int, cfg: Optional[BenchConfig] = None) -> SimResult:
    cfg = cfg or default_config()
    cc = _ctf_cfg(nodes, cfg)
    try:
        if kernel == "spmv":
            return _to_sim("CTF", ctf_mod.spmv(args[0], args[1], cc))
        if kernel == "spmm":
            return _to_sim("CTF", ctf_mod.spmm(args[0], args[1], cc))
        if kernel == "spadd3":
            return _to_sim("CTF", ctf_mod.spadd3(args[0], args[1], args[2], cc))
        if kernel == "sddmm":
            return _to_sim("CTF", ctf_mod.sddmm(args[0], args[1], args[2], cc))
        if kernel == "spttv":
            tensor: Tensor = args[0]
            return _to_sim(
                "CTF",
                ctf_mod.spttv(None, tensor.shape, tensor.nnz, args[1], cc),
            )
        if kernel == "spmttkrp":
            tensor = args[0]
            l = args[1].shape[1]
            # CTF's processor-grid decomposition splits hot slices across
            # ranks, so the special MTTKRP kernel is essentially balanced.
            return _to_sim(
                "CTF",
                ctf_mod.spmttkrp(tensor.shape, tensor.nnz, l, cc),
            )
    except OOMError:
        return SimResult("CTF", float("inf"), oom=True)
    return SimResult("CTF", float("inf"), oom=True)


def _slice_weights(tensor: Tensor, ranks: int) -> np.ndarray:
    """Per-rank work shares under CTF's *cyclic* slice decomposition.

    Cyclic layouts scatter hub slices across ranks (that is the point of
    Cyclops), so skew only bites when single slices exceed the mean load.
    """
    n0 = tensor.shape[0]
    coords, _ = tensor.to_coo()
    counts = np.bincount(coords[0], minlength=n0).astype(float)
    per = np.array([counts[r::ranks].sum() for r in range(ranks)])
    total = max(per.sum(), 1.0)
    return per / total
