"""Text rendering of the paper's tables, speedup plots and heatmaps."""
from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["format_table", "format_scaling", "format_heatmap", "geomean"]


def geomean(values: Sequence[float]) -> float:
    vals = [v for v in values if np.isfinite(v) and v > 0]
    if not vals:
        return float("nan")
    return float(np.exp(np.mean(np.log(vals))))


def format_table(headers: List[str], rows: List[Sequence], title: str = "") -> str:
    cols = [
        max(len(str(headers[c])), max((len(str(r[c])) for r in rows), default=0))
        for c in range(len(headers))
    ]
    def fmt_row(row):
        return "  ".join(str(v).ljust(w) for v, w in zip(row, cols))
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in cols))
    lines.extend(fmt_row(r) for r in rows)
    return "\n".join(lines)


def format_scaling(
    title: str,
    node_counts: Sequence[int],
    series: Dict[str, List[float]],
    *,
    ylabel: str = "speedup over SpDISTAL 1 node",
) -> str:
    """A Fig. 10-style speedup table: one row per system, one col per scale."""
    headers = ["system"] + [str(n) for n in node_counts]
    rows = []
    for name, vals in series.items():
        rows.append([name] + [
            ("DNC" if not np.isfinite(v) else f"{v:.3g}") for v in vals
        ])
    rows.append(["Ideal"] + [str(n) for n in node_counts])
    return format_table(headers, rows, title=f"{title}  ({ylabel})")


def format_heatmap(
    title: str,
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    cells: Dict[tuple, str],
) -> str:
    """A Fig. 11-style fastest-system heatmap (text cells, DNC included)."""
    headers = ["tensor \\ gpus"] + [str(c) for c in col_labels]
    rows = []
    for r in row_labels:
        rows.append([r] + [cells.get((r, c), "-") for c in col_labels])
    return format_table(headers, rows, title=title)
