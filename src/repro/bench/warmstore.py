"""Packed-operand warm store for the figure drivers.

The figure drivers (:mod:`repro.bench.figures`) sweep node counts and
systems over the same datasets; the seed behavior re-packed every sparse
operand from its source matrix for every single trial.  This module gives
the drivers one packed :class:`~repro.taco.tensor.Tensor` per distinct
operand content:

* an **in-process memo** keyed on a content digest of the source arrays,
  so per-node-count trials within one campaign reuse the packed level
  structure (and its partition-memo entries — the memoized tensor keeps a
  stable ``id``), and
* optionally a persistent **artifact store**
  (:class:`repro.core.store_index.ArtifactStore`), so re-runs in fresh
  processes ``load_packed`` the packed structure instead of re-packing —
  enable it with :func:`set_warm_store` or the ``REPRO_WARM_STORE``
  environment variable (a store root directory).

The packed values are identical either way (packing is deterministic), so
warm-started figure series are bit-identical to rebuilt-tensor series —
``tools/bench_check.py --scenario figures`` gates exactly that, plus the
store's integrity after a GC pass.
"""
from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np
import scipy.sparse as sp

from ..core.store_index import ArtifactStore
from ..taco.formats import CSR, Format
from ..taco.tensor import Tensor

__all__ = [
    "set_warm_store",
    "warm_store",
    "set_warm_memo_enabled",
    "clear_warm_memo",
    "content_key",
    "packed_operand",
]

_memo: Dict[str, Tensor] = {}
_memo_enabled = True
_store: Optional[ArtifactStore] = None
_store_initialized = False


def set_warm_store(root: Optional[Union[str, Path]]) -> Optional[ArtifactStore]:
    """Enable (or, with None, disable) the persistent packed-operand store."""
    global _store, _store_initialized
    _store = ArtifactStore(root) if root is not None else None
    _store_initialized = True
    return _store


def warm_store() -> Optional[ArtifactStore]:
    """The active store; first call honors ``REPRO_WARM_STORE``."""
    global _store_initialized
    if not _store_initialized:
        env = os.environ.get("REPRO_WARM_STORE")
        set_warm_store(env if env else None)
    return _store


def set_warm_memo_enabled(enabled: bool) -> None:
    """Disable to force the seed behavior (re-pack every trial)."""
    global _memo_enabled
    _memo_enabled = bool(enabled)


def clear_warm_memo() -> None:
    _memo.clear()


def content_key(name: str, fmt: Optional[Format], mat: sp.spmatrix) -> str:
    """Content digest of one operand: tensor name + format + CSR arrays."""
    csr = mat.tocsr()
    h = hashlib.sha256()
    h.update(repr((name, fmt.name if fmt is not None else None,
                   csr.shape)).encode())
    h.update(np.ascontiguousarray(csr.indptr).tobytes())
    h.update(np.ascontiguousarray(csr.indices).tobytes())
    h.update(np.ascontiguousarray(csr.data).tobytes())
    return h.hexdigest()


def packed_operand(name: str, obj, fmt: Optional[Format] = CSR) -> Tensor:
    """A packed tensor for ``obj``, warm-started when possible.

    Already-packed tensors pass through untouched.  SciPy matrices hit the
    in-process memo first, then the persistent store (``load_packed`` of
    the newest artifact for the operand's content key), and are packed from
    scratch — and published to the store — only on a true cold start.
    """
    if isinstance(obj, Tensor):
        return obj
    if not _memo_enabled:
        return Tensor.from_scipy(name, obj, fmt)
    key = "operand:" + content_key(name, fmt, obj)
    hit = _memo.get(key)
    if hit is not None:
        return hit
    store = warm_store()
    tensor: Optional[Tensor] = None
    if store is not None and store.resolve(key) is not None:
        tensor = store.load(key).tensor
    if tensor is None:
        tensor = Tensor.from_scipy(name, obj, fmt)
        if store is not None:
            store.put(tensor, keys=[key], include_caches=False)
    _memo[key] = tensor
    return tensor
