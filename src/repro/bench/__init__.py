"""Benchmark harness: scaled machine model, kernel runners, figure drivers."""
from .models import BenchConfig, RATE_SCALE, default_config
from .harness import (
    SimResult,
    shifted,
    spdistal_sddmm,
    spdistal_spadd3,
    spdistal_spmm,
    spdistal_spmttkrp,
    spdistal_spmv,
    spdistal_spttv,
)
from .baseline_runners import ctf_run, petsc_run, trilinos_run
from .codegenbench import CodegenBenchParams, CodegenBenchResult, run_codegen_bench
from .iterative import IterativeResult, run_iterative_spmv
from .warmstart import WarmstartParams, WarmstartResult, run_warmstart
from .reporting import format_heatmap, format_scaling, format_table, geomean
from . import figures

__all__ = [
    "BenchConfig", "RATE_SCALE", "default_config",
    "SimResult", "shifted",
    "spdistal_sddmm", "spdistal_spadd3", "spdistal_spmm",
    "spdistal_spmttkrp", "spdistal_spmv", "spdistal_spttv",
    "ctf_run", "petsc_run", "trilinos_run",
    "CodegenBenchParams", "CodegenBenchResult", "run_codegen_bench",
    "IterativeResult", "run_iterative_spmv",
    "WarmstartParams", "WarmstartResult", "run_warmstart",
    "format_heatmap", "format_scaling", "format_table", "geomean",
    "figures",
]
